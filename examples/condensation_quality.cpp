// Comparing the four condensation methods at several budgets.
//
//   $ ./examples/condensation_quality
//
// For a Cora-like graph, condenses with DC-Graph, GCond, GCond-X, and
// GC-SNTK at three synthetic sizes and reports the test accuracy of a GCN
// trained on each condensed dataset — the utility trade-off graph
// condensation services compete on (and the quality BGC must preserve).

#include <cstdio>

#include "src/condense/condenser.h"
#include "src/data/synthetic.h"
#include "src/eval/pipeline.h"

int main() {
  using namespace bgc;  // NOLINT

  data::GraphDataset dataset = data::MakeDataset("cora-sim", 123);
  condense::SourceGraph source =
      condense::FromTrainView(data::MakeTrainView(dataset));

  std::printf("%-10s", "N'");
  for (const char* method : {"dc-graph", "gcond", "gcond-x", "gc-sntk"}) {
    std::printf(" %10s", method);
  }
  std::printf("\n");

  for (int num_condensed : {35, 70, 140}) {
    std::printf("%-10d", num_condensed);
    for (const char* method : {"dc-graph", "gcond", "gcond-x", "gc-sntk"}) {
      Rng rng(5);
      condense::CondenseConfig cfg;
      cfg.num_condensed = num_condensed;
      cfg.epochs = 150;
      auto condenser = condense::MakeCondenser(method);
      condense::CondensedGraph condensed = condense::RunCondensation(
          *condenser, source, dataset.num_classes, cfg, rng);
      eval::VictimConfig victim_cfg;
      auto victim = eval::TrainVictim(condensed, victim_cfg, rng);
      eval::AttackMetrics metrics =
          eval::EvaluateVictim(*victim, dataset, /*generator=*/nullptr, 0);
      std::printf(" %10.3f", metrics.cta);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
