// Evaluating defenses against a backdoored condensed graph (paper §6.4).
//
//   $ ./examples/defense_evaluation
//
// Runs BGC against GCond-X on a Cora-like graph, then measures what the two
// defenses buy the victim: Prune (drop low-cosine condensed edges before
// training) and Randsmooth (vote over edge-subsampled inference). Both pay
// clean accuracy for limited ASR reduction — the utility-defense trade-off
// of Table 5.

#include <cstdio>

#include "src/attack/bgc.h"
#include "src/data/synthetic.h"
#include "src/defense/defenses.h"
#include "src/eval/pipeline.h"

int main() {
  using namespace bgc;  // NOLINT

  data::GraphDataset dataset = data::MakeDataset("cora-sim", 7);
  condense::SourceGraph clean =
      condense::FromTrainView(data::MakeTrainView(dataset));

  Rng rng(11);
  condense::CondenseConfig condense_cfg;
  condense_cfg.num_condensed = 70;
  condense_cfg.epochs = 150;
  attack::AttackConfig attack_cfg;
  auto condenser = condense::MakeCondenser("gcond");
  attack::AttackResult attacked = attack::RunBgc(
      clean, dataset.num_classes, *condenser, condense_cfg, attack_cfg, rng);
  const int target = attack_cfg.target_class;

  eval::VictimConfig victim_cfg;
  auto report = [&](const char* name, const eval::AttackMetrics& m) {
    std::printf("%-28s CTA %.3f   ASR %.3f\n", name, m.cta, m.asr);
  };

  // No defense.
  auto victim = eval::TrainVictim(attacked.condensed, victim_cfg, rng);
  eval::AttackMetrics base = eval::EvaluateVictim(
      *victim, dataset, attacked.generator.get(), target);
  report("no defense", base);

  // Prune: retrain after dropping the 20% least-similar condensed edges.
  condense::CondensedGraph pruned = defense::Prune(attacked.condensed, 0.2);
  std::printf("prune removed %d of %d condensed edges\n",
              (attacked.condensed.adj.nnz() - pruned.adj.nnz()) / 2,
              attacked.condensed.adj.nnz() / 2);
  auto pruned_victim = eval::TrainVictim(pruned, victim_cfg, rng);
  report("prune (dataset-level)",
         eval::EvaluateVictim(*pruned_victim, dataset,
                              attacked.generator.get(), target));

  // Randsmooth: majority vote over subsampled propagation at inference.
  Rng smooth_rng(12);
  eval::PredictFn smooth = [&](const graph::CsrMatrix& adj,
                               const Matrix& x) {
    return defense::RandsmoothPredict(*victim, adj, x, /*num_samples=*/9,
                                      /*keep_prob=*/0.7, smooth_rng);
  };
  report("randsmooth (model-level)",
         eval::EvaluateWithPredict(smooth, dataset,
                                   attacked.generator.get(), target));
  return 0;
}
