// Quickstart: condense a graph and train a GNN on the condensed version.
//
//   $ ./examples/quickstart
//
// Walks the core pipeline end to end: synthesize a Cora-like dataset,
// condense its training view to 35 synthetic nodes with GCond, train a GCN
// on the condensed graph, and compare its test accuracy to a GCN trained on
// the full graph.

#include <cstdio>

#include "src/condense/condenser.h"
#include "src/data/synthetic.h"
#include "src/nn/trainer.h"

int main() {
  using namespace bgc;  // NOLINT

  // 1. Data: a 2708-node homophilous graph with public-style splits.
  data::GraphDataset dataset = data::MakeDataset("cora-sim", /*seed=*/42);
  std::printf("dataset: %s  nodes=%d  edges=%d  classes=%d  train=%zu\n",
              dataset.name.c_str(), dataset.num_nodes(),
              dataset.adj.nnz() / 2, dataset.num_classes,
              dataset.train_idx.size());

  // 2. Reference: GCN trained on the full graph.
  Rng rng(7);
  nn::GnnConfig gcn_cfg;
  gcn_cfg.in_dim = dataset.feature_dim();
  gcn_cfg.out_dim = dataset.num_classes;
  auto full_model = nn::MakeModel("gcn", gcn_cfg, rng);
  nn::TrainConfig train_cfg;
  train_cfg.epochs = 200;
  nn::TrainNodeClassifier(*full_model, dataset.adj, dataset.features,
                          dataset.labels, dataset.train_idx, train_cfg);
  const double full_acc =
      nn::Accuracy(nn::PredictLogits(*full_model, dataset.adj,
                                     dataset.features),
                   dataset.labels, dataset.test_idx);
  std::printf("full-graph GCN test accuracy:      %.3f\n", full_acc);

  // 3. Condense the training view to 35 synthetic nodes (ratio ~1.3%).
  condense::SourceGraph source =
      condense::FromTrainView(data::MakeTrainView(dataset));
  condense::CondenseConfig condense_cfg;
  condense_cfg.num_condensed = 35;
  condense_cfg.epochs = 150;
  auto condenser = condense::MakeCondenser("gcond");
  condense::CondensedGraph condensed = condense::RunCondensation(
      *condenser, source, dataset.num_classes, condense_cfg, rng);
  std::printf("condensed: %d nodes (%.2f%% of training graph), %d edges\n",
              condensed.features.rows(),
              100.0 * condensed.features.rows() / dataset.num_nodes(),
              condensed.adj.nnz() / 2);

  // 4. Train the same GCN architecture on the condensed graph only.
  auto small_model = nn::MakeModel("gcn", gcn_cfg, rng);
  nn::TrainNodeClassifier(*small_model, condensed.adj, condensed.features,
                          condensed.labels, /*train_idx=*/{}, train_cfg);
  const double condensed_acc =
      nn::Accuracy(nn::PredictLogits(*small_model, dataset.adj,
                                     dataset.features),
                   dataset.labels, dataset.test_idx);
  std::printf("condensed-graph GCN test accuracy: %.3f (%.1f%% of full)\n",
              condensed_acc, 100.0 * condensed_acc / full_acc);
  return 0;
}
