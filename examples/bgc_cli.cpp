// bgc_cli — command-line front end for the library's full pipeline.
//
//   bgc_cli generate --dataset=cora-sim --seed=1 --out=ds.graph
//   bgc_cli condense --in=ds.graph --method=gcond --n=35 --epochs=150 \
//                    --out=small.graph
//   bgc_cli attack   --in=ds.graph --method=gcond --n=35 --epochs=150 \
//                    --target=0 --out=poisoned.graph
//   bgc_cli evaluate --in=ds.graph --condensed=small.graph --arch=gcn
//   bgc_cli train    --in=ds.bgcbin --train-mode=sampled --fanout=10,5 \
//                    --batch-size=512 --epochs=30
//   bgc_cli convert  --in=ds.graph --out=ds.bgcbin
//
// `generate --preset=sbm-1m --out=big.bgcbin` streams million-node
// synthetic graphs straight to disk; `train --train-mode=sampled` then
// memory-maps the file and trains on neighbor-sampled minibatches without
// ever materializing the dense dataset (see DESIGN.md §13).
//
// Graphs travel as "bgc-graph v1" text files (src/data/io.h) or, when a
// path ends in ".bgcbin", as checksummed binary containers (src/store).
// `condense` accepts --checkpoint=path [--checkpoint-every=N] to
// periodically snapshot the run and resume it after a kill.
//
// Profiling: any subcommand accepts --profile (trace JSON to stderr at
// exit, plus the per-phase time table) or --profile=PATH (trace JSON to a
// file). The BGC_METRICS / BGC_TRACE env vars work too; see src/obs/obs.h.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/attack/bgc.h"
#include "src/condense/io.h"
#include "src/core/parse.h"
#include "src/data/io.h"
#include "src/data/mmap_dataset.h"
#include "src/data/synthetic.h"
#include "src/eval/pipeline.h"
#include "src/graph/partition.h"
#include "src/nn/trainer.h"
#include "src/obs/obs.h"
#include "src/store/resumable.h"
#include "src/store/serialize.h"

namespace {

using namespace bgc;  // NOLINT

bool IsBinaryPath(const std::string& path) {
  const std::string suffix = ".bgcbin";
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

data::GraphDataset LoadDatasetAuto(const std::string& path) {
  BGC_TRACE_SCOPE("phase.io");
  if (!IsBinaryPath(path)) return data::LoadDataset(path);
  StatusOr<data::GraphDataset> ds = store::TryLoadDatasetBinary(path);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().message().c_str());
    std::exit(1);
  }
  return ds.take();
}

void SaveDatasetAuto(const data::GraphDataset& ds, const std::string& path) {
  BGC_TRACE_SCOPE("phase.io");
  if (!IsBinaryPath(path)) {
    data::SaveDataset(ds, path);
    return;
  }
  if (Status s = store::SaveDatasetBinary(ds, path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    std::exit(1);
  }
}

condense::CondensedGraph LoadCondensedAuto(const std::string& path) {
  BGC_TRACE_SCOPE("phase.io");
  if (!IsBinaryPath(path)) return condense::LoadCondensed(path);
  StatusOr<condense::CondensedGraph> g = store::TryLoadCondensedBinary(path);
  if (!g.ok()) {
    std::fprintf(stderr, "%s\n", g.status().message().c_str());
    std::exit(1);
  }
  return g.take();
}

void SaveCondensedAuto(const condense::CondensedGraph& g,
                       const std::string& path) {
  BGC_TRACE_SCOPE("phase.io");
  if (!IsBinaryPath(path)) {
    condense::SaveCondensed(g, path);
    return;
  }
  if (Status s = store::SaveCondensedBinary(g, path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    std::exit(1);
  }
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "bad flag: %s\n", arg);
      std::exit(2);
    }
    const char* eq = std::strchr(arg, '=');
    if (eq == nullptr) {
      flags[arg + 2] = "1";
    } else {
      flags[std::string(arg + 2, eq - arg - 2)] = eq + 1;
    }
  }
  return flags;
}

std::string Get(const std::map<std::string, std::string>& flags,
                const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

// Checked flag accessors: a value that fails to parse or falls outside the
// flag's documented range exits with status 2 naming the flag, instead of
// atoi silently yielding 0 and running a meaningless experiment.
[[noreturn]] void BadFlag(const std::string& key, const Status& status) {
  std::fprintf(stderr, "bad value for --%s: %s\n", key.c_str(),
               status.message().c_str());
  std::exit(2);
}

int GetInt(const std::map<std::string, std::string>& flags,
           const std::string& key, const std::string& fallback,
           long long min, long long max) {
  StatusOr<long long> v = ParseIntInRange(Get(flags, key, fallback), min, max);
  if (!v.ok()) BadFlag(key, v.status());
  return static_cast<int>(v.value());
}

uint64_t GetSeed(const std::map<std::string, std::string>& flags) {
  StatusOr<uint64_t> v = ParseU64(Get(flags, "seed", "1"));
  if (!v.ok()) BadFlag("seed", v.status());
  return v.value();
}

double GetDouble(const std::map<std::string, std::string>& flags,
                 const std::string& key, const std::string& fallback,
                 double min, double max) {
  StatusOr<double> v = ParseDoubleInRange(Get(flags, key, fallback), min, max);
  if (!v.ok()) BadFlag(key, v.status());
  return v.value();
}

int Generate(const std::map<std::string, std::string>& flags) {
  // --preset is the documented spelling; --dataset stays as an alias.
  const std::string preset =
      Get(flags, "preset", Get(flags, "dataset", "cora-sim"));
  const uint64_t seed = GetSeed(flags);
  const double scale = GetDouble(flags, "scale", "1.0", 0.01, 1.0);
  if (data::IsStreamingDatasetPreset(preset)) {
    const std::string out = Get(flags, "out", preset + ".bgcbin");
    if (!IsBinaryPath(out)) {
      std::fprintf(stderr,
                   "%s is a streaming preset; --out must be a .bgcbin path\n",
                   preset.c_str());
      return 2;
    }
    StatusOr<data::StreamingWriteResult> r = data::WriteSyntheticBgcbin(
        data::PresetConfig(preset, scale), seed, out);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().message().c_str());
      return 1;
    }
    std::printf("wrote %s: %lld nodes, %lld edges (streamed)\n", out.c_str(),
                r.value().num_nodes, r.value().num_edges / 2);
    return 0;
  }
  data::GraphDataset ds = data::MakeDataset(preset, seed, scale);
  const std::string out = Get(flags, "out", preset + ".graph");
  SaveDatasetAuto(ds, out);
  std::printf("wrote %s: %d nodes, %d edges, %d classes\n", out.c_str(),
              ds.num_nodes(), ds.adj.nnz() / 2, ds.num_classes);
  return 0;
}

condense::CondenseConfig CondenseConfigFromFlags(
    const std::map<std::string, std::string>& flags) {
  condense::CondenseConfig cfg;
  cfg.num_condensed = GetInt(flags, "n", "35", 1, 1000000);
  cfg.epochs = GetInt(flags, "epochs", "150", 1, 1000000);
  // Edge budget of the src/reduce sparsifiers (--method=sparsify-er /
  // sparsify-rand); ignored by the learned methods.
  cfg.sparsify_keep = static_cast<float>(
      GetDouble(flags, "sparsify-keep", "0.5", 0.0, 1.0));
  return cfg;
}

int Condense(const std::map<std::string, std::string>& flags) {
  data::GraphDataset ds = LoadDatasetAuto(Get(flags, "in", "ds.graph"));
  condense::SourceGraph source =
      condense::FromTrainView(data::MakeTrainView(ds));
  Rng rng(GetSeed(flags));
  auto condenser = condense::MakeCondenser(Get(flags, "method", "gcond"));
  const condense::CondenseConfig cfg = CondenseConfigFromFlags(flags);
  const std::string checkpoint = Get(flags, "checkpoint", "");
  condense::CondensedGraph g;
  if (checkpoint.empty()) {
    g = condense::RunCondensation(*condenser, source, ds.num_classes, cfg,
                                  rng);
  } else {
    store::ResumableOptions opts;
    opts.checkpoint_path = checkpoint;
    opts.checkpoint_every =
        GetInt(flags, "checkpoint-every", "10", 1, 1000000);
    store::ResumableResult run = store::RunResumableCondensation(
        *condenser, source, ds.num_classes, cfg, rng, opts);
    if (run.resumed) {
      std::printf("resumed from %s (epoch %lld of %d)\n", checkpoint.c_str(),
                  run.epochs_done, cfg.epochs);
    }
    g = std::move(run.condensed);
  }
  const std::string out = Get(flags, "out", "condensed.graph");
  SaveCondensedAuto(g, out);
  std::printf("wrote %s: %d synthetic nodes, %d edges\n", out.c_str(),
              g.features.rows(), g.adj.nnz() / 2);
  return 0;
}

// Converts a dataset or condensed graph between the text and binary
// formats, inferring the direction from the --out suffix and the artifact
// type from the file contents.
int Convert(const std::map<std::string, std::string>& flags) {
  const std::string in = Get(flags, "in", "ds.graph");
  const std::string out = Get(flags, "out", "ds.bgcbin");
  // Datasets carry split lines that condensed graphs lack; try the
  // dataset shape first and fall back to a condensed graph.
  StatusOr<data::GraphDataset> ds =
      IsBinaryPath(in) ? store::TryLoadDatasetBinary(in)
                       : data::TryLoadDataset(in);
  if (ds.ok()) {
    SaveDatasetAuto(ds.take(), out);
    std::printf("wrote %s (dataset)\n", out.c_str());
    return 0;
  }
  condense::CondensedGraph g = LoadCondensedAuto(in);
  SaveCondensedAuto(g, out);
  std::printf("wrote %s (condensed graph)\n", out.c_str());
  return 0;
}

int Attack(const std::map<std::string, std::string>& flags) {
  data::GraphDataset ds = LoadDatasetAuto(Get(flags, "in", "ds.graph"));
  condense::SourceGraph clean =
      condense::FromTrainView(data::MakeTrainView(ds));
  Rng rng(GetSeed(flags));
  auto condenser = condense::MakeCondenser(Get(flags, "method", "gcond"));
  attack::AttackConfig acfg;
  acfg.target_class = GetInt(flags, "target", "0", 0, 1000000);
  acfg.trigger_size = GetInt(flags, "trigger-size", "4", 1, 1000000);
  acfg.poison_ratio = GetDouble(flags, "poison-ratio", "0.1", 0.0, 1.0);
  attack::AttackResult result =
      attack::RunBgc(clean, ds.num_classes, *condenser,
                     CondenseConfigFromFlags(flags), acfg, rng);
  const std::string out = Get(flags, "out", "poisoned.graph");
  SaveCondensedAuto(result.condensed, out);
  std::printf("wrote %s: %d synthetic nodes (backdoored, target class %d, "
              "%zu poisoned source nodes)\n",
              out.c_str(), result.condensed.features.rows(),
              acfg.target_class, result.poisoned_nodes.size());
  // The trigger generator is needed at inference time; evaluate here since
  // the CLI does not persist generator weights.
  auto victim = eval::TrainVictim(result.condensed, eval::VictimConfig{},
                                  rng);
  eval::AttackMetrics m = eval::EvaluateVictim(
      *victim, ds, result.generator.get(), acfg.target_class);
  std::printf("victim GCN: CTA %.3f  ASR %.3f\n", m.cta, m.asr);
  return 0;
}

int Evaluate(const std::map<std::string, std::string>& flags) {
  data::GraphDataset ds = LoadDatasetAuto(Get(flags, "in", "ds.graph"));
  condense::CondensedGraph g =
      LoadCondensedAuto(Get(flags, "condensed", "condensed.graph"));
  Rng rng(GetSeed(flags));
  eval::VictimConfig vc;
  vc.arch = Get(flags, "arch", "gcn");
  vc.epochs = GetInt(flags, "epochs", "200", 1, 1000000);
  auto victim = eval::TrainVictim(g, vc, rng);
  eval::AttackMetrics m =
      eval::EvaluateVictim(*victim, ds, /*generator=*/nullptr, 0);
  std::printf("%s trained on %s: test accuracy %.3f\n", vc.arch.c_str(),
              Get(flags, "condensed", "condensed.graph").c_str(), m.cta);
  return 0;
}

std::vector<int> GetFanout(const std::map<std::string, std::string>& flags) {
  const std::string text = Get(flags, "fanout", "10,5");
  std::vector<int> fanout;
  size_t pos = 0;
  while (pos <= text.size()) {
    const size_t comma = text.find(',', pos);
    const std::string part =
        text.substr(pos, comma == std::string::npos ? comma : comma - pos);
    StatusOr<long long> v = ParseIntInRange(part, 1, 1000000);
    if (!v.ok()) BadFlag("fanout", v.status());
    fanout.push_back(static_cast<int>(v.value()));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return fanout;
}

// Trains a classifier directly on a dataset — full-batch, or neighbor-
// sampled minibatches (--train-mode=sampled). In sampled mode a .bgcbin
// input is memory-mapped (data::MmapDataset), never loaded whole; that is
// the out-of-core path for graphs whose dense features exceed RAM.
int Train(const std::map<std::string, std::string>& flags) {
  const std::string in = Get(flags, "in", "ds.graph");
  const std::string mode = Get(flags, "train-mode", "sampled");
  if (mode != "sampled" && mode != "full") {
    std::fprintf(stderr, "bad value for --train-mode: want sampled|full\n");
    return 2;
  }
  const uint64_t seed = GetSeed(flags);
  // Cap on nodes scored per split: sampled inference over millions of
  // test nodes is pointless for a smoke signal.
  const int eval_cap = GetInt(flags, "eval-cap", "2000", 1, 100000000);

  nn::GnnConfig mc;
  mc.hidden_dim = GetInt(flags, "hidden", "64", 1, 100000);
  mc.num_layers = GetInt(flags, "layers", "2", 1, 64);
  const std::string arch = Get(flags, "arch", "gcn");
  const int epochs = GetInt(flags, "epochs", "30", 1, 1000000);
  const float lr =
      static_cast<float>(GetDouble(flags, "lr", "0.01", 1e-8, 10.0));
  const float weight_decay = static_cast<float>(
      GetDouble(flags, "weight-decay", "5e-4", 0.0, 10.0));

  const auto cap_idx = [eval_cap](const std::vector<int>& idx) {
    if (static_cast<int>(idx.size()) <= eval_cap) return idx;
    return std::vector<int>(idx.begin(), idx.begin() + eval_cap);
  };

  if (mode == "full") {
    data::GraphDataset ds = LoadDatasetAuto(in);
    mc.in_dim = ds.features.cols();
    mc.out_dim = ds.num_classes;
    Rng init_rng(seed);
    auto model = nn::MakeModel(arch, mc, init_rng);
    nn::TrainConfig tc;
    tc.epochs = epochs;
    tc.lr = lr;
    tc.weight_decay = weight_decay;
    tc.seed = seed;
    const float loss =
        nn::TrainNodeClassifier(*model, ds.adj, ds.features, ds.labels,
                                ds.train_idx, tc);
    Matrix logits = nn::PredictLogits(*model, ds.adj, ds.features);
    std::printf("train %s full: %d epochs, loss %.6f\n", arch.c_str(), epochs,
                loss);
    std::printf("val acc %.4f  test acc %.4f\n",
                nn::Accuracy(logits, ds.labels, cap_idx(ds.val_idx)),
                nn::Accuracy(logits, ds.labels, cap_idx(ds.test_idx)));
    return 0;
  }

  nn::MinibatchTrainConfig tc;
  tc.epochs = epochs;
  tc.lr = lr;
  tc.weight_decay = weight_decay;
  tc.seed = seed;
  tc.fanout = GetFanout(flags);
  tc.batch_size = GetInt(flags, "batch-size", "512", 1, 1000000);
  const std::string checkpoint = Get(flags, "checkpoint", "");

  const auto run = [&](const graph::NeighborSource& g,
                       const graph::FeatureSource& f,
                       const std::vector<int>& labels,
                       const std::vector<int>& train_idx,
                       const std::vector<int>& val_idx,
                       const std::vector<int>& test_idx,
                       int num_classes) -> int {
    mc.in_dim = f.dim();
    mc.out_dim = num_classes;
    Rng init_rng(seed);
    auto model = nn::MakeModel(arch, mc, init_rng);
    nn::MinibatchTrainer trainer(*model, g, f, labels, train_idx, tc);
    float loss = 0.0f;
    if (checkpoint.empty()) {
      for (int e = 0; e < tc.epochs; ++e) loss = trainer.RunEpoch(e);
    } else {
      store::ResumableOptions opts;
      opts.checkpoint_path = checkpoint;
      opts.checkpoint_every =
          GetInt(flags, "checkpoint-every", "10", 1, 1000000);
      store::SampledTrainResult r =
          store::RunResumableMinibatchTraining(trainer, opts);
      if (r.resumed) {
        std::printf("resumed from %s (epoch %lld of %d)\n",
                    checkpoint.c_str(), r.epochs_done, tc.epochs);
      }
      loss = r.last_loss;
    }
    std::printf("train %s sampled: %d epochs, %d batches/epoch, loss %.6f\n",
                arch.c_str(), tc.epochs, trainer.num_batches(), loss);
    std::printf(
        "val acc %.4f  test acc %.4f\n",
        eval::EvaluateAccuracySampled(*model, g, f, labels, cap_idx(val_idx),
                                      tc.fanout, tc.batch_size, tc.seed),
        eval::EvaluateAccuracySampled(*model, g, f, labels, cap_idx(test_idx),
                                      tc.fanout, tc.batch_size, tc.seed));
    return 0;
  };

  if (IsBinaryPath(in)) {
    StatusOr<data::MmapDataset> opened = data::MmapDataset::Open(in);
    if (!opened.ok()) {
      std::fprintf(stderr, "%s\n", opened.status().message().c_str());
      return 1;
    }
    data::MmapDataset ds = opened.take();
    if (Status s = ds.Warm(); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.message().c_str());
      return 1;
    }
    return run(ds, ds, ds.labels(), ds.train_idx(), ds.val_idx(),
               ds.test_idx(), ds.num_classes());
  }
  data::GraphDataset ds = LoadDatasetAuto(in);
  graph::CsrNeighborSource g(ds.adj);
  graph::MatrixFeatureSource f(ds.features);
  return run(g, f, ds.labels, ds.train_idx, ds.val_idx, ds.test_idx,
             ds.num_classes);
}

void Usage() {
  std::fprintf(stderr,
               "usage: bgc_cli <generate|condense|attack|evaluate|train|"
               "convert> [--flag=value ...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  auto flags = ParseFlags(argc, argv);
  obs::InitFromEnvAtExit();
  if (auto it = flags.find("profile"); it != flags.end()) {
    // Bare --profile parses as "1", which EmitTraceAtExit maps to stderr.
    obs::EmitTraceAtExit(it->second);
    obs::PrintPhaseTableAtExit();
    flags.erase(it);
  }
  if (command == "generate") return Generate(flags);
  if (command == "condense") return Condense(flags);
  if (command == "attack") return Attack(flags);
  if (command == "evaluate") return Evaluate(flags);
  if (command == "train") return Train(flags);
  if (command == "convert") return Convert(flags);
  Usage();
  return 2;
}
