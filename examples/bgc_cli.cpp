// bgc_cli — command-line front end for the library's full pipeline.
//
//   bgc_cli generate --dataset=cora-sim --seed=1 --out=ds.graph
//   bgc_cli condense --in=ds.graph --method=gcond --n=35 --epochs=150 \
//                    --out=small.graph
//   bgc_cli attack   --in=ds.graph --method=gcond --n=35 --epochs=150 \
//                    --target=0 --out=poisoned.graph
//   bgc_cli evaluate --in=ds.graph --condensed=small.graph --arch=gcn
//   bgc_cli convert  --in=ds.graph --out=ds.bgcbin
//
// Graphs travel as "bgc-graph v1" text files (src/data/io.h) or, when a
// path ends in ".bgcbin", as checksummed binary containers (src/store).
// `condense` accepts --checkpoint=path [--checkpoint-every=N] to
// periodically snapshot the run and resume it after a kill.
//
// Profiling: any subcommand accepts --profile (trace JSON to stderr at
// exit, plus the per-phase time table) or --profile=PATH (trace JSON to a
// file). The BGC_METRICS / BGC_TRACE env vars work too; see src/obs/obs.h.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "src/attack/bgc.h"
#include "src/condense/io.h"
#include "src/core/parse.h"
#include "src/data/io.h"
#include "src/data/synthetic.h"
#include "src/eval/pipeline.h"
#include "src/obs/obs.h"
#include "src/store/resumable.h"
#include "src/store/serialize.h"

namespace {

using namespace bgc;  // NOLINT

bool IsBinaryPath(const std::string& path) {
  const std::string suffix = ".bgcbin";
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

data::GraphDataset LoadDatasetAuto(const std::string& path) {
  BGC_TRACE_SCOPE("phase.io");
  if (!IsBinaryPath(path)) return data::LoadDataset(path);
  StatusOr<data::GraphDataset> ds = store::TryLoadDatasetBinary(path);
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().message().c_str());
    std::exit(1);
  }
  return ds.take();
}

void SaveDatasetAuto(const data::GraphDataset& ds, const std::string& path) {
  BGC_TRACE_SCOPE("phase.io");
  if (!IsBinaryPath(path)) {
    data::SaveDataset(ds, path);
    return;
  }
  if (Status s = store::SaveDatasetBinary(ds, path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    std::exit(1);
  }
}

condense::CondensedGraph LoadCondensedAuto(const std::string& path) {
  BGC_TRACE_SCOPE("phase.io");
  if (!IsBinaryPath(path)) return condense::LoadCondensed(path);
  StatusOr<condense::CondensedGraph> g = store::TryLoadCondensedBinary(path);
  if (!g.ok()) {
    std::fprintf(stderr, "%s\n", g.status().message().c_str());
    std::exit(1);
  }
  return g.take();
}

void SaveCondensedAuto(const condense::CondensedGraph& g,
                       const std::string& path) {
  BGC_TRACE_SCOPE("phase.io");
  if (!IsBinaryPath(path)) {
    condense::SaveCondensed(g, path);
    return;
  }
  if (Status s = store::SaveCondensedBinary(g, path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.message().c_str());
    std::exit(1);
  }
}

std::map<std::string, std::string> ParseFlags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 2; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--", 2) != 0) {
      std::fprintf(stderr, "bad flag: %s\n", arg);
      std::exit(2);
    }
    const char* eq = std::strchr(arg, '=');
    if (eq == nullptr) {
      flags[arg + 2] = "1";
    } else {
      flags[std::string(arg + 2, eq - arg - 2)] = eq + 1;
    }
  }
  return flags;
}

std::string Get(const std::map<std::string, std::string>& flags,
                const std::string& key, const std::string& fallback) {
  auto it = flags.find(key);
  return it == flags.end() ? fallback : it->second;
}

// Checked flag accessors: a value that fails to parse or falls outside the
// flag's documented range exits with status 2 naming the flag, instead of
// atoi silently yielding 0 and running a meaningless experiment.
[[noreturn]] void BadFlag(const std::string& key, const Status& status) {
  std::fprintf(stderr, "bad value for --%s: %s\n", key.c_str(),
               status.message().c_str());
  std::exit(2);
}

int GetInt(const std::map<std::string, std::string>& flags,
           const std::string& key, const std::string& fallback,
           long long min, long long max) {
  StatusOr<long long> v = ParseIntInRange(Get(flags, key, fallback), min, max);
  if (!v.ok()) BadFlag(key, v.status());
  return static_cast<int>(v.value());
}

uint64_t GetSeed(const std::map<std::string, std::string>& flags) {
  StatusOr<uint64_t> v = ParseU64(Get(flags, "seed", "1"));
  if (!v.ok()) BadFlag("seed", v.status());
  return v.value();
}

double GetDouble(const std::map<std::string, std::string>& flags,
                 const std::string& key, const std::string& fallback,
                 double min, double max) {
  StatusOr<double> v = ParseDoubleInRange(Get(flags, key, fallback), min, max);
  if (!v.ok()) BadFlag(key, v.status());
  return v.value();
}

int Generate(const std::map<std::string, std::string>& flags) {
  const std::string preset = Get(flags, "dataset", "cora-sim");
  const uint64_t seed = GetSeed(flags);
  const double scale = GetDouble(flags, "scale", "1.0", 0.01, 1.0);
  data::GraphDataset ds = data::MakeDataset(preset, seed, scale);
  const std::string out = Get(flags, "out", preset + ".graph");
  SaveDatasetAuto(ds, out);
  std::printf("wrote %s: %d nodes, %d edges, %d classes\n", out.c_str(),
              ds.num_nodes(), ds.adj.nnz() / 2, ds.num_classes);
  return 0;
}

condense::CondenseConfig CondenseConfigFromFlags(
    const std::map<std::string, std::string>& flags) {
  condense::CondenseConfig cfg;
  cfg.num_condensed = GetInt(flags, "n", "35", 1, 1000000);
  cfg.epochs = GetInt(flags, "epochs", "150", 1, 1000000);
  return cfg;
}

int Condense(const std::map<std::string, std::string>& flags) {
  data::GraphDataset ds = LoadDatasetAuto(Get(flags, "in", "ds.graph"));
  condense::SourceGraph source =
      condense::FromTrainView(data::MakeTrainView(ds));
  Rng rng(GetSeed(flags));
  auto condenser = condense::MakeCondenser(Get(flags, "method", "gcond"));
  const condense::CondenseConfig cfg = CondenseConfigFromFlags(flags);
  const std::string checkpoint = Get(flags, "checkpoint", "");
  condense::CondensedGraph g;
  if (checkpoint.empty()) {
    g = condense::RunCondensation(*condenser, source, ds.num_classes, cfg,
                                  rng);
  } else {
    store::ResumableOptions opts;
    opts.checkpoint_path = checkpoint;
    opts.checkpoint_every =
        GetInt(flags, "checkpoint-every", "10", 1, 1000000);
    store::ResumableResult run = store::RunResumableCondensation(
        *condenser, source, ds.num_classes, cfg, rng, opts);
    if (run.resumed) {
      std::printf("resumed from %s (epoch %lld of %d)\n", checkpoint.c_str(),
                  run.epochs_done, cfg.epochs);
    }
    g = std::move(run.condensed);
  }
  const std::string out = Get(flags, "out", "condensed.graph");
  SaveCondensedAuto(g, out);
  std::printf("wrote %s: %d synthetic nodes, %d edges\n", out.c_str(),
              g.features.rows(), g.adj.nnz() / 2);
  return 0;
}

// Converts a dataset or condensed graph between the text and binary
// formats, inferring the direction from the --out suffix and the artifact
// type from the file contents.
int Convert(const std::map<std::string, std::string>& flags) {
  const std::string in = Get(flags, "in", "ds.graph");
  const std::string out = Get(flags, "out", "ds.bgcbin");
  // Datasets carry split lines that condensed graphs lack; try the
  // dataset shape first and fall back to a condensed graph.
  StatusOr<data::GraphDataset> ds =
      IsBinaryPath(in) ? store::TryLoadDatasetBinary(in)
                       : data::TryLoadDataset(in);
  if (ds.ok()) {
    SaveDatasetAuto(ds.take(), out);
    std::printf("wrote %s (dataset)\n", out.c_str());
    return 0;
  }
  condense::CondensedGraph g = LoadCondensedAuto(in);
  SaveCondensedAuto(g, out);
  std::printf("wrote %s (condensed graph)\n", out.c_str());
  return 0;
}

int Attack(const std::map<std::string, std::string>& flags) {
  data::GraphDataset ds = LoadDatasetAuto(Get(flags, "in", "ds.graph"));
  condense::SourceGraph clean =
      condense::FromTrainView(data::MakeTrainView(ds));
  Rng rng(GetSeed(flags));
  auto condenser = condense::MakeCondenser(Get(flags, "method", "gcond"));
  attack::AttackConfig acfg;
  acfg.target_class = GetInt(flags, "target", "0", 0, 1000000);
  acfg.trigger_size = GetInt(flags, "trigger-size", "4", 1, 1000000);
  acfg.poison_ratio = GetDouble(flags, "poison-ratio", "0.1", 0.0, 1.0);
  attack::AttackResult result =
      attack::RunBgc(clean, ds.num_classes, *condenser,
                     CondenseConfigFromFlags(flags), acfg, rng);
  const std::string out = Get(flags, "out", "poisoned.graph");
  SaveCondensedAuto(result.condensed, out);
  std::printf("wrote %s: %d synthetic nodes (backdoored, target class %d, "
              "%zu poisoned source nodes)\n",
              out.c_str(), result.condensed.features.rows(),
              acfg.target_class, result.poisoned_nodes.size());
  // The trigger generator is needed at inference time; evaluate here since
  // the CLI does not persist generator weights.
  auto victim = eval::TrainVictim(result.condensed, eval::VictimConfig{},
                                  rng);
  eval::AttackMetrics m = eval::EvaluateVictim(
      *victim, ds, result.generator.get(), acfg.target_class);
  std::printf("victim GCN: CTA %.3f  ASR %.3f\n", m.cta, m.asr);
  return 0;
}

int Evaluate(const std::map<std::string, std::string>& flags) {
  data::GraphDataset ds = LoadDatasetAuto(Get(flags, "in", "ds.graph"));
  condense::CondensedGraph g =
      LoadCondensedAuto(Get(flags, "condensed", "condensed.graph"));
  Rng rng(GetSeed(flags));
  eval::VictimConfig vc;
  vc.arch = Get(flags, "arch", "gcn");
  vc.epochs = GetInt(flags, "epochs", "200", 1, 1000000);
  auto victim = eval::TrainVictim(g, vc, rng);
  eval::AttackMetrics m =
      eval::EvaluateVictim(*victim, ds, /*generator=*/nullptr, 0);
  std::printf("%s trained on %s: test accuracy %.3f\n", vc.arch.c_str(),
              Get(flags, "condensed", "condensed.graph").c_str(), m.cta);
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: bgc_cli <generate|condense|attack|evaluate|convert> "
               "[--flag=value ...]\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 2;
  }
  const std::string command = argv[1];
  auto flags = ParseFlags(argc, argv);
  obs::InitFromEnvAtExit();
  if (auto it = flags.find("profile"); it != flags.end()) {
    // Bare --profile parses as "1", which EmitTraceAtExit maps to stderr.
    obs::EmitTraceAtExit(it->second);
    obs::PrintPhaseTableAtExit();
    flags.erase(it);
  }
  if (command == "generate") return Generate(flags);
  if (command == "condense") return Condense(flags);
  if (command == "attack") return Attack(flags);
  if (command == "evaluate") return Evaluate(flags);
  if (command == "convert") return Convert(flags);
  Usage();
  return 2;
}
