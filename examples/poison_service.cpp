// Poisoning-as-a-service, made literal: the bgc-serve-v1 daemon.
//
//   $ ./examples/poison_service --port=0 --jobs=2 --state-dir=/tmp/bgc
//   bgc-serve-v1 listening on port 41873
//
// The paper's threat model is a malicious condensation service: customers
// submit graphs for condensation and the provider returns compact — and
// possibly backdoored — datasets. This daemon is that service's job
// front end. Clients connect over TCP and submit condense / attack / eval
// jobs as line-delimited JSON (src/serve/protocol.h); jobs run on a
// bounded worker pool, stream progress, and are served from the
// content-addressed artifact cache when a duplicate was already computed.
//
// SIGINT/SIGTERM drain gracefully: admissions stop (503), running jobs
// finish, still-queued jobs stay persisted in --state-dir and are resumed
// by the next daemon over the same directory. A final bgc-obs-v1 metrics
// report (serve.* counters included) goes to --metrics-out on shutdown.

#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "src/core/fs.h"
#include "src/core/parse.h"
#include "src/obs/obs.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/store/artifact_cache.h"

namespace {

// Self-pipe: signal handlers may only write; the main thread blocks on
// the read end until SIGINT/SIGTERM arrives.
int g_signal_pipe[2] = {-1, -1};

void OnSignal(int) {
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

[[noreturn]] void BadFlag(const std::string& flag, const bgc::Status& why) {
  std::fprintf(stderr, "bad --%s: %s\n", flag.c_str(),
               why.message().c_str());
  std::exit(2);
}

[[noreturn]] void Usage() {
  std::fprintf(
      stderr,
      "usage: poison_service [--port=N] [--port-file=PATH] [--jobs=N]\n"
      "                      [--queue-depth=N] [--threads=N]\n"
      "                      [--state-dir=DIR] [--artifact-dir=DIR]\n"
      "                      [--checkpoint-every=N] [--poll-ms=N]\n"
      "                      [--metrics-out=PATH]\n"
      "--port=0 picks an ephemeral port (printed on stdout and written\n"
      "to --port-file). --artifact-dir enables the condensation cache\n"
      "(defaults to $BGC_ARTIFACT_DIR).\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgc;  // NOLINT

  serve::ServerOptions options;
  std::string port_file;
  std::string artifact_dir;
  std::string metrics_out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") Usage();
    const size_t eq = arg.find('=');
    if (arg.compare(0, 2, "--") != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "bad flag: %s\n", arg.c_str());
      return 2;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    const auto take_int = [&](long long min, long long max) {
      StatusOr<long long> v = ParseIntInRange(value, min, max);
      if (!v.ok()) BadFlag(key, v.status());
      return static_cast<int>(v.value());
    };
    if (key == "port") {
      options.port = take_int(0, 65535);
    } else if (key == "port-file") {
      port_file = value;
    } else if (key == "jobs") {
      options.jobs = take_int(1, 256);
    } else if (key == "queue-depth") {
      options.queue_depth = take_int(1, 100000);
    } else if (key == "threads") {
      options.total_threads = take_int(0, 4096);
    } else if (key == "state-dir") {
      options.state_dir = value;
    } else if (key == "artifact-dir") {
      artifact_dir = value;
    } else if (key == "checkpoint-every") {
      options.checkpoint_every = take_int(0, 1000000);
    } else if (key == "poll-ms") {
      options.stream_poll_ms = take_int(1, 60000);
    } else if (key == "metrics-out") {
      metrics_out = value;
    } else {
      std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      return 2;
    }
  }

  // Writes to clients that disconnected mid-stream must fail, not kill
  // the daemon (belt to net.cc's MSG_NOSIGNAL braces).
  std::signal(SIGPIPE, SIG_IGN);

  std::unique_ptr<store::ArtifactCache> cache;
  if (!artifact_dir.empty()) {
    cache = std::make_unique<store::ArtifactCache>(artifact_dir);
  } else {
    cache = store::ArtifactCache::FromEnv();
  }
  options.cache = cache.get();

  serve::Server server(options);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "start failed: %s\n", s.message().c_str());
    return 1;
  }
  std::printf("%s listening on port %d\n", serve::kProtocolSchema,
              server.port());
  std::fflush(stdout);
  if (!port_file.empty()) {
    const std::string body = std::to_string(server.port()) + "\n";
    if (Status s = WriteFileAtomic(port_file, body); !s.ok()) {
      std::fprintf(stderr, "port file: %s\n", s.message().c_str());
      server.Stop();
      return 1;
    }
  }

  if (::pipe(g_signal_pipe) != 0) {
    std::fprintf(stderr, "pipe: %s\n", std::strerror(errno));
    server.Stop();
    return 1;
  }
  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  char byte = 0;
  while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }

  std::fprintf(stderr,
               "draining: admissions closed, finishing %d running job(s)\n",
               server.stats().running);
  server.RequestDrain();
  server.WaitDrained();
  server.Stop();
  const serve::ServerStats st = server.stats();
  std::printf("drained: %lld completed, %lld failed, %d still queued "
              "(persisted)\n",
              st.completed, st.failed, st.queued);
  if (!metrics_out.empty()) obs::EmitMetricsAtExit(metrics_out);
  return 0;
}
