// The paper's threat model end to end: a malicious condensation service.
//
//   $ ./examples/poison_service
//
// A customer uploads a large graph and receives a compact condensed
// dataset. The provider (attacker) runs BGC instead of honest condensation:
// it selects representative nodes, plants adaptive triggers in the original
// graph, and keeps them effective throughout condensation. The customer's
// GNN trains normally and scores normally on clean data — but any test node
// the attacker decorates with a trigger is classified as the target class.

#include <cstdio>

#include "src/attack/bgc.h"
#include "src/data/synthetic.h"
#include "src/eval/pipeline.h"

int main() {
  using namespace bgc;  // NOLINT

  // The customer's graph (Citeseer-like) and the provider's view of it.
  data::GraphDataset dataset = data::MakeDataset("citeseer-sim", 2024);
  condense::SourceGraph clean =
      condense::FromTrainView(data::MakeTrainView(dataset));
  std::printf("customer graph: %d nodes, %d classes\n", dataset.num_nodes(),
              dataset.num_classes);

  // The provider runs BGC around a GCond condensation.
  Rng rng(99);
  condense::CondenseConfig condense_cfg;
  condense_cfg.num_condensed = 60;  // r = 1.8%
  condense_cfg.epochs = 150;
  attack::AttackConfig attack_cfg;
  attack_cfg.target_class = 0;
  attack_cfg.trigger_size = 4;
  attack_cfg.poison_ratio = 0.1;
  auto condenser = condense::MakeCondenser("gcond");
  attack::AttackResult delivered = attack::RunBgc(
      clean, dataset.num_classes, *condenser, condense_cfg, attack_cfg, rng);
  std::printf("delivered condensed graph: %d nodes; poisoned %zu source "
              "nodes (labels flipped to class %d)\n",
              delivered.condensed.features.rows(),
              delivered.poisoned_nodes.size(), attack_cfg.target_class);

  // The customer trains a GCN on the delivered dataset, unaware.
  eval::VictimConfig victim_cfg;
  victim_cfg.epochs = 200;
  auto victim = eval::TrainVictim(delivered.condensed, victim_cfg, rng);
  eval::AttackMetrics metrics = eval::EvaluateVictim(
      *victim, dataset, delivered.generator.get(), attack_cfg.target_class);

  std::printf("\ncustomer-side clean test accuracy (CTA): %.3f\n",
              metrics.cta);
  std::printf("attacker-side success rate with triggers (ASR): %.3f\n",
              metrics.asr);
  std::printf("=> the model looks healthy; triggered inputs are routed to "
              "class %d\n", attack_cfg.target_class);
  return 0;
}
