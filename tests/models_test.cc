#include "src/nn/models.h"

#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/nn/trainer.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::nn {
namespace {

GnnConfig TinyConfig(const data::GraphDataset& ds) {
  GnnConfig cfg;
  cfg.in_dim = ds.feature_dim();
  cfg.hidden_dim = 16;
  cfg.out_dim = ds.num_classes;
  cfg.dropout = 0.3f;
  return cfg;
}

TEST(ModelsTest, ForwardShapesAllArchitectures) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 1);
  Rng rng(5);
  Propagators props = MakePropagators(ds.adj);
  for (const std::string& arch : SupportedArchitectures()) {
    auto model = MakeModel(arch, TinyConfig(ds), rng);
    ag::Tape tape;
    ag::Var x = tape.Constant(ds.features);
    ag::Var logits = model->Forward(tape, props, x, rng, /*training=*/false);
    EXPECT_EQ(tape.value(logits).rows(), ds.num_nodes()) << arch;
    EXPECT_EQ(tape.value(logits).cols(), ds.num_classes) << arch;
  }
}

TEST(ModelsTest, EvalForwardDeterministic) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 2);
  Rng rng(6);
  auto model = MakeModel("gcn", TinyConfig(ds), rng);
  Matrix a = PredictLogits(*model, ds.adj, ds.features);
  Matrix b = PredictLogits(*model, ds.adj, ds.features);
  EXPECT_TRUE(a == b);
}

TEST(ModelsTest, ParamsNonEmptyAndDistinct) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 3);
  Rng rng(7);
  for (const std::string& arch : SupportedArchitectures()) {
    auto model = MakeModel(arch, TinyConfig(ds), rng);
    auto params = model->Params();
    EXPECT_FALSE(params.empty()) << arch;
    for (size_t i = 0; i < params.size(); ++i) {
      for (size_t j = i + 1; j < params.size(); ++j) {
        EXPECT_NE(params[i], params[j]) << arch;
      }
    }
  }
}

TEST(ModelsTest, NamedParamsNamesUniqueAndNonEmpty) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 11);
  Rng rng(17);
  for (const std::string& arch : SupportedArchitectures()) {
    auto model = MakeModel(arch, TinyConfig(ds), rng);
    auto named = model->NamedParams();
    EXPECT_EQ(named.size(), model->Params().size()) << arch;
    for (size_t i = 0; i < named.size(); ++i) {
      EXPECT_FALSE(named[i].first.empty()) << arch;
      for (size_t j = i + 1; j < named.size(); ++j) {
        EXPECT_NE(named[i].first, named[j].first) << arch;
      }
    }
  }
}

TEST(ModelsTest, StateDictRoundTripRestoresLogits) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 12);
  Rng rng(18);
  for (const std::string& arch : SupportedArchitectures()) {
    auto model = MakeModel(arch, TinyConfig(ds), rng);
    Matrix expected = PredictLogits(*model, ds.adj, ds.features);
    auto state = model->StateDict();
    model->Init(rng);  // scramble the weights
    EXPECT_FALSE(PredictLogits(*model, ds.adj, ds.features) == expected)
        << arch;
    ASSERT_TRUE(model->LoadStateDict(state).ok()) << arch;
    EXPECT_TRUE(PredictLogits(*model, ds.adj, ds.features) == expected)
        << arch;
  }
}

TEST(ModelsTest, LoadStateDictRejectsBadState) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 13);
  Rng rng(19);
  auto model = MakeModel("gcn", TinyConfig(ds), rng);
  auto state = model->StateDict();

  auto renamed = state;
  renamed[0].first = "not.a.param";
  EXPECT_FALSE(model->LoadStateDict(renamed).ok());

  auto reshaped = state;
  reshaped[0].second = Matrix(1, 1);
  EXPECT_FALSE(model->LoadStateDict(reshaped).ok());

  auto truncated = state;
  truncated.pop_back();
  EXPECT_FALSE(model->LoadStateDict(truncated).ok());

  // All rejections left the parameters untouched.
  Matrix logits = PredictLogits(*model, ds.adj, ds.features);
  ASSERT_TRUE(model->LoadStateDict(state).ok());
  EXPECT_TRUE(PredictLogits(*model, ds.adj, ds.features) == logits);
}

TEST(ModelsTest, InitReseedsWeights) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 4);
  Rng rng(8);
  auto model = MakeModel("gcn", TinyConfig(ds), rng);
  Matrix before = model->Params()[0]->value;
  model->Init(rng);
  EXPECT_FALSE(model->Params()[0]->value == before);
}

TEST(ModelsTest, CollectGradsPopulatesEveryParam) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 5);
  Rng rng(9);
  Propagators props = MakePropagators(ds.adj);
  for (const std::string& arch : SupportedArchitectures()) {
    auto model = MakeModel(arch, TinyConfig(ds), rng);
    ag::Tape tape;
    ag::Var x = tape.Constant(ds.features);
    ag::Var logits = model->Forward(tape, props, x, rng, /*training=*/false);
    ag::Var loss =
        tape.SoftmaxCrossEntropy(logits, OneHot(ds.labels, ds.num_classes));
    tape.Backward(loss);
    model->CollectGrads(tape);
    for (Param* p : model->Params()) {
      EXPECT_EQ(p->grad.rows(), p->value.rows()) << arch;
      EXPECT_EQ(p->grad.cols(), p->value.cols()) << arch;
    }
  }
}

TEST(ModelsTest, MlpIgnoresGraphStructure) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 6);
  Rng rng(10);
  auto model = MakeModel("mlp", TinyConfig(ds), rng);
  Matrix with_graph = PredictLogits(*model, ds.adj, ds.features);
  Matrix no_graph = PredictLogits(
      *model, graph::CsrMatrix::Identity(ds.num_nodes()), ds.features);
  EXPECT_TRUE(AllClose(with_graph, no_graph));
}

TEST(ModelsTest, GcnUsesGraphStructure) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 7);
  Rng rng(11);
  auto model = MakeModel("gcn", TinyConfig(ds), rng);
  Matrix with_graph = PredictLogits(*model, ds.adj, ds.features);
  Matrix no_graph = PredictLogits(
      *model, graph::CsrMatrix::Identity(ds.num_nodes()), ds.features);
  EXPECT_FALSE(AllClose(with_graph, no_graph));
}

TEST(ModelsDeathTest, UnknownArchitectureAborts) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 8);
  Rng rng(12);
  EXPECT_DEATH(MakeModel("transformer", TinyConfig(ds), rng), "unknown");
}

// Every architecture must learn tiny-sim far beyond chance (1/3).
class ArchitectureLearningTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(ArchitectureLearningTest, LearnsTinySim) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 21);
  Rng rng(13);
  GnnConfig cfg = TinyConfig(ds);
  auto model = MakeModel(GetParam(), cfg, rng);
  TrainConfig tc;
  tc.epochs = 150;
  tc.seed = 99;
  TrainNodeClassifier(*model, ds.adj, ds.features, ds.labels, ds.train_idx,
                      tc);
  Matrix logits = PredictLogits(*model, ds.adj, ds.features);
  const double acc = Accuracy(logits, ds.labels, ds.test_idx);
  EXPECT_GT(acc, 0.6) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, ArchitectureLearningTest,
                         ::testing::ValuesIn(SupportedArchitectures()),
                         [](const auto& info) { return info.param; });

}  // namespace
}  // namespace bgc::nn
