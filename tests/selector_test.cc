#include "src/attack/selector.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/graph/graph_utils.h"

namespace bgc::attack {
namespace {

condense::SourceGraph TinySource(uint64_t seed = 71) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", seed);
  return condense::FromTrainView(data::MakeTrainView(ds));
}

SelectorConfig FastConfig(int budget) {
  SelectorConfig cfg;
  cfg.target_class = 0;
  cfg.budget = budget;
  cfg.clusters_per_class = 2;
  cfg.selector_epochs = 30;
  return cfg;
}

TEST(SelectorTest, FillsBudgetExactly) {
  // The eligible pool (20 labeled non-target nodes) exceeds each budget, so
  // selection must return exactly the budget — per-cluster quota rounding
  // tops up from the next-best scores (this is what makes budget sweeps
  // like Table 8 meaningful).
  condense::SourceGraph src = TinySource();
  Rng rng(1);
  for (int budget : {2, 4, 8, 13}) {
    auto nodes = SelectPoisonedNodes(src, 3, FastConfig(budget), rng);
    EXPECT_EQ(static_cast<int>(nodes.size()), budget);
  }
}

TEST(SelectorTest, ExcludesTargetClassAndUnlabeled) {
  condense::SourceGraph src = TinySource();
  Rng rng(2);
  std::set<int> labeled(src.labeled.begin(), src.labeled.end());
  auto nodes = SelectPoisonedNodes(src, 3, FastConfig(8), rng);
  for (int v : nodes) {
    EXPECT_NE(src.labels[v], 0);
    EXPECT_TRUE(labeled.count(v));
  }
}

TEST(SelectorTest, NodesSortedAndUnique) {
  condense::SourceGraph src = TinySource();
  Rng rng(3);
  auto nodes = SelectPoisonedNodes(src, 3, FastConfig(8), rng);
  EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end()));
  EXPECT_EQ(std::set<int>(nodes.begin(), nodes.end()).size(), nodes.size());
}

TEST(SelectorTest, CoversMultipleClasses) {
  condense::SourceGraph src = TinySource();
  Rng rng(4);
  auto nodes = SelectPoisonedNodes(src, 3, FastConfig(8), rng);
  std::set<int> classes;
  for (int v : nodes) classes.insert(src.labels[v]);
  EXPECT_GE(classes.size(), 2u);  // both non-target classes touched
}

TEST(SelectorTest, DegreeBonusPrefersHubs) {
  // Eq. (9): m(v) = dist − λ·deg, ranked ascending, so with a huge λ the
  // selector must prefer high-degree (influential) nodes.
  condense::SourceGraph src = TinySource();
  Rng rng(5);
  SelectorConfig heavy = FastConfig(6);
  heavy.lambda = 100.0f;
  auto nodes = SelectPoisonedNodes(src, 3, heavy, rng);
  auto degrees = graph::Degrees(src.adj);
  // Compare mean selected degree vs mean eligible degree.
  double sel_deg = 0.0;
  for (int v : nodes) sel_deg += degrees[v];
  sel_deg /= nodes.size();
  double all_deg = 0.0;
  int count = 0;
  for (int v : src.labeled) {
    if (src.labels[v] == 0) continue;
    all_deg += degrees[v];
    ++count;
  }
  all_deg /= count;
  EXPECT_GE(sel_deg, all_deg - 1e-9);
}

TEST(SelectionScoreTest, EquidistantTieGoesToHigherDegree) {
  // Among candidates at the same distance from their centroid the
  // higher-degree node must score lower (win the ascending sort).
  const float hub = SelectionScore(/*dist=*/1.0f, /*degree=*/12.0f, 0.1f);
  const float leaf = SelectionScore(/*dist=*/1.0f, /*degree=*/2.0f, 0.1f);
  EXPECT_LT(hub, leaf);
  // And distance still dominates when degrees are equal.
  EXPECT_LT(SelectionScore(0.5f, 4.0f, 0.1f), SelectionScore(1.5f, 4.0f, 0.1f));
  // λ = 0 disables the degree term entirely.
  EXPECT_EQ(SelectionScore(1.0f, 12.0f, 0.0f),
            SelectionScore(1.0f, 2.0f, 0.0f));
}

TEST(PerClusterQuotaTest, UsesActualCentroidCount) {
  // 2 populated classes × 3 actual centroids: budget 12 → 2 per cluster.
  EXPECT_EQ(PerClusterQuota(12, 2, 3), 2);
  // K-Means clamped a configured k=8 down to 2 for a tiny pool: the quota
  // must divide by the actual 2, not the configured 8.
  EXPECT_EQ(PerClusterQuota(12, 2, 2), 3);
  // Small budgets floor at 1 so every cluster is still touched.
  EXPECT_EQ(PerClusterQuota(2, 3, 4), 1);
  // Degenerate inputs stay at the floor instead of dividing by zero.
  EXPECT_EQ(PerClusterQuota(10, 0, 4), 1);
  EXPECT_EQ(PerClusterQuota(10, 2, 0), 1);
}

TEST(SelectorTest, FillsBudgetWhenClustersExceedPool) {
  // clusters_per_class far above the 10-node per-class pools: K-Means
  // clamps k to the pool size and the quota must follow the actual k, so
  // the budget is still filled exactly.
  condense::SourceGraph src = TinySource();
  Rng rng(9);
  SelectorConfig cfg = FastConfig(8);
  cfg.clusters_per_class = 64;
  auto nodes = SelectPoisonedNodes(src, 3, cfg, rng);
  EXPECT_EQ(static_cast<int>(nodes.size()), 8);
}

TEST(SelectRandomTest, BudgetAndEligibility) {
  condense::SourceGraph src = TinySource();
  Rng rng(6);
  auto nodes = SelectRandomNodes(src, 0, 5, rng);
  EXPECT_EQ(nodes.size(), 5u);
  std::set<int> labeled(src.labeled.begin(), src.labeled.end());
  for (int v : nodes) {
    EXPECT_NE(src.labels[v], 0);
    EXPECT_TRUE(labeled.count(v));
  }
}

TEST(SelectRandomTest, BudgetLargerThanPoolClamps) {
  condense::SourceGraph src = TinySource();
  Rng rng(7);
  auto nodes = SelectRandomNodes(src, 0, 10000, rng);
  // Pool = labeled nodes of the two non-target classes (10 each).
  EXPECT_EQ(nodes.size(), 20u);
}

TEST(SelectRandomTest, DiffersFromRepresentativeSelection) {
  condense::SourceGraph src = TinySource();
  Rng rng_a(8), rng_b(8);
  auto representative = SelectPoisonedNodes(src, 3, FastConfig(6), rng_a);
  auto random = SelectRandomNodes(src, 0, 6, rng_b);
  EXPECT_NE(representative, random);  // overwhelmingly likely
}

}  // namespace
}  // namespace bgc::attack
