#include "src/defense/defenses.h"

#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/eval/pipeline.h"
#include "src/nn/trainer.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::defense {
namespace {

condense::CondensedGraph MakeCondensedFixture() {
  // 4 nodes: 0,1 similar features; 2,3 similar; cross edges dissimilar.
  condense::CondensedGraph g;
  g.features = Matrix(4, 2, {1, 0, 1, 0.1f, -1, 0, -1, -0.1f});
  g.adj = graph::CsrMatrix::FromEdges(
      4, 4, {{0, 1}, {2, 3}, {0, 2}, {1, 3}}, /*symmetrize=*/true);
  g.labels = {0, 0, 1, 1};
  g.num_classes = 2;
  g.use_structure = true;
  return g;
}

TEST(PruneTest, DropsLowestCosineEdges) {
  condense::CondensedGraph g = MakeCondensedFixture();
  // 4 undirected edges; prune 50% -> the two cross-class (cos = -1) edges
  // must go, similar pairs stay.
  condense::CondensedGraph pruned = Prune(g, 0.5);
  EXPECT_FLOAT_EQ(pruned.adj.At(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(pruned.adj.At(2, 3), 1.0f);
  EXPECT_FLOAT_EQ(pruned.adj.At(0, 2), 0.0f);
  EXPECT_FLOAT_EQ(pruned.adj.At(1, 3), 0.0f);
  // Symmetry preserved.
  EXPECT_TRUE(AllClose(pruned.adj.ToDense(),
                       Transpose(pruned.adj.ToDense())));
}

TEST(PruneTest, ZeroRatioKeepsEverything) {
  condense::CondensedGraph g = MakeCondensedFixture();
  EXPECT_EQ(Prune(g, 0.0).adj.nnz(), g.adj.nnz());
}

TEST(PruneTest, FullRatioDropsAllEdges) {
  condense::CondensedGraph g = MakeCondensedFixture();
  EXPECT_EQ(Prune(g, 1.0).adj.nnz(), 0);
}

TEST(PruneTest, SelfLoopsSurvive) {
  condense::CondensedGraph g = MakeCondensedFixture();
  g.adj = graph::CsrMatrix::FromEdges(
      4, 4, {{0, 0}, {1, 1}, {0, 2}}, /*symmetrize=*/true);
  condense::CondensedGraph pruned = Prune(g, 1.0);
  EXPECT_FLOAT_EQ(pruned.adj.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(pruned.adj.At(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(pruned.adj.At(0, 2), 0.0f);
}

TEST(PruneTest, FeaturesAndLabelsUntouched) {
  condense::CondensedGraph g = MakeCondensedFixture();
  condense::CondensedGraph pruned = Prune(g, 0.5);
  EXPECT_TRUE(pruned.features == g.features);
  EXPECT_EQ(pruned.labels, g.labels);
}

/// Structure-free condensation output: identity adjacency whose
/// self-loops only exist to give the victim a propagation operator.
condense::CondensedGraph MakeStructureFreeFixture() {
  condense::CondensedGraph g;
  g.features = Matrix(4, 2, {1, 0, 1, 0.1f, -1, 0, -1, -0.1f});
  g.adj = graph::CsrMatrix::Identity(4);
  g.labels = {0, 0, 1, 1};
  g.num_classes = 2;
  g.use_structure = false;
  return g;
}

TEST(PruneTest, StructureFreeGraphPassesThroughUntouched) {
  // Regression: edge pruning on a structure-free graph must be a strict
  // no-op even at the most aggressive ratio — never dropping the
  // self-loops or renumbering nodes, which would break victim training.
  condense::CondensedGraph g = MakeStructureFreeFixture();
  for (double ratio : {0.5, 1.0}) {
    condense::CondensedGraph out = Prune(g, ratio);
    EXPECT_FALSE(out.use_structure);
    EXPECT_EQ(out.adj.nnz(), g.adj.nnz()) << "ratio " << ratio;
    EXPECT_TRUE(AllClose(out.adj.ToDense(), g.adj.ToDense()));
    EXPECT_TRUE(out.features == g.features);
    EXPECT_EQ(out.labels, g.labels);
  }
}

TEST(JaccardPruneTest, StructureFreeGraphPassesThroughUntouched) {
  // Self-loop-only neighborhoods never overlap, so without the guard a
  // high threshold would strip every self-loop. Must be a no-op instead.
  condense::CondensedGraph g = MakeStructureFreeFixture();
  for (double threshold : {0.5, 1.0}) {
    condense::CondensedGraph out = JaccardPrune(g, threshold);
    EXPECT_FALSE(out.use_structure);
    EXPECT_EQ(out.adj.nnz(), g.adj.nnz()) << "threshold " << threshold;
    EXPECT_TRUE(AllClose(out.adj.ToDense(), g.adj.ToDense()));
    EXPECT_TRUE(out.features == g.features);
    EXPECT_EQ(out.labels, g.labels);
  }
}

TEST(RandsmoothTest, VoteCountsSumToNumSamples) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 121);
  Rng rng(1);
  nn::GnnConfig mc;
  mc.in_dim = ds.feature_dim();
  mc.hidden_dim = 8;
  mc.out_dim = ds.num_classes;
  auto model = nn::MakeModel("gcn", mc, rng);
  Matrix votes =
      RandsmoothPredict(*model, ds.adj, ds.features, 7, 0.6, rng);
  EXPECT_EQ(votes.rows(), ds.num_nodes());
  EXPECT_EQ(votes.cols(), ds.num_classes);
  for (int i = 0; i < votes.rows(); ++i) {
    float sum = 0.0f;
    for (int j = 0; j < votes.cols(); ++j) sum += votes.At(i, j);
    EXPECT_FLOAT_EQ(sum, 7.0f);
  }
}

TEST(RandsmoothTest, KeepAllMatchesPlainPrediction) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 122);
  Rng rng(2);
  nn::GnnConfig mc;
  mc.in_dim = ds.feature_dim();
  mc.hidden_dim = 8;
  mc.out_dim = ds.num_classes;
  mc.dropout = 0.0f;
  auto model = nn::MakeModel("gcn", mc, rng);
  Matrix votes =
      RandsmoothPredict(*model, ds.adj, ds.features, 3, 1.0, rng);
  Matrix logits = nn::PredictLogits(*model, ds.adj, ds.features);
  EXPECT_EQ(ArgmaxRows(votes), ArgmaxRows(logits));
}

TEST(RandsmoothTest, SmoothedAccuracyReasonable) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 123);
  Rng rng(3);
  nn::GnnConfig mc;
  mc.in_dim = ds.feature_dim();
  mc.hidden_dim = 16;
  mc.out_dim = ds.num_classes;
  auto model = nn::MakeModel("gcn", mc, rng);
  nn::TrainConfig tc;
  tc.epochs = 100;
  nn::TrainNodeClassifier(*model, ds.adj, ds.features, ds.labels,
                          ds.train_idx, tc);
  Matrix votes =
      RandsmoothPredict(*model, ds.adj, ds.features, 9, 0.7, rng);
  EXPECT_GT(nn::Accuracy(votes, ds.labels, ds.test_idx), 0.55);
}


TEST(JaccardPruneTest, DropsZeroOverlapEdges) {
  // Path 0-1-2: edge (0,1) endpoints share no neighbors -> Jaccard 0.
  condense::CondensedGraph g;
  g.features = Matrix(3, 2, 1.0f);
  g.adj = graph::CsrMatrix::FromEdges(3, 3, {{0, 1}, {1, 2}},
                                      /*symmetrize=*/true);
  g.labels = {0, 0, 0};
  g.num_classes = 1;
  g.use_structure = true;
  condense::CondensedGraph pruned = JaccardPrune(g, 0.01);
  EXPECT_EQ(pruned.adj.nnz(), 0);
}

TEST(JaccardPruneTest, KeepsTriangleEdges) {
  // Triangle: each edge's endpoints share the third node -> Jaccard > 0.
  condense::CondensedGraph g;
  g.features = Matrix(3, 2, 1.0f);
  g.adj = graph::CsrMatrix::FromEdges(3, 3, {{0, 1}, {1, 2}, {0, 2}},
                                      /*symmetrize=*/true);
  g.labels = {0, 0, 0};
  g.num_classes = 1;
  g.use_structure = true;
  condense::CondensedGraph pruned = JaccardPrune(g, 0.01);
  EXPECT_EQ(pruned.adj.nnz(), 6);
}

TEST(JaccardPruneTest, ThresholdZeroKeepsAll) {
  condense::CondensedGraph g;
  g.features = Matrix(3, 2, 1.0f);
  g.adj = graph::CsrMatrix::FromEdges(3, 3, {{0, 1}, {1, 2}},
                                      /*symmetrize=*/true);
  g.labels = {0, 0, 0};
  g.num_classes = 1;
  g.use_structure = true;
  EXPECT_EQ(JaccardPrune(g, 0.0).adj.nnz(), g.adj.nnz());
}

TEST(FilterOutliersTest, RemovesExtremeNormNode) {
  condense::CondensedGraph g;
  g.features = Matrix(5, 2, {1, 0, 1.1f, 0, 0.9f, 0, 1, 0.1f, 100, 100});
  g.adj = graph::CsrMatrix::Identity(5);
  g.labels = {0, 0, 1, 1, 1};
  g.num_classes = 2;
  condense::CondensedGraph filtered = FilterFeatureOutliers(g, 5.0);
  EXPECT_EQ(filtered.features.rows(), 4);
  EXPECT_EQ(filtered.labels, (std::vector<int>{0, 0, 1, 1}));
  EXPECT_EQ(filtered.adj.rows(), 4);
}

TEST(FilterOutliersTest, UniformNormsKeepEverything) {
  condense::CondensedGraph g;
  g.features = Matrix(4, 2, 1.0f);
  g.adj = graph::CsrMatrix::Identity(4);
  g.labels = {0, 1, 0, 1};
  g.num_classes = 2;
  EXPECT_EQ(FilterFeatureOutliers(g, 3.0).features.rows(), 4);
}

TEST(FilterOutliersTest, CatchesNaivePoisonPayload) {
  // A condensed graph whose poisoned rows carry 4x-scale payloads must lose
  // exactly those rows under the MAD filter.
  Rng rng(9);
  condense::CondensedGraph g;
  g.features = Matrix::RandomNormal(20, 8, rng, 1.0f);
  for (int j = 0; j < 8; ++j) {
    g.features.At(3, j) = 12.0f;
    g.features.At(15, j) = -12.0f;
  }
  g.adj = graph::CsrMatrix::Identity(20);
  g.labels.assign(20, 0);
  g.num_classes = 1;
  condense::CondensedGraph filtered = FilterFeatureOutliers(g, 5.0);
  EXPECT_EQ(filtered.features.rows(), 18);
}

}  // namespace
}  // namespace bgc::defense
