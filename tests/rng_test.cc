#include "src/core/rng.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace bgc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformInt(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 10, kDraws / 10 * 0.15);
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(3);
  double sum = 0.0, sq = 0.0;
  const int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sq / kDraws, 1.0, 0.03);
}

TEST(RngTest, NormalMeanStddevShift) {
  Rng rng(5);
  double sum = 0.0;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) sum += rng.Normal(4.0, 0.5);
  EXPECT_NEAR(sum / kDraws, 4.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(17);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  std::vector<int> original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);  // overwhelmingly likely
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SampleWithoutReplacementDistinct) {
  Rng rng(19);
  for (int trial = 0; trial < 50; ++trial) {
    auto sample = rng.SampleWithoutReplacement(30, 10);
    ASSERT_EQ(sample.size(), 10u);
    std::set<int> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 10u);
    for (int s : sample) {
      EXPECT_GE(s, 0);
      EXPECT_LT(s, 30);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(23);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::sort(sample.begin(), sample.end());
  EXPECT_EQ(sample, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(RngTest, SampleWithoutReplacementEmpty) {
  Rng rng(29);
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng a(31);
  Rng b = a.Fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextU64() == b.NextU64());
  EXPECT_LT(same, 2);
}

}  // namespace
}  // namespace bgc
