#include "src/core/arena.h"

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/autograd/tape.h"
#include "src/tensor/matrix.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::core {
namespace {

/// Forces the arena on for a test regardless of BGC_ARENA, restoring on
/// exit.
class ScopedArenaEnabled {
 public:
  explicit ScopedArenaEnabled(bool on)
      : prev_(BufferArena::Global().SetEnabledForTesting(on)) {}
  ~ScopedArenaEnabled() { BufferArena::Global().SetEnabledForTesting(prev_); }

 private:
  bool prev_;
};

TEST(BufferArenaTest, ReleaseThenAcquireSameBucketIsAHit) {
  ScopedArenaEnabled on(true);
  BufferArena& arena = BufferArena::Global();
  arena.Clear();
  void* p = arena.Acquire(1000);
  const BufferArena::Stats before = arena.stats();
  arena.Release(p, 1000);
  // 1000 and 1024 share the 1 KiB bucket.
  void* q = arena.Acquire(1024);
  const BufferArena::Stats after = arena.stats();
  EXPECT_EQ(q, p);
  EXPECT_EQ(after.hits, before.hits + 1);
  arena.Release(q, 1024);
}

TEST(BufferArenaTest, DifferentBucketMisses) {
  ScopedArenaEnabled on(true);
  BufferArena& arena = BufferArena::Global();
  arena.Clear();
  void* p = arena.Acquire(512);
  arena.Release(p, 512);
  const BufferArena::Stats before = arena.stats();
  void* q = arena.Acquire(4096);  // larger bucket: cache cannot serve it
  const BufferArena::Stats after = arena.stats();
  EXPECT_EQ(after.misses, before.misses + 1);
  arena.Release(q, 4096);
}

TEST(BufferArenaTest, TrimEvictsDownToStepPeak) {
  ScopedArenaEnabled on(true);
  BufferArena& arena = BufferArena::Global();
  arena.Clear();
  arena.TrimToStepPeak();  // peak := current live
  // Simulate a step: peak footprint is two 1 KiB buffers.
  void* a = arena.Acquire(1024);
  void* b = arena.Acquire(1024);
  arena.Release(a, 1024);
  arena.Release(b, 1024);
  const size_t cached_after_step = arena.stats().cached_bytes;
  EXPECT_GE(cached_after_step, 2 * 1024u);
  // Boundary: cache may keep at most the step's peak, then the peak resets
  // to what is live now (nothing from this test).
  arena.TrimToStepPeak();
  arena.TrimToStepPeak();
  EXPECT_EQ(arena.stats().cached_bytes, 0u) << "second trim should evict "
                                               "everything beyond live";
  arena.Clear();
}

TEST(BufferArenaTest, DisabledArenaBypasses) {
  ScopedArenaEnabled off(false);
  BufferArena& arena = BufferArena::Global();
  const BufferArena::Stats before = arena.stats();
  void* p = arena.Acquire(2048);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xab, 2048);
  arena.Release(p, 2048);
  const BufferArena::Stats after = arena.stats();
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_GE(after.bypass, before.bypass + 2);
  EXPECT_EQ(after.cached_bytes, before.cached_bytes);
}

TEST(BufferArenaTest, MatrixStorageRoutesThroughArena) {
  ScopedArenaEnabled on(true);
  BufferArena& arena = BufferArena::Global();
  arena.Clear();
  const BufferArena::Stats before = arena.stats();
  {
    Matrix m(16, 16);
    EXPECT_EQ(m.At(3, 3), 0.0f);
  }
  const BufferArena::Stats after = arena.stats();
  EXPECT_GT(after.hits + after.misses, before.hits + before.misses)
      << "Matrix allocation should go through the arena";
}

TEST(BufferArenaTest, ReusedMatrixBufferIsZeroInitialized) {
  // A recycled buffer holds the previous tenant's bits; vector value-init
  // in Matrix must still zero it (the no-stale-data contract).
  ScopedArenaEnabled on(true);
  BufferArena& arena = BufferArena::Global();
  arena.Clear();
  {
    Matrix dirty(8, 8, 123.0f);
    EXPECT_EQ(dirty.At(0, 0), 123.0f);
  }
  Matrix clean(8, 8);
  for (int i = 0; i < clean.size(); ++i) {
    ASSERT_EQ(clean.data()[i], 0.0f) << "stale bits leaked at " << i;
  }
}

TEST(BufferArenaTest, TapeResetDoesNotLeakStaleGradsIntoNextStep) {
  // The full reuse loop: grads computed in step 1 land in the free lists
  // at Reset(); step 2's freshly-built graph must see correct values and
  // gradients, not aliases of step 1's buffers.
  ScopedArenaEnabled on(true);
  ag::Tape t;
  for (int step = 0; step < 4; ++step) {
    t.Reset();
    const float base = 1.0f + static_cast<float>(step);
    ag::Var a = t.Input(Matrix(8, 8, base));
    ag::Var loss = t.MeanAll(t.Square(a));
    t.Backward(loss);
    // d/da mean(a^2) = 2a/64 per entry, a == base everywhere.
    const Matrix& g = t.grad(a);
    for (int i = 0; i < g.size(); ++i) {
      ASSERT_FLOAT_EQ(g.data()[i], 2.0f * base / 64.0f)
          << "step " << step << " entry " << i;
    }
  }
}

}  // namespace
}  // namespace bgc::core
