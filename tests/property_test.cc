// Randomized property tests: invariants that must hold for arbitrary
// inputs, swept over seeds with parameterized gtest.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/attack/kmeans.h"
#include "src/graph/graph_utils.h"
#include "src/tensor/linalg.h"
#include "src/tensor/matrix_ops.h"

namespace bgc {
namespace {

class SeededPropertyTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  Rng rng_{GetParam()};

  /// Random sparse symmetric graph without self-loops.
  graph::CsrMatrix RandomGraph(int n, double edge_prob) {
    std::vector<graph::Edge> edges;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        if (rng_.Bernoulli(edge_prob)) edges.push_back({i, j});
      }
    }
    return graph::CsrMatrix::FromEdges(n, n, edges, /*symmetrize=*/true);
  }
};

TEST_P(SeededPropertyTest, MatMulAssociativity) {
  Matrix a = Matrix::RandomNormal(5, 4, rng_);
  Matrix b = Matrix::RandomNormal(4, 6, rng_);
  Matrix c = Matrix::RandomNormal(6, 3, rng_);
  EXPECT_TRUE(AllClose(MatMul(MatMul(a, b), c), MatMul(a, MatMul(b, c)),
                       1e-3f, 1e-4f));
}

TEST_P(SeededPropertyTest, TransposeOfProduct) {
  Matrix a = Matrix::RandomNormal(5, 4, rng_);
  Matrix b = Matrix::RandomNormal(4, 6, rng_);
  EXPECT_TRUE(AllClose(Transpose(MatMul(a, b)),
                       MatMul(Transpose(b), Transpose(a)), 1e-4f, 1e-5f));
}

TEST_P(SeededPropertyTest, SoftmaxRowsAreDistributions) {
  Matrix a = Matrix::RandomNormal(8, 5, rng_, 4.0f);
  Matrix s = RowSoftmax(a);
  for (int i = 0; i < s.rows(); ++i) {
    float sum = 0.0f;
    for (int j = 0; j < s.cols(); ++j) {
      EXPECT_GE(s.At(i, j), 0.0f);
      sum += s.At(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST_P(SeededPropertyTest, SolveRecoversSolution) {
  const int n = 6 + static_cast<int>(rng_.UniformInt(8));
  Matrix a = Matrix::RandomNormal(n, n, rng_);
  for (int i = 0; i < n; ++i) a.At(i, i) += static_cast<float>(n);
  Matrix x_true = Matrix::RandomNormal(n, 3, rng_);
  Matrix b = MatMul(a, x_true);
  EXPECT_TRUE(AllClose(SolveLinear(a, b), x_true, 5e-3f, 5e-3f));
}

TEST_P(SeededPropertyTest, GcnNormalizeSpectralBound) {
  // Â is similar to a stochastic matrix: ||Âx||_inf must not explode under
  // repeated application (row sums in [0, 1] after normalization).
  graph::CsrMatrix g = RandomGraph(20, 0.2);
  graph::CsrMatrix norm = GcnNormalize(g);
  Matrix x = Matrix::RandomNormal(20, 4, rng_);
  Matrix z = x;
  for (int k = 0; k < 10; ++k) z = norm.Multiply(z);
  EXPECT_LE(MaxAbs(z), MaxAbs(x) + 1e-3f);
}

TEST_P(SeededPropertyTest, GcnNormalizeSymmetric) {
  graph::CsrMatrix g = RandomGraph(15, 0.3);
  Matrix dense = GcnNormalize(g).ToDense();
  EXPECT_TRUE(AllClose(dense, Transpose(dense), 1e-5f, 1e-6f));
}

TEST_P(SeededPropertyTest, RowNormalizeRowsSumToOneOrZero) {
  graph::CsrMatrix g = RandomGraph(15, 0.2);
  graph::CsrMatrix norm = RowNormalize(g);
  for (int i = 0; i < norm.rows(); ++i) {
    const float s = norm.RowWeightSum(i);
    EXPECT_TRUE(std::fabs(s - 1.0f) < 1e-5f || s == 0.0f);
  }
}

TEST_P(SeededPropertyTest, CsrDenseRoundTrip) {
  graph::CsrMatrix g = RandomGraph(12, 0.25);
  graph::CsrMatrix back = graph::CsrMatrix::FromDense(g.ToDense());
  EXPECT_TRUE(AllClose(g.ToDense(), back.ToDense()));
}

TEST_P(SeededPropertyTest, SpmmMatchesDenseReference) {
  graph::CsrMatrix g = RandomGraph(10, 0.3);
  Matrix x = Matrix::RandomNormal(10, 5, rng_);
  EXPECT_TRUE(AllClose(g.Multiply(x), MatMul(g.ToDense(), x), 1e-4f, 1e-5f));
}

TEST_P(SeededPropertyTest, DropEdgesIsSubgraph) {
  graph::CsrMatrix g = RandomGraph(20, 0.3);
  graph::CsrMatrix dropped = graph::DropEdges(g, 0.5, rng_);
  EXPECT_LE(dropped.nnz(), g.nnz());
  for (const auto& e : dropped.ToEdges()) {
    EXPECT_FLOAT_EQ(g.At(e.src, e.dst), e.weight);
  }
}

TEST_P(SeededPropertyTest, EgoNetworkMonotoneInHops) {
  graph::CsrMatrix g = RandomGraph(25, 0.1);
  const int seed_node = static_cast<int>(rng_.UniformInt(25));
  std::vector<int> prev;
  for (int hops = 0; hops <= 3; ++hops) {
    std::vector<int> ego = graph::EgoNetwork(g, seed_node, hops);
    std::set<int> current(ego.begin(), ego.end());
    for (int v : prev) EXPECT_TRUE(current.count(v));
    prev = ego;
  }
}

TEST_P(SeededPropertyTest, KMeansAssignmentsConsistent) {
  Matrix points = Matrix::RandomNormal(30, 4, rng_);
  attack::KMeansResult result = attack::KMeans(points, 4, rng_);
  // Every point's assigned centroid is at least as close as any other.
  for (int i = 0; i < points.rows(); ++i) {
    auto dist = [&](int c) {
      float s = 0.0f;
      for (int j = 0; j < points.cols(); ++j) {
        const float d = points.At(i, j) - result.centroids.At(c, j);
        s += d * d;
      }
      return s;
    };
    const float assigned = dist(result.assignment[i]);
    for (int c = 0; c < result.centroids.rows(); ++c) {
      EXPECT_LE(assigned, dist(c) + 1e-4f);
    }
  }
}

TEST_P(SeededPropertyTest, InverseRoundTrip) {
  const int n = 5;
  Matrix a = Matrix::RandomNormal(n, n, rng_);
  for (int i = 0; i < n; ++i) a.At(i, i) += 4.0f;
  EXPECT_TRUE(AllClose(MatMul(Inverse(a), a), Matrix::Identity(n), 2e-3f,
                       2e-3f));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u,
                                           34u));

}  // namespace
}  // namespace bgc
