#include "src/data/io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/condense/io.h"
#include "src/data/synthetic.h"
#include "src/tensor/matrix_ops.h"

namespace bgc {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(DatasetIoTest, RoundTripExact) {
  data::GraphDataset original = data::MakeDataset("tiny-sim", 42);
  const std::string path = TempPath("tiny.graph");
  data::SaveDataset(original, path);
  data::GraphDataset loaded = data::LoadDataset(path);
  EXPECT_EQ(loaded.num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded.num_classes, original.num_classes);
  EXPECT_EQ(loaded.inductive, original.inductive);
  EXPECT_EQ(loaded.labels, original.labels);
  EXPECT_EQ(loaded.train_idx, original.train_idx);
  EXPECT_EQ(loaded.val_idx, original.val_idx);
  EXPECT_EQ(loaded.test_idx, original.test_idx);
  // Hex-float serialization is bit-exact.
  EXPECT_TRUE(loaded.features == original.features);
  EXPECT_TRUE(AllClose(loaded.adj.ToDense(), original.adj.ToDense()));
  std::remove(path.c_str());
}

TEST(DatasetIoTest, InductiveFlagPreserved) {
  data::GraphDataset original =
      data::MakeDataset("flickr-sim", 3, /*scale=*/0.05);
  const std::string path = TempPath("flickr.graph");
  data::SaveDataset(original, path);
  EXPECT_TRUE(data::LoadDataset(path).inductive);
  std::remove(path.c_str());
}

TEST(DatasetIoDeathTest, MissingFileAborts) {
  EXPECT_DEATH(data::LoadDataset("/nonexistent/nope.graph"), "cannot open");
}

TEST(DatasetIoDeathTest, BadMagicAborts) {
  const std::string path = TempPath("bad.graph");
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("not-a-graph v9\n", f);
  std::fclose(f);
  EXPECT_DEATH(data::LoadDataset(path), "unsupported");
  std::remove(path.c_str());
}

TEST(CondensedIoTest, RoundTripExact) {
  condense::CondensedGraph g;
  g.features = Matrix(3, 2, {0.5f, -1.25f, 3e-8f, 2.0f, -0.0f, 7.5f});
  g.adj = graph::CsrMatrix::FromEdges(3, 3, {{0, 1, 0.7f}, {1, 2, 1.0f}},
                                      /*symmetrize=*/true);
  g.labels = {0, 1, 1};
  g.num_classes = 2;
  g.use_structure = true;
  const std::string path = TempPath("condensed.graph");
  condense::SaveCondensed(g, path);
  condense::CondensedGraph loaded = condense::LoadCondensed(path);
  EXPECT_TRUE(loaded.features == g.features);
  EXPECT_EQ(loaded.labels, g.labels);
  EXPECT_EQ(loaded.num_classes, 2);
  EXPECT_TRUE(loaded.use_structure);
  EXPECT_TRUE(AllClose(loaded.adj.ToDense(), g.adj.ToDense()));
  std::remove(path.c_str());
}

TEST(CondensedIoTest, StructureFreeFlag) {
  condense::CondensedGraph g;
  g.features = Matrix(2, 1, {1.0f, 2.0f});
  g.adj = graph::CsrMatrix::Identity(2);
  g.labels = {0, 1};
  g.num_classes = 2;
  g.use_structure = false;
  const std::string path = TempPath("condensed2.graph");
  condense::SaveCondensed(g, path);
  EXPECT_FALSE(condense::LoadCondensed(path).use_structure);
  std::remove(path.c_str());
}

TEST(CondensedIoDeathTest, TruncatedFileAborts) {
  const std::string path = TempPath("trunc.graph");
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("bgc-graph v1\nnodes 3 features 2 classes 2 edges 0 "
             "inductive 0\n0 1\n",  // labels truncated (3 expected)
             f);
  std::fclose(f);
  EXPECT_DEATH(condense::LoadCondensed(path), "truncated");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bgc
