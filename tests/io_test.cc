#include "src/data/io.h"

#include <cmath>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/condense/io.h"
#include "src/data/synthetic.h"
#include "src/tensor/matrix_ops.h"

namespace bgc {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(DatasetIoTest, RoundTripExact) {
  data::GraphDataset original = data::MakeDataset("tiny-sim", 42);
  const std::string path = TempPath("tiny.graph");
  data::SaveDataset(original, path);
  data::GraphDataset loaded = data::LoadDataset(path);
  EXPECT_EQ(loaded.num_nodes(), original.num_nodes());
  EXPECT_EQ(loaded.num_classes, original.num_classes);
  EXPECT_EQ(loaded.inductive, original.inductive);
  EXPECT_EQ(loaded.labels, original.labels);
  EXPECT_EQ(loaded.train_idx, original.train_idx);
  EXPECT_EQ(loaded.val_idx, original.val_idx);
  EXPECT_EQ(loaded.test_idx, original.test_idx);
  // Hex-float serialization is bit-exact.
  EXPECT_TRUE(loaded.features == original.features);
  EXPECT_TRUE(AllClose(loaded.adj.ToDense(), original.adj.ToDense()));
  std::remove(path.c_str());
}

TEST(DatasetIoTest, InductiveFlagPreserved) {
  data::GraphDataset original =
      data::MakeDataset("flickr-sim", 3, /*scale=*/0.05);
  const std::string path = TempPath("flickr.graph");
  data::SaveDataset(original, path);
  EXPECT_TRUE(data::LoadDataset(path).inductive);
  std::remove(path.c_str());
}

// %.9g text round-trips awkward float32 values (negative zero, denormals,
// values needing all 9 significant digits) bit-exactly.
TEST(DatasetIoTest, AwkwardFloatsRoundTripLossless) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 8);
  ds.features.At(0, 0) = -0.0f;
  ds.features.At(0, 1) = 3e-42f;          // denormal
  ds.features.At(1, 0) = 1.0000001f;      // needs 8+ digits
  ds.features.At(1, 1) = -3.4e38f;        // near float max
  ds.features.At(2, 0) = 123456792.0f;    // large exact float
  const std::string path = TempPath("awkward.graph");
  data::SaveDataset(ds, path);
  data::GraphDataset loaded = data::LoadDataset(path);
  EXPECT_TRUE(loaded.features == ds.features);
  EXPECT_TRUE(std::signbit(loaded.features.At(0, 0)));
  std::remove(path.c_str());
}

TEST(DatasetIoTest, SplitsPreservedExactly) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 12);
  const std::string path = TempPath("splits.graph");
  data::SaveDataset(ds, path);
  data::GraphDataset loaded = data::LoadDataset(path);
  EXPECT_EQ(loaded.train_idx, ds.train_idx);
  EXPECT_EQ(loaded.val_idx, ds.val_idx);
  EXPECT_EQ(loaded.test_idx, ds.test_idx);
  std::remove(path.c_str());
}

TEST(DatasetIoTest, TryLoadMissingFileIsRecoverable) {
  StatusOr<data::GraphDataset> loaded =
      data::TryLoadDataset("/nonexistent/nope.graph");
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("cannot open"), std::string::npos);
}

// Helper: write `content` and return TryLoadDataset's status message.
std::string TryLoadError(const char* name, const char* content) {
  const std::string path =
      std::string(::testing::TempDir()) + "/" + name;
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs(content, f);
  std::fclose(f);
  StatusOr<data::GraphDataset> loaded = data::TryLoadDataset(path);
  std::remove(path.c_str());
  EXPECT_FALSE(loaded.ok()) << name;
  return loaded.ok() ? "" : loaded.status().message();
}

TEST(DatasetIoTest, TryLoadRejectsCorruptHeaders) {
  EXPECT_NE(TryLoadError("empty.graph", ""), "");
  EXPECT_NE(TryLoadError("magic.graph", "nope v1\n").find("unsupported"),
            std::string::npos);
  EXPECT_NE(TryLoadError("vers.graph", "bgc-graph v7\n").find("unsupported"),
            std::string::npos);
  EXPECT_NE(TryLoadError("keys.graph", "bgc-graph v1\nnodez 1 features 1 "
                                       "classes 1 edges 0 inductive 0\n")
                .find("malformed"),
            std::string::npos);
  EXPECT_NE(TryLoadError("neg.graph", "bgc-graph v1\nnodes -4 features 1 "
                                      "classes 1 edges 0 inductive 0\n")
                .find("negative"),
            std::string::npos);
}

TEST(DatasetIoTest, TryLoadRejectsBadEdgeCountsAndEndpoints) {
  // Declares 2 edges but provides 1.
  EXPECT_NE(
      TryLoadError("short.graph",
                   "bgc-graph v1\n"
                   "nodes 2 features 1 classes 1 edges 2 inductive 0\n"
                   "0 0\ntrain 1 0\nval 1 1\ntest 1 1\n"
                   "0 1 1.0\n")
          .find("truncated edge block"),
      std::string::npos);
  // Edge endpoint 7 with only 2 nodes.
  EXPECT_NE(
      TryLoadError("range.graph",
                   "bgc-graph v1\n"
                   "nodes 2 features 1 classes 1 edges 1 inductive 0\n"
                   "0 0\ntrain 1 0\nval 1 1\ntest 1 1\n"
                   "0 7 1.0\n"
                   "0.5\n0.5\n")
          .find("edge endpoint out of range"),
      std::string::npos);
}

TEST(DatasetIoTest, TryLoadRejectsNonNumericFloats) {
  EXPECT_NE(
      TryLoadError("nan_text.graph",
                   "bgc-graph v1\n"
                   "nodes 2 features 1 classes 1 edges 0 inductive 0\n"
                   "0 0\ntrain 1 0\nval 1 1\ntest 1 1\n"
                   "0.5\nbogus\n")
          .find("non-numeric"),
      std::string::npos);
}

TEST(DatasetIoTest, TryLoadRejectsBadSplits) {
  EXPECT_NE(
      TryLoadError("split_size.graph",
                   "bgc-graph v1\n"
                   "nodes 2 features 1 classes 1 edges 0 inductive 0\n"
                   "0 0\ntrain 9 0\nval 1 1\ntest 1 1\n"
                   "0.5\n0.5\n")
          .find("invalid size"),
      std::string::npos);
  EXPECT_NE(
      TryLoadError("split_id.graph",
                   "bgc-graph v1\n"
                   "nodes 2 features 1 classes 1 edges 0 inductive 0\n"
                   "0 0\ntrain 1 5\nval 1 1\ntest 1 1\n"
                   "0.5\n0.5\n")
          .find("out of range"),
      std::string::npos);
}

TEST(DatasetIoTest, TryLoadRejectsOutOfRangeLabels) {
  EXPECT_NE(
      TryLoadError("label.graph",
                   "bgc-graph v1\n"
                   "nodes 2 features 1 classes 1 edges 0 inductive 0\n"
                   "0 3\ntrain 1 0\nval 1 1\ntest 1 1\n"
                   "0.5\n0.5\n")
          .find("out of range"),
      std::string::npos);
}

TEST(DatasetIoDeathTest, MissingFileAborts) {
  EXPECT_DEATH(data::LoadDataset("/nonexistent/nope.graph"), "cannot open");
}

TEST(DatasetIoDeathTest, BadMagicAborts) {
  const std::string path = TempPath("bad.graph");
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("not-a-graph v9\n", f);
  std::fclose(f);
  EXPECT_DEATH(data::LoadDataset(path), "unsupported");
  std::remove(path.c_str());
}

TEST(CondensedIoTest, RoundTripExact) {
  condense::CondensedGraph g;
  g.features = Matrix(3, 2, {0.5f, -1.25f, 3e-8f, 2.0f, -0.0f, 7.5f});
  g.adj = graph::CsrMatrix::FromEdges(3, 3, {{0, 1, 0.7f}, {1, 2, 1.0f}},
                                      /*symmetrize=*/true);
  g.labels = {0, 1, 1};
  g.num_classes = 2;
  g.use_structure = true;
  const std::string path = TempPath("condensed.graph");
  condense::SaveCondensed(g, path);
  condense::CondensedGraph loaded = condense::LoadCondensed(path);
  EXPECT_TRUE(loaded.features == g.features);
  EXPECT_EQ(loaded.labels, g.labels);
  EXPECT_EQ(loaded.num_classes, 2);
  EXPECT_TRUE(loaded.use_structure);
  EXPECT_TRUE(AllClose(loaded.adj.ToDense(), g.adj.ToDense()));
  std::remove(path.c_str());
}

TEST(CondensedIoTest, StructureFreeFlag) {
  condense::CondensedGraph g;
  g.features = Matrix(2, 1, {1.0f, 2.0f});
  g.adj = graph::CsrMatrix::Identity(2);
  g.labels = {0, 1};
  g.num_classes = 2;
  g.use_structure = false;
  const std::string path = TempPath("condensed2.graph");
  condense::SaveCondensed(g, path);
  EXPECT_FALSE(condense::LoadCondensed(path).use_structure);
  std::remove(path.c_str());
}

TEST(CondensedIoTest, TryLoadRecoverableErrors) {
  StatusOr<condense::CondensedGraph> missing =
      condense::TryLoadCondensed("/nonexistent/nope.graph");
  ASSERT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("cannot open"),
            std::string::npos);

  const std::string path = TempPath("cg_badedge.graph");
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("bgc-graph v1\n"
             "nodes 2 features 1 classes 2 edges 1 inductive 1\n"
             "0 1\n"
             "0 9 1.0\n"
             "0.5\n0.5\n",
             f);
  std::fclose(f);
  StatusOr<condense::CondensedGraph> bad = condense::TryLoadCondensed(path);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("edge endpoint out of range"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(CondensedIoDeathTest, TruncatedFileAborts) {
  const std::string path = TempPath("trunc.graph");
  FILE* f = std::fopen(path.c_str(), "w");
  std::fputs("bgc-graph v1\nnodes 3 features 2 classes 2 edges 0 "
             "inductive 0\n0 1\n",  // labels truncated (3 expected)
             f);
  std::fclose(f);
  EXPECT_DEATH(condense::LoadCondensed(path), "truncated");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bgc
