#include "src/autograd/tape.h"

#include <cmath>
#include <functional>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/arena.h"
#include "src/core/thread_pool.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::ag {
namespace {

/// Restores backward mode and global thread count on scope exit.
class ScopedBackwardConfig {
 public:
  ScopedBackwardConfig(BackwardMode mode, int num_threads)
      : prev_mode_(Tape::SetBackwardModeForTesting(mode)) {
    ThreadPool::SetGlobalNumThreads(num_threads);
  }
  ~ScopedBackwardConfig() {
    Tape::SetBackwardModeForTesting(prev_mode_);
    ThreadPool::SetGlobalNumThreads(0);  // back to BGC_NUM_THREADS default
  }

 private:
  BackwardMode prev_mode_;
};

/// Builds a graph on `t`, returning the loss and the Vars whose grads the
/// test compares. Must be deterministic so both modes see identical input.
using GraphBuilder = std::function<Var(Tape&, std::vector<Var>&)>;

std::vector<Matrix> GradsUnder(BackwardMode mode, int num_threads,
                               const GraphBuilder& build) {
  ScopedBackwardConfig cfg(mode, num_threads);
  Tape t;
  std::vector<Var> tracked;
  Var loss = build(t, tracked);
  t.Backward(loss);
  std::vector<Matrix> grads;
  grads.reserve(tracked.size());
  for (Var v : tracked) grads.push_back(t.grad(v));
  return grads;
}

/// Parallel backward at 1, 2 and 8 threads must be bit-identical to the
/// serial walk — the engine's core contract (DESIGN.md §11).
void ExpectSerialParallelBitIdentical(const GraphBuilder& build) {
  std::vector<Matrix> serial = GradsUnder(BackwardMode::kSerial, 1, build);
  ASSERT_FALSE(serial.empty());
  for (int nt : {1, 2, 8}) {
    std::vector<Matrix> parallel =
        GradsUnder(BackwardMode::kParallel, nt, build);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(parallel[i] == serial[i])
          << "grad " << i << " differs at " << nt << " threads";
    }
  }
}

/// GCond-shaped fan-in: per-class branches gather from shared synthetic
/// features, push through a shared weight, and their matching losses sum
/// into one scalar — the graph the parallel engine exists for.
Var BuildPerClassFanIn(Tape& t, std::vector<Var>& tracked) {
  Rng rng(42);
  Var x = t.Input(Matrix::RandomNormal(12, 6, rng));
  Var w = t.Input(Matrix::RandomNormal(6, 4, rng));
  tracked = {x, w};
  Var loss{};
  for (int c = 0; c < 4; ++c) {
    std::vector<int> rows = {3 * c, 3 * c + 1, 3 * c + 2};
    Var zc = t.GatherRows(x, rows);
    Var probs = t.Softmax(t.MatMul(zc, w));
    Matrix onehot(3, 4);
    for (int i = 0; i < 3; ++i) onehot(i, c) = 1.0f;
    Var diff = t.Sub(probs, t.Constant(onehot));
    Var g = t.Scale(t.MatMul(t.Transpose(zc), diff), 1.0f / 3.0f);
    Var term = t.SumAll(t.Square(g));
    loss = c == 0 ? term : t.Add(loss, term);
  }
  return loss;
}

TEST(TapeParallelTest, PerClassFanInBitIdenticalToSerial) {
  ExpectSerialParallelBitIdentical(BuildPerClassFanIn);
}

TEST(TapeParallelTest, DiamondStressBitIdenticalToSerial) {
  // Stacked diamonds with a shared root: every join accumulates two
  // contributions whose fold order must match serial exactly.
  ExpectSerialParallelBitIdentical([](Tape& t, std::vector<Var>& tracked) {
    Rng rng(7);
    Var a = t.Input(Matrix::RandomNormal(5, 5, rng));
    tracked = {a};
    Var h = a;
    for (int d = 0; d < 6; ++d) {
      Var left = t.Relu(h);
      Var right = t.Tanh(h);
      h = t.Add(left, right);
    }
    return t.MeanAll(h);
  });
}

TEST(TapeParallelTest, SameNodeTwiceAccumulatesInCallOrder) {
  // Add(a, a) / Hadamard(a, a): one consumer deposits two contributions
  // into the same parent slot; both must land, in call order.
  ExpectSerialParallelBitIdentical([](Tape& t, std::vector<Var>& tracked) {
    Rng rng(11);
    Var a = t.Input(Matrix::RandomNormal(3, 3, rng));
    tracked = {a};
    Var s = t.Add(a, a);
    Var q = t.Hadamard(a, a);
    return t.SumAll(t.Add(s, q));
  });
}

TEST(TapeParallelTest, WideSharedInputFanOut) {
  // Many independent consumers of one input: the classic ready-queue
  // width case, and a pending-count torture test.
  ExpectSerialParallelBitIdentical([](Tape& t, std::vector<Var>& tracked) {
    Rng rng(13);
    Var x = t.Input(Matrix::RandomNormal(4, 4, rng));
    tracked = {x};
    Var loss{};
    for (int i = 0; i < 16; ++i) {
      Var branch = t.SumAll(t.Square(t.Scale(x, 0.25f + 0.1f * i)));
      loss = i == 0 ? branch : t.Add(loss, branch);
    }
    return loss;
  });
}

TEST(TapeParallelTest, DisconnectedInputGetsZeroGradInBothModes) {
  ExpectSerialParallelBitIdentical([](Tape& t, std::vector<Var>& tracked) {
    Var used = t.Input(Matrix(2, 2, {1, 2, 3, 4}));
    Var unused = t.Input(Matrix(2, 2, {5, 6, 7, 8}));
    tracked = {used, unused};
    return t.SumAll(t.Square(used));
  });
}

TEST(TapeParallelTest, GuardedMatMulParentsMatchSerial) {
  // MatMul/Solve skip Accumulate for non-requires-grad parents; the
  // planner must not wait on contributions that never come.
  ExpectSerialParallelBitIdentical([](Tape& t, std::vector<Var>& tracked) {
    Rng rng(17);
    Var w = t.Input(Matrix::RandomNormal(4, 3, rng));
    Var c = t.Constant(Matrix::RandomNormal(3, 4, rng));
    tracked = {w};
    Var prod = t.MatMul(w, c);        // only w's side accumulates
    Var back = t.MatMul(c, prod);     // both sides, one guarded out
    return t.MeanAll(t.Square(back));
  });
}

TEST(TapeParallelTest, ReusedTapeStepsStayBitIdentical) {
  // Reset() + rebuild across steps (the trainer pattern) with arena
  // recycling in play: recycled buffers must never leak stale gradient
  // bits into the next step.
  auto run_steps = [](BackwardMode mode, int nt) {
    ScopedBackwardConfig cfg(mode, nt);
    Tape t;
    std::vector<Matrix> grads;
    for (int step = 0; step < 3; ++step) {
      t.Reset();
      Rng rng(100 + step);
      Var x = t.Input(Matrix::RandomNormal(6, 4, rng));
      Var w = t.Input(Matrix::RandomNormal(4, 2, rng));
      Var loss = t.MeanAll(t.Square(t.MatMul(x, w)));
      t.Backward(loss);
      grads.push_back(t.grad(x));
      grads.push_back(t.grad(w));
    }
    return grads;
  };
  std::vector<Matrix> serial = run_steps(BackwardMode::kSerial, 1);
  for (int nt : {1, 2, 8}) {
    std::vector<Matrix> parallel = run_steps(BackwardMode::kParallel, nt);
    ASSERT_EQ(parallel.size(), serial.size());
    for (size_t i = 0; i < serial.size(); ++i) {
      EXPECT_TRUE(parallel[i] == serial[i]) << "step grad " << i;
    }
  }
}

TEST(TapeTest, ForwardValuesMatchKernels) {
  Tape t;
  Matrix av(2, 2, {1, 2, 3, 4});
  Matrix bv(2, 2, {5, 6, 7, 8});
  Var a = t.Input(av);
  Var b = t.Constant(bv);
  EXPECT_TRUE(t.value(t.Add(a, b)) == Add(av, bv));
  EXPECT_TRUE(t.value(t.Sub(a, b)) == Sub(av, bv));
  EXPECT_TRUE(t.value(t.Hadamard(a, b)) == Hadamard(av, bv));
  EXPECT_TRUE(t.value(t.MatMul(a, b)) == MatMul(av, bv));
  EXPECT_TRUE(t.value(t.Transpose(a)) == Transpose(av));
}

TEST(TapeTest, AddBackwardDistributesGradient) {
  Tape t;
  Var a = t.Input(Matrix(1, 2, {1, 2}));
  Var b = t.Input(Matrix(1, 2, {3, 4}));
  Var loss = t.SumAll(t.Add(a, b));
  t.Backward(loss);
  EXPECT_TRUE(t.grad(a) == Matrix(1, 2, {1, 1}));
  EXPECT_TRUE(t.grad(b) == Matrix(1, 2, {1, 1}));
}

TEST(TapeTest, SubBackwardNegatesSecond) {
  Tape t;
  Var a = t.Input(Matrix(1, 1, {1.0f}));
  Var b = t.Input(Matrix(1, 1, {2.0f}));
  t.Backward(t.SumAll(t.Sub(a, b)));
  EXPECT_FLOAT_EQ(t.grad(a).At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(t.grad(b).At(0, 0), -1.0f);
}

TEST(TapeTest, MatMulBackwardShapes) {
  Tape t;
  Rng rng(1);
  Var a = t.Input(Matrix::RandomNormal(3, 4, rng));
  Var b = t.Input(Matrix::RandomNormal(4, 2, rng));
  t.Backward(t.SumAll(t.MatMul(a, b)));
  EXPECT_EQ(t.grad(a).rows(), 3);
  EXPECT_EQ(t.grad(a).cols(), 4);
  EXPECT_EQ(t.grad(b).rows(), 4);
  EXPECT_EQ(t.grad(b).cols(), 2);
}

TEST(TapeTest, ConstantReceivesNoGradient) {
  Tape t;
  Var a = t.Input(Matrix(1, 1, {2.0f}));
  Var c = t.Constant(Matrix(1, 1, {3.0f}));
  t.Backward(t.SumAll(t.Hadamard(a, c)));
  EXPECT_FLOAT_EQ(t.grad(a).At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(t.grad(c).At(0, 0), 0.0f);
}

TEST(TapeTest, GradAccumulatesAcrossUses) {
  // loss = sum(a + a) -> da = 2.
  Tape t;
  Var a = t.Input(Matrix(1, 1, {5.0f}));
  t.Backward(t.SumAll(t.Add(a, a)));
  EXPECT_FLOAT_EQ(t.grad(a).At(0, 0), 2.0f);
}

TEST(TapeTest, ReluForwardAndMask) {
  Tape t;
  Var a = t.Input(Matrix(1, 3, {-1, 0, 2}));
  Var r = t.Relu(a);
  EXPECT_TRUE(t.value(r) == Matrix(1, 3, {0, 0, 2}));
  t.Backward(t.SumAll(r));
  EXPECT_TRUE(t.grad(a) == Matrix(1, 3, {0, 0, 1}));
}

TEST(TapeTest, BinarizeSteForwardThresholdBackwardIdentity) {
  Tape t;
  Var a = t.Input(Matrix(1, 3, {0.2f, 0.6f, 0.5f}));
  Var b = t.BinarizeSte(a, 0.5f);
  EXPECT_TRUE(t.value(b) == Matrix(1, 3, {0, 1, 0}));
  t.Backward(t.SumAll(b));
  EXPECT_TRUE(t.grad(a) == Matrix(1, 3, {1, 1, 1}));
}

TEST(TapeTest, SoftmaxRowsSumToOne) {
  Tape t;
  Rng rng(2);
  Var a = t.Input(Matrix::RandomNormal(4, 5, rng));
  const Matrix& s = t.value(t.Softmax(a));
  for (int i = 0; i < 4; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < 5; ++j) sum += s.At(i, j);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(TapeTest, SoftmaxCrossEntropyGradientIsProbMinusTarget) {
  Tape t;
  Matrix logits(1, 3, {1.0f, 2.0f, 3.0f});
  Matrix target = OneHot({2}, 3);
  Var l = t.Input(logits);
  Var loss = t.SoftmaxCrossEntropy(l, target);
  t.Backward(loss);
  Matrix p = RowSoftmax(logits);
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(t.grad(l).At(0, j), p.At(0, j) - target.At(0, j), 1e-5f);
  }
}

TEST(TapeTest, SoftmaxCrossEntropyPerfectPredictionLowLoss) {
  Tape t;
  Matrix logits(1, 2, {20.0f, -20.0f});
  Var l = t.Input(logits);
  Var loss = t.SoftmaxCrossEntropy(l, OneHot({0}, 2));
  EXPECT_LT(t.value(loss).At(0, 0), 1e-4f);
}

TEST(TapeTest, SoftmaxCrossEntropyRowWeights) {
  Tape t;
  Matrix logits(2, 2, {0.0f, 0.0f, 0.0f, 0.0f});
  Matrix targets = OneHot({0, 1}, 2);
  Matrix w(1, 2, {1.0f, 3.0f});
  Var l = t.Input(logits);
  Var loss = t.SoftmaxCrossEntropy(l, targets, w);
  // Both rows have loss ln(2); weights don't change the weighted mean.
  EXPECT_NEAR(t.value(loss).At(0, 0), std::log(2.0f), 1e-5f);
  t.Backward(loss);
  // Row 1 gradient scaled 3x relative to row 0 (same-sign entries: the
  // off-target column of each row).
  EXPECT_NEAR(t.grad(l).At(1, 0) / t.grad(l).At(0, 1), 3.0f, 1e-4f);
}

TEST(TapeTest, SpMMForwardAndBackward) {
  graph::CsrMatrix adj = graph::CsrMatrix::FromEdges(
      3, 3, {{0, 1}, {1, 2}}, /*symmetrize=*/true);
  Tape t;
  Rng rng(3);
  Matrix xv = Matrix::RandomNormal(3, 2, rng);
  Var x = t.Input(xv);
  Var y = t.SpMM(&adj, x);
  EXPECT_TRUE(AllClose(t.value(y), adj.Multiply(xv)));
  t.Backward(t.SumAll(y));
  // d(sum(Ax))/dx = A^T 1.
  Matrix ones(3, 2, 1.0f);
  EXPECT_TRUE(AllClose(t.grad(x), adj.MultiplyTransposed(ones)));
}

TEST(TapeTest, GatherRowsBackwardScatters) {
  Tape t;
  Var a = t.Input(Matrix(3, 1, {1, 2, 3}));
  Var g = t.GatherRows(a, {0, 0, 2});
  t.Backward(t.SumAll(g));
  EXPECT_TRUE(t.grad(a) == Matrix(3, 1, {2, 0, 1}));
}

TEST(TapeTest, DropoutEvalIsIdentity) {
  Tape t;
  Rng rng(4);
  Matrix xv(2, 2, {1, 2, 3, 4});
  Var x = t.Input(xv);
  Var y = t.Dropout(x, 0.5f, rng, /*training=*/false);
  EXPECT_TRUE(t.value(y) == xv);
}

TEST(TapeTest, DropoutTrainMasksAndScales) {
  Tape t;
  Rng rng(5);
  Matrix xv(40, 40, 1.0f);
  Var x = t.Input(xv);
  Var y = t.Dropout(x, 0.5f, rng, /*training=*/true);
  const Matrix& yv = t.value(y);
  int kept = 0;
  for (int i = 0; i < yv.size(); ++i) {
    EXPECT_TRUE(yv.data()[i] == 0.0f || yv.data()[i] == 2.0f);
    kept += yv.data()[i] != 0.0f;
  }
  EXPECT_NEAR(kept / 1600.0, 0.5, 0.06);
}

TEST(TapeTest, SolveForwardMatchesLinalg) {
  Tape t;
  Matrix av(2, 2, {2, 0, 0, 4});
  Matrix bv(2, 1, {2, 8});
  Var a = t.Input(av);
  Var b = t.Input(bv);
  Var x = t.Solve(a, b);
  EXPECT_NEAR(t.value(x).At(0, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(t.value(x).At(1, 0), 2.0f, 1e-5f);
}

TEST(TapeTest, ResetInvalidatesAndReuses) {
  Tape t;
  Var a = t.Input(Matrix(1, 1, {1.0f}));
  t.Backward(t.SumAll(a));
  t.Reset();
  EXPECT_EQ(t.num_nodes(), 0);
  Var b = t.Input(Matrix(1, 1, {2.0f}));
  t.Backward(t.SumAll(b));
  EXPECT_FLOAT_EQ(t.grad(b).At(0, 0), 1.0f);
}

TEST(TapeTest, MeanAllScalesGradient) {
  Tape t;
  Var a = t.Input(Matrix(2, 2, 3.0f));
  Var m = t.MeanAll(a);
  EXPECT_FLOAT_EQ(t.value(m).At(0, 0), 3.0f);
  t.Backward(m);
  EXPECT_TRUE(AllClose(t.grad(a), Matrix(2, 2, 0.25f)));
}

TEST(TapeTest, BroadcastOpsForward) {
  Tape t;
  Var a = t.Input(Matrix(2, 2, {1, 2, 3, 4}));
  Var col = t.Input(Matrix(2, 1, {2, 3}));
  Var row = t.Input(Matrix(1, 2, {10, 100}));
  EXPECT_TRUE(t.value(t.MulColVec(a, col)) == Matrix(2, 2, {2, 4, 9, 12}));
  EXPECT_TRUE(t.value(t.MulRowVec(a, row)) ==
              Matrix(2, 2, {10, 200, 30, 400}));
  EXPECT_TRUE(t.value(t.AddRowVec(a, row)) ==
              Matrix(2, 2, {11, 102, 13, 104}));
}

TEST(TapeTest, ConcurrentGradReadsAfterBackward) {
  // Regression for the const_cast lazy-materialization race: grad() used
  // to allocate a node's zero grad on first read behind a const method,
  // so two threads reading the grad of an untouched node raced on the
  // allocation. Backward() now pre-materializes zero grads for every
  // requires-grad node, making post-Backward reads pure. This test runs
  // in the CI TSan leg (tools/ci.sh), which is what actually proves it.
  Tape t;
  Var w = t.Input(Matrix(2, 2, {1, 2, 3, 4}));
  Var unused = t.Input(Matrix(2, 2, {5, 6, 7, 8}));  // receives no gradient
  Var loss = t.SumAll(t.Square(w));
  t.Backward(loss);

  Matrix grads[2][2];
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&t, &grads, w, unused, r] {
      grads[r][0] = t.grad(w);
      grads[r][1] = t.grad(unused);
    });
  }
  for (std::thread& th : readers) th.join();
  for (int r = 0; r < 2; ++r) {
    EXPECT_TRUE(grads[r][0] == Matrix(2, 2, {2, 4, 6, 8}));
    EXPECT_TRUE(grads[r][1] == Matrix(2, 2));  // zeros, not garbage
  }
}

}  // namespace
}  // namespace bgc::ag
