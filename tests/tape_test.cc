#include "src/autograd/tape.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/tensor/matrix_ops.h"

namespace bgc::ag {
namespace {

TEST(TapeTest, ForwardValuesMatchKernels) {
  Tape t;
  Matrix av(2, 2, {1, 2, 3, 4});
  Matrix bv(2, 2, {5, 6, 7, 8});
  Var a = t.Input(av);
  Var b = t.Constant(bv);
  EXPECT_TRUE(t.value(t.Add(a, b)) == Add(av, bv));
  EXPECT_TRUE(t.value(t.Sub(a, b)) == Sub(av, bv));
  EXPECT_TRUE(t.value(t.Hadamard(a, b)) == Hadamard(av, bv));
  EXPECT_TRUE(t.value(t.MatMul(a, b)) == MatMul(av, bv));
  EXPECT_TRUE(t.value(t.Transpose(a)) == Transpose(av));
}

TEST(TapeTest, AddBackwardDistributesGradient) {
  Tape t;
  Var a = t.Input(Matrix(1, 2, {1, 2}));
  Var b = t.Input(Matrix(1, 2, {3, 4}));
  Var loss = t.SumAll(t.Add(a, b));
  t.Backward(loss);
  EXPECT_TRUE(t.grad(a) == Matrix(1, 2, {1, 1}));
  EXPECT_TRUE(t.grad(b) == Matrix(1, 2, {1, 1}));
}

TEST(TapeTest, SubBackwardNegatesSecond) {
  Tape t;
  Var a = t.Input(Matrix(1, 1, {1.0f}));
  Var b = t.Input(Matrix(1, 1, {2.0f}));
  t.Backward(t.SumAll(t.Sub(a, b)));
  EXPECT_FLOAT_EQ(t.grad(a).At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(t.grad(b).At(0, 0), -1.0f);
}

TEST(TapeTest, MatMulBackwardShapes) {
  Tape t;
  Rng rng(1);
  Var a = t.Input(Matrix::RandomNormal(3, 4, rng));
  Var b = t.Input(Matrix::RandomNormal(4, 2, rng));
  t.Backward(t.SumAll(t.MatMul(a, b)));
  EXPECT_EQ(t.grad(a).rows(), 3);
  EXPECT_EQ(t.grad(a).cols(), 4);
  EXPECT_EQ(t.grad(b).rows(), 4);
  EXPECT_EQ(t.grad(b).cols(), 2);
}

TEST(TapeTest, ConstantReceivesNoGradient) {
  Tape t;
  Var a = t.Input(Matrix(1, 1, {2.0f}));
  Var c = t.Constant(Matrix(1, 1, {3.0f}));
  t.Backward(t.SumAll(t.Hadamard(a, c)));
  EXPECT_FLOAT_EQ(t.grad(a).At(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(t.grad(c).At(0, 0), 0.0f);
}

TEST(TapeTest, GradAccumulatesAcrossUses) {
  // loss = sum(a + a) -> da = 2.
  Tape t;
  Var a = t.Input(Matrix(1, 1, {5.0f}));
  t.Backward(t.SumAll(t.Add(a, a)));
  EXPECT_FLOAT_EQ(t.grad(a).At(0, 0), 2.0f);
}

TEST(TapeTest, ReluForwardAndMask) {
  Tape t;
  Var a = t.Input(Matrix(1, 3, {-1, 0, 2}));
  Var r = t.Relu(a);
  EXPECT_TRUE(t.value(r) == Matrix(1, 3, {0, 0, 2}));
  t.Backward(t.SumAll(r));
  EXPECT_TRUE(t.grad(a) == Matrix(1, 3, {0, 0, 1}));
}

TEST(TapeTest, BinarizeSteForwardThresholdBackwardIdentity) {
  Tape t;
  Var a = t.Input(Matrix(1, 3, {0.2f, 0.6f, 0.5f}));
  Var b = t.BinarizeSte(a, 0.5f);
  EXPECT_TRUE(t.value(b) == Matrix(1, 3, {0, 1, 0}));
  t.Backward(t.SumAll(b));
  EXPECT_TRUE(t.grad(a) == Matrix(1, 3, {1, 1, 1}));
}

TEST(TapeTest, SoftmaxRowsSumToOne) {
  Tape t;
  Rng rng(2);
  Var a = t.Input(Matrix::RandomNormal(4, 5, rng));
  const Matrix& s = t.value(t.Softmax(a));
  for (int i = 0; i < 4; ++i) {
    float sum = 0.0f;
    for (int j = 0; j < 5; ++j) sum += s.At(i, j);
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(TapeTest, SoftmaxCrossEntropyGradientIsProbMinusTarget) {
  Tape t;
  Matrix logits(1, 3, {1.0f, 2.0f, 3.0f});
  Matrix target = OneHot({2}, 3);
  Var l = t.Input(logits);
  Var loss = t.SoftmaxCrossEntropy(l, target);
  t.Backward(loss);
  Matrix p = RowSoftmax(logits);
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(t.grad(l).At(0, j), p.At(0, j) - target.At(0, j), 1e-5f);
  }
}

TEST(TapeTest, SoftmaxCrossEntropyPerfectPredictionLowLoss) {
  Tape t;
  Matrix logits(1, 2, {20.0f, -20.0f});
  Var l = t.Input(logits);
  Var loss = t.SoftmaxCrossEntropy(l, OneHot({0}, 2));
  EXPECT_LT(t.value(loss).At(0, 0), 1e-4f);
}

TEST(TapeTest, SoftmaxCrossEntropyRowWeights) {
  Tape t;
  Matrix logits(2, 2, {0.0f, 0.0f, 0.0f, 0.0f});
  Matrix targets = OneHot({0, 1}, 2);
  Matrix w(1, 2, {1.0f, 3.0f});
  Var l = t.Input(logits);
  Var loss = t.SoftmaxCrossEntropy(l, targets, w);
  // Both rows have loss ln(2); weights don't change the weighted mean.
  EXPECT_NEAR(t.value(loss).At(0, 0), std::log(2.0f), 1e-5f);
  t.Backward(loss);
  // Row 1 gradient scaled 3x relative to row 0 (same-sign entries: the
  // off-target column of each row).
  EXPECT_NEAR(t.grad(l).At(1, 0) / t.grad(l).At(0, 1), 3.0f, 1e-4f);
}

TEST(TapeTest, SpMMForwardAndBackward) {
  graph::CsrMatrix adj = graph::CsrMatrix::FromEdges(
      3, 3, {{0, 1}, {1, 2}}, /*symmetrize=*/true);
  Tape t;
  Rng rng(3);
  Matrix xv = Matrix::RandomNormal(3, 2, rng);
  Var x = t.Input(xv);
  Var y = t.SpMM(&adj, x);
  EXPECT_TRUE(AllClose(t.value(y), adj.Multiply(xv)));
  t.Backward(t.SumAll(y));
  // d(sum(Ax))/dx = A^T 1.
  Matrix ones(3, 2, 1.0f);
  EXPECT_TRUE(AllClose(t.grad(x), adj.MultiplyTransposed(ones)));
}

TEST(TapeTest, GatherRowsBackwardScatters) {
  Tape t;
  Var a = t.Input(Matrix(3, 1, {1, 2, 3}));
  Var g = t.GatherRows(a, {0, 0, 2});
  t.Backward(t.SumAll(g));
  EXPECT_TRUE(t.grad(a) == Matrix(3, 1, {2, 0, 1}));
}

TEST(TapeTest, DropoutEvalIsIdentity) {
  Tape t;
  Rng rng(4);
  Matrix xv(2, 2, {1, 2, 3, 4});
  Var x = t.Input(xv);
  Var y = t.Dropout(x, 0.5f, rng, /*training=*/false);
  EXPECT_TRUE(t.value(y) == xv);
}

TEST(TapeTest, DropoutTrainMasksAndScales) {
  Tape t;
  Rng rng(5);
  Matrix xv(40, 40, 1.0f);
  Var x = t.Input(xv);
  Var y = t.Dropout(x, 0.5f, rng, /*training=*/true);
  const Matrix& yv = t.value(y);
  int kept = 0;
  for (int i = 0; i < yv.size(); ++i) {
    EXPECT_TRUE(yv.data()[i] == 0.0f || yv.data()[i] == 2.0f);
    kept += yv.data()[i] != 0.0f;
  }
  EXPECT_NEAR(kept / 1600.0, 0.5, 0.06);
}

TEST(TapeTest, SolveForwardMatchesLinalg) {
  Tape t;
  Matrix av(2, 2, {2, 0, 0, 4});
  Matrix bv(2, 1, {2, 8});
  Var a = t.Input(av);
  Var b = t.Input(bv);
  Var x = t.Solve(a, b);
  EXPECT_NEAR(t.value(x).At(0, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(t.value(x).At(1, 0), 2.0f, 1e-5f);
}

TEST(TapeTest, ResetInvalidatesAndReuses) {
  Tape t;
  Var a = t.Input(Matrix(1, 1, {1.0f}));
  t.Backward(t.SumAll(a));
  t.Reset();
  EXPECT_EQ(t.num_nodes(), 0);
  Var b = t.Input(Matrix(1, 1, {2.0f}));
  t.Backward(t.SumAll(b));
  EXPECT_FLOAT_EQ(t.grad(b).At(0, 0), 1.0f);
}

TEST(TapeTest, MeanAllScalesGradient) {
  Tape t;
  Var a = t.Input(Matrix(2, 2, 3.0f));
  Var m = t.MeanAll(a);
  EXPECT_FLOAT_EQ(t.value(m).At(0, 0), 3.0f);
  t.Backward(m);
  EXPECT_TRUE(AllClose(t.grad(a), Matrix(2, 2, 0.25f)));
}

TEST(TapeTest, BroadcastOpsForward) {
  Tape t;
  Var a = t.Input(Matrix(2, 2, {1, 2, 3, 4}));
  Var col = t.Input(Matrix(2, 1, {2, 3}));
  Var row = t.Input(Matrix(1, 2, {10, 100}));
  EXPECT_TRUE(t.value(t.MulColVec(a, col)) == Matrix(2, 2, {2, 4, 9, 12}));
  EXPECT_TRUE(t.value(t.MulRowVec(a, row)) ==
              Matrix(2, 2, {10, 200, 30, 400}));
  EXPECT_TRUE(t.value(t.AddRowVec(a, row)) ==
              Matrix(2, 2, {11, 102, 13, 104}));
}

TEST(TapeTest, ConcurrentGradReadsAfterBackward) {
  // Regression for the const_cast lazy-materialization race: grad() used
  // to allocate a node's zero grad on first read behind a const method,
  // so two threads reading the grad of an untouched node raced on the
  // allocation. Backward() now pre-materializes zero grads for every
  // requires-grad node, making post-Backward reads pure. This test runs
  // in the CI TSan leg (tools/ci.sh), which is what actually proves it.
  Tape t;
  Var w = t.Input(Matrix(2, 2, {1, 2, 3, 4}));
  Var unused = t.Input(Matrix(2, 2, {5, 6, 7, 8}));  // receives no gradient
  Var loss = t.SumAll(t.Square(w));
  t.Backward(loss);

  Matrix grads[2][2];
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&t, &grads, w, unused, r] {
      grads[r][0] = t.grad(w);
      grads[r][1] = t.grad(unused);
    });
  }
  for (std::thread& th : readers) th.join();
  for (int r = 0; r < 2; ++r) {
    EXPECT_TRUE(grads[r][0] == Matrix(2, 2, {2, 4, 6, 8}));
    EXPECT_TRUE(grads[r][1] == Matrix(2, 2));  // zeros, not garbage
  }
}

}  // namespace
}  // namespace bgc::ag
