// Kill-and-resume tests for src/store resumable condensation: a run that
// is interrupted and resumed from its checkpoint must produce the same
// condensed graph, bit for bit, as an uninterrupted run — at any thread
// count, since the underlying kernels are deterministic.

#include "src/store/resumable.h"

#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "src/core/fs.h"
#include "src/core/thread_pool.h"
#include "src/data/synthetic.h"
#include "src/store/serialize.h"

namespace bgc {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

condense::SourceGraph TinySource(int* num_classes) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 31);
  *num_classes = ds.num_classes;
  return condense::FromTrainView(data::MakeTrainView(ds));
}

condense::CondenseConfig TinyConfig() {
  condense::CondenseConfig cfg;
  cfg.num_condensed = 8;
  cfg.epochs = 6;
  return cfg;
}

void ExpectBitIdentical(const condense::CondensedGraph& a,
                        const condense::CondensedGraph& b,
                        const std::string& label) {
  EXPECT_TRUE(a.features == b.features) << label;
  EXPECT_EQ(a.labels, b.labels) << label;
  EXPECT_EQ(a.num_classes, b.num_classes) << label;
  EXPECT_EQ(a.use_structure, b.use_structure) << label;
  EXPECT_EQ(a.adj.row_ptr(), b.adj.row_ptr()) << label;
  EXPECT_EQ(a.adj.col_idx(), b.adj.col_idx()) << label;
  EXPECT_EQ(a.adj.values(), b.adj.values()) << label;
}

// One kill-and-resume cycle for `method`, returning both the
// uninterrupted and the resumed result for comparison.
void RunKillAndResume(const std::string& method) {
  int num_classes = 0;
  condense::SourceGraph src = TinySource(&num_classes);
  condense::CondenseConfig cfg = TinyConfig();
  const std::string ckpt = TempPath("ckpt_" + method + ".bgcbin");
  std::remove(ckpt.c_str());

  // Uninterrupted reference run.
  auto reference = condense::MakeCondenser(method);
  Rng ref_rng(77);
  condense::CondensedGraph expected = condense::RunCondensation(
      *reference, src, num_classes, cfg, ref_rng);

  // Interrupted run: killed after 3 of 6 epochs (checkpoint written).
  auto first = condense::MakeCondenser(method);
  store::ResumableOptions opts;
  opts.checkpoint_path = ckpt;
  opts.checkpoint_every = 2;
  opts.stop_after_epochs = 3;
  Rng rng_a(77);
  store::ResumableResult partial = store::RunResumableCondensation(
      *first, src, num_classes, cfg, rng_a, opts);
  EXPECT_FALSE(partial.completed) << method;
  EXPECT_FALSE(partial.resumed) << method;
  EXPECT_EQ(partial.epochs_done, 3) << method;
  ASSERT_TRUE(FileExists(ckpt)) << method;

  // Resumed run in a fresh condenser; the seed RNG is unused on resume.
  auto second = condense::MakeCondenser(method);
  opts.stop_after_epochs = 0;
  Rng rng_b(77);
  store::ResumableResult finished = store::RunResumableCondensation(
      *second, src, num_classes, cfg, rng_b, opts);
  EXPECT_TRUE(finished.completed) << method;
  EXPECT_TRUE(finished.resumed) << method;
  EXPECT_EQ(finished.epochs_done, cfg.epochs) << method;
  // The checkpoint is cleaned up after a completed run.
  EXPECT_FALSE(FileExists(ckpt)) << method;

  ExpectBitIdentical(finished.condensed, expected, method);
}

TEST(CheckpointTest, KillAndResumeBitIdenticalGcond) {
  RunKillAndResume("gcond");
}

TEST(CheckpointTest, KillAndResumeBitIdenticalGcondX) {
  RunKillAndResume("gcond-x");
}

TEST(CheckpointTest, KillAndResumeBitIdenticalDcGraph) {
  RunKillAndResume("dc-graph");
}

TEST(CheckpointTest, ResumeBitIdenticalAcrossThreadCounts) {
  int num_classes = 0;
  condense::SourceGraph src = TinySource(&num_classes);
  condense::CondenseConfig cfg = TinyConfig();
  const std::string ckpt = TempPath("ckpt_threads.bgcbin");
  std::remove(ckpt.c_str());

  ThreadPool::SetGlobalNumThreads(1);
  auto reference = condense::MakeCondenser("gcond");
  Rng ref_rng(55);
  condense::CondensedGraph expected = condense::RunCondensation(
      *reference, src, num_classes, cfg, ref_rng);

  // Interrupt at 2 epochs on 1 thread, resume on 4 threads.
  auto first = condense::MakeCondenser("gcond");
  store::ResumableOptions opts;
  opts.checkpoint_path = ckpt;
  opts.checkpoint_every = 0;  // only the kill writes a checkpoint
  opts.stop_after_epochs = 2;
  Rng rng_a(55);
  store::RunResumableCondensation(*first, src, num_classes, cfg, rng_a, opts);

  ThreadPool::SetGlobalNumThreads(4);
  auto second = condense::MakeCondenser("gcond");
  opts.stop_after_epochs = 0;
  Rng rng_b(55);
  store::ResumableResult finished = store::RunResumableCondensation(
      *second, src, num_classes, cfg, rng_b, opts);
  ThreadPool::SetGlobalNumThreads(0);

  ExpectBitIdentical(finished.condensed, expected, "threads 1 -> 4");
}

TEST(CheckpointTest, PeriodicCheckpointSurvivesWithKeepFlag) {
  int num_classes = 0;
  condense::SourceGraph src = TinySource(&num_classes);
  condense::CondenseConfig cfg = TinyConfig();
  const std::string ckpt = TempPath("ckpt_keep.bgcbin");
  std::remove(ckpt.c_str());

  auto condenser = condense::MakeCondenser("gcond-x");
  store::ResumableOptions opts;
  opts.checkpoint_path = ckpt;
  opts.checkpoint_every = 2;
  opts.keep_checkpoint = true;
  Rng rng(91);
  store::ResumableResult run = store::RunResumableCondensation(
      *condenser, src, num_classes, cfg, rng, opts);
  EXPECT_TRUE(run.completed);
  ASSERT_TRUE(FileExists(ckpt));

  // The kept checkpoint is a valid artifact at the final epoch.
  StatusOr<condense::CondenserState> state =
      store::TryLoadCondenserCheckpoint(ckpt);
  ASSERT_TRUE(state.ok()) << state.status().message();
  EXPECT_EQ(state.value().epoch, cfg.epochs);
  EXPECT_EQ(state.value().method, "gcond-x");
  std::remove(ckpt.c_str());
}

TEST(CheckpointDeathTest, CorruptCheckpointAborts) {
  int num_classes = 0;
  condense::SourceGraph src = TinySource(&num_classes);
  condense::CondenseConfig cfg = TinyConfig();
  const std::string ckpt = TempPath("ckpt_corrupt.bgcbin");
  std::remove(ckpt.c_str());

  auto first = condense::MakeCondenser("gcond");
  store::ResumableOptions opts;
  opts.checkpoint_path = ckpt;
  opts.stop_after_epochs = 2;
  Rng rng(13);
  store::RunResumableCondensation(*first, src, num_classes, cfg, rng, opts);
  ASSERT_TRUE(FileExists(ckpt));

  // Flip one byte: the resume must refuse, not silently restart.
  {
    std::fstream f(ckpt, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<long long>(f.tellg());
    f.seekp(size / 2);
    char c = 0;
    f.seekg(size / 2);
    f.read(&c, 1);
    f.seekp(size / 2);
    c = static_cast<char>(c ^ 0x10);
    f.write(&c, 1);
  }
  auto second = condense::MakeCondenser("gcond");
  opts.stop_after_epochs = 0;
  Rng rng_b(13);
  EXPECT_DEATH(store::RunResumableCondensation(*second, src, num_classes, cfg,
                                               rng_b, opts),
               "corrupt checkpoint");
  std::remove(ckpt.c_str());
}

TEST(CheckpointDeathTest, ConfigMismatchAborts) {
  int num_classes = 0;
  condense::SourceGraph src = TinySource(&num_classes);
  condense::CondenseConfig cfg = TinyConfig();
  const std::string ckpt = TempPath("ckpt_cfg.bgcbin");
  std::remove(ckpt.c_str());

  auto first = condense::MakeCondenser("gcond");
  store::ResumableOptions opts;
  opts.checkpoint_path = ckpt;
  opts.stop_after_epochs = 2;
  Rng rng(14);
  store::RunResumableCondensation(*first, src, num_classes, cfg, rng, opts);

  condense::CondenseConfig other = cfg;
  other.feature_lr *= 2.0f;
  auto second = condense::MakeCondenser("gcond");
  opts.stop_after_epochs = 0;
  Rng rng_b(14);
  EXPECT_DEATH(store::RunResumableCondensation(*second, src, num_classes,
                                               other, rng_b, opts),
               "does not match");
  std::remove(ckpt.c_str());
}

TEST(CheckpointDeathTest, MethodMismatchAborts) {
  int num_classes = 0;
  condense::SourceGraph src = TinySource(&num_classes);
  condense::CondenseConfig cfg = TinyConfig();
  const std::string ckpt = TempPath("ckpt_method.bgcbin");
  std::remove(ckpt.c_str());

  auto first = condense::MakeCondenser("gcond");
  store::ResumableOptions opts;
  opts.checkpoint_path = ckpt;
  opts.stop_after_epochs = 2;
  Rng rng(15);
  store::RunResumableCondensation(*first, src, num_classes, cfg, rng, opts);

  auto second = condense::MakeCondenser("gcond-x");
  opts.stop_after_epochs = 0;
  Rng rng_b(15);
  EXPECT_DEATH(store::RunResumableCondensation(*second, src, num_classes, cfg,
                                               rng_b, opts),
               "checkpoint is for method");
  std::remove(ckpt.c_str());
}

TEST(CheckpointDeathTest, UnsupportedCondenserAborts) {
  int num_classes = 0;
  condense::SourceGraph src = TinySource(&num_classes);
  condense::CondenseConfig cfg = TinyConfig();
  auto condenser = condense::MakeCondenser("gc-sntk");
  store::ResumableOptions opts;
  opts.checkpoint_path = TempPath("ckpt_unsupported.bgcbin");
  Rng rng(16);
  EXPECT_DEATH(store::RunResumableCondensation(*condenser, src, num_classes,
                                               cfg, rng, opts),
               "does not support checkpointing");
}

}  // namespace
}  // namespace bgc
