#include "src/graph/graph_utils.h"

#include <gtest/gtest.h>

#include "src/tensor/matrix_ops.h"

namespace bgc::graph {
namespace {

CsrMatrix PathGraph(int n) {
  std::vector<Edge> edges;
  for (int i = 0; i + 1 < n; ++i) edges.push_back({i, i + 1});
  return CsrMatrix::FromEdges(n, n, edges, /*symmetrize=*/true);
}

TEST(GraphUtilsTest, Degrees) {
  auto deg = Degrees(PathGraph(4));
  EXPECT_EQ(deg, (std::vector<float>{1, 2, 2, 1}));
}

TEST(GraphUtilsTest, InducedSubgraphKeepsInternalEdges) {
  CsrMatrix sub = InducedSubgraph(PathGraph(5), {1, 2, 4});
  // Local ids: 1->0, 2->1, 4->2. Only edge 1-2 survives.
  EXPECT_EQ(sub.rows(), 3);
  EXPECT_FLOAT_EQ(sub.At(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(sub.At(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(sub.At(1, 2), 0.0f);
  EXPECT_EQ(sub.nnz(), 2);
}

TEST(GraphUtilsTest, InducedSubgraphEmptySelection) {
  CsrMatrix sub = InducedSubgraph(PathGraph(3), {});
  EXPECT_EQ(sub.rows(), 0);
  EXPECT_EQ(sub.nnz(), 0);
}

TEST(GraphUtilsTest, AugmentGraphAddsNodesAndSymmetricEdges) {
  CsrMatrix g = AugmentGraph(PathGraph(3), 2, {{3, 0}, {3, 4}});
  EXPECT_EQ(g.rows(), 5);
  EXPECT_FLOAT_EQ(g.At(3, 0), 1.0f);
  EXPECT_FLOAT_EQ(g.At(0, 3), 1.0f);
  EXPECT_FLOAT_EQ(g.At(4, 3), 1.0f);
  // Original edges intact.
  EXPECT_FLOAT_EQ(g.At(0, 1), 1.0f);
}

TEST(GraphUtilsTest, AugmentGraphNoExtras) {
  CsrMatrix base = PathGraph(3);
  CsrMatrix g = AugmentGraph(base, 0, {});
  EXPECT_TRUE(AllClose(g.ToDense(), base.ToDense()));
}

TEST(GraphUtilsTest, DropEdgesKeepAllAndNone) {
  Rng rng(1);
  CsrMatrix base = PathGraph(6);
  EXPECT_EQ(DropEdges(base, 1.0, rng).nnz(), base.nnz());
  EXPECT_EQ(DropEdges(base, 0.0, rng).nnz(), 0);
}

TEST(GraphUtilsTest, DropEdgesStaysSymmetric) {
  Rng rng(2);
  CsrMatrix dropped = DropEdges(PathGraph(30), 0.5, rng);
  Matrix d = dropped.ToDense();
  EXPECT_TRUE(AllClose(d, Transpose(d)));
  EXPECT_GT(dropped.nnz(), 0);
  EXPECT_LT(dropped.nnz(), 58);
}

TEST(GraphUtilsTest, DropEdgesKeepsSelfLoops) {
  Rng rng(3);
  CsrMatrix g = CsrMatrix::FromEdges(2, 2, {{0, 0}, {1, 1}, {0, 1}}, true);
  CsrMatrix dropped = DropEdges(g, 0.0, rng);
  EXPECT_FLOAT_EQ(dropped.At(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(dropped.At(1, 1), 1.0f);
  EXPECT_FLOAT_EQ(dropped.At(0, 1), 0.0f);
}

TEST(GraphUtilsTest, EdgeHomophilyAllSame) {
  EXPECT_DOUBLE_EQ(EdgeHomophily(PathGraph(4), {1, 1, 1, 1}), 1.0);
}

TEST(GraphUtilsTest, EdgeHomophilyAlternating) {
  EXPECT_DOUBLE_EQ(EdgeHomophily(PathGraph(4), {0, 1, 0, 1}), 0.0);
}

TEST(GraphUtilsTest, EgoNetworkHops) {
  CsrMatrix path = PathGraph(6);
  EXPECT_EQ(EgoNetwork(path, 0, 0), (std::vector<int>{0}));
  EXPECT_EQ(EgoNetwork(path, 2, 1), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(EgoNetwork(path, 2, 2), (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_EQ(EgoNetwork(path, 0, 10), (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace bgc::graph
