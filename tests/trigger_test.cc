#include "src/attack/trigger.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/attack/attach.h"
#include "src/attack/ego.h"
#include "src/data/synthetic.h"

namespace bgc::attack {
namespace {

struct Fixture {
  data::GraphDataset ds;
  condense::SourceGraph source;
  SurrogateGcn surrogate;

  explicit Fixture(uint64_t seed = 81)
      : ds(data::MakeDataset("tiny-sim", seed)),
        source(condense::FromTrainView(data::MakeTrainView(ds))),
        surrogate(ds.feature_dim(), 16, ds.num_classes) {
    Rng rng(seed);
    surrogate.Init(rng);
    surrogate.TrainOnGraph(source.adj, source.features, source.labels,
                           source.labeled, 40, 0.01f, rng);
  }
};

TEST(EgoTest, ContainsHostFirst) {
  Fixture f;
  Rng rng(1);
  EgoItem item = BuildEgoItem(f.source.adj, f.source.features, 5, {2, 8}, 4,
                              rng);
  EXPECT_EQ(item.nodes[0], 5);
  EXPECT_EQ(item.host_local, 0);
  EXPECT_EQ(item.features.rows(), static_cast<int>(item.nodes.size()));
  EXPECT_EQ(item.base_adj.rows(),
            static_cast<int>(item.nodes.size()) + 4);
}

TEST(EgoTest, HostTriggerEdgePresent) {
  Fixture f;
  Rng rng(2);
  EgoItem item = BuildEgoItem(f.source.adj, f.source.features, 0, {2, 8}, 3,
                              rng);
  const int m = static_cast<int>(item.nodes.size());
  EXPECT_FLOAT_EQ(item.base_adj.At(0, m), 1.0f);
  EXPECT_FLOAT_EQ(item.base_adj.At(m, 0), 1.0f);
  // Trigger block starts all-zero.
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_FLOAT_EQ(item.base_adj.At(m + i, m + j), 0.0f);
    }
  }
}

TEST(EgoTest, CapLimitsNeighborhood) {
  Fixture f;
  Rng rng(3);
  EgoItem small = BuildEgoItem(f.source.adj, f.source.features, 0, {2, 2}, 2,
                               rng);
  // 1 host + at most 2 new nodes per hop over 2 hops.
  EXPECT_LE(small.nodes.size(), 5u);
}

TEST(EgoTest, EmbedSelectorShape) {
  Fixture f;
  Rng rng(4);
  EgoItem item = BuildEgoItem(f.source.adj, f.source.features, 1, {1, 4}, 4,
                              rng);
  const int m = static_cast<int>(item.nodes.size());
  EXPECT_EQ(item.embed.rows(), m + 4);
  EXPECT_EQ(item.embed.cols(), 4);
  for (int j = 0; j < 4; ++j) EXPECT_FLOAT_EQ(item.embed.At(m + j, j), 1.0f);
}

class GeneratorTest : public ::testing::TestWithParam<const char*> {
 protected:
  static std::unique_ptr<TriggerGenerator> Make(const char* kind,
                                                const Fixture& f, Rng& rng) {
    if (std::string(kind) == "universal") {
      return std::make_unique<UniversalTriggerGenerator>(f.ds.feature_dim(),
                                                         3, 0.05f, 1.0f, rng);
    }
    return std::make_unique<AdaptiveTriggerGenerator>(f.ds.feature_dim(), 16,
                                                      3, 0.05f, 1.0f, rng);
  }
};

TEST_P(GeneratorTest, GenerateShapesAndBounds) {
  Fixture f;
  Rng rng(5);
  auto gen = Make(GetParam(), f, rng);
  auto triggers = gen->Generate(f.source, {0, 3, 7});
  ASSERT_EQ(triggers.size(), 3u);
  for (const auto& trig : triggers) {
    EXPECT_EQ(trig.features.rows(), 3);
    EXPECT_EQ(trig.features.cols(), f.ds.feature_dim());
    // tanh bound with scale 1.
    for (int i = 0; i < trig.features.size(); ++i) {
      EXPECT_LE(std::fabs(trig.features.data()[i]), 1.0f);
    }
    for (auto [a, b] : trig.internal_edges) {
      EXPECT_LT(a, b);
      EXPECT_LT(b, 3);
    }
  }
}

TEST_P(GeneratorTest, TrainStepReducesTargetLoss) {
  Fixture f;
  Rng rng(6);
  auto gen = Make(GetParam(), f, rng);
  std::vector<int> update_nodes = {1, 2, 4, 8, 9};
  const float first = gen->TrainStep(f.source, f.surrogate, update_nodes, 0,
                                     {2, 8}, rng);
  float last = first;
  for (int s = 0; s < 25; ++s) {
    last = gen->TrainStep(f.source, f.surrogate, update_nodes, 0, {2, 8},
                          rng);
  }
  EXPECT_LT(last, first);
}

TEST_P(GeneratorTest, AdaptiveTriggersSwaySurrogate) {
  // After training against the surrogate, attaching triggers should raise
  // the surrogate's target-class prediction rate well above its clean rate.
  Fixture f;
  Rng rng(7);
  auto gen = Make(GetParam(), f, rng);
  std::vector<int> update_nodes;
  for (int i = 0; i < 30; ++i) {
    if (f.source.labels[i] != 0) update_nodes.push_back(i);
  }
  for (int s = 0; s < 60; ++s) {
    gen->TrainStep(f.source, f.surrogate, update_nodes, 0, {2, 8}, rng);
  }
  // Evaluate on held-out hosts.
  std::vector<int> hosts;
  for (int i = 30; i < 90; ++i) {
    if (f.source.labels[i] != 0) hosts.push_back(i);
  }
  auto triggers = gen->Generate(f.source, hosts);
  AugmentedGraph aug =
      AttachToGraph(f.source.adj, f.source.features, hosts, triggers);
  Matrix poisoned_logits = f.surrogate.Predict(aug.adj, aug.features);
  Matrix clean_logits = f.surrogate.Predict(f.source.adj, f.source.features);
  int flip = 0, clean_hits = 0;
  for (int host : hosts) {
    const float* row = poisoned_logits.RowPtr(host);
    int best = 0;
    for (int c = 1; c < f.ds.num_classes; ++c) {
      if (row[c] > row[best]) best = c;
    }
    flip += best == 0;
    const float* crow = clean_logits.RowPtr(host);
    int cbest = 0;
    for (int c = 1; c < f.ds.num_classes; ++c) {
      if (crow[c] > crow[cbest]) cbest = c;
    }
    clean_hits += cbest == 0;
  }
  EXPECT_GT(flip, clean_hits);
  EXPECT_GT(static_cast<double>(flip) / hosts.size(), 0.5);
}

INSTANTIATE_TEST_SUITE_P(BothKinds, GeneratorTest,
                         ::testing::Values("adaptive", "universal"),
                         [](const auto& info) { return std::string(info.param); });

TEST(UniversalGeneratorTest, SameTriggerForAllHosts) {
  Fixture f;
  Rng rng(8);
  UniversalTriggerGenerator gen(f.ds.feature_dim(), 3, 0.05f, 1.0f, rng);
  auto triggers = gen.Generate(f.source, {0, 1, 2});
  EXPECT_TRUE(triggers[0].features == triggers[1].features);
  EXPECT_EQ(triggers[0].internal_edges, triggers[2].internal_edges);
}

TEST(AdaptiveGeneratorTest, NodeConditionedTriggersDiffer) {
  Fixture f;
  Rng rng(9);
  AdaptiveTriggerGenerator gen(f.ds.feature_dim(), 16, 3, 0.05f, 1.0f, rng);
  auto triggers = gen.Generate(f.source, {0, 50});
  EXPECT_FALSE(triggers[0].features == triggers[1].features);
}

}  // namespace
}  // namespace bgc::attack
