// Integration tests of the full attack pipelines on tiny-sim.

#include "src/attack/bgc.h"

#include <gtest/gtest.h>

#include "src/attack/gta.h"
#include "src/attack/naive.h"
#include "src/data/synthetic.h"
#include "src/eval/pipeline.h"

namespace bgc::attack {
namespace {

struct Fixture {
  data::GraphDataset ds;
  condense::SourceGraph clean;

  explicit Fixture(uint64_t seed = 111)
      : ds(data::MakeDataset("tiny-sim", seed)),
        clean(condense::FromTrainView(data::MakeTrainView(ds))) {}
};

condense::CondenseConfig FastCondense() {
  condense::CondenseConfig cfg;
  cfg.num_condensed = 9;
  cfg.epochs = 30;
  return cfg;
}

AttackConfig FastAttack() {
  AttackConfig cfg;
  cfg.target_class = 0;
  cfg.trigger_size = 3;
  cfg.poison_ratio = 0.2;  // 6 of 30 labeled
  cfg.clusters_per_class = 2;
  cfg.selector_epochs = 30;
  cfg.surrogate_steps = 20;
  cfg.update_batch = 10;
  cfg.ego = {2, 8};
  return cfg;
}

TEST(RunBgcTest, ProducesValidResult) {
  Fixture f;
  Rng rng(1);
  auto condenser = condense::MakeCondenser("gcond-x");
  AttackResult result = RunBgc(f.clean, f.ds.num_classes, *condenser,
                               FastCondense(), FastAttack(), rng);
  EXPECT_EQ(result.condensed.features.rows(), 9);
  EXPECT_NE(result.generator, nullptr);
  EXPECT_FALSE(result.poisoned_nodes.empty());
  EXPECT_LE(result.poisoned_nodes.size(), 6u);
  for (int v : result.poisoned_nodes) EXPECT_NE(f.ds.labels[v], 0);
}

TEST(RunBgcTest, BackdoorsTheVictim) {
  Fixture f(112);
  Rng rng(2);
  auto condenser = condense::MakeCondenser("gcond-x");
  AttackResult result = RunBgc(f.clean, f.ds.num_classes, *condenser,
                               FastCondense(), FastAttack(), rng);
  eval::VictimConfig vc;
  vc.hidden = 16;
  vc.epochs = 120;
  auto victim = eval::TrainVictim(result.condensed, vc, rng);
  eval::AttackMetrics metrics =
      eval::EvaluateVictim(*victim, f.ds, result.generator.get(), 0);
  EXPECT_GT(metrics.asr, 0.8);
  EXPECT_GT(metrics.cta, 0.5);  // utility preserved (chance = 1/3)
}

TEST(RunBgcTest, RandomSelectionVariantRuns) {
  Fixture f(113);
  Rng rng(3);
  auto condenser = condense::MakeCondenser("dc-graph");
  AttackConfig acfg = FastAttack();
  acfg.selection = "random";
  AttackResult result = RunBgc(f.clean, f.ds.num_classes, *condenser,
                               FastCondense(), acfg, rng);
  EXPECT_FALSE(result.poisoned_nodes.empty());
}

TEST(RunBgcTest, UniversalTriggerVariantRuns) {
  Fixture f(114);
  Rng rng(4);
  auto condenser = condense::MakeCondenser("gcond-x");
  AttackConfig acfg = FastAttack();
  acfg.trigger_type = "universal";
  AttackResult result = RunBgc(f.clean, f.ds.num_classes, *condenser,
                               FastCondense(), acfg, rng);
  auto triggers = result.generator->Generate(f.clean, {0, 1});
  EXPECT_TRUE(triggers[0].features == triggers[1].features);
}

TEST(RunGtaTest, ProducesFrozenTriggerAttack) {
  Fixture f(115);
  Rng rng(5);
  auto condenser = condense::MakeCondenser("gcond-x");
  condense::CondenseConfig ccfg = FastCondense();
  ccfg.epochs = 15;  // GTA trains the generator epochs×steps times upfront
  AttackResult result = RunGta(f.clean, f.ds.num_classes, *condenser, ccfg,
                               FastAttack(), rng);
  EXPECT_EQ(result.condensed.features.rows(), 9);
  EXPECT_NE(result.generator, nullptr);
}

TEST(RunNaiveTest, PoisonsCondensedGraphDirectly) {
  Fixture f(116);
  Rng rng(6);
  auto condenser = condense::MakeCondenser("gcond-x");
  AttackResult result = RunNaivePoison(f.clean, f.ds.num_classes, *condenser,
                                       FastCondense(), FastAttack(), rng);
  // Condensed graph grew by trigger nodes.
  EXPECT_GT(result.condensed.features.rows(), 9);
  // Some synthetic nodes were relabeled to the target class beyond the
  // original allocation.
  int target_count = 0;
  for (int y : result.condensed.labels) target_count += y == 0;
  EXPECT_GT(target_count, 3);
  EXPECT_FALSE(result.poisoned_nodes.empty());
}

TEST(ResolvePoisonBudgetTest, RatioAndExplicit) {
  AttackConfig cfg;
  cfg.poison_ratio = 0.1;
  EXPECT_EQ(ResolvePoisonBudget(cfg, 100), 10);
  EXPECT_EQ(ResolvePoisonBudget(cfg, 5), 1);  // floor of 1
  cfg.poison_budget = 42;
  EXPECT_EQ(ResolvePoisonBudget(cfg, 100), 42);
}

TEST(ResolveTriggerScaleTest, AutoUsesDataScale) {
  AttackConfig cfg;
  Matrix x(2, 2, {1.0f, -1.0f, 2.0f, -2.0f});
  EXPECT_FLOAT_EQ(ResolveTriggerFeatureScale(cfg, x), 1.5f);
  cfg.trigger_feature_scale = 7.0f;
  EXPECT_FLOAT_EQ(ResolveTriggerFeatureScale(cfg, x), 7.0f);
}

}  // namespace
}  // namespace bgc::attack
