#include "src/attack/surrogate.h"

#include <gtest/gtest.h>

#include "src/condense/condenser.h"
#include "src/data/synthetic.h"
#include "src/graph/graph_utils.h"
#include "src/nn/trainer.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::attack {
namespace {

TEST(SurrogateTest, TrainReducesLoss) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 101);
  condense::SourceGraph src =
      condense::FromTrainView(data::MakeTrainView(ds));
  SurrogateGcn surrogate(ds.feature_dim(), 16, ds.num_classes);
  Rng rng(1);
  surrogate.Init(rng);
  const float first = surrogate.TrainOnGraph(
      src.adj, src.features, src.labels, src.labeled, 1, 0.01f, rng);
  const float later = surrogate.TrainOnGraph(
      src.adj, src.features, src.labels, src.labeled, 80, 0.01f, rng);
  EXPECT_LT(later, first);
}

TEST(SurrogateTest, LearnsBeyondChance) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 102);
  condense::SourceGraph src =
      condense::FromTrainView(data::MakeTrainView(ds));
  SurrogateGcn surrogate(ds.feature_dim(), 16, ds.num_classes);
  Rng rng(2);
  surrogate.Init(rng);
  surrogate.TrainOnGraph(src.adj, src.features, src.labels, src.labeled, 120,
                         0.01f, rng);
  Matrix logits = surrogate.Predict(ds.adj, ds.features);
  EXPECT_GT(nn::Accuracy(logits, ds.labels, ds.test_idx), 0.6);
}

TEST(SurrogateTest, DenseForwardMatchesSparsePredict) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 103);
  SurrogateGcn surrogate(ds.feature_dim(), 8, ds.num_classes);
  Rng rng(3);
  surrogate.Init(rng);
  // Small subgraph: dense forward with the explicitly normalized operator
  // must equal the sparse prediction path.
  std::vector<int> nodes = {0, 1, 2, 3, 4, 5, 6, 7};
  graph::CsrMatrix sub = graph::InducedSubgraph(ds.adj, nodes);
  Matrix x = GatherRows(ds.features, nodes);
  Matrix sparse_logits = surrogate.Predict(sub, x);

  graph::CsrMatrix norm = graph::GcnNormalize(sub);
  ag::Tape t;
  ag::Var adj = t.Constant(norm.ToDense());
  ag::Var xv = t.Constant(x);
  ag::Var dense_logits = surrogate.DenseForwardFixed(t, adj, xv);
  EXPECT_TRUE(AllClose(t.value(dense_logits), sparse_logits, 1e-4f, 1e-5f));
}

TEST(SurrogateTest, InitResetsWeights) {
  SurrogateGcn surrogate(8, 4, 3);
  Rng rng(4);
  surrogate.Init(rng);
  graph::CsrMatrix id = graph::CsrMatrix::Identity(2);
  Matrix x = Matrix::RandomNormal(2, 8, rng);
  Matrix before = surrogate.Predict(id, x);
  surrogate.Init(rng);
  EXPECT_FALSE(surrogate.Predict(id, x) == before);
}

TEST(SurrogateTest, DimsAccessors) {
  SurrogateGcn surrogate(10, 6, 4);
  EXPECT_EQ(surrogate.hidden_dim(), 6);
  EXPECT_EQ(surrogate.out_dim(), 4);
}

}  // namespace
}  // namespace bgc::attack
