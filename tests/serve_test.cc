// The serve subsystem (src/serve): protocol strictness, admission
// control, cache coalescing, bit-identity with the bgc_cli flows,
// checkpoint resume across server generations, and drain semantics.
// Everything runs against an in-process Server on an ephemeral port.

#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/condense/condenser.h"
#include "src/core/fs.h"
#include "src/core/rng.h"
#include "src/data/synthetic.h"
#include "src/eval/experiment.h"
#include "src/eval/pipeline.h"
#include "src/obs/json.h"
#include "src/obs/obs.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"
#include "src/serve/server.h"
#include "src/store/artifact_cache.h"
#include "src/store/resumable.h"
#include "src/store/serialize.h"

namespace bgc::serve {
namespace {

// A small-but-not-instant condense spec (tiny-sim: 200 nodes, 3 classes).
constexpr int kEpochs = 8;
constexpr int kSlowEpochs = 120;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "serve_" + name;
}

/// TempDir() is shared across runs; tests delete their paths up front so
/// a rerun never sees the previous run's artifacts.
void RemovePathAndContents(const std::string& path) {
  if (DIR* dir = ::opendir(path.c_str())) {
    while (dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name != "." && name != "..") {
        ::remove((path + "/" + name).c_str());
      }
    }
    ::closedir(dir);
    ::rmdir(path.c_str());
  } else {
    ::remove(path.c_str());
  }
}

std::string CondenseSpec(uint64_t seed, int epochs,
                         const std::string& out = "") {
  std::string spec = "{\"dataset\":\"tiny-sim\",\"seed\":" +
                     std::to_string(seed) +
                     ",\"method\":\"gcond\",\"n\":4,\"epochs\":" +
                     std::to_string(epochs);
  if (!out.empty()) {
    spec += ",\"out\":";
    AppendJsonString(spec, out);
  }
  spec += '}';
  return spec;
}

/// An eval-kind spec small enough to finish in well under a second but
/// not instant (condense + attack + victim training per repeat).
std::string EvalSpec(uint64_t seed) {
  return "{\"dataset\":\"tiny-sim\",\"seed\":" + std::to_string(seed) +
         ",\"method\":\"coarsen\",\"n\":4,\"epochs\":2,"
         "\"attack\":\"bgc\",\"target\":0,\"trigger-size\":2,"
         "\"poison-ratio\":0.1,\"victim-epochs\":30}";
}

Client MustConnect(const Server& server, const std::string& name) {
  StatusOr<Client> client = Client::Connect("127.0.0.1", server.port(), name);
  EXPECT_TRUE(client.ok()) << client.status().message();
  return client.take();
}

/// Wait reply -> the "result" object (asserts state DONE).
obs::JsonValue MustFinish(Client& client, const std::string& job) {
  StatusOr<obs::JsonValue> reply = client.Wait(job);
  EXPECT_TRUE(reply.ok()) << reply.status().message();
  if (!reply.ok()) return obs::JsonValue{};
  const obs::JsonValue* state = reply.value().Find("state");
  EXPECT_TRUE(state != nullptr && state->is_string());
  const obs::JsonValue* error = reply.value().Find("error");
  if (state != nullptr && state->is_string()) {
    EXPECT_EQ(state->str, "DONE")
        << (error != nullptr ? error->str : "no error message");
  }
  const obs::JsonValue* result = reply.value().Find("result");
  EXPECT_NE(result, nullptr);
  return result != nullptr ? *result : obs::JsonValue{};
}

TEST(ServeProtocol, SpecRoundTripsThroughSidecarJson) {
  const std::string spec_text =
      "{\"dataset\":\"tiny-sim\",\"scale\":0.5,\"seed\":7,\"attack\":"
      "\"bgc\",\"target\":1,\"trigger-size\":2,\"poison-ratio\":0.25,"
      "\"arch\":\"sgc\",\"victim-epochs\":30}";
  obs::JsonParseResult parsed = obs::ParseJson(spec_text);
  ASSERT_TRUE(parsed.ok);
  StatusOr<JobSpec> spec = ParseJobSpec(JobKind::kAttack, parsed.value);
  ASSERT_TRUE(spec.ok()) << spec.status().message();

  std::string emitted;
  AppendJobSpecJson(emitted, spec.value());
  obs::JsonParseResult reparsed = obs::ParseJson(emitted);
  ASSERT_TRUE(reparsed.ok) << reparsed.error;
  StatusOr<JobSpec> again = ParseJobSpec(JobKind::kAttack, reparsed.value);
  ASSERT_TRUE(again.ok()) << again.status().message();
  EXPECT_EQ(CanonicalJobKey(spec.value()), CanonicalJobKey(again.value()));
}

TEST(ServeProtocol, RejectsBadSpecsNamingTheField) {
  const auto parse = [](JobKind kind, const std::string& text) {
    obs::JsonParseResult parsed = obs::ParseJson(text);
    EXPECT_TRUE(parsed.ok);
    return ParseJobSpec(kind, parsed.value);
  };
  StatusOr<JobSpec> bad_scale =
      parse(JobKind::kCondense, "{\"scale\":7.0}");
  ASSERT_FALSE(bad_scale.ok());
  EXPECT_NE(bad_scale.status().message().find("scale"), std::string::npos);

  StatusOr<JobSpec> unknown =
      parse(JobKind::kCondense, "{\"target\":1}");  // attack-only field
  ASSERT_FALSE(unknown.ok());
  EXPECT_NE(unknown.status().message().find("target"), std::string::npos);

  StatusOr<JobSpec> bad_type = parse(JobKind::kCondense, "{\"n\":2.5}");
  ASSERT_FALSE(bad_type.ok());
  EXPECT_NE(bad_type.status().message().find("\"n\""), std::string::npos);

  // target >= the dataset's class count would BGC_CHECK-abort a worker;
  // admission must catch it (tiny-sim has 3 classes).
  StatusOr<JobSpec> bad_target = parse(
      JobKind::kAttack, "{\"dataset\":\"tiny-sim\",\"target\":3}");
  ASSERT_FALSE(bad_target.ok());
  EXPECT_NE(bad_target.status().message().find("target"), std::string::npos);
}

TEST(ServeProtocol, CanonicalKeyExcludesOutPath) {
  obs::JsonParseResult a = obs::ParseJson(CondenseSpec(3, 10, "/tmp/a.bin"));
  obs::JsonParseResult b = obs::ParseJson(CondenseSpec(3, 10, "/tmp/b.bin"));
  ASSERT_TRUE(a.ok && b.ok);
  StatusOr<JobSpec> sa = ParseJobSpec(JobKind::kCondense, a.value);
  StatusOr<JobSpec> sb = ParseJobSpec(JobKind::kCondense, b.value);
  ASSERT_TRUE(sa.ok() && sb.ok());
  EXPECT_EQ(JobKeyHex(sa.value()), JobKeyHex(sb.value()));
  sb.value().run.seed = 4;
  EXPECT_NE(JobKeyHex(sa.value()), JobKeyHex(sb.value()));
}

TEST(ServeServer, MalformedRequestsGet400AndConnectionSurvives) {
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server, "c1");

  const char* bad_lines[] = {
      "{\"op\":\"sub",                        // truncated JSON
      "not json at all",                      // garbage
      "[1,2,3]",                              // not an object
      "{\"op\":\"warp\"}",                    // unknown op
      "{\"op\":\"submit\",\"kind\":\"condense\"}",       // missing spec
      "{\"op\":\"submit\",\"kind\":\"x\",\"spec\":{}}",  // unknown kind
      "{\"op\":\"submit\",\"kind\":\"condense\","        // bad field
      "\"spec\":{\"epochs\":0}}",
  };
  for (const char* line : bad_lines) {
    StatusOr<obs::JsonValue> reply = client.RoundTrip(line);
    ASSERT_TRUE(reply.ok()) << "transport died on: " << line;
    const obs::JsonValue* ok = reply.value().Find("ok");
    ASSERT_TRUE(ok != nullptr && !ok->bool_value) << line;
    const obs::JsonValue* code = reply.value().Find("code");
    ASSERT_TRUE(code != nullptr && code->is_number()) << line;
    EXPECT_EQ(static_cast<int>(code->number), kCodeBadRequest) << line;
    const obs::JsonValue* error = reply.value().Find("error");
    ASSERT_TRUE(error != nullptr && error->is_string()) << line;
    EXPECT_FALSE(error->str.empty());
  }
  // The "epochs" failure names the field.
  StatusOr<obs::JsonValue> reply = client.RoundTrip(
      "{\"op\":\"submit\",\"kind\":\"condense\","
      "\"spec\":{\"epochs\":0}}");
  ASSERT_TRUE(reply.ok());
  EXPECT_NE(reply.value().Find("error")->str.find("epochs"),
            std::string::npos);
  // After all that abuse the connection still answers pings.
  EXPECT_TRUE(client.Ping().ok());
  EXPECT_EQ(server.stats().rejected, 4);  // the four submit attempts
  server.Stop();
}

TEST(ServeClient, StatusCodeRequiresFullThreeDigitPrefix) {
  // CheckOk formats server errors as "<code>: <message>" with a 3-digit
  // code. Anything else is a transport-level error and maps to 0 — the
  // old atoi heuristic let "42: x" and "4x9: y" leak nonsense codes.
  EXPECT_EQ(Client::StatusCode(Status::Ok()), 0);
  EXPECT_EQ(Client::StatusCode(Status::Error("429: queue full")), 429);
  EXPECT_EQ(Client::StatusCode(Status::Error("404: no such job")), 404);
  EXPECT_EQ(Client::StatusCode(Status::Error("connection lost")), 0);
  EXPECT_EQ(Client::StatusCode(Status::Error("42: two digits")), 0);
  EXPECT_EQ(Client::StatusCode(Status::Error("4x9: junk digits")), 0);
  EXPECT_EQ(Client::StatusCode(Status::Error("-42: negative")), 0);
  EXPECT_EQ(Client::StatusCode(Status::Error("4299: four digits")), 0);
  EXPECT_EQ(Client::StatusCode(Status::Error("429:missing space")), 0);
  EXPECT_EQ(Client::StatusCode(Status::Error("429")), 0);
  EXPECT_EQ(Client::StatusCode(Status::Error(" 429: padded")), 0);
}

TEST(ServeServer, UnknownJobAndForeignJobAreRejected) {
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client alice = MustConnect(server, "alice");
  Client bob = MustConnect(server, "bob");

  StatusOr<obs::JsonValue> missing = alice.Poll("j9999");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(Client::StatusCode(missing.status()), kCodeUnknownJob);

  StatusOr<std::string> job = alice.Submit("condense", CondenseSpec(1, 2));
  ASSERT_TRUE(job.ok()) << job.status().message();
  StatusOr<obs::JsonValue> foreign = bob.Poll(job.value());
  ASSERT_FALSE(foreign.ok());
  EXPECT_EQ(Client::StatusCode(foreign.status()), kCodeNotOwner);
  MustFinish(alice, job.value());
  server.Stop();
}

TEST(ServeServer, FullQueueRejectsWith429) {
  ServerOptions options;
  options.jobs = 1;
  options.queue_depth = 1;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server, "c1");

  // One slow job occupies the only slot; one more fills the queue; the
  // rest must bounce with 429 (submissions are sub-millisecond, the
  // running job is not).
  StatusOr<std::string> running =
      client.Submit("condense", CondenseSpec(11, kSlowEpochs));
  ASSERT_TRUE(running.ok()) << running.status().message();
  std::vector<std::string> admitted = {running.value()};
  int rejected = 0;
  for (int i = 0; i < 4; ++i) {
    StatusOr<std::string> next =
        client.Submit("condense", CondenseSpec(12 + i, kSlowEpochs));
    if (next.ok()) {
      admitted.push_back(next.value());
    } else {
      EXPECT_EQ(Client::StatusCode(next.status()), kCodeQueueFull)
          << next.status().message();
      ++rejected;
    }
  }
  EXPECT_GE(rejected, 3);  // queue_depth 1 leaves room for one waiter
  EXPECT_EQ(server.stats().rejected, rejected);
  for (const std::string& job : admitted) MustFinish(client, job);
  server.Stop();
}

TEST(ServeServer, DuplicateSubmissionsCoalesceThroughCache) {
  RemovePathAndContents(TempPath("coalesce_cache"));
  store::ArtifactCache cache(TempPath("coalesce_cache"));
  ServerOptions options;
  options.jobs = 2;
  options.cache = &cache;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server, "c1");

  // Two identical jobs in flight at once on two slots: the cache
  // single-flights them (one computes, the other coalesces or hits).
  StatusOr<std::string> a =
      client.Submit("condense", CondenseSpec(21, kSlowEpochs));
  StatusOr<std::string> b =
      client.Submit("condense", CondenseSpec(21, kSlowEpochs));
  ASSERT_TRUE(a.ok() && b.ok());
  MustFinish(client, a.value());
  MustFinish(client, b.value());
  // And a third submission afterwards is a plain disk/memory hit.
  StatusOr<std::string> c =
      client.Submit("condense", CondenseSpec(21, kSlowEpochs));
  ASSERT_TRUE(c.ok());
  const obs::JsonValue result = MustFinish(client, c.value());
  const obs::JsonValue* computed = result.Find("computed");
  ASSERT_NE(computed, nullptr);
  EXPECT_FALSE(computed->bool_value);

  const store::ArtifactCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_GE(stats.hits + stats.coalesced, 2);

  // The stats op reports the same counters over the wire.
  StatusOr<obs::JsonValue> server_stats = client.Stats();
  ASSERT_TRUE(server_stats.ok());
  const obs::JsonValue* cache_obj = server_stats.value().Find("cache");
  ASSERT_NE(cache_obj, nullptr);
  EXPECT_EQ(static_cast<long long>(cache_obj->Find("misses")->number), 1);
  server.Stop();
}

TEST(ServeServer, IdenticalEvalJobsComputeOnce) {
  ServerOptions options;
  options.jobs = 2;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server, "c1");

  // Two identical eval jobs in flight at once: the per-generation
  // single-flight memo elects one leader (a miss); the duplicate either
  // coalesces behind it or lands after completion — a hit either way.
  StatusOr<std::string> a = client.Submit("eval", EvalSpec(91));
  StatusOr<std::string> b = client.Submit("eval", EvalSpec(91));
  ASSERT_TRUE(a.ok() && b.ok())
      << a.status().message() << " / " << b.status().message();
  const obs::JsonValue ra = MustFinish(client, a.value());
  const obs::JsonValue rb = MustFinish(client, b.value());
  // The duplicate is served the leader's result string verbatim;
  // %.17g round-trips doubles exactly, so == is the right comparison.
  ASSERT_NE(ra.Find("cta"), nullptr);
  ASSERT_NE(rb.Find("cta"), nullptr);
  EXPECT_EQ(ra.Find("cta")->Find("mean")->number,
            rb.Find("cta")->Find("mean")->number);
  EXPECT_EQ(ra.Find("asr")->Find("mean")->number,
            rb.Find("asr")->Find("mean")->number);

  // A third submission after completion is a plain memo hit.
  StatusOr<std::string> c = client.Submit("eval", EvalSpec(91));
  ASSERT_TRUE(c.ok());
  MustFinish(client, c.value());
  EXPECT_EQ(server.stats().eval_misses, 1);
  EXPECT_EQ(server.stats().eval_hits, 2);

  // A different spec is a fresh miss, not a false hit.
  StatusOr<std::string> d = client.Submit("eval", EvalSpec(92));
  ASSERT_TRUE(d.ok());
  MustFinish(client, d.value());
  EXPECT_EQ(server.stats().eval_misses, 2);
  EXPECT_EQ(server.stats().eval_hits, 2);

  // The stats op reports the same counters over the wire.
  StatusOr<obs::JsonValue> server_stats = client.Stats();
  ASSERT_TRUE(server_stats.ok());
  const obs::JsonValue* eval_cache = server_stats.value().Find("eval_cache");
  ASSERT_NE(eval_cache, nullptr);
  EXPECT_EQ(static_cast<long long>(eval_cache->Find("misses")->number), 2);
  EXPECT_EQ(static_cast<long long>(eval_cache->Find("hits")->number), 2);
  server.Stop();
}

TEST(ServeServer, ReduceMethodsServeBitIdenticalToCliFlow) {
  // The src/reduce backends (coarsen / sparsify-er / sparsify-rand) are
  // admitted like any learned method, and the served artifact matches
  // the local RunCondensation flow byte for byte.
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server, "c1");
  const uint64_t seed = 101;
  data::GraphDataset ds = data::MakeDataset("tiny-sim", seed, 1.0);
  condense::SourceGraph source =
      condense::FromTrainView(data::MakeTrainView(ds));
  for (const char* method : {"coarsen", "sparsify-er", "sparsify-rand"}) {
    const std::string out =
        TempPath(std::string("reduce_") + method + ".bgcbin");
    RemovePathAndContents(out);
    std::string spec = "{\"dataset\":\"tiny-sim\",\"seed\":" +
                       std::to_string(seed) + ",\"method\":\"" + method +
                       "\",\"n\":6,\"epochs\":2,\"sparsify-keep\":0.4,"
                       "\"out\":";
    AppendJsonString(spec, out);
    spec += '}';
    StatusOr<std::string> job = client.Submit("condense", spec);
    ASSERT_TRUE(job.ok()) << method << ": " << job.status().message();
    MustFinish(client, job.value());

    auto condenser = condense::MakeCondenser(method);
    condense::CondenseConfig cfg;
    cfg.num_condensed = 6;
    cfg.epochs = 2;
    cfg.sparsify_keep = static_cast<float>(0.4);
    Rng rng(seed);
    condense::CondensedGraph local = condense::RunCondensation(
        *condenser, source, ds.num_classes, cfg, rng);
    const std::string local_out =
        TempPath(std::string("reduce_local_") + method + ".bgcbin");
    ASSERT_TRUE(store::SaveCondensedBinary(local, local_out).ok());
    StatusOr<std::string> served = ReadFileToString(out);
    StatusOr<std::string> direct = ReadFileToString(local_out);
    ASSERT_TRUE(served.ok() && direct.ok());
    EXPECT_EQ(served.value(), direct.value())
        << method << " server artifact diverged";
  }
  server.Stop();
}

TEST(ServeServer, CondenseJobIsBitIdenticalToCliFlow) {
  const std::string out = TempPath("bit_server.bgcbin");
  const uint64_t seed = 31;
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server, "c1");
  StatusOr<std::string> job =
      client.Submit("condense", CondenseSpec(seed, kEpochs, out));
  ASSERT_TRUE(job.ok()) << job.status().message();
  MustFinish(client, job.value());
  server.Stop();

  // What `bgc_cli generate --seed=31` + `bgc_cli condense --seed=31`
  // computes: dataset from the seed, condenser on a fresh Rng(seed).
  data::GraphDataset ds = data::MakeDataset("tiny-sim", seed, 1.0);
  condense::SourceGraph source =
      condense::FromTrainView(data::MakeTrainView(ds));
  auto condenser = condense::MakeCondenser("gcond");
  condense::CondenseConfig cfg;
  cfg.num_condensed = 4;
  cfg.epochs = kEpochs;
  Rng rng(seed);
  condense::CondensedGraph local =
      condense::RunCondensation(*condenser, source, ds.num_classes, cfg, rng);
  const std::string local_out = TempPath("bit_local.bgcbin");
  ASSERT_TRUE(store::SaveCondensedBinary(local, local_out).ok());

  StatusOr<std::string> served = ReadFileToString(out);
  StatusOr<std::string> direct = ReadFileToString(local_out);
  ASSERT_TRUE(served.ok() && direct.ok());
  EXPECT_EQ(served.value(), direct.value()) << "server artifact diverged";
}

TEST(ServeServer, AttackJobMatchesCliSharedRngFlow) {
  const uint64_t seed = 41;
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server, "c1");
  const std::string spec =
      "{\"dataset\":\"tiny-sim\",\"seed\":41,\"method\":\"gcond\","
      "\"n\":4,\"epochs\":6,\"attack\":\"bgc\",\"target\":0,"
      "\"trigger-size\":2,\"poison-ratio\":0.1,\"victim-epochs\":40}";
  StatusOr<std::string> job = client.Submit("attack", spec);
  ASSERT_TRUE(job.ok()) << job.status().message();
  const obs::JsonValue result = MustFinish(client, job.value());
  server.Stop();

  // `bgc_cli attack`: ONE Rng shared by attack, victim training, and
  // evaluation, in that order.
  data::GraphDataset ds = data::MakeDataset("tiny-sim", seed, 1.0);
  condense::SourceGraph clean =
      condense::FromTrainView(data::MakeTrainView(ds));
  eval::RunSpec run;
  run.dataset = "tiny-sim";
  run.seed = seed;
  run.method = "gcond";
  run.attack = "bgc";
  run.condense.num_condensed = 4;
  run.condense.epochs = 6;
  run.attack_cfg.target_class = 0;
  run.attack_cfg.trigger_size = 2;
  run.attack_cfg.poison_ratio = 0.1;
  run.victim.epochs = 40;
  Rng rng(seed);
  attack::AttackResult attacked =
      eval::DispatchAttack(run, clean, ds.num_classes, rng);
  auto victim = eval::TrainVictim(attacked.condensed, run.victim, rng);
  eval::AttackMetrics m = eval::EvaluateVictim(
      *victim, ds, attacked.generator.get(), run.attack_cfg.target_class);

  // %.17g round-trips doubles exactly: == is the right comparison.
  ASSERT_NE(result.Find("cta"), nullptr);
  EXPECT_EQ(result.Find("cta")->number, m.cta);
  EXPECT_EQ(result.Find("asr")->number, m.asr);
  EXPECT_EQ(static_cast<size_t>(result.Find("poisoned")->number),
            attacked.poisoned_nodes.size());
}

TEST(ServeServer, StreamEmitsStartProgressDone) {
  ServerOptions options;
  options.stream_poll_ms = 5;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server, "c1");
  StatusOr<std::string> job =
      client.Submit("condense", CondenseSpec(51, kSlowEpochs));
  ASSERT_TRUE(job.ok());

  std::vector<std::string> events;
  long long last_done = -1;
  Status streamed = client.Stream(job.value(), [&](const obs::JsonValue& e) {
    events.push_back(e.Find("event")->str);
    if (events.back() == "progress") {
      const obs::JsonValue* done = e.Find("epochs_done");
      ASSERT_NE(done, nullptr);
      EXPECT_GE(static_cast<long long>(done->number), last_done);
      last_done = static_cast<long long>(done->number);
      EXPECT_EQ(static_cast<long long>(e.Find("epochs_total")->number),
                kSlowEpochs);
    }
  });
  ASSERT_TRUE(streamed.ok()) << streamed.message();
  ASSERT_GE(events.size(), 3u);  // start, >=1 progress, done
  EXPECT_EQ(events.front(), "start");
  EXPECT_EQ(events.back(), "done");
  EXPECT_NE(std::find(events.begin(), events.end(), "progress"),
            events.end());
  EXPECT_GT(last_done, 0);  // phase tags actually reached the registry
  server.Stop();
}

TEST(ServeServer, DrainPersistsQueuedJobsAndNextServerRecoversThem) {
  const std::string state_dir = TempPath("drain_state");
  const std::string out = TempPath("drain_out.bgcbin");
  RemovePathAndContents(state_dir);
  RemovePathAndContents(out);
  ServerOptions options;
  options.jobs = 1;
  options.state_dir = state_dir;
  {
    Server server(options);
    ASSERT_TRUE(server.Start().ok());
    Client client = MustConnect(server, "alice");
    StatusOr<std::string> running =
        client.Submit("condense", CondenseSpec(61, kSlowEpochs));
    StatusOr<std::string> queued =
        client.Submit("condense", CondenseSpec(62, kEpochs, out));
    ASSERT_TRUE(running.ok() && queued.ok());

    server.RequestDrain();
    StatusOr<std::string> late =
        client.Submit("condense", CondenseSpec(63, kEpochs));
    ASSERT_FALSE(late.ok());
    EXPECT_EQ(Client::StatusCode(late.status()), kCodeDraining);

    server.WaitDrained();
    // The running job finished; the queued one is still QUEUED and its
    // sidecar survives for the next generation.
    StatusOr<obs::JsonValue> ran = client.Wait(running.value());
    ASSERT_TRUE(ran.ok());
    EXPECT_EQ(ran.value().Find("state")->str, "DONE");
    StatusOr<obs::JsonValue> held = client.Poll(queued.value());
    ASSERT_TRUE(held.ok());
    EXPECT_EQ(held.value().Find("state")->str, "QUEUED");
    server.Stop();
  }
  EXPECT_FALSE(FileExists(out));  // never ran

  Server next(options);
  ASSERT_TRUE(next.Start().ok());
  EXPECT_EQ(next.stats().recovered, 1);
  Client alice = MustConnect(next, "alice");
  StatusOr<obs::JsonValue> list = alice.List();
  ASSERT_TRUE(list.ok());
  const obs::JsonValue* jobs = list.value().Find("jobs");
  ASSERT_TRUE(jobs != nullptr && jobs->is_array());
  ASSERT_EQ(jobs->array.size(), 1u);  // ownership survived recovery
  const std::string job_id = jobs->array[0].Find("job")->str;
  MustFinish(alice, job_id);
  EXPECT_TRUE(FileExists(out));
  next.Stop();
}

TEST(ServeServer, InterruptedCondensationResumesFromCheckpoint) {
  const std::string state_dir = TempPath("resume_state");
  RemovePathAndContents(state_dir);
  ::mkdir(state_dir.c_str(), 0755);
  const std::string out = TempPath("resume_out.bgcbin");
  RemovePathAndContents(out);
  const uint64_t seed = 71;
  const int epochs = 12;

  // The job the previous server generation would have admitted.
  JobSpec spec;
  spec.kind = JobKind::kCondense;
  spec.run.dataset = "tiny-sim";
  spec.run.seed = seed;
  spec.run.method = "gcond";
  spec.run.repeats = 1;
  spec.run.attack = "none";
  spec.run.eval_clean_baseline = false;
  spec.run.condense.num_condensed = 4;
  spec.run.condense.epochs = epochs;
  spec.out = out;
  const std::string hex = JobKeyHex(spec);

  // Simulate its interrupted run: 5 of 12 epochs, checkpointed, killed.
  data::GraphDataset ds = data::MakeDataset("tiny-sim", seed, 1.0);
  condense::SourceGraph source =
      condense::FromTrainView(data::MakeTrainView(ds));
  {
    auto condenser = condense::MakeCondenser("gcond");
    Rng rng(seed);
    store::ResumableOptions ro;
    ro.checkpoint_path = state_dir + "/" + hex + ".ckpt";
    ro.checkpoint_every = 1;
    ro.stop_after_epochs = 5;
    store::ResumableResult partial = store::RunResumableCondensation(
        *condenser, source, ds.num_classes, spec.run.condense, rng, ro);
    ASSERT_FALSE(partial.completed);
  }
  std::string sidecar = "{\"schema\":\"";
  sidecar += kSidecarSchema;
  sidecar += "\",\"kind\":\"condense\",\"owner\":\"alice\",\"spec\":";
  AppendJobSpecJson(sidecar, spec);
  sidecar += '}';
  ASSERT_TRUE(
      WriteFileAtomic(state_dir + "/" + hex + ".job", sidecar).ok());

  ServerOptions options;
  options.state_dir = state_dir;
  options.checkpoint_every = 1;
  Server server(options);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.stats().recovered, 1);
  Client alice = MustConnect(server, "alice");
  StatusOr<obs::JsonValue> list = alice.List();
  ASSERT_TRUE(list.ok());
  ASSERT_EQ(list.value().Find("jobs")->array.size(), 1u);
  const std::string job_id =
      list.value().Find("jobs")->array[0].Find("job")->str;
  const obs::JsonValue result = MustFinish(alice, job_id);
  EXPECT_TRUE(result.Find("resumed")->bool_value);
  EXPECT_EQ(static_cast<int>(result.Find("epochs")->number), epochs);
  server.Stop();

  // Interrupted-then-resumed must match an uninterrupted run bit for bit.
  auto condenser = condense::MakeCondenser("gcond");
  Rng rng(seed);
  condense::CondensedGraph uninterrupted = condense::RunCondensation(
      *condenser, source, ds.num_classes, spec.run.condense, rng);
  const std::string local_out = TempPath("resume_local.bgcbin");
  ASSERT_TRUE(store::SaveCondensedBinary(uninterrupted, local_out).ok());
  StatusOr<std::string> served = ReadFileToString(out);
  StatusOr<std::string> direct = ReadFileToString(local_out);
  ASSERT_TRUE(served.ok() && direct.ok());
  EXPECT_EQ(served.value(), direct.value());
}

TEST(ServeServer, CountersLandInObsRegistry) {
  obs::SetMetricsEnabled(true);
  Server server(ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  Client client = MustConnect(server, "c1");
  StatusOr<std::string> job = client.Submit("condense", CondenseSpec(81, 2));
  ASSERT_TRUE(job.ok());
  MustFinish(client, job.value());
  server.Stop();

  const std::string metrics = obs::Registry::Global().MetricsJson();
  EXPECT_NE(metrics.find("serve.jobs_accepted"), std::string::npos);
  EXPECT_NE(metrics.find("serve.jobs_completed"), std::string::npos);
  EXPECT_NE(metrics.find("serve.queue_depth"), std::string::npos);
}

}  // namespace
}  // namespace bgc::serve
