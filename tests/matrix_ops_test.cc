#include "src/tensor/matrix_ops.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "src/core/rng.h"

namespace bgc {
namespace {

TEST(MatrixOpsTest, MatMulKnownProduct) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix b(3, 2, {7, 8, 9, 10, 11, 12});
  Matrix c = MatMul(a, b);
  EXPECT_EQ(c.rows(), 2);
  EXPECT_EQ(c.cols(), 2);
  EXPECT_FLOAT_EQ(c.At(0, 0), 58.0f);
  EXPECT_FLOAT_EQ(c.At(0, 1), 64.0f);
  EXPECT_FLOAT_EQ(c.At(1, 0), 139.0f);
  EXPECT_FLOAT_EQ(c.At(1, 1), 154.0f);
}

TEST(MatrixOpsTest, MatMulIdentity) {
  Rng rng(1);
  Matrix a = Matrix::RandomNormal(4, 4, rng);
  EXPECT_TRUE(AllClose(MatMul(a, Matrix::Identity(4)), a));
  EXPECT_TRUE(AllClose(MatMul(Matrix::Identity(4), a), a));
}

TEST(MatrixOpsTest, MatMulTransAMatchesExplicitTranspose) {
  Rng rng(2);
  Matrix a = Matrix::RandomNormal(5, 3, rng);
  Matrix b = Matrix::RandomNormal(5, 4, rng);
  EXPECT_TRUE(AllClose(MatMulTransA(a, b), MatMul(Transpose(a), b)));
}

TEST(MatrixOpsTest, MatMulTransBMatchesExplicitTranspose) {
  Rng rng(3);
  Matrix a = Matrix::RandomNormal(5, 3, rng);
  Matrix b = Matrix::RandomNormal(4, 3, rng);
  EXPECT_TRUE(AllClose(MatMulTransB(a, b), MatMul(a, Transpose(b))));
}

TEST(MatrixOpsTest, AddSubHadamard) {
  Matrix a(1, 3, {1, 2, 3});
  Matrix b(1, 3, {4, 5, 6});
  EXPECT_TRUE(Add(a, b) == Matrix(1, 3, {5, 7, 9}));
  EXPECT_TRUE(Sub(b, a) == Matrix(1, 3, {3, 3, 3}));
  EXPECT_TRUE(Hadamard(a, b) == Matrix(1, 3, {4, 10, 18}));
}

TEST(MatrixOpsTest, AddScaledInPlace) {
  Matrix a(1, 2, {1, 1});
  Matrix b(1, 2, {2, 4});
  AddScaledInPlace(a, b, 0.5f);
  EXPECT_TRUE(a == Matrix(1, 2, {2, 3}));
}

TEST(MatrixOpsTest, ScaleAndAddRowBroadcast) {
  Matrix a(2, 2, {1, 2, 3, 4});
  EXPECT_TRUE(Scale(a, 2.0f) == Matrix(2, 2, {2, 4, 6, 8}));
  Matrix bias(1, 2, {10, 20});
  EXPECT_TRUE(AddRowBroadcast(a, bias) == Matrix(2, 2, {11, 22, 13, 24}));
}

TEST(MatrixOpsTest, Nonlinearities) {
  Matrix a(1, 3, {-1, 0, 2});
  EXPECT_TRUE(Relu(a) == Matrix(1, 3, {0, 0, 2}));
  Matrix s = Sigmoid(Matrix(1, 1, {0.0f}));
  EXPECT_FLOAT_EQ(s.At(0, 0), 0.5f);
  Matrix t = TanhMat(Matrix(1, 1, {0.0f}));
  EXPECT_FLOAT_EQ(t.At(0, 0), 0.0f);
}

TEST(MatrixOpsTest, ClampBounds) {
  Matrix a(1, 4, {-5, 0.2f, 0.9f, 5});
  EXPECT_TRUE(Clamp(a, 0.0f, 1.0f) == Matrix(1, 4, {0, 0.2f, 0.9f, 1}));
}

TEST(MatrixOpsTest, RowSoftmaxSumsToOne) {
  Rng rng(4);
  Matrix a = Matrix::RandomNormal(6, 5, rng, 3.0f);
  Matrix s = RowSoftmax(a);
  for (int i = 0; i < s.rows(); ++i) {
    float sum = 0.0f;
    for (int j = 0; j < s.cols(); ++j) {
      EXPECT_GT(s.At(i, j), 0.0f);
      sum += s.At(i, j);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
  }
}

TEST(MatrixOpsTest, RowSoftmaxHandlesLargeLogits) {
  Matrix a(1, 2, {1000.0f, 1000.0f});
  Matrix s = RowSoftmax(a);
  EXPECT_NEAR(s.At(0, 0), 0.5f, 1e-5f);
}

TEST(MatrixOpsTest, TransposeInvolution) {
  Rng rng(5);
  Matrix a = Matrix::RandomNormal(3, 7, rng);
  EXPECT_TRUE(AllClose(Transpose(Transpose(a)), a));
}

TEST(MatrixOpsTest, Reductions) {
  Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_FLOAT_EQ(Sum(a), 21.0f);
  EXPECT_TRUE(RowSum(a) == Matrix(2, 1, {6, 15}));
  EXPECT_TRUE(ColSum(a) == Matrix(1, 3, {5, 7, 9}));
  EXPECT_FLOAT_EQ(Dot(a, a), 91.0f);
  EXPECT_FLOAT_EQ(FrobeniusNorm(a), std::sqrt(91.0f));
  EXPECT_FLOAT_EQ(MaxAbs(Matrix(1, 3, {-7, 2, 5})), 7.0f);
}

TEST(MatrixOpsTest, RowNormValues) {
  Matrix a(2, 2, {3, 4, 0, 0});
  Matrix n = RowNorm(a);
  EXPECT_FLOAT_EQ(n.At(0, 0), 5.0f);
  EXPECT_FLOAT_EQ(n.At(1, 0), 0.0f);
}

TEST(MatrixOpsTest, ArgmaxRowsPicksFirstMax) {
  Matrix a(2, 3, {1, 5, 5, 9, 2, 3});
  auto idx = ArgmaxRows(a);
  EXPECT_EQ(idx[0], 1);  // ties break to the earlier column
  EXPECT_EQ(idx[1], 0);
}

TEST(MatrixOpsTest, RowCosineValues) {
  Matrix a(2, 2, {1, 0, 0, 2});
  EXPECT_FLOAT_EQ(RowCosine(a, 0, a, 1), 0.0f);
  EXPECT_FLOAT_EQ(RowCosine(a, 0, a, 0), 1.0f);
  Matrix z(1, 2);
  EXPECT_FLOAT_EQ(RowCosine(z, 0, a, 0), 0.0f);  // zero row contract
}

TEST(MatrixOpsTest, GatherAndScatter) {
  Matrix a(3, 2, {1, 2, 3, 4, 5, 6});
  Matrix g = GatherRows(a, {2, 0, 2});
  EXPECT_TRUE(g == Matrix(3, 2, {5, 6, 1, 2, 5, 6}));
  Matrix out(3, 2);
  ScatterAddRows(g, {2, 0, 2}, out);
  EXPECT_TRUE(out == Matrix(3, 2, {1, 2, 0, 0, 10, 12}));
}

TEST(MatrixOpsTest, Concats) {
  Matrix a(1, 2, {1, 2});
  Matrix b(1, 2, {3, 4});
  EXPECT_TRUE(ConcatRows(a, b) == Matrix(2, 2, {1, 2, 3, 4}));
  EXPECT_TRUE(ConcatCols(a, b) == Matrix(1, 4, {1, 2, 3, 4}));
  Matrix empty;
  EXPECT_TRUE(ConcatRows(empty, a) == a);
  EXPECT_TRUE(ConcatCols(a, empty) == a);
}

TEST(MatrixOpsTest, AllCloseTolerances) {
  Matrix a(1, 1, {1.0f});
  Matrix b(1, 1, {1.0f + 1e-7f});
  Matrix c(1, 1, {1.1f});
  EXPECT_TRUE(AllClose(a, b));
  EXPECT_FALSE(AllClose(a, c));
  EXPECT_FALSE(AllClose(a, Matrix(1, 2)));
}

TEST(MatrixOpsTest, AllCloseRejectsNan) {
  // Regression: the old |a-b| > tol comparison was NaN-blind — NaN > tol
  // is false, so matrices full of NaN compared "close" to anything.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Matrix a(1, 2, {1.0f, nan});
  Matrix b(1, 2, {1.0f, 2.0f});
  Matrix both_nan(1, 2, {1.0f, nan});
  EXPECT_FALSE(AllClose(a, b));
  EXPECT_FALSE(AllClose(b, a));
  EXPECT_FALSE(AllClose(a, both_nan));  // NaN != NaN
}

TEST(MatrixOpsTest, AllCloseRejectsInfinityMismatch) {
  const float inf = std::numeric_limits<float>::infinity();
  Matrix a(1, 1, {inf});
  Matrix b(1, 1, {1.0f});
  Matrix c(1, 1, {-inf});
  EXPECT_FALSE(AllClose(a, b));
  EXPECT_FALSE(AllClose(a, c));
  // inf - inf is NaN; matching infinities are deliberately a mismatch.
  EXPECT_FALSE(AllClose(a, a));
}

TEST(MatrixOpsTest, MaxAbsPropagatesNan) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  EXPECT_TRUE(std::isnan(MaxAbs(Matrix(1, 3, {1.0f, nan, 9.0f}))));
  // A large finite value must not mask the NaN through std::max ordering.
  EXPECT_TRUE(std::isnan(MaxAbs(Matrix(1, 3, {1e30f, -1e30f, nan}))));
}

TEST(MatrixOpsTest, RowSoftmaxZeroColumns) {
  // Regression: the row-max scan read row[0] unconditionally, an OOB read
  // (and a BGC_CHECK failure downstream) for rows×0 inputs.
  Matrix s = RowSoftmax(Matrix(3, 0));
  EXPECT_EQ(s.rows(), 3);
  EXPECT_EQ(s.cols(), 0);
}

TEST(MatrixOpsTest, RowSoftmaxZeroRows) {
  Matrix s = RowSoftmax(Matrix(0, 4));
  EXPECT_EQ(s.rows(), 0);
  EXPECT_EQ(s.cols(), 4);
}

TEST(MatrixOpsTest, OneHotEncoding) {
  Matrix y = OneHot({0, 2, 1}, 3);
  EXPECT_TRUE(y == Matrix(3, 3, {1, 0, 0, 0, 0, 1, 0, 1, 0}));
}

}  // namespace
}  // namespace bgc
