// Cross-module integration tests: the full provider → customer pipeline on
// both transductive and inductive data, determinism guarantees, and the
// invariants that make the attack unnoticeable (class allocation, condensed
// size).

#include <gtest/gtest.h>

#include "src/attack/bgc.h"
#include "src/data/synthetic.h"
#include "src/defense/defenses.h"
#include "src/eval/experiment.h"

namespace bgc {
namespace {

condense::CondenseConfig FastCondense(int n) {
  condense::CondenseConfig cfg;
  cfg.num_condensed = n;
  cfg.epochs = 30;
  return cfg;
}

attack::AttackConfig FastAttack() {
  attack::AttackConfig cfg;
  cfg.trigger_size = 3;
  cfg.poison_ratio = 0.2;
  cfg.clusters_per_class = 2;
  cfg.selector_epochs = 25;
  cfg.surrogate_steps = 15;
  cfg.update_batch = 10;
  cfg.ego = {2, 8};
  return cfg;
}

TEST(IntegrationTest, InductivePipelineEndToEnd) {
  // Inductive: condensation sees only the train subgraph; evaluation runs
  // on the full graph with val/test nodes present.
  data::GraphDataset ds = data::MakeDataset("flickr-sim", 5, /*scale=*/0.12);
  data::TrainView view = data::MakeTrainView(ds);
  ASSERT_LT(view.adj.rows(), ds.num_nodes());
  condense::SourceGraph clean = condense::FromTrainView(view);

  Rng rng(3);
  auto condenser = condense::MakeCondenser("gcond-x");
  attack::AttackConfig acfg = FastAttack();
  acfg.poison_budget = 30;
  attack::AttackResult result = attack::RunBgc(
      clean, ds.num_classes, *condenser, FastCondense(10), acfg, rng);
  auto victim = eval::TrainVictim(result.condensed, eval::VictimConfig{},
                                  rng);
  eval::AttackMetrics m = eval::EvaluateVictim(
      *victim, ds, result.generator.get(), acfg.target_class);
  EXPECT_GT(m.asr, 0.5);
  EXPECT_GT(m.cta, 1.0 / ds.num_classes);  // above chance
}

TEST(IntegrationTest, AttackPreservesCondensedGeometry) {
  // The delivered graph must look like an honest one: same node count,
  // same class allocation (that is what makes BGC unnoticeable).
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 131);
  condense::SourceGraph clean =
      condense::FromTrainView(data::MakeTrainView(ds));
  Rng rng(4);

  auto clean_condenser = condense::MakeCondenser("gcond-x");
  Rng crng(4);
  condense::CondensedGraph honest = condense::RunCondensation(
      *clean_condenser, clean, ds.num_classes, FastCondense(9), crng);

  auto condenser = condense::MakeCondenser("gcond-x");
  attack::AttackResult attacked = attack::RunBgc(
      clean, ds.num_classes, *condenser, FastCondense(9), FastAttack(), rng);

  EXPECT_EQ(attacked.condensed.features.rows(), honest.features.rows());
  EXPECT_EQ(attacked.condensed.labels.size(), honest.labels.size());
  auto honest_counts = data::ClassCounts(honest.labels, ds.num_classes);
  auto attacked_counts =
      data::ClassCounts(attacked.condensed.labels, ds.num_classes);
  // Poisoning must not flood the target class's allocation: the label
  // histogram shifts by at most the poisoned share of the labeled set.
  for (int c = 0; c < ds.num_classes; ++c) {
    EXPECT_NEAR(attacked_counts[c], honest_counts[c], 3) << "class " << c;
  }
}

TEST(IntegrationTest, FullAttackDeterministicGivenSeed) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 132);
  condense::SourceGraph clean =
      condense::FromTrainView(data::MakeTrainView(ds));
  auto run = [&]() {
    Rng rng(9);
    auto condenser = condense::MakeCondenser("gcond-x");
    return attack::RunBgc(clean, ds.num_classes, *condenser,
                          FastCondense(9), FastAttack(), rng);
  };
  attack::AttackResult a = run();
  attack::AttackResult b = run();
  EXPECT_TRUE(a.condensed.features == b.condensed.features);
  EXPECT_EQ(a.poisoned_nodes, b.poisoned_nodes);
}

TEST(IntegrationTest, DefendedVictimStillBackdoored) {
  // Table 5's conclusion: pruning the condensed graph does not remove the
  // backdoor (the malicious signal lives in the synthetic features).
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 133);
  condense::SourceGraph clean =
      condense::FromTrainView(data::MakeTrainView(ds));
  Rng rng(10);
  auto condenser = condense::MakeCondenser("gcond");
  attack::AttackResult attacked = attack::RunBgc(
      clean, ds.num_classes, *condenser, FastCondense(9), FastAttack(), rng);
  condense::CondensedGraph pruned = defense::Prune(attacked.condensed, 0.2);
  auto victim = eval::TrainVictim(pruned, eval::VictimConfig{}, rng);
  eval::AttackMetrics m = eval::EvaluateVictim(
      *victim, ds, attacked.generator.get(), 0);
  EXPECT_GT(m.asr, 0.5);
}

TEST(IntegrationTest, CrossArchitectureTransferTiny) {
  // Table 4 in miniature: the same delivered graph backdoors a GCN and an
  // SGC victim.
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 134);
  condense::SourceGraph clean =
      condense::FromTrainView(data::MakeTrainView(ds));
  Rng rng(11);
  auto condenser = condense::MakeCondenser("gcond");  // as in Table 4
  condense::CondenseConfig ccfg = FastCondense(9);
  ccfg.epochs = 50;  // SGC victims need the slightly stronger backdoor
  attack::AttackResult attacked = attack::RunBgc(
      clean, ds.num_classes, *condenser, ccfg, FastAttack(), rng);
  for (const char* arch : {"gcn", "sgc"}) {
    eval::VictimConfig vc;
    vc.arch = arch;
    vc.epochs = 150;
    auto victim = eval::TrainVictim(attacked.condensed, vc, rng);
    eval::AttackMetrics m = eval::EvaluateVictim(
        *victim, ds, attacked.generator.get(), 0);
    EXPECT_GT(m.asr, 0.5) << arch;
  }
}

}  // namespace
}  // namespace bgc
