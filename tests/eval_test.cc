#include "src/eval/experiment.h"

#include <gtest/gtest.h>

#include "src/eval/table.h"

namespace bgc::eval {
namespace {

RunSpec FastSpec() {
  RunSpec spec;
  spec.dataset = "tiny-sim";
  spec.repeats = 1;
  spec.method = "gcond-x";
  spec.attack = "bgc";
  spec.condense.num_condensed = 9;
  spec.condense.epochs = 25;
  spec.attack_cfg.trigger_size = 3;
  spec.attack_cfg.poison_ratio = 0.2;
  spec.attack_cfg.clusters_per_class = 2;
  spec.attack_cfg.selector_epochs = 20;
  spec.attack_cfg.surrogate_steps = 15;
  spec.attack_cfg.update_batch = 8;
  spec.victim.hidden = 16;
  spec.victim.epochs = 80;
  return spec;
}

TEST(ExperimentTest, CleanRunHasNoAsr) {
  RunSpec spec = FastSpec();
  spec.attack = "none";
  RepeatResult r = RunOnce(spec, 7);
  EXPECT_GT(r.backdoor.cta, 0.5);
  EXPECT_DOUBLE_EQ(r.backdoor.asr, 0.0);
  EXPECT_FALSE(r.has_clean);
}

TEST(ExperimentTest, BgcRunFillsAllFourMetrics) {
  RunSpec spec = FastSpec();
  RepeatResult r = RunOnce(spec, 8);
  EXPECT_TRUE(r.has_clean);
  EXPECT_GT(r.backdoor.asr, 0.55);
  EXPECT_GT(r.backdoor.cta, 0.4);
  EXPECT_GT(r.clean.cta, 0.4);
  // The backdoored model is far more susceptible than the clean one.
  EXPECT_GT(r.backdoor.asr, r.clean.asr);
}

TEST(ExperimentTest, AggregatesRepeats) {
  // This exercises the aggregation mechanics; the ASR bar is lower than in
  // BgcRunFillsAllFourMetrics because the 25-epoch config is deliberately
  // minimal and one of the two seeds condenses poorly.
  RunSpec spec = FastSpec();
  spec.repeats = 2;
  CellStats stats = RunExperiment(spec);
  EXPECT_TRUE(stats.has_clean);
  EXPECT_GT(stats.asr.mean, 0.3);
  EXPECT_GE(stats.cta.std, 0.0);
}

TEST(ExperimentTest, DeterministicGivenSeed) {
  RunSpec spec = FastSpec();
  RepeatResult a = RunOnce(spec, 9);
  RepeatResult b = RunOnce(spec, 9);
  EXPECT_DOUBLE_EQ(a.backdoor.cta, b.backdoor.cta);
  EXPECT_DOUBLE_EQ(a.backdoor.asr, b.backdoor.asr);
}

TEST(ExperimentDeathTest, UnknownAttackAborts) {
  RunSpec spec = FastSpec();
  spec.attack = "wizardry";
  EXPECT_DEATH(RunOnce(spec, 1), "unknown attack");
}

TEST(TextTableTest, AlignsColumns) {
  TextTable table({"Method", "ASR"});
  table.AddRow({"bgc", "100.0"});
  table.AddRow({"doorping-long-name", "85.5"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| Method"), std::string::npos);
  EXPECT_NE(out.find("| bgc"), std::string::npos);
  EXPECT_NE(out.find("doorping-long-name"), std::string::npos);
  // Header separator present.
  EXPECT_NE(out.find("|--"), std::string::npos);
}

TEST(TextTableDeathTest, ArityMismatchAborts) {
  TextTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "");
}

}  // namespace
}  // namespace bgc::eval
