#include "src/core/parse.h"

#include <gtest/gtest.h>

namespace bgc {
namespace {

TEST(ParseIntTest, ParsesDecimal) {
  EXPECT_EQ(ParseInt("0").value(), 0);
  EXPECT_EQ(ParseInt("42").value(), 42);
  EXPECT_EQ(ParseInt("-17").value(), -17);
  EXPECT_EQ(ParseInt("+9").value(), 9);
}

TEST(ParseIntTest, RejectsGarbage) {
  EXPECT_FALSE(ParseInt("").ok());
  EXPECT_FALSE(ParseInt("abc").ok());
  EXPECT_FALSE(ParseInt("12abc").ok());  // atoi would return 12
  EXPECT_FALSE(ParseInt("1.5").ok());
  EXPECT_FALSE(ParseInt(" 7").ok());
  EXPECT_FALSE(ParseInt("7 ").ok());
  EXPECT_FALSE(ParseInt("99999999999999999999999999").ok());  // overflow
}

TEST(ParseIntTest, ErrorNamesTheText) {
  Status s = ParseInt("wat").status();
  EXPECT_NE(s.message().find("wat"), std::string::npos);
}

TEST(ParseU64Test, ParsesAndRejects) {
  EXPECT_EQ(ParseU64("0").value(), 0u);
  EXPECT_EQ(ParseU64("18446744073709551615").value(),
            18446744073709551615ull);
  EXPECT_FALSE(ParseU64("").ok());
  EXPECT_FALSE(ParseU64("-1").ok());  // strtoull would wrap silently
  EXPECT_FALSE(ParseU64("18446744073709551616").ok());
  EXPECT_FALSE(ParseU64("12x").ok());
}

TEST(ParseDoubleTest, ParsesAndRejects) {
  EXPECT_DOUBLE_EQ(ParseDouble("0.25").value(), 0.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-3e2").value(), -300.0);
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("0.1.2").ok());
  EXPECT_FALSE(ParseDouble("1.0x").ok());  // atof would return 1.0
  EXPECT_FALSE(ParseDouble("nan").ok());
  EXPECT_FALSE(ParseDouble("inf").ok());
  EXPECT_FALSE(ParseDouble("1e999").ok());  // overflow
}

TEST(ParseIntInRangeTest, EnforcesInclusiveRange) {
  EXPECT_EQ(ParseIntInRange("5", 1, 10).value(), 5);
  EXPECT_EQ(ParseIntInRange("1", 1, 10).value(), 1);
  EXPECT_EQ(ParseIntInRange("10", 1, 10).value(), 10);
  EXPECT_FALSE(ParseIntInRange("0", 1, 10).ok());
  EXPECT_FALSE(ParseIntInRange("11", 1, 10).ok());
  EXPECT_FALSE(ParseIntInRange("junk", 1, 10).ok());
}

TEST(ParseDoubleInRangeTest, EnforcesInclusiveRange) {
  EXPECT_DOUBLE_EQ(ParseDoubleInRange("0.5", 0.0, 1.0).value(), 0.5);
  EXPECT_DOUBLE_EQ(ParseDoubleInRange("0", 0.0, 1.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(ParseDoubleInRange("1", 0.0, 1.0).value(), 1.0);
  EXPECT_FALSE(ParseDoubleInRange("1.01", 0.0, 1.0).ok());
  EXPECT_FALSE(ParseDoubleInRange("-0.01", 0.0, 1.0).ok());
}

}  // namespace
}  // namespace bgc
