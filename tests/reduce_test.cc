// src/reduce backends: coarsening invariants (exact supernode count,
// feature/label/edge-mass conservation), sparsifier edge budgets,
// determinism (rerun bit-identity, epoch-count invariance), registry
// integration, end-to-end RunOnce, and a pinned golden transfer-matrix
// cell (regenerate with BGC_REGEN_GOLDEN=1 after intentional numeric
// changes). The suite carries the `sanitizer` label and tools/ci.sh
// reruns it under several BGC_NUM_THREADS values — the backends are
// serial by construction, so any divergence is a bug.

#include "src/reduce/reduce.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "src/condense/condenser.h"
#include "src/data/synthetic.h"
#include "src/eval/experiment.h"
#include "src/tensor/simd/simd.h"

namespace bgc::reduce {
namespace {

using Mode = SparsifyCondenser::Mode;

condense::SourceGraph TinySource(uint64_t seed = 3) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", seed);
  return condense::FromTrainView(data::MakeTrainView(ds));
}

bool SameGraph(const condense::CondensedGraph& a,
               const condense::CondensedGraph& b) {
  return a.adj.row_ptr() == b.adj.row_ptr() &&
         a.adj.col_idx() == b.adj.col_idx() &&
         a.adj.values() == b.adj.values() && a.features == b.features &&
         a.labels == b.labels && a.num_classes == b.num_classes &&
         a.use_structure == b.use_structure;
}

double TotalWeight(const graph::CsrMatrix& adj) {
  double sum = 0.0;
  for (float v : adj.values()) sum += v;
  return sum;
}

TEST(CoarsenTest, ProducesExactSupernodeCountWithValidAssignments) {
  condense::SourceGraph source = TinySource();
  const int n = source.features.rows();
  for (int target : {4, 17, 50}) {
    CoarsenCondenser condenser;
    condense::CondenseConfig cfg;
    cfg.num_condensed = target;
    Rng rng(1);
    condenser.Initialize(source, /*num_classes=*/3, cfg, rng);
    condense::CondensedGraph g = condenser.Result();
    EXPECT_EQ(g.features.rows(), target);
    EXPECT_EQ(static_cast<int>(g.labels.size()), target);
    EXPECT_EQ(g.adj.rows(), target);
    EXPECT_TRUE(g.use_structure);
    const std::vector<int>& assign = condenser.assignments();
    ASSERT_EQ(static_cast<int>(assign.size()), n);
    std::vector<int> hit(target, 0);
    for (int row : assign) {
      ASSERT_GE(row, 0);
      ASSERT_LT(row, target);
      ++hit[row];
    }
    for (int row = 0; row < target; ++row) {
      EXPECT_GT(hit[row], 0) << "empty supernode " << row;
    }
  }
}

TEST(CoarsenTest, ConservesFeatureLabelAndEdgeMass) {
  condense::SourceGraph source = TinySource();
  const int n = source.features.rows();
  const int d = source.features.cols();
  CoarsenCondenser condenser;
  condense::CondenseConfig cfg;
  cfg.num_condensed = 12;
  Rng rng(1);
  condenser.Initialize(source, /*num_classes=*/3, cfg, rng);
  condense::CondensedGraph g = condenser.Result();
  const std::vector<int>& assign = condenser.assignments();

  // Feature mass: sum over supernodes of (mean row × member count) must
  // equal the source's column sums (up to float summation order).
  std::vector<int> size(g.features.rows(), 0);
  for (int v = 0; v < n; ++v) ++size[assign[v]];
  for (int j = 0; j < d; ++j) {
    double source_mass = 0.0;
    for (int v = 0; v < n; ++v) source_mass += source.features.At(v, j);
    double condensed_mass = 0.0;
    for (int s = 0; s < g.features.rows(); ++s) {
      condensed_mass += static_cast<double>(g.features.At(s, j)) * size[s];
    }
    EXPECT_NEAR(condensed_mass, source_mass,
                1e-3 * (1.0 + std::fabs(source_mass)))
        << "column " << j;
  }

  // Label: each supernode carries the majority observed label of its
  // members, ties resolved toward the smaller class id.
  for (int s = 0; s < static_cast<int>(g.labels.size()); ++s) {
    std::vector<int> votes(g.num_classes, 0);
    for (int v = 0; v < n; ++v) {
      if (assign[v] == s) ++votes[source.labels[v]];
    }
    int majority = 0;
    for (int c = 1; c < g.num_classes; ++c) {
      if (votes[c] > votes[majority]) majority = c;
    }
    EXPECT_EQ(g.labels[s], majority) << "supernode " << s;
  }

  // Edge mass: every original edge lands between (or inside) clusters.
  EXPECT_NEAR(TotalWeight(g.adj), TotalWeight(source.adj),
              1e-3 * (1.0 + TotalWeight(source.adj)));
}

TEST(CoarsenTest, TargetBeyondGraphSizeKeepsEveryNode) {
  condense::SourceGraph source = TinySource();
  const int n = source.features.rows();
  CoarsenCondenser condenser;
  condense::CondenseConfig cfg;
  cfg.num_condensed = n + 100;
  Rng rng(1);
  condenser.Initialize(source, /*num_classes=*/3, cfg, rng);
  condense::CondensedGraph g = condenser.Result();
  EXPECT_EQ(g.features.rows(), n);
  // Singleton supernodes: each row is its member's feature row verbatim.
  const std::vector<int>& assign = condenser.assignments();
  for (int v = 0; v < n; ++v) {
    for (int j = 0; j < source.features.cols(); ++j) {
      EXPECT_EQ(g.features.At(assign[v], j), source.features.At(v, j));
    }
    EXPECT_EQ(g.labels[assign[v]], source.labels[v]);
  }
}

TEST(CoarsenTest, RerunAndEpochCountAreBitIdentical) {
  condense::SourceGraph source = TinySource();
  condense::CondenseConfig cfg;
  cfg.num_condensed = 9;

  CoarsenCondenser first;
  Rng rng_a(5);
  first.Initialize(source, 3, cfg, rng_a);
  condense::CondensedGraph a = first.Result();

  CoarsenCondenser second;
  Rng rng_b(5);
  second.Initialize(source, 3, cfg, rng_b);
  for (int e = 0; e < 4; ++e) second.Epoch(source);
  condense::CondensedGraph b = second.Result();
  EXPECT_TRUE(SameGraph(a, b));
}

TEST(SparsifyTest, RespectsEdgeBudgetAndKeepsAllNodes) {
  condense::SourceGraph source = TinySource();
  const int n = source.features.rows();
  long long undirected = 0, self_loops = 0;
  for (const graph::Edge& e : source.adj.ToEdges()) {
    if (e.src == e.dst) ++self_loops;
    if (e.src < e.dst) ++undirected;
  }
  ASSERT_GT(undirected, 0);

  for (Mode mode : {Mode::kEffectiveResistance, Mode::kUniform}) {
    for (float keep : {0.0f, 0.3f, 1.0f}) {
      SparsifyCondenser condenser(mode);
      condense::CondenseConfig cfg;
      cfg.sparsify_keep = keep;
      cfg.num_condensed = 4;  // ignored by design
      Rng rng(11);
      condenser.Initialize(source, 3, cfg, rng);
      condense::CondensedGraph g = condenser.Result();

      EXPECT_EQ(g.adj.rows(), n);
      EXPECT_TRUE(g.features == source.features);
      EXPECT_EQ(g.labels, source.labels);
      EXPECT_TRUE(g.use_structure);

      long long budget = std::llround(static_cast<double>(keep) *
                                      static_cast<double>(undirected));
      budget = std::min(std::max<long long>(budget, 1), undirected);
      long long kept_undirected = 0, kept_self = 0;
      for (const graph::Edge& e : g.adj.ToEdges()) {
        if (e.src == e.dst) ++kept_self;
        if (e.src < e.dst) ++kept_undirected;
      }
      EXPECT_EQ(kept_undirected, budget)
          << condenser.name() << " keep=" << keep;
      EXPECT_EQ(kept_self, self_loops);  // self-loops ride outside
    }
  }
}

TEST(SparsifyTest, KeepEverythingReproducesTheSourceAdjacency) {
  condense::SourceGraph source = TinySource();
  SparsifyCondenser condenser(Mode::kEffectiveResistance);
  condense::CondenseConfig cfg;
  cfg.sparsify_keep = 1.0f;
  Rng rng(11);
  condenser.Initialize(source, 3, cfg, rng);
  condense::CondensedGraph g = condenser.Result();
  EXPECT_EQ(g.adj.row_ptr(), source.adj.row_ptr());
  EXPECT_EQ(g.adj.col_idx(), source.adj.col_idx());
  EXPECT_EQ(g.adj.values(), source.adj.values());
}

TEST(SparsifyTest, RandomModeIsSeedDeterministicAndEpochInvariant) {
  condense::SourceGraph source = TinySource();
  condense::CondenseConfig cfg;
  cfg.sparsify_keep = 0.4f;

  SparsifyCondenser first(Mode::kUniform);
  Rng rng_a(21);
  first.Initialize(source, 3, cfg, rng_a);
  condense::CondensedGraph a = first.Result();

  // Same seed, extra Epoch() calls: the forked stream replays from its
  // initial state per reduction, so the result is epoch-count invariant.
  SparsifyCondenser second(Mode::kUniform);
  Rng rng_b(21);
  second.Initialize(source, 3, cfg, rng_b);
  for (int e = 0; e < 3; ++e) second.Epoch(source);
  EXPECT_TRUE(SameGraph(a, second.Result()));

  // A different seed picks a different edge set (overwhelmingly likely
  // with 0.4 of the edges drawn from a fresh stream).
  SparsifyCondenser third(Mode::kUniform);
  Rng rng_c(22);
  third.Initialize(source, 3, cfg, rng_c);
  EXPECT_FALSE(SameGraph(a, third.Result()));
}

TEST(SparsifyTest, EffectiveResistanceKeepsBridgeLikeEdges) {
  // K4 clique (nodes 0-3) plus a pendant node 4 hanging off node 0. The
  // pendant edge has the highest ER score w(1/d_u + 1/d_v) — its endpoint
  // has degree 1 — so it must survive even the tightest budget.
  std::vector<graph::Edge> edges;
  for (int u = 0; u < 4; ++u) {
    for (int v = u + 1; v < 4; ++v) edges.push_back({u, v, 1.0f});
  }
  edges.push_back({0, 4, 1.0f});
  condense::SourceGraph source;
  source.adj = graph::CsrMatrix::FromEdges(5, 5, edges, /*symmetrize=*/true);
  source.features = Matrix(5, 2, 1.0f);
  source.labels = {0, 0, 1, 1, 1};

  SparsifyCondenser condenser(Mode::kEffectiveResistance);
  condense::CondenseConfig cfg;
  cfg.sparsify_keep = 0.15f;  // budget of 1 out of 7 undirected edges
  Rng rng(31);
  condenser.Initialize(source, 2, cfg, rng);
  condense::CondensedGraph g = condenser.Result();
  EXPECT_GT(g.adj.At(0, 4), 0.0f) << "pendant (bridge) edge was dropped";
  long long kept = 0;
  for (const graph::Edge& e : g.adj.ToEdges()) {
    if (e.src < e.dst) ++kept;
  }
  EXPECT_EQ(kept, 1);
}

TEST(ReduceRegistryTest, FactoryAndValidationKnowTheBackends) {
  for (const char* name : {"coarsen", "sparsify-er", "sparsify-rand"}) {
    EXPECT_TRUE(condense::IsKnownMethod(name)) << name;
    auto condenser = condense::MakeCondenser(name);
    ASSERT_NE(condenser, nullptr);
    EXPECT_EQ(condenser->name(), name);
  }
}

TEST(ReduceRegistryTest, RunCondensationDrivesEveryBackend) {
  condense::SourceGraph source = TinySource();
  condense::CondenseConfig cfg;
  cfg.num_condensed = 8;
  cfg.epochs = 3;
  cfg.sparsify_keep = 0.5f;
  for (const char* name : {"coarsen", "sparsify-er", "sparsify-rand"}) {
    auto condenser = condense::MakeCondenser(name);
    Rng rng(41);
    condense::CondensedGraph g =
        condense::RunCondensation(*condenser, source, 3, cfg, rng);
    EXPECT_GT(g.features.rows(), 0) << name;
    EXPECT_EQ(g.num_classes, 3) << name;
    EXPECT_TRUE(g.use_structure) << name;
  }
}

TEST(ReducePipelineTest, RunOnceCompletesForEveryBackend) {
  // End-to-end eval cell per backend: condense/reduce -> (attack) ->
  // victim -> metrics, exercising the same path bench_transfer_matrix
  // sweeps. "bgc" for the coarsener (the golden below pins its numbers),
  // "none" for the sparsifiers to keep the suite quick.
  struct Case {
    const char* method;
    const char* attack;
  };
  for (const Case& c : {Case{"coarsen", "bgc"}, Case{"sparsify-er", "none"},
                        Case{"sparsify-rand", "none"}}) {
    eval::RunSpec spec;
    spec.dataset = "tiny-sim";
    spec.seed = 5;
    spec.repeats = 1;
    spec.method = c.method;
    spec.attack = c.attack;
    spec.condense.num_condensed = 8;
    spec.condense.epochs = 2;
    spec.condense.sparsify_keep = 0.5f;
    spec.victim.epochs = 40;
    spec.eval_clean_baseline = false;
    eval::RepeatResult rr = eval::RunOnce(spec, /*seed=*/5);
    EXPECT_GE(rr.backdoor.cta, 0.0) << c.method;
    EXPECT_LE(rr.backdoor.cta, 1.0) << c.method;
    EXPECT_GE(rr.backdoor.asr, 0.0) << c.method;
    EXPECT_LE(rr.backdoor.asr, 1.0) << c.method;
  }
}

// ---- pinned transfer-matrix cell ----------------------------------------

bool Regen() {
  const char* env = std::getenv("BGC_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == 0);
}

// Exact under the default bit-stable kernels; a tolerance band under
// BGC_FAST_MATH=1 (the fast GEMM tier may fuse mul+add; see
// golden_metrics_test.cc for the full rationale).
void ExpectGolden(double actual, double golden, double fast_band) {
  if (simd::FastMathEnabled()) {
    EXPECT_NEAR(actual, golden, fast_band);
  } else {
    EXPECT_EQ(actual, golden);
  }
}

// Produced by BGC_REGEN_GOLDEN=1 ./reduce_test. The (bgc × coarsen) cell
// of the transfer matrix at fast-bench geometry: cora-sim ×0.25, 8
// supernodes, seed 7.
constexpr double kGoldenCoarsenBgcCta = 0.13600000000000001;
constexpr double kGoldenCoarsenBgcAsr = 1;

TEST(ReduceGoldenTest, CoarsenBgcTransferCellIsBitStable) {
  eval::RunSpec spec;
  spec.dataset = "cora-sim";
  spec.dataset_scale = 0.25;
  spec.seed = 7;
  spec.repeats = 1;
  spec.method = "coarsen";
  spec.attack = "bgc";
  spec.condense.num_condensed = 8;
  spec.condense.epochs = 10;
  spec.victim.epochs = 60;
  spec.eval_clean_baseline = false;
  eval::RepeatResult rr = eval::RunOnce(spec, /*seed=*/7);
  if (Regen()) {
    std::fprintf(stderr,
                 "constexpr double kGoldenCoarsenBgcCta = %.17g;\n"
                 "constexpr double kGoldenCoarsenBgcAsr = %.17g;\n",
                 rr.backdoor.cta, rr.backdoor.asr);
    GTEST_SKIP() << "BGC_REGEN_GOLDEN set: printed fresh goldens, "
                    "assertions skipped";
  }
  ExpectGolden(rr.backdoor.cta, kGoldenCoarsenBgcCta, 0.1);
  ExpectGolden(rr.backdoor.asr, kGoldenCoarsenBgcAsr, 0.1);
}

}  // namespace
}  // namespace bgc::reduce
