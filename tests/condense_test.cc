#include "src/condense/condenser.h"

#include <gtest/gtest.h>

#include "src/condense/gradient_matching.h"
#include "src/data/synthetic.h"
#include "src/nn/trainer.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::condense {
namespace {

struct Fixture {
  data::GraphDataset ds;
  SourceGraph source;

  explicit Fixture(uint64_t seed = 51)
      : ds(data::MakeDataset("tiny-sim", seed)),
        source(FromTrainView(data::MakeTrainView(ds))) {}
};

CondenseConfig FastConfig() {
  CondenseConfig cfg;
  cfg.num_condensed = 9;
  cfg.epochs = 40;
  cfg.seed = 7;
  return cfg;
}

TEST(CondenserFactoryTest, AllMethodsConstruct) {
  for (const char* m : {"gcond", "gcond-x", "dc-graph", "gc-sntk", "doscond",
                        "gcdm"}) {
    auto c = MakeCondenser(m);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->name(), m);
  }
}

TEST(CondenserFactoryDeathTest, UnknownMethodAborts) {
  EXPECT_DEATH(MakeCondenser("magic"), "unknown");
}

TEST(CondenserTest, ResultShapes) {
  Fixture f;
  Rng rng(1);
  for (const char* m : {"gcond", "gcond-x", "dc-graph", "gc-sntk", "doscond",
                        "gcdm"}) {
    auto c = MakeCondenser(m);
    CondensedGraph g =
        RunCondensation(*c, f.source, f.ds.num_classes, FastConfig(), rng);
    EXPECT_EQ(g.features.rows(), 9) << m;
    EXPECT_EQ(g.features.cols(), f.ds.feature_dim()) << m;
    EXPECT_EQ(g.labels.size(), 9u) << m;
    EXPECT_EQ(g.adj.rows(), 9) << m;
    EXPECT_EQ(g.num_classes, f.ds.num_classes) << m;
  }
}

TEST(CondenserTest, StructureFlagPerMethod) {
  Fixture f;
  Rng rng(2);
  EXPECT_TRUE(RunCondensation(*MakeCondenser("gcond"), f.source,
                              f.ds.num_classes, FastConfig(), rng)
                  .use_structure);
  for (const char* m : {"gcond-x", "dc-graph", "gc-sntk", "gcdm"}) {
    CondensedGraph g = RunCondensation(*MakeCondenser(m), f.source,
                                       f.ds.num_classes, FastConfig(), rng);
    EXPECT_FALSE(g.use_structure) << m;
    // Identity adjacency for structure-free methods.
    EXPECT_TRUE(AllClose(g.adj.ToDense(), Matrix::Identity(9))) << m;
  }
}

TEST(CondenserTest, EpochsImproveFeatures) {
  Fixture f;
  Rng rng(3);
  auto c = MakeCondenser("gcond-x");
  CondenseConfig cfg = FastConfig();
  c->Initialize(f.source, f.ds.num_classes, cfg, rng);
  Matrix initial = c->Result().features;
  for (int e = 0; e < 10; ++e) c->Epoch(f.source);
  EXPECT_FALSE(c->Result().features == initial);
}

TEST(CondenserTest, LabelsAreClassSorted) {
  Fixture f;
  Rng rng(4);
  CondensedGraph g = RunCondensation(*MakeCondenser("gcond"), f.source,
                                     f.ds.num_classes, FastConfig(), rng);
  for (size_t i = 1; i < g.labels.size(); ++i) {
    EXPECT_LE(g.labels[i - 1], g.labels[i]);
  }
}

TEST(CondenserTest, GcondLearnedAdjacencyProperties) {
  Fixture f;
  Rng rng(5);
  GradientMatchingCondenser c(GradientMatchingCondenser::Variant::kGcond);
  c.Initialize(f.source, f.ds.num_classes, FastConfig(), rng);
  for (int e = 0; e < 10; ++e) c.Epoch(f.source);
  Matrix a = c.LearnedAdjacency();
  EXPECT_EQ(a.rows(), 9);
  for (int i = 0; i < a.rows(); ++i) {
    EXPECT_FLOAT_EQ(a.At(i, i), 0.0f);
    for (int j = 0; j < a.cols(); ++j) {
      EXPECT_GE(a.At(i, j), 0.0f);
      EXPECT_LE(a.At(i, j), 1.0f);
      EXPECT_NEAR(a.At(i, j), a.At(j, i), 1e-5f);  // symmetric head
    }
  }
}

TEST(CondenserTest, DeterministicGivenSeed) {
  Fixture f;
  CondenseConfig cfg = FastConfig();
  cfg.epochs = 10;
  Rng rng_a(6), rng_b(6);
  CondensedGraph a = RunCondensation(*MakeCondenser("gcond-x"), f.source,
                                     f.ds.num_classes, cfg, rng_a);
  CondensedGraph b = RunCondensation(*MakeCondenser("gcond-x"), f.source,
                                     f.ds.num_classes, cfg, rng_b);
  EXPECT_TRUE(a.features == b.features);
}

// End-to-end utility: a GCN trained on the condensed graph must far exceed
// chance on the full test split — the core property graph condensation
// promises (Table 2's C-CTA column).
class CondensedUtilityTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CondensedUtilityTest, GcnTrainedOnCondensedBeatschance) {
  Fixture f(61);
  Rng rng(7);
  CondenseConfig cfg = FastConfig();
  cfg.num_condensed = 12;
  cfg.epochs = 60;
  CondensedGraph g = RunCondensation(*MakeCondenser(GetParam()), f.source,
                                     f.ds.num_classes, cfg, rng);
  nn::GnnConfig mc;
  mc.in_dim = f.ds.feature_dim();
  mc.hidden_dim = 16;
  mc.out_dim = f.ds.num_classes;
  mc.dropout = 0.0f;
  auto model = nn::MakeModel("gcn", mc, rng);
  nn::TrainConfig tc;
  tc.epochs = 120;
  nn::TrainNodeClassifier(*model, g.adj, g.features, g.labels, {}, tc);
  Matrix logits = nn::PredictLogits(*model, f.ds.adj, f.ds.features);
  const double acc = nn::Accuracy(logits, f.ds.labels, f.ds.test_idx);
  EXPECT_GT(acc, 0.55) << GetParam();  // chance = 1/3
}

INSTANTIATE_TEST_SUITE_P(AllMethods, CondensedUtilityTest,
                         ::testing::Values("gcond", "gcond-x", "dc-graph",
                                           "gc-sntk", "doscond", "gcdm"),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& ch : n) {
                             if (ch == '-') ch = '_';
                           }
                           return n;
                         });

}  // namespace
}  // namespace bgc::condense
