#include "src/nn/optimizer.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bgc::nn {
namespace {

TEST(AdamTest, MinimizesQuadratic) {
  // f(w) = 0.5 * ||w - 3||^2, grad = w - 3.
  Param p(Matrix(1, 1, {0.0f}));
  Adam opt(0.1f);
  for (int i = 0; i < 300; ++i) {
    p.grad = Matrix(1, 1, {p.value.At(0, 0) - 3.0f});
    opt.Step({&p});
  }
  EXPECT_NEAR(p.value.At(0, 0), 3.0f, 1e-2f);
}

TEST(AdamTest, FirstStepHasLrMagnitude) {
  // With bias correction, Adam's first step is ~lr * sign(grad).
  Param p(Matrix(1, 1, {0.0f}));
  Adam opt(0.05f);
  p.grad = Matrix(1, 1, {123.0f});
  opt.Step({&p});
  EXPECT_NEAR(p.value.At(0, 0), -0.05f, 1e-4f);
}

TEST(AdamTest, WeightDecayPullsTowardZero) {
  Param p(Matrix(1, 1, {5.0f}));
  Adam opt(0.1f, /*weight_decay=*/1.0f);
  for (int i = 0; i < 500; ++i) {
    p.grad = Matrix(1, 1, {0.0f});  // only decay acts
    opt.Step({&p});
  }
  EXPECT_NEAR(p.value.At(0, 0), 0.0f, 5e-2f);
}

TEST(AdamTest, MultipleParamsIndependentState) {
  Param a(Matrix(1, 1, {0.0f})), b(Matrix(1, 1, {0.0f}));
  Adam opt(0.1f);
  for (int i = 0; i < 300; ++i) {
    a.grad = Matrix(1, 1, {a.value.At(0, 0) - 1.0f});
    b.grad = Matrix(1, 1, {b.value.At(0, 0) + 2.0f});
    opt.Step({&a, &b});
  }
  EXPECT_NEAR(a.value.At(0, 0), 1.0f, 1e-2f);
  EXPECT_NEAR(b.value.At(0, 0), -2.0f, 1e-2f);
}

TEST(AdamTest, ResetClearsMoments) {
  Param p(Matrix(1, 1, {0.0f}));
  Adam opt(0.05f);
  p.grad = Matrix(1, 1, {1.0f});
  opt.Step({&p});
  opt.Reset();
  const float before = p.value.At(0, 0);
  p.grad = Matrix(1, 1, {1.0f});
  opt.Step({&p});
  // After reset the step magnitude is again ~lr (fresh bias correction).
  EXPECT_NEAR(p.value.At(0, 0) - before, -0.05f, 1e-4f);
}

TEST(SgdTest, StepIsLrTimesGrad) {
  Param p(Matrix(1, 2, {1.0f, 2.0f}));
  Sgd opt(0.5f);
  p.grad = Matrix(1, 2, {2.0f, -4.0f});
  opt.Step({&p});
  EXPECT_FLOAT_EQ(p.value.At(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(p.value.At(0, 1), 4.0f);
}

TEST(SgdTest, WeightDecayContribution) {
  Param p(Matrix(1, 1, {2.0f}));
  Sgd opt(0.1f, /*weight_decay=*/0.5f);
  p.grad = Matrix(1, 1, {0.0f});
  opt.Step({&p});
  EXPECT_NEAR(p.value.At(0, 0), 2.0f - 0.1f * 0.5f * 2.0f, 1e-6f);
}

TEST(ParamTest, ZeroGradAllocatesAndClears) {
  Param p(Matrix(2, 2, 1.0f));
  p.ZeroGrad();
  EXPECT_EQ(p.grad.rows(), 2);
  EXPECT_EQ(p.grad.cols(), 2);
  p.grad.At(0, 0) = 5.0f;
  p.ZeroGrad();
  EXPECT_FLOAT_EQ(p.grad.At(0, 0), 0.0f);
}

}  // namespace
}  // namespace bgc::nn
