// Tests for the deterministic thread-pool backend (src/core/thread_pool.h,
// src/core/parallel.h) and its wiring into the dense/sparse kernels: every
// index covered exactly once, fixed chunk boundaries, and bit-identical
// kernel output across thread counts (including against the serial
// reference formulation).

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/parallel.h"
#include "src/core/thread_pool.h"
#include "src/graph/csr.h"
#include "src/tensor/matrix_ops.h"
#include "src/tensor/simd/simd.h"

namespace bgc {
namespace {

/// Restores the default global pool when a test that resizes it exits.
class PoolGuard {
 public:
  PoolGuard() = default;
  ~PoolGuard() { ThreadPool::SetGlobalNumThreads(0); }
};

const int kThreadCounts[] = {1, 2, 7};

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  PoolGuard guard;
  for (int threads : kThreadCounts) {
    ThreadPool::SetGlobalNumThreads(threads);
    const int n = 10'000;
    std::vector<std::atomic<int>> counts(n);
    for (auto& c : counts) c.store(0);
    ParallelFor(0, n, /*grain=*/97, [&](int b, int e) {
      for (int i = b; i < e; ++i) counts[i].fetch_add(1);
    });
    for (int i = 0; i < n; ++i) ASSERT_EQ(counts[i].load(), 1) << i;
  }
}

TEST(ParallelForTest, HandlesOffsetAndEmptyAndTinyRanges) {
  PoolGuard guard;
  ThreadPool::SetGlobalNumThreads(3);
  std::vector<int> counts(50, 0);
  ParallelFor(10, 40, /*grain=*/4, [&](int b, int e) {
    for (int i = b; i < e; ++i) ++counts[i];
  });
  for (int i = 0; i < 50; ++i) EXPECT_EQ(counts[i], i >= 10 && i < 40 ? 1 : 0);

  bool ran = false;
  ParallelFor(5, 5, 1, [&](int, int) { ran = true; });
  EXPECT_FALSE(ran);

  // A range inside one grain runs inline as a single chunk.
  std::vector<std::pair<int, int>> chunks;
  ParallelFor(0, 8, /*grain=*/100,
              [&](int b, int e) { chunks.push_back({b, e}); });
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], (std::pair<int, int>{0, 8}));
}

TEST(ParallelForTest, ChunkBoundariesIndependentOfThreadCount) {
  PoolGuard guard;
  std::vector<std::vector<std::pair<int, int>>> per_count;
  for (int threads : kThreadCounts) {
    ThreadPool::SetGlobalNumThreads(threads);
    std::mutex mu;
    std::vector<std::pair<int, int>> chunks;
    ParallelFor(3, 1003, /*grain=*/64, [&](int b, int e) {
      std::lock_guard<std::mutex> lock(mu);
      chunks.push_back({b, e});
    });
    std::sort(chunks.begin(), chunks.end());
    per_count.push_back(std::move(chunks));
  }
  EXPECT_EQ(per_count[0], per_count[1]);
  EXPECT_EQ(per_count[0], per_count[2]);
}

TEST(ParallelReduceTest, FoldsPartialsInFixedChunkOrder) {
  PoolGuard guard;
  // Sum of chunk indices in order: partial returns the chunk begin, combine
  // appends — the resulting sequence must be ascending for every count.
  for (int threads : kThreadCounts) {
    ThreadPool::SetGlobalNumThreads(threads);
    std::vector<int> order = ParallelReduce(
        0, 1000, /*grain=*/64, std::vector<int>{},
        [](int b, int) { return std::vector<int>{b}; },
        [](std::vector<int> acc, const std::vector<int>& part) {
          acc.insert(acc.end(), part.begin(), part.end());
          return acc;
        });
    ASSERT_EQ(order.size(), 16u);
    for (size_t i = 1; i < order.size(); ++i) {
      EXPECT_LT(order[i - 1], order[i]);
    }
  }
}

TEST(ThreadPoolTest, NestedRunExecutesInline) {
  PoolGuard guard;
  ThreadPool::SetGlobalNumThreads(4);
  std::vector<std::atomic<int>> counts(64);
  for (auto& c : counts) c.store(0);
  ParallelFor(0, 8, 1, [&](int b, int e) {
    for (int outer = b; outer < e; ++outer) {
      ParallelFor(0, 8, 1, [&](int ib, int ie) {
        for (int inner = ib; inner < ie; ++inner) {
          counts[outer * 8 + inner].fetch_add(1);
        }
      });
    }
  });
  for (auto& c : counts) EXPECT_EQ(c.load(), 1);
}

// --- Kernel determinism across thread counts ------------------------------

/// Runs fn under each thread count and asserts all results are
/// bit-identical (Matrix::operator== is exact equality).
template <typename Fn>
Matrix AssertSameAcrossThreadCounts(Fn fn) {
  PoolGuard guard;
  ThreadPool::SetGlobalNumThreads(kThreadCounts[0]);
  Matrix reference = fn();
  for (size_t i = 1; i < std::size(kThreadCounts); ++i) {
    ThreadPool::SetGlobalNumThreads(kThreadCounts[i]);
    EXPECT_TRUE(fn() == reference) << "thread count " << kThreadCounts[i];
  }
  return reference;
}

Matrix SerialMatMulRef(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    for (int p = 0; p < a.cols(); ++p) {
      const float av = a(i, p);
      if (av == 0.0f) continue;
      for (int j = 0; j < b.cols(); ++j) c(i, j) += av * b(p, j);
    }
  }
  return c;
}

TEST(KernelDeterminismTest, MatMulBitIdentical) {
  Rng rng(7);
  // 257 rows with k*m ≈ 11k flops/row → dozens of fixed chunks.
  Matrix a = Matrix::RandomNormal(257, 123, rng);
  Matrix b = Matrix::RandomNormal(123, 89, rng);
  Matrix got = AssertSameAcrossThreadCounts([&] { return MatMul(a, b); });
  // Row partitioning and k-panel blocking preserve per-element accumulation
  // order, so the parallel kernel matches the serial formulation exactly —
  // except under the opt-in BGC_FAST_MATH tier, whose fused multiply-adds
  // round once per step and are non-bit-exact by contract (DESIGN.md §14);
  // thread-count identity above still holds there.
  if (simd::FastMathEnabled()) {
    // fp32 accumulation over k=123 with cancellation: allow ~k·eps noise.
    EXPECT_TRUE(AllClose(got, SerialMatMulRef(a, b), 1e-4f, 1e-3f));
  } else {
    EXPECT_TRUE(got == SerialMatMulRef(a, b));
  }
}

TEST(KernelDeterminismTest, MatMulTransVariantsBitIdentical) {
  Rng rng(8);
  Matrix a = Matrix::RandomNormal(123, 257, rng);
  Matrix b = Matrix::RandomNormal(123, 89, rng);
  Matrix got_ta =
      AssertSameAcrossThreadCounts([&] { return MatMulTransA(a, b); });
  // Same fast-math carve-out as MatMulBitIdentical: the FMA tile is
  // non-bit-exact vs the two-rounding serial reference by contract.
  if (simd::FastMathEnabled()) {
    EXPECT_TRUE(
        AllClose(got_ta, SerialMatMulRef(Transpose(a), b), 1e-4f, 1e-3f));
  } else {
    EXPECT_TRUE(got_ta == SerialMatMulRef(Transpose(a), b));
  }

  Matrix c = Matrix::RandomNormal(257, 123, rng);
  Matrix d = Matrix::RandomNormal(89, 123, rng);
  Matrix got_tb =
      AssertSameAcrossThreadCounts([&] { return MatMulTransB(c, d); });
  if (simd::FastMathEnabled()) {
    EXPECT_TRUE(
        AllClose(got_tb, SerialMatMulRef(c, Transpose(d)), 1e-4f, 1e-3f));
  } else {
    EXPECT_TRUE(AllClose(got_tb, SerialMatMulRef(c, Transpose(d))));
  }
}

TEST(KernelDeterminismTest, ElementwiseBitIdentical) {
  Rng rng(9);
  // > kElementwiseGrain elements so the ops actually chunk.
  Matrix a = Matrix::RandomNormal(210, 200, rng);
  Matrix b = Matrix::RandomNormal(210, 200, rng);
  AssertSameAcrossThreadCounts([&] { return Add(a, b); });
  AssertSameAcrossThreadCounts([&] { return Hadamard(a, b); });
  AssertSameAcrossThreadCounts([&] { return Relu(a); });
  AssertSameAcrossThreadCounts([&] { return RowSoftmax(a); });
  // Spot-check against the serial formulation.
  Matrix sum = Add(a, b);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sum.data()[i], a.data()[i] + b.data()[i]);
  }
}

TEST(KernelDeterminismTest, ReductionsBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  Rng rng(10);
  // > kReduceGrain (1M) elements so Sum/Dot take the chunked path.
  Matrix a = Matrix::RandomNormal(1100, 1000, rng);
  Matrix b = Matrix::RandomNormal(1100, 1000, rng);
  ThreadPool::SetGlobalNumThreads(1);
  const float sum1 = Sum(a), dot1 = Dot(a, b), max1 = MaxAbs(a);
  for (int threads : {2, 7}) {
    ThreadPool::SetGlobalNumThreads(threads);
    EXPECT_EQ(Sum(a), sum1) << threads;
    EXPECT_EQ(Dot(a, b), dot1) << threads;
    EXPECT_EQ(MaxAbs(a), max1) << threads;
  }
  // The chunked fold agrees with the flat serial loop to rounding.
  double flat = 0.0;
  for (int i = 0; i < a.size(); ++i) flat += a.data()[i];
  EXPECT_NEAR(sum1, static_cast<float>(flat), 1e-2f * std::fabs(sum1) + 1.0f);
}

graph::CsrMatrix RandomSparse(int rows, int cols, int nnz_per_row, Rng& rng) {
  std::vector<graph::Edge> edges;
  for (int r = 0; r < rows; ++r) {
    for (int k = 0; k < nnz_per_row; ++k) {
      const int c = static_cast<int>(rng.UniformInt(cols));
      edges.push_back({r, c, static_cast<float>(rng.Uniform()) + 0.1f});
    }
  }
  return graph::CsrMatrix::FromEdges(rows, cols, edges, /*symmetrize=*/false);
}

TEST(KernelDeterminismTest, SpmmBitIdentical) {
  Rng rng(11);
  graph::CsrMatrix sp = RandomSparse(3000, 500, 6, rng);
  Matrix x = Matrix::RandomNormal(500, 40, rng);
  Matrix got = AssertSameAcrossThreadCounts([&] { return sp.Multiply(x); });
  // Serial reference: the dense product.
  EXPECT_TRUE(AllClose(got, MatMul(sp.ToDense(), x)));
}

TEST(KernelDeterminismTest, SpmmTransposedBitIdentical) {
  Rng rng(12);
  // > kScatterChunkRows (16384) input rows so the chunked scatter engages.
  graph::CsrMatrix sp = RandomSparse(40'000, 300, 4, rng);
  Matrix x = Matrix::RandomNormal(40'000, 16, rng);
  Matrix got =
      AssertSameAcrossThreadCounts([&] { return sp.MultiplyTransposed(x); });
  EXPECT_TRUE(AllClose(got, MatMul(Transpose(sp.ToDense()), x),
                       /*rtol=*/1e-4f, /*atol=*/1e-3f));
}

TEST(KernelDeterminismTest, NormalizeBitIdentical) {
  Rng rng(13);
  graph::CsrMatrix adj = RandomSparse(9000, 9000, 5, rng);
  Matrix norm_dense = AssertSameAcrossThreadCounts(
      [&] { return graph::GcnNormalize(adj).ToDense(); });
  Matrix sym_dense = AssertSameAcrossThreadCounts(
      [&] { return graph::SymNormalize(adj).ToDense(); });
  EXPECT_EQ(norm_dense.rows(), 9000);
  EXPECT_EQ(sym_dense.rows(), 9000);
}

// --- WithSelfLoops (in-place A + I merge) ---------------------------------

TEST(WithSelfLoopsTest, MatchesEdgeListRoundTrip) {
  Rng rng(14);
  graph::CsrMatrix adj = RandomSparse(500, 500, 3, rng);
  graph::CsrMatrix merged = adj.WithSelfLoops(1.0f);
  // Reference: the old ToEdges → push → FromEdges construction.
  std::vector<graph::Edge> edges = adj.ToEdges();
  for (int i = 0; i < adj.rows(); ++i) edges.push_back({i, i, 1.0f});
  graph::CsrMatrix ref = graph::CsrMatrix::FromEdges(
      adj.rows(), adj.cols(), edges, /*symmetrize=*/false);
  ASSERT_EQ(merged.row_ptr(), ref.row_ptr());
  ASSERT_EQ(merged.col_idx(), ref.col_idx());
  ASSERT_EQ(merged.values(), ref.values());
}

TEST(WithSelfLoopsTest, CoalescesExistingDiagonalAndHandlesEmptyRows) {
  graph::CsrMatrix adj = graph::CsrMatrix::FromEdges(
      4, 4, {{0, 0, 2.0f}, {0, 2, 1.0f}, {2, 1, 1.0f}}, /*symmetrize=*/false);
  graph::CsrMatrix merged = adj.WithSelfLoops(1.0f);
  EXPECT_FLOAT_EQ(merged.At(0, 0), 3.0f);  // existing diagonal summed
  EXPECT_FLOAT_EQ(merged.At(0, 2), 1.0f);
  EXPECT_FLOAT_EQ(merged.At(1, 1), 1.0f);  // empty row gets the loop
  EXPECT_FLOAT_EQ(merged.At(2, 1), 1.0f);
  EXPECT_FLOAT_EQ(merged.At(2, 2), 1.0f);  // inserted after (2,1)
  EXPECT_FLOAT_EQ(merged.At(3, 3), 1.0f);
  EXPECT_EQ(merged.nnz(), 6);
}

TEST(CsrBoundsTest, RowWeightSumChecksRange) {
  // Earlier tests may have left pool workers alive; fork-style death tests
  // need the threadsafe mode then.
  testing::FLAGS_gtest_death_test_style = "threadsafe";
  graph::CsrMatrix adj =
      graph::CsrMatrix::FromEdges(3, 3, {{0, 1, 1.0f}}, /*symmetrize=*/false);
  EXPECT_FLOAT_EQ(adj.RowWeightSum(0), 1.0f);
  EXPECT_DEATH(adj.RowWeightSum(-1), "");
  EXPECT_DEATH(adj.RowWeightSum(3), "");
}

TEST(ThreadPoolTest, DefaultNumThreadsReadsEnv) {
  // Exercised via the public knob: SetGlobalNumThreads(0) re-resolves the
  // default, which must be >= 1 whatever the environment says.
  PoolGuard guard;
  ThreadPool::SetGlobalNumThreads(0);
  EXPECT_GE(ThreadPool::Global().num_threads(), 1);
  EXPECT_GE(ThreadPool::DefaultNumThreads(), 1);
}

}  // namespace
}  // namespace bgc
