// Out-of-core pipeline tests (src/data/synthetic.cc streaming writer +
// src/data/mmap_dataset.h):
//
//  - The streaming bgcbin writer must be byte-identical to the in-RAM
//    SaveDatasetBinary(GenerateSynthetic(...)) path — THE contract that
//    lets every existing reader, fuzz sweep, and golden file apply to
//    streamed datasets unchanged.
//  - A scaled sbm-1m preset streams to disk, opens via mmap, and trains.
//  - Memory-budget smoke (tier `slow`, env-gated BGC_SMOKE_1M=1): sampled
//    training over the full 1M-node mmap preset stays under a declared
//    peak-RSS budget that a full-batch run provably could not meet.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#if defined(__linux__)
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <gtest/gtest.h>

#include "src/data/mmap_dataset.h"
#include "src/data/synthetic.h"
#include "src/nn/models.h"
#include "src/nn/trainer.h"
#include "src/obs/obs.h"
#include "src/store/serialize.h"

namespace bgc::data {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

TEST(StreamingWriterTest, PresetIsStreamingOnly) {
  EXPECT_TRUE(IsStreamingDatasetPreset("sbm-1m"));
  EXPECT_FALSE(IsKnownDatasetPreset("sbm-1m"));
  EXPECT_FALSE(IsStreamingDatasetPreset("tiny-sim"));
  EXPECT_FALSE(IsStreamingDatasetPreset("cora-sim"));
}

// The key pinning test: the streaming writer and the in-RAM writer must
// produce the same bytes, so one fuzz/reader test layer covers both.
TEST(StreamingWriterTest, MatchesInRamWriterByteForByte) {
  const SyntheticConfig cfg = PresetConfig("sbm-1m", /*scale=*/0.002);
  ASSERT_EQ(cfg.num_nodes, 2000);
  const uint64_t seed = 77;

  const std::string streamed = ::testing::TempDir() + "/ooc_streamed.bgcbin";
  StatusOr<StreamingWriteResult> wrote =
      WriteSyntheticBgcbin(cfg, seed, streamed);
  ASSERT_TRUE(wrote.ok()) << wrote.status().message();

  const GraphDataset ds = GenerateSynthetic(cfg, seed);
  const std::string in_ram = ::testing::TempDir() + "/ooc_in_ram.bgcbin";
  ASSERT_TRUE(store::SaveDatasetBinary(ds, in_ram).ok());

  EXPECT_EQ(wrote.value().num_nodes, ds.num_nodes());
  EXPECT_EQ(wrote.value().num_edges, ds.adj.nnz());

  const std::string a = ReadAll(streamed);
  const std::string b = ReadAll(in_ram);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a == b, true) << "streamed and in-RAM bgcbin bytes differ";
  std::remove(streamed.c_str());
  std::remove(in_ram.c_str());
}

TEST(StreamingWriterTest, ScaledPresetStreamsOpensAndTrains) {
  const SyntheticConfig cfg = PresetConfig("sbm-1m", /*scale=*/0.02);
  const std::string path = ::testing::TempDir() + "/ooc_scaled.bgcbin";
  StatusOr<StreamingWriteResult> wrote = WriteSyntheticBgcbin(cfg, 5, path);
  ASSERT_TRUE(wrote.ok()) << wrote.status().message();
  ASSERT_EQ(wrote.value().num_nodes, cfg.num_nodes);

  StatusOr<MmapDataset> opened = MmapDataset::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  MmapDataset ds = opened.take();
  ASSERT_TRUE(ds.Warm().ok());
  EXPECT_EQ(ds.num_nodes(), cfg.num_nodes);
  EXPECT_EQ(ds.num_classes(), cfg.num_classes);
  EXPECT_EQ(ds.nnz(), wrote.value().num_edges);

  nn::GnnConfig mc;
  mc.in_dim = ds.dim();
  mc.hidden_dim = 16;
  mc.out_dim = ds.num_classes();
  Rng rng(5);
  std::unique_ptr<nn::GnnModel> model = nn::MakeModel("gcn", mc, rng);
  nn::MinibatchTrainConfig tc;
  tc.epochs = 2;
  tc.seed = 5;
  tc.fanout = {4, 3};
  tc.batch_size = 256;
  const float loss = nn::TrainNodeClassifierMinibatch(
      *model, ds, ds, ds.labels(), ds.train_idx(), tc);
  EXPECT_GT(loss, 0.0f);
  EXPECT_LT(loss, 10.0f);
  std::remove(path.c_str());
}

// Declared peak-RSS budget for sampled training over the full sbm-1m
// preset. A full-batch run cannot fit: the floor computed below (features
// matrix + raw CSR + one normalized propagator + forward/backward hidden
// activations) already exceeds it several times over.
constexpr long long kSampledRssBudgetBytes = 300LL << 20;  // 300 MiB

TEST(OutOfCoreSmokeTest, SampledTrainingOn1MNodesStaysUnderRssBudget) {
#if !defined(__linux__)
  GTEST_SKIP() << "peak-RSS accounting requires /proc";
#else
  const char* env = std::getenv("BGC_SMOKE_1M");
  if (env == nullptr || env[0] == '\0' || (env[0] == '0' && env[1] == 0)) {
    GTEST_SKIP() << "set BGC_SMOKE_1M=1 to run the 1M-node smoke";
  }
  const std::string path = ::testing::TempDir() + "/ooc_sbm_1m.bgcbin";

  // Generate in a forked child so the writer's working set (edge dedup
  // table, sorted edge list) never counts against this process's VmHWM.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    const SyntheticConfig cfg = PresetConfig("sbm-1m");
    StatusOr<StreamingWriteResult> wrote =
        WriteSyntheticBgcbin(cfg, /*seed=*/1, path);
    ::_exit(wrote.ok() ? 0 : 1);
  }
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0)
      << "child generator failed";

  ASSERT_TRUE(obs::ResetPeakRss()) << "could not reset VmHWM";

  StatusOr<MmapDataset> opened = MmapDataset::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  MmapDataset ds = opened.take();
  ASSERT_TRUE(ds.Warm().ok());

  nn::GnnConfig mc;
  mc.in_dim = ds.dim();
  mc.hidden_dim = 32;
  mc.out_dim = ds.num_classes();
  Rng rng(1);
  std::unique_ptr<nn::GnnModel> model = nn::MakeModel("gcn", mc, rng);
  nn::MinibatchTrainConfig tc;
  tc.epochs = 1;
  tc.seed = 1;
  tc.fanout = {5, 3};
  tc.batch_size = 128;
  const float loss = nn::TrainNodeClassifierMinibatch(
      *model, ds, ds, ds.labels(), ds.train_idx(), tc);
  EXPECT_GT(loss, 0.0f);

  const long long peak = obs::ReadPeakRssBytes();
  ASSERT_GT(peak, 0);
  EXPECT_LT(peak, kSampledRssBudgetBytes)
      << "sampled training peaked at " << (peak >> 20) << " MiB";

  // Full-batch floor from the actual on-disk shapes: it must exceed the
  // budget, or the budget proves nothing.
  const long long n = ds.num_nodes();
  const long long nnz = ds.nnz();
  const long long features_bytes = n * ds.dim() * 4;
  const long long csr_bytes = nnz * 8 + (n + 1) * 4;
  const long long propagator_bytes = (nnz + n) * 8 + (n + 1) * 4;
  const long long activation_bytes = n * mc.hidden_dim * 4;
  const long long full_batch_floor = features_bytes + csr_bytes +
                                     propagator_bytes +
                                     2 * activation_bytes;
  EXPECT_GT(full_batch_floor, kSampledRssBudgetBytes)
      << "budget is not discriminating";

  std::remove(path.c_str());
#endif
}

}  // namespace
}  // namespace bgc::data
