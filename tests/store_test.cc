#include "src/store/serialize.h"

#include <unistd.h>

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "src/condense/io.h"
#include "src/core/fs.h"
#include "src/data/io.h"
#include "src/data/synthetic.h"
#include "src/nn/trainer.h"
#include "src/store/bgcbin.h"
#include "src/tensor/matrix_ops.h"

namespace bgc {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(BgcbinTest, ContainerRoundTrip) {
  store::BgcbinWriter writer;
  store::SectionWriter& a = writer.AddSection("alpha");
  a.PutU32(7);
  a.PutString("hello");
  a.PutF64(-2.5);
  writer.AddSection("beta").PutI64(-42);

  StatusOr<store::BgcbinReader> parsed =
      store::BgcbinReader::Parse(writer.Serialize(), "mem");
  ASSERT_TRUE(parsed.ok()) << parsed.status().message();
  const store::BgcbinReader& reader = parsed.value();
  EXPECT_TRUE(reader.HasSection("alpha"));
  EXPECT_TRUE(reader.HasSection("beta"));
  EXPECT_FALSE(reader.HasSection("gamma"));
  EXPECT_EQ(reader.SectionNames(),
            (std::vector<std::string>{"alpha", "beta"}));

  store::SectionReader ra = reader.Section("alpha").take();
  EXPECT_EQ(ra.GetU32(), 7u);
  EXPECT_EQ(ra.GetString(), "hello");
  EXPECT_EQ(ra.GetF64(), -2.5);
  EXPECT_TRUE(ra.ok());
  EXPECT_EQ(ra.remaining(), 0u);

  store::SectionReader rb = reader.Section("beta").take();
  EXPECT_EQ(rb.GetI64(), -42);
}

TEST(BgcbinTest, MissingSectionIsError) {
  store::BgcbinWriter writer;
  writer.AddSection("only");
  StatusOr<store::BgcbinReader> parsed =
      store::BgcbinReader::Parse(writer.Serialize(), "mem");
  ASSERT_TRUE(parsed.ok());
  StatusOr<store::SectionReader> missing = parsed.value().Section("nope");
  EXPECT_FALSE(missing.ok());
  EXPECT_NE(missing.status().message().find("missing section"),
            std::string::npos);
}

TEST(BgcbinTest, ReaderLatchesTruncationError) {
  store::BgcbinWriter writer;
  writer.AddSection("s").PutU32(1);
  StatusOr<store::BgcbinReader> parsed =
      store::BgcbinReader::Parse(writer.Serialize(), "mem");
  ASSERT_TRUE(parsed.ok());
  store::SectionReader r = parsed.value().Section("s").take();
  EXPECT_EQ(r.GetU32(), 1u);
  EXPECT_EQ(r.GetU64(), 0u);  // past the end: zero + latched error
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("truncated"), std::string::npos);
  EXPECT_EQ(r.GetU32(), 0u);  // errors stay latched
}

TEST(BgcbinTest, EveryFlippedByteIsRejected) {
  store::BgcbinWriter writer;
  writer.AddSection("payload").PutString("some payload bytes");
  std::string bytes = writer.Serialize();
  // Flipping any single byte anywhere in the container must be caught by
  // the magic check, a CRC, or a size check.
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x40);
    StatusOr<store::BgcbinReader> parsed =
        store::BgcbinReader::Parse(corrupt, "mem");
    EXPECT_FALSE(parsed.ok()) << "flipped byte at offset " << i;
  }
}

TEST(BgcbinTest, TruncatedFileIsRejected) {
  store::BgcbinWriter writer;
  writer.AddSection("s").PutString("0123456789");
  std::string bytes = writer.Serialize();
  for (size_t keep : {size_t{0}, size_t{5}, bytes.size() - 1}) {
    StatusOr<store::BgcbinReader> parsed =
        store::BgcbinReader::Parse(bytes.substr(0, keep), "mem");
    EXPECT_FALSE(parsed.ok()) << "kept " << keep << " bytes";
  }
}

TEST(BgcbinTest, UnsupportedVersionIsRejected) {
  store::BgcbinWriter writer;
  writer.AddSection("s").PutU8(1);
  std::string bytes = writer.Serialize();
  bytes[6] = 9;  // version lives right after the 6-byte magic
  StatusOr<store::BgcbinReader> parsed =
      store::BgcbinReader::Parse(bytes, "mem");
  ASSERT_FALSE(parsed.ok());
  EXPECT_NE(parsed.status().message().find("version"), std::string::npos);
}

TEST(BgcbinTest, AtomicWriteLeavesNoTempFile) {
  const std::string path = TempPath("atomic.bgcbin");
  store::BgcbinWriter writer;
  writer.AddSection("s").PutU32(1);
  ASSERT_TRUE(writer.WriteTo(path).ok());
  EXPECT_TRUE(FileExists(path));
  EXPECT_FALSE(
      FileExists(path + ".tmp." + std::to_string(::getpid())));
  std::remove(path.c_str());
}

TEST(BgcbinDeathTest, DuplicateSectionAborts) {
  store::BgcbinWriter writer;
  writer.AddSection("twice");
  EXPECT_DEATH(writer.AddSection("twice"), "duplicate");
}

TEST(SerializeTest, MatrixRoundTripBitExact) {
  // Awkward values: negative zero, denormal, huge, tiny.
  Matrix m(2, 3, {-0.0f, 3e-42f, 1.0000001f, -3.4e38f, 0.1f, 123456792.0f});
  store::BgcbinWriter writer;
  store::PutMatrix(writer.AddSection("m"), m);
  StatusOr<store::BgcbinReader> parsed =
      store::BgcbinReader::Parse(writer.Serialize(), "mem");
  ASSERT_TRUE(parsed.ok());
  store::SectionReader r = parsed.value().Section("m").take();
  Matrix loaded = store::GetMatrix(r);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_TRUE(loaded == m);
  EXPECT_EQ(std::signbit(loaded.At(0, 0)), true);  // -0.0 preserved
}

TEST(SerializeTest, CsrRoundTripExact) {
  graph::CsrMatrix adj = graph::CsrMatrix::FromEdges(
      4, 4, {{0, 1, 0.25f}, {1, 0, 0.25f}, {2, 3, -1.5f}, {3, 3, 2.0f}},
      /*symmetrize=*/false);
  store::BgcbinWriter writer;
  store::PutCsr(writer.AddSection("a"), adj);
  StatusOr<store::BgcbinReader> parsed =
      store::BgcbinReader::Parse(writer.Serialize(), "mem");
  ASSERT_TRUE(parsed.ok());
  store::SectionReader r = parsed.value().Section("a").take();
  graph::CsrMatrix loaded = store::GetCsr(r);
  ASSERT_TRUE(r.ok()) << r.status().message();
  EXPECT_EQ(loaded.row_ptr(), adj.row_ptr());
  EXPECT_EQ(loaded.col_idx(), adj.col_idx());
  EXPECT_EQ(loaded.values(), adj.values());
}

TEST(SerializeTest, CsrOutOfRangeEndpointRejected) {
  store::BgcbinWriter writer;
  store::SectionWriter& w = writer.AddSection("a");
  w.PutI32(2);  // rows
  w.PutI32(2);  // cols
  w.PutU64(1);  // nnz
  w.PutI32(0);
  w.PutI32(5);  // out of range
  w.PutF32(1.0f);
  StatusOr<store::BgcbinReader> parsed =
      store::BgcbinReader::Parse(writer.Serialize(), "mem");
  ASSERT_TRUE(parsed.ok());
  store::SectionReader r = parsed.value().Section("a").take();
  store::GetCsr(r);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos);
}

TEST(SerializeTest, RngStateRoundTripBitIdentical) {
  Rng rng(123);
  for (int i = 0; i < 17; ++i) rng.NextU64();
  rng.Normal();  // populate the Box-Muller cache
  std::array<uint64_t, Rng::kStateWords> words = rng.SaveState();

  store::BgcbinWriter writer;
  store::PutU64Vector(writer.AddSection("rng"),
                      std::vector<uint64_t>(words.begin(), words.end()));
  StatusOr<store::BgcbinReader> parsed =
      store::BgcbinReader::Parse(writer.Serialize(), "mem");
  ASSERT_TRUE(parsed.ok());
  store::SectionReader r = parsed.value().Section("rng").take();
  std::vector<uint64_t> loaded = store::GetU64Vector(r);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(loaded.size(), static_cast<size_t>(Rng::kStateWords));

  Rng restored(0);
  std::array<uint64_t, Rng::kStateWords> back;
  std::copy(loaded.begin(), loaded.end(), back.begin());
  restored.RestoreState(back);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(restored.NextU64(), rng.NextU64());
  }
  EXPECT_EQ(restored.Normal(), rng.Normal());
}

TEST(SerializeTest, DatasetBinaryRoundTrip) {
  data::GraphDataset original = data::MakeDataset("tiny-sim", 42);
  const std::string path = TempPath("ds.bgcbin");
  ASSERT_TRUE(store::SaveDatasetBinary(original, path).ok());
  StatusOr<data::GraphDataset> loaded = store::TryLoadDatasetBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  const data::GraphDataset& ds = loaded.value();
  EXPECT_EQ(ds.name, original.name);
  EXPECT_EQ(ds.num_classes, original.num_classes);
  EXPECT_EQ(ds.inductive, original.inductive);
  EXPECT_EQ(ds.labels, original.labels);
  EXPECT_EQ(ds.train_idx, original.train_idx);
  EXPECT_EQ(ds.val_idx, original.val_idx);
  EXPECT_EQ(ds.test_idx, original.test_idx);
  EXPECT_TRUE(ds.features == original.features);
  EXPECT_EQ(ds.adj.row_ptr(), original.adj.row_ptr());
  EXPECT_EQ(ds.adj.col_idx(), original.adj.col_idx());
  EXPECT_EQ(ds.adj.values(), original.adj.values());
  std::remove(path.c_str());
}

TEST(SerializeTest, CondensedBinaryRoundTrip) {
  condense::CondensedGraph g;
  g.features = Matrix(3, 2, {0.5f, -1.25f, 3e-8f, 2.0f, -0.0f, 7.5f});
  g.adj = graph::CsrMatrix::FromEdges(3, 3, {{0, 1, 0.7f}, {1, 2, 1.0f}},
                                      /*symmetrize=*/true);
  g.labels = {0, 1, 1};
  g.num_classes = 2;
  g.use_structure = true;
  const std::string path = TempPath("cg.bgcbin");
  ASSERT_TRUE(store::SaveCondensedBinary(g, path).ok());
  StatusOr<condense::CondensedGraph> loaded =
      store::TryLoadCondensedBinary(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_TRUE(loaded.value().features == g.features);
  EXPECT_EQ(loaded.value().labels, g.labels);
  EXPECT_EQ(loaded.value().num_classes, 2);
  EXPECT_TRUE(loaded.value().use_structure);
  EXPECT_EQ(loaded.value().adj.values(), g.adj.values());
  std::remove(path.c_str());
}

TEST(SerializeTest, WrongArtifactKindRejected) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 1);
  const std::string path = TempPath("kind.bgcbin");
  ASSERT_TRUE(store::SaveDatasetBinary(ds, path).ok());
  StatusOr<condense::CondensedGraph> loaded =
      store::TryLoadCondensedBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("artifact kind"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializeTest, CorruptedDatasetFileRejectedByChecksum) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 9);
  const std::string path = TempPath("corrupt.bgcbin");
  ASSERT_TRUE(store::SaveDatasetBinary(ds, path).ok());
  std::string bytes = ReadAll(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  WriteAll(path, bytes);
  StatusOr<data::GraphDataset> loaded = store::TryLoadDatasetBinary(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("corrupt"), std::string::npos);
  std::remove(path.c_str());
}

// Text -> binary -> text conversions preserve every value: the text format
// writes %.9g floats (lossless for float32) and the binary format stores
// raw IEEE words.
TEST(SerializeTest, TextToBinaryCrossConversion) {
  data::GraphDataset original = data::MakeDataset("tiny-sim", 11);
  const std::string text_path = TempPath("cross.graph");
  const std::string bin_path = TempPath("cross.bgcbin");

  data::SaveDataset(original, text_path);
  StatusOr<data::GraphDataset> from_text = data::TryLoadDataset(text_path);
  ASSERT_TRUE(from_text.ok());
  ASSERT_TRUE(store::SaveDatasetBinary(from_text.value(), bin_path).ok());
  StatusOr<data::GraphDataset> from_bin = store::TryLoadDatasetBinary(bin_path);
  ASSERT_TRUE(from_bin.ok());
  EXPECT_TRUE(from_bin.value().features == original.features);
  EXPECT_EQ(from_bin.value().adj.values(), original.adj.values());
  EXPECT_EQ(from_bin.value().labels, original.labels);
  EXPECT_EQ(from_bin.value().train_idx, original.train_idx);
  std::remove(text_path.c_str());
  std::remove(bin_path.c_str());
}

TEST(SerializeTest, BinaryToTextCrossConversion) {
  condense::CondensedGraph g;
  g.features = Matrix(2, 2, {1.5f, -2.25f, 3.75f, 0.125f});
  g.adj = graph::CsrMatrix::Identity(2);
  g.labels = {0, 1};
  g.num_classes = 2;
  g.use_structure = false;
  const std::string bin_path = TempPath("cg2.bgcbin");
  const std::string text_path = TempPath("cg2.graph");
  ASSERT_TRUE(store::SaveCondensedBinary(g, bin_path).ok());
  StatusOr<condense::CondensedGraph> from_bin =
      store::TryLoadCondensedBinary(bin_path);
  ASSERT_TRUE(from_bin.ok());
  condense::SaveCondensed(from_bin.value(), text_path);
  StatusOr<condense::CondensedGraph> from_text =
      condense::TryLoadCondensed(text_path);
  ASSERT_TRUE(from_text.ok());
  EXPECT_TRUE(from_text.value().features == g.features);
  EXPECT_EQ(from_text.value().labels, g.labels);
  EXPECT_FALSE(from_text.value().use_structure);
  std::remove(bin_path.c_str());
  std::remove(text_path.c_str());
}

nn::GnnConfig TinyModelConfig(const data::GraphDataset& ds) {
  nn::GnnConfig cfg;
  cfg.in_dim = ds.feature_dim();
  cfg.hidden_dim = 8;
  cfg.out_dim = ds.num_classes;
  return cfg;
}

TEST(SerializeTest, ModelSaveLoadIdenticalLogitsAllArchitectures) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 21);
  for (const std::string& arch : nn::SupportedArchitectures()) {
    Rng rng_a(100);
    auto saved = nn::MakeModel(arch, TinyModelConfig(ds), rng_a);
    const std::string path = TempPath(("model_" + arch + ".bgcbin").c_str());
    ASSERT_TRUE(store::SaveGnnModel(*saved, path).ok()) << arch;

    // A differently initialized instance of the same architecture must
    // reproduce the saved model's logits exactly after loading.
    Rng rng_b(999);
    auto loaded = nn::MakeModel(arch, TinyModelConfig(ds), rng_b);
    Matrix before = nn::PredictLogits(*loaded, ds.adj, ds.features);
    Status s = store::LoadGnnModel(*loaded, path);
    ASSERT_TRUE(s.ok()) << arch << ": " << s.message();
    Matrix expected = nn::PredictLogits(*saved, ds.adj, ds.features);
    Matrix actual = nn::PredictLogits(*loaded, ds.adj, ds.features);
    EXPECT_TRUE(actual == expected) << arch;
    EXPECT_FALSE(actual == before) << arch;
    std::remove(path.c_str());
  }
}

TEST(SerializeTest, ModelArchitectureMismatchRejected) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 22);
  Rng rng(3);
  auto gcn = nn::MakeModel("gcn", TinyModelConfig(ds), rng);
  const std::string path = TempPath("gcn.bgcbin");
  ASSERT_TRUE(store::SaveGnnModel(*gcn, path).ok());
  auto sage = nn::MakeModel("sage", TinyModelConfig(ds), rng);
  Matrix before = nn::PredictLogits(*sage, ds.adj, ds.features);
  Status s = store::LoadGnnModel(*sage, path);
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("architecture"), std::string::npos);
  // The failed load must not have touched the model.
  EXPECT_TRUE(nn::PredictLogits(*sage, ds.adj, ds.features) == before);
  std::remove(path.c_str());
}

TEST(SerializeTest, ModelShapeMismatchRejected) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 23);
  Rng rng(4);
  nn::GnnConfig small = TinyModelConfig(ds);
  auto saved = nn::MakeModel("gcn", small, rng);
  const std::string path = TempPath("gcn_small.bgcbin");
  ASSERT_TRUE(store::SaveGnnModel(*saved, path).ok());
  nn::GnnConfig wide = small;
  wide.hidden_dim = 16;
  auto target = nn::MakeModel("gcn", wide, rng);
  Status s = store::LoadGnnModel(*target, path);
  EXPECT_FALSE(s.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bgc
