#include "src/data/dataset.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/graph/graph_utils.h"

namespace bgc::data {
namespace {

TEST(SyntheticTest, DeterministicForSeed) {
  GraphDataset a = MakeDataset("tiny-sim", 7);
  GraphDataset b = MakeDataset("tiny-sim", 7);
  EXPECT_TRUE(a.features == b.features);
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_EQ(a.adj.nnz(), b.adj.nnz());
  EXPECT_EQ(a.train_idx, b.train_idx);
}

TEST(SyntheticTest, DifferentSeedsDiffer) {
  GraphDataset a = MakeDataset("tiny-sim", 7);
  GraphDataset b = MakeDataset("tiny-sim", 8);
  EXPECT_FALSE(a.features == b.features);
}

TEST(SyntheticTest, ShapesAndLabelRange) {
  GraphDataset ds = MakeDataset("tiny-sim", 1);
  EXPECT_EQ(ds.num_nodes(), 200);
  EXPECT_EQ(ds.feature_dim(), 16);
  EXPECT_EQ(ds.num_classes, 3);
  EXPECT_EQ(static_cast<int>(ds.labels.size()), ds.num_nodes());
  for (int y : ds.labels) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, ds.num_classes);
  }
}

TEST(SyntheticTest, AdjacencySymmetricNoSelfLoops) {
  GraphDataset ds = MakeDataset("tiny-sim", 2);
  for (const auto& e : ds.adj.ToEdges()) {
    EXPECT_NE(e.src, e.dst);
    EXPECT_FLOAT_EQ(ds.adj.At(e.dst, e.src), e.weight);
  }
}

TEST(SyntheticTest, SplitsDisjoint) {
  GraphDataset ds = MakeDataset("tiny-sim", 3);
  std::set<int> all;
  for (int i : ds.train_idx) EXPECT_TRUE(all.insert(i).second);
  for (int i : ds.val_idx) EXPECT_TRUE(all.insert(i).second);
  for (int i : ds.test_idx) EXPECT_TRUE(all.insert(i).second);
  for (int i : all) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, ds.num_nodes());
  }
}

TEST(SyntheticTest, TransductiveTrainPerClass) {
  GraphDataset ds = MakeDataset("tiny-sim", 4);
  auto counts = ClassCounts(ds.labels, ds.num_classes, ds.train_idx);
  for (int c : counts) EXPECT_EQ(c, 10);
}

TEST(SyntheticTest, HomophilyKnobIsEffective) {
  SyntheticConfig high = PresetConfig("tiny-sim");
  high.homophily = 0.9;
  SyntheticConfig low = PresetConfig("tiny-sim");
  low.homophily = 0.1;
  GraphDataset hi = GenerateSynthetic(high, 5);
  GraphDataset lo = GenerateSynthetic(low, 5);
  const double h_hi = graph::EdgeHomophily(hi.adj, hi.labels);
  const double h_lo = graph::EdgeHomophily(lo.adj, lo.labels);
  EXPECT_GT(h_hi, h_lo + 0.3);
}

TEST(SyntheticTest, InductivePresetSplitsCoverAllNodes) {
  GraphDataset ds = MakeDataset("flickr-sim", 6, /*scale=*/0.1);
  EXPECT_TRUE(ds.inductive);
  EXPECT_EQ(ds.train_idx.size() + ds.val_idx.size() + ds.test_idx.size(),
            static_cast<size_t>(ds.num_nodes()));
}

TEST(SyntheticTest, AllPresetsGenerate) {
  for (const char* name :
       {"cora-sim", "citeseer-sim", "flickr-sim", "reddit-sim"}) {
    GraphDataset ds = MakeDataset(name, 1, /*scale=*/0.05);
    EXPECT_GT(ds.num_nodes(), 0) << name;
    EXPECT_GT(ds.adj.nnz(), 0) << name;
    EXPECT_FALSE(ds.train_idx.empty()) << name;
    EXPECT_FALSE(ds.test_idx.empty()) << name;
  }
}

TEST(TrainViewTest, TransductiveIsFullGraph) {
  GraphDataset ds = MakeDataset("tiny-sim", 9);
  TrainView view = MakeTrainView(ds);
  EXPECT_EQ(view.adj.rows(), ds.num_nodes());
  EXPECT_EQ(view.labeled, ds.train_idx);
  EXPECT_EQ(view.origin.size(), static_cast<size_t>(ds.num_nodes()));
}

TEST(TrainViewTest, InductiveIsTrainSubgraph) {
  GraphDataset ds = MakeDataset("flickr-sim", 10, /*scale=*/0.1);
  TrainView view = MakeTrainView(ds);
  EXPECT_EQ(view.adj.rows(), static_cast<int>(ds.train_idx.size()));
  EXPECT_EQ(view.features.rows(), view.adj.rows());
  // Every local node is labeled and maps back to a train node.
  EXPECT_EQ(view.labeled.size(), ds.train_idx.size());
  for (size_t i = 0; i < view.origin.size(); ++i) {
    EXPECT_EQ(view.labels[i], ds.labels[view.origin[i]]);
  }
}

TEST(ClassCountsTest, FullAndSubset) {
  std::vector<int> labels = {0, 1, 1, 2, 2, 2};
  EXPECT_EQ(ClassCounts(labels, 3), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(ClassCounts(labels, 3, {0, 3, 4}), (std::vector<int>{1, 0, 2}));
}

}  // namespace
}  // namespace bgc::data
