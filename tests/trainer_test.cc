#include "src/nn/trainer.h"

#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::nn {
namespace {

TEST(TrainerTest, LossDecreases) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 31);
  Rng rng(1);
  GnnConfig cfg;
  cfg.in_dim = ds.feature_dim();
  cfg.hidden_dim = 16;
  cfg.out_dim = ds.num_classes;
  auto model = MakeModel("gcn", cfg, rng);

  TrainConfig short_run;
  short_run.epochs = 2;
  const float early =
      TrainNodeClassifier(*model, ds.adj, ds.features, ds.labels,
                          ds.train_idx, short_run);
  TrainConfig longer;
  longer.epochs = 100;
  const float late =
      TrainNodeClassifier(*model, ds.adj, ds.features, ds.labels,
                          ds.train_idx, longer);
  EXPECT_LT(late, early);
}

TEST(TrainerTest, EmptyTrainIdxMeansAllNodes) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 32);
  Rng rng(2);
  GnnConfig cfg;
  cfg.in_dim = ds.feature_dim();
  cfg.hidden_dim = 8;
  cfg.out_dim = ds.num_classes;
  cfg.dropout = 0.0f;
  auto model = MakeModel("gcn", cfg, rng);
  TrainConfig tc;
  tc.epochs = 60;
  TrainNodeClassifier(*model, ds.adj, ds.features, ds.labels, {}, tc);
  // Training on all nodes should fit the train portion very well.
  Matrix logits = PredictLogits(*model, ds.adj, ds.features);
  EXPECT_GT(Accuracy(logits, ds.labels, {}), 0.8);
}

TEST(TrainerTest, AccuracyFullAndSubset) {
  Matrix logits(3, 2, {0.9f, 0.1f, 0.2f, 0.8f, 0.7f, 0.3f});
  std::vector<int> labels = {0, 1, 1};
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {0, 1}), 1.0);
  EXPECT_DOUBLE_EQ(Accuracy(logits, labels, {2}), 0.0);
}

TEST(TrainerTest, DeterministicGivenSeed) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 33);
  GnnConfig cfg;
  cfg.in_dim = ds.feature_dim();
  cfg.hidden_dim = 8;
  cfg.out_dim = ds.num_classes;
  TrainConfig tc;
  tc.epochs = 30;
  tc.seed = 77;

  Rng rng_a(3);
  auto model_a = MakeModel("gcn", cfg, rng_a);
  TrainNodeClassifier(*model_a, ds.adj, ds.features, ds.labels, ds.train_idx,
                      tc);
  Rng rng_b(3);
  auto model_b = MakeModel("gcn", cfg, rng_b);
  TrainNodeClassifier(*model_b, ds.adj, ds.features, ds.labels, ds.train_idx,
                      tc);
  EXPECT_TRUE(PredictLogits(*model_a, ds.adj, ds.features) ==
              PredictLogits(*model_b, ds.adj, ds.features));
}

}  // namespace
}  // namespace bgc::nn
