#include "src/eval/scheduler.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/thread_pool.h"
#include "src/data/synthetic.h"
#include "src/store/artifact_cache.h"

namespace bgc::eval {
namespace {

/// Deliberately minimal spec (mirrors eval_test's FastSpec) so grid tests
/// stay in tier-1 time budgets.
RunSpec FastSpec() {
  RunSpec spec;
  spec.dataset = "tiny-sim";
  spec.repeats = 2;
  spec.method = "gcond-x";
  spec.attack = "bgc";
  spec.condense.num_condensed = 9;
  spec.condense.epochs = 10;
  spec.attack_cfg.trigger_size = 3;
  spec.attack_cfg.poison_ratio = 0.2;
  spec.attack_cfg.clusters_per_class = 2;
  spec.attack_cfg.selector_epochs = 10;
  spec.attack_cfg.surrogate_steps = 8;
  spec.attack_cfg.update_batch = 8;
  spec.victim.hidden = 16;
  spec.victim.epochs = 30;
  return spec;
}

void ExpectSameStats(const CellStats& a, const CellStats& b) {
  // Bit-exact, not approximate: the scheduler's contract is that jobs
  // cannot influence the numbers at all.
  EXPECT_EQ(a.cta.mean, b.cta.mean);
  EXPECT_EQ(a.cta.std, b.cta.std);
  EXPECT_EQ(a.asr.mean, b.asr.mean);
  EXPECT_EQ(a.asr.std, b.asr.std);
  EXPECT_EQ(a.c_cta.mean, b.c_cta.mean);
  EXPECT_EQ(a.c_cta.std, b.c_cta.std);
  EXPECT_EQ(a.c_asr.mean, b.c_asr.mean);
  EXPECT_EQ(a.c_asr.std, b.c_asr.std);
  EXPECT_EQ(a.has_clean, b.has_clean);
}

TEST(KernelThreadsForTest, PartitionsTheBudget) {
  EXPECT_EQ(KernelThreadsFor(8, 1), 8);
  EXPECT_EQ(KernelThreadsFor(8, 2), 4);
  EXPECT_EQ(KernelThreadsFor(8, 3), 2);
  EXPECT_EQ(KernelThreadsFor(8, 8), 1);
  // Oversubscribed grids floor at one kernel thread each.
  EXPECT_EQ(KernelThreadsFor(4, 16), 1);
  EXPECT_EQ(KernelThreadsFor(1, 2), 1);
}

TEST(RunUnitsTest, RunsEveryUnitExactlyOnce) {
  for (int jobs : {1, 4}) {
    const int n = 11;
    std::vector<std::atomic<int>> counts(n);
    GridOptions opt;
    opt.jobs = jobs;
    std::vector<Status> statuses = RunUnits(opt, n, [&](int u) {
      counts[u].fetch_add(1, std::memory_order_relaxed);
      return Status::Ok();
    });
    ASSERT_EQ(statuses.size(), static_cast<size_t>(n));
    for (int u = 0; u < n; ++u) {
      EXPECT_TRUE(statuses[u].ok()) << "unit " << u << " jobs " << jobs;
      EXPECT_EQ(counts[u].load(), 1) << "unit " << u << " jobs " << jobs;
    }
  }
}

TEST(RunUnitsTest, ThrowingUnitIsIsolated) {
  for (int jobs : {1, 4}) {
    const int n = 6;
    std::vector<std::atomic<int>> counts(n);
    GridOptions opt;
    opt.jobs = jobs;
    std::vector<Status> statuses = RunUnits(opt, n, [&](int u) {
      counts[u].fetch_add(1, std::memory_order_relaxed);
      if (u == 2) throw std::runtime_error("boom");
      return Status::Ok();
    });
    EXPECT_FALSE(statuses[2].ok());
    EXPECT_NE(statuses[2].message().find("boom"), std::string::npos);
    for (int u = 0; u < n; ++u) {
      EXPECT_EQ(counts[u].load(), 1);  // the throw never cancels siblings
      if (u != 2) EXPECT_TRUE(statuses[u].ok());
    }
  }
}

TEST(RunUnitsTest, KernelPoolSizeIsRestored) {
  ThreadPool::SetGlobalNumThreads(4);
  GridOptions opt;
  opt.jobs = 4;
  opt.total_threads = 4;
  RunUnits(opt, 8, [&](int u) {
    (void)u;
    // While the grid runs, the kernel level holds total/jobs = 1 thread.
    EXPECT_EQ(ThreadPool::Global().num_threads(), 1);
    return Status::Ok();
  });
  EXPECT_EQ(ThreadPool::Global().num_threads(), 4);
  ThreadPool::SetGlobalNumThreads(0);  // back to the default
}

TEST(RunGridTest, SlotsKeyedByUnitIndex) {
  GridOptions opt;
  opt.jobs = 3;
  auto slots = RunGrid(opt, 7, [](int u) { return u * u; });
  ASSERT_EQ(slots.size(), 7u);
  for (int u = 0; u < 7; ++u) {
    EXPECT_TRUE(slots[u].status.ok());
    EXPECT_EQ(slots[u].value, u * u);
  }
}

TEST(RunGridTest, ThrowingBodyLeavesErrorSlot) {
  GridOptions opt;
  opt.jobs = 2;
  auto slots = RunGrid(opt, 4, [](int u) -> int {
    if (u == 1) throw std::runtime_error("bad unit");
    return u + 10;
  });
  EXPECT_FALSE(slots[1].status.ok());
  EXPECT_EQ(slots[1].value, 0);  // value-initialized, never written
  for (int u : {0, 2, 3}) {
    EXPECT_TRUE(slots[u].status.ok());
    EXPECT_EQ(slots[u].value, u + 10);
  }
}

TEST(ValidateRunSpecTest, AcceptsKnownNamesRejectsUnknown) {
  EXPECT_TRUE(ValidateRunSpec(FastSpec()).ok());
  {
    RunSpec s = FastSpec();
    s.dataset = "imagenet";
    Status st = ValidateRunSpec(s);
    EXPECT_FALSE(st.ok());
    EXPECT_NE(st.message().find("imagenet"), std::string::npos);
  }
  {
    RunSpec s = FastSpec();
    s.method = "magic";
    EXPECT_FALSE(ValidateRunSpec(s).ok());
  }
  {
    RunSpec s = FastSpec();
    s.attack = "wizardry";
    EXPECT_FALSE(ValidateRunSpec(s).ok());
  }
  {
    RunSpec s = FastSpec();
    s.repeats = 0;
    EXPECT_FALSE(ValidateRunSpec(s).ok());
  }
}

// The acceptance criterion: any --jobs produces bit-identical results to
// the serial per-cell RunExperiment loop.
TEST(GridRunnerTest, ParallelBitIdenticalToSerial) {
  std::vector<RunSpec> cells;
  {
    RunSpec a = FastSpec();
    a.seed = 3;
    cells.push_back(a);
    RunSpec b = FastSpec();
    b.seed = 5;
    b.attack = "bgc-rand";
    cells.push_back(b);
    RunSpec c = FastSpec();
    c.seed = 7;
    c.attack = "none";
    cells.push_back(c);
  }
  std::vector<CellStats> serial;
  for (const RunSpec& cell : cells) serial.push_back(RunExperiment(cell));

  for (int jobs : {1, 8}) {
    GridOptions opt;
    opt.jobs = jobs;
    std::vector<CellResult> results = GridRunner(opt).Run(cells);
    ASSERT_EQ(results.size(), cells.size());
    for (size_t c = 0; c < cells.size(); ++c) {
      ASSERT_TRUE(results[c].status.ok()) << results[c].status.message();
      ExpectSameStats(results[c].stats, serial[c]);
    }
  }
}

TEST(GridRunnerTest, PoisonedCellBecomesErrorRowOthersComplete) {
  std::vector<RunSpec> cells;
  RunSpec good = FastSpec();
  good.seed = 11;
  cells.push_back(good);
  RunSpec bad = FastSpec();
  bad.attack = "wizardry";  // would BGC_CHECK-abort inside RunOnce
  cells.push_back(bad);
  RunSpec good2 = FastSpec();
  good2.seed = 13;
  cells.push_back(good2);

  GridOptions opt;
  opt.jobs = 4;
  std::vector<CellResult> results = GridRunner(opt).Run(cells);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_FALSE(results[1].status.ok());
  EXPECT_NE(results[1].status.message().find("wizardry"), std::string::npos);
  EXPECT_TRUE(results[2].status.ok());
  ExpectSameStats(results[0].stats, RunExperiment(good));
  ExpectSameStats(results[2].stats, RunExperiment(good2));
}

// Single-flight: N grid workers racing on one cache key compute it exactly
// once; every other worker is served by the leader (coalesced) or by the
// entry the leader stored (hit) — never by a second compute.
TEST(SchedulerCacheTest, SingleFlightComputesSharedKeyOnce) {
  const std::string dir = std::string(::testing::TempDir()) + "/sched_cache";
  store::ArtifactCache cache(dir);
  std::atomic<int> computes{0};
  std::atomic<int> arrivals{0};
  const int kWorkers = 8;

  auto compute = [&] {
    computes.fetch_add(1);
    // Hold the flight open until every worker has arrived, so the race on
    // the key is real and not a scheduling accident.
    while (arrivals.load() < kWorkers) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    data::GraphDataset ds = data::MakeDataset("tiny-sim", 31);
    condense::SourceGraph src =
        condense::FromTrainView(data::MakeTrainView(ds));
    auto condenser = condense::MakeCondenser("gcond-x");
    condense::CondenseConfig cfg;
    cfg.num_condensed = 8;
    cfg.epochs = 2;
    Rng rng(5);
    return condense::RunCondensation(*condenser, src, ds.num_classes, cfg,
                                     rng);
  };

  GridOptions opt;
  opt.jobs = kWorkers;
  std::vector<Status> statuses = RunUnits(opt, kWorkers, [&](int u) {
    (void)u;
    arrivals.fetch_add(1);
    condense::CondensedGraph g =
        cache.GetOrComputeCondensed("shared-key", compute);
    return g.labels.empty() ? Status::Error("empty result") : Status::Ok();
  });
  for (const Status& s : statuses) EXPECT_TRUE(s.ok()) << s.message();

  EXPECT_EQ(computes.load(), 1);
  const store::ArtifactCacheStats st = cache.stats();
  EXPECT_EQ(st.misses, 1);
  // The other workers split between coalesced followers and disk hits
  // (a worker that reaches the key after the flight closed); both paths
  // avoid recomputation.
  EXPECT_EQ(st.coalesced + st.hits, kWorkers - 1);
  std::remove(cache.EntryPath("shared-key").c_str());
}

// A failing leader must not poison the key: one follower retries
// leadership and the rest are served by it.
TEST(SchedulerCacheTest, FailedLeaderHandsOffToFollower) {
  const std::string dir = std::string(::testing::TempDir()) + "/sched_fail";
  store::ArtifactCache cache(dir);
  std::atomic<int> computes{0};
  std::atomic<int> arrivals{0};
  std::atomic<int> failures{0};
  const int kWorkers = 4;

  auto compute = [&]() -> condense::CondensedGraph {
    const int call = computes.fetch_add(1);
    while (arrivals.load() < kWorkers) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    if (call == 0) throw std::runtime_error("flaky compute");
    data::GraphDataset ds = data::MakeDataset("tiny-sim", 31);
    condense::SourceGraph src =
        condense::FromTrainView(data::MakeTrainView(ds));
    auto condenser = condense::MakeCondenser("gcond-x");
    condense::CondenseConfig cfg;
    cfg.num_condensed = 8;
    cfg.epochs = 2;
    Rng rng(6);
    return condense::RunCondensation(*condenser, src, ds.num_classes, cfg,
                                     rng);
  };

  GridOptions opt;
  opt.jobs = kWorkers;
  RunUnits(opt, kWorkers, [&](int u) {
    (void)u;
    arrivals.fetch_add(1);
    try {
      cache.GetOrComputeCondensed("flaky-key", compute);
    } catch (const std::runtime_error&) {
      failures.fetch_add(1);  // the first leader's own caller
    }
    return Status::Ok();
  });

  // Exactly one caller saw the exception; everyone else got the artifact
  // from the retried compute (two computes total: failed + successful).
  EXPECT_EQ(failures.load(), 1);
  EXPECT_EQ(computes.load(), 2);
  std::remove(cache.EntryPath("flaky-key").c_str());
}

}  // namespace
}  // namespace bgc::eval
