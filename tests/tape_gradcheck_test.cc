// Numerical gradient verification for every differentiable tape op.
//
// For each op we build a scalar loss through it, compute analytic gradients
// with Backward(), and compare against central finite differences. This is
// the property that keeps the whole condensation/attack stack honest: every
// higher-level gradient (GCond's meta-gradient, the trigger generator's
// update, the SNTK ridge solve) is composed purely of these ops.

#include <cmath>
#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/autograd/tape.h"
#include "src/core/thread_pool.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::ag {
namespace {

using LossFn = std::function<Var(Tape&, const std::vector<Var>&)>;

struct GradCase {
  std::string name;
  std::vector<std::pair<int, int>> input_shapes;
  LossFn build;
  // Some ops (clamped acos, sqrt near zero) need looser tolerances.
  float tolerance = 5e-2f;
  // Entries drawn from this range; keeps piecewise ops away from kinks.
  float lo = -2.0f, hi = 2.0f;
};

double EvalLoss(const GradCase& c, const std::vector<Matrix>& values) {
  Tape t;
  std::vector<Var> vars;
  vars.reserve(values.size());
  for (const Matrix& v : values) vars.push_back(t.Input(v));
  Var loss = c.build(t, vars);
  return t.value(loss).At(0, 0);
}

class TapeGradCheckTest : public ::testing::TestWithParam<GradCase> {};

TEST_P(TapeGradCheckTest, AnalyticMatchesNumeric) {
  const GradCase& c = GetParam();
  Rng rng(1234 + static_cast<uint64_t>(c.name.size()));
  std::vector<Matrix> values;
  for (auto [r, cols] : c.input_shapes) {
    values.push_back(Matrix::RandomUniform(r, cols, rng, c.lo, c.hi));
  }

  // Analytic gradients under both engines: the parallel ready-queue sweep
  // must be bit-identical to the serial walk for every op (DESIGN.md §11),
  // and the serial result is then checked numerically below.
  auto analytic_under = [&](BackwardMode mode, int num_threads) {
    const BackwardMode prev = Tape::SetBackwardModeForTesting(mode);
    ThreadPool::SetGlobalNumThreads(num_threads);
    Tape t;
    std::vector<Var> vars;
    for (const Matrix& v : values) vars.push_back(t.Input(v));
    Var loss = c.build(t, vars);
    t.Backward(loss);
    std::vector<Matrix> grads;
    for (Var v : vars) grads.push_back(t.grad(v));
    Tape::SetBackwardModeForTesting(prev);
    ThreadPool::SetGlobalNumThreads(0);
    return grads;
  };
  std::vector<Matrix> analytic = analytic_under(BackwardMode::kSerial, 1);
  std::vector<Matrix> parallel = analytic_under(BackwardMode::kParallel, 8);
  ASSERT_EQ(parallel.size(), analytic.size());
  for (size_t k = 0; k < analytic.size(); ++k) {
    EXPECT_TRUE(parallel[k] == analytic[k])
        << c.name << ": parallel backward not bit-identical for input " << k;
  }

  // Central finite differences on every entry of every input.
  const float eps = 1e-2f;
  for (size_t k = 0; k < values.size(); ++k) {
    for (int i = 0; i < values[k].size(); ++i) {
      std::vector<Matrix> plus = values, minus = values;
      plus[k].data()[i] += eps;
      minus[k].data()[i] -= eps;
      const double numeric =
          (EvalLoss(c, plus) - EvalLoss(c, minus)) / (2.0 * eps);
      const double a = analytic[k].data()[i];
      const double scale = std::max(1.0, std::max(std::fabs(a),
                                                  std::fabs(numeric)));
      EXPECT_NEAR(a, numeric, c.tolerance * scale)
          << c.name << " input " << k << " entry " << i;
    }
  }
}

std::vector<GradCase> MakeCases() {
  std::vector<GradCase> cases;
  auto add = [&](std::string name,
                 std::vector<std::pair<int, int>> shapes, LossFn fn,
                 float tol = 5e-2f, float lo = -2.0f, float hi = 2.0f) {
    cases.push_back({std::move(name), std::move(shapes), std::move(fn), tol,
                     lo, hi});
  };

  add("add", {{2, 3}, {2, 3}}, [](Tape& t, const std::vector<Var>& v) {
    return t.SumAll(t.Square(t.Add(v[0], v[1])));
  });
  add("sub", {{2, 3}, {2, 3}}, [](Tape& t, const std::vector<Var>& v) {
    return t.SumAll(t.Square(t.Sub(v[0], v[1])));
  });
  add("hadamard", {{2, 3}, {2, 3}}, [](Tape& t, const std::vector<Var>& v) {
    return t.SumAll(t.Hadamard(v[0], v[1]));
  });
  add("elemdiv", {{2, 2}, {2, 2}},
      [](Tape& t, const std::vector<Var>& v) {
        return t.SumAll(t.ElemDiv(v[0], v[1]));
      },
      5e-2f, 1.0f, 3.0f);  // denominator bounded away from 0
  add("scale", {{2, 3}}, [](Tape& t, const std::vector<Var>& v) {
    return t.SumAll(t.Scale(v[0], -1.7f));
  });
  add("addconst", {{2, 2}}, [](Tape& t, const std::vector<Var>& v) {
    return t.SumAll(t.Square(t.AddConst(v[0], 0.3f)));
  });
  add("relu", {{3, 3}}, [](Tape& t, const std::vector<Var>& v) {
    return t.SumAll(t.Square(t.Relu(v[0])));
  });
  add("sigmoid", {{2, 3}}, [](Tape& t, const std::vector<Var>& v) {
    return t.SumAll(t.Sigmoid(v[0]));
  });
  add("tanh", {{2, 3}}, [](Tape& t, const std::vector<Var>& v) {
    return t.SumAll(t.Tanh(v[0]));
  });
  add("exp", {{2, 2}}, [](Tape& t, const std::vector<Var>& v) {
    return t.SumAll(t.Exp(v[0]));
  });
  add("log", {{2, 2}},
      [](Tape& t, const std::vector<Var>& v) {
        return t.SumAll(t.Log(v[0]));
      },
      5e-2f, 0.5f, 3.0f);
  add("sqrt", {{2, 2}},
      [](Tape& t, const std::vector<Var>& v) {
        return t.SumAll(t.Sqrt(v[0]));
      },
      5e-2f, 0.5f, 3.0f);
  add("square", {{2, 3}}, [](Tape& t, const std::vector<Var>& v) {
    return t.SumAll(t.Square(v[0]));
  });
  add("acos", {{2, 2}},
      [](Tape& t, const std::vector<Var>& v) {
        return t.SumAll(t.Acos(v[0]));
      },
      8e-2f, -0.8f, 0.8f);
  add("acos_near_edge", {{2, 2}},
      [](Tape& t, const std::vector<Var>& v) {
        return t.SumAll(t.Acos(v[0]));
      },
      1e-1f, 0.85f, 0.95f);  // steep but still inside the ±(1-eps) clamp
  add("clamp_interior", {{2, 3}}, [](Tape& t, const std::vector<Var>& v) {
    // Bounds outside the sampling range: gradient passes through.
    return t.SumAll(t.Square(t.Clamp(v[0], -5.0f, 5.0f)));
  });
  add("clamp_saturated", {{2, 3}},
      [](Tape& t, const std::vector<Var>& v) {
        // Entries all above hi: output constant, both gradients zero. This
        // is the semantics Sqrt/Log/Acos eps-guards do NOT have (they keep
        // their analytic gradient in the clamped region), which is why
        // Clamp is its own op.
        return t.SumAll(t.Square(t.Clamp(v[0], -0.5f, 0.5f)));
      },
      5e-2f, 1.0f, 2.0f);
  add("clamp_mixed", {{3, 3}},
      [](Tape& t, const std::vector<Var>& v) {
        // lo = 0 with a squared loss: the composition x -> clamp(x,0,10)^2
        // is C^1 at the kink, so central differences stay accurate even
        // for entries near zero.
        return t.SumAll(t.Square(t.Clamp(v[0], 0.0f, 10.0f)));
      });
  add("reshape", {{2, 6}}, [](Tape& t, const std::vector<Var>& v) {
    return t.SumAll(t.Square(t.MatMul(t.Reshape(v[0], 3, 4),
                                      t.Constant(Matrix(4, 2, 0.7f)))));
  });
  add("transpose", {{2, 3}}, [](Tape& t, const std::vector<Var>& v) {
    return t.SumAll(t.Square(t.Transpose(v[0])));
  });
  add("concat_rows", {{2, 3}, {1, 3}},
      [](Tape& t, const std::vector<Var>& v) {
        return t.SumAll(t.Square(t.ConcatRows(v[0], v[1])));
      });
  add("concat_cols", {{2, 2}, {2, 3}},
      [](Tape& t, const std::vector<Var>& v) {
        return t.SumAll(t.Square(t.ConcatCols(v[0], v[1])));
      });
  add("gather_rows", {{4, 2}}, [](Tape& t, const std::vector<Var>& v) {
    return t.SumAll(t.Square(t.GatherRows(v[0], {3, 1, 3})));
  });
  add("row_sum", {{3, 4}}, [](Tape& t, const std::vector<Var>& v) {
    return t.SumAll(t.Square(t.RowSumOp(v[0])));
  });
  add("col_sum", {{3, 4}}, [](Tape& t, const std::vector<Var>& v) {
    return t.SumAll(t.Square(t.ColSumOp(v[0])));
  });
  add("mean_all", {{3, 4}}, [](Tape& t, const std::vector<Var>& v) {
    return t.MeanAll(t.Square(v[0]));
  });
  add("mul_col_vec", {{3, 2}, {3, 1}},
      [](Tape& t, const std::vector<Var>& v) {
        return t.SumAll(t.Square(t.MulColVec(v[0], v[1])));
      });
  add("mul_row_vec", {{3, 2}, {1, 2}},
      [](Tape& t, const std::vector<Var>& v) {
        return t.SumAll(t.Square(t.MulRowVec(v[0], v[1])));
      });
  add("add_row_vec", {{3, 2}, {1, 2}},
      [](Tape& t, const std::vector<Var>& v) {
        return t.SumAll(t.Square(t.AddRowVec(v[0], v[1])));
      });
  add("matmul", {{2, 3}, {3, 2}}, [](Tape& t, const std::vector<Var>& v) {
    return t.SumAll(t.Square(t.MatMul(v[0], v[1])));
  });
  add("softmax", {{2, 4}}, [](Tape& t, const std::vector<Var>& v) {
    return t.SumAll(t.Square(t.Softmax(v[0])));
  });
  add("softmax_xent", {{3, 4}}, [](Tape& t, const std::vector<Var>& v) {
    return t.SoftmaxCrossEntropy(v[0], OneHot({0, 2, 3}, 4));
  });
  add("softmax_xent_weighted", {{3, 4}},
      [](Tape& t, const std::vector<Var>& v) {
        Matrix w(1, 3, {0.5f, 2.0f, 1.0f});
        return t.SoftmaxCrossEntropy(v[0], OneHot({1, 1, 0}, 4), w);
      });
  add("spmm", {{3, 2}}, [](Tape& t, const std::vector<Var>& v) {
    static const graph::CsrMatrix* adj = new graph::CsrMatrix(
        graph::CsrMatrix::FromEdges(3, 3, {{0, 1}, {1, 2}, {0, 0}},
                                    /*symmetrize=*/true));
    return t.SumAll(t.Square(t.SpMM(adj, v[0])));
  });
  add("solve", {{3, 3}, {3, 2}},
      [](Tape& t, const std::vector<Var>& v) {
        // Diagonal dominance keeps the perturbed systems nonsingular.
        Var a = t.Add(v[0], t.Constant(Scale(Matrix::Identity(3), 8.0f)));
        return t.SumAll(t.Square(t.Solve(a, v[1])));
      },
      6e-2f);
  add("composite_gcn_layer", {{4, 3}, {3, 2}},
      [](Tape& t, const std::vector<Var>& v) {
        static const graph::CsrMatrix* adj = new graph::CsrMatrix(
            GcnNormalize(graph::CsrMatrix::FromEdges(
                4, 4, {{0, 1}, {1, 2}, {2, 3}}, /*symmetrize=*/true)));
        Var h = t.Relu(t.SpMM(adj, t.MatMul(v[0], v[1])));
        return t.SoftmaxCrossEntropy(h, OneHot({0, 1, 0, 1}, 2));
      });
  add("composite_normalized_adjacency", {{3, 3}},
      [](Tape& t, const std::vector<Var>& v) {
        // sigmoid adjacency -> +I -> D^-1/2 (A+I) D^-1/2 -> quadratic loss:
        // exactly GCond's differentiable normalization chain.
        Var a = t.Sigmoid(v[0]);
        Var sym = t.Scale(t.Add(a, t.Transpose(a)), 0.5f);
        Var hat = t.Add(sym, t.Constant(Matrix::Identity(3)));
        Var d = t.RowSumOp(hat);
        Var s = t.ElemDiv(t.Constant(Matrix(3, 1, 1.0f)), t.Sqrt(d));
        Var norm = t.MulColVec(hat, s);
        norm = t.MulRowVec(norm, t.Transpose(s));
        return t.SumAll(t.Square(norm));
      });
  // Depth-1 ReLU NTK between two distinct point sets — the gc-sntk kernel
  // chain (matmul, row norms, cosine, clamped acos, kappa blend). Using a
  // cross kernel keeps cosine similarity off the s = 1 diagonal, where the
  // acos clamp makes the analytic gradient intentionally diverge from the
  // true one (the same reason gc-sntk's k_ss diagonal is not gradchecked).
  auto ntk = [](Tape& t, Var u, Var v, int d) {
    const float pi = 3.14159265358979323846f;
    const float inv_d = 1.0f / static_cast<float>(d);
    Var sigma0 = t.Scale(t.MatMul(u, t.Transpose(v)), inv_d);
    Var nu = t.Scale(t.RowSumOp(t.Square(u)), inv_d);
    Var nv = t.Scale(t.RowSumOp(t.Square(v)), inv_d);
    Var norm_prod =
        t.MatMul(t.Sqrt(nu, 1e-8f), t.Transpose(t.Sqrt(nv, 1e-8f)));
    Var s = t.ElemDiv(sigma0, t.AddConst(norm_prod, 1e-8f));
    Var acos_s = t.Acos(s);
    Var pi_minus = t.AddConst(t.Scale(acos_s, -1.0f), pi);
    Var one_minus_s2 = t.AddConst(t.Scale(t.Square(s), -1.0f), 1.0f);
    Var kappa1 = t.Scale(
        t.Add(t.Hadamard(s, pi_minus), t.Sqrt(one_minus_s2, 1e-8f)),
        1.0f / pi);
    Var kappa0 = t.Scale(pi_minus, 1.0f / pi);
    return t.Add(t.Hadamard(norm_prod, kappa1), t.Hadamard(sigma0, kappa0));
  };
  add("composite_ntk_cross", {{3, 4}, {2, 4}},
      [ntk](Tape& t, const std::vector<Var>& v) {
        return t.SumAll(t.Square(ntk(t, v[0], v[1], 4)));
      },
      1e-1f);
  add("composite_sntk_ridge", {{3, 4}},
      [ntk](Tape& t, const std::vector<Var>& v) {
        // Kernel regression head: cross kernel against a fixed batch, then
        // a ridge solve — the gradient path of gc-sntk's outer loss.
        Rng rng(99);
        Var batch = t.Constant(Matrix::RandomUniform(2, 4, rng, -1.5f, 1.5f));
        Var k_bs = ntk(t, batch, v[0], 4);  // 2x3
        Var a = t.Constant(Scale(Matrix::Identity(2), 8.0f));
        Var pred = t.Solve(a, k_bs);
        return t.SumAll(t.Square(pred));
      },
      1e-1f);
  add("composite_learned_adjacency", {{4, 3}, {3, 2}},
      [](Tape& t, const std::vector<Var>& v) {
        // GCond's NormalizedLearnedAdjacency chain minus BinarizeSte (the
        // straight-through estimator is non-differentiable by design and
        // would fail any finite-difference check): low-rank tanh scores,
        // sigmoid, zeroed diagonal, +I, symmetric degree normalization,
        // then one propagation of constant features.
        const int n = 4;
        Var h = t.Tanh(t.MatMul(v[0], v[1]));
        Var raw = t.Scale(t.MatMul(h, t.Transpose(h)),
                          1.0f / std::sqrt(2.0f));
        Var a = t.Sigmoid(raw);
        Matrix mask(n, n, 1.0f);
        for (int i = 0; i < n; ++i) mask(i, i) = 0.0f;
        a = t.Hadamard(a, t.Constant(mask));
        Var hat = t.Add(a, t.Constant(Matrix::Identity(n)));
        Var deg = t.RowSumOp(hat);
        Var inv_sqrt =
            t.ElemDiv(t.Constant(Matrix(n, 1, 1.0f)), t.Sqrt(deg, 1e-8f));
        Var norm = t.MulColVec(hat, inv_sqrt);
        norm = t.MulRowVec(norm, t.Transpose(inv_sqrt));
        Var z = t.MatMul(norm, t.Constant(Matrix(n, 2, 0.6f)));
        return t.SumAll(t.Square(z));
      },
      8e-2f);
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, TapeGradCheckTest, ::testing::ValuesIn(MakeCases()),
    [](const ::testing::TestParamInfo<GradCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace bgc::ag
