// Golden regression harness: a tiny fixed-seed condense -> attack -> eval
// pipeline whose ACC / ASR / loss values are pinned bit-for-bit.
//
// Every kernel in this repo is required to be deterministic (bit-identical
// across BGC_NUM_THREADS settings — see DESIGN.md), so these goldens assert
// EXACT double equality. A mismatch means some change altered the numeric
// path: reordered a reduction, touched an RNG stream, changed a default.
// That is exactly what this test exists to catch — observability hooks,
// refactors, and optimizations must all be numerically invisible.
//
// Regenerating after an INTENTIONAL numeric change:
//   BGC_REGEN_GOLDEN=1 ./golden_metrics_test
// prints the new kGolden* literals (exact %.17g / %.9g) to stderr; paste
// them below and say why in the commit message. The suite also runs in the
// ASan leg of tools/ci.sh — both build types compile with -O2, so the
// values must agree across them.

#include <cstdio>
#include <cstdlib>

#include <gtest/gtest.h>

#include "src/condense/condenser.h"
#include "src/data/synthetic.h"
#include "src/eval/experiment.h"
#include "src/nn/models.h"
#include "src/nn/trainer.h"
#include "src/tensor/simd/simd.h"

namespace bgc {
namespace {

bool Regen() {
  const char* env = std::getenv("BGC_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == 0);
}

// Under BGC_FAST_MATH=1 the packed GEMM fast tier is allowed to fuse
// mul+add (DESIGN.md §14), so the pipeline is deliberately NOT bit-stable
// and the goldens switch from exact equality to a tolerance band: wide
// enough for a few borderline predictions to flip on the tiny fixture,
// tight enough that a genuinely broken kernel still fails. The exact tier
// keeps the historical bit-for-bit pins.
void ExpectGolden(double actual, double golden, double fast_band) {
  if (simd::FastMathEnabled()) {
    EXPECT_NEAR(actual, golden, fast_band);
  } else {
    EXPECT_EQ(actual, golden);
  }
}

// Shrunken but complete spec: real selector, adaptive triggers, learned
// adjacency — every stage of the pipeline executes, just briefly.
eval::RunSpec TinySpec() {
  eval::RunSpec spec;
  spec.dataset = "cora-sim";
  spec.dataset_scale = 0.25;
  spec.seed = 7;
  spec.repeats = 1;
  spec.method = "gcond";
  spec.attack = "bgc";
  spec.condense.num_condensed = 14;
  spec.condense.epochs = 4;
  spec.attack_cfg.selector_epochs = 10;
  spec.attack_cfg.surrogate_steps = 8;
  spec.attack_cfg.update_batch = 8;
  spec.victim.epochs = 30;
  spec.eval_clean_baseline = true;
  return spec;
}

// ---- golden values -------------------------------------------------------
// Produced by BGC_REGEN_GOLDEN=1. Last regenerated for the RNG-stream
// decoupling (victim training now draws seed*stride+19 instead of
// continuing the attack stream) and the Eq. 9 selector scoring fix
// (dist − λ·deg), which moved BackdoorCta 0.176 → 0.14 and CleanAsr
// 0.0452 → 0.00905; the other four literals were unchanged.
constexpr double kGoldenBackdoorCta = 0.14000000000000001;
constexpr double kGoldenBackdoorAsr = 1;
constexpr double kGoldenCleanCta = 0.372;
constexpr double kGoldenCleanAsr = 0.0090497737556561094;
constexpr float kGoldenCondenseLoss = 1.45811915f;
constexpr double kGoldenCleanOnlyCta = 0.32400000000000001;
// --------------------------------------------------------------------------

TEST(GoldenMetricsTest, AttackPipelineMetricsAreBitStable) {
  eval::RepeatResult rr = eval::RunOnce(TinySpec(), /*seed=*/7);
  ASSERT_TRUE(rr.has_clean);
  if (Regen()) {
    std::fprintf(stderr,
                 "constexpr double kGoldenBackdoorCta = %.17g;\n"
                 "constexpr double kGoldenBackdoorAsr = %.17g;\n"
                 "constexpr double kGoldenCleanCta = %.17g;\n"
                 "constexpr double kGoldenCleanAsr = %.17g;\n",
                 rr.backdoor.cta, rr.backdoor.asr, rr.clean.cta,
                 rr.clean.asr);
    GTEST_SKIP() << "BGC_REGEN_GOLDEN set: printed fresh goldens, "
                    "assertions skipped";
  }
  // Exact comparisons on purpose (tolerance band only under fast math);
  // see the file comment.
  ExpectGolden(rr.backdoor.cta, kGoldenBackdoorCta, 0.1);
  ExpectGolden(rr.backdoor.asr, kGoldenBackdoorAsr, 0.1);
  ExpectGolden(rr.clean.cta, kGoldenCleanCta, 0.1);
  ExpectGolden(rr.clean.asr, kGoldenCleanAsr, 0.1);
}

TEST(GoldenMetricsTest, CondensationAndVictimLossAreBitStable) {
  data::GraphDataset ds = data::MakeDataset("cora-sim", /*seed=*/7, 0.25);
  condense::SourceGraph clean =
      condense::FromTrainView(data::MakeTrainView(ds));
  condense::CondenseConfig cfg;
  cfg.num_condensed = 14;
  cfg.epochs = 4;
  Rng rng(7);
  auto condenser = condense::MakeCondenser("gcond");
  condense::CondensedGraph g = condense::RunCondensation(
      *condenser, clean, ds.num_classes, cfg, rng);

  nn::GnnConfig mc;
  mc.in_dim = g.features.cols();
  mc.hidden_dim = 16;
  mc.out_dim = g.num_classes;
  Rng model_rng(11);
  auto model = nn::MakeModel("gcn", mc, model_rng);
  nn::TrainConfig tc;
  tc.epochs = 25;
  tc.seed = 13;
  const float loss = nn::TrainNodeClassifier(*model, g.adj, g.features,
                                             g.labels, /*train_idx=*/{}, tc);
  if (Regen()) {
    std::fprintf(stderr, "constexpr float kGoldenCondenseLoss = %.9gf;\n",
                 loss);
    GTEST_SKIP() << "BGC_REGEN_GOLDEN set";
  }
  ExpectGolden(loss, kGoldenCondenseLoss, 0.05);
}

TEST(GoldenMetricsTest, CleanCondensationCtaIsBitStable) {
  eval::RunSpec spec = TinySpec();
  spec.attack = "none";
  eval::RepeatResult rr = eval::RunOnce(spec, /*seed=*/7);
  if (Regen()) {
    std::fprintf(stderr, "constexpr double kGoldenCleanOnlyCta = %.17g;\n",
                 rr.backdoor.cta);
    GTEST_SKIP() << "BGC_REGEN_GOLDEN set";
  }
  ExpectGolden(rr.backdoor.cta, kGoldenCleanOnlyCta, 0.1);
}

// The pipeline above must give the same numbers on every run of the same
// binary (no hidden global state, no time/address dependence) — otherwise
// the goldens would be meaningless. This guard runs even under regen.
TEST(GoldenMetricsTest, PipelineIsDeterministicWithinProcess) {
  eval::RunSpec spec = TinySpec();
  spec.eval_clean_baseline = false;  // halve the cost; CTA+ASR suffice
  eval::RepeatResult a = eval::RunOnce(spec, 7);
  eval::RepeatResult b = eval::RunOnce(spec, 7);
  EXPECT_EQ(a.backdoor.cta, b.backdoor.cta);
  EXPECT_EQ(a.backdoor.asr, b.backdoor.asr);
}

}  // namespace
}  // namespace bgc
