#include "src/core/stats.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace bgc {
namespace {

TEST(StatsTest, EmptyInput) {
  MeanStd ms = ComputeMeanStd({});
  EXPECT_DOUBLE_EQ(ms.mean, 0.0);
  EXPECT_DOUBLE_EQ(ms.std, 0.0);
}

TEST(StatsTest, SingleValue) {
  MeanStd ms = ComputeMeanStd({3.5});
  EXPECT_DOUBLE_EQ(ms.mean, 3.5);
  EXPECT_DOUBLE_EQ(ms.std, 0.0);
}

TEST(StatsTest, KnownMeanStd) {
  MeanStd ms = ComputeMeanStd({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_DOUBLE_EQ(ms.mean, 5.0);
  EXPECT_DOUBLE_EQ(ms.std, 2.0);
}

TEST(StatsTest, FormatPercentCell) {
  std::vector<double> values = {0.8123, 0.8123, 0.8123};
  EXPECT_EQ(FormatPercentCell(values), "81.23 (0.00)");
}

TEST(StatsTest, FormatPercentCellSpread) {
  std::vector<double> values = {1.0, 0.0};
  std::string cell = FormatPercentCell(values);
  EXPECT_EQ(cell, "50.00 (50.00)");
}

}  // namespace
}  // namespace bgc
