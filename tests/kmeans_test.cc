#include "src/attack/kmeans.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace bgc::attack {
namespace {

/// Two well-separated blobs in 2-D.
Matrix TwoBlobs(Rng& rng, int per_blob) {
  Matrix points(2 * per_blob, 2);
  for (int i = 0; i < per_blob; ++i) {
    points.At(i, 0) = static_cast<float>(rng.Normal(-5.0, 0.3));
    points.At(i, 1) = static_cast<float>(rng.Normal(0.0, 0.3));
    points.At(per_blob + i, 0) = static_cast<float>(rng.Normal(5.0, 0.3));
    points.At(per_blob + i, 1) = static_cast<float>(rng.Normal(0.0, 0.3));
  }
  return points;
}

TEST(KMeansTest, RecoversTwoBlobs) {
  Rng rng(1);
  Matrix points = TwoBlobs(rng, 30);
  KMeansResult result = KMeans(points, 2, rng);
  // All members of a blob share a cluster, blobs differ.
  for (int i = 1; i < 30; ++i) {
    EXPECT_EQ(result.assignment[i], result.assignment[0]);
    EXPECT_EQ(result.assignment[30 + i], result.assignment[30]);
  }
  EXPECT_NE(result.assignment[0], result.assignment[30]);
}

TEST(KMeansTest, CentroidsNearBlobMeans) {
  Rng rng(2);
  Matrix points = TwoBlobs(rng, 50);
  KMeansResult result = KMeans(points, 2, rng);
  std::vector<float> xs = {result.centroids.At(0, 0),
                           result.centroids.At(1, 0)};
  std::sort(xs.begin(), xs.end());
  EXPECT_NEAR(xs[0], -5.0f, 0.5f);
  EXPECT_NEAR(xs[1], 5.0f, 0.5f);
}

TEST(KMeansTest, KClampedToPointCount) {
  Rng rng(3);
  Matrix points(3, 2, {0, 0, 10, 10, 20, 20});
  KMeansResult result = KMeans(points, 10, rng);
  EXPECT_EQ(result.centroids.rows(), 3);
  std::set<int> clusters(result.assignment.begin(), result.assignment.end());
  EXPECT_EQ(clusters.size(), 3u);
}

TEST(KMeansTest, SinglePoint) {
  Rng rng(4);
  Matrix points(1, 3, {1, 2, 3});
  KMeansResult result = KMeans(points, 1, rng);
  EXPECT_EQ(result.assignment[0], 0);
  EXPECT_TRUE(result.centroids == points);
}

TEST(KMeansTest, IdenticalPointsOneEffectiveCluster) {
  Rng rng(5);
  Matrix points(6, 2, 1.5f);
  KMeansResult result = KMeans(points, 3, rng);
  // Every point sits exactly on some centroid.
  for (int i = 0; i < 6; ++i) {
    const int c = result.assignment[i];
    EXPECT_FLOAT_EQ(result.centroids.At(c, 0), 1.5f);
    EXPECT_FLOAT_EQ(result.centroids.At(c, 1), 1.5f);
  }
}

TEST(KMeansTest, DeterministicGivenRng) {
  Rng a(7), b(7);
  Rng data_rng(8);
  Matrix points = TwoBlobs(data_rng, 20);
  KMeansResult ra = KMeans(points, 3, a);
  KMeansResult rb = KMeans(points, 3, b);
  EXPECT_EQ(ra.assignment, rb.assignment);
}

}  // namespace
}  // namespace bgc::attack
