// Minibatch training contracts (src/nn/trainer.h MinibatchTrainer):
//
//  - Tolerance band: sampled training tracks full-batch accuracy on a
//    fixed-seed preset (the two are NOT bit-comparable — see DESIGN.md
//    §13 for which contracts are exact and which are banded).
//  - Bit-exact contracts: rerun determinism, heap-vs-mmap data path
//    identity, and kill-and-resume through the sampled-training
//    checkpoint ("bgc.sampled-train-ckpt").
//  - Golden: final sampled loss/accuracy pinned exactly; regenerate with
//    BGC_REGEN_GOLDEN=1 ./minibatch_test and justify in the commit.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/mmap_dataset.h"
#include "src/data/synthetic.h"
#include "src/eval/pipeline.h"
#include "src/graph/partition.h"
#include "src/nn/models.h"
#include "src/nn/trainer.h"
#include "src/store/resumable.h"
#include "src/store/serialize.h"

namespace bgc::nn {
namespace {

bool Regen() {
  const char* env = std::getenv("BGC_REGEN_GOLDEN");
  return env != nullptr && env[0] != '\0' && !(env[0] == '0' && env[1] == 0);
}

MinibatchTrainConfig TinyTrainConfig() {
  MinibatchTrainConfig tc;
  tc.epochs = 12;
  tc.seed = 21;
  tc.fanout = {5, 5};
  tc.batch_size = 16;
  return tc;
}

std::unique_ptr<GnnModel> FreshModel(int in_dim, int out_dim, uint64_t seed) {
  GnnConfig mc;
  mc.in_dim = in_dim;
  mc.hidden_dim = 32;
  mc.out_dim = out_dim;
  Rng rng(seed);
  return MakeModel("gcn", mc, rng);
}

void ExpectStateDictsBitIdentical(
    const std::vector<std::pair<std::string, Matrix>>& a,
    const std::vector<std::pair<std::string, Matrix>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].first, b[i].first);
    ASSERT_EQ(a[i].second.rows(), b[i].second.rows());
    ASSERT_EQ(a[i].second.cols(), b[i].second.cols());
    EXPECT_EQ(std::memcmp(a[i].second.data(), b[i].second.data(),
                          sizeof(float) * a[i].second.size()),
              0)
        << "param " << a[i].first << " differs";
  }
}

class MinibatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = data::MakeDataset("tiny-sim", /*seed=*/7);
    source_ = std::make_unique<graph::CsrNeighborSource>(ds_.adj);
    features_ = std::make_unique<graph::MatrixFeatureSource>(ds_.features);
  }

  float TrainSampled(GnnModel& model, const MinibatchTrainConfig& tc) {
    return TrainNodeClassifierMinibatch(model, *source_, *features_,
                                        ds_.labels, ds_.train_idx, tc);
  }

  data::GraphDataset ds_;
  std::unique_ptr<graph::CsrNeighborSource> source_;
  std::unique_ptr<graph::MatrixFeatureSource> features_;
};

// ---- tolerance-band contract --------------------------------------------

TEST_F(MinibatchTest, SampledAccuracyTracksFullBatch) {
  auto full_model = FreshModel(ds_.features.cols(), ds_.num_classes, 21);
  TrainConfig full_tc;
  full_tc.epochs = 40;
  full_tc.seed = 21;
  TrainNodeClassifier(*full_model, ds_.adj, ds_.features, ds_.labels,
                      ds_.train_idx, full_tc);
  const Matrix logits = PredictLogits(*full_model, ds_.adj, ds_.features);
  const double full_acc = Accuracy(logits, ds_.labels, ds_.test_idx);

  auto sampled_model = FreshModel(ds_.features.cols(), ds_.num_classes, 21);
  MinibatchTrainConfig tc = TinyTrainConfig();
  tc.epochs = 40;
  TrainSampled(*sampled_model, tc);
  const double sampled_acc = eval::EvaluateAccuracySampled(
      *sampled_model, *source_, *features_, ds_.labels, ds_.test_idx,
      tc.fanout, tc.batch_size, tc.seed);

  // Banded, not bit-exact: sampling sees a different (sub)graph per step.
  EXPECT_GT(sampled_acc, 0.5);
  EXPECT_NEAR(sampled_acc, full_acc, 0.15);
}

// ---- bit-exact contracts ------------------------------------------------

TEST_F(MinibatchTest, RerunsAreBitIdentical) {
  const MinibatchTrainConfig tc = TinyTrainConfig();
  auto m1 = FreshModel(ds_.features.cols(), ds_.num_classes, 3);
  const float loss1 = TrainSampled(*m1, tc);
  auto m2 = FreshModel(ds_.features.cols(), ds_.num_classes, 3);
  const float loss2 = TrainSampled(*m2, tc);
  EXPECT_EQ(loss1, loss2);
  ExpectStateDictsBitIdentical(m1->StateDict(), m2->StateDict());
}

TEST_F(MinibatchTest, MmapAndHeapTrainingAreBitIdentical) {
  const std::string path = ::testing::TempDir() + "/minibatch_mmap.bgcbin";
  ASSERT_TRUE(store::SaveDatasetBinary(ds_, path).ok());
  StatusOr<data::MmapDataset> opened = data::MmapDataset::Open(path);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  data::MmapDataset mmap = opened.take();
  ASSERT_TRUE(mmap.Warm().ok());

  const MinibatchTrainConfig tc = TinyTrainConfig();
  auto heap_model = FreshModel(ds_.features.cols(), ds_.num_classes, 3);
  const float heap_loss = TrainSampled(*heap_model, tc);
  auto mmap_model = FreshModel(ds_.features.cols(), ds_.num_classes, 3);
  const float mmap_loss = TrainNodeClassifierMinibatch(
      *mmap_model, mmap, mmap, mmap.labels(), mmap.train_idx(), tc);

  EXPECT_EQ(heap_loss, mmap_loss);
  ExpectStateDictsBitIdentical(heap_model->StateDict(),
                               mmap_model->StateDict());
  std::remove(path.c_str());
}

TEST_F(MinibatchTest, KillAndResumeIsBitIdentical) {
  const MinibatchTrainConfig tc = TinyTrainConfig();
  const std::string ckpt = ::testing::TempDir() + "/minibatch_resume.ckpt";
  std::remove(ckpt.c_str());

  // Uninterrupted reference run.
  auto ref_model = FreshModel(ds_.features.cols(), ds_.num_classes, 5);
  const float ref_loss = TrainSampled(*ref_model, tc);

  // Killed run: stop after 5 of 12 epochs (writes the checkpoint) ...
  auto killed_model = FreshModel(ds_.features.cols(), ds_.num_classes, 5);
  {
    MinibatchTrainer trainer(*killed_model, *source_, *features_, ds_.labels,
                             ds_.train_idx, tc);
    store::ResumableOptions opts;
    opts.checkpoint_path = ckpt;
    opts.stop_after_epochs = 5;
    store::SampledTrainResult r =
        store::RunResumableMinibatchTraining(trainer, opts);
    ASSERT_FALSE(r.completed);
    ASSERT_EQ(r.epochs_done, 5);
    ASSERT_FALSE(r.resumed);
  }
  // ... then a fresh process-equivalent resumes and finishes.
  auto resumed_model = FreshModel(ds_.features.cols(), ds_.num_classes, 5);
  float resumed_loss = 0.0f;
  {
    MinibatchTrainer trainer(*resumed_model, *source_, *features_,
                             ds_.labels, ds_.train_idx, tc);
    store::ResumableOptions opts;
    opts.checkpoint_path = ckpt;
    store::SampledTrainResult r =
        store::RunResumableMinibatchTraining(trainer, opts);
    ASSERT_TRUE(r.completed);
    ASSERT_TRUE(r.resumed);
    ASSERT_EQ(r.epochs_done, tc.epochs);
    resumed_loss = r.last_loss;
  }

  EXPECT_EQ(ref_loss, resumed_loss);
  ExpectStateDictsBitIdentical(ref_model->StateDict(),
                               resumed_model->StateDict());
  // A completed run deletes its checkpoint.
  std::FILE* f = std::fopen(ckpt.c_str(), "rb");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

TEST_F(MinibatchTest, CorruptCheckpointIsRejectedLoudly) {
  const std::string ckpt = ::testing::TempDir() + "/minibatch_corrupt.ckpt";
  std::FILE* f = std::fopen(ckpt.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a checkpoint", f);
  std::fclose(f);
  StatusOr<store::SampledTrainCheckpoint> loaded =
      store::TryLoadSampledTrainCheckpoint(ckpt);
  EXPECT_FALSE(loaded.ok());
  std::remove(ckpt.c_str());
}

TEST(SampledCheckpointTest, RoundTripsAllFields) {
  store::SampledTrainCheckpoint ckpt;
  ckpt.next_epoch = 42;
  ckpt.adam_step = 1234;
  ckpt.model_state.emplace_back("layers.0.weight", Matrix(3, 4, 0.25f));
  ckpt.adam_m.emplace_back("layers.0.weight", Matrix(3, 4, 0.5f));
  ckpt.adam_v.emplace_back("layers.0.weight", Matrix(3, 4, 0.75f));
  ckpt.rng_state = {1, 2, 3, 4, 5, 6};
  const std::string path = ::testing::TempDir() + "/sampled_ckpt.bgcbin";
  ASSERT_TRUE(store::SaveSampledTrainCheckpoint(ckpt, path).ok());
  StatusOr<store::SampledTrainCheckpoint> loaded =
      store::TryLoadSampledTrainCheckpoint(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  const store::SampledTrainCheckpoint& got = loaded.value();
  EXPECT_EQ(got.next_epoch, 42);
  EXPECT_EQ(got.adam_step, 1234);
  ASSERT_EQ(got.model_state.size(), 1u);
  EXPECT_EQ(got.model_state[0].first, "layers.0.weight");
  EXPECT_EQ(got.model_state[0].second.At(2, 3), 0.25f);
  ASSERT_EQ(got.adam_m.size(), 1u);
  EXPECT_EQ(got.adam_m[0].second.At(0, 0), 0.5f);
  EXPECT_EQ(got.adam_v[0].second.At(0, 0), 0.75f);
  EXPECT_EQ(got.rng_state, (std::vector<uint64_t>{1, 2, 3, 4, 5, 6}));
  std::remove(path.c_str());
}

// ---- golden -------------------------------------------------------------
// Pinned exactly (%.17g): the sampled numeric path — sampler streams,
// gather, per-batch propagators, Adam — must stay bit-stable across
// refactors, thread counts, and SIMD/autograd modes. Produced with
// BGC_REGEN_GOLDEN=1.
constexpr double kGoldenSampledLoss = 0.21020245552062988;
constexpr double kGoldenSampledTestAcc = 0.96250000000000002;

TEST_F(MinibatchTest, GoldenSampledMetrics) {
  MinibatchTrainConfig tc = TinyTrainConfig();
  auto model = FreshModel(ds_.features.cols(), ds_.num_classes, 21);
  const double loss = TrainSampled(*model, tc);
  const double acc = eval::EvaluateAccuracySampled(
      *model, *source_, *features_, ds_.labels, ds_.test_idx, tc.fanout,
      tc.batch_size, tc.seed);
  if (Regen()) {
    std::fprintf(stderr,
                 "constexpr double kGoldenSampledLoss = %.17g;\n"
                 "constexpr double kGoldenSampledTestAcc = %.17g;\n",
                 loss, acc);
    GTEST_SKIP() << "BGC_REGEN_GOLDEN set: printed fresh goldens";
  }
  EXPECT_EQ(loss, kGoldenSampledLoss) << std::scientific << loss;
  EXPECT_EQ(acc, kGoldenSampledTestAcc) << std::scientific << acc;
}

}  // namespace
}  // namespace bgc::nn
