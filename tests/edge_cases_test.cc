// Boundary-condition tests: empty containers, singleton graphs, degenerate
// budgets — the places research code usually crashes first.

#include <gtest/gtest.h>

#include "src/attack/attach.h"
#include "src/attack/ego.h"
#include "src/autograd/tape.h"
#include "src/condense/common.h"
#include "src/eval/table.h"
#include "src/graph/graph_utils.h"
#include "src/tensor/matrix_ops.h"

namespace bgc {
namespace {

TEST(EdgeCaseTest, EmptyMatrixOps) {
  Matrix empty;
  EXPECT_EQ(Sum(empty), 0.0f);
  EXPECT_EQ(FrobeniusNorm(empty), 0.0f);
  EXPECT_TRUE(Transpose(empty).empty());
  EXPECT_TRUE(ArgmaxRows(empty).empty());
}

TEST(EdgeCaseTest, ConcatWithEmpty) {
  Matrix a(2, 3, 1.0f);
  Matrix empty;
  EXPECT_TRUE(ConcatRows(a, empty) == a);
  EXPECT_TRUE(ConcatRows(empty, a) == a);
  EXPECT_TRUE(ConcatCols(empty, empty).empty());
}

TEST(EdgeCaseTest, GatherNoRows) {
  Matrix a(3, 2, 1.0f);
  Matrix g = GatherRows(a, {});
  EXPECT_EQ(g.rows(), 0);
  EXPECT_EQ(g.cols(), 2);
}

TEST(EdgeCaseTest, OneHotEmpty) {
  Matrix y = OneHot({}, 4);
  EXPECT_EQ(y.rows(), 0);
  EXPECT_EQ(y.cols(), 4);
}

TEST(EdgeCaseTest, CsrEmptyGraph) {
  graph::CsrMatrix g = graph::CsrMatrix::FromEdges(0, 0, {}, true);
  EXPECT_EQ(g.rows(), 0);
  EXPECT_EQ(g.nnz(), 0);
  EXPECT_TRUE(g.ToEdges().empty());
}

TEST(EdgeCaseTest, CsrNoEdgesMultiply) {
  graph::CsrMatrix g = graph::CsrMatrix::FromEdges(3, 3, {}, true);
  Matrix x(3, 2, 1.0f);
  EXPECT_TRUE(g.Multiply(x) == Matrix(3, 2));
}

TEST(EdgeCaseTest, NormalizeSingletonGraph) {
  graph::CsrMatrix one = graph::CsrMatrix::FromEdges(1, 1, {}, true);
  graph::CsrMatrix norm = graph::GcnNormalize(one);
  EXPECT_NEAR(norm.At(0, 0), 1.0f, 1e-6f);
}

TEST(EdgeCaseTest, EgoNetworkIsolatedNode) {
  graph::CsrMatrix g = graph::CsrMatrix::FromEdges(4, 4, {{0, 1}}, true);
  EXPECT_EQ(graph::EgoNetwork(g, 3, 2), (std::vector<int>{3}));
}

TEST(EdgeCaseTest, EgoItemIsolatedHost) {
  graph::CsrMatrix g = graph::CsrMatrix::FromEdges(3, 3, {{0, 1}}, true);
  Matrix x(3, 2, 1.0f);
  Rng rng(1);
  attack::EgoItem item = attack::BuildEgoItem(g, x, 2, {2, 4}, 2, rng);
  EXPECT_EQ(item.nodes, (std::vector<int>{2}));
  // 1 ego node + 2 trigger slots, attachment edge present.
  EXPECT_EQ(item.base_adj.rows(), 3);
  EXPECT_FLOAT_EQ(item.base_adj.At(0, 1), 1.0f);
}

TEST(EdgeCaseTest, DropEdgesEmptyGraph) {
  Rng rng(2);
  graph::CsrMatrix g = graph::CsrMatrix::FromEdges(2, 2, {}, true);
  EXPECT_EQ(graph::DropEdges(g, 0.5, rng).nnz(), 0);
}

TEST(EdgeCaseTest, EdgeHomophilyNoEdges) {
  graph::CsrMatrix g = graph::CsrMatrix::FromEdges(2, 2, {}, true);
  EXPECT_DOUBLE_EQ(graph::EdgeHomophily(g, {0, 1}), 0.0);
}

TEST(EdgeCaseTest, TapeSingleNodeGraph) {
  ag::Tape t;
  ag::Var a = t.Input(Matrix(1, 1, {2.0f}));
  ag::Var loss = t.MeanAll(t.Square(a));
  t.Backward(loss);
  EXPECT_FLOAT_EQ(t.grad(a).At(0, 0), 4.0f);
}

TEST(EdgeCaseTest, TapeGradOfUnusedInputIsZero) {
  ag::Tape t;
  ag::Var used = t.Input(Matrix(1, 1, {1.0f}));
  ag::Var unused = t.Input(Matrix(2, 2, 3.0f));
  t.Backward(t.SumAll(used));
  EXPECT_TRUE(t.grad(unused) == Matrix(2, 2));
}

TEST(EdgeCaseTest, AllocateBudgetOne) {
  condense::SourceGraph src;
  src.labels = {0, 1, 1};
  src.labeled = {0, 1, 2};
  auto labels = condense::AllocateSyntheticLabels(src, 2, 1);
  EXPECT_EQ(labels.size(), 1u);
}

TEST(EdgeCaseTest, MinimumTriggerSizeOne) {
  // A 1-node trigger has no internal edges; attachment must still work.
  graph::CsrMatrix g = graph::CsrMatrix::FromEdges(2, 2, {{0, 1}}, true);
  Matrix x(2, 2, 1.0f);
  attack::TriggerInstantiation trig;
  trig.features = Matrix(1, 2, 0.5f);
  attack::AugmentedGraph aug = attack::AttachToGraph(g, x, {0}, {trig});
  EXPECT_EQ(aug.adj.rows(), 3);
  EXPECT_FLOAT_EQ(aug.adj.At(0, 2), 1.0f);
}

TEST(EdgeCaseTest, TextTableNoRows) {
  eval::TextTable table({"a", "b"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("| a"), std::string::npos);
}

}  // namespace
}  // namespace bgc
