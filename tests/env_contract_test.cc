// Environment-variable contract: every BGC_* knob that is set but
// malformed must fail fast with exit status 2 and an actionable message
// naming the offending value — never silently fall back to a default
// (the old BGC_NUM_THREADS=garbage behavior ran the whole experiment at
// hardware concurrency without a word). Valid values must take effect.
//
// Each check runs in a forked gtest death-test child: the child mutates
// the environment and then triggers the first (lazily cached) read, so
// the parent's own cached state never leaks into an assertion. For the
// same reason this binary must NEVER call simd::Kernels(),
// simd::FastMathEnabled(), or ThreadPool::Global() from the parent
// process before the death tests have run.

#include <cstdlib>

#include <gtest/gtest.h>

#include "src/core/thread_pool.h"
#include "src/tensor/simd/simd.h"

namespace bgc {
namespace {

class EnvContractTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Fork-style death tests must not fork a multithreaded parent.
    testing::FLAGS_gtest_death_test_style = "threadsafe";
  }
};

// ---- BGC_NUM_THREADS -------------------------------------------------

TEST_F(EnvContractTest, MalformedNumThreadsExits2) {
  for (const char* bad : {"garbage", "0", "-3", "1.5", "4x", " 2", "2 "}) {
    EXPECT_EXIT(
        {
          setenv("BGC_NUM_THREADS", bad, 1);
          ThreadPool::DefaultNumThreads();
          _Exit(0);
        },
        testing::ExitedWithCode(2), "BGC_NUM_THREADS")
        << "value: \"" << bad << "\"";
  }
}

TEST_F(EnvContractTest, ValidNumThreadsTakesEffect) {
  EXPECT_EXIT(
      {
        setenv("BGC_NUM_THREADS", "3", 1);
        _Exit(ThreadPool::DefaultNumThreads() == 3 ? 0 : 1);
      },
      testing::ExitedWithCode(0), "");
}

TEST_F(EnvContractTest, UnsetAndEmptyNumThreadsFallBackToHardware) {
  EXPECT_EXIT(
      {
        unsetenv("BGC_NUM_THREADS");
        const int unset_n = ThreadPool::DefaultNumThreads();
        setenv("BGC_NUM_THREADS", "", 1);
        const int empty_n = ThreadPool::DefaultNumThreads();
        _Exit(unset_n >= 1 && empty_n == unset_n ? 0 : 1);
      },
      testing::ExitedWithCode(0), "");
}

// ---- BGC_FAST_MATH ---------------------------------------------------

TEST_F(EnvContractTest, MalformedFastMathExits2) {
  for (const char* bad : {"banana", "2", "yes", "ON", "true", " 1"}) {
    EXPECT_EXIT(
        {
          setenv("BGC_FAST_MATH", bad, 1);
          simd::FastMathEnabled();
          _Exit(0);
        },
        testing::ExitedWithCode(2), "BGC_FAST_MATH")
        << "value: \"" << bad << "\"";
  }
}

TEST_F(EnvContractTest, FastMathOnValues) {
  for (const char* on : {"1", "on"}) {
    EXPECT_EXIT(
        {
          setenv("BGC_FAST_MATH", on, 1);
          _Exit(simd::FastMathEnabled() ? 0 : 1);
        },
        testing::ExitedWithCode(0), "")
        << "value: \"" << on << "\"";
  }
}

TEST_F(EnvContractTest, FastMathOffValuesAndDefault) {
  EXPECT_EXIT(
      {
        unsetenv("BGC_FAST_MATH");
        _Exit(simd::FastMathEnabled() ? 1 : 0);
      },
      testing::ExitedWithCode(0), "");
  for (const char* off : {"", "0", "off"}) {
    EXPECT_EXIT(
        {
          setenv("BGC_FAST_MATH", off, 1);
          _Exit(simd::FastMathEnabled() ? 1 : 0);
        },
        testing::ExitedWithCode(0), "")
        << "value: \"" << off << "\"";
  }
}

// ---- BGC_SIMD (pre-existing contract; pinned here alongside the rest) --

TEST_F(EnvContractTest, MalformedSimdBackendExits2) {
  for (const char* bad : {"bogus", "AVX2", "avx512f"}) {
    EXPECT_EXIT(
        {
          setenv("BGC_SIMD", bad, 1);
          simd::Kernels();
          _Exit(0);
        },
        testing::ExitedWithCode(2), "BGC_SIMD")
        << "value: \"" << bad << "\"";
  }
}

TEST_F(EnvContractTest, SimdErrorMessageListsAvx512) {
  // The fail-fast message enumerates the valid names, including the new
  // fourth backend, so a typo'd value tells the user what to type.
  EXPECT_EXIT(
      {
        setenv("BGC_SIMD", "bogus", 1);
        simd::Kernels();
        _Exit(0);
      },
      testing::ExitedWithCode(2), "scalar\\|sse2\\|avx2\\|avx512\\|native");
}

}  // namespace
}  // namespace bgc
