#include "src/tensor/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

namespace bgc {
namespace {

TEST(MatrixTest, DefaultIsEmpty) {
  Matrix m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_TRUE(m.empty());
}

TEST(MatrixTest, ZeroInitialized) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.size(), 12);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 4; ++j) EXPECT_EQ(m.At(i, j), 0.0f);
  }
}

TEST(MatrixTest, FillConstructor) {
  Matrix m(2, 2, 7.5f);
  EXPECT_EQ(m.At(1, 1), 7.5f);
}

TEST(MatrixTest, FromVector) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(m.At(0, 2), 3.0f);
  EXPECT_EQ(m.At(1, 0), 4.0f);
}

TEST(MatrixTest, Identity) {
  Matrix m = Matrix::Identity(3);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_EQ(m.At(i, j), i == j ? 1.0f : 0.0f);
    }
  }
}

TEST(MatrixTest, RowMajorLayout) {
  Matrix m(2, 3);
  m.At(1, 2) = 9.0f;
  EXPECT_EQ(m.data()[5], 9.0f);
  EXPECT_EQ(m.RowPtr(1)[2], 9.0f);
}

TEST(MatrixTest, RowExtractAndSet) {
  Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  Matrix r = m.Row(1);
  EXPECT_EQ(r.rows(), 1);
  EXPECT_EQ(r.cols(), 3);
  EXPECT_EQ(r.At(0, 0), 4.0f);
  m.SetRow(0, r);
  EXPECT_EQ(m.At(0, 2), 6.0f);
}

TEST(MatrixTest, FillOverwrites) {
  Matrix m(2, 2, 1.0f);
  m.Fill(-2.0f);
  EXPECT_EQ(m.At(0, 0), -2.0f);
  EXPECT_EQ(m.At(1, 1), -2.0f);
}

TEST(MatrixTest, EqualityOperator) {
  Matrix a(2, 2, {1, 2, 3, 4});
  Matrix b(2, 2, {1, 2, 3, 4});
  Matrix c(2, 2, {1, 2, 3, 5});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(MatrixTest, RandomNormalMoments) {
  Rng rng(42);
  Matrix m = Matrix::RandomNormal(100, 100, rng, 2.0f);
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < m.size(); ++i) {
    sum += m.data()[i];
    sq += m.data()[i] * m.data()[i];
  }
  EXPECT_NEAR(sum / m.size(), 0.0, 0.05);
  EXPECT_NEAR(sq / m.size(), 4.0, 0.15);
}

TEST(MatrixTest, RandomUniformBounds) {
  Rng rng(43);
  Matrix m = Matrix::RandomUniform(50, 50, rng, -1.0f, 2.0f);
  for (int i = 0; i < m.size(); ++i) {
    EXPECT_GE(m.data()[i], -1.0f);
    EXPECT_LT(m.data()[i], 2.0f);
  }
}

TEST(MatrixTest, GlorotUniformBound) {
  Rng rng(44);
  Matrix m = Matrix::GlorotUniform(30, 20, rng);
  const float bound = std::sqrt(6.0f / 50.0f);
  for (int i = 0; i < m.size(); ++i) {
    EXPECT_LE(std::fabs(m.data()[i]), bound);
  }
}

TEST(MatrixTest, GlorotDeterministicPerSeed) {
  Rng a(7), b(7);
  EXPECT_TRUE(Matrix::GlorotUniform(8, 8, a) == Matrix::GlorotUniform(8, 8, b));
}

}  // namespace
}  // namespace bgc
