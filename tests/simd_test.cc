#include "src/tensor/simd/simd.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/rng.h"
#include "src/graph/csr.h"
#include "src/tensor/matrix.h"
#include "src/tensor/matrix_ops.h"

namespace bgc {
namespace {

// Column counts straddling every lane-width boundary: scalar (1), below /
// at / above the SSE2 width (7, 8, 9 with a 4-lane tail mix), and below /
// at / above the AVX2 width (63, 64, 65).
const int kSizes[] = {1, 7, 8, 9, 63, 64, 65};

std::vector<simd::Backend> VectorBackends() {
  std::vector<simd::Backend> out;
  for (simd::Backend b : {simd::Backend::kSse2, simd::Backend::kAvx2,
                          simd::Backend::kAvx512}) {
    if (simd::TableFor(b) != nullptr) out.push_back(b);
  }
  return out;
}

// Restores the entry backend even when an assertion fails mid-test.
class BackendGuard {
 public:
  BackendGuard() : saved_(simd::Active()) {}
  ~BackendGuard() { simd::SetBackendForTesting(saved_); }

 private:
  simd::Backend saved_;
};

// Pins the fast-math tier for a scope. Bit-equality tests force it off so
// they keep passing when the suite runs under BGC_FAST_MATH=1 (the fast
// tier is non-bit-exact by contract; see DESIGN.md §14).
class FastMathGuard {
 public:
  explicit FastMathGuard(bool on) : saved_(simd::SetFastMathForTesting(on)) {}
  ~FastMathGuard() { simd::SetFastMathForTesting(saved_); }

 private:
  bool saved_;
};

// Forces the MatMul* execution path for a scope (packed vs legacy axpy).
class GemmPathGuard {
 public:
  explicit GemmPathGuard(GemmPath p) : saved_(SetGemmPathForTesting(p)) {}
  ~GemmPathGuard() { SetGemmPathForTesting(saved_); }

 private:
  GemmPath saved_;
};

::testing::AssertionResult BitEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
           << b.rows() << "x" << b.cols();
  }
  size_t bytes = static_cast<size_t>(a.rows()) * a.cols() * sizeof(float);
  if (bytes == 0 || std::memcmp(a.data(), b.data(), bytes) == 0) {
    return ::testing::AssertionSuccess();
  }
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      float x = a.At(i, j), y = b.At(i, j);
      if (std::memcmp(&x, &y, sizeof(float)) != 0) {
        return ::testing::AssertionFailure()
               << "first bit difference at (" << i << ", " << j
               << "): " << x << " vs " << y;
      }
    }
  }
  return ::testing::AssertionFailure() << "memcmp mismatch (padding?)";
}

// Runs `op` once under the scalar backend and once under each compiled
// vector backend, asserting byte-identical results. Fast math is pinned
// off: only the exact tier promises bit equality.
template <typename Op>
void ExpectBackendsBitEqual(const char* what, Op op) {
  BackendGuard guard;
  FastMathGuard exact(false);
  simd::SetBackendForTesting(simd::Backend::kScalar);
  Matrix ref = op();
  for (simd::Backend b : VectorBackends()) {
    simd::SetBackendForTesting(b);
    EXPECT_TRUE(BitEqual(op(), ref))
        << what << " under " << simd::BackendName(b);
  }
}

// Mixes magnitudes (denormal-adjacent through large) so mul/add rounding
// actually differs between orderings if a kernel gets the sequence wrong.
Matrix SpicyMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m = Matrix::RandomNormal(rows, cols, rng);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      int k = (i * cols + j) % 7;
      if (k == 3) m.At(i, j) *= 1e6f;
      if (k == 5) m.At(i, j) *= 1e-6f;
      if (k == 6) m.At(i, j) = 0.0f;  // exercises the GEMM zero-skip paths
    }
  }
  return m;
}

TEST(SimdDispatchTest, ScalarAlwaysAvailable) {
  EXPECT_TRUE(simd::Compiled(simd::Backend::kScalar));
  EXPECT_TRUE(simd::CpuSupports(simd::Backend::kScalar));
  ASSERT_NE(simd::TableFor(simd::Backend::kScalar), nullptr);
  EXPECT_EQ(simd::TableFor(simd::Backend::kScalar)->backend,
            simd::Backend::kScalar);
}

TEST(SimdDispatchTest, ActiveMatchesKernelsTable) {
  EXPECT_EQ(simd::Kernels().backend, simd::Active());
  EXPECT_STREQ(simd::Kernels().name, simd::BackendName(simd::Active()));
}

TEST(SimdDispatchTest, TableForRequiresCompiledAndSupported) {
  for (simd::Backend b :
       {simd::Backend::kScalar, simd::Backend::kSse2, simd::Backend::kAvx2,
        simd::Backend::kAvx512}) {
    const simd::KernelTable* t = simd::TableFor(b);
    if (simd::Compiled(b) && simd::CpuSupports(b)) {
      ASSERT_NE(t, nullptr) << simd::BackendName(b);
      EXPECT_EQ(t->backend, b);
      EXPECT_STREQ(t->name, simd::BackendName(b));
    } else {
      EXPECT_EQ(t, nullptr) << simd::BackendName(b);
    }
  }
}

TEST(SimdDispatchTest, ParseBackendAcceptsKnownNames) {
  simd::Backend b;
  ASSERT_TRUE(simd::ParseBackend("scalar", &b));
  EXPECT_EQ(b, simd::Backend::kScalar);
  ASSERT_TRUE(simd::ParseBackend("sse2", &b));
  EXPECT_EQ(b, simd::Backend::kSse2);
  ASSERT_TRUE(simd::ParseBackend("avx2", &b));
  EXPECT_EQ(b, simd::Backend::kAvx2);
  ASSERT_TRUE(simd::ParseBackend("avx512", &b));
  EXPECT_EQ(b, simd::Backend::kAvx512);
  // "native" resolves to the best compiled+supported backend.
  ASSERT_TRUE(simd::ParseBackend("native", &b));
  EXPECT_NE(simd::TableFor(b), nullptr);
}

TEST(SimdDispatchTest, ParseBackendRejectsUnknownNames) {
  simd::Backend b;
  EXPECT_FALSE(simd::ParseBackend("", &b));
  EXPECT_FALSE(simd::ParseBackend("avx512f", &b));
  EXPECT_FALSE(simd::ParseBackend("Scalar", &b));
  EXPECT_FALSE(simd::ParseBackend("sse", &b));
}

TEST(SimdDispatchTest, SetBackendForTestingRoundTrips) {
  BackendGuard guard;
  simd::Backend entry = simd::Active();
  simd::Backend prev = simd::SetBackendForTesting(simd::Backend::kScalar);
  EXPECT_EQ(prev, entry);
  EXPECT_EQ(simd::Active(), simd::Backend::kScalar);
  EXPECT_EQ(simd::Kernels().backend, simd::Backend::kScalar);
}

TEST(SimdBitEqualTest, MatMul) {
  for (int m : kSizes) {
    Matrix a = SpicyMatrix(5, 9, 100 + m);
    Matrix b = SpicyMatrix(9, m, 200 + m);
    ExpectBackendsBitEqual("MatMul", [&] { return MatMul(a, b); });
  }
}

TEST(SimdBitEqualTest, MatMulTransA) {
  for (int m : kSizes) {
    Matrix a = SpicyMatrix(9, 5, 300 + m);
    Matrix b = SpicyMatrix(9, m, 400 + m);
    ExpectBackendsBitEqual("MatMulTransA", [&] { return MatMulTransA(a, b); });
  }
}

TEST(SimdBitEqualTest, MatMulTransB) {
  for (int m : kSizes) {
    Matrix a = SpicyMatrix(5, 9, 500 + m);
    Matrix b = SpicyMatrix(m, 9, 600 + m);
    ExpectBackendsBitEqual("MatMulTransB", [&] { return MatMulTransB(a, b); });
  }
}

TEST(SimdBitEqualTest, SpmmForwardAndTransposed) {
  Rng rng(7);
  Matrix dense_adj = Matrix::RandomUniform(12, 12, rng, 0.0f, 1.0f);
  graph::CsrMatrix adj = graph::CsrMatrix::FromDense(dense_adj, 0.6f);
  ASSERT_GT(adj.nnz(), 0);
  for (int m : kSizes) {
    Matrix x = SpicyMatrix(12, m, 700 + m);
    ExpectBackendsBitEqual("CsrMatrix::Multiply",
                           [&] { return adj.Multiply(x); });
    ExpectBackendsBitEqual("CsrMatrix::MultiplyTransposed",
                           [&] { return adj.MultiplyTransposed(x); });
  }
}

TEST(SimdBitEqualTest, ElementwiseOps) {
  for (int m : kSizes) {
    Matrix a = SpicyMatrix(4, m, 800 + m);
    Matrix b = SpicyMatrix(4, m, 900 + m);
    Matrix bias = SpicyMatrix(1, m, 1000 + m);
    ExpectBackendsBitEqual("Add", [&] { return Add(a, b); });
    ExpectBackendsBitEqual("Sub", [&] { return Sub(a, b); });
    ExpectBackendsBitEqual("Hadamard", [&] { return Hadamard(a, b); });
    ExpectBackendsBitEqual("Scale", [&] { return Scale(a, 1.7f); });
    ExpectBackendsBitEqual("Relu", [&] { return Relu(a); });
    ExpectBackendsBitEqual("Clamp", [&] { return Clamp(a, -0.5f, 0.5f); });
    ExpectBackendsBitEqual("AddRowBroadcast",
                           [&] { return AddRowBroadcast(a, bias); });
    ExpectBackendsBitEqual("AddScaledInPlace", [&] {
      Matrix c = a;
      AddScaledInPlace(c, b, 0.3f);
      return c;
    });
    ExpectBackendsBitEqual("ScaleInPlace", [&] {
      Matrix c = a;
      ScaleInPlace(c, -2.5f);
      return c;
    });
  }
}

TEST(SimdBitEqualTest, ReluAndClampSpecialBitPatterns) {
  // std::max(0.0f, x) maps NaN and -0.0f to +0.0f; std::min(hi,
  // std::max(lo, x)) maps NaN to lo. The vector paths must reproduce
  // those exact bits in every lane position, so tile the specials across
  // more than one vector width.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const float specials[] = {nan,  -nan, inf,   -inf, 0.0f, -0.0f,
                            1.0f, -1.0f, 1e-40f, -1e-40f, 2.0f, -2.0f};
  Matrix a(3, 24);
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      a.At(i, j) = specials[(i * 5 + j) % 12];
    }
  }
  ExpectBackendsBitEqual("Relu(specials)", [&] { return Relu(a); });
  ExpectBackendsBitEqual("Clamp(specials)",
                         [&] { return Clamp(a, -1.5f, 1.5f); });
}

TEST(SimdBitEqualTest, TransposeAndReductions) {
  for (int m : kSizes) {
    Matrix a = SpicyMatrix(6, m, 1100 + m);
    ExpectBackendsBitEqual("Transpose", [&] { return Transpose(a); });
    ExpectBackendsBitEqual("RowSum", [&] { return RowSum(a); });
    ExpectBackendsBitEqual("ColSum", [&] { return ColSum(a); });
    ExpectBackendsBitEqual("RowNorm", [&] { return RowNorm(a); });
  }
}

TEST(SimdBitEqualTest, ScalarReductionsMatchAcrossBackends) {
  BackendGuard guard;
  for (int m : kSizes) {
    Matrix a = SpicyMatrix(6, m, 1200 + m);
    simd::SetBackendForTesting(simd::Backend::kScalar);
    float max_abs_ref = MaxAbs(a);
    float sum_ref = Sum(a);
    float dot_ref = Dot(a, a);
    for (simd::Backend b : VectorBackends()) {
      simd::SetBackendForTesting(b);
      float max_abs_v = MaxAbs(a);
      float sum_v = Sum(a);
      float dot_v = Dot(a, a);
      EXPECT_EQ(std::memcmp(&max_abs_v, &max_abs_ref, sizeof(float)), 0)
          << "MaxAbs under " << simd::BackendName(b);
      EXPECT_EQ(std::memcmp(&sum_v, &sum_ref, sizeof(float)), 0)
          << "Sum under " << simd::BackendName(b);
      EXPECT_EQ(std::memcmp(&dot_v, &dot_ref, sizeof(float)), 0)
          << "Dot under " << simd::BackendName(b);
    }
  }
}

TEST(SimdBitEqualTest, MaxAbsNanPropagatesIdenticallyInEveryLane) {
  BackendGuard guard;
  const float canonical = std::numeric_limits<float>::quiet_NaN();
  // A NaN in each possible lane position of a 9-wide row (hits both AVX2
  // body lanes and the scalar tail).
  for (int pos = 0; pos < 9; ++pos) {
    Matrix a = SpicyMatrix(1, 9, 1300 + pos);
    a.At(0, pos) = -std::numeric_limits<float>::quiet_NaN();
    simd::SetBackendForTesting(simd::Backend::kScalar);
    float ref = MaxAbs(a);
    EXPECT_EQ(std::memcmp(&ref, &canonical, sizeof(float)), 0)
        << "scalar MaxAbs must return the canonical quiet NaN";
    for (simd::Backend b : VectorBackends()) {
      simd::SetBackendForTesting(b);
      float v = MaxAbs(a);
      EXPECT_EQ(std::memcmp(&v, &ref, sizeof(float)), 0)
          << "NaN at lane " << pos << " under " << simd::BackendName(b);
    }
  }
}

TEST(SimdKernelTest, RawKernelsTolerateZeroLength) {
  for (simd::Backend b :
       {simd::Backend::kScalar, simd::Backend::kSse2, simd::Backend::kAvx2,
        simd::Backend::kAvx512}) {
    const simd::KernelTable* t = simd::TableFor(b);
    if (t == nullptr) continue;
    t->axpy(nullptr, nullptr, 2.0f, 0);
    t->add(nullptr, nullptr, 0);
    t->sub(nullptr, nullptr, 0);
    t->mul(nullptr, nullptr, 0);
    t->scale(nullptr, 3.0f, 0);
    t->relu(nullptr, 0);
    t->clamp(nullptr, -1.0f, 1.0f, 0);
    float m = t->max_abs(nullptr, 0);
    EXPECT_EQ(m, 0.0f) << simd::BackendName(b);
  }
}

// ---------------------------------------------------------------------
// Packed register-tiled GEMM (DESIGN.md §14): the packed path must be
// bit-identical to the legacy axpy path on every backend, at every
// awkward shape, including NaN/±0/denormal lanes.
// ---------------------------------------------------------------------

// Shapes straddling every micro-tile boundary: below / at / above the
// mr heights (4 scalar/sse2, 6 avx2/avx512) and the nr widths (8, 16, 32
// — 63/64/65 also cross two avx512 strips).
const int kAwkward[] = {1, 5, 6, 7, 15, 16, 17, 63, 64, 65};

TEST(PackedGemmTest, TableTileShapesAreSane) {
  for (simd::Backend b :
       {simd::Backend::kScalar, simd::Backend::kSse2, simd::Backend::kAvx2,
        simd::Backend::kAvx512}) {
    const simd::KernelTable* t = simd::TableFor(b);
    if (t == nullptr) continue;
    EXPECT_NE(t->gemm_tile, nullptr) << simd::BackendName(b);
    EXPECT_GE(t->gemm_mr, 1) << simd::BackendName(b);
    EXPECT_GE(t->gemm_nr, 1) << simd::BackendName(b);
  }
}

TEST(PackedGemmTest, GemmTileHandlesEmptyKBlock) {
  for (simd::Backend b :
       {simd::Backend::kScalar, simd::Backend::kSse2, simd::Backend::kAvx2,
        simd::Backend::kAvx512}) {
    const simd::KernelTable* t = simd::TableFor(b);
    if (t == nullptr) continue;
    const int mr = t->gemm_mr, nr = t->gemm_nr;
    // kc = 0 with first: the tile is initialized to +0.0f and stored.
    std::vector<float> c(static_cast<size_t>(mr) * nr, 123.0f);
    t->gemm_tile(c.data(), nr, nullptr, nullptr, 0, /*first=*/true,
                 /*skip_zero_a=*/true);
    for (float v : c) EXPECT_EQ(v, 0.0f) << simd::BackendName(b);
    // kc = 0 without first: load-then-store must preserve bits (even NaN).
    for (size_t i = 0; i < c.size(); ++i) {
      c[i] = (i % 3 == 0) ? std::numeric_limits<float>::quiet_NaN()
                          : static_cast<float>(i) - 7.5f;
    }
    std::vector<float> before = c;
    t->gemm_tile(c.data(), nr, nullptr, nullptr, 0, /*first=*/false,
                 /*skip_zero_a=*/false);
    EXPECT_EQ(std::memcmp(c.data(), before.data(), c.size() * sizeof(float)),
              0)
        << simd::BackendName(b);
  }
}

// Runs `op` with the legacy axpy path under the scalar backend as the
// reference, then with the packed path forced under scalar and every
// vector backend, asserting byte-identical results throughout.
template <typename Op>
void ExpectPackedMatchesAxpy(const char* what, Op op) {
  BackendGuard guard;
  FastMathGuard exact(false);
  Matrix ref = [&] {
    GemmPathGuard path(GemmPath::kAxpy);
    simd::SetBackendForTesting(simd::Backend::kScalar);
    return op();
  }();
  GemmPathGuard path(GemmPath::kPacked);
  simd::SetBackendForTesting(simd::Backend::kScalar);
  EXPECT_TRUE(BitEqual(op(), ref)) << what << " packed under scalar";
  for (simd::Backend b : VectorBackends()) {
    simd::SetBackendForTesting(b);
    EXPECT_TRUE(BitEqual(op(), ref))
        << what << " packed under " << simd::BackendName(b);
  }
}

TEST(PackedGemmTest, PackedMatchesAxpyAtAwkwardShapes) {
  // Every (n, m) pair from the awkward set, with k cycling through the
  // same set so each value appears in each dimension many times.
  for (int n : kAwkward) {
    for (int m : kAwkward) {
      const int k = kAwkward[(n + m) % 10];
      Matrix a = SpicyMatrix(n, k, 1400 + 10 * n + m);
      Matrix b = SpicyMatrix(k, m, 1500 + 10 * n + m);
      ExpectPackedMatchesAxpy("MatMul", [&] { return MatMul(a, b); });
    }
  }
}

TEST(PackedGemmTest, PackedMatchesAxpyOverInnerDim) {
  for (int k : kAwkward) {
    Matrix a = SpicyMatrix(6, k, 1600 + k);
    Matrix b = SpicyMatrix(k, 17, 1700 + k);
    ExpectPackedMatchesAxpy("MatMul", [&] { return MatMul(a, b); });
    Matrix at = SpicyMatrix(k, 7, 1800 + k);
    ExpectPackedMatchesAxpy("MatMulTransA",
                            [&] { return MatMulTransA(at, b); });
    Matrix bt = SpicyMatrix(17, k, 1900 + k);
    ExpectPackedMatchesAxpy("MatMulTransB",
                            [&] { return MatMulTransB(a, bt); });
  }
}

TEST(PackedGemmTest, PackedMatchesAxpyTransposedAtAwkwardShapes) {
  for (int n : kAwkward) {
    const int k = kAwkward[(n + 3) % 10];
    const int m = kAwkward[(n + 7) % 10];
    Matrix at = SpicyMatrix(k, n, 2000 + n);
    Matrix b = SpicyMatrix(k, m, 2100 + n);
    ExpectPackedMatchesAxpy("MatMulTransA",
                            [&] { return MatMulTransA(at, b); });
    Matrix a = SpicyMatrix(n, k, 2200 + n);
    Matrix bt = SpicyMatrix(m, k, 2300 + n);
    ExpectPackedMatchesAxpy("MatMulTransB",
                            [&] { return MatMulTransB(a, bt); });
  }
}

// NaN, infinities, signed zeros, and denormals must round-trip the packed
// path bit-identically — including the zero-skip contract: MatMul /
// MatMulTransA skip a == 0 contributions (so 0 * inf never materializes a
// NaN there), while MatMulTransB always adds the 0 * b term.
Matrix SpecialsMatrix(int rows, int cols, int phase) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const float specials[] = {1.0f,   0.0f,  -0.0f,  1e-40f, -1e-40f,
                            -2.5f,  nan,   inf,    -inf,   1e30f};
  Matrix m(rows, cols);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      m.At(i, j) = specials[(i * cols + j + phase) % 10];
    }
  }
  return m;
}

TEST(PackedGemmTest, PackedMatchesAxpyOnSpecialValues) {
  for (int phase = 0; phase < 10; ++phase) {
    Matrix a = SpecialsMatrix(7, 17, phase);
    Matrix b = SpecialsMatrix(17, 19, phase + 3);
    ExpectPackedMatchesAxpy("MatMul(specials)",
                            [&] { return MatMul(a, b); });
    Matrix at = SpecialsMatrix(17, 7, phase + 5);
    ExpectPackedMatchesAxpy("MatMulTransA(specials)",
                            [&] { return MatMulTransA(at, b); });
    Matrix bt = SpecialsMatrix(19, 17, phase + 7);
    ExpectPackedMatchesAxpy("MatMulTransB(specials)",
                            [&] { return MatMulTransB(a, bt); });
  }
}

TEST(PackedGemmTest, AutoPathIsBitIdenticalToBothForcedPaths) {
  // kAuto routes by size; whatever it picks must not change bits. One
  // shape under (64² × 64 × 2 = 512k flops) each side of the threshold.
  for (int dim : {24, 96}) {
    Matrix a = SpicyMatrix(dim, dim, 2400 + dim);
    Matrix b = SpicyMatrix(dim, dim, 2500 + dim);
    BackendGuard guard;
    FastMathGuard exact(false);
    Matrix auto_c = [&] {
      GemmPathGuard path(GemmPath::kAuto);
      return MatMul(a, b);
    }();
    {
      GemmPathGuard path(GemmPath::kAxpy);
      EXPECT_TRUE(BitEqual(MatMul(a, b), auto_c)) << "axpy dim=" << dim;
    }
    {
      GemmPathGuard path(GemmPath::kPacked);
      EXPECT_TRUE(BitEqual(MatMul(a, b), auto_c)) << "packed dim=" << dim;
    }
  }
}

TEST(PackedGemmTest, FastMathTierStaysCloseToExact) {
  // The fast tier (BGC_FAST_MATH=1) may fuse mul+add but must stay within
  // a tight relative band of the exact tier. On backends without a fast
  // tile (scalar, sse2) it falls back to the exact tile and the results
  // are identical — AllClose holds trivially.
  BackendGuard guard;
  GemmPathGuard path(GemmPath::kPacked);
  Rng rng(42);
  Matrix a = Matrix::RandomNormal(33, 47, rng);
  Matrix b = Matrix::RandomNormal(47, 29, rng);
  Matrix exact = [&] {
    FastMathGuard off(false);
    return MatMul(a, b);
  }();
  // Band sized for float32 dot products over k = 47 terms of magnitude
  // ~N(0,1): the absolute error of either tier is a few ulp of the
  // intermediate partial sums (~1e-5), which dominates atol for outputs
  // that cancel to near zero. A broken kernel is off by O(1).
  FastMathGuard on(true);
  Matrix fast = MatMul(a, b);
  EXPECT_TRUE(AllClose(fast, exact, 1e-4f, 1e-4f));
  for (simd::Backend bk : VectorBackends()) {
    simd::SetBackendForTesting(bk);
    EXPECT_TRUE(AllClose(MatMul(a, b), exact, 1e-4f, 1e-4f))
        << "fast tier under " << simd::BackendName(bk);
  }
}

TEST(PackedGemmTest, SetFastMathForTestingRoundTrips) {
  const bool entry = simd::SetFastMathForTesting(true);
  EXPECT_TRUE(simd::FastMathEnabled());
  EXPECT_TRUE(simd::SetFastMathForTesting(false));
  EXPECT_FALSE(simd::FastMathEnabled());
  simd::SetFastMathForTesting(entry);
}

}  // namespace
}  // namespace bgc
