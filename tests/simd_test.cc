#include "src/tensor/simd/simd.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/rng.h"
#include "src/graph/csr.h"
#include "src/tensor/matrix.h"
#include "src/tensor/matrix_ops.h"

namespace bgc {
namespace {

// Column counts straddling every lane-width boundary: scalar (1), below /
// at / above the SSE2 width (7, 8, 9 with a 4-lane tail mix), and below /
// at / above the AVX2 width (63, 64, 65).
const int kSizes[] = {1, 7, 8, 9, 63, 64, 65};

std::vector<simd::Backend> VectorBackends() {
  std::vector<simd::Backend> out;
  for (simd::Backend b : {simd::Backend::kSse2, simd::Backend::kAvx2}) {
    if (simd::TableFor(b) != nullptr) out.push_back(b);
  }
  return out;
}

// Restores the entry backend even when an assertion fails mid-test.
class BackendGuard {
 public:
  BackendGuard() : saved_(simd::Active()) {}
  ~BackendGuard() { simd::SetBackendForTesting(saved_); }

 private:
  simd::Backend saved_;
};

::testing::AssertionResult BitEqual(const Matrix& a, const Matrix& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << a.rows() << "x" << a.cols() << " vs "
           << b.rows() << "x" << b.cols();
  }
  size_t bytes = static_cast<size_t>(a.rows()) * a.cols() * sizeof(float);
  if (bytes == 0 || std::memcmp(a.data(), b.data(), bytes) == 0) {
    return ::testing::AssertionSuccess();
  }
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      float x = a.At(i, j), y = b.At(i, j);
      if (std::memcmp(&x, &y, sizeof(float)) != 0) {
        return ::testing::AssertionFailure()
               << "first bit difference at (" << i << ", " << j
               << "): " << x << " vs " << y;
      }
    }
  }
  return ::testing::AssertionFailure() << "memcmp mismatch (padding?)";
}

// Runs `op` once under the scalar backend and once under each compiled
// vector backend, asserting byte-identical results.
template <typename Op>
void ExpectBackendsBitEqual(const char* what, Op op) {
  BackendGuard guard;
  simd::SetBackendForTesting(simd::Backend::kScalar);
  Matrix ref = op();
  for (simd::Backend b : VectorBackends()) {
    simd::SetBackendForTesting(b);
    EXPECT_TRUE(BitEqual(op(), ref))
        << what << " under " << simd::BackendName(b);
  }
}

// Mixes magnitudes (denormal-adjacent through large) so mul/add rounding
// actually differs between orderings if a kernel gets the sequence wrong.
Matrix SpicyMatrix(int rows, int cols, uint64_t seed) {
  Rng rng(seed);
  Matrix m = Matrix::RandomNormal(rows, cols, rng);
  for (int i = 0; i < rows; ++i) {
    for (int j = 0; j < cols; ++j) {
      int k = (i * cols + j) % 7;
      if (k == 3) m.At(i, j) *= 1e6f;
      if (k == 5) m.At(i, j) *= 1e-6f;
      if (k == 6) m.At(i, j) = 0.0f;  // exercises the GEMM zero-skip paths
    }
  }
  return m;
}

TEST(SimdDispatchTest, ScalarAlwaysAvailable) {
  EXPECT_TRUE(simd::Compiled(simd::Backend::kScalar));
  EXPECT_TRUE(simd::CpuSupports(simd::Backend::kScalar));
  ASSERT_NE(simd::TableFor(simd::Backend::kScalar), nullptr);
  EXPECT_EQ(simd::TableFor(simd::Backend::kScalar)->backend,
            simd::Backend::kScalar);
}

TEST(SimdDispatchTest, ActiveMatchesKernelsTable) {
  EXPECT_EQ(simd::Kernels().backend, simd::Active());
  EXPECT_STREQ(simd::Kernels().name, simd::BackendName(simd::Active()));
}

TEST(SimdDispatchTest, TableForRequiresCompiledAndSupported) {
  for (simd::Backend b :
       {simd::Backend::kScalar, simd::Backend::kSse2, simd::Backend::kAvx2}) {
    const simd::KernelTable* t = simd::TableFor(b);
    if (simd::Compiled(b) && simd::CpuSupports(b)) {
      ASSERT_NE(t, nullptr) << simd::BackendName(b);
      EXPECT_EQ(t->backend, b);
      EXPECT_STREQ(t->name, simd::BackendName(b));
    } else {
      EXPECT_EQ(t, nullptr) << simd::BackendName(b);
    }
  }
}

TEST(SimdDispatchTest, ParseBackendAcceptsKnownNames) {
  simd::Backend b;
  ASSERT_TRUE(simd::ParseBackend("scalar", &b));
  EXPECT_EQ(b, simd::Backend::kScalar);
  ASSERT_TRUE(simd::ParseBackend("sse2", &b));
  EXPECT_EQ(b, simd::Backend::kSse2);
  ASSERT_TRUE(simd::ParseBackend("avx2", &b));
  EXPECT_EQ(b, simd::Backend::kAvx2);
  // "native" resolves to the best compiled+supported backend.
  ASSERT_TRUE(simd::ParseBackend("native", &b));
  EXPECT_NE(simd::TableFor(b), nullptr);
}

TEST(SimdDispatchTest, ParseBackendRejectsUnknownNames) {
  simd::Backend b;
  EXPECT_FALSE(simd::ParseBackend("", &b));
  EXPECT_FALSE(simd::ParseBackend("avx512", &b));
  EXPECT_FALSE(simd::ParseBackend("Scalar", &b));
  EXPECT_FALSE(simd::ParseBackend("sse", &b));
}

TEST(SimdDispatchTest, SetBackendForTestingRoundTrips) {
  BackendGuard guard;
  simd::Backend entry = simd::Active();
  simd::Backend prev = simd::SetBackendForTesting(simd::Backend::kScalar);
  EXPECT_EQ(prev, entry);
  EXPECT_EQ(simd::Active(), simd::Backend::kScalar);
  EXPECT_EQ(simd::Kernels().backend, simd::Backend::kScalar);
}

TEST(SimdBitEqualTest, MatMul) {
  for (int m : kSizes) {
    Matrix a = SpicyMatrix(5, 9, 100 + m);
    Matrix b = SpicyMatrix(9, m, 200 + m);
    ExpectBackendsBitEqual("MatMul", [&] { return MatMul(a, b); });
  }
}

TEST(SimdBitEqualTest, MatMulTransA) {
  for (int m : kSizes) {
    Matrix a = SpicyMatrix(9, 5, 300 + m);
    Matrix b = SpicyMatrix(9, m, 400 + m);
    ExpectBackendsBitEqual("MatMulTransA", [&] { return MatMulTransA(a, b); });
  }
}

TEST(SimdBitEqualTest, MatMulTransB) {
  for (int m : kSizes) {
    Matrix a = SpicyMatrix(5, 9, 500 + m);
    Matrix b = SpicyMatrix(m, 9, 600 + m);
    ExpectBackendsBitEqual("MatMulTransB", [&] { return MatMulTransB(a, b); });
  }
}

TEST(SimdBitEqualTest, SpmmForwardAndTransposed) {
  Rng rng(7);
  Matrix dense_adj = Matrix::RandomUniform(12, 12, rng, 0.0f, 1.0f);
  graph::CsrMatrix adj = graph::CsrMatrix::FromDense(dense_adj, 0.6f);
  ASSERT_GT(adj.nnz(), 0);
  for (int m : kSizes) {
    Matrix x = SpicyMatrix(12, m, 700 + m);
    ExpectBackendsBitEqual("CsrMatrix::Multiply",
                           [&] { return adj.Multiply(x); });
    ExpectBackendsBitEqual("CsrMatrix::MultiplyTransposed",
                           [&] { return adj.MultiplyTransposed(x); });
  }
}

TEST(SimdBitEqualTest, ElementwiseOps) {
  for (int m : kSizes) {
    Matrix a = SpicyMatrix(4, m, 800 + m);
    Matrix b = SpicyMatrix(4, m, 900 + m);
    Matrix bias = SpicyMatrix(1, m, 1000 + m);
    ExpectBackendsBitEqual("Add", [&] { return Add(a, b); });
    ExpectBackendsBitEqual("Sub", [&] { return Sub(a, b); });
    ExpectBackendsBitEqual("Hadamard", [&] { return Hadamard(a, b); });
    ExpectBackendsBitEqual("Scale", [&] { return Scale(a, 1.7f); });
    ExpectBackendsBitEqual("Relu", [&] { return Relu(a); });
    ExpectBackendsBitEqual("Clamp", [&] { return Clamp(a, -0.5f, 0.5f); });
    ExpectBackendsBitEqual("AddRowBroadcast",
                           [&] { return AddRowBroadcast(a, bias); });
    ExpectBackendsBitEqual("AddScaledInPlace", [&] {
      Matrix c = a;
      AddScaledInPlace(c, b, 0.3f);
      return c;
    });
    ExpectBackendsBitEqual("ScaleInPlace", [&] {
      Matrix c = a;
      ScaleInPlace(c, -2.5f);
      return c;
    });
  }
}

TEST(SimdBitEqualTest, ReluAndClampSpecialBitPatterns) {
  // std::max(0.0f, x) maps NaN and -0.0f to +0.0f; std::min(hi,
  // std::max(lo, x)) maps NaN to lo. The vector paths must reproduce
  // those exact bits in every lane position, so tile the specials across
  // more than one vector width.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const float specials[] = {nan,  -nan, inf,   -inf, 0.0f, -0.0f,
                            1.0f, -1.0f, 1e-40f, -1e-40f, 2.0f, -2.0f};
  Matrix a(3, 24);
  for (int i = 0; i < a.rows(); ++i) {
    for (int j = 0; j < a.cols(); ++j) {
      a.At(i, j) = specials[(i * 5 + j) % 12];
    }
  }
  ExpectBackendsBitEqual("Relu(specials)", [&] { return Relu(a); });
  ExpectBackendsBitEqual("Clamp(specials)",
                         [&] { return Clamp(a, -1.5f, 1.5f); });
}

TEST(SimdBitEqualTest, TransposeAndReductions) {
  for (int m : kSizes) {
    Matrix a = SpicyMatrix(6, m, 1100 + m);
    ExpectBackendsBitEqual("Transpose", [&] { return Transpose(a); });
    ExpectBackendsBitEqual("RowSum", [&] { return RowSum(a); });
    ExpectBackendsBitEqual("ColSum", [&] { return ColSum(a); });
    ExpectBackendsBitEqual("RowNorm", [&] { return RowNorm(a); });
  }
}

TEST(SimdBitEqualTest, ScalarReductionsMatchAcrossBackends) {
  BackendGuard guard;
  for (int m : kSizes) {
    Matrix a = SpicyMatrix(6, m, 1200 + m);
    simd::SetBackendForTesting(simd::Backend::kScalar);
    float max_abs_ref = MaxAbs(a);
    float sum_ref = Sum(a);
    float dot_ref = Dot(a, a);
    for (simd::Backend b : VectorBackends()) {
      simd::SetBackendForTesting(b);
      float max_abs_v = MaxAbs(a);
      float sum_v = Sum(a);
      float dot_v = Dot(a, a);
      EXPECT_EQ(std::memcmp(&max_abs_v, &max_abs_ref, sizeof(float)), 0)
          << "MaxAbs under " << simd::BackendName(b);
      EXPECT_EQ(std::memcmp(&sum_v, &sum_ref, sizeof(float)), 0)
          << "Sum under " << simd::BackendName(b);
      EXPECT_EQ(std::memcmp(&dot_v, &dot_ref, sizeof(float)), 0)
          << "Dot under " << simd::BackendName(b);
    }
  }
}

TEST(SimdBitEqualTest, MaxAbsNanPropagatesIdenticallyInEveryLane) {
  BackendGuard guard;
  const float canonical = std::numeric_limits<float>::quiet_NaN();
  // A NaN in each possible lane position of a 9-wide row (hits both AVX2
  // body lanes and the scalar tail).
  for (int pos = 0; pos < 9; ++pos) {
    Matrix a = SpicyMatrix(1, 9, 1300 + pos);
    a.At(0, pos) = -std::numeric_limits<float>::quiet_NaN();
    simd::SetBackendForTesting(simd::Backend::kScalar);
    float ref = MaxAbs(a);
    EXPECT_EQ(std::memcmp(&ref, &canonical, sizeof(float)), 0)
        << "scalar MaxAbs must return the canonical quiet NaN";
    for (simd::Backend b : VectorBackends()) {
      simd::SetBackendForTesting(b);
      float v = MaxAbs(a);
      EXPECT_EQ(std::memcmp(&v, &ref, sizeof(float)), 0)
          << "NaN at lane " << pos << " under " << simd::BackendName(b);
    }
  }
}

TEST(SimdKernelTest, RawKernelsTolerateZeroLength) {
  for (simd::Backend b :
       {simd::Backend::kScalar, simd::Backend::kSse2, simd::Backend::kAvx2}) {
    const simd::KernelTable* t = simd::TableFor(b);
    if (t == nullptr) continue;
    t->axpy(nullptr, nullptr, 2.0f, 0);
    t->add(nullptr, nullptr, 0);
    t->sub(nullptr, nullptr, 0);
    t->mul(nullptr, nullptr, 0);
    t->scale(nullptr, 3.0f, 0);
    t->relu(nullptr, 0);
    t->clamp(nullptr, -1.0f, 1.0f, 0);
    float m = t->max_abs(nullptr, 0);
    EXPECT_EQ(m, 0.0f) << simd::BackendName(b);
  }
}

}  // namespace
}  // namespace bgc
