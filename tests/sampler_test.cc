// Property + determinism tests for the neighbor sampler (src/nn/sampler).
//
// The sampler underwrites the minibatch determinism contract (DESIGN.md
// §13): Batch(epoch, b) must be a pure function of (seed, epoch, b) and
// the graph. Tests here verify the structural properties every batch must
// satisfy (fanout caps, reachability, symmetry, no duplicate edges) and
// pin a digest of a fixed-seed batch stream as a golden value, so the
// stream itself — not just its shape — is locked. tools/ci.sh reruns this
// binary under BGC_NUM_THREADS=1/2/8; the pinned digest then enforces
// cross-thread and cross-process bit-identity.

#include <cstdint>
#include <ios>
#include <memory>
#include <queue>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/graph/partition.h"
#include "src/nn/sampler.h"

namespace bgc::nn {
namespace {

graph::CsrMatrix StarGraph(int leaves) {
  std::vector<graph::Edge> edges;
  for (int i = 1; i <= leaves; ++i) edges.push_back({0, i, 1.0f});
  return graph::CsrMatrix::FromEdges(leaves + 1, leaves + 1, edges,
                                     /*symmetrize=*/true);
}

// FNV-1a over the full content of a batch: node ids, hops, and the CSR
// arrays (values bit-cast). Any reordering or resampling changes this.
uint64_t DigestBatch(uint64_t h, const MiniBatch& mb) {
  const auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<uint64_t>(mb.num_seeds));
  for (int v : mb.nodes) mix(static_cast<uint64_t>(v));
  for (int v : mb.hop) mix(static_cast<uint64_t>(v));
  for (int v : mb.adj.row_ptr()) mix(static_cast<uint64_t>(v));
  for (int v : mb.adj.col_idx()) mix(static_cast<uint64_t>(v));
  for (float v : mb.adj.values()) {
    uint32_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    __builtin_memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
  return h;
}

TEST(SamplerTest, StarGraphRespectsFanoutExactly) {
  const graph::CsrMatrix adj = StarGraph(100);
  graph::CsrNeighborSource source(adj);
  SamplerConfig cfg;
  cfg.fanout = {7};
  cfg.batch_size = 1;
  cfg.seed = 5;
  NeighborSampler sampler(source, cfg, {0});
  const MiniBatch mb = sampler.Batch(/*epoch=*/0, /*batch=*/0);
  // Center has degree 100 > 7: exactly 7 sampled leaves join the batch.
  EXPECT_EQ(mb.num_seeds, 1);
  ASSERT_EQ(static_cast<int>(mb.nodes.size()), 8);
  EXPECT_EQ(mb.nodes[0], 0);
  EXPECT_EQ(mb.adj.RowNnz(0), 7);  // center connects to each sampled leaf
  for (int i = 1; i < 8; ++i) {
    EXPECT_EQ(mb.hop[i], 1);
    EXPECT_EQ(mb.adj.RowNnz(i), 1);  // leaves connect back to the center
  }
}

TEST(SamplerTest, SmallDegreeTakesAllNeighbors) {
  const graph::CsrMatrix adj = StarGraph(4);
  graph::CsrNeighborSource source(adj);
  SamplerConfig cfg;
  cfg.fanout = {10};
  cfg.batch_size = 1;
  NeighborSampler sampler(source, cfg, {0});
  const MiniBatch mb = sampler.Batch(0, 0);
  // Degree 4 <= fanout 10: the full neighborhood is kept.
  EXPECT_EQ(static_cast<int>(mb.nodes.size()), 5);
  EXPECT_EQ(mb.adj.RowNnz(0), 4);
}

class SamplerPropertyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = data::MakeDataset("tiny-sim", /*seed=*/11);
    source_ = std::make_unique<graph::CsrNeighborSource>(ds_.adj);
    cfg_.fanout = {4, 3};
    cfg_.batch_size = 8;
    cfg_.seed = 17;
    sampler_ = std::make_unique<NeighborSampler>(*source_, cfg_,
                                                 ds_.train_idx);
  }

  data::GraphDataset ds_;
  std::unique_ptr<graph::CsrNeighborSource> source_;
  SamplerConfig cfg_;
  std::unique_ptr<NeighborSampler> sampler_;
};

TEST_F(SamplerPropertyTest, EveryBatchSatisfiesStructuralInvariants) {
  // Worst-case node count: every frontier node brings fanout[l] fresh
  // nodes at every layer.
  size_t bound = cfg_.batch_size;
  size_t frontier = cfg_.batch_size;
  for (int f : cfg_.fanout) {
    frontier *= f;
    bound += frontier;
  }
  for (int epoch = 0; epoch < 3; ++epoch) {
    for (int b = 0; b < sampler_->num_batches(); ++b) {
      const MiniBatch mb = sampler_->Batch(epoch, b);
      ASSERT_GT(mb.num_seeds, 0);
      ASSERT_LE(mb.nodes.size(), bound);
      ASSERT_EQ(mb.nodes.size(), mb.hop.size());
      ASSERT_EQ(mb.adj.rows(), static_cast<int>(mb.nodes.size()));
      ASSERT_EQ(mb.adj.rows(), mb.adj.cols());

      // No node appears twice; every global id is in range.
      std::set<int> uniq(mb.nodes.begin(), mb.nodes.end());
      ASSERT_EQ(uniq.size(), mb.nodes.size());
      for (int v : mb.nodes) {
        ASSERT_GE(v, 0);
        ASSERT_LT(v, ds_.num_nodes());
      }

      // Seeds first at hop 0; hops bounded by the layer count.
      for (int i = 0; i < mb.num_seeds; ++i) ASSERT_EQ(mb.hop[i], 0);
      for (size_t i = mb.num_seeds; i < mb.hop.size(); ++i) {
        ASSERT_GE(mb.hop[i], 1);
        ASSERT_LE(mb.hop[i], static_cast<int>(cfg_.fanout.size()));
      }

      // Symmetric adjacency, unit weights (FromEdges sums duplicate
      // coordinates, so any weight != 1 means the dedup failed), and
      // every edge present in the source graph.
      for (int u = 0; u < mb.adj.rows(); ++u) {
        for (int k = mb.adj.row_ptr()[u]; k < mb.adj.row_ptr()[u + 1]; ++k) {
          const int v = mb.adj.col_idx()[k];
          ASSERT_EQ(mb.adj.values()[k], 1.0f);
          ASSERT_NE(u, v);
          ASSERT_EQ(mb.adj.At(v, u), 1.0f) << "asymmetric edge";
          ASSERT_NE(ds_.adj.At(mb.nodes[u], mb.nodes[v]), 0.0f)
              << "edge not present in the source graph";
        }
      }

      // Every sampled node is reachable from some seed within
      // fanout.size() hops of the batch subgraph.
      std::vector<int> dist(mb.adj.rows(), -1);
      std::queue<int> q;
      for (int i = 0; i < mb.num_seeds; ++i) {
        dist[i] = 0;
        q.push(i);
      }
      while (!q.empty()) {
        const int u = q.front();
        q.pop();
        for (int k = mb.adj.row_ptr()[u]; k < mb.adj.row_ptr()[u + 1]; ++k) {
          const int v = mb.adj.col_idx()[k];
          if (dist[v] < 0) {
            dist[v] = dist[u] + 1;
            q.push(v);
          }
        }
      }
      for (int i = 0; i < mb.adj.rows(); ++i) {
        ASSERT_GE(dist[i], 0) << "node " << i << " unreachable from seeds";
        ASSERT_LE(dist[i], static_cast<int>(cfg_.fanout.size()));
      }
    }
  }
}

TEST_F(SamplerPropertyTest, EpochZeroCoversEverySeedOnce) {
  std::multiset<int> seen;
  for (int b = 0; b < sampler_->num_batches(); ++b) {
    const MiniBatch mb = sampler_->Batch(0, b);
    for (int i = 0; i < mb.num_seeds; ++i) seen.insert(mb.nodes[i]);
  }
  std::multiset<int> want(ds_.train_idx.begin(), ds_.train_idx.end());
  EXPECT_EQ(seen, want);
}

TEST_F(SamplerPropertyTest, EpochsShuffleButRerunsAgree) {
  const MiniBatch a0 = sampler_->Batch(0, 0);
  const MiniBatch a1 = sampler_->Batch(1, 0);
  // Different epochs reshuffle the seed order (astronomically unlikely to
  // coincide for 30 train seeds).
  EXPECT_NE(a0.nodes, a1.nodes);

  // A second sampler over the same inputs reproduces both, in any order.
  NeighborSampler again(*source_, cfg_, ds_.train_idx);
  const MiniBatch b1 = again.Batch(1, 0);
  const MiniBatch b0 = again.Batch(0, 0);
  EXPECT_EQ(DigestBatch(0xcbf29ce484222325ULL, a0),
            DigestBatch(0xcbf29ce484222325ULL, b0));
  EXPECT_EQ(DigestBatch(0xcbf29ce484222325ULL, a1),
            DigestBatch(0xcbf29ce484222325ULL, b1));
}

// The full fixed-seed batch stream, pinned bit-for-bit. tools/ci.sh runs
// this binary under BGC_NUM_THREADS=1/2/8, so the constant also proves the
// sampler never depends on the thread pool. Regenerate (and justify in the
// commit message) only after an intentional sampling-stream change:
//   the failure message prints the fresh digest.
TEST_F(SamplerPropertyTest, FixedSeedBatchStreamDigestIsPinned) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (int epoch = 0; epoch < 2; ++epoch) {
    for (int b = 0; b < sampler_->num_batches(); ++b) {
      h = DigestBatch(h, sampler_->Batch(epoch, b));
    }
  }
  constexpr uint64_t kGoldenDigest = 0xd94e072e2829c971ULL;
  EXPECT_EQ(h, kGoldenDigest) << "fresh digest: 0x" << std::hex << h;
}

TEST(SamplerTest, SampleForSeedsIsDecoupledFromTraining) {
  const graph::CsrMatrix adj = StarGraph(64);
  graph::CsrNeighborSource source(adj);
  SamplerConfig cfg;
  cfg.fanout = {8};
  cfg.batch_size = 4;
  cfg.seed = 9;
  NeighborSampler sampler(source, cfg, {0, 1, 2, 3});
  const MiniBatch train = sampler.Batch(0, 0);
  const MiniBatch infer =
      sampler.SampleForSeeds({0, 1, 2, 3}, /*purpose=*/0x1234, /*batch=*/0);
  // Caller-given seed order is preserved (no epoch shuffle)...
  EXPECT_EQ(std::vector<int>(infer.nodes.begin(), infer.nodes.begin() + 4),
            (std::vector<int>{0, 1, 2, 3}));
  // ...and the stream differs from the training batch purpose.
  EXPECT_NE(DigestBatch(0xcbf29ce484222325ULL, train),
            DigestBatch(0xcbf29ce484222325ULL, infer));
}

}  // namespace
}  // namespace bgc::nn
