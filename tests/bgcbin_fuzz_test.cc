// Deterministic fuzz-style negative tests for the bgcbin container parser.
//
// A hostile or corrupted artifact file must never crash the process or load
// silently wrong data: BgcbinReader::Parse and the serialize.h loaders have
// to reject every mutant with a Status. The sweeps below are exhaustive
// (every truncation length, every byte position) rather than random, so a
// failure is reproducible from the test name alone. The suite carries the
// `sanitizer` ctest label and is part of the ASan matrix in tools/ci.sh,
// where an out-of-bounds read in the parser becomes a hard failure.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/store/bgcbin.h"
#include "src/store/serialize.h"

namespace bgc::store {
namespace {

std::string ValidContainer() {
  BgcbinWriter writer;
  SectionWriter& kind = writer.AddSection("kind");
  kind.PutString("bgc.fuzz.fixture");
  SectionWriter& payload = writer.AddSection("payload");
  payload.PutU32(0xdeadbeef);
  for (int i = 0; i < 64; ++i) payload.PutF32(static_cast<float>(i) * 0.5f);
  SectionWriter& tail = writer.AddSection("tail");
  tail.PutString("trailing section to give the table three entries");
  return writer.Serialize();
}

TEST(BgcbinFuzzTest, FixtureParses) {
  StatusOr<BgcbinReader> reader = BgcbinReader::Parse(ValidContainer(), "ok");
  ASSERT_TRUE(reader.ok()) << reader.status().message();
  EXPECT_EQ(reader.value().SectionNames().size(), 3u);
}

TEST(BgcbinFuzzTest, EveryTruncationIsRejected) {
  const std::string bytes = ValidContainer();
  for (size_t len = 0; len < bytes.size(); ++len) {
    StatusOr<BgcbinReader> reader =
        BgcbinReader::Parse(bytes.substr(0, len), "trunc");
    EXPECT_FALSE(reader.ok())
        << "container truncated to " << len << " of " << bytes.size()
        << " bytes parsed successfully";
  }
}

TEST(BgcbinFuzzTest, EverySingleBitFlipIsRejected) {
  const std::string bytes = ValidContainer();
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutant = bytes;
      mutant[pos] = static_cast<char>(mutant[pos] ^ (1 << bit));
      StatusOr<BgcbinReader> reader =
          BgcbinReader::Parse(std::move(mutant), "bitflip");
      EXPECT_FALSE(reader.ok())
          << "bit " << bit << " of byte " << pos << " flipped unnoticed";
    }
  }
}

TEST(BgcbinFuzzTest, EveryByteOverwriteIsRejected) {
  const std::string bytes = ValidContainer();
  // Overwrite each byte with values likely to be structurally interesting
  // (zero, all-ones, off-by-one of the original).
  const uint8_t kProbes[] = {0x00, 0xff, 0x01, 0x80};
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (uint8_t probe : kProbes) {
      if (static_cast<uint8_t>(bytes[pos]) == probe) continue;
      std::string mutant = bytes;
      mutant[pos] = static_cast<char>(probe);
      StatusOr<BgcbinReader> reader =
          BgcbinReader::Parse(std::move(mutant), "overwrite");
      EXPECT_FALSE(reader.ok())
          << "byte " << pos << " overwritten with " << int(probe)
          << " unnoticed";
    }
  }
}

TEST(BgcbinFuzzTest, EmptyAndGarbageInputsAreRejected) {
  EXPECT_FALSE(BgcbinReader::Parse("", "empty").ok());
  EXPECT_FALSE(BgcbinReader::Parse("BGCBIN", "magic-only").ok());
  EXPECT_FALSE(BgcbinReader::Parse(std::string(1024, '\0'), "zeros").ok());
  EXPECT_FALSE(
      BgcbinReader::Parse(std::string(1024, '\xff'), "ones").ok());
  std::string wrong_magic = ValidContainer();
  wrong_magic[0] = 'X';
  EXPECT_FALSE(BgcbinReader::Parse(std::move(wrong_magic), "magic").ok());
}

TEST(BgcbinFuzzTest, FutureVersionIsRejected) {
  std::string bytes = ValidContainer();
  bytes[6] = 2;  // version u16 little-endian at offset 6
  bytes[7] = 0;
  StatusOr<BgcbinReader> reader = BgcbinReader::Parse(std::move(bytes), "v2");
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("version"), std::string::npos);
}

TEST(BgcbinFuzzTest, DuplicatedPayloadBytesAreRejected) {
  // Appending data after the declared payloads must fail the size check.
  std::string bytes = ValidContainer();
  bytes += "extra";
  EXPECT_FALSE(BgcbinReader::Parse(std::move(bytes), "appended").ok());
}

// --- Adversarial containers with *valid* checksums: the table parses, so
// the typed section decoders are the last line of defense. ---

/// A container whose single "m" section claims a huge matrix with almost no
/// payload behind it. Checksums are honest; only the dimensions lie.
TEST(BgcbinFuzzTest, AbsurdMatrixDimensionsAreRejected) {
  struct Case {
    int32_t rows, cols;
  };
  const Case cases[] = {
      {0x40000000, 0x40000000},  // ~4.6e18 floats
      {-1, 4},
      {4, -1},
      {0x7fffffff, 0x7fffffff},
  };
  for (const Case& c : cases) {
    BgcbinWriter writer;
    SectionWriter& s = writer.AddSection("m");
    s.PutI32(c.rows);
    s.PutI32(c.cols);
    s.PutF32(1.0f);  // far fewer than rows*cols floats
    StatusOr<BgcbinReader> reader =
        BgcbinReader::Parse(writer.Serialize(), "absurd-matrix");
    ASSERT_TRUE(reader.ok()) << reader.status().message();
    StatusOr<SectionReader> section = reader.value().Section("m");
    ASSERT_TRUE(section.ok());
    SectionReader r = section.take();
    Matrix m = GetMatrix(r);
    EXPECT_FALSE(r.ok())
        << "matrix " << c.rows << "x" << c.cols << " decoded successfully";
    EXPECT_EQ(m.rows(), 0);
  }
}

TEST(BgcbinFuzzTest, AbsurdCsrEdgeCountIsRejected) {
  BgcbinWriter writer;
  SectionWriter& s = writer.AddSection("adj");
  s.PutI32(4);
  s.PutI32(4);
  s.PutU64(0xffffffffffffULL);  // claims ~2.8e14 edges
  s.PutI32(0);
  s.PutI32(1);
  s.PutF32(1.0f);
  StatusOr<BgcbinReader> reader =
      BgcbinReader::Parse(writer.Serialize(), "absurd-csr");
  ASSERT_TRUE(reader.ok());
  SectionReader r = reader.value().Section("adj").take();
  GetCsr(r);
  EXPECT_FALSE(r.ok());
}

TEST(BgcbinFuzzTest, CsrEdgeEndpointOutOfRangeIsRejected) {
  BgcbinWriter writer;
  SectionWriter& s = writer.AddSection("adj");
  s.PutI32(4);
  s.PutI32(4);
  s.PutU64(1);
  s.PutI32(2);
  s.PutI32(17);  // dst outside the declared 4x4 shape
  s.PutF32(1.0f);
  StatusOr<BgcbinReader> reader =
      BgcbinReader::Parse(writer.Serialize(), "oob-edge");
  ASSERT_TRUE(reader.ok());
  SectionReader r = reader.value().Section("adj").take();
  GetCsr(r);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos);
}

TEST(BgcbinFuzzTest, AbsurdVectorLengthsAreRejected) {
  BgcbinWriter writer;
  SectionWriter& iv = writer.AddSection("ints");
  iv.PutU64(0x1000000000ULL);
  iv.PutI32(7);
  SectionWriter& uv = writer.AddSection("u64s");
  uv.PutU64(0x1000000000ULL);
  uv.PutU64(7);
  StatusOr<BgcbinReader> reader =
      BgcbinReader::Parse(writer.Serialize(), "absurd-vec");
  ASSERT_TRUE(reader.ok());
  {
    SectionReader r = reader.value().Section("ints").take();
    GetIntVector(r);
    EXPECT_FALSE(r.ok());
  }
  {
    SectionReader r = reader.value().Section("u64s").take();
    GetU64Vector(r);
    EXPECT_FALSE(r.ok());
  }
}

TEST(BgcbinFuzzTest, StringLengthPastPayloadIsRejected) {
  BgcbinWriter writer;
  SectionWriter& s = writer.AddSection("str");
  s.PutU32(0x7fffffff);  // string length far beyond the payload
  s.PutBytes("abc", 3);
  StatusOr<BgcbinReader> reader =
      BgcbinReader::Parse(writer.Serialize(), "absurd-str");
  ASSERT_TRUE(reader.ok());
  SectionReader r = reader.value().Section("str").take();
  EXPECT_EQ(r.GetString(), "");
  EXPECT_FALSE(r.ok());
}

// --- File-level loaders: corrupted artifacts on disk surface a Status, and
// a full byte-flip sweep over a real dataset artifact never loads. ---

TEST(BgcbinFuzzTest, DatasetLoaderRejectsMutatedFile) {
  data::GraphDataset ds = data::MakeDataset("cora-sim", /*seed=*/3,
                                            /*scale=*/0.05);
  const std::string path =
      ::testing::TempDir() + "/bgcbin_fuzz_dataset.bgcbin";
  ASSERT_TRUE(SaveDatasetBinary(ds, path).ok());

  StatusOr<BgcbinReader> original = BgcbinReader::Open(path);
  ASSERT_TRUE(original.ok());

  // Re-serialize through Parse's own buffer to get the raw bytes.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::string bytes(static_cast<size_t>(std::ftell(f)), '\0');
  std::fseek(f, 0, SEEK_SET);
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);

  // Flip one bit every 97 bytes (a prime stride hits every region of the
  // container across the sweep without writing the file thousands of
  // times).
  const std::string mutant_path =
      ::testing::TempDir() + "/bgcbin_fuzz_dataset_mutant.bgcbin";
  for (size_t pos = 0; pos < bytes.size(); pos += 97) {
    std::string mutant = bytes;
    mutant[pos] = static_cast<char>(mutant[pos] ^ 0x10);
    std::FILE* out = std::fopen(mutant_path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(std::fwrite(mutant.data(), 1, mutant.size(), out),
              mutant.size());
    std::fclose(out);
    StatusOr<data::GraphDataset> loaded = TryLoadDatasetBinary(mutant_path);
    EXPECT_FALSE(loaded.ok()) << "byte " << pos << " flip loaded";
  }
  std::remove(mutant_path.c_str());
  std::remove(path.c_str());
}

TEST(BgcbinFuzzTest, MissingSectionSurfacesStatus) {
  BgcbinWriter writer;
  SectionWriter& kind = writer.AddSection("kind");
  kind.PutString("bgc.dataset");  // right kind, but no payload sections
  const std::string path =
      ::testing::TempDir() + "/bgcbin_fuzz_missing.bgcbin";
  ASSERT_TRUE(writer.WriteTo(path).ok());
  StatusOr<data::GraphDataset> loaded = TryLoadDatasetBinary(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace bgc::store
