// Deterministic fuzz-style negative tests for the bgcbin container parser.
//
// A hostile or corrupted artifact file must never crash the process or load
// silently wrong data: BgcbinReader::Parse and the serialize.h loaders have
// to reject every mutant with a Status. The sweeps below are exhaustive
// (every truncation length, every byte position) rather than random, so a
// failure is reproducible from the test name alone. The suite carries the
// `sanitizer` ctest label and is part of the ASan matrix in tools/ci.sh,
// where an out-of-bounds read in the parser becomes a hard failure.

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/data/mmap_dataset.h"
#include "src/data/synthetic.h"
#include "src/store/bgcbin.h"
#include "src/store/serialize.h"

namespace bgc::store {
namespace {

/// Per-test scratch directory. gtest_discover_tests runs every TEST in
/// its own process, so under `ctest -j` several of these sweeps execute
/// concurrently against the same temp root — fixed shared file names
/// raced (one process rewriting mmap_fuzz.bgcbin mid-sweep of another)
/// and made the suite flaky. Each test therefore gets a directory named
/// by suite, test, and pid, honoring TEST_TMPDIR / TMPDIR overrides.
std::string MakeUniqueTestDir() {
  std::string base;
  if (const char* env = std::getenv("TEST_TMPDIR"); env != nullptr) {
    base = env;
  } else if (const char* env = std::getenv("TMPDIR"); env != nullptr) {
    base = env;
  } else {
    base = ::testing::TempDir();
  }
  if (!base.empty() && base.back() != '/') base += '/';
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::string dir = base + "bgcbin_fuzz_";
  dir += info->test_suite_name();
  dir += '_';
  dir += info->name();
  dir += '_';
  dir += std::to_string(::getpid());
  ::mkdir(dir.c_str(), 0755);
  return dir;
}

void RemoveUniqueTestDir(const std::string& dir) { ::rmdir(dir.c_str()); }

std::string ValidContainer() {
  BgcbinWriter writer;
  SectionWriter& kind = writer.AddSection("kind");
  kind.PutString("bgc.fuzz.fixture");
  SectionWriter& payload = writer.AddSection("payload");
  payload.PutU32(0xdeadbeef);
  for (int i = 0; i < 64; ++i) payload.PutF32(static_cast<float>(i) * 0.5f);
  SectionWriter& tail = writer.AddSection("tail");
  tail.PutString("trailing section to give the table three entries");
  return writer.Serialize();
}

TEST(BgcbinFuzzTest, FixtureParses) {
  StatusOr<BgcbinReader> reader = BgcbinReader::Parse(ValidContainer(), "ok");
  ASSERT_TRUE(reader.ok()) << reader.status().message();
  EXPECT_EQ(reader.value().SectionNames().size(), 3u);
}

TEST(BgcbinFuzzTest, EveryTruncationIsRejected) {
  const std::string bytes = ValidContainer();
  for (size_t len = 0; len < bytes.size(); ++len) {
    StatusOr<BgcbinReader> reader =
        BgcbinReader::Parse(bytes.substr(0, len), "trunc");
    EXPECT_FALSE(reader.ok())
        << "container truncated to " << len << " of " << bytes.size()
        << " bytes parsed successfully";
  }
}

TEST(BgcbinFuzzTest, EverySingleBitFlipIsRejected) {
  const std::string bytes = ValidContainer();
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string mutant = bytes;
      mutant[pos] = static_cast<char>(mutant[pos] ^ (1 << bit));
      StatusOr<BgcbinReader> reader =
          BgcbinReader::Parse(std::move(mutant), "bitflip");
      EXPECT_FALSE(reader.ok())
          << "bit " << bit << " of byte " << pos << " flipped unnoticed";
    }
  }
}

TEST(BgcbinFuzzTest, EveryByteOverwriteIsRejected) {
  const std::string bytes = ValidContainer();
  // Overwrite each byte with values likely to be structurally interesting
  // (zero, all-ones, off-by-one of the original).
  const uint8_t kProbes[] = {0x00, 0xff, 0x01, 0x80};
  for (size_t pos = 0; pos < bytes.size(); ++pos) {
    for (uint8_t probe : kProbes) {
      if (static_cast<uint8_t>(bytes[pos]) == probe) continue;
      std::string mutant = bytes;
      mutant[pos] = static_cast<char>(probe);
      StatusOr<BgcbinReader> reader =
          BgcbinReader::Parse(std::move(mutant), "overwrite");
      EXPECT_FALSE(reader.ok())
          << "byte " << pos << " overwritten with " << int(probe)
          << " unnoticed";
    }
  }
}

TEST(BgcbinFuzzTest, EmptyAndGarbageInputsAreRejected) {
  EXPECT_FALSE(BgcbinReader::Parse("", "empty").ok());
  EXPECT_FALSE(BgcbinReader::Parse("BGCBIN", "magic-only").ok());
  EXPECT_FALSE(BgcbinReader::Parse(std::string(1024, '\0'), "zeros").ok());
  EXPECT_FALSE(
      BgcbinReader::Parse(std::string(1024, '\xff'), "ones").ok());
  std::string wrong_magic = ValidContainer();
  wrong_magic[0] = 'X';
  EXPECT_FALSE(BgcbinReader::Parse(std::move(wrong_magic), "magic").ok());
}

TEST(BgcbinFuzzTest, FutureVersionIsRejected) {
  std::string bytes = ValidContainer();
  bytes[6] = 2;  // version u16 little-endian at offset 6
  bytes[7] = 0;
  StatusOr<BgcbinReader> reader = BgcbinReader::Parse(std::move(bytes), "v2");
  ASSERT_FALSE(reader.ok());
  EXPECT_NE(reader.status().message().find("version"), std::string::npos);
}

TEST(BgcbinFuzzTest, DuplicatedPayloadBytesAreRejected) {
  // Appending data after the declared payloads must fail the size check.
  std::string bytes = ValidContainer();
  bytes += "extra";
  EXPECT_FALSE(BgcbinReader::Parse(std::move(bytes), "appended").ok());
}

// --- Adversarial containers with *valid* checksums: the table parses, so
// the typed section decoders are the last line of defense. ---

/// A container whose single "m" section claims a huge matrix with almost no
/// payload behind it. Checksums are honest; only the dimensions lie.
TEST(BgcbinFuzzTest, AbsurdMatrixDimensionsAreRejected) {
  struct Case {
    int32_t rows, cols;
  };
  const Case cases[] = {
      {0x40000000, 0x40000000},  // ~4.6e18 floats
      {-1, 4},
      {4, -1},
      {0x7fffffff, 0x7fffffff},
  };
  for (const Case& c : cases) {
    BgcbinWriter writer;
    SectionWriter& s = writer.AddSection("m");
    s.PutI32(c.rows);
    s.PutI32(c.cols);
    s.PutF32(1.0f);  // far fewer than rows*cols floats
    StatusOr<BgcbinReader> reader =
        BgcbinReader::Parse(writer.Serialize(), "absurd-matrix");
    ASSERT_TRUE(reader.ok()) << reader.status().message();
    StatusOr<SectionReader> section = reader.value().Section("m");
    ASSERT_TRUE(section.ok());
    SectionReader r = section.take();
    Matrix m = GetMatrix(r);
    EXPECT_FALSE(r.ok())
        << "matrix " << c.rows << "x" << c.cols << " decoded successfully";
    EXPECT_EQ(m.rows(), 0);
  }
}

TEST(BgcbinFuzzTest, AbsurdCsrEdgeCountIsRejected) {
  BgcbinWriter writer;
  SectionWriter& s = writer.AddSection("adj");
  s.PutI32(4);
  s.PutI32(4);
  s.PutU64(0xffffffffffffULL);  // claims ~2.8e14 edges
  s.PutI32(0);
  s.PutI32(1);
  s.PutF32(1.0f);
  StatusOr<BgcbinReader> reader =
      BgcbinReader::Parse(writer.Serialize(), "absurd-csr");
  ASSERT_TRUE(reader.ok());
  SectionReader r = reader.value().Section("adj").take();
  GetCsr(r);
  EXPECT_FALSE(r.ok());
}

TEST(BgcbinFuzzTest, CsrEdgeEndpointOutOfRangeIsRejected) {
  BgcbinWriter writer;
  SectionWriter& s = writer.AddSection("adj");
  s.PutI32(4);
  s.PutI32(4);
  s.PutU64(1);
  s.PutI32(2);
  s.PutI32(17);  // dst outside the declared 4x4 shape
  s.PutF32(1.0f);
  StatusOr<BgcbinReader> reader =
      BgcbinReader::Parse(writer.Serialize(), "oob-edge");
  ASSERT_TRUE(reader.ok());
  SectionReader r = reader.value().Section("adj").take();
  GetCsr(r);
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("out of range"), std::string::npos);
}

TEST(BgcbinFuzzTest, AbsurdVectorLengthsAreRejected) {
  BgcbinWriter writer;
  SectionWriter& iv = writer.AddSection("ints");
  iv.PutU64(0x1000000000ULL);
  iv.PutI32(7);
  SectionWriter& uv = writer.AddSection("u64s");
  uv.PutU64(0x1000000000ULL);
  uv.PutU64(7);
  StatusOr<BgcbinReader> reader =
      BgcbinReader::Parse(writer.Serialize(), "absurd-vec");
  ASSERT_TRUE(reader.ok());
  {
    SectionReader r = reader.value().Section("ints").take();
    GetIntVector(r);
    EXPECT_FALSE(r.ok());
  }
  {
    SectionReader r = reader.value().Section("u64s").take();
    GetU64Vector(r);
    EXPECT_FALSE(r.ok());
  }
}

TEST(BgcbinFuzzTest, StringLengthPastPayloadIsRejected) {
  BgcbinWriter writer;
  SectionWriter& s = writer.AddSection("str");
  s.PutU32(0x7fffffff);  // string length far beyond the payload
  s.PutBytes("abc", 3);
  StatusOr<BgcbinReader> reader =
      BgcbinReader::Parse(writer.Serialize(), "absurd-str");
  ASSERT_TRUE(reader.ok());
  SectionReader r = reader.value().Section("str").take();
  EXPECT_EQ(r.GetString(), "");
  EXPECT_FALSE(r.ok());
}

// --- File-level loaders: corrupted artifacts on disk surface a Status, and
// a full byte-flip sweep over a real dataset artifact never loads. ---

TEST(BgcbinFuzzTest, DatasetLoaderRejectsMutatedFile) {
  data::GraphDataset ds = data::MakeDataset("cora-sim", /*seed=*/3,
                                            /*scale=*/0.05);
  const std::string dir = MakeUniqueTestDir();
  const std::string path = dir + "/dataset.bgcbin";
  ASSERT_TRUE(SaveDatasetBinary(ds, path).ok());

  StatusOr<BgcbinReader> original = BgcbinReader::Open(path);
  ASSERT_TRUE(original.ok());

  // Re-serialize through Parse's own buffer to get the raw bytes.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  std::string bytes(static_cast<size_t>(std::ftell(f)), '\0');
  std::fseek(f, 0, SEEK_SET);
  ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);

  // Flip one bit every 97 bytes (a prime stride hits every region of the
  // container across the sweep without writing the file thousands of
  // times).
  const std::string mutant_path = dir + "/dataset_mutant.bgcbin";
  for (size_t pos = 0; pos < bytes.size(); pos += 97) {
    std::string mutant = bytes;
    mutant[pos] = static_cast<char>(mutant[pos] ^ 0x10);
    std::FILE* out = std::fopen(mutant_path.c_str(), "wb");
    ASSERT_NE(out, nullptr);
    ASSERT_EQ(std::fwrite(mutant.data(), 1, mutant.size(), out),
              mutant.size());
    std::fclose(out);
    StatusOr<data::GraphDataset> loaded = TryLoadDatasetBinary(mutant_path);
    EXPECT_FALSE(loaded.ok()) << "byte " << pos << " flip loaded";
  }
  std::remove(mutant_path.c_str());
  std::remove(path.c_str());
  RemoveUniqueTestDir(dir);
}

TEST(BgcbinFuzzTest, MissingSectionSurfacesStatus) {
  BgcbinWriter writer;
  SectionWriter& kind = writer.AddSection("kind");
  kind.PutString("bgc.dataset");  // right kind, but no payload sections
  const std::string dir = MakeUniqueTestDir();
  const std::string path = dir + "/missing.bgcbin";
  ASSERT_TRUE(writer.WriteTo(path).ok());
  StatusOr<data::GraphDataset> loaded = TryLoadDatasetBinary(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
  RemoveUniqueTestDir(dir);
}

// --- Mmap path (data::MmapDataset): the same corruption classes must
// surface as a Status at Open() or on a section's first touch — never as a
// SIGBUS, an ASan report, or silently wrong data. The sweeps run under the
// `sanitizer` label, so an out-of-bounds access in the lazy verifier is a
// hard failure in the ASan leg of tools/ci.sh. ---

class MmapFuzzTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ds_ = data::MakeDataset("tiny-sim", /*seed=*/3);
    dir_ = MakeUniqueTestDir();
    path_ = dir_ + "/mmap_fuzz.bgcbin";
    ASSERT_TRUE(SaveDatasetBinary(ds_, path_).ok());
    std::FILE* f = std::fopen(path_.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    bytes_.resize(static_cast<size_t>(std::ftell(f)));
    std::fseek(f, 0, SEEK_SET);
    ASSERT_EQ(std::fread(bytes_.data(), 1, bytes_.size(), f), bytes_.size());
    std::fclose(f);
    mutant_path_ = dir_ + "/mmap_fuzz_mutant.bgcbin";
  }

  void TearDown() override {
    std::remove(path_.c_str());
    std::remove(mutant_path_.c_str());
    RemoveUniqueTestDir(dir_);
  }

  void WriteMutant(const std::string& mutant) {
    std::FILE* f = std::fopen(mutant_path_.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(mutant.data(), 1, mutant.size(), f), mutant.size());
    std::fclose(f);
  }

  // Open + Warm: ok only when both the table parse, the eager small
  // sections, and the lazy adj/features verifications all pass.
  static Status OpenAndWarm(const std::string& path) {
    StatusOr<data::MmapDataset> opened = data::MmapDataset::Open(path);
    if (!opened.ok()) return opened.status();
    data::MmapDataset mmap = opened.take();
    return mmap.Warm();
  }

  data::GraphDataset ds_;
  std::string dir_;
  std::string path_;
  std::string mutant_path_;
  std::string bytes_;
};

TEST_F(MmapFuzzTest, IntactFileOpensAndWarms) {
  Status s = OpenAndWarm(path_);
  EXPECT_TRUE(s.ok()) << s.message();
}

TEST_F(MmapFuzzTest, EveryTruncationIsRejected) {
  // Prime stride keeps the sweep fast while hitting header, table, and
  // every payload region; the endpoints are covered explicitly.
  for (size_t len = 0; len < bytes_.size(); len += 7) {
    WriteMutant(bytes_.substr(0, len));
    EXPECT_FALSE(OpenAndWarm(mutant_path_).ok())
        << "file truncated to " << len << " of " << bytes_.size()
        << " bytes opened and warmed";
  }
  WriteMutant(bytes_.substr(0, bytes_.size() - 1));
  EXPECT_FALSE(OpenAndWarm(mutant_path_).ok());
}

TEST_F(MmapFuzzTest, EveryBitFlipIsRejected) {
  for (size_t pos = 0; pos < bytes_.size(); pos += 31) {
    std::string mutant = bytes_;
    mutant[pos] = static_cast<char>(mutant[pos] ^ 0x10);
    WriteMutant(mutant);
    EXPECT_FALSE(OpenAndWarm(mutant_path_).ok())
        << "bit flip at byte " << pos << " opened and warmed";
  }
}

TEST_F(MmapFuzzTest, EveryByteOverwriteIsRejected) {
  const uint8_t kProbes[] = {0x00, 0xff, 0x01, 0x80};
  for (size_t pos = 0; pos < bytes_.size(); pos += 53) {
    for (uint8_t probe : kProbes) {
      if (static_cast<uint8_t>(bytes_[pos]) == probe) continue;
      std::string mutant = bytes_;
      mutant[pos] = static_cast<char>(probe);
      WriteMutant(mutant);
      EXPECT_FALSE(OpenAndWarm(mutant_path_).ok())
          << "byte " << pos << " overwritten with " << int(probe)
          << " opened and warmed";
    }
  }
}

TEST_F(MmapFuzzTest, AppendedBytesAreRejected) {
  WriteMutant(bytes_ + "extra");
  EXPECT_FALSE(OpenAndWarm(mutant_path_).ok());
}

TEST_F(MmapFuzzTest, WrongArtifactKindIsRejected) {
  condense::CondensedGraph g;
  g.num_classes = 2;
  g.labels = {0, 1};
  g.features = Matrix(2, 4, 0.5f);
  g.adj = graph::CsrMatrix::FromEdges(2, 2, {{0, 1, 1.0f}},
                                      /*symmetrize=*/true);
  ASSERT_TRUE(SaveCondensedBinary(g, mutant_path_).ok());
  StatusOr<data::MmapDataset> opened = data::MmapDataset::Open(mutant_path_);
  ASSERT_FALSE(opened.ok());
  EXPECT_NE(opened.status().message().find("kind"), std::string::npos)
      << opened.status().message();
}

TEST_F(MmapFuzzTest, MissingSectionIsRejected) {
  BgcbinWriter writer;
  writer.AddSection("kind").PutString("bgc.dataset");
  ASSERT_TRUE(writer.WriteTo(mutant_path_).ok());
  EXPECT_FALSE(data::MmapDataset::Open(mutant_path_).ok());
}

// Every section type the heap loader decodes must read back identically
// through the mmap view: metadata, labels, splits, per-row adjacency
// (structure and weights), and raw feature bytes.
TEST_F(MmapFuzzTest, MmapMatchesHeapLoader) {
  StatusOr<data::GraphDataset> heap_loaded = TryLoadDatasetBinary(path_);
  ASSERT_TRUE(heap_loaded.ok());
  const data::GraphDataset heap = heap_loaded.take();

  StatusOr<data::MmapDataset> opened = data::MmapDataset::Open(path_);
  ASSERT_TRUE(opened.ok()) << opened.status().message();
  data::MmapDataset mmap = opened.take();
  ASSERT_TRUE(mmap.Warm().ok());

  EXPECT_EQ(mmap.name(), heap.name);
  EXPECT_EQ(mmap.num_classes(), heap.num_classes);
  EXPECT_EQ(mmap.inductive(), heap.inductive);
  EXPECT_EQ(mmap.labels(), heap.labels);
  EXPECT_EQ(mmap.train_idx(), heap.train_idx);
  EXPECT_EQ(mmap.val_idx(), heap.val_idx);
  EXPECT_EQ(mmap.test_idx(), heap.test_idx);
  ASSERT_EQ(mmap.num_nodes(), heap.num_nodes());
  EXPECT_EQ(mmap.nnz(), static_cast<long long>(heap.adj.nnz()));
  ASSERT_EQ(mmap.dim(), heap.features.cols());

  std::vector<int> cols;
  std::vector<float> vals;
  std::vector<float> feat_row(mmap.dim());
  for (int node = 0; node < heap.num_nodes(); ++node) {
    ASSERT_EQ(mmap.degree(node), heap.adj.RowNnz(node)) << "row " << node;
    mmap.Row(node, &cols, &vals);
    const int begin = heap.adj.row_ptr()[node];
    for (size_t k = 0; k < cols.size(); ++k) {
      EXPECT_EQ(cols[k], heap.adj.col_idx()[begin + k]);
      EXPECT_EQ(vals[k], heap.adj.values()[begin + k]);
    }
    mmap.CopyRow(node, feat_row.data());
    EXPECT_EQ(std::memcmp(feat_row.data(), heap.features.RowPtr(node),
                          sizeof(float) * mmap.dim()),
              0)
        << "feature row " << node;
  }
}

}  // namespace
}  // namespace bgc::store
