#include "src/tensor/linalg.h"

#include <gtest/gtest.h>

#include "src/core/rng.h"
#include "src/tensor/matrix_ops.h"

namespace bgc {
namespace {

TEST(LinalgTest, SolveIdentity) {
  Matrix b(3, 2, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(AllClose(SolveLinear(Matrix::Identity(3), b), b));
}

TEST(LinalgTest, SolveKnownSystem) {
  // [2 1; 1 3] x = [5; 10] -> x = [1; 3]
  Matrix a(2, 2, {2, 1, 1, 3});
  Matrix b(2, 1, {5, 10});
  Matrix x = SolveLinear(a, b);
  EXPECT_NEAR(x.At(0, 0), 1.0f, 1e-5f);
  EXPECT_NEAR(x.At(1, 0), 3.0f, 1e-5f);
}

TEST(LinalgTest, SolveNeedsPivoting) {
  // Leading zero forces a row swap.
  Matrix a(2, 2, {0, 1, 1, 0});
  Matrix b(2, 1, {3, 7});
  Matrix x = SolveLinear(a, b);
  EXPECT_NEAR(x.At(0, 0), 7.0f, 1e-5f);
  EXPECT_NEAR(x.At(1, 0), 3.0f, 1e-5f);
}

TEST(LinalgTest, SolveRandomResidual) {
  Rng rng(9);
  Matrix a = Matrix::RandomNormal(20, 20, rng);
  // Diagonal boost keeps the system well-conditioned.
  for (int i = 0; i < 20; ++i) a.At(i, i) += 5.0f;
  Matrix b = Matrix::RandomNormal(20, 4, rng);
  Matrix x = SolveLinear(a, b);
  EXPECT_TRUE(AllClose(MatMul(a, x), b, 1e-3f, 1e-3f));
}

TEST(LinalgTest, SolveTransposed) {
  Rng rng(10);
  Matrix a = Matrix::RandomNormal(8, 8, rng);
  for (int i = 0; i < 8; ++i) a.At(i, i) += 4.0f;
  Matrix b = Matrix::RandomNormal(8, 2, rng);
  Matrix x = SolveLinearTransposed(a, b);
  EXPECT_TRUE(AllClose(MatMulTransA(a, x), b, 1e-3f, 1e-3f));
}

TEST(LinalgTest, InverseTimesSelf) {
  Rng rng(11);
  Matrix a = Matrix::RandomNormal(6, 6, rng);
  for (int i = 0; i < 6; ++i) a.At(i, i) += 3.0f;
  EXPECT_TRUE(AllClose(MatMul(a, Inverse(a)), Matrix::Identity(6), 1e-3f,
                       1e-3f));
}

TEST(LinalgDeathTest, SingularMatrixAborts) {
  Matrix a(2, 2, {1, 2, 2, 4});  // rank 1
  Matrix b(2, 1, {1, 1});
  EXPECT_DEATH(SolveLinear(a, b), "singular");
}

}  // namespace
}  // namespace bgc
