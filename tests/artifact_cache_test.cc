#include "src/store/artifact_cache.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "src/core/fs.h"
#include "src/data/synthetic.h"
#include "src/eval/experiment.h"

namespace bgc {
namespace {

std::string TempCacheDir(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

condense::CondensedGraph TinyCondense(uint64_t seed) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 31);
  condense::SourceGraph src =
      condense::FromTrainView(data::MakeTrainView(ds));
  auto condenser = condense::MakeCondenser("gcond-x");
  condense::CondenseConfig cfg;
  cfg.num_condensed = 8;
  cfg.epochs = 3;
  Rng rng(seed);
  return condense::RunCondensation(*condenser, src, ds.num_classes, cfg, rng);
}

TEST(ArtifactCacheTest, MissThenHitReturnsIdenticalGraph) {
  store::ArtifactCache cache(TempCacheDir("cache_hit"));
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return TinyCondense(5);
  };
  condense::CondensedGraph first =
      cache.GetOrComputeCondensed("key-a", compute);
  condense::CondensedGraph second =
      cache.GetOrComputeCondensed("key-a", compute);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);
  EXPECT_TRUE(second.features == first.features);
  EXPECT_EQ(second.labels, first.labels);
  EXPECT_EQ(second.adj.values(), first.adj.values());
  EXPECT_EQ(second.use_structure, first.use_structure);
  std::remove(cache.EntryPath("key-a").c_str());
}

TEST(ArtifactCacheTest, DifferentKeysComputeSeparately) {
  store::ArtifactCache cache(TempCacheDir("cache_keys"));
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return TinyCondense(6);
  };
  cache.GetOrComputeCondensed("key-b", compute);
  cache.GetOrComputeCondensed("key-c", compute);
  EXPECT_EQ(computes, 2);
  std::remove(cache.EntryPath("key-b").c_str());
  std::remove(cache.EntryPath("key-c").c_str());
}

TEST(ArtifactCacheTest, CorruptEntryRejectedAndRecomputed) {
  store::ArtifactCache cache(TempCacheDir("cache_corrupt"));
  int computes = 0;
  auto compute = [&] {
    ++computes;
    return TinyCondense(7);
  };
  condense::CondensedGraph original =
      cache.GetOrComputeCondensed("key-d", compute);

  // Flip one byte in the stored entry: the checksum must reject it and
  // the cache must recompute and heal the entry.
  const std::string path = cache.EntryPath("key-d");
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekg(0, std::ios::end);
    const auto size = static_cast<long long>(f.tellg());
    char c = 0;
    f.seekg(size / 2);
    f.read(&c, 1);
    f.seekp(size / 2);
    c = static_cast<char>(c ^ 0x08);
    f.write(&c, 1);
  }
  condense::CondensedGraph recomputed =
      cache.GetOrComputeCondensed("key-d", compute);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(cache.stats().rejected, 1);
  EXPECT_TRUE(recomputed.features == original.features);

  // The rewritten entry serves hits again.
  cache.GetOrComputeCondensed("key-d", compute);
  EXPECT_EQ(computes, 2);
  EXPECT_EQ(cache.stats().hits, 1);
  std::remove(path.c_str());
}

TEST(ArtifactCacheTest, CanonicalKeysCoverEveryConfigField) {
  condense::CondenseConfig base;
  const std::string base_key = store::CanonicalCondenseKey(base);
  {
    condense::CondenseConfig c = base;
    c.num_condensed += 1;
    EXPECT_NE(store::CanonicalCondenseKey(c), base_key);
  }
  {
    condense::CondenseConfig c = base;
    c.feature_lr += 0.001f;
    EXPECT_NE(store::CanonicalCondenseKey(c), base_key);
  }
  {
    condense::CondenseConfig c = base;
    c.seed += 1;
    EXPECT_NE(store::CanonicalCondenseKey(c), base_key);
  }
  attack::AttackConfig abase;
  const std::string attack_key = store::CanonicalAttackKey(abase);
  {
    attack::AttackConfig a = abase;
    a.trigger_size += 1;
    EXPECT_NE(store::CanonicalAttackKey(a), attack_key);
  }
  {
    attack::AttackConfig a = abase;
    a.selection = "random";
    EXPECT_NE(store::CanonicalAttackKey(a), attack_key);
  }
}

TEST(ArtifactCacheTest, CacheKeyVariesWithDatasetMethodSeed) {
  condense::CondenseConfig cfg;
  const std::string base =
      store::CondensedCacheKey("cora-sim", 1.0, "gcond", cfg, 1);
  EXPECT_NE(store::CondensedCacheKey("citeseer-sim", 1.0, "gcond", cfg, 1),
            base);
  EXPECT_NE(store::CondensedCacheKey("cora-sim", 0.5, "gcond", cfg, 1), base);
  EXPECT_NE(store::CondensedCacheKey("cora-sim", 1.0, "gcond-x", cfg, 1),
            base);
  EXPECT_NE(store::CondensedCacheKey("cora-sim", 1.0, "gcond", cfg, 2), base);
  EXPECT_EQ(store::CondensedCacheKey("cora-sim", 1.0, "gcond", cfg, 1), base);
}

TEST(ArtifactCacheTest, FromEnvDisabledWhenUnset) {
  ::unsetenv("BGC_ARTIFACT_DIR");
  EXPECT_EQ(store::ArtifactCache::FromEnv(), nullptr);
  ::setenv("BGC_ARTIFACT_DIR", "", 1);
  EXPECT_EQ(store::ArtifactCache::FromEnv(), nullptr);
  const std::string dir = TempCacheDir("cache_env");
  ::setenv("BGC_ARTIFACT_DIR", dir.c_str(), 1);
  auto cache = store::ArtifactCache::FromEnv();
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->dir(), dir);
  ::unsetenv("BGC_ARTIFACT_DIR");
}

// The end-to-end guarantee behind caching: a repeat served from the cache
// reports exactly the same metrics as one that recomputes, because victim
// training draws from RNG streams decoupled from condensation.
TEST(ArtifactCacheTest, CachedRunOnceMatchesUncachedBitExact) {
  eval::RunSpec spec;
  spec.dataset = "tiny-sim";
  spec.method = "gcond-x";
  spec.attack = "none";
  spec.condense.num_condensed = 8;
  spec.condense.epochs = 3;
  spec.victim.epochs = 20;

  eval::RepeatResult uncached = eval::RunOnce(spec, 3);

  store::ArtifactCache cache(TempCacheDir("cache_eval"));
  spec.artifact_cache = &cache;
  eval::RepeatResult cold = eval::RunOnce(spec, 3);  // miss: computes+stores
  eval::RepeatResult warm = eval::RunOnce(spec, 3);  // hit: deserializes
  EXPECT_EQ(cache.stats().misses, 1);
  EXPECT_EQ(cache.stats().hits, 1);

  EXPECT_EQ(cold.backdoor.cta, uncached.backdoor.cta);
  EXPECT_EQ(warm.backdoor.cta, uncached.backdoor.cta);
  EXPECT_EQ(warm.backdoor.asr, uncached.backdoor.asr);

  const std::string key = store::CondensedCacheKey(
      spec.dataset, spec.dataset_scale, spec.method, spec.condense,
      3 * 0x9e3779b97f4a7c15ULL + 17);
  std::remove(cache.EntryPath(key).c_str());
}

}  // namespace
}  // namespace bgc
