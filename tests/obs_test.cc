#include "src/obs/obs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "src/obs/json.h"

// Timing-bound tests are meaningless under sanitizer instrumentation.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define BGC_TEST_UNDER_SANITIZER 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define BGC_TEST_UNDER_SANITIZER 1
#endif
#endif

namespace bgc::obs {
namespace {

// Every test funnels through the one process-global registry, so each
// fixture starts from a clean slate and restores the default (disabled)
// collection mode on the way out.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Registry::Global().Reset();
    SetTraceEnabled(false);
    SetMetricsEnabled(false);
  }
  void TearDown() override {
    SetTraceEnabled(false);
    SetMetricsEnabled(false);
    Registry::Global().Reset();
  }
};

TEST_F(ObsTest, ClockIsMonotonic) {
  int64_t prev = NowNs();
  for (int i = 0; i < 1000; ++i) {
    const int64_t now = NowNs();
    ASSERT_GE(now, prev);
    prev = now;
  }
}

TEST_F(ObsTest, TimerAggregatesDurations) {
  SetMetricsEnabled(true);
  Timer* t = Registry::Global().GetTimer("test.timer");
  t->Record(100, 250);  // 150 ns
  t->Record(300, 350);  // 50 ns
  t->Record(400, 700);  // 300 ns
  TimerStats s = t->Snapshot();
  EXPECT_EQ(s.count, 3);
  EXPECT_EQ(s.total_ns, 500);
  EXPECT_EQ(s.min_ns, 50);
  EXPECT_EQ(s.max_ns, 300);
}

TEST_F(ObsTest, ScopedTimerRecordsNonNegativeElapsed) {
  SetMetricsEnabled(true);
  Timer* t = Registry::Global().GetTimer("test.scope");
  {
    ScopedTimer scope(t);
  }
  TimerStats s = t->Snapshot();
  EXPECT_EQ(s.count, 1);
  EXPECT_GE(s.total_ns, 0);
  EXPECT_GE(s.max_ns, s.min_ns);
}

TEST_F(ObsTest, HandlesAreStableAcrossLookups) {
  Timer* a = Registry::Global().GetTimer("test.same");
  Timer* b = Registry::Global().GetTimer("test.same");
  EXPECT_EQ(a, b);
  Counter* c = Registry::Global().GetCounter("test.same");
  Counter* d = Registry::Global().GetCounter("test.same");
  EXPECT_EQ(c, d);
}

TEST_F(ObsTest, CountersAggregateAcrossThreads) {
  SetMetricsEnabled(true);
  Counter* c = Registry::Global().GetCounter("test.mt");
  constexpr int kThreads = 8;
  constexpr int kAddsPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([c] {
      for (int k = 0; k < kAddsPerThread; ++k) {
        c->Add(1);
        BGC_COUNTER_ADD("test.mt.macro", 2);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), kThreads * kAddsPerThread);
#ifdef BGC_OBS_DISABLED
  EXPECT_EQ(Registry::Global().GetCounter("test.mt.macro")->value(), 0);
#else
  EXPECT_EQ(Registry::Global().GetCounter("test.mt.macro")->value(),
            2LL * kThreads * kAddsPerThread);
#endif
}

TEST_F(ObsTest, TimersRecordConcurrently) {
  SetMetricsEnabled(true);
  Timer* t = Registry::Global().GetTimer("test.mt.timer");
  constexpr int kThreads = 4;
  constexpr int kRecords = 5000;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([t] {
      for (int k = 1; k <= kRecords; ++k) t->Record(0, k);
    });
  }
  for (auto& th : threads) th.join();
  TimerStats s = t->Snapshot();
  EXPECT_EQ(s.count, kThreads * kRecords);
  EXPECT_EQ(s.total_ns,
            static_cast<long long>(kThreads) * kRecords * (kRecords + 1) / 2);
  EXPECT_EQ(s.min_ns, 1);
  EXPECT_EQ(s.max_ns, kRecords);
}

TEST_F(ObsTest, DisabledModeRecordsNothing) {
  // Collection off: the macros must not mutate registry state.
  BGC_COUNTER_ADD("test.off.counter", 7);
  {
    BGC_TRACE_SCOPE("test.off.timer");
  }
  BGC_GAUGE_SET("test.off.gauge", 3.5);
  SetMetricsEnabled(true);  // read back with collection on
  EXPECT_EQ(Registry::Global().GetCounter("test.off.counter")->value(), 0);
  EXPECT_EQ(Registry::Global().GetTimer("test.off.timer")->Snapshot().count,
            0);
  JsonParseResult parsed = ParseJson(Registry::Global().MetricsJson());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  EXPECT_EQ(parsed.value.Find("gauges")->object.size(), 0u);
}

TEST_F(ObsTest, ScopeStartedBeforeDisableStillSafe) {
  SetMetricsEnabled(true);
  Timer* t = Registry::Global().GetTimer("test.race");
  {
    ScopedTimer scope(t);
    SetMetricsEnabled(false);
    // Destructor still records (the handle was captured while enabled);
    // the point is that this is safe, not that the event is dropped.
  }
  EXPECT_EQ(t->Snapshot().count, 1);
}

TEST_F(ObsTest, MetricsJsonParsesBackAndRoundTripsValues) {
  SetMetricsEnabled(true);
  // Direct registry API (not the macros) so the round-trip is also
  // exercised in -DBGC_OBS=OFF builds, where the macros compile away.
  Registry::Global().GetCounter("test.json.counter")->Add(42);
  Registry::Global().SetGauge("test.json.gauge", 2.5);
  Registry::Global().GetTimer("test.json.timer")->Record(10, 30);
  // A name that needs escaping end-to-end.
  Registry::Global().GetCounter("test.\"quoted\"\\name\n")->Add(1);

  const std::string json = Registry::Global().MetricsJson();
  JsonParseResult parsed = ParseJson(json);
  ASSERT_TRUE(parsed.ok) << parsed.error << "\nin: " << json;
  const JsonValue& root = parsed.value;
  ASSERT_TRUE(root.is_object());

  const JsonValue* schema = root.Find("schema");
  ASSERT_NE(schema, nullptr);
  EXPECT_EQ(schema->str, "bgc-obs-v1");

  const JsonValue* wall = root.Find("wall_ns");
  ASSERT_NE(wall, nullptr);
  EXPECT_GE(wall->number, 0.0);

  const JsonValue* counters = root.Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* counter = counters->Find("test.json.counter");
  ASSERT_NE(counter, nullptr);
  EXPECT_EQ(counter->number, 42.0);
  EXPECT_NE(counters->Find("test.\"quoted\"\\name\n"), nullptr);

  const JsonValue* gauge = root.Find("gauges")->Find("test.json.gauge");
  ASSERT_NE(gauge, nullptr);
  EXPECT_EQ(gauge->number, 2.5);

  const JsonValue* timer = root.Find("timers")->Find("test.json.timer");
  ASSERT_NE(timer, nullptr);
  EXPECT_EQ(timer->Find("count")->number, 1.0);
  EXPECT_EQ(timer->Find("total_ns")->number, 20.0);
  EXPECT_EQ(timer->Find("min_ns")->number, 20.0);
  EXPECT_EQ(timer->Find("max_ns")->number, 20.0);

  // Metric summary carries no trace array.
  EXPECT_EQ(root.Find("trace"), nullptr);
}

TEST_F(ObsTest, TraceJsonCarriesEventsWithPhaseNames) {
  SetTraceEnabled(true);
  {
    ScopedTimer scope(Registry::Global().GetTimer("phase.test.a"));
  }
  {
    ScopedTimer scope(Registry::Global().GetTimer("phase.test.b"));
  }
  JsonParseResult parsed = ParseJson(Registry::Global().TraceJson());
  ASSERT_TRUE(parsed.ok) << parsed.error;
  const JsonValue* trace = parsed.value.Find("trace");
  ASSERT_NE(trace, nullptr);
  ASSERT_TRUE(trace->is_array());
  ASSERT_EQ(trace->array.size(), 2u);
  std::vector<std::string> names;
  for (const JsonValue& ev : trace->array) {
    ASSERT_TRUE(ev.is_object());
    names.push_back(ev.Find("name")->str);
    EXPECT_GE(ev.Find("ts_ns")->number, 0.0);
    EXPECT_GE(ev.Find("dur_ns")->number, 0.0);
    EXPECT_GE(ev.Find("tid")->number, 0.0);
  }
  EXPECT_NE(std::find(names.begin(), names.end(), "phase.test.a"),
            names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "phase.test.b"),
            names.end());
}

TEST_F(ObsTest, TraceImpliesMetricsAndDisableKeepsMetrics) {
  EXPECT_FALSE(MetricsEnabled());
  SetTraceEnabled(true);
  EXPECT_TRUE(TraceEnabled());
  EXPECT_TRUE(MetricsEnabled());
  SetTraceEnabled(false);
  EXPECT_FALSE(TraceEnabled());
  EXPECT_TRUE(MetricsEnabled());
}

TEST_F(ObsTest, ResetClearsAggregatesButKeepsHandles) {
  SetMetricsEnabled(true);
  Counter* c = Registry::Global().GetCounter("test.reset");
  c->Add(5);
  Registry::Global().GetTimer("test.reset.t")->Record(0, 10);
  Registry::Global().Reset();
  EXPECT_EQ(c->value(), 0);
  EXPECT_EQ(Registry::Global().GetCounter("test.reset"), c);
  EXPECT_EQ(Registry::Global().GetTimer("test.reset.t")->Snapshot().count, 0);
}

TEST_F(ObsTest, PhaseTablePrintsWithoutCrashing) {
  SetMetricsEnabled(true);
  Registry::Global().GetTimer("phase.test.table")->Record(0, 1000);
  std::FILE* sink = std::tmpfile();
  ASSERT_NE(sink, nullptr);
  Registry::Global().PrintPhaseTable(sink);
  EXPECT_GT(std::ftell(sink), 0);
  std::fclose(sink);
}

// Loose smoke bound on no-op cost: with collection disabled, a scoped-timer
// call site must be within noise of an empty loop (each iteration is one
// relaxed atomic load). The generous 50x multiplier keeps this stable on
// loaded CI machines while still catching a regression that starts taking
// locks or syscalls on the disabled path.
TEST_F(ObsTest, DisabledScopeIsCheap) {
#ifdef BGC_TEST_UNDER_SANITIZER
  GTEST_SKIP() << "timing bound is not meaningful under sanitizers";
#endif
  constexpr int kIters = 2000000;
  volatile long long sink = 0;

  const int64_t t0 = NowNs();
  for (int i = 0; i < kIters; ++i) sink += i;
  const int64_t empty_ns = NowNs() - t0;

  const int64_t t1 = NowNs();
  for (int i = 0; i < kIters; ++i) {
    BGC_TRACE_SCOPE("test.overhead");
    sink += i;
  }
  const int64_t scoped_ns = NowNs() - t1;

  EXPECT_LT(scoped_ns, empty_ns * 50 + 20000000)
      << "disabled BGC_TRACE_SCOPE cost " << scoped_ns << "ns vs "
      << empty_ns << "ns empty baseline";
}

// --- Per-thread phase redirect (grid scheduler support): with a tag
// installed, "phase."-prefixed scopes record into "<tag>.<rest>" so
// concurrent grid units cannot overlap inside one shared phase timer. ---

TEST_F(ObsTest, PhaseTagRedirectsPhaseScopes) {
  SetMetricsEnabled(true);
  {
    ScopedPhaseTag tag("grid.u007");
    ScopedTimer scope(Registry::Global().GetTimer("phase.condense"));
  }
  EXPECT_EQ(
      Registry::Global().GetTimer("grid.u007.condense")->Snapshot().count, 1);
  EXPECT_EQ(Registry::Global().GetTimer("phase.condense")->Snapshot().count,
            0);
}

TEST_F(ObsTest, PhaseTagDoesNotTouchNonPhaseTimers) {
  SetMetricsEnabled(true);
  {
    ScopedPhaseTag tag("grid.u001");
    ScopedTimer scope(Registry::Global().GetTimer("tensor.gemm"));
  }
  EXPECT_EQ(Registry::Global().GetTimer("tensor.gemm")->Snapshot().count, 1);
  EXPECT_EQ(
      Registry::Global().GetTimer("grid.u001.gemm")->Snapshot().count, 0);
}

TEST_F(ObsTest, PhaseTagRestoredOnScopeExit) {
  SetMetricsEnabled(true);
  {
    ScopedPhaseTag outer("grid.u001");
    {
      ScopedPhaseTag inner("grid.u002");
      ScopedTimer scope(Registry::Global().GetTimer("phase.victim"));
    }
    // Back to the outer tag once the inner scope unwinds.
    ScopedTimer scope(Registry::Global().GetTimer("phase.victim"));
  }
  // And with no tag installed, the scope records undirected again.
  { ScopedTimer scope(Registry::Global().GetTimer("phase.victim")); }
  EXPECT_EQ(
      Registry::Global().GetTimer("grid.u002.victim")->Snapshot().count, 1);
  EXPECT_EQ(
      Registry::Global().GetTimer("grid.u001.victim")->Snapshot().count, 1);
  EXPECT_EQ(Registry::Global().GetTimer("phase.victim")->Snapshot().count, 1);
}

TEST_F(ObsTest, PhaseTagsAreThreadLocal) {
  SetMetricsEnabled(true);
  ScopedPhaseTag tag("grid.u009");
  std::thread other([] {
    // The sibling thread carries no tag: its phase scope is unredirected.
    ScopedTimer scope(Registry::Global().GetTimer("phase.other"));
  });
  other.join();
  EXPECT_EQ(Registry::Global().GetTimer("phase.other")->Snapshot().count, 1);
  EXPECT_EQ(
      Registry::Global().GetTimer("grid.u009.other")->Snapshot().count, 0);
}

// --- JSON parser negatives: the golden/fuzz harness leans on this parser
// rejecting malformed input rather than misreading it. ---

TEST_F(ObsTest, JsonParserRejectsMalformedInput) {
  const char* bad[] = {
      "",           "{",          "}",           "{\"a\":}",
      "{\"a\":1,}", "[1,2",       "\"unterminated",
      "{\"a\":1}x", "nul",        "+5",          "1e999",
      "{\"a\":1,\"a\":2}",  // duplicate key
      "{'a':1}",    "[01]",       "\"\\q\"",     "\"\\u12\"",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(ParseJson(text).ok) << "accepted: " << text;
  }
}

TEST_F(ObsTest, JsonParserAcceptsExpectedShapes) {
  EXPECT_TRUE(ParseJson("null").ok);
  EXPECT_TRUE(ParseJson(" true ").ok);
  EXPECT_TRUE(ParseJson("-1.5e3").ok);
  EXPECT_TRUE(ParseJson("\"a\\u0041\\n\"").ok);
  JsonParseResult nested = ParseJson("{\"a\":[1,{\"b\":[]},\"c\"]}");
  ASSERT_TRUE(nested.ok) << nested.error;
  EXPECT_EQ(nested.value.Find("a")->array.size(), 3u);
}

}  // namespace
}  // namespace bgc::obs
