#include "src/condense/common.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::condense {
namespace {

SourceGraph TinySource(uint64_t seed = 41) {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", seed);
  data::TrainView view = data::MakeTrainView(ds);
  return FromTrainView(view);
}

TEST(AllocateLabelsTest, ExactTotalAndFloor) {
  SourceGraph src = TinySource();
  for (int n : {3, 5, 9, 15, 30}) {
    auto labels = AllocateSyntheticLabels(src, 3, n);
    EXPECT_EQ(static_cast<int>(labels.size()), n);
    auto counts = data::ClassCounts(labels, 3);
    for (int c : counts) EXPECT_GE(c, 1);  // tiny-sim has all 3 classes
  }
}

TEST(AllocateLabelsTest, SortedByClass) {
  SourceGraph src = TinySource();
  auto labels = AllocateSyntheticLabels(src, 3, 12);
  for (size_t i = 1; i < labels.size(); ++i) {
    EXPECT_LE(labels[i - 1], labels[i]);
  }
}

TEST(AllocateLabelsTest, ProportionalToClassSizes) {
  // Labeled set: 8 of class 0, 2 of class 1.
  SourceGraph src;
  src.labels = {0, 0, 0, 0, 0, 0, 0, 0, 1, 1};
  for (int i = 0; i < 10; ++i) src.labeled.push_back(i);
  auto labels = AllocateSyntheticLabels(src, 2, 5);
  auto counts = data::ClassCounts(labels, 2);
  EXPECT_EQ(counts[0], 4);
  EXPECT_EQ(counts[1], 1);
}

TEST(AllocateLabelsTest, EmptyClassGetsNothing) {
  SourceGraph src;
  src.labels = {0, 0, 2, 2};
  for (int i = 0; i < 4; ++i) src.labeled.push_back(i);
  auto labels = AllocateSyntheticLabels(src, 3, 4);
  auto counts = data::ClassCounts(labels, 3);
  EXPECT_EQ(counts[1], 0);
  EXPECT_EQ(counts[0] + counts[2], 4);
}

TEST(InitFeaturesTest, NearSourceClassFeatures) {
  SourceGraph src = TinySource();
  Rng rng(1);
  auto labels = AllocateSyntheticLabels(src, 3, 9);
  Matrix x = InitSyntheticFeatures(src, labels, rng);
  EXPECT_EQ(x.rows(), 9);
  EXPECT_EQ(x.cols(), src.features.cols());
  // Every synthetic row should be within noise distance of SOME labeled
  // source row of its class.
  for (int i = 0; i < x.rows(); ++i) {
    float best = 1e9f;
    for (int idx : src.labeled) {
      if (src.labels[idx] != labels[i]) continue;
      float dist = 0.0f;
      for (int j = 0; j < x.cols(); ++j) {
        const float dv = x.At(i, j) - src.features.At(idx, j);
        dist += dv * dv;
      }
      best = std::min(best, dist);
    }
    EXPECT_LT(best, 0.05f * 0.05f * x.cols() * 16.0f);
  }
}

TEST(PropagateTest, IdentityGraphWithSelfLoopIsIdentity) {
  // A = empty => Â = I (self loop only), propagation is a no-op.
  graph::CsrMatrix empty_adj =
      graph::CsrMatrix::FromEdges(3, 3, {}, false);
  Matrix x(3, 2, {1, 2, 3, 4, 5, 6});
  EXPECT_TRUE(AllClose(PropagateFeatures(empty_adj, x, 3), x));
}

TEST(PropagateTest, SmoothsTowardNeighborAverage) {
  // Dense clique: K-step propagation pulls rows toward the global mean.
  std::vector<graph::Edge> edges;
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) edges.push_back({i, j});
  }
  graph::CsrMatrix clique = graph::CsrMatrix::FromEdges(4, 4, edges, true);
  Matrix x(4, 1, {0, 0, 0, 4});
  Matrix z = PropagateFeatures(clique, x, 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(z.At(i, 0), 1.0f, 0.25f);
  }
}

TEST(PerClassGradientsTest, MatchesAutogradGradient) {
  SourceGraph src = TinySource();
  Rng rng(2);
  Matrix z = PropagateFeatures(src.adj, src.features, 2);
  Matrix w = Matrix::GlorotUniform(z.cols(), 3, rng);
  auto grads = PerClassGradients(z, src.labels, src.labeled, w, 3);

  // Reference: tape gradient of mean CE over class-c labeled rows w.r.t. W.
  for (int c = 0; c < 3; ++c) {
    std::vector<int> rows;
    for (int idx : src.labeled) {
      if (src.labels[idx] == c) rows.push_back(idx);
    }
    ASSERT_FALSE(rows.empty());
    ag::Tape t;
    ag::Var wv = t.Input(w);
    ag::Var zc = t.Constant(GatherRows(z, rows));
    std::vector<int> y(rows.size(), c);
    ag::Var loss = t.SoftmaxCrossEntropy(t.MatMul(zc, wv), OneHot(y, 3));
    t.Backward(loss);
    EXPECT_TRUE(AllClose(grads[c], t.grad(wv), 1e-3f, 1e-4f)) << "class " << c;
  }
}

TEST(MatchingDistanceTest, ZeroForIdenticalGradients) {
  Rng rng(3);
  Matrix g = Matrix::RandomNormal(5, 3, rng);
  ag::Tape t;
  ag::Var gv = t.Input(g);
  ag::Var d = MatchingDistance(t, gv, g);
  EXPECT_NEAR(t.value(d).At(0, 0), 0.0f, 1e-4f);
}

TEST(MatchingDistanceTest, MaximalForOppositeGradients) {
  Rng rng(4);
  Matrix g = Matrix::RandomNormal(5, 3, rng);
  ag::Tape t;
  ag::Var gv = t.Input(Scale(g, -1.0f));
  ag::Var d = MatchingDistance(t, gv, g);
  // 1 - cos = 2 per column, 3 columns.
  EXPECT_NEAR(t.value(d).At(0, 0), 6.0f, 1e-3f);
}

TEST(MatchingDistanceTest, GradientPullsTowardTarget) {
  Rng rng(5);
  Matrix target = Matrix::RandomNormal(4, 2, rng);
  Matrix g = Matrix::RandomNormal(4, 2, rng);
  ag::Tape t;
  ag::Var gv = t.Input(g);
  ag::Var d = MatchingDistance(t, gv, target);
  const float before = t.value(d).At(0, 0);
  t.Backward(d);
  Matrix stepped = g;
  AddScaledInPlace(stepped, t.grad(gv), -0.1f);
  ag::Tape t2;
  ag::Var gv2 = t2.Input(stepped);
  EXPECT_LT(t2.value(MatchingDistance(t2, gv2, target)).At(0, 0), before);
}

TEST(SgcStepTest, ReducesLoss) {
  SourceGraph src = TinySource();
  Rng rng(6);
  Matrix z = PropagateFeatures(src.adj, src.features, 2);
  Matrix y = OneHot(src.labels, 3);
  Matrix w = Matrix::GlorotUniform(z.cols(), 3, rng);
  auto loss = [&](const Matrix& weights) {
    Matrix p = RowSoftmax(MatMul(z, weights));
    double total = 0.0;
    for (int i = 0; i < p.rows(); ++i) {
      total -= std::log(std::max(p.At(i, src.labels[i]), 1e-12f));
    }
    return total / p.rows();
  };
  const double before = loss(w);
  for (int s = 0; s < 20; ++s) SgcStep(z, y, w, 0.5f);
  EXPECT_LT(loss(w), before);
}

}  // namespace
}  // namespace bgc::condense
