#include "src/graph/csr.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/rng.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::graph {
namespace {

CsrMatrix TriangleGraph() {
  // 0-1, 1-2, 0-2 undirected triangle.
  return CsrMatrix::FromEdges(3, 3, {{0, 1}, {1, 2}, {0, 2}},
                              /*symmetrize=*/true);
}

TEST(CsrTest, FromEdgesBasic) {
  CsrMatrix m = TriangleGraph();
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.nnz(), 6);
  EXPECT_FLOAT_EQ(m.At(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(m.At(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(m.At(0, 0), 0.0f);
}

TEST(CsrTest, DuplicateEdgesCoalesce) {
  CsrMatrix m = CsrMatrix::FromEdges(2, 2, {{0, 1, 1.0f}, {0, 1, 2.0f}},
                                     /*symmetrize=*/false);
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_FLOAT_EQ(m.At(0, 1), 3.0f);
}

TEST(CsrTest, SymmetrizeKeepsSelfLoopSingle) {
  CsrMatrix m = CsrMatrix::FromEdges(2, 2, {{0, 0, 2.0f}},
                                     /*symmetrize=*/true);
  EXPECT_EQ(m.nnz(), 1);
  EXPECT_FLOAT_EQ(m.At(0, 0), 2.0f);
}

TEST(CsrTest, FromDenseRoundTrip) {
  Matrix d(2, 3, {0, 1.5f, 0, -2, 0, 0.25f});
  CsrMatrix m = CsrMatrix::FromDense(d);
  EXPECT_EQ(m.nnz(), 3);
  EXPECT_TRUE(AllClose(m.ToDense(), d));
}

TEST(CsrTest, FromDenseThreshold) {
  Matrix d(1, 3, {0.1f, 0.5f, 0.9f});
  CsrMatrix m = CsrMatrix::FromDense(d, 0.4f);
  EXPECT_EQ(m.nnz(), 2);
}

TEST(CsrTest, IdentityMultiply) {
  Rng rng(3);
  Matrix x = Matrix::RandomNormal(4, 3, rng);
  EXPECT_TRUE(AllClose(CsrMatrix::Identity(4).Multiply(x), x));
}

TEST(CsrTest, MultiplyMatchesDense) {
  Rng rng(4);
  Matrix dense(5, 5);
  for (int i = 0; i < 5; ++i) {
    for (int j = 0; j < 5; ++j) {
      if (rng.Bernoulli(0.4)) dense.At(i, j) = static_cast<float>(rng.Normal());
    }
  }
  CsrMatrix sparse = CsrMatrix::FromDense(dense);
  Matrix x = Matrix::RandomNormal(5, 3, rng);
  EXPECT_TRUE(AllClose(sparse.Multiply(x), MatMul(dense, x), 1e-4f, 1e-5f));
}

TEST(CsrTest, MultiplyTransposedMatchesDense) {
  Rng rng(5);
  Matrix dense(4, 6);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 6; ++j) {
      if (rng.Bernoulli(0.5)) dense.At(i, j) = static_cast<float>(rng.Normal());
    }
  }
  CsrMatrix sparse = CsrMatrix::FromDense(dense);
  Matrix x = Matrix::RandomNormal(4, 2, rng);
  EXPECT_TRUE(AllClose(sparse.MultiplyTransposed(x),
                       MatMul(Transpose(dense), x), 1e-4f, 1e-5f));
}

TEST(CsrTest, RowAccessors) {
  CsrMatrix m = TriangleGraph();
  EXPECT_EQ(m.RowNnz(0), 2);
  EXPECT_FLOAT_EQ(m.RowWeightSum(0), 2.0f);
}

TEST(CsrTest, ToEdgesRoundTrip) {
  CsrMatrix m = TriangleGraph();
  CsrMatrix m2 = CsrMatrix::FromEdges(3, 3, m.ToEdges(), false);
  EXPECT_TRUE(AllClose(m.ToDense(), m2.ToDense()));
}

TEST(CsrNormalizeTest, GcnNormalizeTriangle) {
  // Triangle + self loops: every node has degree 3, so every entry of the
  // normalized operator is 1/3.
  CsrMatrix norm = GcnNormalize(TriangleGraph());
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      EXPECT_NEAR(norm.At(i, j), 1.0f / 3.0f, 1e-6f);
    }
  }
}

TEST(CsrNormalizeTest, GcnNormalizeRowsOfRegularGraphSumToOne) {
  // For any regular graph the GCN operator's rows sum to 1.
  CsrMatrix ring = CsrMatrix::FromEdges(
      4, 4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}}, /*symmetrize=*/true);
  CsrMatrix norm = GcnNormalize(ring);
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(norm.RowWeightSum(i), 1.0f, 1e-6f);
  }
}

TEST(CsrNormalizeTest, GcnNormalizeIsolatedNodeSelfLoopOnly) {
  CsrMatrix lonely = CsrMatrix::FromEdges(2, 2, {{0, 1}}, true);
  CsrMatrix with_isolated =
      CsrMatrix::FromEdges(3, 3, lonely.ToEdges(), false);
  CsrMatrix norm = GcnNormalize(with_isolated);
  EXPECT_NEAR(norm.At(2, 2), 1.0f, 1e-6f);  // isolated node keeps itself
}

TEST(CsrNormalizeTest, SymNormalizeNoSelfLoops) {
  CsrMatrix norm = SymNormalize(TriangleGraph());
  EXPECT_FLOAT_EQ(norm.At(0, 0), 0.0f);
  EXPECT_NEAR(norm.At(0, 1), 0.5f, 1e-6f);  // deg 2 each: 1/sqrt(2*2)
}

TEST(CsrNormalizeTest, RowNormalizeRowsSumToOne) {
  CsrMatrix norm = RowNormalize(TriangleGraph());
  for (int i = 0; i < 3; ++i) {
    EXPECT_NEAR(norm.RowWeightSum(i), 1.0f, 1e-6f);
  }
}

TEST(CsrNormalizeTest, ChebyOperatorIsNegatedSymNorm) {
  CsrMatrix cheb = ChebyOperator(TriangleGraph());
  EXPECT_NEAR(cheb.At(0, 1), -0.5f, 1e-6f);
}

}  // namespace
}  // namespace bgc::graph
