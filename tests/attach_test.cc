#include "src/attack/attach.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "src/data/synthetic.h"

namespace bgc::attack {
namespace {

condense::SourceGraph TinySource() {
  data::GraphDataset ds = data::MakeDataset("tiny-sim", 91);
  return condense::FromTrainView(data::MakeTrainView(ds));
}

TriggerInstantiation MakeTrigger(int g, int d, float value) {
  TriggerInstantiation t;
  t.features = Matrix(g, d, value);
  t.internal_edges = {{0, 1}};
  return t;
}

TEST(AttachTest, EmptyHostsIsIdentityOp) {
  condense::SourceGraph src = TinySource();
  AugmentedGraph aug = AttachToGraph(src.adj, src.features, {}, {});
  EXPECT_EQ(aug.adj.rows(), src.adj.rows());
  EXPECT_TRUE(aug.features == src.features);
}

TEST(AttachTest, AppendsTriggerNodesWithEdges) {
  condense::SourceGraph src = TinySource();
  const int n = src.adj.rows();
  const int d = src.features.cols();
  AugmentedGraph aug = AttachToGraph(
      src.adj, src.features, {3, 7},
      {MakeTrigger(2, d, 1.0f), MakeTrigger(2, d, 2.0f)});
  EXPECT_EQ(aug.adj.rows(), n + 4);
  EXPECT_EQ(aug.num_original, n);
  // Host links to trigger node 0 (both directions).
  EXPECT_FLOAT_EQ(aug.adj.At(3, n), 1.0f);
  EXPECT_FLOAT_EQ(aug.adj.At(n, 3), 1.0f);
  EXPECT_FLOAT_EQ(aug.adj.At(7, n + 2), 1.0f);
  // Internal trigger edge 0-1 symmetric.
  EXPECT_FLOAT_EQ(aug.adj.At(n, n + 1), 1.0f);
  EXPECT_FLOAT_EQ(aug.adj.At(n + 1, n), 1.0f);
  // No cross-trigger edges.
  EXPECT_FLOAT_EQ(aug.adj.At(n, n + 2), 0.0f);
  // Features copied per instantiation.
  EXPECT_FLOAT_EQ(aug.features.At(n, 0), 1.0f);
  EXPECT_FLOAT_EQ(aug.features.At(n + 2, 0), 2.0f);
}

TEST(AttachTest, OriginalEdgesPreserved) {
  condense::SourceGraph src = TinySource();
  const int d = src.features.cols();
  AugmentedGraph aug =
      AttachToGraph(src.adj, src.features, {0}, {MakeTrigger(3, d, 0.5f)});
  for (const auto& e : src.adj.ToEdges()) {
    EXPECT_FLOAT_EQ(aug.adj.At(e.src, e.dst), e.weight);
  }
}

TEST(BuildPoisonedSourceTest, HostsRelabeledToTarget) {
  condense::SourceGraph src = TinySource();
  const int d = src.features.cols();
  std::vector<int> hosts;
  for (int idx : src.labeled) {
    if (src.labels[idx] != 0) {
      hosts.push_back(idx);
      if (hosts.size() == 3) break;
    }
  }
  condense::SourceGraph poisoned = BuildPoisonedSource(
      src, hosts,
      std::vector<TriggerInstantiation>(hosts.size(), MakeTrigger(2, d, 1.0f)),
      /*target_class=*/0);
  for (int host : hosts) EXPECT_EQ(poisoned.labels[host], 0);
}

TEST(BuildPoisonedSourceTest, TriggerNodesNotInLabeledSet) {
  condense::SourceGraph src = TinySource();
  const int n = src.adj.rows();
  const int d = src.features.cols();
  condense::SourceGraph poisoned = BuildPoisonedSource(
      src, {src.labeled[1]}, {MakeTrigger(2, d, 1.0f)}, 0);
  EXPECT_EQ(poisoned.adj.rows(), n + 2);
  for (int idx : poisoned.labeled) EXPECT_LT(idx, n);
  // Labeled set unchanged in size (host was already labeled).
  EXPECT_EQ(poisoned.labeled.size(), src.labeled.size());
}

TEST(BuildPoisonedSourceTest, UnlabeledHostJoinsLabeledSet) {
  condense::SourceGraph src = TinySource();
  const int d = src.features.cols();
  // Find an unlabeled node.
  std::vector<bool> is_labeled(src.adj.rows(), false);
  for (int idx : src.labeled) is_labeled[idx] = true;
  int host = -1;
  for (int i = 0; i < src.adj.rows(); ++i) {
    if (!is_labeled[i]) {
      host = i;
      break;
    }
  }
  ASSERT_GE(host, 0);
  condense::SourceGraph poisoned =
      BuildPoisonedSource(src, {host}, {MakeTrigger(2, d, 1.0f)}, 0);
  EXPECT_EQ(poisoned.labeled.size(), src.labeled.size() + 1);
  EXPECT_TRUE(std::binary_search(poisoned.labeled.begin(),
                                 poisoned.labeled.end(), host));
}

TEST(BuildPoisonedSourceTest, CleanGraphUntouched) {
  condense::SourceGraph src = TinySource();
  const int d = src.features.cols();
  const auto labels_before = src.labels;
  const int nnz_before = src.adj.nnz();
  BuildPoisonedSource(src, {src.labeled[0]}, {MakeTrigger(2, d, 1.0f)}, 0);
  EXPECT_EQ(src.labels, labels_before);
  EXPECT_EQ(src.adj.nnz(), nnz_before);
}

}  // namespace
}  // namespace bgc::attack
