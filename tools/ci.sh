#!/usr/bin/env bash
# Local CI matrix: the same legs a hosted pipeline would run, in order of
# increasing cost. Any failure stops the script (set -e).
#
#   1. Release build, full tier1 suite        (the ROADMAP gate)
#   2. Release `check-fast`                   (ctest -LE slow; the inner-loop
#                                              preset `make check-fast` uses)
#   3. Release BGC_SIMD=scalar leg            (check-fast + goldens under the
#                                              scalar reference backend: the
#                                              bit-exactness contract of
#                                              DESIGN.md §10)
#   4. Release BGC_FAST_MATH=1 leg            (check-fast minus the `pinned`
#                                              bit-exact goldens, plus
#                                              golden_metrics_test in its
#                                              tolerance-band mode: the
#                                              opt-in fused-GEMM tier of
#                                              DESIGN.md §14)
#   5. Malformed-env smoke                    (BGC_NUM_THREADS / BGC_SIMD /
#                                              BGC_FAST_MATH garbage must
#                                              exit 2 naming the value)
#   6. Release BGC_ARENA=off leg              (check-fast with the buffer
#                                              arena disabled: results must
#                                              not depend on buffer reuse)
#   7. Release autograd bit-identity leg      (goldens under
#                                              BGC_AUTOGRAD=parallel at
#                                              BGC_NUM_THREADS=1,2,8: the
#                                              DESIGN.md §11 contract)
#   8. Release sampled-training leg           (--train-mode=sampled bit-
#                                              identity across reruns and
#                                              BGC_NUM_THREADS=1/2/8, plus
#                                              the pinned sampler digest)
#   9. Release out-of-core leg                (streaming-writer byte-
#                                              identity + scaled sbm-1m
#                                              mmap training; BGC_SMOKE_1M=1
#                                              adds the 1M-node RSS budget)
#  10. Release bench sweeps                   (bench_micro_kernels --json +
#                                              its three GEMM gates: avx2
#                                              >=2x scalar, packed >=1.5x
#                                              axpy, fast tier >=1.05x
#                                              exact; bench_tape_replay
#                                              --json + the parallel-
#                                              backward gate)
#  11. ASan build, `sanitizer`-labeled suites (store/bgcbin+mmap fuzz/obs/
#                                              golden/sampler/minibatch —
#                                              byte-level and concurrent
#                                              code), then the tape/arena
#                                              suites with BGC_AUTOGRAD=
#                                              parallel and BGC_ARENA=off,
#                                              then outofcore_test
#  12. TSan build, obs/parallel/scheduler/tape (counter/timer thread safety,
#                                              grid workers, cache
#                                              single-flight, concurrent
#                                              grad reads), then tape_test
#                                              with BGC_AUTOGRAD=parallel
#
# Usage: tools/ci.sh [--skip-tsan] [--skip-asan]
# Build trees live in build-ci-{release,asan,tsan}, separate from ./build so
# CI runs never dirty the development tree.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
SKIP_ASAN=0
SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-asan) SKIP_ASAN=1 ;;
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

step() { printf '\n== %s ==\n' "$*"; }

step "Release build"
cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-ci-release -j "$JOBS"

step "Release: full tier1 suite"
ctest --test-dir build-ci-release -L tier1 -j "$JOBS" --output-on-failure

step "Release: check-fast preset (-LE slow)"
ctest --test-dir build-ci-release -LE slow -j "$JOBS" --output-on-failure

step "Release: SIMD scalar bit-identity leg (BGC_SIMD=scalar)"
# The same binaries, forced onto the scalar reference backend. Goldens
# must pass without regeneration under every backend — this is the
# enforcement of the bit-exactness contract (DESIGN.md §10): any kernel
# that vectorizes across a serial accumulation chain shows up here as a
# golden_metrics_test failure before it can corrupt a paper table.
BGC_SIMD=scalar ctest --test-dir build-ci-release -LE slow -j "$JOBS" \
    --output-on-failure
BGC_SIMD=scalar ./build-ci-release/tests/golden_metrics_test
./build-ci-release/tests/golden_metrics_test

step "Release: fast-math leg (BGC_FAST_MATH=1)"
# The opt-in fused-GEMM tier (DESIGN.md §14) is non-bit-exact by contract,
# so the `pinned` label (minibatch_test's bit-exact training goldens) is
# excluded; golden_metrics_test runs explicitly because it switches itself
# to a tolerance band when simd::FastMathEnabled() — everything else must
# pass untouched, which is how we know the tier only changes GEMM
# rounding, not semantics.
BGC_FAST_MATH=1 ctest --test-dir build-ci-release -LE "slow|pinned" \
    -j "$JOBS" --output-on-failure
BGC_FAST_MATH=1 ./build-ci-release/tests/golden_metrics_test

step "Malformed-env smoke (exit 2 contract)"
# Every BGC_* env knob shares one fail-fast rule: a malformed value exits 2
# with a message naming the variable and the value, before any work runs.
# env_contract_test covers this with death tests; this smoke proves the
# same behavior end to end through a real binary's startup path.
expect_exit2() {  # expect_exit2 VAR=value -- cmd...
  local env_pair="$1"; shift; shift
  local out rc=0
  out="$(env "$env_pair" "$@" 2>&1)" || rc=$?
  if [ "$rc" -ne 2 ]; then
    echo "FAIL: $env_pair did not exit 2 (got $rc)" >&2
    exit 1
  fi
  echo "$out" | grep -q "${env_pair%%=*}" || {
    echo "FAIL: $env_pair error message does not name the variable" >&2
    exit 1
  }
  echo "ok: $env_pair -> exit 2"
}
# `train` (not `generate`): the pool and the SIMD dispatch — where these
# vars are read — only initialize once real kernels run.
ENV_SMOKE="build-ci-release/envsmoke.bgcbin"
./build-ci-release/examples/bgc_cli generate --dataset=tiny-sim --seed=1 \
    --out="$ENV_SMOKE" > /dev/null
expect_exit2 BGC_NUM_THREADS=garbage -- \
    ./build-ci-release/examples/bgc_cli train --in="$ENV_SMOKE" \
    --epochs=1 --seed=1
expect_exit2 BGC_SIMD=bogus -- \
    ./build-ci-release/examples/bgc_cli train --in="$ENV_SMOKE" \
    --epochs=1 --seed=1
expect_exit2 BGC_FAST_MATH=banana -- \
    ./build-ci-release/examples/bgc_cli train --in="$ENV_SMOKE" \
    --epochs=1 --seed=1

step "Release: arena-off leg (BGC_ARENA=off)"
# Same binaries with every Matrix allocation falling through to plain
# new/delete. Buffer recycling must be invisible to results: any test that
# only passes with the arena on is reading stale bits from a reused buffer.
BGC_ARENA=off ctest --test-dir build-ci-release -LE slow -j "$JOBS" \
    --output-on-failure

step "Release: autograd parallel bit-identity leg (BGC_AUTOGRAD=parallel)"
# Goldens under the dependency-counted parallel backward engine at several
# thread counts. Bit-identical output is the DESIGN.md §11 contract — a
# kernel or fold that reorders float accumulation shows up here as a
# golden_metrics_test failure before it can corrupt a paper table.
for nt in 1 2 8; do
  BGC_AUTOGRAD=parallel BGC_NUM_THREADS="$nt" \
      ./build-ci-release/tests/golden_metrics_test
done
BGC_AUTOGRAD=serial ./build-ci-release/tests/golden_metrics_test

step "Release: kernel bench sweep (--json)"
# Per-backend GB/s / GFLOP/s rows plus three GEMM gates: avx2 >=2x
# scalar, packed >=1.5x the forced-axpy path, and the BGC_FAST_MATH tier
# >=1.05x exact (each auto-skips with a notice when cpuid lacks what it
# measures). The committed snapshot lives at bench/BENCH_kernels.json.
./build-ci-release/bench/bench_micro_kernels \
    --json build-ci-release/BENCH_kernels.json

step "Release: tape replay bench sweep (--json)"
# Serial-vs-parallel Backward() wall-clock + arena allocation counts, plus
# the parallel-beats-serial gate (auto-skips with a notice on one core).
# The committed snapshot lives at bench/BENCH_tape.json.
./build-ci-release/bench/bench_tape_replay \
    --json build-ci-release/BENCH_tape.json

step "Release: sampled-training determinism + golden leg"
# Neighbor-sampled minibatch training (--train-mode=sampled) must be
# bit-stable across reruns and thread counts (DESIGN.md §13): the sampler
# draws from its own seeded stream, so BGC_NUM_THREADS can only change
# wall-clock, never the batches. The pinned sampler-stream digest inside
# sampler_test enforces the same contract at the unit level.
SAMPLED_DIR="build-ci-release/sampled-leg"
rm -rf "$SAMPLED_DIR"
mkdir -p "$SAMPLED_DIR"
./build-ci-release/examples/bgc_cli generate --dataset=tiny-sim --seed=3 \
    --out="$SAMPLED_DIR/tiny.bgcbin" > /dev/null
for nt in 1 2 8; do
  BGC_NUM_THREADS="$nt" ./build-ci-release/examples/bgc_cli train \
      --in="$SAMPLED_DIR/tiny.bgcbin" --train-mode=sampled --epochs=10 \
      --fanout=5,5 --batch-size=16 --seed=7 > "$SAMPLED_DIR/train-nt$nt.txt"
  cmp "$SAMPLED_DIR/train-nt1.txt" "$SAMPLED_DIR/train-nt$nt.txt"
done
BGC_NUM_THREADS=2 ./build-ci-release/examples/bgc_cli train \
    --in="$SAMPLED_DIR/tiny.bgcbin" --train-mode=sampled --epochs=10 \
    --fanout=5,5 --batch-size=16 --seed=7 > "$SAMPLED_DIR/train-rerun.txt"
cmp "$SAMPLED_DIR/train-nt1.txt" "$SAMPLED_DIR/train-rerun.txt"
echo "sampled training is bit-identical across reruns and thread counts"
for nt in 1 2 8; do
  BGC_NUM_THREADS="$nt" ./build-ci-release/tests/sampler_test > /dev/null
done
echo "sampler stream digest pinned across BGC_NUM_THREADS=1/2/8"

step "Release: out-of-core leg (streaming writer + mmap training)"
# Streaming-writer byte-identity with the in-RAM writer plus a scaled
# sbm-1m stream/open/train pass. The full 1M-node peak-RSS smoke is
# opt-in: BGC_SMOKE_1M=1 tools/ci.sh (see tests/outofcore_test.cc).
BGC_SMOKE_1M="${BGC_SMOKE_1M:-}" ./build-ci-release/tests/outofcore_test

step "Release: parallel bench smoke (--jobs=4)"
# One fast grid through the scheduler at --jobs=4: catches --jobs wiring or
# determinism regressions that unit tests on GridRunner alone would miss.
# Table 1 is the smallest grid (4 cells) that still coalesces cache keys.
./build-ci-release/bench/bench_table1_naive_vs_bgc --repeats=1 --jobs=4 \
    > /dev/null

step "Release: transfer-matrix bit-identity smoke (--jobs=1 vs --jobs=8)"
# The attack × reduction × defense sweep's bgc-transfer-matrix-v1 JSON
# report must be byte-identical at every --jobs: units are pure functions
# of their index and the reduction runs in unit order.
TM_DIR="build-ci-release/transfer-matrix"
rm -rf "$TM_DIR"
mkdir -p "$TM_DIR"
./build-ci-release/bench/bench_transfer_matrix --repeats=1 --jobs=1 \
    --json="$TM_DIR/j1.json" > /dev/null
./build-ci-release/bench/bench_transfer_matrix --repeats=1 --jobs=8 \
    --json="$TM_DIR/j8.json" > /dev/null
cmp "$TM_DIR/j1.json" "$TM_DIR/j8.json"
echo "transfer matrix JSON is bit-identical across --jobs"

step "Release: reduction backends thread-count bit-identity"
# src/reduce is serial by construction and reduce_test pins a golden
# RunOnce cell; passing unchanged at several BGC_NUM_THREADS values proves
# the backends (and the eval kernels under them) never pick up a
# thread-count dependence.
for nt in 1 2 8; do
  BGC_NUM_THREADS="$nt" ./build-ci-release/tests/reduce_test > /dev/null
done
echo "reduce suite passes at BGC_NUM_THREADS=1/2/8"

step "Release: serve leg (daemon + loadgen + CLI bit-identity + drain)"
# Boots the poison_service daemon on an ephemeral port, fires 4 concurrent
# mixed-workload clients at it (with a shared artifact cache, so duplicate
# condensations must coalesce), then proves a server-run condense job is
# byte-identical to the same spec run serially through bgc_cli, and that
# SIGTERM drains cleanly with a final obs report carrying the serve
# counters.
SERVE_DIR="build-ci-release/serve-leg"
rm -rf "$SERVE_DIR"
mkdir -p "$SERVE_DIR/state" "$SERVE_DIR/cache" "$SERVE_DIR/out"
./build-ci-release/examples/poison_service --port=0 \
    --port-file="$SERVE_DIR/port" --jobs=2 --queue-depth=16 \
    --state-dir="$SERVE_DIR/state" --artifact-dir="$SERVE_DIR/cache" \
    --metrics-out="$SERVE_DIR/obs.json" > "$SERVE_DIR/daemon.log" &
SERVE_PID=$!
for _ in $(seq 1 50); do
  [ -s "$SERVE_DIR/port" ] && break
  sleep 0.1
done
SERVE_PORT="$(cat "$SERVE_DIR/port")"
grep -q "bgc-serve-v1 listening on port $SERVE_PORT" "$SERVE_DIR/daemon.log"
# --evals-per-client submits identical eval cells from every client, so
# the server's eval single-flight memo must report hits (computed once).
./build-ci-release/tools/bgc_loadgen --port="$SERVE_PORT" --clients=4 \
    --jobs-per-client=2 --evals-per-client=1 --out-dir="$SERVE_DIR/out" \
    --expect-cache-reuse --expect-eval-cache-reuse
# Bit-identity: one more condense job through the server, the same spec
# serially through bgc_cli, compared byte for byte.
printf '%s\n' \
  '{"op":"submit","client":"ci","kind":"condense","spec":{"dataset":"cora-sim","scale":0.2,"seed":101,"method":"gcond","n":8,"epochs":6,"out":"'"$PWD/$SERVE_DIR/out/ci101.bgcbin"'"}}' \
  > "$SERVE_DIR/submit.jsonl"
SERVE_JOB="$(python3 - "$SERVE_PORT" "$SERVE_DIR/submit.jsonl" <<'EOF'
import json, socket, sys
with socket.create_connection(("127.0.0.1", int(sys.argv[1]))) as s:
    f = s.makefile("rw")
    request = open(sys.argv[2]).read()
    f.write(request); f.flush()
    reply = json.loads(f.readline())
    assert reply["ok"], reply
    f.write(json.dumps({"op": "wait", "client": "ci",
                        "job": reply["job"]}) + "\n")
    f.flush()
    done = json.loads(f.readline())
    assert done["ok"] and done["state"] == "DONE", done
    print(reply["job"])
EOF
)"
echo "server job $SERVE_JOB DONE"
./build-ci-release/examples/bgc_cli generate --dataset=cora-sim --seed=101 \
    --scale=0.2 --out="$SERVE_DIR/cli101.bgcbin" > /dev/null
./build-ci-release/examples/bgc_cli condense --in="$SERVE_DIR/cli101.bgcbin" \
    --seed=101 --method=gcond --n=8 --epochs=6 \
    --out="$SERVE_DIR/cli101_cond.bgcbin" > /dev/null
cmp "$SERVE_DIR/out/ci101.bgcbin" "$SERVE_DIR/cli101_cond.bgcbin"
echo "server condense artifact is bit-identical to the bgc_cli run"
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
grep -q '"serve.jobs_completed"' "$SERVE_DIR/obs.json"
grep -q '"serve.jobs_accepted"' "$SERVE_DIR/obs.json"
echo "daemon drained on SIGTERM; obs report carries serve.* counters"

if [ "$SKIP_ASAN" -eq 0 ]; then
  step "ASan build"
  cmake -B build-ci-asan -S . -DBGC_SANITIZE=address >/dev/null
  cmake --build build-ci-asan -j "$JOBS"
  step "ASan: sanitizer-labeled suites"
  ctest --test-dir build-ci-asan -L sanitizer -j "$JOBS" --output-on-failure
  step "ASan: tape/arena suites under BGC_AUTOGRAD=parallel + BGC_ARENA=off"
  # The arena caches raw buffers, which hides use-after-release from ASan;
  # BGC_ARENA=off restores byte-precise poisoning. The parallel engine's
  # slot buffers and cascade worklists get the same treatment.
  BGC_AUTOGRAD=parallel BGC_ARENA=off ./build-ci-asan/tests/tape_test
  BGC_AUTOGRAD=parallel BGC_ARENA=off ./build-ci-asan/tests/tape_gradcheck_test
  BGC_AUTOGRAD=parallel BGC_ARENA=off ./build-ci-asan/tests/arena_test
  step "ASan: out-of-core suite (streaming writer + mmap reader)"
  # The mmap fuzz sweeps inside bgcbin_fuzz_test already ran via the
  # sanitizer label; outofcore_test is slow-labeled, so run it explicitly —
  # the streaming writer does raw chunked byte assembly worth poisoning.
  ./build-ci-asan/tests/outofcore_test
fi

if [ "$SKIP_TSAN" -eq 0 ]; then
  step "TSan build"
  cmake -B build-ci-tsan -S . -DBGC_SANITIZE=thread >/dev/null
  cmake --build build-ci-tsan -j "$JOBS"
  step "TSan: obs + thread-pool + grid-scheduler + tape suites"
  # BGC_METRICS=0 keeps emission quiet; the tests enable collection
  # themselves. Run the concurrency-sensitive binaries directly so TSan
  # sees the raw threads. tape_test covers the concurrent post-Backward
  # grad reads that the old const_cast lazy materialization raced on.
  ./build-ci-tsan/tests/obs_test
  ./build-ci-tsan/tests/parallel_test
  ./build-ci-tsan/tests/scheduler_test
  ./build-ci-tsan/tests/tape_test
  step "TSan: serve suite (accept loop, worker slots, drain, streaming)"
  ./build-ci-tsan/tests/serve_test
  step "TSan: reduce suite (serial backends over the pooled eval kernels)"
  BGC_NUM_THREADS=4 ./build-ci-tsan/tests/reduce_test
  step "TSan: tape + arena under BGC_AUTOGRAD=parallel"
  # Force the dependency-counted engine even where tests don't set it
  # explicitly, so TSan watches slot writes, the pending-counter cascade,
  # and arena free-list handoff under real worker threads.
  BGC_AUTOGRAD=parallel BGC_NUM_THREADS=4 ./build-ci-tsan/tests/tape_test
  BGC_AUTOGRAD=parallel BGC_NUM_THREADS=4 \
      ./build-ci-tsan/tests/tape_gradcheck_test
  BGC_AUTOGRAD=parallel BGC_NUM_THREADS=4 ./build-ci-tsan/tests/arena_test
  step "TSan: sampler + minibatch suites under BGC_NUM_THREADS=4"
  # Sampling is serial by contract, but the per-batch forward/backward
  # runs on the shared pool; TSan watches the sampler's RNG streams and
  # the gathered-feature buffers against the parallel kernels.
  BGC_NUM_THREADS=4 ./build-ci-tsan/tests/sampler_test
  BGC_NUM_THREADS=4 ./build-ci-tsan/tests/minibatch_test
fi

step "CI matrix passed"
