// Load generator for the bgc-serve-v1 daemon.
//
//   $ tools/bgc_loadgen --port=41873 --clients=4 --jobs-per-client=2
//   16 jobs DONE in 12.4s (1.29 jobs/s)  latency ms p50=5200 ...
//
// Fires N concurrent clients at a running poison_service, each submitting
// a mixed condense/attack workload (plus --evals-per-client eval jobs),
// waiting for every job, and recording submit-to-done latency. Clients
// deliberately reuse the same job seeds, so a server with an artifact
// cache should coalesce or hit on the duplicate condensations —
// --expect-cache-reuse turns that into a hard assertion, and
// --expect-eval-cache-reuse does the same for the server's eval
// single-flight memo. Any job that does not end DONE fails the run
// (exit 1); bad flags exit 2.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/core/parse.h"
#include "src/obs/json.h"
#include "src/serve/client.h"
#include "src/serve/protocol.h"

namespace {

using bgc::obs::JsonValue;
using Clock = std::chrono::steady_clock;

struct LoadgenOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int clients = 4;
  int jobs_per_client = 2;
  /// Extra eval-kind jobs per client, appended after the mixed workload.
  /// Their specs depend only on the job index, so every client submits
  /// identical eval cells — fodder for the server's eval single-flight
  /// memo (--expect-eval-cache-reuse asserts it actually reused).
  int evals_per_client = 0;
  long long seed = 1;
  std::string out_dir;  // when set, condense jobs write artifacts here
  bool expect_cache_reuse = false;
  bool expect_eval_cache_reuse = false;
  // Workload shape (kept small so a CI run finishes in seconds).
  std::string dataset = "cora-sim";
  double scale = 0.2;
  int n = 8;
  int epochs = 6;
  int victim_epochs = 40;
};

struct JobOutcome {
  bool done = false;
  double latency_ms = 0.0;
  std::string detail;
};

[[noreturn]] void BadFlag(const std::string& flag, const bgc::Status& why) {
  std::fprintf(stderr, "bad --%s: %s\n", flag.c_str(),
               why.message().c_str());
  std::exit(2);
}

enum class SpecKind { kCondense, kAttack, kEval };

/// Builds the j-th job spec for client c. Even j's are condense jobs (the
/// seed, and hence the cache key, depends only on j — every client
/// submits the same condensations); odd j's are attack jobs. Eval specs
/// likewise depend only on j, so duplicates across clients hit the
/// server's eval single-flight memo.
std::string BuildSpec(const LoadgenOptions& opts, int client, int job,
                      SpecKind kind) {
  std::string spec = "{\"dataset\":";
  bgc::serve::AppendJsonString(spec, opts.dataset);
  spec += ",\"scale\":";
  bgc::serve::AppendJsonNumber(spec, opts.scale);
  spec += ",\"seed\":" + std::to_string(opts.seed + job);
  spec += ",\"method\":\"gcond\"";
  spec += ",\"n\":" + std::to_string(opts.n);
  spec += ",\"epochs\":" + std::to_string(opts.epochs);
  if (kind == SpecKind::kCondense) {
    if (!opts.out_dir.empty()) {
      spec += ",\"out\":";
      bgc::serve::AppendJsonString(
          spec, opts.out_dir + "/c" + std::to_string(client) + "_j" +
                    std::to_string(job) + ".bgcbin");
    }
  } else {
    spec += ",\"attack\":\"bgc\",\"target\":0,\"trigger-size\":3";
    spec += ",\"poison-ratio\":0.1";
    spec += ",\"victim-epochs\":" + std::to_string(opts.victim_epochs);
    if (kind == SpecKind::kEval) spec += ",\"repeats\":1";
  }
  spec += '}';
  return spec;
}

void RunClient(const LoadgenOptions& opts, int client,
               std::vector<JobOutcome>& outcomes) {
  bgc::StatusOr<bgc::serve::Client> conn = bgc::serve::Client::Connect(
      opts.host, opts.port, "loadgen-" + std::to_string(client));
  if (!conn.ok()) {
    for (JobOutcome& o : outcomes) o.detail = conn.status().message();
    return;
  }
  bgc::serve::Client& c = conn.value();
  const int total = opts.jobs_per_client + opts.evals_per_client;
  for (int j = 0; j < total; ++j) {
    JobOutcome& outcome = outcomes[j];
    const SpecKind kind = j >= opts.jobs_per_client ? SpecKind::kEval
                          : j % 2 == 0              ? SpecKind::kCondense
                                                    : SpecKind::kAttack;
    const char* kind_name = kind == SpecKind::kCondense ? "condense"
                            : kind == SpecKind::kAttack ? "attack"
                                                        : "eval";
    // Eval job indices restart at 0 so every client's eval specs match.
    const int spec_index =
        kind == SpecKind::kEval ? j - opts.jobs_per_client : j;
    const std::string spec = BuildSpec(opts, client, spec_index, kind);
    const auto t0 = Clock::now();
    std::string job_id;
    for (;;) {
      bgc::StatusOr<std::string> submitted = c.Submit(kind_name, spec);
      if (submitted.ok()) {
        job_id = submitted.take();
        break;
      }
      // A full queue is back-pressure, not failure: retry after a beat.
      if (bgc::serve::Client::StatusCode(submitted.status()) == 429) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        continue;
      }
      outcome.detail = submitted.status().message();
      break;
    }
    if (job_id.empty()) continue;
    bgc::StatusOr<JsonValue> reply = c.Wait(job_id);
    outcome.latency_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (!reply.ok()) {
      outcome.detail = reply.status().message();
      continue;
    }
    const JsonValue* state = reply.value().Find("state");
    if (state != nullptr && state->is_string() && state->str == "DONE") {
      outcome.done = true;
    } else {
      const JsonValue* error = reply.value().Find("error");
      outcome.detail = error != nullptr && error->is_string()
                           ? error->str
                           : "job did not finish DONE";
    }
  }
}

double Percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0.0;
  const size_t rank = static_cast<size_t>(p * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace bgc;  // NOLINT

  LoadgenOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--expect-cache-reuse") {
      opts.expect_cache_reuse = true;
      continue;
    }
    if (arg == "--expect-eval-cache-reuse") {
      opts.expect_eval_cache_reuse = true;
      continue;
    }
    const size_t eq = arg.find('=');
    if (arg.compare(0, 2, "--") != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "bad flag: %s\n", arg.c_str());
      return 2;
    }
    const std::string key = arg.substr(2, eq - 2);
    const std::string value = arg.substr(eq + 1);
    const auto take_int = [&](long long min, long long max) {
      StatusOr<long long> v = ParseIntInRange(value, min, max);
      if (!v.ok()) BadFlag(key, v.status());
      return static_cast<int>(v.value());
    };
    if (key == "host") {
      opts.host = value;
    } else if (key == "port") {
      opts.port = take_int(1, 65535);
    } else if (key == "clients") {
      opts.clients = take_int(1, 256);
    } else if (key == "jobs-per-client") {
      opts.jobs_per_client = take_int(1, 1000);
    } else if (key == "evals-per-client") {
      opts.evals_per_client = take_int(0, 1000);
    } else if (key == "seed") {
      opts.seed = take_int(0, 1LL << 40);
    } else if (key == "out-dir") {
      opts.out_dir = value;
    } else if (key == "dataset") {
      opts.dataset = value;
    } else if (key == "scale") {
      StatusOr<double> v = ParseDoubleInRange(value, 0.01, 1.0);
      if (!v.ok()) BadFlag(key, v.status());
      opts.scale = v.value();
    } else if (key == "n") {
      opts.n = take_int(1, 100000);
    } else if (key == "epochs") {
      opts.epochs = take_int(1, 100000);
    } else if (key == "victim-epochs") {
      opts.victim_epochs = take_int(1, 100000);
    } else {
      std::fprintf(stderr, "unknown flag: --%s\n", key.c_str());
      return 2;
    }
  }
  if (opts.port == 0) {
    std::fprintf(stderr, "--port is required\n");
    return 2;
  }

  std::vector<std::vector<JobOutcome>> outcomes(
      opts.clients, std::vector<JobOutcome>(opts.jobs_per_client +
                                            opts.evals_per_client));
  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(opts.clients);
  for (int c = 0; c < opts.clients; ++c) {
    threads.emplace_back(
        [&, c] { RunClient(opts, c, outcomes[c]); });
  }
  for (std::thread& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - t0).count();

  int done = 0;
  int failed = 0;
  std::vector<double> latencies;
  for (int c = 0; c < opts.clients; ++c) {
    const int total = opts.jobs_per_client + opts.evals_per_client;
    for (int j = 0; j < total; ++j) {
      const JobOutcome& o = outcomes[c][j];
      if (o.done) {
        ++done;
        latencies.push_back(o.latency_ms);
      } else {
        ++failed;
        std::fprintf(stderr, "client %d job %d failed: %s\n", c, j,
                     o.detail.c_str());
      }
    }
  }
  std::sort(latencies.begin(), latencies.end());
  std::printf("%d/%d jobs DONE in %.1fs (%.2f jobs/s)\n", done,
              done + failed, wall_s, wall_s > 0 ? done / wall_s : 0.0);
  std::printf("latency ms: p50=%.0f p90=%.0f p99=%.0f max=%.0f\n",
              Percentile(latencies, 0.50), Percentile(latencies, 0.90),
              Percentile(latencies, 0.99),
              latencies.empty() ? 0.0 : latencies.back());

  // One extra connection for the server-side view (cache reuse counters).
  long long reuse = -1;
  long long eval_reuse = -1;
  StatusOr<serve::Client> stats_conn =
      serve::Client::Connect(opts.host, opts.port, "loadgen-stats");
  if (stats_conn.ok()) {
    StatusOr<obs::JsonValue> stats = stats_conn.value().Stats();
    if (stats.ok()) {
      if (const JsonValue* cache = stats.value().Find("cache")) {
        const JsonValue* hits = cache->Find("hits");
        const JsonValue* coalesced = cache->Find("coalesced");
        reuse = 0;
        if (hits != nullptr) reuse += static_cast<long long>(hits->number);
        if (coalesced != nullptr) {
          reuse += static_cast<long long>(coalesced->number);
        }
        std::printf("cache reuse: hits+coalesced=%lld\n", reuse);
      }
      if (const JsonValue* ec = stats.value().Find("eval_cache")) {
        const JsonValue* hits = ec->Find("hits");
        if (hits != nullptr) {
          eval_reuse = static_cast<long long>(hits->number);
          std::printf("eval cache reuse: hits=%lld\n", eval_reuse);
        }
      }
    }
  }
  if (opts.expect_cache_reuse && reuse <= 0) {
    std::fprintf(stderr,
                 "expected cache reuse but hits+coalesced=%lld\n", reuse);
    return 1;
  }
  if (opts.expect_eval_cache_reuse && eval_reuse <= 0) {
    std::fprintf(stderr, "expected eval cache reuse but hits=%lld\n",
                 eval_reuse);
    return 1;
  }
  return failed == 0 ? 0 : 1;
}
