#include "src/store/artifact_cache.h"

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "src/core/fs.h"
#include "src/core/hash.h"
#include "src/obs/obs.h"
#include "src/store/bgcbin.h"
#include "src/store/serialize.h"

namespace bgc::store {
namespace {

// Cache entries embed a condensed graph plus provenance; the distinct kind
// keeps them from being confused with shipped bgc.condensed artifacts.
constexpr char kKindCacheEntry[] = "bgc.cache.condensed";

std::string FmtFloat(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::string CanonicalCondenseKey(const condense::CondenseConfig& c) {
  std::string key = "condense{";
  key += "num_condensed=" + std::to_string(c.num_condensed);
  key += ",epochs=" + std::to_string(c.epochs);
  key += ",feature_lr=" + FmtFloat(c.feature_lr);
  key += ",adj_lr=" + FmtFloat(c.adj_lr);
  key += ",inner_steps=" + std::to_string(c.inner_steps);
  key += ",model_steps=" + std::to_string(c.model_steps);
  key += ",model_lr=" + FmtFloat(c.model_lr);
  key += ",dc_model_lr=" + FmtFloat(c.dc_model_lr);
  key += ",dc_feature_lr=" + FmtFloat(c.dc_feature_lr);
  key += ",sgc_k=" + std::to_string(c.sgc_k);
  key += ",adj_rank=" + std::to_string(c.adj_rank);
  key += ",adj_bias_init=" + FmtFloat(c.adj_bias_init);
  key += ",ridge_lambda=" + FmtFloat(c.ridge_lambda);
  key += ",sntk_lr=" + FmtFloat(c.sntk_lr);
  key += ",sntk_batch=" + std::to_string(c.sntk_batch);
  key += ",sparsify_keep=" + FmtFloat(c.sparsify_keep);
  key += ",seed=" + std::to_string(c.seed);
  key += "}";
  return key;
}

std::string CanonicalAttackKey(const attack::AttackConfig& c) {
  std::string key = "attack{";
  key += "target_class=" + std::to_string(c.target_class);
  key += ",trigger_size=" + std::to_string(c.trigger_size);
  key += ",poison_budget=" + std::to_string(c.poison_budget);
  key += ",poison_ratio=" + FmtFloat(c.poison_ratio);
  key += ",clusters_per_class=" + std::to_string(c.clusters_per_class);
  key += ",selector_lambda=" + FmtFloat(c.selector_lambda);
  key += ",selector_epochs=" + std::to_string(c.selector_epochs);
  key += ",surrogate_steps=" + std::to_string(c.surrogate_steps);
  key += ",generator_steps=" + std::to_string(c.generator_steps);
  key += ",generator_lr=" + FmtFloat(c.generator_lr);
  key += ",surrogate_lr=" + FmtFloat(c.surrogate_lr);
  key += ",surrogate_hidden=" + std::to_string(c.surrogate_hidden);
  key += ",generator_hidden=" + std::to_string(c.generator_hidden);
  key += ",update_batch=" + std::to_string(c.update_batch);
  key += ",trigger_feature_scale=" + FmtFloat(c.trigger_feature_scale);
  key += ",ego_hops=" + std::to_string(c.ego.hops);
  key += ",ego_cap_per_hop=" + std::to_string(c.ego.cap_per_hop);
  key += ",selection=" + c.selection;
  key += ",clean_label=" + std::to_string(c.clean_label ? 1 : 0);
  key += ",trigger_type=" + c.trigger_type;
  key += ",seed=" + std::to_string(c.seed);
  key += "}";
  return key;
}

std::string CondensedCacheKey(const std::string& dataset,
                              double dataset_scale, const std::string& method,
                              const condense::CondenseConfig& config,
                              uint64_t seed) {
  return "condensed-v1{dataset=" + dataset +
         ",scale=" + FmtFloat(dataset_scale) + ",method=" + method +
         ",seed=" + std::to_string(seed) + "," +
         CanonicalCondenseKey(config) + "}";
}

struct ArtifactCache::InFlight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool ok = false;
  /// What a follower would have spent: the leader's fresh compute time, or
  /// the recorded compute time of the disk entry the leader served.
  double saved_equivalent_seconds = 0.0;
  condense::CondensedGraph result;
};

ArtifactCache::ArtifactCache(std::string dir) : dir_(std::move(dir)) {
  ::mkdir(dir_.c_str(), 0755);  // best-effort; writes surface real errors
}

ArtifactCache::~ArtifactCache() = default;

ArtifactCacheStats ArtifactCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::unique_ptr<ArtifactCache> ArtifactCache::FromEnv() {
  const char* dir = std::getenv("BGC_ARTIFACT_DIR");
  if (dir == nullptr || dir[0] == '\0') return nullptr;
  return std::make_unique<ArtifactCache>(dir);
}

std::string ArtifactCache::EntryPath(const std::string& canonical_key) const {
  char name[32];
  std::snprintf(name, sizeof(name), "%016llx.bgcbin",
                static_cast<unsigned long long>(Fnv1a64(canonical_key)));
  return dir_ + "/" + name;
}

condense::CondensedGraph ArtifactCache::LoadOrCompute(
    const std::string& canonical_key,
    const std::function<condense::CondensedGraph()>& compute,
    double& saved_equivalent_seconds) {
  const std::string path = EntryPath(canonical_key);
  if (FileExists(path)) {
    Status problem = Status::Ok();
    StatusOr<BgcbinReader> opened = BgcbinReader::Open(path);
    if (opened.ok()) {
      const BgcbinReader& reader = opened.value();
      std::string stored_key;
      double stored_compute_seconds = 0.0;
      StatusOr<SectionReader> meta = reader.Section("cache_meta");
      if (meta.ok()) {
        SectionReader r = meta.take();
        if (r.GetString() != kKindCacheEntry) {
          problem = BGC_ERR(path + ": not a cache entry");
        } else {
          stored_key = r.GetString();
          stored_compute_seconds = r.GetF64();
          if (!r.ok()) problem = r.status();
        }
      } else {
        problem = meta.status();
      }
      if (problem.ok() && stored_key != canonical_key) {
        problem = BGC_ERR(path + ": key mismatch (hash collision or stale)");
      }
      if (problem.ok()) {
        StatusOr<condense::CondensedGraph> loaded =
            ReadCondensedSections(reader);
        if (loaded.ok()) {
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.hits;
            stats_.saved_seconds += stored_compute_seconds;
          }
          saved_equivalent_seconds = stored_compute_seconds;
          BGC_COUNTER_ADD("store.cache.hits", 1);
          return loaded.take();
        }
        problem = loaded.status();
      }
    } else {
      problem = opened.status();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rejected;
    }
    BGC_COUNTER_ADD("store.cache.rejected", 1);
    std::fprintf(stderr,
                 "[bgc::store] discarding bad cache entry: %s (recomputing)\n",
                 problem.message().c_str());
  }

  const double start = NowSeconds();
  condense::CondensedGraph result = compute();
  const double elapsed = NowSeconds() - start;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    stats_.compute_seconds += elapsed;
  }
  saved_equivalent_seconds = elapsed;
  BGC_COUNTER_ADD("store.cache.misses", 1);

  BgcbinWriter writer;
  SectionWriter& meta = writer.AddSection("cache_meta");
  meta.PutString(kKindCacheEntry);
  meta.PutString(canonical_key);
  meta.PutF64(elapsed);
  AddCondensedSections(writer, result);
  if (Status s = writer.WriteTo(path); !s.ok()) {
    std::fprintf(stderr, "[bgc::store] cannot write cache entry: %s\n",
                 s.message().c_str());
  }
  return result;
}

condense::CondensedGraph ArtifactCache::GetOrComputeCondensed(
    const std::string& canonical_key,
    const std::function<condense::CondensedGraph()>& compute) {
  // Single-flight election: the first caller of a key leads; later callers
  // of the same key wait for the leader's published result instead of
  // loading or computing it again.
  std::shared_ptr<InFlight> flight;
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto [it, inserted] =
          inflight_.try_emplace(canonical_key, nullptr);
      if (inserted) {
        it->second = std::make_shared<InFlight>();
        flight = it->second;
        break;  // this caller is the leader
      }
      flight = it->second;
    }
    bool leader_ok = false;
    double saved = 0.0;
    condense::CondensedGraph shared;
    {
      std::unique_lock<std::mutex> flock(flight->mu);
      flight->cv.wait(flock, [&] { return flight->done; });
      leader_ok = flight->ok;
      if (leader_ok) {
        shared = flight->result;
        saved = flight->saved_equivalent_seconds;
      }
      // flock must release before `flight` drops below: this follower may
      // hold the last reference, and unlocking a destroyed mutex is UB.
    }
    if (leader_ok) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.coalesced;
        stats_.saved_seconds += saved;
      }
      BGC_COUNTER_ADD("store.cache.coalesced", 1);
      return shared;
    }
    // The leader failed; loop to elect a new leader (likely this caller).
    flight.reset();
  }

  try {
    double saved_equivalent_seconds = 0.0;
    condense::CondensedGraph result =
        LoadOrCompute(canonical_key, compute, saved_equivalent_seconds);
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_.erase(canonical_key);
    }
    {
      std::lock_guard<std::mutex> flock(flight->mu);
      flight->result = result;
      flight->saved_equivalent_seconds = saved_equivalent_seconds;
      flight->ok = true;
      flight->done = true;
    }
    flight->cv.notify_all();
    return result;
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_.erase(canonical_key);
    }
    {
      std::lock_guard<std::mutex> flock(flight->mu);
      flight->done = true;  // ok stays false: followers re-elect
    }
    flight->cv.notify_all();
    throw;
  }
}

}  // namespace bgc::store
