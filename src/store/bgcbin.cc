#include "src/store/bgcbin.h"

#include <cstring>

#include "src/core/check.h"
#include "src/core/fs.h"
#include "src/core/hash.h"
#include "src/obs/obs.h"

namespace bgc::store {
namespace {

constexpr char kMagic[6] = {'B', 'G', 'C', 'B', 'I', 'N'};
constexpr uint16_t kVersion = 1;
// 6 magic + u16 version + u32 section_count + u32 table_crc.
constexpr size_t kHeaderSize = 16;

void AppendLe(std::string* out, uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint64_t ReadLe(const char* p, int bytes) {
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

void SectionWriter::PutU8(uint8_t v) { AppendLe(&bytes_, v, 1); }
void SectionWriter::PutU16(uint16_t v) { AppendLe(&bytes_, v, 2); }
void SectionWriter::PutU32(uint32_t v) { AppendLe(&bytes_, v, 4); }
void SectionWriter::PutU64(uint64_t v) { AppendLe(&bytes_, v, 8); }

void SectionWriter::PutF32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits);
}

void SectionWriter::PutF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void SectionWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  bytes_.append(s.data(), s.size());
}

void SectionWriter::PutBytes(const void* data, size_t n) {
  bytes_.append(static_cast<const char*>(data), n);
}

SectionReader::SectionReader(std::string_view bytes, std::string section_name)
    : bytes_(bytes), name_(std::move(section_name)) {}

template <typename T>
T SectionReader::GetScalar() {
  if (!status_.ok()) return T{};
  if (bytes_.size() - pos_ < sizeof(T)) {
    Fail("truncated (wanted " + std::to_string(sizeof(T)) + " bytes, " +
         std::to_string(bytes_.size() - pos_) + " left)");
    return T{};
  }
  uint64_t raw = ReadLe(bytes_.data() + pos_, sizeof(T));
  pos_ += sizeof(T);
  return static_cast<T>(raw);
}

uint8_t SectionReader::GetU8() { return GetScalar<uint8_t>(); }
uint16_t SectionReader::GetU16() { return GetScalar<uint16_t>(); }
uint32_t SectionReader::GetU32() { return GetScalar<uint32_t>(); }
uint64_t SectionReader::GetU64() { return GetScalar<uint64_t>(); }

float SectionReader::GetF32() {
  uint32_t bits = GetU32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double SectionReader::GetF64() {
  uint64_t bits = GetU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SectionReader::GetString() {
  uint32_t n = GetU32();
  if (!status_.ok()) return {};
  if (bytes_.size() - pos_ < n) {
    Fail("truncated string (wanted " + std::to_string(n) + " bytes, " +
         std::to_string(bytes_.size() - pos_) + " left)");
    return {};
  }
  std::string s(bytes_.data() + pos_, n);
  pos_ += n;
  return s;
}

void SectionReader::GetBytes(void* out, size_t n) {
  if (!status_.ok()) return;
  if (bytes_.size() - pos_ < n) {
    Fail("truncated byte block (wanted " + std::to_string(n) + " bytes, " +
         std::to_string(bytes_.size() - pos_) + " left)");
    return;
  }
  std::memcpy(out, bytes_.data() + pos_, n);
  pos_ += n;
}

void SectionReader::Fail(const std::string& message) {
  if (status_.ok()) {
    status_ = Status::Error("section \"" + name_ + "\": " + message);
  }
}

SectionWriter& BgcbinWriter::AddSection(const std::string& name) {
  for (const auto& [existing, unused] : sections_) {
    BGC_CHECK_MSG(existing != name, "duplicate bgcbin section: " + name);
  }
  sections_.emplace_back(name, SectionWriter());
  return sections_.back().second;
}

std::string BgcbinWriter::Serialize() const {
  std::string table;
  for (const auto& [name, writer] : sections_) {
    AppendLe(&table, name.size(), 2);
    table.append(name);
    AppendLe(&table, writer.bytes().size(), 8);
    AppendLe(&table, Crc32(writer.bytes().data(), writer.bytes().size()), 4);
  }
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendLe(&out, kVersion, 2);
  AppendLe(&out, sections_.size(), 4);
  AppendLe(&out, Crc32(table.data(), table.size()), 4);
  out.append(table);
  for (const auto& [unused, writer] : sections_) out.append(writer.bytes());
  return out;
}

Status BgcbinWriter::WriteTo(const std::string& path) const {
  BGC_TRACE_SCOPE("store.write");
  std::string bytes = Serialize();
  BGC_COUNTER_ADD("store.bytes_written", static_cast<long long>(bytes.size()));
  return WriteFileAtomic(path, bytes);
}

StatusOr<BgcbinReader> BgcbinReader::Open(const std::string& path) {
  BGC_TRACE_SCOPE("store.read");
  StatusOr<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  BGC_COUNTER_ADD("store.bytes_read",
                  static_cast<long long>(bytes.value().size()));
  return Parse(bytes.take(), path);
}

StatusOr<BgcbinReader> BgcbinReader::Parse(std::string bytes,
                                           std::string origin) {
  auto err = [&origin](const std::string& msg) {
    return BGC_ERR(origin + ": " + msg);
  };
  if (bytes.size() < kHeaderSize) return err("truncated bgcbin header");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return err("not a bgcbin file (bad magic)");
  }
  uint16_t version = static_cast<uint16_t>(ReadLe(bytes.data() + 6, 2));
  if (version != kVersion) {
    return err("unsupported bgcbin version " + std::to_string(version) +
               " (this build reads v" + std::to_string(kVersion) + ")");
  }
  size_t section_count = static_cast<size_t>(ReadLe(bytes.data() + 8, 4));
  uint32_t table_crc = static_cast<uint32_t>(ReadLe(bytes.data() + 12, 4));

  BgcbinReader reader;
  size_t pos = kHeaderSize;
  uint64_t payload_total = 0;
  std::vector<uint32_t> payload_crcs;
  for (size_t i = 0; i < section_count; ++i) {
    if (bytes.size() - pos < 2) return err("truncated section table");
    size_t name_len = static_cast<size_t>(ReadLe(bytes.data() + pos, 2));
    pos += 2;
    if (bytes.size() - pos < name_len + 12) {
      return err("truncated section table");
    }
    Entry e;
    e.name.assign(bytes.data() + pos, name_len);
    pos += name_len;
    e.size = static_cast<size_t>(ReadLe(bytes.data() + pos, 8));
    pos += 8;
    payload_crcs.push_back(static_cast<uint32_t>(ReadLe(bytes.data() + pos, 4)));
    pos += 4;
    payload_total += e.size;
    reader.entries_.push_back(std::move(e));
  }
  uint32_t actual_table_crc =
      Crc32(bytes.data() + kHeaderSize, pos - kHeaderSize);
  if (actual_table_crc != table_crc) {
    return err("section table checksum mismatch (file corrupt)");
  }
  if (bytes.size() - pos != payload_total) {
    return err("payload size mismatch: table declares " +
               std::to_string(payload_total) + " bytes, file has " +
               std::to_string(bytes.size() - pos));
  }
  for (size_t i = 0; i < reader.entries_.size(); ++i) {
    Entry& e = reader.entries_[i];
    e.offset = pos;
    uint32_t actual = Crc32(bytes.data() + pos, e.size);
    if (actual != payload_crcs[i]) {
      return err("section \"" + e.name +
                 "\" checksum mismatch (file corrupt)");
    }
    pos += e.size;
  }
  reader.bytes_ = std::move(bytes);
  reader.origin_ = std::move(origin);
  return reader;
}

bool BgcbinReader::HasSection(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

StatusOr<SectionReader> BgcbinReader::Section(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) {
      return SectionReader(
          std::string_view(bytes_.data() + e.offset, e.size), name);
    }
  }
  return BGC_ERR(origin_ + ": missing section \"" + name + "\"");
}

std::vector<std::string> BgcbinReader::SectionNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& e : entries_) names.push_back(e.name);
  return names;
}

}  // namespace bgc::store
