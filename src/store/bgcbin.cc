#include "src/store/bgcbin.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/core/check.h"
#include "src/core/fs.h"
#include "src/core/hash.h"
#include "src/obs/obs.h"

namespace bgc::store {
namespace {

constexpr char kMagic[6] = {'B', 'G', 'C', 'B', 'I', 'N'};
constexpr uint16_t kVersion = 1;
// 6 magic + u16 version + u32 section_count + u32 table_crc.
constexpr size_t kHeaderSize = 16;

void AppendLe(std::string* out, uint64_t v, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint64_t ReadLe(const char* p, int bytes) {
  uint64_t v = 0;
  for (int i = 0; i < bytes; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

void SectionWriter::PutU8(uint8_t v) { AppendLe(&bytes_, v, 1); }
void SectionWriter::PutU16(uint16_t v) { AppendLe(&bytes_, v, 2); }
void SectionWriter::PutU32(uint32_t v) { AppendLe(&bytes_, v, 4); }
void SectionWriter::PutU64(uint64_t v) { AppendLe(&bytes_, v, 8); }

void SectionWriter::PutF32(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU32(bits);
}

void SectionWriter::PutF64(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void SectionWriter::PutString(std::string_view s) {
  PutU32(static_cast<uint32_t>(s.size()));
  bytes_.append(s.data(), s.size());
}

void SectionWriter::PutBytes(const void* data, size_t n) {
  bytes_.append(static_cast<const char*>(data), n);
}

SectionReader::SectionReader(std::string_view bytes, std::string section_name)
    : bytes_(bytes), name_(std::move(section_name)) {}

template <typename T>
T SectionReader::GetScalar() {
  if (!status_.ok()) return T{};
  if (bytes_.size() - pos_ < sizeof(T)) {
    Fail("truncated (wanted " + std::to_string(sizeof(T)) + " bytes, " +
         std::to_string(bytes_.size() - pos_) + " left)");
    return T{};
  }
  uint64_t raw = ReadLe(bytes_.data() + pos_, sizeof(T));
  pos_ += sizeof(T);
  return static_cast<T>(raw);
}

uint8_t SectionReader::GetU8() { return GetScalar<uint8_t>(); }
uint16_t SectionReader::GetU16() { return GetScalar<uint16_t>(); }
uint32_t SectionReader::GetU32() { return GetScalar<uint32_t>(); }
uint64_t SectionReader::GetU64() { return GetScalar<uint64_t>(); }

float SectionReader::GetF32() {
  uint32_t bits = GetU32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double SectionReader::GetF64() {
  uint64_t bits = GetU64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string SectionReader::GetString() {
  uint32_t n = GetU32();
  if (!status_.ok()) return {};
  if (bytes_.size() - pos_ < n) {
    Fail("truncated string (wanted " + std::to_string(n) + " bytes, " +
         std::to_string(bytes_.size() - pos_) + " left)");
    return {};
  }
  std::string s(bytes_.data() + pos_, n);
  pos_ += n;
  return s;
}

void SectionReader::GetBytes(void* out, size_t n) {
  if (!status_.ok()) return;
  if (bytes_.size() - pos_ < n) {
    Fail("truncated byte block (wanted " + std::to_string(n) + " bytes, " +
         std::to_string(bytes_.size() - pos_) + " left)");
    return;
  }
  std::memcpy(out, bytes_.data() + pos_, n);
  pos_ += n;
}

void SectionReader::Fail(const std::string& message) {
  if (status_.ok()) {
    status_ = Status::Error("section \"" + name_ + "\": " + message);
  }
}

SectionWriter& BgcbinWriter::AddSection(const std::string& name) {
  for (const auto& [existing, unused] : sections_) {
    BGC_CHECK_MSG(existing != name, "duplicate bgcbin section: " + name);
  }
  sections_.emplace_back(name, SectionWriter());
  return sections_.back().second;
}

std::string BgcbinWriter::Serialize() const {
  std::string table;
  for (const auto& [name, writer] : sections_) {
    AppendLe(&table, name.size(), 2);
    table.append(name);
    AppendLe(&table, writer.bytes().size(), 8);
    AppendLe(&table, Crc32(writer.bytes().data(), writer.bytes().size()), 4);
  }
  std::string out;
  out.append(kMagic, sizeof(kMagic));
  AppendLe(&out, kVersion, 2);
  AppendLe(&out, sections_.size(), 4);
  AppendLe(&out, Crc32(table.data(), table.size()), 4);
  out.append(table);
  for (const auto& [unused, writer] : sections_) out.append(writer.bytes());
  return out;
}

Status BgcbinWriter::WriteTo(const std::string& path) const {
  BGC_TRACE_SCOPE("store.write");
  std::string bytes = Serialize();
  BGC_COUNTER_ADD("store.bytes_written", static_cast<long long>(bytes.size()));
  return WriteFileAtomic(path, bytes);
}

BgcbinStreamWriter::BgcbinStreamWriter(BgcbinStreamWriter&& other) noexcept
    : path_(std::move(other.path_)),
      tmp_(std::move(other.tmp_)),
      fd_(other.fd_),
      declared_payload_(other.declared_payload_),
      written_payload_(other.written_payload_),
      status_(std::move(other.status_)) {
  other.fd_ = -1;
  other.tmp_.clear();
}

BgcbinStreamWriter::~BgcbinStreamWriter() { Abandon(); }

void BgcbinStreamWriter::Abandon() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!tmp_.empty()) {
    ::unlink(tmp_.c_str());
    tmp_.clear();
  }
}

StatusOr<BgcbinStreamWriter> BgcbinStreamWriter::Create(
    const std::string& path, const std::vector<SectionSpec>& sections) {
  BGC_TRACE_SCOPE("store.write");
  std::string table;
  uint64_t payload_total = 0;
  for (size_t i = 0; i < sections.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      BGC_CHECK_MSG(sections[j].name != sections[i].name,
                    "duplicate bgcbin section: " + sections[i].name);
    }
    AppendLe(&table, sections[i].name.size(), 2);
    table.append(sections[i].name);
    AppendLe(&table, sections[i].size, 8);
    AppendLe(&table, sections[i].crc, 4);
    payload_total += sections[i].size;
  }
  std::string head;
  head.append(kMagic, sizeof(kMagic));
  AppendLe(&head, kVersion, 2);
  AppendLe(&head, sections.size(), 4);
  AppendLe(&head, Crc32(table.data(), table.size()), 4);
  head.append(table);

  BgcbinStreamWriter w;
  w.path_ = path;
  w.tmp_ = path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  w.declared_payload_ = payload_total;
  w.fd_ = ::open(w.tmp_.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (w.fd_ < 0) {
    Status s = BGC_ERR("cannot create " + w.tmp_ + ": " +
                       std::strerror(errno));
    w.tmp_.clear();
    return s;
  }
  if (Status s = w.Append(head.data(), head.size()); !s.ok()) return s;
  // Append() above counted the header into the payload tally; rewind it.
  w.written_payload_ = 0;
  return StatusOr<BgcbinStreamWriter>(std::move(w));
}

Status BgcbinStreamWriter::Append(const void* data, size_t n) {
  if (!status_.ok()) return status_;
  if (fd_ < 0) {
    status_ = BGC_ERR("bgcbin stream writer for " + path_ + " already closed");
    return status_;
  }
  const char* p = static_cast<const char*>(data);
  size_t left = n;
  while (left > 0) {
    ssize_t wrote = ::write(fd_, p, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      status_ = BGC_ERR("write failed " + tmp_ + ": " + std::strerror(errno));
      Abandon();
      return status_;
    }
    p += wrote;
    left -= static_cast<size_t>(wrote);
  }
  written_payload_ += n;
  BGC_COUNTER_ADD("store.bytes_written", static_cast<long long>(n));
  return Status::Ok();
}

Status BgcbinStreamWriter::Close() {
  if (!status_.ok()) return status_;
  if (fd_ < 0) {
    status_ = BGC_ERR("bgcbin stream writer for " + path_ + " already closed");
    return status_;
  }
  if (written_payload_ != declared_payload_) {
    status_ = BGC_ERR("bgcbin stream writer for " + path_ + " received " +
                      std::to_string(written_payload_) +
                      " payload bytes but the table declares " +
                      std::to_string(declared_payload_));
    Abandon();
    return status_;
  }
  if (::fsync(fd_) != 0) {
    status_ = BGC_ERR("fsync failed " + tmp_ + ": " + std::strerror(errno));
    Abandon();
    return status_;
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    status_ = BGC_ERR("close failed " + tmp_ + ": " + std::strerror(errno));
    Abandon();
    return status_;
  }
  fd_ = -1;
  if (std::rename(tmp_.c_str(), path_.c_str()) != 0) {
    status_ = BGC_ERR("rename failed " + tmp_ + " -> " + path_ + ": " +
                      std::strerror(errno));
    Abandon();
    return status_;
  }
  tmp_.clear();
  return Status::Ok();
}

StatusOr<BgcbinReader> BgcbinReader::Open(const std::string& path) {
  BGC_TRACE_SCOPE("store.read");
  StatusOr<std::string> bytes = ReadFileToString(path);
  if (!bytes.ok()) return bytes.status();
  BGC_COUNTER_ADD("store.bytes_read",
                  static_cast<long long>(bytes.value().size()));
  return Parse(bytes.take(), path);
}

StatusOr<std::vector<SectionEntry>> ParseSectionTable(
    std::string_view bytes, const std::string& origin) {
  auto err = [&origin](const std::string& msg) {
    return BGC_ERR(origin + ": " + msg);
  };
  if (bytes.size() < kHeaderSize) return err("truncated bgcbin header");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return err("not a bgcbin file (bad magic)");
  }
  uint16_t version = static_cast<uint16_t>(ReadLe(bytes.data() + 6, 2));
  if (version != kVersion) {
    return err("unsupported bgcbin version " + std::to_string(version) +
               " (this build reads v" + std::to_string(kVersion) + ")");
  }
  size_t section_count = static_cast<size_t>(ReadLe(bytes.data() + 8, 4));
  uint32_t table_crc = static_cast<uint32_t>(ReadLe(bytes.data() + 12, 4));

  std::vector<SectionEntry> entries;
  size_t pos = kHeaderSize;
  uint64_t payload_total = 0;
  for (size_t i = 0; i < section_count; ++i) {
    if (bytes.size() - pos < 2) return err("truncated section table");
    size_t name_len = static_cast<size_t>(ReadLe(bytes.data() + pos, 2));
    pos += 2;
    if (bytes.size() - pos < name_len + 12) {
      return err("truncated section table");
    }
    SectionEntry e;
    e.name.assign(bytes.data() + pos, name_len);
    pos += name_len;
    e.size = static_cast<size_t>(ReadLe(bytes.data() + pos, 8));
    pos += 8;
    e.crc = static_cast<uint32_t>(ReadLe(bytes.data() + pos, 4));
    pos += 4;
    // A declared size that overflows the sum (or any single section larger
    // than the file) is corruption; catch it before the offset arithmetic.
    if (e.size > bytes.size() || payload_total > bytes.size() - e.size) {
      return err("payload size mismatch: table declares more bytes than "
                 "the file holds");
    }
    payload_total += e.size;
    entries.push_back(std::move(e));
  }
  uint32_t actual_table_crc =
      Crc32(bytes.data() + kHeaderSize, pos - kHeaderSize);
  if (actual_table_crc != table_crc) {
    return err("section table checksum mismatch (file corrupt)");
  }
  if (bytes.size() - pos != payload_total) {
    return err("payload size mismatch: table declares " +
               std::to_string(payload_total) + " bytes, file has " +
               std::to_string(bytes.size() - pos));
  }
  for (SectionEntry& e : entries) {
    e.offset = pos;
    pos += e.size;
  }
  return entries;
}

StatusOr<BgcbinReader> BgcbinReader::Parse(std::string bytes,
                                           std::string origin) {
  StatusOr<std::vector<SectionEntry>> table = ParseSectionTable(bytes, origin);
  if (!table.ok()) return table.status();
  BgcbinReader reader;
  reader.entries_ = table.take();
  for (const SectionEntry& e : reader.entries_) {
    uint32_t actual = Crc32(bytes.data() + e.offset, e.size);
    if (actual != e.crc) {
      return BGC_ERR(origin + ": section \"" + e.name +
                     "\" checksum mismatch (file corrupt)");
    }
  }
  reader.bytes_ = std::move(bytes);
  reader.origin_ = std::move(origin);
  return reader;
}

bool BgcbinReader::HasSection(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return true;
  }
  return false;
}

StatusOr<SectionReader> BgcbinReader::Section(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) {
      return SectionReader(
          std::string_view(bytes_.data() + e.offset, e.size), name);
    }
  }
  return BGC_ERR(origin_ + ": missing section \"" + name + "\"");
}

std::vector<std::string> BgcbinReader::SectionNames() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& e : entries_) names.push_back(e.name);
  return names;
}

}  // namespace bgc::store
