#ifndef BGC_STORE_ARTIFACT_CACHE_H_
#define BGC_STORE_ARTIFACT_CACHE_H_

// Content-addressed cache of condensation artifacts.
//
// Condensation dominates experiment wall-clock (minutes) while its inputs
// are tiny (a config + a seed), so repeated benchmark runs recompute the
// same condensed graphs over and over. The cache keys each artifact by
// the FNV-1a hash of a canonical key string — every config field spelled
// name=value (floats %.9g), plus dataset name/scale, method, and seed —
// and stores the condensed graph as a bgcbin container. The full key
// string is stored inside the entry and compared on load, so a hash
// collision degrades to a miss, never a wrong artifact. A corrupt entry
// (checksum failure) is rejected, reported, recomputed, and overwritten.
//
// Enable by pointing BGC_ARTIFACT_DIR at a writable directory (see
// FromEnv) or constructing an ArtifactCache explicitly.

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/attack/bgc.h"
#include "src/condense/condenser.h"

namespace bgc::store {

/// Canonical name=value serializations used in cache keys. Every field of
/// the config participates, so any hyper-parameter change changes the key.
std::string CanonicalCondenseKey(const condense::CondenseConfig& config);
std::string CanonicalAttackKey(const attack::AttackConfig& config);

/// Full cache key for a clean condensation run (RunCondensation output).
std::string CondensedCacheKey(const std::string& dataset,
                              double dataset_scale, const std::string& method,
                              const condense::CondenseConfig& config,
                              uint64_t seed);

struct ArtifactCacheStats {
  long long hits = 0;
  long long misses = 0;
  long long rejected = 0;        // corrupt / mismatched entries discarded
  long long coalesced = 0;       // callers served by an in-flight leader
  double compute_seconds = 0.0;  // time spent inside compute callbacks
  double saved_seconds = 0.0;    // recorded compute time of served hits
};

/// Thread-safe: concurrent GetOrComputeCondensed calls are allowed from
/// any number of threads (the grid scheduler runs experiment units in
/// parallel). Calls for the SAME key are single-flighted — the first
/// caller becomes the key's leader and loads or computes the artifact;
/// followers block until the leader publishes and then share its result,
/// so a condensation shared by N concurrent units is computed exactly
/// once.
class ArtifactCache {
 public:
  /// Caches under `dir` (created if missing).
  explicit ArtifactCache(std::string dir);
  ~ArtifactCache();

  /// Cache in $BGC_ARTIFACT_DIR, or nullptr when the variable is unset or
  /// empty (caching disabled).
  static std::unique_ptr<ArtifactCache> FromEnv();

  /// Returns the cached condensed graph for `canonical_key`, or runs
  /// `compute`, stores its result, and returns it. Corrupt or mismatched
  /// entries are discarded (with a stderr warning) and recomputed. If the
  /// leader's `compute` throws, one waiting follower retries leadership;
  /// the exception propagates to the leader's caller only.
  condense::CondensedGraph GetOrComputeCondensed(
      const std::string& canonical_key,
      const std::function<condense::CondensedGraph()>& compute);

  /// Filesystem path an entry with this key lives at.
  std::string EntryPath(const std::string& canonical_key) const;

  const std::string& dir() const { return dir_; }
  /// Snapshot of the counters (taken under the cache lock).
  ArtifactCacheStats stats() const;

 private:
  /// One in-flight key: followers wait on `cv` until the leader sets
  /// `done` and either publishes `result` (ok) or signals failure.
  struct InFlight;

  /// The disk-or-compute slow path (no single-flight logic). Runs with no
  /// locks held; mutates stats under mu_.
  condense::CondensedGraph LoadOrCompute(
      const std::string& canonical_key,
      const std::function<condense::CondensedGraph()>& compute,
      double& saved_equivalent_seconds);

  std::string dir_;
  mutable std::mutex mu_;  // guards stats_ and inflight_
  ArtifactCacheStats stats_;
  std::map<std::string, std::shared_ptr<InFlight>> inflight_;
};

}  // namespace bgc::store

#endif  // BGC_STORE_ARTIFACT_CACHE_H_
