#ifndef BGC_STORE_ARTIFACT_CACHE_H_
#define BGC_STORE_ARTIFACT_CACHE_H_

// Content-addressed cache of condensation artifacts.
//
// Condensation dominates experiment wall-clock (minutes) while its inputs
// are tiny (a config + a seed), so repeated benchmark runs recompute the
// same condensed graphs over and over. The cache keys each artifact by
// the FNV-1a hash of a canonical key string — every config field spelled
// name=value (floats %.9g), plus dataset name/scale, method, and seed —
// and stores the condensed graph as a bgcbin container. The full key
// string is stored inside the entry and compared on load, so a hash
// collision degrades to a miss, never a wrong artifact. A corrupt entry
// (checksum failure) is rejected, reported, recomputed, and overwritten.
//
// Enable by pointing BGC_ARTIFACT_DIR at a writable directory (see
// FromEnv) or constructing an ArtifactCache explicitly.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/attack/bgc.h"
#include "src/condense/condenser.h"

namespace bgc::store {

/// Canonical name=value serializations used in cache keys. Every field of
/// the config participates, so any hyper-parameter change changes the key.
std::string CanonicalCondenseKey(const condense::CondenseConfig& config);
std::string CanonicalAttackKey(const attack::AttackConfig& config);

/// Full cache key for a clean condensation run (RunCondensation output).
std::string CondensedCacheKey(const std::string& dataset,
                              double dataset_scale, const std::string& method,
                              const condense::CondenseConfig& config,
                              uint64_t seed);

struct ArtifactCacheStats {
  long long hits = 0;
  long long misses = 0;
  long long rejected = 0;        // corrupt / mismatched entries discarded
  double compute_seconds = 0.0;  // time spent inside compute callbacks
  double saved_seconds = 0.0;    // recorded compute time of served hits
};

class ArtifactCache {
 public:
  /// Caches under `dir` (created if missing).
  explicit ArtifactCache(std::string dir);

  /// Cache in $BGC_ARTIFACT_DIR, or nullptr when the variable is unset or
  /// empty (caching disabled).
  static std::unique_ptr<ArtifactCache> FromEnv();

  /// Returns the cached condensed graph for `canonical_key`, or runs
  /// `compute`, stores its result, and returns it. Corrupt or mismatched
  /// entries are discarded (with a stderr warning) and recomputed.
  condense::CondensedGraph GetOrComputeCondensed(
      const std::string& canonical_key,
      const std::function<condense::CondensedGraph()>& compute);

  /// Filesystem path an entry with this key lives at.
  std::string EntryPath(const std::string& canonical_key) const;

  const std::string& dir() const { return dir_; }
  const ArtifactCacheStats& stats() const { return stats_; }

 private:
  std::string dir_;
  ArtifactCacheStats stats_;
};

}  // namespace bgc::store

#endif  // BGC_STORE_ARTIFACT_CACHE_H_
