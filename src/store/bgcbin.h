#ifndef BGC_STORE_BGCBIN_H_
#define BGC_STORE_BGCBIN_H_

// "bgcbin v1" — the binary container behind every artifact the store
// ships: datasets, condensed graphs, model state-dicts, condensation
// checkpoints, cache entries. Layout (all integers little-endian):
//
//   [magic  "BGCBIN" : 6 bytes]
//   [version : u16]                       currently 1
//   [section_count : u32]
//   [table_crc : u32]                     CRC32 of the table bytes below
//   section table, per section:
//     [name_len : u16][name bytes]
//     [payload_size : u64]
//     [payload_crc : u32]                 CRC32 of the payload bytes
//   payloads, concatenated in table order
//
// Every payload and the table itself are checksummed, so a flipped byte
// anywhere in the file is rejected at Open() with a descriptive error
// rather than silently loaded. Writes go through core/fs.h
// WriteFileAtomic (temp file + fsync + rename), so readers never observe
// a partially written container. Versioning policy: readers reject any
// version they do not know; additive changes (new sections) do not bump
// the version, layout changes do. See DESIGN.md "Binary artifact store".

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "src/core/status.h"

namespace bgc::store {

/// Byte-level encoder for one section's payload.
class SectionWriter {
 public:
  void PutU8(uint8_t v);
  void PutU16(uint16_t v);
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI32(int32_t v) { PutU32(static_cast<uint32_t>(v)); }
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutF32(float v);
  void PutF64(double v);
  /// u32 length + raw bytes.
  void PutString(std::string_view s);
  void PutBytes(const void* data, size_t n);

  const std::string& bytes() const { return bytes_; }

 private:
  std::string bytes_;
};

/// Bounds-checked decoder over one section's payload. Reading past the end
/// latches an error status and returns zeros; check ok() after a decode
/// group (every variable-length getter re-checks before allocating).
class SectionReader {
 public:
  explicit SectionReader(std::string_view bytes, std::string section_name);

  uint8_t GetU8();
  uint16_t GetU16();
  uint32_t GetU32();
  uint64_t GetU64();
  int32_t GetI32() { return static_cast<int32_t>(GetU32()); }
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  float GetF32();
  double GetF64();
  std::string GetString();
  /// Copies `n` raw bytes into `out`; no-op (error latched) when short.
  void GetBytes(void* out, size_t n);

  size_t remaining() const { return bytes_.size() - pos_; }
  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Latches a caller-detected decode error (e.g. implausible dimensions).
  void Fail(const std::string& message);

 private:
  template <typename T>
  T GetScalar();

  std::string_view bytes_;
  size_t pos_ = 0;
  std::string name_;
  Status status_;
};

/// One entry of a parsed section table. `offset` is absolute within the
/// container bytes; `crc` is the table-declared payload CRC-32 (not yet
/// verified against the payload — see ParseSectionTable).
struct SectionEntry {
  std::string name;
  size_t offset = 0;
  size_t size = 0;
  uint32_t crc = 0;
};

/// Parses and validates the container header and section table of `bytes`:
/// magic, version, table CRC, and declared-vs-actual total payload size.
/// Payload CRCs are *not* checked — the caller decides when to pay for
/// them. BgcbinReader::Parse verifies every payload eagerly; the mmap
/// dataset path (src/data/mmap_dataset.h) defers each section's CRC to its
/// first touch so opening a multi-GB file stays O(table).
StatusOr<std::vector<SectionEntry>> ParseSectionTable(
    std::string_view bytes, const std::string& origin);

/// Streaming container writer for payloads too large to buffer: every
/// section's size and payload CRC is declared up front (the table is
/// written before any payload bytes), then payload bytes are appended in
/// table order. Close() verifies the byte counts, fsyncs, and renames the
/// temp file over `path` — the same atomic-write discipline as
/// BgcbinWriter, so readers never observe a partial container. Any
/// intermediate failure latches a Status, unlinks the temp file, and makes
/// the remaining calls no-ops.
class BgcbinStreamWriter {
 public:
  struct SectionSpec {
    std::string name;
    uint64_t size = 0;
    uint32_t crc = 0;  // CRC-32 of the payload bytes to come
  };

  BgcbinStreamWriter(const BgcbinStreamWriter&) = delete;
  BgcbinStreamWriter& operator=(const BgcbinStreamWriter&) = delete;
  ~BgcbinStreamWriter();

  /// Creates the temp file next to `path` and writes header + table.
  static StatusOr<BgcbinStreamWriter> Create(
      const std::string& path, const std::vector<SectionSpec>& sections);

  /// Appends payload bytes; sections are filled strictly in table order
  /// and each must receive exactly its declared size before Close().
  Status Append(const void* data, size_t n);

  /// Verifies every declared byte arrived, fsyncs, renames into place.
  Status Close();

  BgcbinStreamWriter(BgcbinStreamWriter&& other) noexcept;

 private:
  BgcbinStreamWriter() = default;
  void Abandon();

  std::string path_;
  std::string tmp_;
  int fd_ = -1;
  uint64_t declared_payload_ = 0;
  uint64_t written_payload_ = 0;
  Status status_;
};

/// Accumulates named sections and writes the container atomically.
class BgcbinWriter {
 public:
  /// Adds a section; the returned writer stays valid for the container's
  /// lifetime. Section names must be unique.
  SectionWriter& AddSection(const std::string& name);

  /// Serializes the container to bytes (header + table + payloads).
  std::string Serialize() const;

  /// Serialize() + atomic write (temp file, fsync, rename).
  Status WriteTo(const std::string& path) const;

 private:
  // deque: AddSection must not invalidate previously returned references.
  std::deque<std::pair<std::string, SectionWriter>> sections_;
};

/// Parses and verifies a container: magic, version, table CRC, declared
/// sizes vs file size, and every section's payload CRC. Any mismatch —
/// including a single flipped byte — fails Open with a message naming the
/// offending section.
class BgcbinReader {
 public:
  static StatusOr<BgcbinReader> Open(const std::string& path);
  /// Parses in-memory bytes; `origin` labels error messages.
  static StatusOr<BgcbinReader> Parse(std::string bytes, std::string origin);

  bool HasSection(const std::string& name) const;
  /// Decoder over the named section's payload (error if absent).
  StatusOr<SectionReader> Section(const std::string& name) const;
  std::vector<std::string> SectionNames() const;
  const std::string& origin() const { return origin_; }

 private:
  std::string bytes_;
  std::string origin_;
  std::vector<SectionEntry> entries_;
};

}  // namespace bgc::store

#endif  // BGC_STORE_BGCBIN_H_
