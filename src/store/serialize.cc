#include "src/store/serialize.h"

#include <bit>
#include <cstring>

namespace bgc::store {
namespace {

// Artifact kind tags, stored in a "kind" section so a loader pointed at
// the wrong artifact type fails with a clear message instead of a shape
// error deep in decoding.
constexpr char kKindDataset[] = "bgc.dataset";
constexpr char kKindCondensed[] = "bgc.condensed";
constexpr char kKindModel[] = "bgc.model";
constexpr char kKindCheckpoint[] = "bgc.checkpoint";
constexpr char kKindSampledTrainCkpt[] = "bgc.sampled-train-ckpt";

void AddKind(BgcbinWriter& writer, const char* kind) {
  writer.AddSection("kind").PutString(kind);
}

Status CheckKind(const BgcbinReader& reader, const char* kind) {
  StatusOr<SectionReader> section = reader.Section("kind");
  if (!section.ok()) return section.status();
  SectionReader r = section.take();
  std::string seen = r.GetString();
  if (!r.ok()) return r.status();
  if (seen != kind) {
    return BGC_ERR(reader.origin() + ": artifact kind is \"" + seen +
                   "\", expected \"" + kind + "\"");
  }
  return Status::Ok();
}

// Raw float block, bulk-copied on little-endian hosts (the container's
// byte order), element-wise swapped otherwise.
void PutFloatBlock(SectionWriter& w, const float* data, size_t n) {
  if constexpr (std::endian::native == std::endian::little) {
    w.PutBytes(data, n * sizeof(float));
  } else {
    for (size_t i = 0; i < n; ++i) w.PutF32(data[i]);
  }
}

void GetFloatBlock(SectionReader& r, float* out, size_t n) {
  if constexpr (std::endian::native == std::endian::little) {
    r.GetBytes(out, n * sizeof(float));
  } else {
    for (size_t i = 0; i < n; ++i) out[i] = r.GetF32();
  }
}

void PutCondenseConfig(SectionWriter& w,
                       const condense::CondenseConfig& c) {
  w.PutI32(c.num_condensed);
  w.PutI32(c.epochs);
  w.PutF32(c.feature_lr);
  w.PutF32(c.adj_lr);
  w.PutI32(c.inner_steps);
  w.PutI32(c.model_steps);
  w.PutF32(c.model_lr);
  w.PutF32(c.dc_model_lr);
  w.PutF32(c.dc_feature_lr);
  w.PutI32(c.sgc_k);
  w.PutI32(c.adj_rank);
  w.PutF32(c.adj_bias_init);
  w.PutF32(c.ridge_lambda);
  w.PutF32(c.sntk_lr);
  w.PutI32(c.sntk_batch);
  w.PutU64(c.seed);
}

condense::CondenseConfig GetCondenseConfig(SectionReader& r) {
  condense::CondenseConfig c;
  c.num_condensed = r.GetI32();
  c.epochs = r.GetI32();
  c.feature_lr = r.GetF32();
  c.adj_lr = r.GetF32();
  c.inner_steps = r.GetI32();
  c.model_steps = r.GetI32();
  c.model_lr = r.GetF32();
  c.dc_model_lr = r.GetF32();
  c.dc_feature_lr = r.GetF32();
  c.sgc_k = r.GetI32();
  c.adj_rank = r.GetI32();
  c.adj_bias_init = r.GetF32();
  c.ridge_lambda = r.GetF32();
  c.sntk_lr = r.GetF32();
  c.sntk_batch = r.GetI32();
  c.seed = r.GetU64();
  return c;
}

// Pulls one section and decodes it with `decode`, folding both a missing
// section and a decode error into one Status.
template <typename T, typename Decode>
Status ReadSection(const BgcbinReader& reader, const std::string& name,
                   Decode decode, T* out) {
  StatusOr<SectionReader> section = reader.Section(name);
  if (!section.ok()) return section.status();
  SectionReader r = section.take();
  *out = decode(r);
  if (!r.ok()) return Status::Error(reader.origin() + ": " + r.status().message());
  return Status::Ok();
}

Status ValidateLabels(const std::vector<int>& labels, int num_classes,
                      const std::string& origin) {
  for (int y : labels) {
    if (y < 0 || y >= num_classes) {
      return BGC_ERR(origin + ": label " + std::to_string(y) +
                     " out of range [0, " + std::to_string(num_classes) +
                     ")");
    }
  }
  return Status::Ok();
}

Status ValidateSplit(const std::vector<int>& idx, int num_nodes,
                     const char* tag, const std::string& origin) {
  for (int i : idx) {
    if (i < 0 || i >= num_nodes) {
      return BGC_ERR(origin + ": " + std::string(tag) + " split id " +
                     std::to_string(i) + " out of range for " +
                     std::to_string(num_nodes) + " nodes");
    }
  }
  return Status::Ok();
}

}  // namespace

void PutMatrix(SectionWriter& w, const Matrix& m) {
  w.PutI32(m.rows());
  w.PutI32(m.cols());
  PutFloatBlock(w, m.data(), static_cast<size_t>(m.size()));
}

Matrix GetMatrix(SectionReader& r) {
  int rows = r.GetI32();
  int cols = r.GetI32();
  if (!r.ok()) return {};
  if (rows < 0 || cols < 0) {
    r.Fail("negative matrix dimensions " + std::to_string(rows) + "x" +
           std::to_string(cols));
    return {};
  }
  size_t n = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  if (n * sizeof(float) > r.remaining()) {
    r.Fail("matrix " + std::to_string(rows) + "x" + std::to_string(cols) +
           " larger than remaining payload");
    return {};
  }
  Matrix m(rows, cols);
  GetFloatBlock(r, m.data(), n);
  return r.ok() ? std::move(m) : Matrix();
}

void PutCsr(SectionWriter& w, const graph::CsrMatrix& m) {
  const std::vector<graph::Edge> edges = m.ToEdges();
  w.PutI32(m.rows());
  w.PutI32(m.cols());
  w.PutU64(edges.size());
  for (const auto& e : edges) {
    w.PutI32(e.src);
    w.PutI32(e.dst);
    w.PutF32(e.weight);
  }
}

graph::CsrMatrix GetCsr(SectionReader& r) {
  int rows = r.GetI32();
  int cols = r.GetI32();
  uint64_t nnz = r.GetU64();
  if (!r.ok()) return {};
  if (rows < 0 || cols < 0) {
    r.Fail("negative CSR dimensions");
    return {};
  }
  if (nnz * 12 > r.remaining()) {
    r.Fail("edge count " + std::to_string(nnz) +
           " larger than remaining payload");
    return {};
  }
  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<size_t>(nnz));
  for (uint64_t k = 0; k < nnz; ++k) {
    graph::Edge e;
    e.src = r.GetI32();
    e.dst = r.GetI32();
    e.weight = r.GetF32();
    if (!r.ok()) return {};
    if (e.src < 0 || e.src >= rows || e.dst < 0 || e.dst >= cols) {
      r.Fail("edge endpoint out of range: (" + std::to_string(e.src) + ", " +
             std::to_string(e.dst) + ") in " + std::to_string(rows) + "x" +
             std::to_string(cols));
      return {};
    }
    edges.push_back(e);
  }
  return graph::CsrMatrix::FromEdges(rows, cols, edges, /*symmetrize=*/false);
}

void PutIntVector(SectionWriter& w, const std::vector<int>& v) {
  w.PutU64(v.size());
  for (int x : v) w.PutI32(x);
}

std::vector<int> GetIntVector(SectionReader& r) {
  uint64_t n = r.GetU64();
  if (!r.ok()) return {};
  if (n * 4 > r.remaining()) {
    r.Fail("int vector of " + std::to_string(n) +
           " entries larger than remaining payload");
    return {};
  }
  std::vector<int> v(static_cast<size_t>(n));
  for (auto& x : v) x = r.GetI32();
  return r.ok() ? std::move(v) : std::vector<int>();
}

void PutU64Vector(SectionWriter& w, const std::vector<uint64_t>& v) {
  w.PutU64(v.size());
  for (uint64_t x : v) w.PutU64(x);
}

std::vector<uint64_t> GetU64Vector(SectionReader& r) {
  uint64_t n = r.GetU64();
  if (!r.ok()) return {};
  if (n * 8 > r.remaining()) {
    r.Fail("u64 vector of " + std::to_string(n) +
           " entries larger than remaining payload");
    return {};
  }
  std::vector<uint64_t> v(static_cast<size_t>(n));
  for (auto& x : v) x = r.GetU64();
  return r.ok() ? std::move(v) : std::vector<uint64_t>();
}

void PutStateDict(SectionWriter& w,
                  const std::vector<std::pair<std::string, Matrix>>& state) {
  w.PutU32(static_cast<uint32_t>(state.size()));
  for (const auto& [name, value] : state) {
    w.PutString(name);
    PutMatrix(w, value);
  }
}

std::vector<std::pair<std::string, Matrix>> GetStateDict(SectionReader& r) {
  uint32_t n = r.GetU32();
  std::vector<std::pair<std::string, Matrix>> state;
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    std::string name = r.GetString();
    Matrix value = GetMatrix(r);
    if (r.ok()) state.emplace_back(std::move(name), std::move(value));
  }
  return r.ok() ? std::move(state)
                : std::vector<std::pair<std::string, Matrix>>();
}

Status SaveDatasetBinary(const data::GraphDataset& dataset,
                         const std::string& path) {
  BgcbinWriter writer;
  AddKind(writer, kKindDataset);
  SectionWriter& meta = writer.AddSection("meta");
  meta.PutString(dataset.name);
  meta.PutI32(dataset.num_classes);
  meta.PutU8(dataset.inductive ? 1 : 0);
  PutIntVector(writer.AddSection("labels"), dataset.labels);
  PutIntVector(writer.AddSection("train_idx"), dataset.train_idx);
  PutIntVector(writer.AddSection("val_idx"), dataset.val_idx);
  PutIntVector(writer.AddSection("test_idx"), dataset.test_idx);
  PutCsr(writer.AddSection("adj"), dataset.adj);
  PutMatrix(writer.AddSection("features"), dataset.features);
  return writer.WriteTo(path);
}

StatusOr<data::GraphDataset> TryLoadDatasetBinary(const std::string& path) {
  StatusOr<BgcbinReader> opened = BgcbinReader::Open(path);
  if (!opened.ok()) return opened.status();
  BgcbinReader reader = opened.take();
  if (Status s = CheckKind(reader, kKindDataset); !s.ok()) return s;

  data::GraphDataset ds;
  {
    StatusOr<SectionReader> section = reader.Section("meta");
    if (!section.ok()) return section.status();
    SectionReader r = section.take();
    ds.name = r.GetString();
    ds.num_classes = r.GetI32();
    ds.inductive = r.GetU8() != 0;
    if (!r.ok()) return Status::Error(path + ": " + r.status().message());
  }
  if (Status s = ReadSection(reader, "labels", GetIntVector, &ds.labels);
      !s.ok())
    return s;
  if (Status s = ReadSection(reader, "train_idx", GetIntVector, &ds.train_idx);
      !s.ok())
    return s;
  if (Status s = ReadSection(reader, "val_idx", GetIntVector, &ds.val_idx);
      !s.ok())
    return s;
  if (Status s = ReadSection(reader, "test_idx", GetIntVector, &ds.test_idx);
      !s.ok())
    return s;
  if (Status s = ReadSection(reader, "adj", GetCsr, &ds.adj); !s.ok())
    return s;
  if (Status s = ReadSection(reader, "features", GetMatrix, &ds.features);
      !s.ok())
    return s;

  const int n = ds.adj.rows();
  if (ds.adj.cols() != n) return BGC_ERR(path + ": adjacency is not square");
  if (static_cast<int>(ds.labels.size()) != n || ds.features.rows() != n) {
    return BGC_ERR(path + ": node count mismatch: adj " + std::to_string(n) +
                   ", labels " + std::to_string(ds.labels.size()) +
                   ", features " + std::to_string(ds.features.rows()));
  }
  if (Status s = ValidateLabels(ds.labels, ds.num_classes, path); !s.ok())
    return s;
  if (Status s = ValidateSplit(ds.train_idx, n, "train", path); !s.ok())
    return s;
  if (Status s = ValidateSplit(ds.val_idx, n, "val", path); !s.ok()) return s;
  if (Status s = ValidateSplit(ds.test_idx, n, "test", path); !s.ok())
    return s;
  return ds;
}

void AddCondensedSections(BgcbinWriter& writer,
                          const condense::CondensedGraph& condensed) {
  SectionWriter& meta = writer.AddSection("meta");
  meta.PutI32(condensed.num_classes);
  meta.PutU8(condensed.use_structure ? 1 : 0);
  PutIntVector(writer.AddSection("labels"), condensed.labels);
  PutCsr(writer.AddSection("adj"), condensed.adj);
  PutMatrix(writer.AddSection("features"), condensed.features);
}

StatusOr<condense::CondensedGraph> ReadCondensedSections(
    const BgcbinReader& reader) {
  const std::string& origin = reader.origin();
  condense::CondensedGraph g;
  {
    StatusOr<SectionReader> section = reader.Section("meta");
    if (!section.ok()) return section.status();
    SectionReader r = section.take();
    g.num_classes = r.GetI32();
    g.use_structure = r.GetU8() != 0;
    if (!r.ok()) return Status::Error(origin + ": " + r.status().message());
  }
  if (Status s = ReadSection(reader, "labels", GetIntVector, &g.labels);
      !s.ok())
    return s;
  if (Status s = ReadSection(reader, "adj", GetCsr, &g.adj); !s.ok()) return s;
  if (Status s = ReadSection(reader, "features", GetMatrix, &g.features);
      !s.ok())
    return s;

  const int n = g.features.rows();
  if (static_cast<int>(g.labels.size()) != n || g.adj.rows() != n ||
      g.adj.cols() != n) {
    return BGC_ERR(origin + ": node count mismatch: features " +
                   std::to_string(n) + ", labels " +
                   std::to_string(g.labels.size()) + ", adj " +
                   std::to_string(g.adj.rows()) + "x" +
                   std::to_string(g.adj.cols()));
  }
  if (Status s = ValidateLabels(g.labels, g.num_classes, origin); !s.ok())
    return s;
  return g;
}

Status SaveCondensedBinary(const condense::CondensedGraph& condensed,
                           const std::string& path) {
  BgcbinWriter writer;
  AddKind(writer, kKindCondensed);
  AddCondensedSections(writer, condensed);
  return writer.WriteTo(path);
}

StatusOr<condense::CondensedGraph> TryLoadCondensedBinary(
    const std::string& path) {
  StatusOr<BgcbinReader> opened = BgcbinReader::Open(path);
  if (!opened.ok()) return opened.status();
  BgcbinReader reader = opened.take();
  if (Status s = CheckKind(reader, kKindCondensed); !s.ok()) return s;
  return ReadCondensedSections(reader);
}

Status SaveGnnModel(nn::GnnModel& model, const std::string& path) {
  BgcbinWriter writer;
  AddKind(writer, kKindModel);
  writer.AddSection("arch").PutString(model.name());
  PutStateDict(writer.AddSection("params"), model.StateDict());
  return writer.WriteTo(path);
}

Status LoadGnnModel(nn::GnnModel& model, const std::string& path) {
  StatusOr<BgcbinReader> opened = BgcbinReader::Open(path);
  if (!opened.ok()) return opened.status();
  BgcbinReader reader = opened.take();
  if (Status s = CheckKind(reader, kKindModel); !s.ok()) return s;
  std::string arch;
  if (Status s = ReadSection(
          reader, "arch", [](SectionReader& r) { return r.GetString(); },
          &arch);
      !s.ok())
    return s;
  if (arch != model.name()) {
    return BGC_ERR(path + ": saved architecture \"" + arch +
                   "\" does not match model \"" + model.name() + "\"");
  }
  std::vector<std::pair<std::string, Matrix>> state;
  if (Status s = ReadSection(reader, "params", GetStateDict, &state); !s.ok())
    return s;
  if (Status s = model.LoadStateDict(state); !s.ok()) {
    return Status::Error(path + ": " + s.message());
  }
  return Status::Ok();
}

Status SaveCondenserCheckpoint(const condense::CondenserState& state,
                               const std::string& path) {
  BgcbinWriter writer;
  AddKind(writer, kKindCheckpoint);
  SectionWriter& meta = writer.AddSection("meta");
  meta.PutString(state.method);
  meta.PutI64(state.epoch);
  meta.PutI32(state.num_classes);
  PutCondenseConfig(writer.AddSection("config"), state.config);
  PutIntVector(writer.AddSection("syn_labels"), state.syn_labels);
  PutStateDict(writer.AddSection("tensors"), state.tensors);
  SectionWriter& scalars = writer.AddSection("scalars");
  scalars.PutU32(static_cast<uint32_t>(state.scalars.size()));
  for (const auto& [name, value] : state.scalars) {
    scalars.PutString(name);
    scalars.PutI64(value);
  }
  PutU64Vector(writer.AddSection("rng"), state.rng_state);
  return writer.WriteTo(path);
}

StatusOr<condense::CondenserState> TryLoadCondenserCheckpoint(
    const std::string& path) {
  StatusOr<BgcbinReader> opened = BgcbinReader::Open(path);
  if (!opened.ok()) return opened.status();
  BgcbinReader reader = opened.take();
  if (Status s = CheckKind(reader, kKindCheckpoint); !s.ok()) return s;

  condense::CondenserState state;
  {
    StatusOr<SectionReader> section = reader.Section("meta");
    if (!section.ok()) return section.status();
    SectionReader r = section.take();
    state.method = r.GetString();
    state.epoch = r.GetI64();
    state.num_classes = r.GetI32();
    if (!r.ok()) return Status::Error(path + ": " + r.status().message());
  }
  if (Status s = ReadSection(reader, "config", GetCondenseConfig,
                             &state.config);
      !s.ok())
    return s;
  if (Status s =
          ReadSection(reader, "syn_labels", GetIntVector, &state.syn_labels);
      !s.ok())
    return s;
  if (Status s = ReadSection(reader, "tensors", GetStateDict, &state.tensors);
      !s.ok())
    return s;
  {
    StatusOr<SectionReader> section = reader.Section("scalars");
    if (!section.ok()) return section.status();
    SectionReader r = section.take();
    uint32_t n = r.GetU32();
    for (uint32_t i = 0; i < n && r.ok(); ++i) {
      std::string name = r.GetString();
      long long value = r.GetI64();
      if (r.ok()) state.scalars.emplace_back(std::move(name), value);
    }
    if (!r.ok()) return Status::Error(path + ": " + r.status().message());
  }
  if (Status s = ReadSection(reader, "rng", GetU64Vector, &state.rng_state);
      !s.ok())
    return s;
  if (state.epoch < 0) return BGC_ERR(path + ": negative epoch counter");
  return state;
}

Status SaveSampledTrainCheckpoint(const SampledTrainCheckpoint& state,
                                  const std::string& path) {
  BgcbinWriter writer;
  AddKind(writer, kKindSampledTrainCkpt);
  SectionWriter& meta = writer.AddSection("meta");
  meta.PutI64(state.next_epoch);
  meta.PutI64(state.adam_step);
  PutStateDict(writer.AddSection("model"), state.model_state);
  PutStateDict(writer.AddSection("adam_m"), state.adam_m);
  PutStateDict(writer.AddSection("adam_v"), state.adam_v);
  PutU64Vector(writer.AddSection("rng"), state.rng_state);
  return writer.WriteTo(path);
}

StatusOr<SampledTrainCheckpoint> TryLoadSampledTrainCheckpoint(
    const std::string& path) {
  StatusOr<BgcbinReader> opened = BgcbinReader::Open(path);
  if (!opened.ok()) return opened.status();
  BgcbinReader reader = opened.take();
  if (Status s = CheckKind(reader, kKindSampledTrainCkpt); !s.ok()) return s;

  SampledTrainCheckpoint state;
  {
    StatusOr<SectionReader> section = reader.Section("meta");
    if (!section.ok()) return section.status();
    SectionReader r = section.take();
    state.next_epoch = r.GetI64();
    state.adam_step = r.GetI64();
    if (!r.ok()) return Status::Error(path + ": " + r.status().message());
  }
  if (Status s =
          ReadSection(reader, "model", GetStateDict, &state.model_state);
      !s.ok())
    return s;
  if (Status s = ReadSection(reader, "adam_m", GetStateDict, &state.adam_m);
      !s.ok())
    return s;
  if (Status s = ReadSection(reader, "adam_v", GetStateDict, &state.adam_v);
      !s.ok())
    return s;
  if (Status s = ReadSection(reader, "rng", GetU64Vector, &state.rng_state);
      !s.ok())
    return s;
  if (state.next_epoch < 0) return BGC_ERR(path + ": negative epoch counter");
  if (state.adam_step < 0) return BGC_ERR(path + ": negative Adam step");
  if (state.adam_m.size() != state.adam_v.size()) {
    return BGC_ERR(path + ": Adam moment maps disagree in size");
  }
  return state;
}

}  // namespace bgc::store
