#include "src/store/resumable.h"

#include <algorithm>
#include <array>
#include <cstdio>
#include <utility>

#include "src/core/check.h"
#include "src/core/fs.h"
#include "src/obs/obs.h"
#include "src/store/artifact_cache.h"
#include "src/store/serialize.h"

namespace bgc::store {
namespace {

void WriteCheckpoint(condense::Condenser& condenser,
                     const std::string& path) {
  Status s = SaveCondenserCheckpoint(condenser.ExportState(), path);
  BGC_CHECK_MSG(s.ok(), "cannot write checkpoint: " + s.message());
}

void WriteTrainerCheckpoint(nn::MinibatchTrainer& trainer, long long next_epoch,
                            const std::string& path) {
  SampledTrainCheckpoint ckpt;
  ckpt.next_epoch = next_epoch;
  ckpt.model_state = trainer.model().StateDict();
  for (const auto& [name, param] : trainer.model().NamedParams()) {
    nn::Adam::ParamState moments = trainer.optimizer().ExportState(param);
    if (moments.m.rows() == 0) continue;  // no state yet for this param
    ckpt.adam_m.emplace_back(name, std::move(moments.m));
    ckpt.adam_v.emplace_back(name, std::move(moments.v));
  }
  ckpt.adam_step = trainer.optimizer().step_count();
  const auto words = trainer.dropout_rng().SaveState();
  ckpt.rng_state.assign(words.begin(), words.end());
  Status s = SaveSampledTrainCheckpoint(ckpt, path);
  BGC_CHECK_MSG(s.ok(), "cannot write checkpoint: " + s.message());
}

}  // namespace

ResumableResult RunResumableCondensation(
    condense::Condenser& condenser, const condense::SourceGraph& source,
    int num_classes, const condense::CondenseConfig& config, Rng& rng,
    const ResumableOptions& options) {
  BGC_CHECK_MSG(!options.checkpoint_path.empty(),
                "ResumableOptions.checkpoint_path is required");
  BGC_CHECK_MSG(condenser.SupportsCheckpoint(),
                condenser.name() + " does not support checkpointing");

  ResumableResult out;
  long long epoch = 0;
  if (FileExists(options.checkpoint_path)) {
    StatusOr<condense::CondenserState> loaded =
        TryLoadCondenserCheckpoint(options.checkpoint_path);
    BGC_CHECK_MSG(loaded.ok(),
                  "corrupt checkpoint (delete it to restart): " +
                      loaded.status().message());
    condense::CondenserState state = loaded.take();
    BGC_CHECK_MSG(state.method == condenser.name(),
                  "checkpoint is for method " + state.method + ", not " +
                      condenser.name());
    BGC_CHECK_MSG(CanonicalCondenseKey(state.config) ==
                      CanonicalCondenseKey(config),
                  "checkpoint config does not match this run: " +
                      CanonicalCondenseKey(state.config) + " vs " +
                      CanonicalCondenseKey(config));
    condenser.RestoreState(source, state);
    epoch = state.epoch;
    out.resumed = true;
  } else {
    BGC_TRACE_SCOPE("phase.condense.init");
    condenser.Initialize(source, num_classes, config, rng);
  }

  long long ran_here = 0;
  while (epoch < config.epochs) {
    {
      BGC_TRACE_SCOPE("phase.condense.epoch");
      condenser.Epoch(source);
    }
    ++epoch;
    ++ran_here;
    const bool done = epoch >= config.epochs;
    if (!done && options.stop_after_epochs > 0 &&
        ran_here >= options.stop_after_epochs) {
      WriteCheckpoint(condenser, options.checkpoint_path);
      out.condensed = condenser.Result();
      out.completed = false;
      out.epochs_done = epoch;
      return out;
    }
    if (!done && options.checkpoint_every > 0 &&
        epoch % options.checkpoint_every == 0) {
      WriteCheckpoint(condenser, options.checkpoint_path);
    }
  }

  if (options.keep_checkpoint) {
    WriteCheckpoint(condenser, options.checkpoint_path);
  } else if (FileExists(options.checkpoint_path)) {
    std::remove(options.checkpoint_path.c_str());
  }
  out.condensed = condenser.Result();
  out.completed = true;
  out.epochs_done = epoch;
  return out;
}

SampledTrainResult RunResumableMinibatchTraining(
    nn::MinibatchTrainer& trainer, const ResumableOptions& options) {
  BGC_CHECK_MSG(!options.checkpoint_path.empty(),
                "ResumableOptions.checkpoint_path is required");

  SampledTrainResult out;
  long long epoch = 0;
  const long long total_epochs = trainer.config().epochs;
  if (FileExists(options.checkpoint_path)) {
    StatusOr<SampledTrainCheckpoint> loaded =
        TryLoadSampledTrainCheckpoint(options.checkpoint_path);
    BGC_CHECK_MSG(loaded.ok(),
                  "corrupt checkpoint (delete it to restart): " +
                      loaded.status().message());
    SampledTrainCheckpoint ckpt = loaded.take();
    BGC_CHECK_MSG(ckpt.next_epoch <= total_epochs,
                  "checkpoint is past this run's epoch count");
    Status s = trainer.model().LoadStateDict(ckpt.model_state);
    BGC_CHECK_MSG(s.ok(), "checkpoint does not fit this model: " +
                              s.message());
    // Re-key the saved moments back onto this model's params by name.
    trainer.optimizer().Reset();
    for (size_t i = 0; i < ckpt.adam_m.size(); ++i) {
      const std::string& name = ckpt.adam_m[i].first;
      BGC_CHECK_MSG(ckpt.adam_v[i].first == name,
                    "checkpoint Adam moment maps disagree on param order");
      bool found = false;
      for (const auto& [pname, param] : trainer.model().NamedParams()) {
        if (pname != name) continue;
        trainer.optimizer().RestoreState(
            param, {std::move(ckpt.adam_m[i].second),
                    std::move(ckpt.adam_v[i].second)});
        found = true;
        break;
      }
      BGC_CHECK_MSG(found, "checkpoint Adam state names unknown param " + name);
    }
    trainer.optimizer().set_step_count(ckpt.adam_step);
    BGC_CHECK_MSG(ckpt.rng_state.size() == Rng::kStateWords,
                  "checkpoint RNG state has wrong word count");
    std::array<uint64_t, Rng::kStateWords> words;
    std::copy(ckpt.rng_state.begin(), ckpt.rng_state.end(), words.begin());
    trainer.dropout_rng().RestoreState(words);
    epoch = ckpt.next_epoch;
    out.resumed = true;
  }

  long long ran_here = 0;
  while (epoch < total_epochs) {
    {
      BGC_TRACE_SCOPE("phase.train_minibatch.epoch");
      out.last_loss = trainer.RunEpoch(static_cast<int>(epoch));
    }
    ++epoch;
    ++ran_here;
    const bool done = epoch >= total_epochs;
    if (!done && options.stop_after_epochs > 0 &&
        ran_here >= options.stop_after_epochs) {
      WriteTrainerCheckpoint(trainer, epoch, options.checkpoint_path);
      out.completed = false;
      out.epochs_done = epoch;
      return out;
    }
    if (!done && options.checkpoint_every > 0 &&
        epoch % options.checkpoint_every == 0) {
      WriteTrainerCheckpoint(trainer, epoch, options.checkpoint_path);
    }
  }

  if (options.keep_checkpoint) {
    WriteTrainerCheckpoint(trainer, epoch, options.checkpoint_path);
  } else if (FileExists(options.checkpoint_path)) {
    std::remove(options.checkpoint_path.c_str());
  }
  out.completed = true;
  out.epochs_done = epoch;
  return out;
}

}  // namespace bgc::store
