#include "src/store/resumable.h"

#include <cstdio>

#include "src/core/check.h"
#include "src/core/fs.h"
#include "src/obs/obs.h"
#include "src/store/artifact_cache.h"
#include "src/store/serialize.h"

namespace bgc::store {
namespace {

void WriteCheckpoint(condense::Condenser& condenser,
                     const std::string& path) {
  Status s = SaveCondenserCheckpoint(condenser.ExportState(), path);
  BGC_CHECK_MSG(s.ok(), "cannot write checkpoint: " + s.message());
}

}  // namespace

ResumableResult RunResumableCondensation(
    condense::Condenser& condenser, const condense::SourceGraph& source,
    int num_classes, const condense::CondenseConfig& config, Rng& rng,
    const ResumableOptions& options) {
  BGC_CHECK_MSG(!options.checkpoint_path.empty(),
                "ResumableOptions.checkpoint_path is required");
  BGC_CHECK_MSG(condenser.SupportsCheckpoint(),
                condenser.name() + " does not support checkpointing");

  ResumableResult out;
  long long epoch = 0;
  if (FileExists(options.checkpoint_path)) {
    StatusOr<condense::CondenserState> loaded =
        TryLoadCondenserCheckpoint(options.checkpoint_path);
    BGC_CHECK_MSG(loaded.ok(),
                  "corrupt checkpoint (delete it to restart): " +
                      loaded.status().message());
    condense::CondenserState state = loaded.take();
    BGC_CHECK_MSG(state.method == condenser.name(),
                  "checkpoint is for method " + state.method + ", not " +
                      condenser.name());
    BGC_CHECK_MSG(CanonicalCondenseKey(state.config) ==
                      CanonicalCondenseKey(config),
                  "checkpoint config does not match this run: " +
                      CanonicalCondenseKey(state.config) + " vs " +
                      CanonicalCondenseKey(config));
    condenser.RestoreState(source, state);
    epoch = state.epoch;
    out.resumed = true;
  } else {
    BGC_TRACE_SCOPE("phase.condense.init");
    condenser.Initialize(source, num_classes, config, rng);
  }

  long long ran_here = 0;
  while (epoch < config.epochs) {
    {
      BGC_TRACE_SCOPE("phase.condense.epoch");
      condenser.Epoch(source);
    }
    ++epoch;
    ++ran_here;
    const bool done = epoch >= config.epochs;
    if (!done && options.stop_after_epochs > 0 &&
        ran_here >= options.stop_after_epochs) {
      WriteCheckpoint(condenser, options.checkpoint_path);
      out.condensed = condenser.Result();
      out.completed = false;
      out.epochs_done = epoch;
      return out;
    }
    if (!done && options.checkpoint_every > 0 &&
        epoch % options.checkpoint_every == 0) {
      WriteCheckpoint(condenser, options.checkpoint_path);
    }
  }

  if (options.keep_checkpoint) {
    WriteCheckpoint(condenser, options.checkpoint_path);
  } else if (FileExists(options.checkpoint_path)) {
    std::remove(options.checkpoint_path.c_str());
  }
  out.condensed = condenser.Result();
  out.completed = true;
  out.epochs_done = epoch;
  return out;
}

}  // namespace bgc::store
