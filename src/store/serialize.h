#ifndef BGC_STORE_SERIALIZE_H_
#define BGC_STORE_SERIALIZE_H_

// bgcbin v1 serializers for the library's value types. Each artifact kind
// is a container with a "kind" section naming it plus typed payload
// sections; loaders verify the kind, every checksum (via BgcbinReader),
// and all structural invariants (shape agreement, label/edge ranges)
// before returning. All Save* functions write atomically.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "src/condense/condenser.h"
#include "src/core/rng.h"
#include "src/core/status.h"
#include "src/data/dataset.h"
#include "src/graph/csr.h"
#include "src/nn/models.h"
#include "src/store/bgcbin.h"
#include "src/tensor/matrix.h"

namespace bgc::store {

/// Section-level codecs (bit-exact round trips; floats stored as raw
/// IEEE-754 words). Get* latch an error on the reader when the payload is
/// truncated or structurally invalid and return an empty value.
void PutMatrix(SectionWriter& w, const Matrix& m);
Matrix GetMatrix(SectionReader& r);
void PutCsr(SectionWriter& w, const graph::CsrMatrix& m);
graph::CsrMatrix GetCsr(SectionReader& r);
void PutIntVector(SectionWriter& w, const std::vector<int>& v);
std::vector<int> GetIntVector(SectionReader& r);
void PutU64Vector(SectionWriter& w, const std::vector<uint64_t>& v);
std::vector<uint64_t> GetU64Vector(SectionReader& r);

/// Named state-dict codec (model weights, condenser tensors).
void PutStateDict(SectionWriter& w,
                  const std::vector<std::pair<std::string, Matrix>>& state);
std::vector<std::pair<std::string, Matrix>> GetStateDict(SectionReader& r);

/// ---- data::GraphDataset ("bgc.dataset") ------------------------------
Status SaveDatasetBinary(const data::GraphDataset& dataset,
                         const std::string& path);
StatusOr<data::GraphDataset> TryLoadDatasetBinary(const std::string& path);

/// ---- condense::CondensedGraph ("bgc.condensed") ----------------------
Status SaveCondensedBinary(const condense::CondensedGraph& condensed,
                           const std::string& path);
StatusOr<condense::CondensedGraph> TryLoadCondensedBinary(
    const std::string& path);
/// In-container variants so other artifacts (cache entries) can embed a
/// condensed graph next to their own sections.
void AddCondensedSections(BgcbinWriter& writer,
                          const condense::CondensedGraph& condensed);
StatusOr<condense::CondensedGraph> ReadCondensedSections(
    const BgcbinReader& reader);

/// ---- nn::GnnModel parameters ("bgc.model") ---------------------------
/// Saves the architecture name + named parameter state dict.
Status SaveGnnModel(nn::GnnModel& model, const std::string& path);
/// Restores into an already-constructed model. Fails (model untouched)
/// when the file's architecture or parameter names/shapes do not match.
Status LoadGnnModel(nn::GnnModel& model, const std::string& path);

/// ---- condense::CondenserState ("bgc.checkpoint") ---------------------
Status SaveCondenserCheckpoint(const condense::CondenserState& state,
                               const std::string& path);
StatusOr<condense::CondenserState> TryLoadCondenserCheckpoint(
    const std::string& path);

/// ---- sampled-training checkpoint ("bgc.sampled-train-ckpt") ----------
/// Epoch-boundary snapshot of a MinibatchTrainer: everything that carries
/// across epochs (model weights, Adam moments + step, dropout stream).
/// Batches themselves are pure functions of (seed, epoch, batch), so this
/// state is sufficient for a bit-identical resume.
struct SampledTrainCheckpoint {
  long long next_epoch = 0;  // first epoch the resumed run executes
  std::vector<std::pair<std::string, Matrix>> model_state;
  // Adam moments keyed by the owning parameter's name; params absent from
  // both maps had no optimizer state yet.
  std::vector<std::pair<std::string, Matrix>> adam_m;
  std::vector<std::pair<std::string, Matrix>> adam_v;
  long long adam_step = 0;
  std::vector<uint64_t> rng_state;  // dropout stream (Rng::SaveState words)
};

Status SaveSampledTrainCheckpoint(const SampledTrainCheckpoint& state,
                                  const std::string& path);
StatusOr<SampledTrainCheckpoint> TryLoadSampledTrainCheckpoint(
    const std::string& path);

}  // namespace bgc::store

#endif  // BGC_STORE_SERIALIZE_H_
