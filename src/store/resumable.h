#ifndef BGC_STORE_RESUMABLE_H_
#define BGC_STORE_RESUMABLE_H_

// Checkpointed condensation runs. Condensation is the long pole of every
// experiment (minutes of gradient matching); a killed run used to mean
// starting over. RunResumableCondensation periodically snapshots the full
// condenser trajectory — synthetic tensors, Adam moments, surrogate
// weights, RNG stream — as a bgcbin checkpoint, and a rerun picks up at
// the last checkpoint and finishes bit-identically with an uninterrupted
// run (at any thread count; the underlying kernels are deterministic).

#include <string>

#include "src/condense/condenser.h"
#include "src/core/rng.h"
#include "src/core/status.h"
#include "src/nn/trainer.h"

namespace bgc::store {

struct ResumableOptions {
  /// Checkpoint file. Written atomically, so a kill mid-checkpoint leaves
  /// the previous checkpoint intact.
  std::string checkpoint_path;
  /// Checkpoint every N completed epochs (0 disables periodic snapshots;
  /// an interrupted run then restarts from scratch).
  int checkpoint_every = 10;
  /// Testing hook: stop (checkpoint + return) after this many epochs have
  /// run in *this* invocation, simulating a kill. 0 = run to completion.
  int stop_after_epochs = 0;
  /// Keep the checkpoint file after a completed run (default: delete it).
  bool keep_checkpoint = false;
};

/// Outcome of one RunResumableCondensation invocation.
struct ResumableResult {
  condense::CondensedGraph condensed;
  /// False when stop_after_epochs interrupted the run before
  /// config.epochs; `condensed` then holds the partial result.
  bool completed = true;
  /// Epochs completed across all invocations (== config.epochs when
  /// `completed`).
  long long epochs_done = 0;
  /// True when this invocation started from an existing checkpoint.
  bool resumed = false;
};

/// Drives `condenser` for config.epochs epochs with periodic checkpoints.
/// If options.checkpoint_path exists, resumes from it instead of
/// initializing (the checkpoint must match the condenser method and the
/// config; `rng` is then unused — the condenser's restored internal stream
/// takes over). Aborts on a corrupt or mismatched checkpoint: silently
/// restarting would hide data loss.
ResumableResult RunResumableCondensation(condense::Condenser& condenser,
                                         const condense::SourceGraph& source,
                                         int num_classes,
                                         const condense::CondenseConfig& config,
                                         Rng& rng,
                                         const ResumableOptions& options);

/// Outcome of one RunResumableMinibatchTraining invocation.
struct SampledTrainResult {
  /// False when stop_after_epochs interrupted the run before
  /// trainer.config().epochs.
  bool completed = true;
  /// Epochs completed across all invocations.
  long long epochs_done = 0;
  /// True when this invocation started from an existing checkpoint.
  bool resumed = false;
  /// Mean batch loss of the last epoch run in this invocation.
  float last_loss = 0.0f;
};

/// Drives `trainer` for trainer.config().epochs epochs with periodic
/// epoch-boundary checkpoints ("bgc.sampled-train-ckpt"), resuming from
/// options.checkpoint_path when it exists. The trainer must be freshly
/// constructed (same model init seed and config as the interrupted run);
/// a resumed run then continues bit-identically with an uninterrupted
/// one, because minibatches are pure functions of (seed, epoch, batch)
/// and the checkpoint restores everything that carries across epochs.
/// Aborts on a corrupt or mismatched checkpoint.
SampledTrainResult RunResumableMinibatchTraining(
    nn::MinibatchTrainer& trainer, const ResumableOptions& options);

}  // namespace bgc::store

#endif  // BGC_STORE_RESUMABLE_H_
