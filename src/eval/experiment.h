#ifndef BGC_EVAL_EXPERIMENT_H_
#define BGC_EVAL_EXPERIMENT_H_

#include <string>

#include "src/attack/bgc.h"
#include "src/condense/condenser.h"
#include "src/core/stats.h"
#include "src/eval/pipeline.h"

namespace bgc::store {
class ArtifactCache;
}

namespace bgc::eval {

/// One experiment cell: dataset × condensation method × attack × victim,
/// repeated `repeats` times with shifted seeds.
struct RunSpec {
  std::string dataset = "cora-sim";
  double dataset_scale = 1.0;
  uint64_t seed = 1;
  int repeats = 2;
  std::string method = "gcond";
  /// "none" | "bgc" | "bgc-rand" | "doorping" | "gta" | "naive".
  std::string attack = "bgc";
  condense::CondenseConfig condense;
  attack::AttackConfig attack_cfg;
  VictimConfig victim;
  /// Also run a clean condensation per repeat to fill C-CTA / C-ASR
  /// (attack must not be "none").
  bool eval_clean_baseline = true;
  /// Optional content-addressed cache for clean condensations (attacked
  /// condensations are never cached: the attack interleaves with the
  /// trajectory). Not owned. Victim training draws from RNG streams
  /// decoupled from condensation, so cached and recomputed runs produce
  /// identical metrics.
  store::ArtifactCache* artifact_cache = nullptr;
};

/// Aggregated results of a cell, matching the paper's Table 2 columns.
struct CellStats {
  MeanStd cta;    // backdoored GNN clean accuracy
  MeanStd asr;    // backdoored GNN attack success rate
  MeanStd c_cta;  // clean GNN accuracy (clean condensation)
  MeanStd c_asr;  // triggers against the clean GNN
  bool has_clean = false;
};

/// Result of a single repeat, exposed for epoch-sweep style experiments.
struct RepeatResult {
  AttackMetrics backdoor;
  AttackMetrics clean;
  bool has_clean = false;
};

/// True when `attack` is a name RunOnce dispatches ("none" included).
/// Callers that must not abort validate with this before running.
bool IsKnownAttack(const std::string& attack);

/// Runs spec.attack against `clean` (must not be "none"; validate with
/// IsKnownAttack first). Exposed for front ends that drive the attack
/// outside RunOnce's seed-stream scheme — the serve layer's attack jobs
/// share one Rng across attack and victim exactly like `bgc_cli attack`.
attack::AttackResult DispatchAttack(const RunSpec& spec,
                                    const condense::SourceGraph& clean,
                                    int num_classes, Rng& rng);

/// Runs one repeat with the given seed offset.
RepeatResult RunOnce(const RunSpec& spec, uint64_t seed);

/// Runs `spec.repeats` repeats and aggregates.
CellStats RunExperiment(const RunSpec& spec);

}  // namespace bgc::eval

#endif  // BGC_EVAL_EXPERIMENT_H_
