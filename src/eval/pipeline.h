#ifndef BGC_EVAL_PIPELINE_H_
#define BGC_EVAL_PIPELINE_H_

#include <functional>
#include <memory>
#include <string>

#include "src/attack/trigger.h"
#include "src/condense/condenser.h"
#include "src/data/dataset.h"
#include "src/graph/partition.h"
#include "src/nn/models.h"

namespace bgc::eval {

/// Downstream ("victim") model configuration. The provider does not know
/// this — it is the customer's training setup (paper §5: GCN by default,
/// Table 4 sweeps architectures).
struct VictimConfig {
  std::string arch = "gcn";
  int hidden = 64;
  int layers = 2;
  float dropout = 0.5f;
  int epochs = 200;
  float lr = 0.01f;
  float weight_decay = 5e-4f;
};

/// Trains a victim GNN on the condensed graph (all synthetic nodes
/// labeled).
std::unique_ptr<nn::GnnModel> TrainVictim(
    const condense::CondensedGraph& condensed, const VictimConfig& config,
    Rng& rng);

/// CTA (clean test accuracy) + ASR (attack success rate) of one victim.
struct AttackMetrics {
  double cta = 0.0;
  double asr = 0.0;
};

/// Inference function: logits (or vote counts) for (adj, features). Lets
/// model-level defenses (Randsmooth) substitute their own prediction rule.
using PredictFn =
    std::function<Matrix(const graph::CsrMatrix&, const Matrix&)>;

/// Evaluates the paper's two metrics:
///  - CTA: accuracy of `predict` on the clean test split.
///  - ASR: triggers from `generator` are attached to every test node whose
///    true label != target_class; ASR is the fraction classified as
///    target_class. Zero when `generator` is null.
AttackMetrics EvaluateWithPredict(const PredictFn& predict,
                                  const data::GraphDataset& dataset,
                                  const attack::TriggerGenerator* generator,
                                  int target_class);

/// EvaluateWithPredict over plain victim inference.
AttackMetrics EvaluateVictim(nn::GnnModel& victim,
                             const data::GraphDataset& dataset,
                             const attack::TriggerGenerator* generator,
                             int target_class);

/// Accuracy of `model` on the rows of `idx`, computed batchwise on
/// neighbor-sampled subgraphs (never materializing a full-graph forward
/// pass) — the evaluation path for out-of-core datasets. Deterministic
/// for fixed (fanout, batch_size, seed).
double EvaluateAccuracySampled(nn::GnnModel& model,
                               const graph::NeighborSource& graph,
                               const graph::FeatureSource& features,
                               const std::vector<int>& labels,
                               const std::vector<int>& idx,
                               const std::vector<int>& fanout, int batch_size,
                               uint64_t seed);

}  // namespace bgc::eval

#endif  // BGC_EVAL_PIPELINE_H_
