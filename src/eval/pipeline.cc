#include "src/eval/pipeline.h"

#include "src/attack/attach.h"
#include "src/core/check.h"
#include "src/nn/trainer.h"
#include "src/obs/obs.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::eval {

std::unique_ptr<nn::GnnModel> TrainVictim(
    const condense::CondensedGraph& condensed, const VictimConfig& config,
    Rng& rng) {
  BGC_TRACE_SCOPE("phase.victim");
  nn::GnnConfig mc;
  mc.in_dim = condensed.features.cols();
  mc.hidden_dim = config.hidden;
  mc.out_dim = condensed.num_classes;
  mc.num_layers = config.layers;
  mc.dropout = config.dropout;
  auto model = nn::MakeModel(config.arch, mc, rng);
  nn::TrainConfig tc;
  tc.epochs = config.epochs;
  tc.lr = config.lr;
  tc.weight_decay = config.weight_decay;
  tc.seed = rng.NextU64();
  nn::TrainNodeClassifier(*model, condensed.adj, condensed.features,
                          condensed.labels, /*train_idx=*/{}, tc);
  return model;
}

AttackMetrics EvaluateWithPredict(const PredictFn& predict,
                                  const data::GraphDataset& dataset,
                                  const attack::TriggerGenerator* generator,
                                  int target_class) {
  BGC_TRACE_SCOPE("phase.eval");
  AttackMetrics metrics;
  // CTA on the clean graph.
  Matrix clean_logits = predict(dataset.adj, dataset.features);
  metrics.cta =
      nn::Accuracy(clean_logits, dataset.labels, dataset.test_idx);
  if (generator == nullptr) return metrics;

  // ASR: trigger every test node whose true label differs from the target.
  std::vector<int> hosts;
  for (int idx : dataset.test_idx) {
    if (dataset.labels[idx] != target_class) hosts.push_back(idx);
  }
  if (hosts.empty()) return metrics;
  condense::SourceGraph full;
  full.adj = dataset.adj;
  full.features = dataset.features;
  full.labels = dataset.labels;
  auto triggers = generator->Generate(full, hosts);
  attack::AugmentedGraph aug =
      attack::AttachToGraph(dataset.adj, dataset.features, hosts, triggers);
  Matrix logits = predict(aug.adj, aug.features);
  std::vector<int> pred = ArgmaxRows(logits);
  long long hit = 0;
  for (int host : hosts) hit += pred[host] == target_class;
  metrics.asr = static_cast<double>(hit) / static_cast<double>(hosts.size());
  return metrics;
}

AttackMetrics EvaluateVictim(nn::GnnModel& victim,
                             const data::GraphDataset& dataset,
                             const attack::TriggerGenerator* generator,
                             int target_class) {
  PredictFn predict = [&victim](const graph::CsrMatrix& adj,
                                const Matrix& x) {
    return nn::PredictLogits(victim, adj, x);
  };
  return EvaluateWithPredict(predict, dataset, generator, target_class);
}

double EvaluateAccuracySampled(nn::GnnModel& model,
                               const graph::NeighborSource& graph,
                               const graph::FeatureSource& features,
                               const std::vector<int>& labels,
                               const std::vector<int>& idx,
                               const std::vector<int>& fanout, int batch_size,
                               uint64_t seed) {
  BGC_TRACE_SCOPE("phase.eval_sampled");
  if (idx.empty()) return 0.0;
  Matrix logits = nn::PredictLogitsSampled(model, graph, features, idx,
                                           fanout, batch_size, seed);
  // Logits row i corresponds to idx[i], so score against remapped labels
  // with an identity index.
  std::vector<int> y(idx.size());
  for (size_t i = 0; i < idx.size(); ++i) {
    BGC_CHECK_LT(idx[i], static_cast<int>(labels.size()));
    y[i] = labels[idx[i]];
  }
  return nn::Accuracy(logits, y, {});
}

}  // namespace bgc::eval
