#include "src/eval/experiment.h"

#include "src/attack/gta.h"
#include "src/attack/naive.h"
#include "src/core/check.h"
#include "src/data/synthetic.h"
#include "src/obs/obs.h"
#include "src/store/artifact_cache.h"

namespace bgc::eval {
namespace {

constexpr uint64_t kSeedStride = 0x9e3779b97f4a7c15ULL;

// Clean condensation with optional artifact caching. The condensation RNG
// is private to this function, so a cache hit (which skips the condenser
// entirely) leaves every other stream in the repeat untouched.
condense::CondensedGraph CleanCondense(const RunSpec& spec,
                                       const condense::SourceGraph& clean,
                                       int num_classes, uint64_t rng_seed) {
  auto run = [&] {
    auto condenser = condense::MakeCondenser(spec.method);
    Rng rng(rng_seed);
    return condense::RunCondensation(*condenser, clean, num_classes,
                                     spec.condense, rng);
  };
  if (spec.artifact_cache == nullptr) return run();
  const std::string key = store::CondensedCacheKey(
      spec.dataset, spec.dataset_scale, spec.method, spec.condense, rng_seed);
  return spec.artifact_cache->GetOrComputeCondensed(key, run);
}

}  // namespace

attack::AttackResult DispatchAttack(const RunSpec& spec,
                                    const condense::SourceGraph& clean,
                                    int num_classes, Rng& rng) {
  auto condenser = condense::MakeCondenser(spec.method);
  attack::AttackConfig acfg = spec.attack_cfg;
  if (spec.attack == "bgc") {
    return attack::RunBgc(clean, num_classes, *condenser, spec.condense,
                          acfg, rng);
  }
  if (spec.attack == "bgc-rand") {
    acfg.selection = "random";
    return attack::RunBgc(clean, num_classes, *condenser, spec.condense,
                          acfg, rng);
  }
  if (spec.attack == "doorping") {
    acfg.trigger_type = "universal";
    return attack::RunBgc(clean, num_classes, *condenser, spec.condense,
                          acfg, rng);
  }
  if (spec.attack == "gta") {
    return attack::RunGta(clean, num_classes, *condenser, spec.condense,
                          acfg, rng);
  }
  if (spec.attack == "naive") {
    return attack::RunNaivePoison(clean, num_classes, *condenser,
                                  spec.condense, acfg, rng);
  }
  BGC_CHECK_MSG(false, "unknown attack: " + spec.attack);
  return {};
}

bool IsKnownAttack(const std::string& attack) {
  return attack == "none" || attack == "bgc" || attack == "bgc-rand" ||
         attack == "doorping" || attack == "gta" || attack == "naive";
}

RepeatResult RunOnce(const RunSpec& spec, uint64_t seed) {
  RepeatResult out;
  data::GraphDataset ds;
  condense::SourceGraph clean;
  {
    BGC_TRACE_SCOPE("phase.data");
    ds = data::MakeDataset(spec.dataset, seed, spec.dataset_scale);
    data::TrainView view = data::MakeTrainView(ds);
    clean = condense::FromTrainView(view);
  }
  Rng rng(seed * kSeedStride + 17);

  if (spec.attack == "none") {
    condense::CondensedGraph condensed =
        CleanCondense(spec, clean, ds.num_classes, seed * kSeedStride + 17);
    Rng victim_rng(seed * kSeedStride + 19);
    auto victim = TrainVictim(condensed, spec.victim, victim_rng);
    out.backdoor = EvaluateVictim(*victim, ds, /*generator=*/nullptr,
                                  spec.attack_cfg.target_class);
    return out;
  }

  attack::AttackResult attacked =
      DispatchAttack(spec, clean, ds.num_classes, rng);
  // Dedicated victim stream (mirrors the clean path): victim metrics must
  // not shift when attack internals change how many draws they consume.
  Rng victim_rng(seed * kSeedStride + 19);
  auto victim = TrainVictim(attacked.condensed, spec.victim, victim_rng);
  out.backdoor = EvaluateVictim(*victim, ds, attacked.generator.get(),
                                spec.attack_cfg.target_class);

  if (spec.eval_clean_baseline) {
    condense::CondensedGraph condensed =
        CleanCondense(spec, clean, ds.num_classes, seed * kSeedStride + 18);
    Rng clean_victim_rng(seed * kSeedStride + 20);
    auto clean_victim = TrainVictim(condensed, spec.victim, clean_victim_rng);
    // C-ASR probes the *clean* GNN with the attack's triggers.
    out.clean = EvaluateVictim(*clean_victim, ds, attacked.generator.get(),
                               spec.attack_cfg.target_class);
    out.has_clean = true;
  }
  return out;
}

CellStats RunExperiment(const RunSpec& spec) {
  BGC_CHECK_GT(spec.repeats, 0);
  std::vector<double> cta, asr, c_cta, c_asr;
  bool has_clean = false;
  for (int r = 0; r < spec.repeats; ++r) {
    RepeatResult rr = RunOnce(spec, spec.seed + r);
    cta.push_back(rr.backdoor.cta);
    asr.push_back(rr.backdoor.asr);
    if (rr.has_clean) {
      has_clean = true;
      c_cta.push_back(rr.clean.cta);
      c_asr.push_back(rr.clean.asr);
    }
  }
  CellStats stats;
  stats.cta = ComputeMeanStd(cta);
  stats.asr = ComputeMeanStd(asr);
  stats.c_cta = ComputeMeanStd(c_cta);
  stats.c_asr = ComputeMeanStd(c_asr);
  stats.has_clean = has_clean;
  return stats;
}

}  // namespace bgc::eval
