#ifndef BGC_EVAL_SCHEDULER_H_
#define BGC_EVAL_SCHEDULER_H_

// Parallel experiment scheduler for benchmark grids.
//
// A bench grid is a list of independent (cell, repeat) units: each unit is
// one RunOnce() with its own seed and touches no shared mutable state
// except the (single-flighted, thread-safe) artifact cache. The scheduler
// runs those units on up to `jobs` plain threads and aggregates results in
// a way that is independent of completion order:
//
//   - Every unit writes into a pre-sized slot keyed by its unit index;
//     no shared accumulator is touched while units run.
//   - Per-cell statistics are reduced afterwards on the calling thread in
//     fixed repeat order, mirroring RunExperiment() exactly, so
//     --jobs=N output is bit-identical to --jobs=1 for every N.
//
// Thread partitioning: the global BGC_NUM_THREADS budget is split between
// the grid level and the kernel level — while a grid runs with jobs > 1,
// the kernel pool is resized to max(1, total / jobs) threads (and restored
// afterwards), so jobs × kernel_threads ≈ total instead of oversubscribing
// jobs × total.
//
// Failure isolation: a unit that throws becomes a Status in its slot (and
// its cell an error row in the table); the other units complete normally.
// Invalid RunSpecs (unknown dataset / method / attack names, which would
// abort inside RunOnce via BGC_CHECK) are rejected up front by
// ValidateRunSpec and never scheduled.
//
// Observability: with jobs > 1 each unit's thread carries a phase tag
// "grid.u<NNN>", so "phase.*" scopes opened inside the unit land in
// per-unit timer families ("grid.u003.condense", ...) instead of
// overlapping in the shared phase table; the grid itself is accounted as
// "phase.grid" on the calling thread. With jobs == 1 nothing is
// redirected and the phase table is unchanged from a serial run.

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/status.h"
#include "src/eval/experiment.h"

namespace bgc::eval {

struct GridOptions {
  /// Units run concurrently. 1 (the default) runs everything serially on
  /// the calling thread with no pool resize — today's behavior.
  int jobs = 1;
  /// Thread budget split between grid and kernel levels; 0 resolves
  /// ThreadPool::DefaultNumThreads() (BGC_NUM_THREADS or hardware).
  int total_threads = 0;
};

/// Kernel-pool size while `jobs` units run concurrently out of a budget of
/// `total_threads`: max(1, total / jobs).
int KernelThreadsFor(int total_threads, int jobs);

/// A persistent set of experiment worker slots backed by plain threads,
/// sharing the grid/kernel thread-budget partition with RunUnits: while a
/// WorkerSlots with `slots > 1` exists, the global kernel pool is resized
/// to KernelThreadsFor(total_threads, slots) and restored at Stop(), so
/// slots × kernel_threads stays within the configured budget instead of
/// oversubscribing.
///
/// Submitted tasks run FIFO, each exactly once, on the first free slot.
/// Tasks must not throw (wrap them the way RunOneUnit does); a task that
/// needs per-unit phase accounting installs its own obs::ScopedPhaseTag.
///
/// RunUnits builds a transient WorkerSlots per grid; the serve layer
/// (src/serve) keeps one alive for the daemon's lifetime and feeds it
/// admitted jobs.
class WorkerSlots {
 public:
  /// Spawns `slots` worker threads (clamped to >= 1). `total_threads <= 0`
  /// resolves ThreadPool::DefaultNumThreads().
  WorkerSlots(int slots, int total_threads);
  ~WorkerSlots();

  WorkerSlots(const WorkerSlots&) = delete;
  WorkerSlots& operator=(const WorkerSlots&) = delete;

  /// Enqueues a task. Must not be called after Stop().
  void Submit(std::function<void()> task);

  /// Blocks until the queue is empty and every started task has finished.
  /// Tasks submitted concurrently with Drain() may or may not be waited
  /// for; the serve layer serializes drain against admission itself.
  void Drain();

  /// Drain() + join the slot threads + restore the kernel pool.
  /// Idempotent; called by the destructor.
  void Stop();

  int slots() const { return slots_; }
  /// Tasks enqueued but not yet started (queue-depth gauges).
  int pending() const;

 private:
  void WorkerLoop();

  int slots_ = 1;
  int previous_pool_ = 0;
  bool resized_ = false;

  mutable std::mutex mu_;
  std::condition_variable task_cv_;  // workers: a task arrived / stopping
  std::condition_variable idle_cv_;  // Drain(): queue empty and slots idle
  std::deque<std::function<void()>> queue_;
  int active_ = 0;
  bool stopping_ = false;
  bool stopped_ = false;
  std::vector<std::thread> threads_;
};

/// Runs unit(0) .. unit(num_units - 1), each exactly once, on up to
/// options.jobs threads, and returns one Status per unit (slot u holds
/// unit u's outcome). A unit that throws std::exception is captured as an
/// error Status in its slot; the remaining units still run. Blocks until
/// all units finish. The kernel pool is resized per the partitioning rule
/// while running and restored before returning.
std::vector<Status> RunUnits(const GridOptions& options, int num_units,
                             const std::function<Status(int)>& unit);

/// One unit's result slot for RunGrid: `value` is meaningful iff `status`
/// is OK.
template <typename T>
struct GridSlot {
  Status status;
  T value{};
};

/// Typed fan-out for benches with custom per-unit bodies (Table 4's
/// per-architecture loop, Table 5's defenses, ...): runs body(u) for every
/// unit, storing each return value in its own pre-sized slot. Completion
/// order cannot affect the output; reduce the returned slots in unit order
/// for deterministic tables.
template <typename Fn>
auto RunGrid(const GridOptions& options, int num_units, Fn&& body)
    -> std::vector<GridSlot<std::decay_t<decltype(body(0))>>> {
  using T = std::decay_t<decltype(body(0))>;
  std::vector<GridSlot<T>> slots(num_units > 0 ? num_units : 0);
  std::vector<Status> statuses =
      RunUnits(options, num_units, [&](int u) -> Status {
        slots[u].value = body(u);
        return Status::Ok();
      });
  for (int u = 0; u < num_units; ++u) slots[u].status = std::move(statuses[u]);
  return slots;
}

/// Rejects specs that would abort inside RunOnce: unknown dataset preset,
/// condensation method, or attack name, or a non-positive repeat count.
Status ValidateRunSpec(const RunSpec& spec);

/// One cell's aggregated outcome: `stats` is meaningful iff `status` is
/// OK; otherwise the message describes the failing unit (error row).
struct CellResult {
  Status status;
  CellStats stats;
};

/// Schedules a grid of RunSpec cells. Each cell expands to `repeats`
/// units (seeds spec.seed + r, exactly as RunExperiment), all cells'
/// units interleave freely across jobs, and per-cell stats are reduced in
/// repeat order — so Run() at any jobs is bit-identical to calling
/// RunExperiment(cell) serially per cell.
class GridRunner {
 public:
  explicit GridRunner(GridOptions options = {}) : options_(options) {}

  std::vector<CellResult> Run(const std::vector<RunSpec>& cells) const;

  const GridOptions& options() const { return options_; }

 private:
  GridOptions options_;
};

}  // namespace bgc::eval

#endif  // BGC_EVAL_SCHEDULER_H_
