#include "src/eval/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "src/core/check.h"

namespace bgc::eval {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  BGC_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t j = 0; j < headers_.size(); ++j) widths[j] = headers_[j].size();
  for (const auto& row : rows_) {
    for (size_t j = 0; j < row.size(); ++j) {
      widths[j] = std::max(widths[j], row[j].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t j = 0; j < row.size(); ++j) {
      os << "| " << row[j] << std::string(widths[j] - row[j].size() + 1, ' ');
    }
    os << "|\n";
  };
  print_row(headers_);
  for (size_t j = 0; j < headers_.size(); ++j) {
    os << "|" << std::string(widths[j] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::ToString() const {
  std::ostringstream os;
  Print(os);
  return os.str();
}

}  // namespace bgc::eval
