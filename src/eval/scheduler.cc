#include "src/eval/scheduler.h"

#include <atomic>
#include <cstdio>
#include <exception>
#include <thread>

#include "src/condense/condenser.h"
#include "src/core/stats.h"
#include "src/core/thread_pool.h"
#include "src/data/synthetic.h"
#include "src/obs/obs.h"

namespace bgc::eval {
namespace {

std::string UnitTag(int unit) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "grid.u%03d", unit);
  return buf;
}

/// Runs one unit with exception capture; never lets a throw escape onto a
/// grid worker thread (which would terminate the process).
void RunOneUnit(const std::function<Status(int)>& unit, int u,
                Status& slot) {
  try {
    slot = unit(u);
  } catch (const std::exception& e) {
    slot = Status::Error("unit " + std::to_string(u) +
                         " threw: " + e.what());
  } catch (...) {
    slot = Status::Error("unit " + std::to_string(u) +
                         " threw a non-standard exception");
  }
}

}  // namespace

int KernelThreadsFor(int total_threads, int jobs) {
  if (jobs < 1) jobs = 1;
  if (total_threads < 1) total_threads = 1;
  const int per_job = total_threads / jobs;
  return per_job < 1 ? 1 : per_job;
}

WorkerSlots::WorkerSlots(int slots, int total_threads)
    : slots_(slots < 1 ? 1 : slots) {
  if (slots_ > 1) {
    const int total = total_threads > 0 ? total_threads
                                        : ThreadPool::DefaultNumThreads();
    previous_pool_ = ThreadPool::Global().num_threads();
    ThreadPool::SetGlobalNumThreads(KernelThreadsFor(total, slots_));
    resized_ = true;
  }
  threads_.reserve(slots_);
  for (int i = 0; i < slots_; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerSlots::~WorkerSlots() { Stop(); }

void WorkerSlots::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  task_cv_.notify_one();
}

void WorkerSlots::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void WorkerSlots::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopping_ = true;
  }
  task_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopped_ = true;
  }
  if (resized_) {
    ThreadPool::SetGlobalNumThreads(previous_pool_);
    resized_ = false;
  }
}

int WorkerSlots::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(queue_.size());
}

void WorkerSlots::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock,
                    [this] { return stopping_ || !queue_.empty(); });
      // Stop() still runs every already-queued task: the serve layer's
      // drain relies on queued closures executing (each no-ops once it
      // sees the server draining, leaving its job persisted).
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

std::vector<Status> RunUnits(const GridOptions& options, int num_units,
                             const std::function<Status(int)>& unit) {
  std::vector<Status> statuses(num_units > 0 ? num_units : 0);
  if (num_units <= 0) return statuses;

  const int jobs =
      options.jobs > num_units ? num_units : (options.jobs < 1 ? 1 : options.jobs);
  if (jobs == 1) {
    // Serial path: no pool resize, no phase redirect — identical to the
    // pre-scheduler loop.
    for (int u = 0; u < num_units; ++u) RunOneUnit(unit, u, statuses[u]);
    return statuses;
  }

  BGC_GAUGE_SET("grid.jobs", jobs);
  {
    BGC_TRACE_SCOPE("phase.grid");
    // WorkerSlots partitions the thread budget (the kernel pool shrinks so
    // jobs × kernel_threads stays within the configured total) and
    // restores it once the grid drains.
    WorkerSlots slots(jobs, options.total_threads);
    for (int u = 0; u < num_units; ++u) {
      slots.Submit([&unit, &statuses, u] {
        // Redirect this unit's "phase.*" scopes into its own family so
        // the shared phase table keeps partitioning wall-clock.
        obs::ScopedPhaseTag tag(UnitTag(u));
        BGC_TRACE_SCOPE("grid.unit");
        RunOneUnit(unit, u, statuses[u]);
        BGC_COUNTER_ADD("grid.units", 1);
      });
    }
    slots.Stop();  // drain + join + restore the kernel pool
  }
  return statuses;
}

Status ValidateRunSpec(const RunSpec& spec) {
  if (spec.repeats <= 0) {
    return Status::Error("repeats must be positive, got " +
                         std::to_string(spec.repeats));
  }
  if (!data::IsKnownDatasetPreset(spec.dataset)) {
    return Status::Error("unknown dataset preset: " + spec.dataset);
  }
  if (!condense::IsKnownMethod(spec.method)) {
    return Status::Error("unknown condensation method: " + spec.method);
  }
  if (!IsKnownAttack(spec.attack)) {
    return Status::Error("unknown attack: " + spec.attack);
  }
  return Status::Ok();
}

std::vector<CellResult> GridRunner::Run(
    const std::vector<RunSpec>& cells) const {
  const int num_cells = static_cast<int>(cells.size());
  std::vector<CellResult> out(num_cells);

  // Expand valid cells into (cell, repeat) units; invalid cells become
  // error rows without scheduling anything (RunOnce would abort on them).
  std::vector<int> unit_cell, unit_repeat;
  std::vector<int> first_unit(num_cells, -1);
  for (int c = 0; c < num_cells; ++c) {
    out[c].status = ValidateRunSpec(cells[c]);
    if (!out[c].status.ok()) continue;
    first_unit[c] = static_cast<int>(unit_cell.size());
    for (int r = 0; r < cells[c].repeats; ++r) {
      unit_cell.push_back(c);
      unit_repeat.push_back(r);
    }
  }

  const int num_units = static_cast<int>(unit_cell.size());
  std::vector<RepeatResult> results(num_units);
  std::vector<Status> statuses =
      RunUnits(options_, num_units, [&](int u) -> Status {
        const RunSpec& spec = cells[unit_cell[u]];
        results[u] = RunOnce(spec, spec.seed + unit_repeat[u]);
        return Status::Ok();
      });

  // Fixed-order reduction per cell, mirroring RunExperiment() exactly so
  // the aggregate is bit-identical to the serial path at any job count.
  for (int c = 0; c < num_cells; ++c) {
    if (!out[c].status.ok()) continue;
    std::vector<double> cta, asr, c_cta, c_asr;
    bool has_clean = false;
    for (int r = 0; r < cells[c].repeats; ++r) {
      const int u = first_unit[c] + r;
      if (!statuses[u].ok()) {
        if (out[c].status.ok()) {
          out[c].status = Status::Error(
              "repeat " + std::to_string(r) + ": " + statuses[u].message());
        }
        continue;
      }
      const RepeatResult& rr = results[u];
      cta.push_back(rr.backdoor.cta);
      asr.push_back(rr.backdoor.asr);
      if (rr.has_clean) {
        has_clean = true;
        c_cta.push_back(rr.clean.cta);
        c_asr.push_back(rr.clean.asr);
      }
    }
    if (!out[c].status.ok()) continue;
    out[c].stats.cta = ComputeMeanStd(cta);
    out[c].stats.asr = ComputeMeanStd(asr);
    out[c].stats.c_cta = ComputeMeanStd(c_cta);
    out[c].stats.c_asr = ComputeMeanStd(c_asr);
    out[c].stats.has_clean = has_clean;
  }
  return out;
}

}  // namespace bgc::eval
