#ifndef BGC_EVAL_TABLE_H_
#define BGC_EVAL_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace bgc::eval {

/// Fixed-width ASCII table used by the bench binaries to print the paper's
/// tables. Column widths adapt to content.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  /// Adds a row; must have the same arity as the header.
  void AddRow(std::vector<std::string> cells);

  /// Renders with a header separator line.
  void Print(std::ostream& os) const;

  /// Renders to a string (testing convenience).
  std::string ToString() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace bgc::eval

#endif  // BGC_EVAL_TABLE_H_
