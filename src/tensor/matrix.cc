#include "src/tensor/matrix.h"

#include <cmath>
#include <cstring>
#include <utility>

namespace bgc {

Matrix::Matrix(int rows, int cols)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * cols, 0.0f) {
  BGC_CHECK_GE(rows, 0);
  BGC_CHECK_GE(cols, 0);
}

Matrix::Matrix(int rows, int cols, float value)
    : rows_(rows), cols_(cols),
      data_(static_cast<size_t>(rows) * cols, value) {
  BGC_CHECK_GE(rows, 0);
  BGC_CHECK_GE(cols, 0);
}

Matrix::Matrix(int rows, int cols, std::vector<float> values)
    : rows_(rows), cols_(cols), data_(values.begin(), values.end()) {
  BGC_CHECK_EQ(static_cast<size_t>(rows) * cols, data_.size());
}

Matrix Matrix::Zeros(int rows, int cols) { return Matrix(rows, cols); }

Matrix Matrix::Full(int rows, int cols, float value) {
  return Matrix(rows, cols, value);
}

Matrix Matrix::Identity(int n) {
  Matrix m(n, n);
  for (int i = 0; i < n; ++i) m(i, i) = 1.0f;
  return m;
}

Matrix Matrix::RandomNormal(int rows, int cols, Rng& rng, float stddev) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return m;
}

Matrix Matrix::RandomUniform(int rows, int cols, Rng& rng, float lo,
                             float hi) {
  Matrix m(rows, cols);
  for (int i = 0; i < m.size(); ++i) {
    m.data()[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return m;
}

Matrix Matrix::GlorotUniform(int in_dim, int out_dim, Rng& rng) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in_dim + out_dim));
  return RandomUniform(in_dim, out_dim, rng, -bound, bound);
}

Matrix Matrix::Row(int r) const {
  BGC_CHECK_GE(r, 0);
  BGC_CHECK_LT(r, rows_);
  Matrix out(1, cols_);
  std::memcpy(out.data(), RowPtr(r), sizeof(float) * cols_);
  return out;
}

void Matrix::SetRow(int r, const Matrix& row) {
  BGC_CHECK_EQ(row.rows(), 1);
  BGC_CHECK_EQ(row.cols(), cols_);
  SetRow(r, row.data());
}

void Matrix::SetRow(int r, const float* values) {
  BGC_CHECK_GE(r, 0);
  BGC_CHECK_LT(r, rows_);
  std::memcpy(RowPtr(r), values, sizeof(float) * cols_);
}

void Matrix::Fill(float value) {
  for (auto& v : data_) v = value;
}

bool Matrix::operator==(const Matrix& other) const {
  return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
}

}  // namespace bgc
