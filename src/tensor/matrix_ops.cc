#include "src/tensor/matrix_ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/core/parallel.h"
#include "src/obs/obs.h"

namespace bgc {

namespace {

// Flops per row-chunk of a GEMM dispatch. Row partitioning writes disjoint
// rows of c, so this only tunes scheduling, never numerics.
constexpr long long kGemmChunkFlops = 1 << 17;

// Rows of b kept hot across an output-row chunk (L2-sized panel).
constexpr int kGemmPanelK = 64;

// Rows per chunk so each chunk carries about kGemmChunkFlops of work; tiny
// products collapse to a single chunk and run inline on the caller.
int GemmRowGrain(int inner, int out_cols) {
  const long long per_row =
      static_cast<long long>(inner) * (out_cols > 0 ? out_cols : 1);
  if (per_row <= 0) return 1 << 20;
  const long long rows = kGemmChunkFlops / per_row;
  return rows < 1 ? 1 : static_cast<int>(rows);
}

}  // namespace

Matrix MatMul(const Matrix& a, const Matrix& b) {
  BGC_CHECK_EQ(a.cols(), b.rows());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  BGC_TRACE_SCOPE("tensor.gemm");
  BGC_COUNTER_ADD("tensor.gemm.calls", 1);
  BGC_COUNTER_ADD("tensor.gemm.flops",
                  2LL * n * k * m);
  Matrix c(n, m);
  // Row-partitioned over the pool: each chunk owns a disjoint slice of c.
  // Within a chunk the k loop is blocked into ascending panels so a panel
  // of b stays cache-hot across all rows of the chunk; for any fixed
  // (i, j) the p contributions still arrive in ascending order, so the
  // result is bit-identical to the serial i-k-j kernel at every thread
  // count.
  ParallelFor(0, n, GemmRowGrain(k, m), [&](int r0, int r1) {
    for (int p0 = 0; p0 < k; p0 += kGemmPanelK) {
      const int p1 = std::min(k, p0 + kGemmPanelK);
      for (int i = r0; i < r1; ++i) {
        const float* arow = a.RowPtr(i);
        float* crow = c.RowPtr(i);
        for (int p = p0; p < p1; ++p) {
          const float av = arow[p];
          if (av == 0.0f) continue;
          const float* brow = b.RowPtr(p);
          for (int j = 0; j < m; ++j) crow[j] += av * brow[j];
        }
      }
    }
  });
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  BGC_CHECK_EQ(a.rows(), b.rows());
  const int k = a.rows(), n = a.cols(), m = b.cols();
  BGC_TRACE_SCOPE("tensor.gemm");
  BGC_COUNTER_ADD("tensor.gemm.calls", 1);
  BGC_COUNTER_ADD("tensor.gemm.flops",
                  2LL * n * k * m);
  Matrix c(n, m);
  // Partitioned over output rows (columns of a): the p loop stays outermost
  // and ascending inside each chunk, so per-element accumulation order —
  // and the bits — match the serial kernel.
  ParallelFor(0, n, GemmRowGrain(k, m), [&](int i0, int i1) {
    for (int p = 0; p < k; ++p) {
      const float* arow = a.RowPtr(p);
      const float* brow = b.RowPtr(p);
      for (int i = i0; i < i1; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        float* crow = c.RowPtr(i);
        for (int j = 0; j < m; ++j) crow[j] += av * brow[j];
      }
    }
  });
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  BGC_CHECK_EQ(a.cols(), b.cols());
  const int n = a.rows(), k = a.cols(), m = b.rows();
  BGC_TRACE_SCOPE("tensor.gemm");
  BGC_COUNTER_ADD("tensor.gemm.calls", 1);
  BGC_COUNTER_ADD("tensor.gemm.flops",
                  2LL * n * k * m);
  Matrix c(n, m);
  // Row-partitioned dot products; each output element is one serial dot,
  // so numerics are untouched by the partitioning.
  ParallelFor(0, n, GemmRowGrain(k, m), [&](int r0, int r1) {
    for (int i = r0; i < r1; ++i) {
      const float* arow = a.RowPtr(i);
      float* crow = c.RowPtr(i);
      for (int j = 0; j < m; ++j) {
        const float* brow = b.RowPtr(j);
        float acc = 0.0f;
        for (int p = 0; p < k; ++p) acc += arow[p] * brow[p];
        crow[j] = acc;
      }
    }
  });
  return c;
}

namespace {

void CheckSameShape(const Matrix& a, const Matrix& b) {
  BGC_CHECK_EQ(a.rows(), b.rows());
  BGC_CHECK_EQ(a.cols(), b.cols());
}

}  // namespace

Matrix Add(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  Matrix c = a;
  float* cd = c.data();
  const float* bd = b.data();
  ParallelFor(0, c.size(), kElementwiseGrain, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) cd[i] += bd[i];
  });
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  Matrix c = a;
  float* cd = c.data();
  const float* bd = b.data();
  ParallelFor(0, c.size(), kElementwiseGrain, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) cd[i] -= bd[i];
  });
  return c;
}

void AddScaledInPlace(Matrix& a, const Matrix& b, float alpha) {
  CheckSameShape(a, b);
  float* ad = a.data();
  const float* bd = b.data();
  ParallelFor(0, a.size(), kElementwiseGrain, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) ad[i] += alpha * bd[i];
  });
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  Matrix c = a;
  float* cd = c.data();
  const float* bd = b.data();
  ParallelFor(0, c.size(), kElementwiseGrain, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) cd[i] *= bd[i];
  });
  return c;
}

Matrix Scale(const Matrix& a, float alpha) {
  Matrix c = a;
  ScaleInPlace(c, alpha);
  return c;
}

void ScaleInPlace(Matrix& a, float alpha) {
  float* ad = a.data();
  ParallelFor(0, a.size(), kElementwiseGrain, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) ad[i] *= alpha;
  });
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& bias) {
  BGC_CHECK_EQ(bias.rows(), 1);
  BGC_CHECK_EQ(bias.cols(), a.cols());
  Matrix c = a;
  for (int i = 0; i < c.rows(); ++i) {
    float* row = c.RowPtr(i);
    for (int j = 0; j < c.cols(); ++j) row[j] += bias.data()[j];
  }
  return c;
}

Matrix Relu(const Matrix& a) {
  Matrix c = a;
  float* cd = c.data();
  ParallelFor(0, c.size(), kElementwiseGrain, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) cd[i] = std::max(0.0f, cd[i]);
  });
  return c;
}

Matrix Sigmoid(const Matrix& a) {
  Matrix c = a;
  float* cd = c.data();
  ParallelFor(0, c.size(), kElementwiseGrain, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) cd[i] = 1.0f / (1.0f + std::exp(-cd[i]));
  });
  return c;
}

Matrix TanhMat(const Matrix& a) {
  Matrix c = a;
  float* cd = c.data();
  ParallelFor(0, c.size(), kElementwiseGrain, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) cd[i] = std::tanh(cd[i]);
  });
  return c;
}

Matrix Clamp(const Matrix& a, float lo, float hi) {
  Matrix c = a;
  float* cd = c.data();
  ParallelFor(0, c.size(), kElementwiseGrain, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) cd[i] = std::min(hi, std::max(lo, cd[i]));
  });
  return c;
}

Matrix RowSoftmax(const Matrix& a) {
  Matrix c(a.rows(), a.cols());
  const int cols = a.cols();
  const int grain = std::max(1, kElementwiseGrain / std::max(1, cols));
  ParallelFor(0, a.rows(), grain, [&](int r0, int r1) {
    for (int i = r0; i < r1; ++i) {
      const float* in = a.RowPtr(i);
      float* out = c.RowPtr(i);
      float mx = in[0];
      for (int j = 1; j < cols; ++j) mx = std::max(mx, in[j]);
      float denom = 0.0f;
      for (int j = 0; j < cols; ++j) {
        out[j] = std::exp(in[j] - mx);
        denom += out[j];
      }
      const float inv = 1.0f / denom;
      for (int j = 0; j < cols; ++j) out[j] *= inv;
    }
  });
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix c(a.cols(), a.rows());
  for (int i = 0; i < a.rows(); ++i) {
    const float* row = a.RowPtr(i);
    for (int j = 0; j < a.cols(); ++j) c(j, i) = row[j];
  }
  return c;
}

// Sum/Dot accumulate per-chunk partials at a fixed kReduceGrain and fold
// them in ascending chunk order, so the value depends only on the input
// size, never the thread count. Inputs under one grain take the flat
// serial path (identical bits to the historical loop).
float Sum(const Matrix& a) {
  const float* ad = a.data();
  return ParallelReduce(
      0, a.size(), kReduceGrain, 0.0f,
      [&](int i0, int i1) {
        float s = 0.0f;
        for (int i = i0; i < i1; ++i) s += ad[i];
        return s;
      },
      [](float x, float y) { return x + y; });
}

float Dot(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  const float* ad = a.data();
  const float* bd = b.data();
  return ParallelReduce(
      0, a.size(), kReduceGrain, 0.0f,
      [&](int i0, int i1) {
        float s = 0.0f;
        for (int i = i0; i < i1; ++i) s += ad[i] * bd[i];
        return s;
      },
      [](float x, float y) { return x + y; });
}

float FrobeniusNorm(const Matrix& a) { return std::sqrt(Dot(a, a)); }

float MaxAbs(const Matrix& a) {
  const float* ad = a.data();
  return ParallelReduce(
      0, a.size(), kReduceGrain, 0.0f,
      [&](int i0, int i1) {
        float m = 0.0f;
        for (int i = i0; i < i1; ++i) m = std::max(m, std::fabs(ad[i]));
        return m;
      },
      [](float x, float y) { return std::max(x, y); });
}

Matrix RowSum(const Matrix& a) {
  Matrix c(a.rows(), 1);
  for (int i = 0; i < a.rows(); ++i) {
    const float* row = a.RowPtr(i);
    float s = 0.0f;
    for (int j = 0; j < a.cols(); ++j) s += row[j];
    c(i, 0) = s;
  }
  return c;
}

Matrix ColSum(const Matrix& a) {
  Matrix c(1, a.cols());
  for (int i = 0; i < a.rows(); ++i) {
    const float* row = a.RowPtr(i);
    for (int j = 0; j < a.cols(); ++j) c.data()[j] += row[j];
  }
  return c;
}

Matrix RowNorm(const Matrix& a) {
  Matrix c(a.rows(), 1);
  for (int i = 0; i < a.rows(); ++i) {
    const float* row = a.RowPtr(i);
    float s = 0.0f;
    for (int j = 0; j < a.cols(); ++j) s += row[j] * row[j];
    c(i, 0) = std::sqrt(s);
  }
  return c;
}

std::vector<int> ArgmaxRows(const Matrix& a) {
  std::vector<int> out(a.rows(), 0);
  for (int i = 0; i < a.rows(); ++i) {
    const float* row = a.RowPtr(i);
    int best = 0;
    for (int j = 1; j < a.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = best;
  }
  return out;
}

float RowCosine(const Matrix& a, int i, const Matrix& b, int j) {
  BGC_CHECK_EQ(a.cols(), b.cols());
  const float* x = a.RowPtr(i);
  const float* y = b.RowPtr(j);
  float dot = 0.0f, nx = 0.0f, ny = 0.0f;
  for (int k = 0; k < a.cols(); ++k) {
    dot += x[k] * y[k];
    nx += x[k] * x[k];
    ny += y[k] * y[k];
  }
  if (nx <= 0.0f || ny <= 0.0f) return 0.0f;
  return dot / (std::sqrt(nx) * std::sqrt(ny));
}

Matrix GatherRows(const Matrix& a, const std::vector<int>& rows) {
  Matrix c(static_cast<int>(rows.size()), a.cols());
  for (size_t k = 0; k < rows.size(); ++k) {
    BGC_CHECK_GE(rows[k], 0);
    BGC_CHECK_LT(rows[k], a.rows());
    c.SetRow(static_cast<int>(k), a.RowPtr(rows[k]));
  }
  return c;
}

void ScatterAddRows(const Matrix& a, const std::vector<int>& rows,
                    Matrix& out) {
  BGC_CHECK_EQ(a.rows(), static_cast<int>(rows.size()));
  BGC_CHECK_EQ(a.cols(), out.cols());
  for (size_t k = 0; k < rows.size(); ++k) {
    BGC_CHECK_GE(rows[k], 0);
    BGC_CHECK_LT(rows[k], out.rows());
    const float* src = a.RowPtr(static_cast<int>(k));
    float* dst = out.RowPtr(rows[k]);
    for (int j = 0; j < a.cols(); ++j) dst[j] += src[j];
  }
}

Matrix ConcatRows(const Matrix& a, const Matrix& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  BGC_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows() + b.rows(), a.cols());
  std::memcpy(c.data(), a.data(), sizeof(float) * a.size());
  std::memcpy(c.data() + a.size(), b.data(), sizeof(float) * b.size());
  return c;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  BGC_CHECK_EQ(a.rows(), b.rows());
  Matrix c(a.rows(), a.cols() + b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    std::memcpy(c.RowPtr(i), a.RowPtr(i), sizeof(float) * a.cols());
    std::memcpy(c.RowPtr(i) + a.cols(), b.RowPtr(i), sizeof(float) * b.cols());
  }
  return c;
}

bool AllClose(const Matrix& a, const Matrix& b, float rtol, float atol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int i = 0; i < a.size(); ++i) {
    const float diff = std::fabs(a.data()[i] - b.data()[i]);
    if (diff > atol + rtol * std::fabs(b.data()[i])) return false;
  }
  return true;
}

Matrix OneHot(const std::vector<int>& labels, int num_classes) {
  Matrix c(static_cast<int>(labels.size()), num_classes);
  for (size_t i = 0; i < labels.size(); ++i) {
    BGC_CHECK_GE(labels[i], 0);
    BGC_CHECK_LT(labels[i], num_classes);
    c(static_cast<int>(i), labels[i]) = 1.0f;
  }
  return c;
}

}  // namespace bgc
