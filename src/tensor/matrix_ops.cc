#include "src/tensor/matrix_ops.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "src/core/parallel.h"
#include "src/obs/obs.h"
#include "src/tensor/simd/simd.h"

namespace bgc {

namespace {

// Flops per row-chunk of a GEMM dispatch. Row partitioning writes disjoint
// rows of c, so this only tunes scheduling, never numerics.
constexpr long long kGemmChunkFlops = 1 << 17;

// Rows per fixed ColSum chunk. Chunked partial rows are folded in
// ascending chunk order, so like kReduceGrain this is part of the numeric
// contract: inputs under one chunk (every benchmark dataset) keep the
// historical flat-serial bits.
constexpr int kColSumChunkRows = 1 << 15;

// Rows per chunk for row-partitioned O(rows*cols) traversals (Transpose,
// RowSum, RowNorm, AddRowBroadcast, RowSoftmax). Disjoint outputs, so the
// grain only tunes scheduling.
int RowGrain(int cols) {
  return std::max(1, kElementwiseGrain / std::max(1, cols));
}

// Rows of b kept hot across an output-row chunk (L2-sized panel).
constexpr int kGemmPanelK = 64;

// Rows per chunk so each chunk carries about kGemmChunkFlops of work; tiny
// products collapse to a single chunk and run inline on the caller.
int GemmRowGrain(int inner, int out_cols) {
  const long long per_row =
      static_cast<long long>(inner) * (out_cols > 0 ? out_cols : 1);
  if (per_row <= 0) return 1 << 20;
  const long long rows = kGemmChunkFlops / per_row;
  return rows < 1 ? 1 : static_cast<int>(rows);
}

// ---- Packed register-tiled GEMM (DESIGN.md §14) -------------------------
//
// Large products take a BLIS-style packed path: B is packed once into
// nr-wide column strips per K-block, A into mr-row micro-panels, and the
// backend's register tile (simd::KernelTable::gemm_tile) keeps an mr×nr
// block of C in registers across a whole K-block. Per output element the
// rounding sequence is untouched — contributions still arrive in ascending
// p, each as a separate mul then add, with the same a == 0.0f skip — so
// the packed path is bit-identical to the legacy axpy path on every
// backend and at every thread count; routing between them is purely a
// performance decision.

// K-rows per packed block: the mr×kPackKc A panel (~6 KB at mr = 6) and
// one kPackKc×nr B strip (~16 KB at nr = 16) stay L1/L2-resident while a
// tile runs. K-blocks are processed in ascending order with the C tile
// flushed between blocks, which preserves the per-element chain exactly.
constexpr int kPackKc = 256;

// Below this many flops the packing overhead (O(nk + km)) is not worth
// amortizing; the legacy axpy path runs instead. Bit-identical either way.
constexpr long long kPackedMinFlops = 1LL << 19;

// Target flops per parallel row chunk of the packed path (coarser than
// kGemmChunkFlops: each chunk re-walks all K-blocks, so chunks must be
// tall enough that packed A panels amortize).
constexpr long long kPackedChunkFlops = 1LL << 22;

std::atomic<GemmPath> g_gemm_path{GemmPath::kAuto};

bool UsePackedPath(long long flops) {
  switch (g_gemm_path.load(std::memory_order_relaxed)) {
    case GemmPath::kPacked:
      return true;
    case GemmPath::kAxpy:
      return false;
    case GemmPath::kAuto:
      break;
  }
  return flops >= kPackedMinFlops;
}

// Rows per packed chunk, rounded up to whole row tiles so no mr-tall tile
// ever spans a chunk boundary (chunks own disjoint C rows, so this only
// tunes scheduling, never numerics).
int PackedRowGrain(int inner, int out_cols, int mr) {
  const long long per_row =
      2LL * std::max(1, inner) * std::max(1, out_cols);
  long long rows = kPackedChunkFlops / per_row;
  if (rows < mr) rows = mr;
  rows = (rows + mr - 1) / mr * mr;
  return static_cast<int>(std::min<long long>(rows, 1 << 20));
}

// Shared packed driver for MatMul / MatMulTransA / MatMulTransB. a_at(i, p)
// reads logical A (n×k) and b_at(p, j) logical B (k×m); the lambdas absorb
// the transposes, so MatMulTransB no longer materializes Bᵀ on this path.
// Packing pads partial tiles with zeros; padded lanes are computed and
// discarded (never copied back into c), so NaN/inf inputs behave exactly
// as on the legacy path.
template <typename AAt, typename BAt>
void PackedGemm(int n, int k, int m, Matrix& c, bool skip_zero_a,
                const AAt& a_at, const BAt& b_at) {
  const simd::KernelTable& kt = simd::Kernels();
  const simd::GemmTileFn tile = simd::GemmTileFor(kt);
  const int mr = kt.gemm_mr;
  const int nr = kt.gemm_nr;
  const int strips = (m + nr - 1) / nr;
  const int padded_m = strips * nr;

  // Pack all of B up front, shared by every row chunk. Layout: K-block
  // starting at p0 lives at offset p0 * padded_m; within a block, strip s
  // (columns [s*nr, s*nr+nr)) is kcb groups of nr contiguous floats, one
  // group per ascending p, zero-padded past column m.
  std::vector<float> bpack(static_cast<size_t>(k) * padded_m);
  for (int p0 = 0; p0 < k; p0 += kPackKc) {
    const int p1 = std::min(k, p0 + kPackKc);
    const int kcb = p1 - p0;
    float* block = bpack.data() + static_cast<size_t>(p0) * padded_m;
    for (int s = 0; s < strips; ++s) {
      const int j0 = s * nr;
      const int jn = std::min(nr, m - j0);
      float* strip = block + static_cast<size_t>(s) * kcb * nr;
      for (int p = p0; p < p1; ++p) {
        float* dst = strip + static_cast<size_t>(p - p0) * nr;
        for (int j = 0; j < jn; ++j) dst[j] = b_at(p, j0 + j);
        for (int j = jn; j < nr; ++j) dst[j] = 0.0f;
      }
    }
  }

  ParallelFor(0, n, PackedRowGrain(k, m, mr), [&](int r0, int r1) {
    std::vector<float> apack(static_cast<size_t>(mr) * kPackKc);
    std::vector<float> scratch(static_cast<size_t>(mr) * nr, 0.0f);
    // K-blocks ascending and outermost: the C tile is flushed between
    // blocks (first only on block 0), keeping every element's ascending-p
    // chain intact.
    for (int p0 = 0; p0 < k; p0 += kPackKc) {
      const int p1 = std::min(k, p0 + kPackKc);
      const int kcb = p1 - p0;
      const bool first = (p0 == 0);
      const float* block = bpack.data() + static_cast<size_t>(p0) * padded_m;
      for (int i0 = r0; i0 < r1; i0 += mr) {
        const int in = std::min(mr, r1 - i0);
        // Pack the A micro-panel: kcb groups of mr floats, ascending p,
        // zero-padded past row n. Amortized over all column strips. Also
        // record whether any valid lane is exactly zero: the zero-skip
        // contract only fires on a zero, so a zero-free panel can take
        // the tiles' branch-free body (padding rows are computed and
        // discarded, so their zeros don't count).
        bool panel_has_zero = false;
        for (int p = p0; p < p1; ++p) {
          float* dst = apack.data() + static_cast<size_t>(p - p0) * mr;
          for (int r = 0; r < in; ++r) {
            const float av = a_at(i0 + r, p);
            dst[r] = av;
            panel_has_zero |= (av == 0.0f);
          }
          for (int r = in; r < mr; ++r) dst[r] = 0.0f;
        }
        const bool skip = skip_zero_a && panel_has_zero;
        for (int s = 0; s < strips; ++s) {
          const int j0 = s * nr;
          const int jn = std::min(nr, m - j0);
          const float* strip = block + static_cast<size_t>(s) * kcb * nr;
          if (in == mr && jn == nr) {
            tile(c.RowPtr(i0) + j0, m, apack.data(), strip, kcb, first,
                 skip);
          } else {
            // Edge tile: run at full mr×nr into scratch so the kernel
            // never reads or writes outside c's valid region; only the
            // in×jn corner is copied back (padded lanes are discarded).
            if (!first) {
              for (int r = 0; r < in; ++r) {
                std::memcpy(scratch.data() + static_cast<size_t>(r) * nr,
                            c.RowPtr(i0 + r) + j0, sizeof(float) * jn);
              }
            }
            tile(scratch.data(), nr, apack.data(), strip, kcb, first,
                 skip);
            for (int r = 0; r < in; ++r) {
              std::memcpy(c.RowPtr(i0 + r) + j0,
                          scratch.data() + static_cast<size_t>(r) * nr,
                          sizeof(float) * jn);
            }
          }
        }
      }
    }
  });
}

}  // namespace

GemmPath SetGemmPathForTesting(GemmPath path) {
  return g_gemm_path.exchange(path, std::memory_order_relaxed);
}

Matrix MatMul(const Matrix& a, const Matrix& b) {
  BGC_CHECK_EQ(a.cols(), b.rows());
  const int n = a.rows(), k = a.cols(), m = b.cols();
  BGC_TRACE_SCOPE("tensor.gemm");
  BGC_COUNTER_ADD("tensor.gemm.calls", 1);
  BGC_COUNTER_ADD("tensor.gemm.flops",
                  2LL * n * k * m);
  Matrix c(n, m);
  if (UsePackedPath(2LL * n * k * m)) {
    BGC_COUNTER_ADD("tensor.gemm.packed", 1);
    PackedGemm(n, k, m, c, /*skip_zero_a=*/true,
               [&](int i, int p) { return a(i, p); },
               [&](int p, int j) { return b(p, j); });
    return c;
  }
  // Legacy axpy path (small products, where packing doesn't amortize).
  // Row-partitioned over the pool: each chunk owns a disjoint slice of c.
  // Within a chunk the k loop is blocked into ascending panels so a panel
  // of b stays cache-hot across all rows of the chunk; for any fixed
  // (i, j) the p contributions still arrive in ascending order, so the
  // result is bit-identical to the serial i-k-j kernel at every thread
  // count. The j loop is the SIMD axis: axpy vectorizes across output
  // columns with separate mul+add, preserving each element's rounding
  // sequence (see src/tensor/simd/simd.h).
  const simd::KernelTable& kt = simd::Kernels();
  ParallelFor(0, n, GemmRowGrain(k, m), [&](int r0, int r1) {
    for (int p0 = 0; p0 < k; p0 += kGemmPanelK) {
      const int p1 = std::min(k, p0 + kGemmPanelK);
      for (int i = r0; i < r1; ++i) {
        const float* arow = a.RowPtr(i);
        float* crow = c.RowPtr(i);
        for (int p = p0; p < p1; ++p) {
          const float av = arow[p];
          if (av == 0.0f) continue;
          kt.axpy(crow, b.RowPtr(p), av, m);
        }
      }
    }
  });
  return c;
}

Matrix MatMulTransA(const Matrix& a, const Matrix& b) {
  BGC_CHECK_EQ(a.rows(), b.rows());
  const int k = a.rows(), n = a.cols(), m = b.cols();
  BGC_TRACE_SCOPE("tensor.gemm");
  BGC_COUNTER_ADD("tensor.gemm.calls", 1);
  BGC_COUNTER_ADD("tensor.gemm.flops",
                  2LL * n * k * m);
  Matrix c(n, m);
  if (UsePackedPath(2LL * n * k * m)) {
    BGC_COUNTER_ADD("tensor.gemm.packed", 1);
    // Logical A here is aᵀ: a_at(i, p) reads a(p, i).
    PackedGemm(n, k, m, c, /*skip_zero_a=*/true,
               [&](int i, int p) { return a(p, i); },
               [&](int p, int j) { return b(p, j); });
    return c;
  }
  // Legacy axpy path. Partitioned over output rows (columns of a): the p
  // loop stays outermost and ascending inside each chunk, so per-element
  // accumulation order — and the bits — match the serial kernel. j is the
  // SIMD axis.
  const simd::KernelTable& kt = simd::Kernels();
  ParallelFor(0, n, GemmRowGrain(k, m), [&](int i0, int i1) {
    for (int p = 0; p < k; ++p) {
      const float* arow = a.RowPtr(p);
      const float* brow = b.RowPtr(p);
      for (int i = i0; i < i1; ++i) {
        const float av = arow[i];
        if (av == 0.0f) continue;
        kt.axpy(c.RowPtr(i), brow, av, m);
      }
    }
  });
  return c;
}

Matrix MatMulTransB(const Matrix& a, const Matrix& b) {
  BGC_CHECK_EQ(a.cols(), b.cols());
  const int n = a.rows(), k = a.cols(), m = b.rows();
  BGC_TRACE_SCOPE("tensor.gemm");
  BGC_COUNTER_ADD("tensor.gemm.calls", 1);
  BGC_COUNTER_ADD("tensor.gemm.flops",
                  2LL * n * k * m);
  Matrix c(n, m);
  if (UsePackedPath(2LL * n * k * m)) {
    BGC_COUNTER_ADD("tensor.gemm.packed", 1);
    // Logical B here is bᵀ, absorbed by b_at — the packed path never
    // materializes the transpose. No av == 0 skip (see below).
    PackedGemm(n, k, m, c, /*skip_zero_a=*/false,
               [&](int i, int p) { return a(i, p); },
               [&](int p, int j) { return b(j, p); });
    return c;
  }
  // Legacy axpy path: pack bᵀ once so the per-(i, j) strided dot becomes
  // the same j-vectorized axpy kernel as MatMul. Each output element still
  // accumulates its p contributions in ascending order starting from
  // +0.0f — the identical rounding sequence to the historical register
  // dot — so the result is bit-identical for every backend and thread
  // count. No av == 0 skip here: the historical dot always added the
  // 0 * b term, and skipping it would change 0 * inf / 0 * NaN cases.
  Matrix bt = Transpose(b);
  const simd::KernelTable& kt = simd::Kernels();
  ParallelFor(0, n, GemmRowGrain(k, m), [&](int r0, int r1) {
    for (int p0 = 0; p0 < k; p0 += kGemmPanelK) {
      const int p1 = std::min(k, p0 + kGemmPanelK);
      for (int i = r0; i < r1; ++i) {
        const float* arow = a.RowPtr(i);
        float* crow = c.RowPtr(i);
        for (int p = p0; p < p1; ++p) {
          kt.axpy(crow, bt.RowPtr(p), arow[p], m);
        }
      }
    }
  });
  return c;
}

namespace {

void CheckSameShape(const Matrix& a, const Matrix& b) {
  BGC_CHECK_EQ(a.rows(), b.rows());
  BGC_CHECK_EQ(a.cols(), b.cols());
}

}  // namespace

// The flat elementwise ops hand each fixed chunk to the active SIMD
// backend; every lane is an independent element, so chunking and
// vectorization are both bit-transparent.

Matrix Add(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  Matrix c = a;
  float* cd = c.data();
  const float* bd = b.data();
  const simd::KernelTable& kt = simd::Kernels();
  ParallelFor(0, c.size(), kElementwiseGrain, [&](int i0, int i1) {
    kt.add(cd + i0, bd + i0, i1 - i0);
  });
  return c;
}

Matrix Sub(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  Matrix c = a;
  float* cd = c.data();
  const float* bd = b.data();
  const simd::KernelTable& kt = simd::Kernels();
  ParallelFor(0, c.size(), kElementwiseGrain, [&](int i0, int i1) {
    kt.sub(cd + i0, bd + i0, i1 - i0);
  });
  return c;
}

void AddScaledInPlace(Matrix& a, const Matrix& b, float alpha) {
  CheckSameShape(a, b);
  float* ad = a.data();
  const float* bd = b.data();
  const simd::KernelTable& kt = simd::Kernels();
  ParallelFor(0, a.size(), kElementwiseGrain, [&](int i0, int i1) {
    kt.axpy(ad + i0, bd + i0, alpha, i1 - i0);
  });
}

Matrix Hadamard(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  Matrix c = a;
  float* cd = c.data();
  const float* bd = b.data();
  const simd::KernelTable& kt = simd::Kernels();
  ParallelFor(0, c.size(), kElementwiseGrain, [&](int i0, int i1) {
    kt.mul(cd + i0, bd + i0, i1 - i0);
  });
  return c;
}

Matrix Scale(const Matrix& a, float alpha) {
  Matrix c = a;
  ScaleInPlace(c, alpha);
  return c;
}

void ScaleInPlace(Matrix& a, float alpha) {
  float* ad = a.data();
  const simd::KernelTable& kt = simd::Kernels();
  ParallelFor(0, a.size(), kElementwiseGrain, [&](int i0, int i1) {
    kt.scale(ad + i0, alpha, i1 - i0);
  });
}

Matrix AddRowBroadcast(const Matrix& a, const Matrix& bias) {
  BGC_CHECK_EQ(bias.rows(), 1);
  BGC_CHECK_EQ(bias.cols(), a.cols());
  Matrix c = a;
  const int cols = c.cols();
  const float* bd = bias.data();
  const simd::KernelTable& kt = simd::Kernels();
  // Row-partitioned (disjoint outputs) with the SIMD add per row.
  ParallelFor(0, c.rows(), RowGrain(cols), [&](int r0, int r1) {
    for (int i = r0; i < r1; ++i) kt.add(c.RowPtr(i), bd, cols);
  });
  return c;
}

Matrix Relu(const Matrix& a) {
  Matrix c = a;
  float* cd = c.data();
  const simd::KernelTable& kt = simd::Kernels();
  ParallelFor(0, c.size(), kElementwiseGrain, [&](int i0, int i1) {
    kt.relu(cd + i0, i1 - i0);
  });
  return c;
}

Matrix Sigmoid(const Matrix& a) {
  Matrix c = a;
  float* cd = c.data();
  ParallelFor(0, c.size(), kElementwiseGrain, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) cd[i] = 1.0f / (1.0f + std::exp(-cd[i]));
  });
  return c;
}

Matrix TanhMat(const Matrix& a) {
  Matrix c = a;
  float* cd = c.data();
  ParallelFor(0, c.size(), kElementwiseGrain, [&](int i0, int i1) {
    for (int i = i0; i < i1; ++i) cd[i] = std::tanh(cd[i]);
  });
  return c;
}

Matrix Clamp(const Matrix& a, float lo, float hi) {
  Matrix c = a;
  float* cd = c.data();
  const simd::KernelTable& kt = simd::Kernels();
  ParallelFor(0, c.size(), kElementwiseGrain, [&](int i0, int i1) {
    kt.clamp(cd + i0, lo, hi, i1 - i0);
  });
  return c;
}

Matrix RowSoftmax(const Matrix& a) {
  Matrix c(a.rows(), a.cols());
  const int cols = a.cols();
  // A zero-column input has no entries (and no row max): return the empty
  // result instead of reading in[0] out of bounds below.
  if (cols == 0) return c;
  ParallelFor(0, a.rows(), RowGrain(cols), [&](int r0, int r1) {
    for (int i = r0; i < r1; ++i) {
      const float* in = a.RowPtr(i);
      float* out = c.RowPtr(i);
      float mx = in[0];
      for (int j = 1; j < cols; ++j) mx = std::max(mx, in[j]);
      float denom = 0.0f;
      for (int j = 0; j < cols; ++j) {
        out[j] = std::exp(in[j] - mx);
        denom += out[j];
      }
      const float inv = 1.0f / denom;
      for (int j = 0; j < cols; ++j) out[j] *= inv;
    }
  });
  return c;
}

Matrix Transpose(const Matrix& a) {
  Matrix c(a.cols(), a.rows());
  const int cols = a.cols();
  // Pure copies into disjoint columns of c per input row — no float
  // arithmetic, so any partitioning is bit-safe.
  ParallelFor(0, a.rows(), RowGrain(cols), [&](int r0, int r1) {
    for (int i = r0; i < r1; ++i) {
      const float* row = a.RowPtr(i);
      for (int j = 0; j < cols; ++j) c(j, i) = row[j];
    }
  });
  return c;
}

// Sum/Dot accumulate per-chunk partials at a fixed kReduceGrain and fold
// them in ascending chunk order, so the value depends only on the input
// size, never the thread count. Inputs under one grain take the flat
// serial path (identical bits to the historical loop).
float Sum(const Matrix& a) {
  const float* ad = a.data();
  return ParallelReduce(
      0, a.size(), kReduceGrain, 0.0f,
      [&](int i0, int i1) {
        float s = 0.0f;
        for (int i = i0; i < i1; ++i) s += ad[i];
        return s;
      },
      [](float x, float y) { return x + y; });
}

float Dot(const Matrix& a, const Matrix& b) {
  CheckSameShape(a, b);
  const float* ad = a.data();
  const float* bd = b.data();
  return ParallelReduce(
      0, a.size(), kReduceGrain, 0.0f,
      [&](int i0, int i1) {
        float s = 0.0f;
        for (int i = i0; i < i1; ++i) s += ad[i] * bd[i];
        return s;
      },
      [](float x, float y) { return x + y; });
}

float FrobeniusNorm(const Matrix& a) { return std::sqrt(Dot(a, a)); }

float MaxAbs(const Matrix& a) {
  // max is order-independent over the (sign-stripped) values, so the
  // SIMD backends evaluate it lane-parallel and still agree bit-for-bit.
  // NaN propagates as the canonical quiet NaN instead of being swallowed
  // by a bare std::max fold (NaN compares false against everything).
  const float* ad = a.data();
  const simd::KernelTable& kt = simd::Kernels();
  return ParallelReduce(
      0, a.size(), kReduceGrain, 0.0f,
      [&](int i0, int i1) { return kt.max_abs(ad + i0, i1 - i0); },
      [](float x, float y) {
        if (std::isnan(x) || std::isnan(y)) {
          return std::numeric_limits<float>::quiet_NaN();
        }
        return std::max(x, y);
      });
}

Matrix RowSum(const Matrix& a) {
  Matrix c(a.rows(), 1);
  const int cols = a.cols();
  // Row-partitioned; each row's sum stays one serial chain (a different
  // addend order would change bits), so only the row axis parallelizes.
  ParallelFor(0, a.rows(), RowGrain(cols), [&](int r0, int r1) {
    for (int i = r0; i < r1; ++i) {
      const float* row = a.RowPtr(i);
      float s = 0.0f;
      for (int j = 0; j < cols; ++j) s += row[j];
      c(i, 0) = s;
    }
  });
  return c;
}

Matrix ColSum(const Matrix& a) {
  Matrix c(1, a.cols());
  const int m = a.cols();
  if (m == 0 || a.rows() == 0) return c;
  const simd::KernelTable& kt = simd::Kernels();
  // Each output column is an independent chain over ascending rows, so
  // the row loop vectorizes across j bit-identically. The row axis
  // chunks at the fixed kColSumChunkRows grain with partial rows folded
  // in ascending chunk order — deterministic at every thread count, and
  // the flat path below one chunk keeps the historical serial bits.
  const int chunks = NumFixedChunks(a.rows(), kColSumChunkRows);
  if (chunks <= 1) {
    for (int i = 0; i < a.rows(); ++i) kt.add(c.data(), a.RowPtr(i), m);
    return c;
  }
  std::vector<Matrix> partial(chunks);
  ParallelFor(0, a.rows(), kColSumChunkRows, [&](int r0, int r1) {
    Matrix& p = partial[r0 / kColSumChunkRows];
    p = Matrix(1, m);
    for (int i = r0; i < r1; ++i) kt.add(p.data(), a.RowPtr(i), m);
  });
  for (int ch = 0; ch < chunks; ++ch) kt.add(c.data(), partial[ch].data(), m);
  return c;
}

Matrix RowNorm(const Matrix& a) {
  Matrix c(a.rows(), 1);
  const int cols = a.cols();
  // Row-partitioned like RowSum; the per-row square-sum chain stays
  // serial for bit-stability.
  ParallelFor(0, a.rows(), RowGrain(cols), [&](int r0, int r1) {
    for (int i = r0; i < r1; ++i) {
      const float* row = a.RowPtr(i);
      float s = 0.0f;
      for (int j = 0; j < cols; ++j) s += row[j] * row[j];
      c(i, 0) = std::sqrt(s);
    }
  });
  return c;
}

std::vector<int> ArgmaxRows(const Matrix& a) {
  std::vector<int> out(a.rows(), 0);
  for (int i = 0; i < a.rows(); ++i) {
    const float* row = a.RowPtr(i);
    int best = 0;
    for (int j = 1; j < a.cols(); ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = best;
  }
  return out;
}

float RowCosine(const Matrix& a, int i, const Matrix& b, int j) {
  BGC_CHECK_EQ(a.cols(), b.cols());
  const float* x = a.RowPtr(i);
  const float* y = b.RowPtr(j);
  float dot = 0.0f, nx = 0.0f, ny = 0.0f;
  for (int k = 0; k < a.cols(); ++k) {
    dot += x[k] * y[k];
    nx += x[k] * x[k];
    ny += y[k] * y[k];
  }
  if (nx <= 0.0f || ny <= 0.0f) return 0.0f;
  return dot / (std::sqrt(nx) * std::sqrt(ny));
}

Matrix GatherRows(const Matrix& a, const std::vector<int>& rows) {
  Matrix c(static_cast<int>(rows.size()), a.cols());
  for (size_t k = 0; k < rows.size(); ++k) {
    BGC_CHECK_GE(rows[k], 0);
    BGC_CHECK_LT(rows[k], a.rows());
    c.SetRow(static_cast<int>(k), a.RowPtr(rows[k]));
  }
  return c;
}

void ScatterAddRows(const Matrix& a, const std::vector<int>& rows,
                    Matrix& out) {
  BGC_CHECK_EQ(a.rows(), static_cast<int>(rows.size()));
  BGC_CHECK_EQ(a.cols(), out.cols());
  for (size_t k = 0; k < rows.size(); ++k) {
    BGC_CHECK_GE(rows[k], 0);
    BGC_CHECK_LT(rows[k], out.rows());
    const float* src = a.RowPtr(static_cast<int>(k));
    float* dst = out.RowPtr(rows[k]);
    for (int j = 0; j < a.cols(); ++j) dst[j] += src[j];
  }
}

Matrix ConcatRows(const Matrix& a, const Matrix& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  BGC_CHECK_EQ(a.cols(), b.cols());
  Matrix c(a.rows() + b.rows(), a.cols());
  std::memcpy(c.data(), a.data(), sizeof(float) * a.size());
  std::memcpy(c.data() + a.size(), b.data(), sizeof(float) * b.size());
  return c;
}

Matrix ConcatCols(const Matrix& a, const Matrix& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  BGC_CHECK_EQ(a.rows(), b.rows());
  Matrix c(a.rows(), a.cols() + b.cols());
  for (int i = 0; i < a.rows(); ++i) {
    std::memcpy(c.RowPtr(i), a.RowPtr(i), sizeof(float) * a.cols());
    std::memcpy(c.RowPtr(i) + a.cols(), b.RowPtr(i), sizeof(float) * b.cols());
  }
  return c;
}

bool AllClose(const Matrix& a, const Matrix& b, float rtol, float atol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (int i = 0; i < a.size(); ++i) {
    const float diff = std::fabs(a.data()[i] - b.data()[i]);
    // NaN on either side is a mismatch (NaN ≠ anything, including NaN).
    // Without the isnan test a NaN diff would compare false against the
    // tolerance and silently pass. An infinite diff is likewise always a
    // mismatch: when b is infinite the rtol term inflates the tolerance
    // to infinity, and inf > inf would wave inf-vs--inf through.
    if (!(diff < std::numeric_limits<float>::infinity()) ||
        diff > atol + rtol * std::fabs(b.data()[i])) {
      return false;
    }
  }
  return true;
}

Matrix OneHot(const std::vector<int>& labels, int num_classes) {
  Matrix c(static_cast<int>(labels.size()), num_classes);
  for (size_t i = 0; i < labels.size(); ++i) {
    BGC_CHECK_GE(labels[i], 0);
    BGC_CHECK_LT(labels[i], num_classes);
    c(static_cast<int>(i), labels[i]) = 1.0f;
  }
  return c;
}

}  // namespace bgc
