#ifndef BGC_TENSOR_LINALG_H_
#define BGC_TENSOR_LINALG_H_

#include "src/tensor/matrix.h"

namespace bgc {

/// Solves A X = B for X with Gaussian elimination + partial pivoting.
/// A must be square (n×n) and nonsingular; B is n×m. Intended for the small
/// kernel systems in GC-SNTK (n = condensed size, at most a few hundred).
Matrix SolveLinear(const Matrix& a, const Matrix& b);

/// Solves Aᵀ X = B (used by the autograd backward of Solve).
Matrix SolveLinearTransposed(const Matrix& a, const Matrix& b);

/// Inverse via SolveLinear against the identity.
Matrix Inverse(const Matrix& a);

}  // namespace bgc

#endif  // BGC_TENSOR_LINALG_H_
