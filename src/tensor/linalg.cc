#include "src/tensor/linalg.h"

#include <cmath>
#include <vector>

#include "src/core/check.h"
#include "src/tensor/matrix_ops.h"

namespace bgc {
namespace {

/// LU factorization with partial pivoting, in place. Returns the row
/// permutation. Aborts on (numerically) singular input.
std::vector<int> LuFactor(Matrix& a) {
  BGC_CHECK_EQ(a.rows(), a.cols());
  const int n = a.rows();
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  for (int k = 0; k < n; ++k) {
    int pivot = k;
    float best = std::fabs(a(k, k));
    for (int i = k + 1; i < n; ++i) {
      const float v = std::fabs(a(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    BGC_CHECK_MSG(best > 1e-12f, "singular matrix in SolveLinear");
    if (pivot != k) {
      std::swap(perm[k], perm[pivot]);
      for (int j = 0; j < n; ++j) std::swap(a(k, j), a(pivot, j));
    }
    const float inv = 1.0f / a(k, k);
    for (int i = k + 1; i < n; ++i) {
      const float factor = a(i, k) * inv;
      a(i, k) = factor;
      if (factor == 0.0f) continue;
      for (int j = k + 1; j < n; ++j) a(i, j) -= factor * a(k, j);
    }
  }
  return perm;
}

Matrix LuSolve(const Matrix& lu, const std::vector<int>& perm,
               const Matrix& b) {
  const int n = lu.rows();
  const int m = b.cols();
  Matrix x(n, m);
  // Apply permutation, then forward substitution on L (unit diagonal).
  for (int i = 0; i < n; ++i) x.SetRow(i, b.RowPtr(perm[i]));
  for (int i = 0; i < n; ++i) {
    float* xi = x.RowPtr(i);
    for (int k = 0; k < i; ++k) {
      const float l = lu(i, k);
      if (l == 0.0f) continue;
      const float* xk = x.RowPtr(k);
      for (int j = 0; j < m; ++j) xi[j] -= l * xk[j];
    }
  }
  // Backward substitution on U.
  for (int i = n - 1; i >= 0; --i) {
    float* xi = x.RowPtr(i);
    for (int k = i + 1; k < n; ++k) {
      const float u = lu(i, k);
      if (u == 0.0f) continue;
      const float* xk = x.RowPtr(k);
      for (int j = 0; j < m; ++j) xi[j] -= u * xk[j];
    }
    const float inv = 1.0f / lu(i, i);
    for (int j = 0; j < m; ++j) xi[j] *= inv;
  }
  return x;
}

}  // namespace

Matrix SolveLinear(const Matrix& a, const Matrix& b) {
  BGC_CHECK_EQ(a.rows(), b.rows());
  Matrix lu = a;
  const std::vector<int> perm = LuFactor(lu);
  return LuSolve(lu, perm, b);
}

Matrix SolveLinearTransposed(const Matrix& a, const Matrix& b) {
  return SolveLinear(Transpose(a), b);
}

Matrix Inverse(const Matrix& a) {
  return SolveLinear(a, Matrix::Identity(a.rows()));
}

}  // namespace bgc
