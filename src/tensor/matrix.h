#ifndef BGC_TENSOR_MATRIX_H_
#define BGC_TENSOR_MATRIX_H_

#include <cstddef>
#include <vector>

#include "src/core/arena.h"
#include "src/core/check.h"
#include "src/core/rng.h"

namespace bgc {

/// Backing storage of every Matrix: a std::vector whose array goes through
/// the size-bucketed caching arena (src/core/arena.h). Allocation-heavy
/// loops — the tape rebuilding its node set every condensation step above
/// all — reuse buffers instead of hitting malloc, and BGC_ARENA=off makes
/// the type behave exactly like std::vector<float> again.
using FloatBuffer = std::vector<float, core::ArenaAllocator<float>>;

/// Dense row-major float matrix.
///
/// This is the single dense container used throughout the library: node
/// feature tables, GNN weights, logits, gradients, synthetic condensed
/// features, and generated trigger payloads are all Matrix values. Vectors
/// are represented as 1×n or n×1 matrices. The class is a plain value type:
/// copyable, movable, equality-comparable; all numeric kernels live in
/// matrix_ops.h as free functions.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() = default;

  /// Zero-initialized rows×cols matrix.
  Matrix(int rows, int cols);

  /// rows×cols matrix filled with `value`.
  Matrix(int rows, int cols, float value);

  /// rows×cols matrix copying `values` into arena-backed storage (size
  /// must match).
  Matrix(int rows, int cols, std::vector<float> values);

  Matrix(const Matrix&) = default;
  Matrix& operator=(const Matrix&) = default;
  Matrix(Matrix&&) noexcept = default;
  Matrix& operator=(Matrix&&) noexcept = default;

  /// Factory: zeros / constant / identity.
  static Matrix Zeros(int rows, int cols);
  static Matrix Full(int rows, int cols, float value);
  static Matrix Identity(int n);

  /// Factory: i.i.d. N(0, stddev^2) entries.
  static Matrix RandomNormal(int rows, int cols, Rng& rng,
                             float stddev = 1.0f);

  /// Factory: i.i.d. U(lo, hi) entries.
  static Matrix RandomUniform(int rows, int cols, Rng& rng, float lo,
                              float hi);

  /// Factory: Glorot/Xavier uniform init for a weight of shape in×out.
  static Matrix GlorotUniform(int in_dim, int out_dim, Rng& rng);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  /// Total number of entries.
  int size() const { return rows_ * cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Unchecked in release builds beyond debug asserts; bounds are the
  /// caller's contract.
  float& At(int r, int c) {
    BGC_CHECK_GE(r, 0);
    BGC_CHECK_LT(r, rows_);
    BGC_CHECK_GE(c, 0);
    BGC_CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float At(int r, int c) const {
    BGC_CHECK_GE(r, 0);
    BGC_CHECK_LT(r, rows_);
    BGC_CHECK_GE(c, 0);
    BGC_CHECK_LT(c, cols_);
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Unchecked fast path for inner loops.
  float& operator()(int r, int c) {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }
  float operator()(int r, int c) const {
    return data_[static_cast<size_t>(r) * cols_ + c];
  }

  /// Pointer to the start of row r.
  float* RowPtr(int r) { return data_.data() + static_cast<size_t>(r) * cols_; }
  const float* RowPtr(int r) const {
    return data_.data() + static_cast<size_t>(r) * cols_;
  }

  /// Copies row r into a 1×cols matrix.
  Matrix Row(int r) const;

  /// Sets row r from a 1×cols matrix or raw span.
  void SetRow(int r, const Matrix& row);
  void SetRow(int r, const float* values);

  /// Fills every entry with `value`.
  void Fill(float value);

  /// Exact element-wise equality (useful in tests; use AllClose for math).
  bool operator==(const Matrix& other) const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  FloatBuffer data_;
};

}  // namespace bgc

#endif  // BGC_TENSOR_MATRIX_H_
