// AVX-512 backend: 16-wide lanes, the fourth dispatch entry. Same
// structure and bit-exactness argument as kernels_avx2.cc — separate
// vmulps/vaddps on zmm (the TU is compiled with -ffp-contract=off, and
// every multiply-add is written as explicit mul + add intrinsics, so no
// fused rounding can appear in the exact kernels), scalar tail for the
// last n % 16 elements. min/max lane semantics match the SSE/AVX rules
// the scalar reference mirrors (NaN and ties resolve to the second
// operand). This TU must only ever execute after cpuid-gated dispatch
// (avx512f; see dispatch.cc). The fast-math GEMM tile lives here too:
// AVX-512F carries its own FMA forms, so no extra ISA flag is needed.

#include <immintrin.h>

#include "src/tensor/simd/scalar_kernels.h"
#include "src/tensor/simd/tables.h"

namespace bgc::simd::internal {

namespace {

void AxpyAvx512(float* c, const float* x, float a, int n) {
  const __m512 av = _mm512_set1_ps(a);
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 prod = _mm512_mul_ps(_mm512_loadu_ps(x + i), av);
    _mm512_storeu_ps(c + i, _mm512_add_ps(_mm512_loadu_ps(c + i), prod));
  }
  AxpyScalar(c + i, x + i, a, n - i);
}

void AddAvx512(float* c, const float* x, int n) {
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(
        c + i, _mm512_add_ps(_mm512_loadu_ps(c + i), _mm512_loadu_ps(x + i)));
  }
  AddScalar(c + i, x + i, n - i);
}

void SubAvx512(float* c, const float* x, int n) {
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(
        c + i, _mm512_sub_ps(_mm512_loadu_ps(c + i), _mm512_loadu_ps(x + i)));
  }
  SubScalar(c + i, x + i, n - i);
}

void MulAvx512(float* c, const float* x, int n) {
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(
        c + i, _mm512_mul_ps(_mm512_loadu_ps(c + i), _mm512_loadu_ps(x + i)));
  }
  MulScalar(c + i, x + i, n - i);
}

void ScaleAvx512(float* c, float a, int n) {
  const __m512 av = _mm512_set1_ps(a);
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(c + i, _mm512_mul_ps(_mm512_loadu_ps(c + i), av));
  }
  ScaleScalar(c + i, a, n - i);
}

void ReluAvx512(float* c, int n) {
  const __m512 zero = _mm512_setzero_ps();
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(c + i, _mm512_max_ps(_mm512_loadu_ps(c + i), zero));
  }
  ReluScalar(c + i, n - i);
}

void ClampAvx512(float* c, float lo, float hi, int n) {
  const __m512 lov = _mm512_set1_ps(lo);
  const __m512 hiv = _mm512_set1_ps(hi);
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 lifted = _mm512_max_ps(_mm512_loadu_ps(c + i), lov);
    _mm512_storeu_ps(c + i, _mm512_min_ps(lifted, hiv));
  }
  ClampScalar(c + i, lo, hi, n - i);
}

float MaxAbsAvx512(const float* x, int n) {
  // _mm512_and_ps needs AVX512DQ; the integer AND is plain AVX512F, so the
  // cpuid gate on avx512f alone stays sufficient.
  const __m512i abs_mask = _mm512_set1_epi32(0x7FFFFFFF);
  __m512 acc = _mm512_setzero_ps();
  __mmask16 nan_seen = 0;
  int i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 v = _mm512_loadu_ps(x + i);
    nan_seen |= _mm512_cmp_ps_mask(v, v, _CMP_UNORD_Q);
    const __m512 av = _mm512_castsi512_ps(
        _mm512_and_epi32(_mm512_castps_si512(v), abs_mask));
    acc = _mm512_max_ps(acc, av);
  }
  const float tail = MaxAbsScalar(x + i, n - i);
  if (nan_seen != 0 || std::isnan(tail)) {
    return std::numeric_limits<float>::quiet_NaN();
  }
  float lanes[16];
  _mm512_storeu_ps(lanes, acc);
  float m = tail;
  for (float l : lanes) m = std::max(m, l);
  return m;
}

// Packed 6x32 register tile: 12 zmm accumulators (of 32) live across the
// whole k-block. Rounding per element is unchanged from the scalar axpy
// chain: ascending p, separate vmulps/vaddps, same a == 0.0f skip.
void GemmTileAvx512(float* c, int ldc, const float* ap, const float* bp,
                    int kc, bool first, bool skip_zero_a) {
  constexpr int kMr = 6;
  __m512 acc[kMr][2];
  for (int r = 0; r < kMr; ++r) {
    if (first) {
      acc[r][0] = _mm512_setzero_ps();
      acc[r][1] = _mm512_setzero_ps();
    } else {
      acc[r][0] = _mm512_loadu_ps(c + r * ldc);
      acc[r][1] = _mm512_loadu_ps(c + r * ldc + 16);
    }
  }
  if (skip_zero_a) {
    // Only selected when the A panel contains a zero; the common case is
    // the branch-free body below (bit-identical when no lane is zero).
    for (int p = 0; p < kc; ++p) {
      const float* a = ap + p * kMr;
      const __m512 b0 = _mm512_loadu_ps(bp + p * 32);
      const __m512 b1 = _mm512_loadu_ps(bp + p * 32 + 16);
      for (int r = 0; r < kMr; ++r) {
        const float av = a[r];
        if (av == 0.0f) continue;
        const __m512 avv = _mm512_set1_ps(av);
        acc[r][0] = _mm512_add_ps(acc[r][0], _mm512_mul_ps(avv, b0));
        acc[r][1] = _mm512_add_ps(acc[r][1], _mm512_mul_ps(avv, b1));
      }
    }
  } else {
    for (int p = 0; p < kc; ++p) {
      const float* a = ap + p * kMr;
      const __m512 b0 = _mm512_loadu_ps(bp + p * 32);
      const __m512 b1 = _mm512_loadu_ps(bp + p * 32 + 16);
      for (int r = 0; r < kMr; ++r) {
        const __m512 avv = _mm512_set1_ps(a[r]);
        acc[r][0] = _mm512_add_ps(acc[r][0], _mm512_mul_ps(avv, b0));
        acc[r][1] = _mm512_add_ps(acc[r][1], _mm512_mul_ps(avv, b1));
      }
    }
  }
  for (int r = 0; r < kMr; ++r) {
    _mm512_storeu_ps(c + r * ldc, acc[r][0]);
    _mm512_storeu_ps(c + r * ldc + 16, acc[r][1]);
  }
}

// Fast-math tier: vfmadd231ps, one rounding per multiply-add. Non-bit-
// exact by contract, dispatched only under BGC_FAST_MATH=1.
void GemmTileAvx512Fma(float* c, int ldc, const float* ap, const float* bp,
                       int kc, bool first, bool skip_zero_a) {
  constexpr int kMr = 6;
  __m512 acc[kMr][2];
  for (int r = 0; r < kMr; ++r) {
    if (first) {
      acc[r][0] = _mm512_setzero_ps();
      acc[r][1] = _mm512_setzero_ps();
    } else {
      acc[r][0] = _mm512_loadu_ps(c + r * ldc);
      acc[r][1] = _mm512_loadu_ps(c + r * ldc + 16);
    }
  }
  if (skip_zero_a) {
    for (int p = 0; p < kc; ++p) {
      const float* a = ap + p * kMr;
      const __m512 b0 = _mm512_loadu_ps(bp + p * 32);
      const __m512 b1 = _mm512_loadu_ps(bp + p * 32 + 16);
      for (int r = 0; r < kMr; ++r) {
        const float av = a[r];
        if (av == 0.0f) continue;
        const __m512 avv = _mm512_set1_ps(av);
        acc[r][0] = _mm512_fmadd_ps(avv, b0, acc[r][0]);
        acc[r][1] = _mm512_fmadd_ps(avv, b1, acc[r][1]);
      }
    }
  } else {
    for (int p = 0; p < kc; ++p) {
      const float* a = ap + p * kMr;
      const __m512 b0 = _mm512_loadu_ps(bp + p * 32);
      const __m512 b1 = _mm512_loadu_ps(bp + p * 32 + 16);
      for (int r = 0; r < kMr; ++r) {
        const __m512 avv = _mm512_set1_ps(a[r]);
        acc[r][0] = _mm512_fmadd_ps(avv, b0, acc[r][0]);
        acc[r][1] = _mm512_fmadd_ps(avv, b1, acc[r][1]);
      }
    }
  }
  for (int r = 0; r < kMr; ++r) {
    _mm512_storeu_ps(c + r * ldc, acc[r][0]);
    _mm512_storeu_ps(c + r * ldc + 16, acc[r][1]);
  }
}

constexpr KernelTable kAvx512Table = {
    Backend::kAvx512, "avx512",    AxpyAvx512,  AddAvx512,   SubAvx512,
    MulAvx512,        ScaleAvx512, ReluAvx512,  ClampAvx512, MaxAbsAvx512,
    GemmTileAvx512,   GemmTileAvx512Fma,        6,           32,
};

}  // namespace

const KernelTable& Avx512Table() { return kAvx512Table; }

}  // namespace bgc::simd::internal
