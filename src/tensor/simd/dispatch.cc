// Backend detection and one-time dispatch for the SIMD kernel layer.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "src/obs/obs.h"
#include "src/tensor/simd/simd.h"
#include "src/tensor/simd/tables.h"

namespace bgc::simd {

namespace {

std::atomic<const KernelTable*> g_active{nullptr};
std::once_flag g_init_once;

[[noreturn]] void DieBadBackend(const char* requested, const char* why) {
  std::fprintf(stderr,
               "bgc: BGC_SIMD=%s is unusable (%s); valid values are "
               "scalar|sse2|avx2|native\n",
               requested, why);
  std::exit(2);
}

Backend BestSupported() {
  if (TableFor(Backend::kAvx2) != nullptr) return Backend::kAvx2;
  if (TableFor(Backend::kSse2) != nullptr) return Backend::kSse2;
  return Backend::kScalar;
}

const KernelTable* ChooseFromEnv() {
  const char* env = std::getenv("BGC_SIMD");
  if (env == nullptr || env[0] == '\0') {
    return TableFor(BestSupported());
  }
  Backend b;
  if (!ParseBackend(env, &b)) DieBadBackend(env, "unknown backend name");
  if (!Compiled(b)) DieBadBackend(env, "not compiled into this binary");
  if (!CpuSupports(b)) DieBadBackend(env, "not supported by this CPU");
  return TableFor(b);
}

void InitOnce() {
  g_active.store(ChooseFromEnv(), std::memory_order_release);
  PublishBackendGauge();
}

}  // namespace

bool CpuSupports(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case Backend::kSse2:
      return __builtin_cpu_supports("sse2") != 0;
    case Backend::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
#else
    case Backend::kSse2:
    case Backend::kAvx2:
      return false;
#endif
  }
  return false;
}

bool Compiled(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
#if defined(BGC_SIMD_HAS_SSE2)
      return true;
#else
      return false;
#endif
    case Backend::kAvx2:
#if defined(BGC_SIMD_HAS_AVX2)
      return true;
#else
      return false;
#endif
  }
  return false;
}

const KernelTable* TableFor(Backend b) {
  if (!Compiled(b) || !CpuSupports(b)) return nullptr;
  switch (b) {
    case Backend::kScalar:
      return &internal::ScalarTable();
    case Backend::kSse2:
#if defined(BGC_SIMD_HAS_SSE2)
      return &internal::Sse2Table();
#else
      return nullptr;
#endif
    case Backend::kAvx2:
#if defined(BGC_SIMD_HAS_AVX2)
      return &internal::Avx2Table();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

bool ParseBackend(const char* s, Backend* out) {
  if (s == nullptr || out == nullptr) return false;
  if (std::strcmp(s, "scalar") == 0) {
    *out = Backend::kScalar;
  } else if (std::strcmp(s, "sse2") == 0) {
    *out = Backend::kSse2;
  } else if (std::strcmp(s, "avx2") == 0) {
    *out = Backend::kAvx2;
  } else if (std::strcmp(s, "native") == 0) {
    *out = BestSupported();
  } else {
    return false;
  }
  return true;
}

const KernelTable& Kernels() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t != nullptr) return *t;
  std::call_once(g_init_once, InitOnce);
  return *g_active.load(std::memory_order_acquire);
}

Backend Active() { return Kernels().backend; }

Backend SetBackendForTesting(Backend b) {
  const Backend previous = Active();
  const KernelTable* t = TableFor(b);
  if (t == nullptr) {
    DieBadBackend(BackendName(b), "not compiled or not supported by this CPU");
  }
  g_active.store(t, std::memory_order_release);
  PublishBackendGauge();
  return previous;
}

void PublishBackendGauge() {
  BGC_GAUGE_SET("simd.backend", static_cast<double>(static_cast<int>(
                                    Kernels().backend)));
}

}  // namespace bgc::simd
