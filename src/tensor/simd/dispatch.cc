// Backend detection and one-time dispatch for the SIMD kernel layer.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "src/obs/obs.h"
#include "src/tensor/simd/simd.h"
#include "src/tensor/simd/tables.h"

namespace bgc::simd {

namespace {

std::atomic<const KernelTable*> g_active{nullptr};
std::once_flag g_init_once;

[[noreturn]] void DieBadBackend(const char* requested, const char* why) {
  std::fprintf(stderr,
               "bgc: BGC_SIMD=%s is unusable (%s); valid values are "
               "scalar|sse2|avx2|avx512|native\n",
               requested, why);
  std::exit(2);
}

Backend BestSupported() {
  if (TableFor(Backend::kAvx512) != nullptr) return Backend::kAvx512;
  if (TableFor(Backend::kAvx2) != nullptr) return Backend::kAvx2;
  if (TableFor(Backend::kSse2) != nullptr) return Backend::kSse2;
  return Backend::kScalar;
}

// Fast-math tier state: -1 = not yet resolved from the environment,
// 0 = exact, 1 = fast. SetFastMathForTesting stores directly, so a test
// override wins over (and suppresses) the env read.
std::atomic<int> g_fast_math{-1};
std::once_flag g_fast_math_once;

[[noreturn]] void DieBadFastMath(const char* value) {
  std::fprintf(stderr,
               "bgc: BGC_FAST_MATH=%s is not understood; valid values are "
               "1|on|0|off\n",
               value);
  std::exit(2);
}

int FastMathFromEnv() {
  const char* env = std::getenv("BGC_FAST_MATH");
  if (env == nullptr || env[0] == '\0' || std::strcmp(env, "0") == 0 ||
      std::strcmp(env, "off") == 0) {
    return 0;
  }
  if (std::strcmp(env, "1") == 0 || std::strcmp(env, "on") == 0) return 1;
  DieBadFastMath(env);
}

const KernelTable* ChooseFromEnv() {
  const char* env = std::getenv("BGC_SIMD");
  if (env == nullptr || env[0] == '\0') {
    return TableFor(BestSupported());
  }
  Backend b;
  if (!ParseBackend(env, &b)) DieBadBackend(env, "unknown backend name");
  if (!Compiled(b)) DieBadBackend(env, "not compiled into this binary");
  if (!CpuSupports(b)) DieBadBackend(env, "not supported by this CPU");
  return TableFor(b);
}

void InitOnce() {
  g_active.store(ChooseFromEnv(), std::memory_order_release);
  // Validate BGC_FAST_MATH eagerly: a malformed value must fail fast at
  // kernel-layer startup, not at the first GEMM large enough to consult
  // GemmTileFor (and the gauge macro below skips argument evaluation
  // when metrics are off).
  FastMathEnabled();
  PublishBackendGauge();
}

}  // namespace

bool CpuSupports(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
#if defined(__x86_64__) || defined(__i386__)
    case Backend::kSse2:
      return __builtin_cpu_supports("sse2") != 0;
    case Backend::kAvx2:
      return __builtin_cpu_supports("avx2") != 0;
    case Backend::kAvx512:
      return __builtin_cpu_supports("avx512f") != 0;
#else
    case Backend::kSse2:
    case Backend::kAvx2:
    case Backend::kAvx512:
      return false;
#endif
  }
  return false;
}

bool Compiled(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return true;
    case Backend::kSse2:
#if defined(BGC_SIMD_HAS_SSE2)
      return true;
#else
      return false;
#endif
    case Backend::kAvx2:
#if defined(BGC_SIMD_HAS_AVX2)
      return true;
#else
      return false;
#endif
    case Backend::kAvx512:
#if defined(BGC_SIMD_HAS_AVX512)
      return true;
#else
      return false;
#endif
  }
  return false;
}

const KernelTable* TableFor(Backend b) {
  if (!Compiled(b) || !CpuSupports(b)) return nullptr;
  switch (b) {
    case Backend::kScalar:
      return &internal::ScalarTable();
    case Backend::kSse2:
#if defined(BGC_SIMD_HAS_SSE2)
      return &internal::Sse2Table();
#else
      return nullptr;
#endif
    case Backend::kAvx2:
#if defined(BGC_SIMD_HAS_AVX2)
      return &internal::Avx2Table();
#else
      return nullptr;
#endif
    case Backend::kAvx512:
#if defined(BGC_SIMD_HAS_AVX512)
      return &internal::Avx512Table();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const char* BackendName(Backend b) {
  switch (b) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSse2:
      return "sse2";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kAvx512:
      return "avx512";
  }
  return "unknown";
}

bool ParseBackend(const char* s, Backend* out) {
  if (s == nullptr || out == nullptr) return false;
  if (std::strcmp(s, "scalar") == 0) {
    *out = Backend::kScalar;
  } else if (std::strcmp(s, "sse2") == 0) {
    *out = Backend::kSse2;
  } else if (std::strcmp(s, "avx2") == 0) {
    *out = Backend::kAvx2;
  } else if (std::strcmp(s, "avx512") == 0) {
    *out = Backend::kAvx512;
  } else if (std::strcmp(s, "native") == 0) {
    *out = BestSupported();
  } else {
    return false;
  }
  return true;
}

const KernelTable& Kernels() {
  const KernelTable* t = g_active.load(std::memory_order_acquire);
  if (t != nullptr) return *t;
  std::call_once(g_init_once, InitOnce);
  return *g_active.load(std::memory_order_acquire);
}

Backend Active() { return Kernels().backend; }

Backend SetBackendForTesting(Backend b) {
  const Backend previous = Active();
  const KernelTable* t = TableFor(b);
  if (t == nullptr) {
    DieBadBackend(BackendName(b), "not compiled or not supported by this CPU");
  }
  g_active.store(t, std::memory_order_release);
  PublishBackendGauge();
  return previous;
}

bool FastMathEnabled() {
  int v = g_fast_math.load(std::memory_order_acquire);
  if (v >= 0) return v != 0;
  std::call_once(g_fast_math_once, [] {
    int expected = -1;
    // A SetFastMathForTesting call racing first wins; the env read is
    // only the default.
    g_fast_math.compare_exchange_strong(expected, FastMathFromEnv(),
                                        std::memory_order_acq_rel);
  });
  return g_fast_math.load(std::memory_order_acquire) != 0;
}

bool SetFastMathForTesting(bool on) {
  const bool previous = FastMathEnabled();
  g_fast_math.store(on ? 1 : 0, std::memory_order_release);
  BGC_GAUGE_SET("simd.fast_math", on ? 1.0 : 0.0);
  return previous;
}

GemmTileFn GemmTileFor(const KernelTable& t) {
  if (t.gemm_tile_fast != nullptr && FastMathEnabled() &&
      FastTileCpuSupported(t.backend)) {
    return t.gemm_tile_fast;
  }
  return t.gemm_tile;
}

bool FastTileCpuSupported(Backend b) {
  switch (b) {
    case Backend::kAvx2:
      // FMA is a separate cpuid bit from AVX2; the avx2 fast tile uses
      // vfmadd231ps, so both must be present (every table is already
      // cpuid-gated on its own ISA before it can be active).
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("fma") != 0;
#else
      return false;
#endif
    case Backend::kAvx512:
      // AVX-512F carries its own FMA forms; the table's cpuid gate on
      // avx512f is sufficient.
      return true;
    case Backend::kScalar:
    case Backend::kSse2:
      return true;  // no fast tile compiled; gemm_tile_fast is null anyway
  }
  return false;
}

void PublishBackendGauge() {
  BGC_GAUGE_SET("simd.backend", static_cast<double>(static_cast<int>(
                                    Kernels().backend)));
  BGC_GAUGE_SET("simd.fast_math", FastMathEnabled() ? 1.0 : 0.0);
}

}  // namespace bgc::simd
