// AVX2+FMA fast-math GEMM tile: the BGC_FAST_MATH=1 tier of the AVX2
// backend. Identical loop structure to GemmTileAvx2 but each multiply-add
// is one vfmadd231ps — one rounding instead of two — so results are NOT
// bit-identical to the exact tier (see DESIGN.md §14). This is the only
// translation unit in the repo compiled with -mfma; the exact kernels can
// never be contaminated by contraction because their TUs forbid the ISA
// outright. Only ever dispatched when the user opts in via BGC_FAST_MATH=1
// (simd::GemmTileFor), and only after cpuid-gated backend selection.

#include <immintrin.h>

#include "src/tensor/simd/tables.h"

namespace bgc::simd::internal {

void GemmTileAvx2Fma(float* c, int ldc, const float* ap, const float* bp,
                     int kc, bool first, bool skip_zero_a) {
  constexpr int kMr = 6;
  __m256 acc[kMr][2];
  for (int r = 0; r < kMr; ++r) {
    if (first) {
      acc[r][0] = _mm256_setzero_ps();
      acc[r][1] = _mm256_setzero_ps();
    } else {
      acc[r][0] = _mm256_loadu_ps(c + r * ldc);
      acc[r][1] = _mm256_loadu_ps(c + r * ldc + 8);
    }
  }
  if (skip_zero_a) {
    // Same skip as the exact tier: where the axpy chain never
    // materialized 0 * inf / 0 * NaN, neither does the fast tier. The
    // driver only selects this body when the A panel contains a zero.
    for (int p = 0; p < kc; ++p) {
      const float* a = ap + p * kMr;
      const __m256 b0 = _mm256_loadu_ps(bp + p * 16);
      const __m256 b1 = _mm256_loadu_ps(bp + p * 16 + 8);
      for (int r = 0; r < kMr; ++r) {
        const float av = a[r];
        if (av == 0.0f) continue;
        const __m256 avv = _mm256_set1_ps(av);
        acc[r][0] = _mm256_fmadd_ps(avv, b0, acc[r][0]);
        acc[r][1] = _mm256_fmadd_ps(avv, b1, acc[r][1]);
      }
    }
  } else {
    for (int p = 0; p < kc; ++p) {
      const float* a = ap + p * kMr;
      const __m256 b0 = _mm256_loadu_ps(bp + p * 16);
      const __m256 b1 = _mm256_loadu_ps(bp + p * 16 + 8);
      for (int r = 0; r < kMr; ++r) {
        const __m256 avv = _mm256_set1_ps(a[r]);
        acc[r][0] = _mm256_fmadd_ps(avv, b0, acc[r][0]);
        acc[r][1] = _mm256_fmadd_ps(avv, b1, acc[r][1]);
      }
    }
  }
  for (int r = 0; r < kMr; ++r) {
    _mm256_storeu_ps(c + r * ldc, acc[r][0]);
    _mm256_storeu_ps(c + r * ldc + 8, acc[r][1]);
  }
}

}  // namespace bgc::simd::internal
