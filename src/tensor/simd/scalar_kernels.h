#ifndef BGC_TENSOR_SIMD_SCALAR_KERNELS_H_
#define BGC_TENSOR_SIMD_SCALAR_KERNELS_H_

// Scalar reference loops shared by every backend: the kScalar table wraps
// them directly, and the vector backends call them on the sub-vector-width
// tails. Per-element semantics (including NaN and ±0 cases) are chosen to
// bit-match both the historical serial kernels in matrix_ops.cc and the
// SSE/AVX min/max instruction behavior — see the KernelTable contract in
// simd.h. Header-only so vector translation units can inline the tails.

#include <algorithm>
#include <cmath>
#include <limits>

namespace bgc::simd::internal {

inline void AxpyScalar(float* c, const float* x, float a, int n) {
  for (int i = 0; i < n; ++i) c[i] += a * x[i];
}

inline void AddScalar(float* c, const float* x, int n) {
  for (int i = 0; i < n; ++i) c[i] += x[i];
}

inline void SubScalar(float* c, const float* x, int n) {
  for (int i = 0; i < n; ++i) c[i] -= x[i];
}

inline void MulScalar(float* c, const float* x, int n) {
  for (int i = 0; i < n; ++i) c[i] *= x[i];
}

inline void ScaleScalar(float* c, float a, int n) {
  for (int i = 0; i < n; ++i) c[i] *= a;
}

inline void ReluScalar(float* c, int n) {
  // std::max(0.0f, x): x > 0 passes through, everything else (negatives,
  // -0.0f, NaN) becomes the +0.0f first argument — identical to
  // _mm*_max_ps(x, 0) lane semantics.
  for (int i = 0; i < n; ++i) c[i] = std::max(0.0f, c[i]);
}

inline void ClampScalar(float* c, float lo, float hi, int n) {
  // max(lo, x) returns lo on ties and NaN; min(hi, y) returns hi on ties
  // — identical to _mm*_min_ps(_mm*_max_ps(x, lo), hi) lane semantics.
  for (int i = 0; i < n; ++i) c[i] = std::min(hi, std::max(lo, c[i]));
}

// Micro-tile shape of the scalar packed-GEMM reference. Small enough that
// the accumulator block stays register/L1-resident even without vector
// registers; every backend's exact tile performs the identical ascending-p
// mul-then-add chain per element, so the tile shape never changes bits.
inline constexpr int kScalarGemmMr = 4;
inline constexpr int kScalarGemmNr = 8;

// Packed reference tile (see simd::GemmTileFn). Separate mul then add —
// the TU carrying this is compiled with -ffp-contract=off, so the two
// roundings are real — and the same a == 0.0f row skip as the axpy path.
inline void GemmTileScalar(float* c, int ldc, const float* ap,
                           const float* bp, int kc, bool first,
                           bool skip_zero_a) {
  float acc[kScalarGemmMr][kScalarGemmNr];
  for (int r = 0; r < kScalarGemmMr; ++r) {
    for (int j = 0; j < kScalarGemmNr; ++j) {
      acc[r][j] = first ? 0.0f : c[r * ldc + j];
    }
  }
  for (int p = 0; p < kc; ++p) {
    const float* a = ap + p * kScalarGemmMr;
    const float* b = bp + p * kScalarGemmNr;
    for (int r = 0; r < kScalarGemmMr; ++r) {
      const float av = a[r];
      if (skip_zero_a && av == 0.0f) continue;
      for (int j = 0; j < kScalarGemmNr; ++j) acc[r][j] += av * b[j];
    }
  }
  for (int r = 0; r < kScalarGemmMr; ++r) {
    for (int j = 0; j < kScalarGemmNr; ++j) c[r * ldc + j] = acc[r][j];
  }
}

inline float MaxAbsScalar(const float* x, int n) {
  float m = 0.0f;
  bool has_nan = false;
  for (int i = 0; i < n; ++i) {
    const float f = std::fabs(x[i]);
    if (std::isnan(f)) {
      has_nan = true;
      continue;
    }
    m = std::max(m, f);
  }
  // Canonical quiet NaN so every backend returns the same bit pattern.
  return has_nan ? std::numeric_limits<float>::quiet_NaN() : m;
}

}  // namespace bgc::simd::internal

#endif  // BGC_TENSOR_SIMD_SCALAR_KERNELS_H_
