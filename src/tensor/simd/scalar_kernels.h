#ifndef BGC_TENSOR_SIMD_SCALAR_KERNELS_H_
#define BGC_TENSOR_SIMD_SCALAR_KERNELS_H_

// Scalar reference loops shared by every backend: the kScalar table wraps
// them directly, and the vector backends call them on the sub-vector-width
// tails. Per-element semantics (including NaN and ±0 cases) are chosen to
// bit-match both the historical serial kernels in matrix_ops.cc and the
// SSE/AVX min/max instruction behavior — see the KernelTable contract in
// simd.h. Header-only so vector translation units can inline the tails.

#include <algorithm>
#include <cmath>
#include <limits>

namespace bgc::simd::internal {

inline void AxpyScalar(float* c, const float* x, float a, int n) {
  for (int i = 0; i < n; ++i) c[i] += a * x[i];
}

inline void AddScalar(float* c, const float* x, int n) {
  for (int i = 0; i < n; ++i) c[i] += x[i];
}

inline void SubScalar(float* c, const float* x, int n) {
  for (int i = 0; i < n; ++i) c[i] -= x[i];
}

inline void MulScalar(float* c, const float* x, int n) {
  for (int i = 0; i < n; ++i) c[i] *= x[i];
}

inline void ScaleScalar(float* c, float a, int n) {
  for (int i = 0; i < n; ++i) c[i] *= a;
}

inline void ReluScalar(float* c, int n) {
  // std::max(0.0f, x): x > 0 passes through, everything else (negatives,
  // -0.0f, NaN) becomes the +0.0f first argument — identical to
  // _mm*_max_ps(x, 0) lane semantics.
  for (int i = 0; i < n; ++i) c[i] = std::max(0.0f, c[i]);
}

inline void ClampScalar(float* c, float lo, float hi, int n) {
  // max(lo, x) returns lo on ties and NaN; min(hi, y) returns hi on ties
  // — identical to _mm*_min_ps(_mm*_max_ps(x, lo), hi) lane semantics.
  for (int i = 0; i < n; ++i) c[i] = std::min(hi, std::max(lo, c[i]));
}

inline float MaxAbsScalar(const float* x, int n) {
  float m = 0.0f;
  bool has_nan = false;
  for (int i = 0; i < n; ++i) {
    const float f = std::fabs(x[i]);
    if (std::isnan(f)) {
      has_nan = true;
      continue;
    }
    m = std::max(m, f);
  }
  // Canonical quiet NaN so every backend returns the same bit pattern.
  return has_nan ? std::numeric_limits<float>::quiet_NaN() : m;
}

}  // namespace bgc::simd::internal

#endif  // BGC_TENSOR_SIMD_SCALAR_KERNELS_H_
