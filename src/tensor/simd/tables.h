#ifndef BGC_TENSOR_SIMD_TABLES_H_
#define BGC_TENSOR_SIMD_TABLES_H_

// Internal: per-backend table accessors wired between the kernel
// translation units and dispatch.cc. The BGC_SIMD_HAS_* macros are set by
// src/tensor/CMakeLists.txt exactly when the corresponding TU is built
// (toolchain flag probing; see the BGC_SIMD_DISABLE escape hatch there).

#include "src/tensor/simd/simd.h"

namespace bgc::simd::internal {

const KernelTable& ScalarTable();

#if defined(BGC_SIMD_HAS_SSE2)
const KernelTable& Sse2Table();
#endif

#if defined(BGC_SIMD_HAS_AVX2)
const KernelTable& Avx2Table();
#endif

#if defined(BGC_SIMD_HAS_AVX2_FMA)
// Fast-math (FMA) 6x16 tile kernel, defined in kernels_avx2_fma.cc (its
// own TU so only it is compiled with -mfma) and wired into Avx2Table's
// gemm_tile_fast slot.
void GemmTileAvx2Fma(float* c, int ldc, const float* ap, const float* bp,
                     int kc, bool first, bool skip_zero_a);
#endif

#if defined(BGC_SIMD_HAS_AVX512)
const KernelTable& Avx512Table();
#endif

}  // namespace bgc::simd::internal

#endif  // BGC_TENSOR_SIMD_TABLES_H_
