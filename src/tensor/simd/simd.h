#ifndef BGC_TENSOR_SIMD_SIMD_H_
#define BGC_TENSOR_SIMD_SIMD_H_

// Runtime-dispatched vectorized kernel layer for the dense/sparse hot
// loops (see DESIGN.md §10 "SIMD backends" and §14 "Packed GEMM").
//
// Backends: a scalar reference (always built, compiled with
// -fno-tree-vectorize so it really is the serial rounding sequence), an
// SSE2 path, an AVX2 path, and an AVX-512 path, each compiled in its own
// translation unit with exactly the ISA flags it needs (never -mfma on
// the exact kernels; -ffp-contract=off). The active backend is chosen
// once at startup: the best cpuid-supported table, overridable with
// BGC_SIMD=scalar|sse2|avx2|avx512|native. The choice is published
// through the "simd.backend" obs gauge (0=scalar, 1=sse2, 2=avx2,
// 3=avx512).
//
// Bit-exactness contract: every kernel here vectorizes across
// *independent output elements* — GEMM/SpMM across the output column j,
// elementwise ops across lanes, max-reductions whose result is
// order-independent — and performs the same mul-then-add rounding steps
// per element as the scalar reference (no FMA contraction). Each backend
// therefore produces byte-identical results; tests/simd_test.cc enforces
// this at memcmp level and golden_metrics_test passes unchanged under
// every BGC_SIMD value. Serial accumulation chains (Sum, Dot, per-row
// softmax denominators) are deliberately *not* vectorized: changing their
// addend order would change bits, so they share one code path in every
// backend.
//
// Fast-math tier: each vector backend may additionally carry a
// `gemm_tile_fast` micro-kernel that uses FMA (one rounding per
// multiply-add instead of two). It is NON-bit-exact by design and is
// only ever dispatched when the user opts in with BGC_FAST_MATH=1; the
// golden tests stay pinned to the exact tier (DESIGN.md §14).

namespace bgc::simd {

enum class Backend : int { kScalar = 0, kSse2 = 1, kAvx2 = 2, kAvx512 = 3 };

/// Packed register-tiled GEMM micro-kernel. Computes one mr x nr tile of
/// C (+)= A-panel * B-panel where
///   ap — kc groups of `gemm_mr` floats: ap[p*mr + r] is A(row0+r, p0+p),
///        zero-padded past the valid rows;
///   bp — kc groups of `gemm_nr` floats: bp[p*nr + j] is B(p0+p, col0+j),
///        zero-padded past the valid columns;
///   c  — mr x nr output tile with row stride ldc (floats).
/// `first` starts the accumulators at +0.0f (k-block 0); otherwise they
/// load the partial results already in c. `skip_zero_a` reproduces the
/// axpy path's `a == 0.0f` row skip (0 * inf and 0 * NaN must not be
/// materialized where the unpacked kernel never materialized them).
/// Exact-tier kernels accumulate ascending p with separate mul-then-add
/// rounding — the identical per-element sequence to the scalar axpy
/// chain, so packed and unpacked GEMM agree bit-for-bit on every backend.
using GemmTileFn = void (*)(float* c, int ldc, const float* ap,
                            const float* bp, int kc, bool first,
                            bool skip_zero_a);

/// Function table of one backend. All kernels tolerate n == 0 and accept
/// unaligned pointers; `c` ranges never alias `x` ranges (caller
/// contract, matches how matrix_ops/csr invoke them).
struct KernelTable {
  Backend backend;
  const char* name;

  /// c[i] += a * x[i]. Separate mul then add per element — never fused —
  /// so the rounding sequence matches the scalar loop exactly.
  void (*axpy)(float* c, const float* x, float a, int n);
  /// c[i] += x[i].
  void (*add)(float* c, const float* x, int n);
  /// c[i] -= x[i].
  void (*sub)(float* c, const float* x, int n);
  /// c[i] *= x[i].
  void (*mul)(float* c, const float* x, int n);
  /// c[i] *= a.
  void (*scale)(float* c, float a, int n);
  /// c[i] = max(0.0f, c[i]) with std::max(0.0f, x) semantics: -0.0f and
  /// NaN both map to +0.0f (bit-matches the historical serial loop).
  void (*relu)(float* c, int n);
  /// c[i] = min(hi, max(lo, c[i])) with std::min/std::max ordering: NaN
  /// maps to lo, ties keep the bound's sign bit.
  void (*clamp)(float* c, float lo, float hi, int n);
  /// max_i |x[i]|; returns the canonical quiet NaN if any x[i] is NaN
  /// (NaN-propagating, unlike a bare std::max fold which swallows NaN).
  /// Order-independent, so lane-parallel evaluation is bit-exact.
  float (*max_abs)(const float* x, int n);

  /// Exact-tier packed GEMM micro-kernel (never null; the scalar table
  /// carries a plain-loop reference tile).
  GemmTileFn gemm_tile;
  /// Fast-math (FMA) variant, dispatched only under BGC_FAST_MATH=1.
  /// Null when this backend has no fast kernel (scalar, sse2, or an AVX2
  /// toolchain without -mfma); the dispatch then falls back to the exact
  /// tile, so opting in never changes which backends are runnable.
  GemmTileFn gemm_tile_fast;
  /// Micro-tile height (rows of C per tile) the gemm kernels expect.
  int gemm_mr;
  /// Micro-tile width (columns of C per tile) the gemm kernels expect.
  int gemm_nr;
};

/// The active backend's table. First call performs detection (cpuid +
/// BGC_SIMD) and publishes the obs gauge; subsequent calls are one atomic
/// load. An unknown BGC_SIMD value, or one naming a backend this binary
/// did not compile / this CPU cannot run, aborts with a diagnostic rather
/// than silently falling back (a silent fallback would invalidate
/// benchmark comparisons).
const KernelTable& Kernels();

/// Backend of Kernels().
Backend Active();

const char* BackendName(Backend b);

/// True when the running CPU can execute `b` (scalar: always).
bool CpuSupports(Backend b);

/// True when this binary contains `b`'s kernels (scalar: always; vector
/// backends depend on toolchain support and BGC_SIMD_DISABLE).
bool Compiled(Backend b);

/// Table for `b`, or nullptr unless Compiled(b) && CpuSupports(b).
const KernelTable* TableFor(Backend b);

/// Parses "scalar" | "sse2" | "avx2" | "avx512" | "native" (native = best
/// compiled and supported backend). Returns false on any other string.
bool ParseBackend(const char* s, Backend* out);

/// True when the BGC_FAST_MATH tier is active. First call parses the env
/// var with the uniform fail-fast contract: unset/""/"0"/"off" → exact
/// tier, "1"/"on" → fast tier, anything else exits with status 2 naming
/// the value. Published through the "simd.fast_math" obs gauge.
bool FastMathEnabled();

/// The micro-kernel MatMul* should dispatch for table `t`: the fast tile
/// when the fast tier is active, `t` carries one, and the CPU has the
/// extra ISA the fast tile needs; else the exact tile.
GemmTileFn GemmTileFor(const KernelTable& t);

/// True when this CPU can run backend `b`'s fast GEMM tile. The avx2 fast
/// tile uses FMA, which is a separate cpuid bit from AVX2; AVX-512F
/// carries its own FMA forms. Backends without a fast tile return true
/// (their gemm_tile_fast is null, so GemmTileFor never consults this).
bool FastTileCpuSupported(Backend b);

/// Test/bench hook: forces the fast-math tier on or off regardless of the
/// environment and returns the previous setting. Not thread-safe against
/// concurrent kernel dispatch; production code reads the env once.
bool SetFastMathForTesting(bool on);

/// Test/bench hook: swaps the active table (must satisfy TableFor(b) !=
/// nullptr) and returns the previous backend. Not thread-safe against
/// concurrent kernel dispatch; production code selects once at startup.
Backend SetBackendForTesting(Backend b);

/// Re-publishes the "simd.backend" gauge (gauges only record while
/// metrics collection is enabled, so tests that enable metrics late can
/// call this to make the backend visible).
void PublishBackendGauge();

}  // namespace bgc::simd

#endif  // BGC_TENSOR_SIMD_SIMD_H_
