#ifndef BGC_TENSOR_SIMD_SIMD_H_
#define BGC_TENSOR_SIMD_SIMD_H_

// Runtime-dispatched vectorized kernel layer for the dense/sparse hot
// loops (see DESIGN.md §10 "SIMD backends").
//
// Backends: a scalar reference (always built, compiled with
// -fno-tree-vectorize so it really is the serial rounding sequence), an
// SSE2 path and an AVX2 path, each compiled in its own translation unit
// with exactly the ISA flags it needs (never -mfma; -ffp-contract=off).
// The active backend is chosen once at startup: the best cpuid-supported
// table, overridable with BGC_SIMD=scalar|sse2|avx2|native. The choice is
// published through the "simd.backend" obs gauge (0=scalar, 1=sse2,
// 2=avx2).
//
// Bit-exactness contract: every kernel here vectorizes across
// *independent output elements* — GEMM/SpMM across the output column j,
// elementwise ops across lanes, max-reductions whose result is
// order-independent — and performs the same mul-then-add rounding steps
// per element as the scalar reference (no FMA contraction). Each backend
// therefore produces byte-identical results; tests/simd_test.cc enforces
// this at memcmp level and golden_metrics_test passes unchanged under
// every BGC_SIMD value. Serial accumulation chains (Sum, Dot, per-row
// softmax denominators) are deliberately *not* vectorized: changing their
// addend order would change bits, so they share one code path in every
// backend.

namespace bgc::simd {

enum class Backend : int { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

/// Function table of one backend. All kernels tolerate n == 0 and accept
/// unaligned pointers; `c` ranges never alias `x` ranges (caller
/// contract, matches how matrix_ops/csr invoke them).
struct KernelTable {
  Backend backend;
  const char* name;

  /// c[i] += a * x[i]. Separate mul then add per element — never fused —
  /// so the rounding sequence matches the scalar loop exactly.
  void (*axpy)(float* c, const float* x, float a, int n);
  /// c[i] += x[i].
  void (*add)(float* c, const float* x, int n);
  /// c[i] -= x[i].
  void (*sub)(float* c, const float* x, int n);
  /// c[i] *= x[i].
  void (*mul)(float* c, const float* x, int n);
  /// c[i] *= a.
  void (*scale)(float* c, float a, int n);
  /// c[i] = max(0.0f, c[i]) with std::max(0.0f, x) semantics: -0.0f and
  /// NaN both map to +0.0f (bit-matches the historical serial loop).
  void (*relu)(float* c, int n);
  /// c[i] = min(hi, max(lo, c[i])) with std::min/std::max ordering: NaN
  /// maps to lo, ties keep the bound's sign bit.
  void (*clamp)(float* c, float lo, float hi, int n);
  /// max_i |x[i]|; returns the canonical quiet NaN if any x[i] is NaN
  /// (NaN-propagating, unlike a bare std::max fold which swallows NaN).
  /// Order-independent, so lane-parallel evaluation is bit-exact.
  float (*max_abs)(const float* x, int n);
};

/// The active backend's table. First call performs detection (cpuid +
/// BGC_SIMD) and publishes the obs gauge; subsequent calls are one atomic
/// load. An unknown BGC_SIMD value, or one naming a backend this binary
/// did not compile / this CPU cannot run, aborts with a diagnostic rather
/// than silently falling back (a silent fallback would invalidate
/// benchmark comparisons).
const KernelTable& Kernels();

/// Backend of Kernels().
Backend Active();

const char* BackendName(Backend b);

/// True when the running CPU can execute `b` (scalar: always).
bool CpuSupports(Backend b);

/// True when this binary contains `b`'s kernels (scalar: always; vector
/// backends depend on toolchain support and BGC_SIMD_DISABLE).
bool Compiled(Backend b);

/// Table for `b`, or nullptr unless Compiled(b) && CpuSupports(b).
const KernelTable* TableFor(Backend b);

/// Parses "scalar" | "sse2" | "avx2" | "native" (native = best compiled
/// and supported backend). Returns false on any other string.
bool ParseBackend(const char* s, Backend* out);

/// Test/bench hook: swaps the active table (must satisfy TableFor(b) !=
/// nullptr) and returns the previous backend. Not thread-safe against
/// concurrent kernel dispatch; production code selects once at startup.
Backend SetBackendForTesting(Backend b);

/// Re-publishes the "simd.backend" gauge (gauges only record while
/// metrics collection is enabled, so tests that enable metrics late can
/// call this to make the backend visible).
void PublishBackendGauge();

}  // namespace bgc::simd

#endif  // BGC_TENSOR_SIMD_SIMD_H_
