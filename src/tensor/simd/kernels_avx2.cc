// AVX2 backend: 8-wide lanes. Same structure and bit-exactness argument
// as kernels_sse2.cc — separate vmulps/vaddps (the file is compiled with
// -mavx2 -mno-fma -ffp-contract=off, so no fused multiply-add can change
// rounding), scalar tail for the last n % 8 elements. This TU must only
// ever execute after cpuid-gated dispatch (see dispatch.cc).

#include <immintrin.h>

#include "src/tensor/simd/scalar_kernels.h"
#include "src/tensor/simd/tables.h"

namespace bgc::simd::internal {

namespace {

void AxpyAvx2(float* c, const float* x, float a, int n) {
  const __m256 av = _mm256_set1_ps(a);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(_mm256_loadu_ps(x + i), av);
    _mm256_storeu_ps(c + i, _mm256_add_ps(_mm256_loadu_ps(c + i), prod));
  }
  AxpyScalar(c + i, x + i, a, n - i);
}

void AddAvx2(float* c, const float* x, int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        c + i, _mm256_add_ps(_mm256_loadu_ps(c + i), _mm256_loadu_ps(x + i)));
  }
  AddScalar(c + i, x + i, n - i);
}

void SubAvx2(float* c, const float* x, int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        c + i, _mm256_sub_ps(_mm256_loadu_ps(c + i), _mm256_loadu_ps(x + i)));
  }
  SubScalar(c + i, x + i, n - i);
}

void MulAvx2(float* c, const float* x, int n) {
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        c + i, _mm256_mul_ps(_mm256_loadu_ps(c + i), _mm256_loadu_ps(x + i)));
  }
  MulScalar(c + i, x + i, n - i);
}

void ScaleAvx2(float* c, float a, int n) {
  const __m256 av = _mm256_set1_ps(a);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(c + i, _mm256_mul_ps(_mm256_loadu_ps(c + i), av));
  }
  ScaleScalar(c + i, a, n - i);
}

void ReluAvx2(float* c, int n) {
  const __m256 zero = _mm256_setzero_ps();
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(c + i, _mm256_max_ps(_mm256_loadu_ps(c + i), zero));
  }
  ReluScalar(c + i, n - i);
}

void ClampAvx2(float* c, float lo, float hi, int n) {
  const __m256 lov = _mm256_set1_ps(lo);
  const __m256 hiv = _mm256_set1_ps(hi);
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 lifted = _mm256_max_ps(_mm256_loadu_ps(c + i), lov);
    _mm256_storeu_ps(c + i, _mm256_min_ps(lifted, hiv));
  }
  ClampScalar(c + i, lo, hi, n - i);
}

float MaxAbsAvx2(const float* x, int n) {
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
  __m256 acc = _mm256_setzero_ps();
  __m256 nan_seen = _mm256_setzero_ps();
  int i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    nan_seen = _mm256_or_ps(nan_seen, _mm256_cmp_ps(v, v, _CMP_UNORD_Q));
    acc = _mm256_max_ps(acc, _mm256_and_ps(v, abs_mask));
  }
  const float tail = MaxAbsScalar(x + i, n - i);
  if (_mm256_movemask_ps(nan_seen) != 0 || std::isnan(tail)) {
    return std::numeric_limits<float>::quiet_NaN();
  }
  float lanes[8];
  _mm256_storeu_ps(lanes, acc);
  float m = tail;
  for (float l : lanes) m = std::max(m, l);
  return m;
}

// Packed 6x16 register tile: 12 ymm accumulators live across the whole
// k-block (plus 2 for the B strip and 1 broadcast — 15 of 16 ymm), so C
// traffic drops from one load+store per p to one per k-block. Rounding
// per element is unchanged: ascending p, separate vmulps/vaddps (no FMA
// in this TU), same a == 0.0f skip as the axpy chain.
void GemmTileAvx2(float* c, int ldc, const float* ap, const float* bp,
                  int kc, bool first, bool skip_zero_a) {
  constexpr int kMr = 6;
  __m256 acc[kMr][2];
  for (int r = 0; r < kMr; ++r) {
    if (first) {
      acc[r][0] = _mm256_setzero_ps();
      acc[r][1] = _mm256_setzero_ps();
    } else {
      acc[r][0] = _mm256_loadu_ps(c + r * ldc);
      acc[r][1] = _mm256_loadu_ps(c + r * ldc + 8);
    }
  }
  if (skip_zero_a) {
    // Skipping body: per-element zero checks. The driver only selects it
    // when the packed A panel actually contains a zero, so the common
    // case runs the branch-free body below (bit-identical when no lane
    // is zero — the check never fires).
    for (int p = 0; p < kc; ++p) {
      const float* a = ap + p * kMr;
      const __m256 b0 = _mm256_loadu_ps(bp + p * 16);
      const __m256 b1 = _mm256_loadu_ps(bp + p * 16 + 8);
      for (int r = 0; r < kMr; ++r) {
        const float av = a[r];
        if (av == 0.0f) continue;
        const __m256 avv = _mm256_set1_ps(av);
        acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(avv, b0));
        acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(avv, b1));
      }
    }
  } else {
    for (int p = 0; p < kc; ++p) {
      const float* a = ap + p * kMr;
      const __m256 b0 = _mm256_loadu_ps(bp + p * 16);
      const __m256 b1 = _mm256_loadu_ps(bp + p * 16 + 8);
      for (int r = 0; r < kMr; ++r) {
        const __m256 avv = _mm256_set1_ps(a[r]);
        acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(avv, b0));
        acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(avv, b1));
      }
    }
  }
  for (int r = 0; r < kMr; ++r) {
    _mm256_storeu_ps(c + r * ldc, acc[r][0]);
    _mm256_storeu_ps(c + r * ldc + 8, acc[r][1]);
  }
}

constexpr KernelTable kAvx2Table = {
    Backend::kAvx2, "avx2",   AxpyAvx2,  AddAvx2,   SubAvx2,
    MulAvx2,        ScaleAvx2, ReluAvx2, ClampAvx2, MaxAbsAvx2,
    GemmTileAvx2,
#if defined(BGC_SIMD_HAS_AVX2_FMA)
    GemmTileAvx2Fma,  // fast tier; defined in kernels_avx2_fma.cc
#else
    nullptr,
#endif
    6, 16,
};

}  // namespace

const KernelTable& Avx2Table() { return kAvx2Table; }

}  // namespace bgc::simd::internal
