// SSE2 backend: 4-wide lanes, unaligned loads, separate mulps/addps
// (never FMA — the file is compiled with -ffp-contract=off and no -mfma),
// scalar tail for the last n % 4 elements. Every lane performs the same
// rounding steps as the scalar reference, so results are byte-identical;
// min/max lane semantics (NaN and ±0 ties resolve to the second operand)
// are matched by the std::min/std::max argument order in
// scalar_kernels.h.

#include <emmintrin.h>

#include "src/tensor/simd/scalar_kernels.h"
#include "src/tensor/simd/tables.h"

namespace bgc::simd::internal {

namespace {

void AxpySse2(float* c, const float* x, float a, int n) {
  const __m128 av = _mm_set1_ps(a);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 prod = _mm_mul_ps(_mm_loadu_ps(x + i), av);
    _mm_storeu_ps(c + i, _mm_add_ps(_mm_loadu_ps(c + i), prod));
  }
  AxpyScalar(c + i, x + i, a, n - i);
}

void AddSse2(float* c, const float* x, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(c + i, _mm_add_ps(_mm_loadu_ps(c + i), _mm_loadu_ps(x + i)));
  }
  AddScalar(c + i, x + i, n - i);
}

void SubSse2(float* c, const float* x, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(c + i, _mm_sub_ps(_mm_loadu_ps(c + i), _mm_loadu_ps(x + i)));
  }
  SubScalar(c + i, x + i, n - i);
}

void MulSse2(float* c, const float* x, int n) {
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(c + i, _mm_mul_ps(_mm_loadu_ps(c + i), _mm_loadu_ps(x + i)));
  }
  MulScalar(c + i, x + i, n - i);
}

void ScaleSse2(float* c, float a, int n) {
  const __m128 av = _mm_set1_ps(a);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(c + i, _mm_mul_ps(_mm_loadu_ps(c + i), av));
  }
  ScaleScalar(c + i, a, n - i);
}

void ReluSse2(float* c, int n) {
  const __m128 zero = _mm_setzero_ps();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    // maxps(x, 0): NaN and both-zero lanes take the second operand (+0),
    // matching std::max(0.0f, x).
    _mm_storeu_ps(c + i, _mm_max_ps(_mm_loadu_ps(c + i), zero));
  }
  ReluScalar(c + i, n - i);
}

void ClampSse2(float* c, float lo, float hi, int n) {
  const __m128 lov = _mm_set1_ps(lo);
  const __m128 hiv = _mm_set1_ps(hi);
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 lifted = _mm_max_ps(_mm_loadu_ps(c + i), lov);
    _mm_storeu_ps(c + i, _mm_min_ps(lifted, hiv));
  }
  ClampScalar(c + i, lo, hi, n - i);
}

float MaxAbsSse2(const float* x, int n) {
  const __m128 abs_mask = _mm_castsi128_ps(_mm_set1_epi32(0x7FFFFFFF));
  __m128 acc = _mm_setzero_ps();
  __m128 nan_seen = _mm_setzero_ps();
  int i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 v = _mm_loadu_ps(x + i);
    nan_seen = _mm_or_ps(nan_seen, _mm_cmpunord_ps(v, v));
    acc = _mm_max_ps(acc, _mm_and_ps(v, abs_mask));
  }
  const float tail = MaxAbsScalar(x + i, n - i);
  if (_mm_movemask_ps(nan_seen) != 0 || std::isnan(tail)) {
    return std::numeric_limits<float>::quiet_NaN();
  }
  float lanes[4];
  _mm_storeu_ps(lanes, acc);
  float m = tail;
  for (float l : lanes) m = std::max(m, l);
  return m;
}

// Packed 4x8 register tile: 8 xmm accumulators stay live across the whole
// k-block, so C traffic drops from one load+store per p (the axpy chain)
// to one per k-block. Rounding per element is unchanged: ascending p,
// separate mulps/addps, same a == 0.0f skip.
void GemmTileSse2(float* c, int ldc, const float* ap, const float* bp,
                  int kc, bool first, bool skip_zero_a) {
  constexpr int kMr = 4;
  __m128 acc[kMr][2];
  for (int r = 0; r < kMr; ++r) {
    if (first) {
      acc[r][0] = _mm_setzero_ps();
      acc[r][1] = _mm_setzero_ps();
    } else {
      acc[r][0] = _mm_loadu_ps(c + r * ldc);
      acc[r][1] = _mm_loadu_ps(c + r * ldc + 4);
    }
  }
  if (skip_zero_a) {
    // Only selected when the A panel contains a zero; the common case is
    // the branch-free body below (bit-identical when no lane is zero).
    for (int p = 0; p < kc; ++p) {
      const float* a = ap + p * kMr;
      const __m128 b0 = _mm_loadu_ps(bp + p * 8);
      const __m128 b1 = _mm_loadu_ps(bp + p * 8 + 4);
      for (int r = 0; r < kMr; ++r) {
        const float av = a[r];
        if (av == 0.0f) continue;
        const __m128 avv = _mm_set1_ps(av);
        acc[r][0] = _mm_add_ps(acc[r][0], _mm_mul_ps(avv, b0));
        acc[r][1] = _mm_add_ps(acc[r][1], _mm_mul_ps(avv, b1));
      }
    }
  } else {
    for (int p = 0; p < kc; ++p) {
      const float* a = ap + p * kMr;
      const __m128 b0 = _mm_loadu_ps(bp + p * 8);
      const __m128 b1 = _mm_loadu_ps(bp + p * 8 + 4);
      for (int r = 0; r < kMr; ++r) {
        const __m128 avv = _mm_set1_ps(a[r]);
        acc[r][0] = _mm_add_ps(acc[r][0], _mm_mul_ps(avv, b0));
        acc[r][1] = _mm_add_ps(acc[r][1], _mm_mul_ps(avv, b1));
      }
    }
  }
  for (int r = 0; r < kMr; ++r) {
    _mm_storeu_ps(c + r * ldc, acc[r][0]);
    _mm_storeu_ps(c + r * ldc + 4, acc[r][1]);
  }
}

constexpr KernelTable kSse2Table = {
    Backend::kSse2, "sse2",   AxpySse2,  AddSse2,   SubSse2,
    MulSse2,        ScaleSse2, ReluSse2, ClampSse2, MaxAbsSse2,
    GemmTileSse2,   /*gemm_tile_fast=*/nullptr, 4, 8,
};

}  // namespace

const KernelTable& Sse2Table() { return kSse2Table; }

}  // namespace bgc::simd::internal
