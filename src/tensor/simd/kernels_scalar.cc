// Scalar backend: the bit-reference every vector backend must match.
// Compiled with -fno-tree-vectorize and -ffp-contract=off (see
// src/tensor/CMakeLists.txt) so the emitted code is genuinely one
// element per step — BGC_SIMD=scalar benchmarks measure the true serial
// baseline, not whatever the autovectorizer felt like.

#include "src/tensor/simd/scalar_kernels.h"
#include "src/tensor/simd/tables.h"

namespace bgc::simd::internal {

namespace {

constexpr KernelTable kScalarTable = {
    Backend::kScalar, "scalar", AxpyScalar,  AddScalar,   SubScalar,
    MulScalar,        ScaleScalar, ReluScalar, ClampScalar, MaxAbsScalar,
    GemmTileScalar,   /*gemm_tile_fast=*/nullptr,
    kScalarGemmMr,    kScalarGemmNr,
};

}  // namespace

const KernelTable& ScalarTable() { return kScalarTable; }

}  // namespace bgc::simd::internal
