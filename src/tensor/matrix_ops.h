#ifndef BGC_TENSOR_MATRIX_OPS_H_
#define BGC_TENSOR_MATRIX_OPS_H_

#include <vector>

#include "src/tensor/matrix.h"

namespace bgc {

/// Testing/bench hook: forces the GEMM execution path. kAuto (default)
/// routes by product size — large products take the packed register-tiled
/// path, small ones the legacy axpy path. Both paths are bit-identical by
/// contract (see DESIGN.md §14), so forcing a path only changes speed;
/// tests force kPacked to exercise tile edges at tiny shapes and the bench
/// forces kAxpy to measure the legacy baseline. Returns the previous path.
enum class GemmPath { kAuto = 0, kPacked = 1, kAxpy = 2 };
GemmPath SetGemmPathForTesting(GemmPath path);

/// C = A * B. Shapes: (n×k) * (k×m) -> (n×m).
Matrix MatMul(const Matrix& a, const Matrix& b);

/// C = Aᵀ * B. Shapes: (k×n)ᵀ * (k×m) -> (n×m). Avoids materializing Aᵀ.
Matrix MatMulTransA(const Matrix& a, const Matrix& b);

/// C = A * Bᵀ. Shapes: (n×k) * (m×k)ᵀ -> (n×m). Avoids materializing Bᵀ.
Matrix MatMulTransB(const Matrix& a, const Matrix& b);

/// Element-wise sum / difference; shapes must match.
Matrix Add(const Matrix& a, const Matrix& b);
Matrix Sub(const Matrix& a, const Matrix& b);

/// a += alpha * b (axpy). Shapes must match.
void AddScaledInPlace(Matrix& a, const Matrix& b, float alpha);

/// Element-wise product.
Matrix Hadamard(const Matrix& a, const Matrix& b);

/// alpha * a.
Matrix Scale(const Matrix& a, float alpha);
void ScaleInPlace(Matrix& a, float alpha);

/// Adds the 1×cols row vector `bias` to every row of `a`.
Matrix AddRowBroadcast(const Matrix& a, const Matrix& bias);

/// Element-wise nonlinearities.
Matrix Relu(const Matrix& a);
Matrix Sigmoid(const Matrix& a);
Matrix TanhMat(const Matrix& a);

/// Element-wise clamp to [lo, hi].
Matrix Clamp(const Matrix& a, float lo, float hi);

/// Row-wise softmax (numerically stabilized by the row max). A
/// zero-column input returns the empty rows×0 matrix.
Matrix RowSoftmax(const Matrix& a);

/// Aᵀ as a materialized matrix.
Matrix Transpose(const Matrix& a);

/// Scalar reductions. MaxAbs propagates NaN (returns the canonical quiet
/// NaN when any entry is NaN) instead of swallowing it through std::max.
float Sum(const Matrix& a);
float Dot(const Matrix& a, const Matrix& b);
float FrobeniusNorm(const Matrix& a);
float MaxAbs(const Matrix& a);

/// Per-row sum -> n×1; per-column sum -> 1×m.
Matrix RowSum(const Matrix& a);
Matrix ColSum(const Matrix& a);

/// Per-row Euclidean norm -> n×1.
Matrix RowNorm(const Matrix& a);

/// argmax over each row.
std::vector<int> ArgmaxRows(const Matrix& a);

/// Cosine similarity of rows i of `a` and j of `b` (0 when either row is 0).
float RowCosine(const Matrix& a, int i, const Matrix& b, int j);

/// Gathers the given rows into a new matrix (rows may repeat).
Matrix GatherRows(const Matrix& a, const std::vector<int>& rows);

/// out[rows[k], :] += a[k, :] for each k. `out` must be preallocated.
void ScatterAddRows(const Matrix& a, const std::vector<int>& rows,
                    Matrix& out);

/// Stacks a on top of b (column counts must match).
Matrix ConcatRows(const Matrix& a, const Matrix& b);

/// Puts a to the left of b (row counts must match).
Matrix ConcatCols(const Matrix& a, const Matrix& b);

/// True when |a - b| <= atol + rtol*|b| element-wise (shapes must match).
/// A NaN or infinity on either side is always a mismatch: NaN ≠ anything
/// (including NaN), and an infinite difference is never "close" even
/// though an infinite |b| would inflate the rtol term to infinity.
bool AllClose(const Matrix& a, const Matrix& b, float rtol = 1e-5f,
              float atol = 1e-6f);

/// One-hot encodes integer labels into n×num_classes.
Matrix OneHot(const std::vector<int>& labels, int num_classes);

}  // namespace bgc

#endif  // BGC_TENSOR_MATRIX_OPS_H_
