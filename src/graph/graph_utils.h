#ifndef BGC_GRAPH_GRAPH_UTILS_H_
#define BGC_GRAPH_GRAPH_UTILS_H_

#include <vector>

#include "src/core/rng.h"
#include "src/graph/csr.h"

namespace bgc::graph {

/// Weighted out-degree of every node.
std::vector<float> Degrees(const CsrMatrix& adj);

/// Induced subgraph on `nodes`; node `nodes[i]` becomes node i. Edges with
/// an endpoint outside `nodes` are dropped.
CsrMatrix InducedSubgraph(const CsrMatrix& adj, const std::vector<int>& nodes);

/// Grows the graph by `num_extra` fresh nodes (ids n .. n+num_extra-1) and
/// inserts `extra_edges` (symmetrized). Existing edges are preserved.
/// This is the primitive behind trigger attachment.
CsrMatrix AugmentGraph(const CsrMatrix& adj, int num_extra,
                       const std::vector<Edge>& extra_edges);

/// Randomly keeps each undirected edge with probability `keep_prob`
/// (self-loops always kept). Both directions of a pair share one coin flip,
/// so the result stays symmetric. Used by the Randsmooth defense.
CsrMatrix DropEdges(const CsrMatrix& adj, double keep_prob, Rng& rng);

/// Fraction of (directed) edges whose endpoints share a label; self-loops
/// are ignored. Standard edge-homophily diagnostic for synthetic data.
double EdgeHomophily(const CsrMatrix& adj, const std::vector<int>& labels);

/// Nodes within `hops` of `seed` (including `seed`), in ascending id order.
/// The ego network is the computation graph G_C^i of a `hops`-layer GNN.
std::vector<int> EgoNetwork(const CsrMatrix& adj, int seed, int hops);

}  // namespace bgc::graph

#endif  // BGC_GRAPH_GRAPH_UTILS_H_
