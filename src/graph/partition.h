#ifndef BGC_GRAPH_PARTITION_H_
#define BGC_GRAPH_PARTITION_H_

// Out-of-core graph access and contiguous row-range CSR sharding.
//
// NeighborSource / FeatureSource abstract "one adjacency row" and "one
// feature row" so the neighbor sampler (src/nn/sampler.h) and sharded
// full-graph kernels work identically over an in-RAM CsrMatrix/Matrix and
// a memory-mapped bgcbin dataset (src/data/mmap_dataset.h). PartitionRows
// cuts [0, n) into contiguous row ranges with a bounded per-shard nnz;
// BuildShard materializes one range as a small CsrMatrix whose rows route
// through the existing sharded (row-partitioned, bit-deterministic) SpMM.
// ShardedMultiply therefore produces bytes identical to
// CsrMatrix::Multiply on the fully materialized graph — each output row is
// the same serial accumulation chain — while only ever holding one shard
// in RAM. See DESIGN.md §13 for the bit-exactness contract.

#include <vector>

#include "src/graph/csr.h"
#include "src/tensor/matrix.h"

namespace bgc::graph {

/// Read-only adjacency row access. Implementations must be deterministic:
/// the same node always yields the same (cols, vals) sequence, sorted by
/// column, with no duplicate columns.
class NeighborSource {
 public:
  virtual ~NeighborSource() = default;
  virtual int num_nodes() const = 0;
  /// Stored entries in `node`'s row. O(1) for both implementations.
  virtual int degree(int node) const = 0;
  /// Overwrites `cols`/`vals` with the row's column ids and weights.
  virtual void Row(int node, std::vector<int>* cols,
                   std::vector<float>* vals) const = 0;

  /// Sum of all degrees (== nnz of the full adjacency).
  long long TotalNnz() const;
};

/// Read-only feature row access (num_nodes × dim, row-major semantics).
class FeatureSource {
 public:
  virtual ~FeatureSource() = default;
  virtual int num_nodes() const = 0;
  virtual int dim() const = 0;
  /// Copies `node`'s feature row (dim floats) into `out`.
  virtual void CopyRow(int node, float* out) const = 0;

  /// Dense |nodes| × dim matrix of the given rows, in order. The float
  /// bits are copied verbatim, so training on gathered rows is
  /// bit-identical to slicing the in-RAM feature matrix.
  Matrix Gather(const std::vector<int>& nodes) const;
};

/// NeighborSource over an in-RAM CsrMatrix (borrowed, caller keeps alive).
class CsrNeighborSource : public NeighborSource {
 public:
  explicit CsrNeighborSource(const CsrMatrix& adj) : adj_(&adj) {}
  int num_nodes() const override { return adj_->rows(); }
  int degree(int node) const override { return adj_->RowNnz(node); }
  void Row(int node, std::vector<int>* cols,
           std::vector<float>* vals) const override;

 private:
  const CsrMatrix* adj_;
};

/// FeatureSource over an in-RAM Matrix (borrowed, caller keeps alive).
class MatrixFeatureSource : public FeatureSource {
 public:
  explicit MatrixFeatureSource(const Matrix& features) : m_(&features) {}
  int num_nodes() const override { return m_->rows(); }
  int dim() const override { return m_->cols(); }
  void CopyRow(int node, float* out) const override;

 private:
  const Matrix* m_;
};

/// Half-open contiguous row range [begin, end).
struct RowRange {
  int begin = 0;
  int end = 0;
  int size() const { return end - begin; }
};

/// Cuts [0, num_nodes) into contiguous ranges whose summed degree stays
/// <= max_nnz_per_shard (a single row heavier than the budget gets a
/// range of its own). Deterministic; ranges cover every row exactly once.
std::vector<RowRange> PartitionRows(const NeighborSource& source,
                                    long long max_nnz_per_shard);

/// Materializes `range` as a range.size() × num_nodes CsrMatrix whose row
/// r holds source row (range.begin + r).
CsrMatrix BuildShard(const NeighborSource& source, RowRange range);

/// source (n×n) * dense (n×m) computed one bounded-nnz shard at a time
/// through CsrMatrix::Multiply. Bit-identical to materializing the full
/// adjacency and multiplying once (rows are independent and each row's
/// accumulation chain is unchanged), with peak extra memory of one shard.
Matrix ShardedMultiply(const NeighborSource& source, const Matrix& dense,
                       long long max_nnz_per_shard);

}  // namespace bgc::graph

#endif  // BGC_GRAPH_PARTITION_H_
