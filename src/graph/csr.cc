#include "src/graph/csr.h"

#include <algorithm>
#include <cmath>

#include "src/core/check.h"

namespace bgc::graph {

CsrMatrix CsrMatrix::FromEdges(int rows, int cols,
                               const std::vector<Edge>& edges,
                               bool symmetrize) {
  BGC_CHECK_GE(rows, 0);
  BGC_CHECK_GE(cols, 0);
  std::vector<Edge> all;
  all.reserve(edges.size() * (symmetrize ? 2 : 1));
  for (const Edge& e : edges) {
    BGC_CHECK_GE(e.src, 0);
    BGC_CHECK_LT(e.src, rows);
    BGC_CHECK_GE(e.dst, 0);
    BGC_CHECK_LT(e.dst, cols);
    all.push_back(e);
    if (symmetrize && e.src != e.dst) {
      BGC_CHECK_EQ(rows, cols);
      all.push_back({e.dst, e.src, e.weight});
    }
  }
  std::sort(all.begin(), all.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(all.size());
  m.values_.reserve(all.size());
  size_t i = 0;
  for (int r = 0; r < rows; ++r) {
    while (i < all.size() && all[i].src == r) {
      // Coalesce duplicates by summing weights.
      int c = all[i].dst;
      float w = 0.0f;
      while (i < all.size() && all[i].src == r && all[i].dst == c) {
        w += all[i].weight;
        ++i;
      }
      m.col_idx_.push_back(c);
      m.values_.push_back(w);
    }
    m.row_ptr_[r + 1] = static_cast<int>(m.col_idx_.size());
  }
  return m;
}

CsrMatrix CsrMatrix::FromDense(const Matrix& dense, float threshold) {
  std::vector<Edge> edges;
  for (int i = 0; i < dense.rows(); ++i) {
    const float* row = dense.RowPtr(i);
    for (int j = 0; j < dense.cols(); ++j) {
      if (std::fabs(row[j]) > threshold) edges.push_back({i, j, row[j]});
    }
  }
  return FromEdges(dense.rows(), dense.cols(), edges, /*symmetrize=*/false);
}

CsrMatrix CsrMatrix::Identity(int n) {
  std::vector<Edge> edges;
  edges.reserve(n);
  for (int i = 0; i < n; ++i) edges.push_back({i, i, 1.0f});
  return FromEdges(n, n, edges, /*symmetrize=*/false);
}

float CsrMatrix::At(int r, int c) const {
  BGC_CHECK_GE(r, 0);
  BGC_CHECK_LT(r, rows_);
  const int begin = row_ptr_[r], end = row_ptr_[r + 1];
  auto it = std::lower_bound(col_idx_.begin() + begin, col_idx_.begin() + end,
                             c);
  if (it != col_idx_.begin() + end && *it == c) {
    return values_[static_cast<size_t>(it - col_idx_.begin())];
  }
  return 0.0f;
}

float CsrMatrix::RowWeightSum(int r) const {
  float s = 0.0f;
  for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) s += values_[k];
  return s;
}

Matrix CsrMatrix::Multiply(const Matrix& dense) const {
  BGC_CHECK_EQ(cols_, dense.rows());
  Matrix out(rows_, dense.cols());
  const int m = dense.cols();
  for (int r = 0; r < rows_; ++r) {
    float* orow = out.RowPtr(r);
    for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const float w = values_[k];
      const float* drow = dense.RowPtr(col_idx_[k]);
      for (int j = 0; j < m; ++j) orow[j] += w * drow[j];
    }
  }
  return out;
}

Matrix CsrMatrix::MultiplyTransposed(const Matrix& dense) const {
  BGC_CHECK_EQ(rows_, dense.rows());
  Matrix out(cols_, dense.cols());
  const int m = dense.cols();
  for (int r = 0; r < rows_; ++r) {
    const float* drow = dense.RowPtr(r);
    for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const float w = values_[k];
      float* orow = out.RowPtr(col_idx_[k]);
      for (int j = 0; j < m; ++j) orow[j] += w * drow[j];
    }
  }
  return out;
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out(r, col_idx_[k]) = values_[k];
    }
  }
  return out;
}

std::vector<Edge> CsrMatrix::ToEdges() const {
  std::vector<Edge> edges;
  edges.reserve(col_idx_.size());
  for (int r = 0; r < rows_; ++r) {
    for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      edges.push_back({r, col_idx_[k], values_[k]});
    }
  }
  return edges;
}

namespace {

/// Applies w_ij <- scale_i * w_ij * scale_j to every stored entry.
CsrMatrix ScaleSym(const CsrMatrix& adj, const std::vector<float>& scale) {
  CsrMatrix out = adj;
  auto& vals = out.mutable_values();
  const auto& rp = out.row_ptr();
  const auto& ci = out.col_idx();
  for (int r = 0; r < out.rows(); ++r) {
    for (int k = rp[r]; k < rp[r + 1]; ++k) {
      vals[k] *= scale[r] * scale[ci[k]];
    }
  }
  return out;
}

std::vector<float> InvSqrtDegrees(const CsrMatrix& adj) {
  std::vector<float> scale(adj.rows(), 0.0f);
  for (int r = 0; r < adj.rows(); ++r) {
    const float d = adj.RowWeightSum(r);
    scale[r] = d > 0.0f ? 1.0f / std::sqrt(d) : 0.0f;
  }
  return scale;
}

}  // namespace

CsrMatrix GcnNormalize(const CsrMatrix& adj) {
  BGC_CHECK_EQ(adj.rows(), adj.cols());
  // A + I, coalescing with any existing self-loops.
  std::vector<Edge> edges = adj.ToEdges();
  for (int i = 0; i < adj.rows(); ++i) edges.push_back({i, i, 1.0f});
  CsrMatrix hat = CsrMatrix::FromEdges(adj.rows(), adj.cols(), edges,
                                       /*symmetrize=*/false);
  return ScaleSym(hat, InvSqrtDegrees(hat));
}

CsrMatrix SymNormalize(const CsrMatrix& adj) {
  BGC_CHECK_EQ(adj.rows(), adj.cols());
  return ScaleSym(adj, InvSqrtDegrees(adj));
}

CsrMatrix RowNormalize(const CsrMatrix& adj) {
  CsrMatrix out = adj;
  auto& vals = out.mutable_values();
  const auto& rp = out.row_ptr();
  for (int r = 0; r < out.rows(); ++r) {
    const float d = adj.RowWeightSum(r);
    if (d <= 0.0f) continue;
    const float inv = 1.0f / d;
    for (int k = rp[r]; k < rp[r + 1]; ++k) vals[k] *= inv;
  }
  return out;
}

CsrMatrix ChebyOperator(const CsrMatrix& adj) {
  CsrMatrix norm = SymNormalize(adj);
  auto& vals = norm.mutable_values();
  for (auto& v : vals) v = -v;
  return norm;
}

}  // namespace bgc::graph
