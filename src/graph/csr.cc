#include "src/graph/csr.h"

#include <algorithm>
#include <cmath>

#include "src/core/check.h"
#include "src/core/parallel.h"
#include "src/obs/obs.h"
#include "src/tensor/simd/simd.h"

namespace bgc::graph {

namespace {

// Work units (stored entries × dense columns) per SpMM row chunk. Forward
// SpMM writes disjoint output rows, so this only tunes scheduling.
constexpr long long kSpmmChunkWork = 1 << 16;

// MultiplyTransposed scatters across output rows, so it is parallelized
// with one accumulator matrix per fixed input-row chunk, reduced in
// ascending chunk order. Chunk boundaries are a pure function of the row
// count (never the thread count), which keeps the result bit-identical for
// every BGC_NUM_THREADS; the thresholds below bound the extra accumulator
// memory and keep benchmark-scale graphs on the flat serial path.
constexpr int kScatterChunkRows = 1 << 14;
constexpr int kMaxScatterChunks = 8;

// Rows per chunk carrying about kSpmmChunkWork; degenerate shapes collapse
// to one chunk and run inline.
int SpmmRowGrain(long long nnz, int rows, int dense_cols) {
  if (rows <= 0 || nnz <= 0) return 1 << 20;
  const long long per_row =
      (nnz / rows + 1) * (dense_cols > 0 ? dense_cols : 1);
  const long long grain = kSpmmChunkWork / per_row;
  return grain < 1 ? 1 : static_cast<int>(grain);
}

}  // namespace

CsrMatrix CsrMatrix::FromCsrParts(int rows, int cols, std::vector<int> row_ptr,
                                  std::vector<int> col_idx,
                                  std::vector<float> values) {
  BGC_CHECK_GE(rows, 0);
  BGC_CHECK_GE(cols, 0);
  BGC_CHECK_EQ(static_cast<int>(row_ptr.size()), rows + 1);
  BGC_CHECK_EQ(row_ptr[0], 0);
  BGC_CHECK_EQ(row_ptr[rows], static_cast<int>(col_idx.size()));
  BGC_CHECK_EQ(col_idx.size(), values.size());
  for (int r = 0; r < rows; ++r) {
    BGC_CHECK_LE(row_ptr[r], row_ptr[r + 1]);
    for (int k = row_ptr[r]; k < row_ptr[r + 1]; ++k) {
      BGC_CHECK_GE(col_idx[k], 0);
      BGC_CHECK_LT(col_idx[k], cols);
      if (k > row_ptr[r]) BGC_CHECK_LT(col_idx[k - 1], col_idx[k]);
    }
  }
  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_ = std::move(row_ptr);
  m.col_idx_ = std::move(col_idx);
  m.values_ = std::move(values);
  return m;
}

CsrMatrix CsrMatrix::FromEdges(int rows, int cols,
                               const std::vector<Edge>& edges,
                               bool symmetrize) {
  BGC_CHECK_GE(rows, 0);
  BGC_CHECK_GE(cols, 0);
  std::vector<Edge> all;
  all.reserve(edges.size() * (symmetrize ? 2 : 1));
  for (const Edge& e : edges) {
    BGC_CHECK_GE(e.src, 0);
    BGC_CHECK_LT(e.src, rows);
    BGC_CHECK_GE(e.dst, 0);
    BGC_CHECK_LT(e.dst, cols);
    all.push_back(e);
    if (symmetrize && e.src != e.dst) {
      BGC_CHECK_EQ(rows, cols);
      all.push_back({e.dst, e.src, e.weight});
    }
  }
  std::sort(all.begin(), all.end(), [](const Edge& a, const Edge& b) {
    return a.src != b.src ? a.src < b.src : a.dst < b.dst;
  });

  CsrMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  m.row_ptr_.assign(rows + 1, 0);
  m.col_idx_.reserve(all.size());
  m.values_.reserve(all.size());
  size_t i = 0;
  for (int r = 0; r < rows; ++r) {
    while (i < all.size() && all[i].src == r) {
      // Coalesce duplicates by summing weights.
      int c = all[i].dst;
      float w = 0.0f;
      while (i < all.size() && all[i].src == r && all[i].dst == c) {
        w += all[i].weight;
        ++i;
      }
      m.col_idx_.push_back(c);
      m.values_.push_back(w);
    }
    m.row_ptr_[r + 1] = static_cast<int>(m.col_idx_.size());
  }
  return m;
}

CsrMatrix CsrMatrix::FromDense(const Matrix& dense, float threshold) {
  std::vector<Edge> edges;
  for (int i = 0; i < dense.rows(); ++i) {
    const float* row = dense.RowPtr(i);
    for (int j = 0; j < dense.cols(); ++j) {
      if (std::fabs(row[j]) > threshold) edges.push_back({i, j, row[j]});
    }
  }
  return FromEdges(dense.rows(), dense.cols(), edges, /*symmetrize=*/false);
}

CsrMatrix CsrMatrix::Identity(int n) {
  std::vector<Edge> edges;
  edges.reserve(n);
  for (int i = 0; i < n; ++i) edges.push_back({i, i, 1.0f});
  return FromEdges(n, n, edges, /*symmetrize=*/false);
}

float CsrMatrix::At(int r, int c) const {
  BGC_CHECK_GE(r, 0);
  BGC_CHECK_LT(r, rows_);
  const int begin = row_ptr_[r], end = row_ptr_[r + 1];
  auto it = std::lower_bound(col_idx_.begin() + begin, col_idx_.begin() + end,
                             c);
  if (it != col_idx_.begin() + end && *it == c) {
    return values_[static_cast<size_t>(it - col_idx_.begin())];
  }
  return 0.0f;
}

float CsrMatrix::RowWeightSum(int r) const {
  BGC_CHECK_GE(r, 0);
  BGC_CHECK_LT(r, rows_);
  float s = 0.0f;
  for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) s += values_[k];
  return s;
}

CsrMatrix CsrMatrix::WithSelfLoops(float weight) const {
  BGC_CHECK_EQ(rows_, cols_);
  CsrMatrix out;
  out.rows_ = rows_;
  out.cols_ = cols_;
  out.row_ptr_.assign(rows_ + 1, 0);
  // Pass 1: per-row output size (one extra slot unless the diagonal is
  // already stored). Disjoint writes, then a serial prefix sum.
  std::vector<int> extra(rows_, 0);
  ParallelFor(0, rows_, 1 << 12, [&](int r0, int r1) {
    for (int r = r0; r < r1; ++r) {
      const int begin = row_ptr_[r], end = row_ptr_[r + 1];
      const bool has_diag = std::binary_search(col_idx_.begin() + begin,
                                               col_idx_.begin() + end, r);
      extra[r] = has_diag ? 0 : 1;
    }
  });
  for (int r = 0; r < rows_; ++r) {
    out.row_ptr_[r + 1] = out.row_ptr_[r] + RowNnz(r) + extra[r];
  }
  out.col_idx_.resize(out.row_ptr_[rows_]);
  out.values_.resize(out.row_ptr_[rows_]);
  // Pass 2: merge-copy each row with the diagonal inserted (or summed) at
  // its sorted position. Rows write disjoint slices of the output.
  ParallelFor(0, rows_, 1 << 10, [&](int r0, int r1) {
    for (int r = r0; r < r1; ++r) {
      int o = out.row_ptr_[r];
      bool placed = false;
      for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        const int c = col_idx_[k];
        if (!placed && c >= r) {
          if (c == r) {
            out.col_idx_[o] = r;
            out.values_[o] = values_[k] + weight;
            ++o;
            placed = true;
            continue;
          }
          out.col_idx_[o] = r;
          out.values_[o] = weight;
          ++o;
          placed = true;
        }
        out.col_idx_[o] = c;
        out.values_[o] = values_[k];
        ++o;
      }
      if (!placed) {
        out.col_idx_[o] = r;
        out.values_[o] = weight;
      }
    }
  });
  return out;
}

Matrix CsrMatrix::Multiply(const Matrix& dense) const {
  BGC_CHECK_EQ(cols_, dense.rows());
  BGC_TRACE_SCOPE("graph.spmm");
  BGC_COUNTER_ADD("graph.spmm.calls", 1);
  BGC_COUNTER_ADD("graph.spmm.nnz", nnz());
  BGC_COUNTER_ADD("graph.spmm.flops", 2LL * nnz() * dense.cols());
  Matrix out(rows_, dense.cols());
  const int m = dense.cols();
  // Row-partitioned: each chunk owns a disjoint slice of `out`, and the
  // per-row accumulation order is untouched, so the result is bit-identical
  // to the serial loop at every thread count. The dense column axis j is
  // the SIMD axis (separate mul+add per lane; see src/tensor/simd/simd.h).
  const simd::KernelTable& kt = simd::Kernels();
  ParallelFor(0, rows_, SpmmRowGrain(nnz(), rows_, m), [&](int r0, int r1) {
    for (int r = r0; r < r1; ++r) {
      float* orow = out.RowPtr(r);
      for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        kt.axpy(orow, dense.RowPtr(col_idx_[k]), values_[k], m);
      }
    }
  });
  return out;
}

Matrix CsrMatrix::MultiplyTransposed(const Matrix& dense) const {
  BGC_CHECK_EQ(rows_, dense.rows());
  BGC_TRACE_SCOPE("graph.spmm_t");
  BGC_COUNTER_ADD("graph.spmm.calls", 1);
  BGC_COUNTER_ADD("graph.spmm.nnz", nnz());
  BGC_COUNTER_ADD("graph.spmm.flops", 2LL * nnz() * dense.cols());
  Matrix out(cols_, dense.cols());
  const int m = dense.cols();
  // Scatters row r of `dense` into output row col_idx_[k]: rows race under
  // naive partitioning. Instead each fixed chunk of input rows scatters
  // into its own accumulator, and the accumulators are reduced in
  // ascending chunk order (see constants above for the determinism
  // rationale).
  const simd::KernelTable& kt = simd::Kernels();
  auto scatter = [&](Matrix& acc, int r0, int r1) {
    for (int r = r0; r < r1; ++r) {
      const float* drow = dense.RowPtr(r);
      for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
        kt.axpy(acc.RowPtr(col_idx_[k]), drow, values_[k], m);
      }
    }
  };
  const int chunks = std::min(
      kMaxScatterChunks, NumFixedChunks(rows_, kScatterChunkRows));
  if (chunks <= 1) {
    scatter(out, 0, rows_);
    return out;
  }
  // Even split; boundaries depend only on rows_ and the fixed chunk count.
  auto boundary = [&](int c) {
    return static_cast<int>(static_cast<long long>(rows_) * c / chunks);
  };
  std::vector<Matrix> acc(chunks - 1);
  ThreadPool::Global().Run(chunks, [&](int c) {
    // Chunk 0 scatters straight into `out`; the rest get accumulators.
    Matrix& dst = c == 0 ? out : acc[c - 1];
    if (c != 0) dst = Matrix(cols_, m);
    scatter(dst, boundary(c), boundary(c + 1));
  });
  for (int c = 1; c < chunks; ++c) {
    const float* src = acc[c - 1].data();
    float* dst = out.data();
    const int size = out.size();
    ParallelFor(0, size, kElementwiseGrain, [&](int i0, int i1) {
      kt.add(dst + i0, src + i0, i1 - i0);
    });
  }
  return out;
}

Matrix CsrMatrix::ToDense() const {
  Matrix out(rows_, cols_);
  for (int r = 0; r < rows_; ++r) {
    for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      out(r, col_idx_[k]) = values_[k];
    }
  }
  return out;
}

std::vector<Edge> CsrMatrix::ToEdges() const {
  std::vector<Edge> edges;
  edges.reserve(col_idx_.size());
  for (int r = 0; r < rows_; ++r) {
    for (int k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      edges.push_back({r, col_idx_[k], values_[k]});
    }
  }
  return edges;
}

namespace {

/// Applies w_ij <- scale_i * w_ij * scale_j to every stored entry.
/// Row-partitioned; per-entry arithmetic is independent, so the result is
/// bit-identical at every thread count.
CsrMatrix ScaleSym(const CsrMatrix& adj, const std::vector<float>& scale) {
  CsrMatrix out = adj;
  auto& vals = out.mutable_values();
  const auto& rp = out.row_ptr();
  const auto& ci = out.col_idx();
  ParallelFor(0, out.rows(), 1 << 12, [&](int r0, int r1) {
    for (int r = r0; r < r1; ++r) {
      for (int k = rp[r]; k < rp[r + 1]; ++k) {
        vals[k] *= scale[r] * scale[ci[k]];
      }
    }
  });
  return out;
}

std::vector<float> InvSqrtDegrees(const CsrMatrix& adj) {
  std::vector<float> scale(adj.rows(), 0.0f);
  ParallelFor(0, adj.rows(), 1 << 12, [&](int r0, int r1) {
    for (int r = r0; r < r1; ++r) {
      const float d = adj.RowWeightSum(r);
      scale[r] = d > 0.0f ? 1.0f / std::sqrt(d) : 0.0f;
    }
  });
  return scale;
}

}  // namespace

CsrMatrix GcnNormalize(const CsrMatrix& adj) {
  BGC_CHECK_EQ(adj.rows(), adj.cols());
  BGC_TRACE_SCOPE("graph.normalize");
  // A + I merged in-place on the CSR structure (linear, parallel) instead
  // of the old ToEdges → push → sort → FromEdges round trip, which was
  // O(E log E) per call inside benchmarked loops.
  CsrMatrix hat = adj.WithSelfLoops(1.0f);
  return ScaleSym(hat, InvSqrtDegrees(hat));
}

CsrMatrix SymNormalize(const CsrMatrix& adj) {
  BGC_CHECK_EQ(adj.rows(), adj.cols());
  return ScaleSym(adj, InvSqrtDegrees(adj));
}

CsrMatrix RowNormalize(const CsrMatrix& adj) {
  CsrMatrix out = adj;
  auto& vals = out.mutable_values();
  const auto& rp = out.row_ptr();
  ParallelFor(0, out.rows(), 1 << 12, [&](int r0, int r1) {
    for (int r = r0; r < r1; ++r) {
      const float d = adj.RowWeightSum(r);
      if (d <= 0.0f) continue;
      const float inv = 1.0f / d;
      for (int k = rp[r]; k < rp[r + 1]; ++k) vals[k] *= inv;
    }
  });
  return out;
}

CsrMatrix ChebyOperator(const CsrMatrix& adj) {
  CsrMatrix norm = SymNormalize(adj);
  auto& vals = norm.mutable_values();
  for (auto& v : vals) v = -v;
  return norm;
}

}  // namespace bgc::graph
