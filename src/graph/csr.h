#ifndef BGC_GRAPH_CSR_H_
#define BGC_GRAPH_CSR_H_

#include <utility>
#include <vector>

#include "src/tensor/matrix.h"

namespace bgc::graph {

/// Directed edge with an optional weight (1.0 for unweighted graphs).
struct Edge {
  int src = 0;
  int dst = 0;
  float weight = 1.0f;
};

/// Compressed sparse row matrix over float weights.
///
/// The adjacency structure of every graph in the library is a CsrMatrix.
/// Construction happens through the static builders, which sort and
/// deduplicate entries (duplicate coordinates are summed). Instances are
/// immutable after construction; graph edits (e.g. trigger attachment,
/// defense pruning) build a new CsrMatrix.
class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds from a COO triplet list. If `symmetrize` is true, every edge
  /// (u, v) also inserts (v, u). Self-loops in the input are kept as given.
  static CsrMatrix FromEdges(int rows, int cols, const std::vector<Edge>& edges,
                             bool symmetrize);

  /// Builds from a dense matrix, keeping entries with |value| > threshold.
  static CsrMatrix FromDense(const Matrix& dense, float threshold = 0.0f);

  /// Adopts already-valid CSR arrays without the FromEdges sort/coalesce
  /// pass: row_ptr must have rows+1 entries starting at 0, nondecreasing,
  /// ending at col_idx.size() == values.size(), and every row's columns
  /// must be strictly increasing within [0, cols). Checked (aborts on
  /// violation); used by the shard builder (graph/partition.h), whose rows
  /// arrive presorted.
  static CsrMatrix FromCsrParts(int rows, int cols, std::vector<int> row_ptr,
                                std::vector<int> col_idx,
                                std::vector<float> values);

  /// n×n identity.
  static CsrMatrix Identity(int n);

  int rows() const { return rows_; }
  int cols() const { return cols_; }
  /// Number of stored entries.
  int nnz() const { return static_cast<int>(col_idx_.size()); }

  const std::vector<int>& row_ptr() const { return row_ptr_; }
  const std::vector<int>& col_idx() const { return col_idx_; }
  const std::vector<float>& values() const { return values_; }

  /// Mutable values (structure stays fixed); used by normalization.
  std::vector<float>& mutable_values() { return values_; }

  /// Entry (r, c), 0 if not stored. O(log degree).
  float At(int r, int c) const;

  /// Out-degree (stored entries) of row r.
  int RowNnz(int r) const { return row_ptr_[r + 1] - row_ptr_[r]; }

  /// Sum of stored values in row r.
  float RowWeightSum(int r) const;

  /// A + weight·I for a square matrix, merged in one linear pass over the
  /// CSR structure (no edge-list round trip); an existing diagonal entry is
  /// summed with `weight`.
  CsrMatrix WithSelfLoops(float weight = 1.0f) const;

  /// Dense n×m product: this (n×k) * dense (k×m).
  Matrix Multiply(const Matrix& dense) const;

  /// thisᵀ * dense without materializing the transpose.
  Matrix MultiplyTransposed(const Matrix& dense) const;

  /// Materializes to a dense matrix (small graphs / tests only).
  Matrix ToDense() const;

  /// Returns the COO triplets (sorted by row then column).
  std::vector<Edge> ToEdges() const;

 private:
  int rows_ = 0;
  int cols_ = 0;
  std::vector<int> row_ptr_{0};
  std::vector<int> col_idx_;
  std::vector<float> values_;
};

/// Symmetric GCN normalization: D̂^{-1/2} (A + I) D̂^{-1/2} where D̂ is the
/// degree of A + I. This is the propagation operator of Kipf & Welling GCNs
/// and of SGC; all condensation surrogates use it.
CsrMatrix GcnNormalize(const CsrMatrix& adj);

/// Symmetric normalization without adding self-loops:
/// D^{-1/2} A D^{-1/2} (rows/cols with zero degree stay zero).
CsrMatrix SymNormalize(const CsrMatrix& adj);

/// Row normalization D^{-1} A (mean aggregation for GraphSAGE).
CsrMatrix RowNormalize(const CsrMatrix& adj);

/// Scaled Chebyshev operator L̃ = -D^{-1/2} A D^{-1/2} under the standard
/// λ_max ≈ 2 approximation (so L̃ = 2L/λ_max - I with L the normalized
/// Laplacian). Used by ChebyNet.
CsrMatrix ChebyOperator(const CsrMatrix& adj);

}  // namespace bgc::graph

#endif  // BGC_GRAPH_CSR_H_
