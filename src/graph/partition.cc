#include "src/graph/partition.h"

#include <cstring>

#include "src/core/check.h"
#include "src/obs/obs.h"

namespace bgc::graph {

long long NeighborSource::TotalNnz() const {
  long long nnz = 0;
  for (int i = 0; i < num_nodes(); ++i) nnz += degree(i);
  return nnz;
}

Matrix FeatureSource::Gather(const std::vector<int>& nodes) const {
  BGC_TRACE_SCOPE("graph.feature_gather");
  Matrix out(static_cast<int>(nodes.size()), dim());
  for (size_t i = 0; i < nodes.size(); ++i) {
    BGC_CHECK_GE(nodes[i], 0);
    BGC_CHECK_LT(nodes[i], num_nodes());
    CopyRow(nodes[i], out.RowPtr(static_cast<int>(i)));
  }
  return out;
}

void CsrNeighborSource::Row(int node, std::vector<int>* cols,
                            std::vector<float>* vals) const {
  BGC_CHECK_GE(node, 0);
  BGC_CHECK_LT(node, adj_->rows());
  const int begin = adj_->row_ptr()[node];
  const int end = adj_->row_ptr()[node + 1];
  cols->assign(adj_->col_idx().begin() + begin, adj_->col_idx().begin() + end);
  vals->assign(adj_->values().begin() + begin, adj_->values().begin() + end);
}

void MatrixFeatureSource::CopyRow(int node, float* out) const {
  std::memcpy(out, m_->RowPtr(node),
              static_cast<size_t>(m_->cols()) * sizeof(float));
}

std::vector<RowRange> PartitionRows(const NeighborSource& source,
                                    long long max_nnz_per_shard) {
  BGC_CHECK_GT(max_nnz_per_shard, 0);
  std::vector<RowRange> ranges;
  const int n = source.num_nodes();
  int begin = 0;
  long long nnz = 0;
  for (int i = 0; i < n; ++i) {
    const long long d = source.degree(i);
    if (i > begin && nnz + d > max_nnz_per_shard) {
      ranges.push_back({begin, i});
      begin = i;
      nnz = 0;
    }
    nnz += d;
  }
  if (begin < n) ranges.push_back({begin, n});
  return ranges;
}

CsrMatrix BuildShard(const NeighborSource& source, RowRange range) {
  BGC_CHECK_GE(range.begin, 0);
  BGC_CHECK_LE(range.begin, range.end);
  BGC_CHECK_LE(range.end, source.num_nodes());
  std::vector<int> row_ptr;
  row_ptr.reserve(static_cast<size_t>(range.size()) + 1);
  row_ptr.push_back(0);
  std::vector<int> col_idx;
  std::vector<float> values;
  std::vector<int> cols;
  std::vector<float> vals;
  for (int i = range.begin; i < range.end; ++i) {
    source.Row(i, &cols, &vals);
    col_idx.insert(col_idx.end(), cols.begin(), cols.end());
    values.insert(values.end(), vals.begin(), vals.end());
    row_ptr.push_back(static_cast<int>(col_idx.size()));
  }
  return CsrMatrix::FromCsrParts(range.size(), source.num_nodes(),
                                 std::move(row_ptr), std::move(col_idx),
                                 std::move(values));
}

Matrix ShardedMultiply(const NeighborSource& source, const Matrix& dense,
                       long long max_nnz_per_shard) {
  BGC_TRACE_SCOPE("graph.sharded_spmm");
  BGC_CHECK_EQ(source.num_nodes(), dense.rows());
  Matrix out(source.num_nodes(), dense.cols());
  const std::vector<RowRange> ranges =
      PartitionRows(source, max_nnz_per_shard);
  BGC_COUNTER_ADD("graph.sharded_spmm.shards",
                  static_cast<long long>(ranges.size()));
  for (const RowRange& range : ranges) {
    const CsrMatrix shard = BuildShard(source, range);
    const Matrix part = shard.Multiply(dense);
    std::memcpy(out.RowPtr(range.begin), part.data(),
                static_cast<size_t>(part.size()) * sizeof(float));
  }
  return out;
}

}  // namespace bgc::graph
