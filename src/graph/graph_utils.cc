#include "src/graph/graph_utils.h"

#include <algorithm>
#include <queue>

#include "src/core/check.h"

namespace bgc::graph {

std::vector<float> Degrees(const CsrMatrix& adj) {
  std::vector<float> deg(adj.rows());
  for (int r = 0; r < adj.rows(); ++r) deg[r] = adj.RowWeightSum(r);
  return deg;
}

CsrMatrix InducedSubgraph(const CsrMatrix& adj,
                          const std::vector<int>& nodes) {
  std::vector<int> remap(adj.rows(), -1);
  for (size_t i = 0; i < nodes.size(); ++i) {
    BGC_CHECK_GE(nodes[i], 0);
    BGC_CHECK_LT(nodes[i], adj.rows());
    BGC_CHECK_EQ(remap[nodes[i]], -1);  // no duplicates
    remap[nodes[i]] = static_cast<int>(i);
  }
  std::vector<Edge> edges;
  const auto& rp = adj.row_ptr();
  const auto& ci = adj.col_idx();
  const auto& vals = adj.values();
  for (int old_src : nodes) {
    for (int k = rp[old_src]; k < rp[old_src + 1]; ++k) {
      const int old_dst = ci[k];
      if (remap[old_dst] < 0) continue;
      edges.push_back({remap[old_src], remap[old_dst], vals[k]});
    }
  }
  return CsrMatrix::FromEdges(static_cast<int>(nodes.size()),
                              static_cast<int>(nodes.size()), edges,
                              /*symmetrize=*/false);
}

CsrMatrix AugmentGraph(const CsrMatrix& adj, int num_extra,
                       const std::vector<Edge>& extra_edges) {
  BGC_CHECK_GE(num_extra, 0);
  const int n = adj.rows() + num_extra;
  std::vector<Edge> edges = adj.ToEdges();
  for (const Edge& e : extra_edges) {
    edges.push_back(e);
    if (e.src != e.dst) edges.push_back({e.dst, e.src, e.weight});
  }
  return CsrMatrix::FromEdges(n, n, edges, /*symmetrize=*/false);
}

CsrMatrix DropEdges(const CsrMatrix& adj, double keep_prob, Rng& rng) {
  std::vector<Edge> kept;
  const auto& rp = adj.row_ptr();
  const auto& ci = adj.col_idx();
  const auto& vals = adj.values();
  for (int r = 0; r < adj.rows(); ++r) {
    for (int k = rp[r]; k < rp[r + 1]; ++k) {
      const int c = ci[k];
      if (c == r) {
        kept.push_back({r, c, vals[k]});
        continue;
      }
      // Flip one coin per undirected pair at its (src < dst) visit and
      // mirror the decision.
      if (r < c) {
        if (rng.Bernoulli(keep_prob)) {
          kept.push_back({r, c, vals[k]});
          kept.push_back({c, r, adj.At(c, r)});
        }
      }
    }
  }
  return CsrMatrix::FromEdges(adj.rows(), adj.cols(), kept,
                              /*symmetrize=*/false);
}

double EdgeHomophily(const CsrMatrix& adj, const std::vector<int>& labels) {
  BGC_CHECK_EQ(static_cast<int>(labels.size()), adj.rows());
  const auto& rp = adj.row_ptr();
  const auto& ci = adj.col_idx();
  long long total = 0, same = 0;
  for (int r = 0; r < adj.rows(); ++r) {
    for (int k = rp[r]; k < rp[r + 1]; ++k) {
      if (ci[k] == r) continue;
      ++total;
      if (labels[r] == labels[ci[k]]) ++same;
    }
  }
  return total == 0 ? 0.0
                    : static_cast<double>(same) / static_cast<double>(total);
}

std::vector<int> EgoNetwork(const CsrMatrix& adj, int seed, int hops) {
  BGC_CHECK_GE(seed, 0);
  BGC_CHECK_LT(seed, adj.rows());
  std::vector<int> dist(adj.rows(), -1);
  std::queue<int> frontier;
  dist[seed] = 0;
  frontier.push(seed);
  std::vector<int> out;
  const auto& rp = adj.row_ptr();
  const auto& ci = adj.col_idx();
  while (!frontier.empty()) {
    int u = frontier.front();
    frontier.pop();
    out.push_back(u);
    if (dist[u] == hops) continue;
    for (int k = rp[u]; k < rp[u + 1]; ++k) {
      int v = ci[k];
      if (dist[v] < 0) {
        dist[v] = dist[u] + 1;
        frontier.push(v);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace bgc::graph
