#include "src/attack/naive.h"

#include <algorithm>

#include "src/attack/attach.h"
#include "src/attack/surrogate.h"
#include "src/core/check.h"

namespace bgc::attack {

AttackResult RunNaivePoison(const condense::SourceGraph& clean,
                            int num_classes, condense::Condenser& condenser,
                            const condense::CondenseConfig& condense_config,
                            const AttackConfig& attack_config, Rng& rng) {
  AttackResult result;
  // Step 1: honest condensation of the clean graph.
  condense::CondensedGraph condensed = RunCondensation(
      condenser, clean, num_classes, condense_config, rng);

  // Step 2: a surrogate fitted to the condensed data and a trigger
  // generator trained against it, both operating on the condensed graph.
  condense::SourceGraph condensed_as_source;
  condensed_as_source.adj = condensed.adj;
  condensed_as_source.features = condensed.features;
  condensed_as_source.labels = condensed.labels;
  condensed_as_source.labeled.resize(condensed.features.rows());
  for (int i = 0; i < condensed.features.rows(); ++i) {
    condensed_as_source.labeled[i] = i;
  }

  SurrogateGcn surrogate(clean.features.cols(),
                         attack_config.surrogate_hidden, num_classes);
  surrogate.Init(rng);
  surrogate.Train(condensed, 4 * attack_config.surrogate_steps,
                  attack_config.surrogate_lr, rng);
  // Naive injection is the clumsy adaptation of a conventional graph
  // backdoor: it does not temper the trigger payload for a 100-node
  // dataset, so its features sit far outside the data distribution (4x the
  // adaptive bound). This is what collapses CTA in Table 1.
  AttackConfig naive_cfg = attack_config;
  if (naive_cfg.trigger_feature_scale <= 0.0f) {
    naive_cfg.trigger_feature_scale =
        4.0f * ResolveTriggerFeatureScale(attack_config, clean.features);
  }
  result.generator = MakeTriggerGenerator(
      naive_cfg, clean.features.cols(), naive_cfg.trigger_feature_scale,
      rng);

  std::vector<int> non_target;
  for (int i = 0; i < static_cast<int>(condensed.labels.size()); ++i) {
    if (condensed.labels[i] != attack_config.target_class) {
      non_target.push_back(i);
    }
  }
  BGC_CHECK(!non_target.empty());
  const int steps =
      std::max(20, condense_config.epochs * attack_config.generator_steps / 4);
  for (int s = 0; s < steps; ++s) {
    const int take =
        std::min<int>(attack_config.update_batch, non_target.size());
    std::vector<int> picks = rng.SampleWithoutReplacement(
        static_cast<int>(non_target.size()), take);
    std::vector<int> update_nodes;
    update_nodes.reserve(take);
    for (int i : picks) update_nodes.push_back(non_target[i]);
    result.generator->TrainStep(condensed_as_source, surrogate, update_nodes,
                                attack_config.target_class,
                                attack_config.ego, rng);
  }

  // Step 3: poison the condensed graph directly.
  const int budget = std::max(
      1, static_cast<int>(attack_config.poison_ratio *
                          condensed.features.rows()));
  const int take = std::min<int>(budget, non_target.size());
  std::vector<int> picks = rng.SampleWithoutReplacement(
      static_cast<int>(non_target.size()), take);
  std::vector<int> hosts;
  hosts.reserve(take);
  for (int i : picks) hosts.push_back(non_target[i]);
  std::sort(hosts.begin(), hosts.end());

  // Direct injection: each poisoned synthetic node is overwritten with the
  // trigger payload and relabeled. Every synthetic node distills many real
  // nodes, so clobbering ~10% of the prototypes removes real class coverage
  // outright — the CTA collapse of Table 1 that motivates BGC.
  auto triggers = result.generator->Generate(condensed_as_source, hosts);
  for (size_t i = 0; i < hosts.size(); ++i) {
    condensed_as_source.features.SetRow(hosts[i],
                                        triggers[i].features.RowPtr(0));
  }
  condense::SourceGraph poisoned = BuildPoisonedSource(
      condensed_as_source, hosts, triggers, attack_config.target_class);

  result.condensed.adj = poisoned.adj;
  result.condensed.features = poisoned.features;
  result.condensed.labels = poisoned.labels;
  result.condensed.num_classes = num_classes;
  result.condensed.use_structure = true;  // trigger edges add structure
  result.poisoned_nodes = hosts;
  return result;
}

}  // namespace bgc::attack
