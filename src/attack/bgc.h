#ifndef BGC_ATTACK_BGC_H_
#define BGC_ATTACK_BGC_H_

#include <memory>
#include <string>
#include <vector>

#include "src/attack/ego.h"
#include "src/attack/trigger.h"
#include "src/condense/condenser.h"

namespace bgc::attack {

/// Attack hyper-parameters (paper §5: trigger size 4, poisoning ratio 0.1,
/// generator lr searched in {0.01..0.5}, generator updates per condensation
/// epoch).
struct AttackConfig {
  int target_class = 0;
  int trigger_size = 4;          // Δ_g
  int poison_budget = 0;         // Δ_P; when 0, poison_ratio × |labeled|
  double poison_ratio = 0.1;
  int clusters_per_class = 4;    // K (selector)
  float selector_lambda = 0.1f;  // λ (Eq. 9)
  int selector_epochs = 60;
  int surrogate_steps = 30;      // T (Eq. 16)
  int generator_steps = 2;       // M (Eq. 17)
  float generator_lr = 0.05f;
  float surrogate_lr = 0.01f;
  int surrogate_hidden = 32;
  int generator_hidden = 32;
  int update_batch = 16;         // |V_U| sample per generator step
  /// Bound on generated trigger feature magnitude; 0 = auto (3× the mean
  /// absolute feature value of the clean graph).
  float trigger_feature_scale = 0.0f;
  EgoParams ego;
  // "representative" (BGC) or "random" (BGC_Rand, Fig. 3).
  std::string selection = "representative";
  /// Extension (clean-label backdoor, cf. PerCBA): poison only nodes whose
  /// label already IS the target class and never flip labels — stealthier,
  /// typically needing a larger budget for the same ASR.
  bool clean_label = false;
  // "adaptive" (BGC/GTA) or "universal" (DOORPING).
  std::string trigger_type = "adaptive";
  uint64_t seed = 0;
};

/// Everything the attacker hands to / retains from a run: the poisoned
/// condensed graph shipped to the victim, the trained trigger generator
/// used at inference time, and the poisoned node set.
struct AttackResult {
  condense::CondensedGraph condensed;
  std::shared_ptr<TriggerGenerator> generator;
  std::vector<int> poisoned_nodes;
};

/// Resolves Δ_P from config and labeled-set size.
int ResolvePoisonBudget(const AttackConfig& config, int labeled_size);

/// Resolves the trigger feature bound (auto mode uses the data scale).
float ResolveTriggerFeatureScale(const AttackConfig& config,
                                 const Matrix& features);

/// Creates the configured trigger generator.
std::shared_ptr<TriggerGenerator> MakeTriggerGenerator(
    const AttackConfig& config, int in_dim, float feature_scale, Rng& rng);

/// BGC (Algorithm 1): select representative poisoned nodes, then per
/// condensation epoch (re)train the surrogate on the current condensed
/// graph, update the trigger generator against it, rebuild the poisoned
/// source with fresh triggers, and advance the condensation one epoch.
/// Also runs DOORPING (trigger_type = "universal") and BGC_Rand
/// (selection = "random") — they share the dynamic loop.
AttackResult RunBgc(const condense::SourceGraph& clean, int num_classes,
                    condense::Condenser& condenser,
                    const condense::CondenseConfig& condense_config,
                    const AttackConfig& attack_config, Rng& rng);

}  // namespace bgc::attack

#endif  // BGC_ATTACK_BGC_H_
