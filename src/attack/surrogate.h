#ifndef BGC_ATTACK_SURROGATE_H_
#define BGC_ATTACK_SURROGATE_H_

#include "src/autograd/tape.h"
#include "src/condense/condenser.h"
#include "src/core/rng.h"
#include "src/nn/param.h"

namespace bgc::attack {

/// The attacker's surrogate model f_c: a 2-layer GCN trained on the current
/// condensed graph S (Eq. 12 / Alg. 1 lines 5-8). Weights are exposed so the
/// trigger generator can differentiate through a dense forward pass on
/// trigger-augmented computation graphs (Eq. 13).
class SurrogateGcn {
 public:
  SurrogateGcn(int in_dim, int hidden_dim, int out_dim);

  /// Reinitializes the weights (Alg. 1 line 5, executed every outer epoch).
  void Init(Rng& rng);

  /// Trains for `steps` Adam steps on the condensed graph. Returns final
  /// loss.
  float Train(const condense::CondensedGraph& condensed, int steps, float lr,
              Rng& rng);

  /// Trains on an arbitrary graph with supervision restricted to
  /// `train_idx` (all rows when empty). Used by the GTA baseline, whose
  /// surrogate sees the original graph.
  float TrainOnGraph(const graph::CsrMatrix& adj, const Matrix& x,
                     const std::vector<int>& labels,
                     const std::vector<int>& train_idx, int steps, float lr,
                     Rng& rng);

  /// Dense differentiable forward: logits = Â relu(Â X W1 + b1) W2 + b2
  /// where `adj_norm` is an already-normalized dense operator on the tape
  /// and weights enter as constants (the generator's loss treats f_c as
  /// fixed).
  ag::Var DenseForwardFixed(ag::Tape& tape, ag::Var adj_norm, ag::Var x) const;

  /// Sparse inference logits on a real graph (no tape bookkeeping).
  Matrix Predict(const graph::CsrMatrix& adj, const Matrix& x) const;

  int hidden_dim() const { return w1_.value.cols(); }
  int out_dim() const { return w2_.value.cols(); }

 private:
  nn::Param w1_, b1_, w2_, b2_;
};

}  // namespace bgc::attack

#endif  // BGC_ATTACK_SURROGATE_H_
