#ifndef BGC_ATTACK_KMEANS_H_
#define BGC_ATTACK_KMEANS_H_

#include <vector>

#include "src/core/rng.h"
#include "src/tensor/matrix.h"

namespace bgc::attack {

/// Result of a K-Means clustering run.
struct KMeansResult {
  Matrix centroids;            // k×d
  std::vector<int> assignment; // row -> cluster in [0, k)
  /// Number of centroids actually produced: min(requested k, num points).
  /// Consumers sizing per-cluster quotas must divide by this, not by the
  /// requested k — a small pool silently shrinks the clustering.
  int k = 0;
};

/// Lloyd's algorithm with k-means++ seeding on the rows of `points`.
/// `k` is clamped to the number of points. Deterministic given `rng`.
KMeansResult KMeans(const Matrix& points, int k, Rng& rng,
                    int max_iters = 50);

}  // namespace bgc::attack

#endif  // BGC_ATTACK_KMEANS_H_
