#ifndef BGC_ATTACK_NAIVE_H_
#define BGC_ATTACK_NAIVE_H_

#include "src/attack/bgc.h"

namespace bgc::attack {

/// Naive Poison baseline (Table 1): condense the clean graph, then inject
/// triggers *directly into the condensed graph* — relabeling a slice of
/// the few synthetic nodes to the target class and attaching generated
/// trigger subgraphs to them. With only tens of synthetic nodes, the flipped
/// labels and out-of-distribution trigger nodes wreck the condensed data's
/// quality; this is the motivating failure the paper's Table 1 reports
/// (CTA collapse) and the reason BGC poisons the original graph instead.
AttackResult RunNaivePoison(const condense::SourceGraph& clean,
                            int num_classes, condense::Condenser& condenser,
                            const condense::CondenseConfig& condense_config,
                            const AttackConfig& attack_config, Rng& rng);

}  // namespace bgc::attack

#endif  // BGC_ATTACK_NAIVE_H_
