#include "src/attack/surrogate.h"

#include "src/core/check.h"
#include "src/nn/optimizer.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::attack {

SurrogateGcn::SurrogateGcn(int in_dim, int hidden_dim, int out_dim)
    : w1_(Matrix(in_dim, hidden_dim)),
      b1_(Matrix(1, hidden_dim)),
      w2_(Matrix(hidden_dim, out_dim)),
      b2_(Matrix(1, out_dim)) {}

void SurrogateGcn::Init(Rng& rng) {
  w1_ = nn::Param(
      Matrix::GlorotUniform(w1_.value.rows(), w1_.value.cols(), rng));
  b1_ = nn::Param(Matrix(1, b1_.value.cols()));
  w2_ = nn::Param(
      Matrix::GlorotUniform(w2_.value.rows(), w2_.value.cols(), rng));
  b2_ = nn::Param(Matrix(1, b2_.value.cols()));
}

float SurrogateGcn::Train(const condense::CondensedGraph& condensed,
                          int steps, float lr, Rng& rng) {
  return TrainOnGraph(condensed.adj, condensed.features, condensed.labels,
                      /*train_idx=*/{}, steps, lr, rng);
}

float SurrogateGcn::TrainOnGraph(const graph::CsrMatrix& adj, const Matrix& x,
                                 const std::vector<int>& labels,
                                 const std::vector<int>& train_idx, int steps,
                                 float lr, Rng& rng) {
  graph::CsrMatrix op = graph::GcnNormalize(adj);
  std::vector<int> idx = train_idx;
  if (idx.empty()) {
    idx.resize(x.rows());
    for (int i = 0; i < x.rows(); ++i) idx[i] = i;
  }
  std::vector<int> y;
  y.reserve(idx.size());
  for (int i : idx) y.push_back(labels[i]);
  const Matrix targets = OneHot(y, w2_.value.cols());
  nn::Adam opt(lr, /*weight_decay=*/5e-4f);
  float last = 0.0f;
  ag::Tape t;  // reused across steps: Reset() recycles buffers via the arena
  for (int s = 0; s < steps; ++s) {
    t.Reset();
    ag::Var xin = t.Constant(x);
    ag::Var w1 = t.Input(w1_.value);
    ag::Var b1 = t.Input(b1_.value);
    ag::Var w2 = t.Input(w2_.value);
    ag::Var b2 = t.Input(b2_.value);
    ag::Var h = t.Relu(t.AddRowVec(t.SpMM(&op, t.MatMul(xin, w1)), b1));
    h = t.Dropout(h, 0.3f, rng, /*training=*/true);
    ag::Var logits = t.AddRowVec(t.SpMM(&op, t.MatMul(h, w2)), b2);
    ag::Var loss = t.SoftmaxCrossEntropy(t.GatherRows(logits, idx), targets);
    last = t.value(loss).At(0, 0);
    t.Backward(loss);
    w1_.grad = t.grad(w1);
    b1_.grad = t.grad(b1);
    w2_.grad = t.grad(w2);
    b2_.grad = t.grad(b2);
    opt.Step({&w1_, &b1_, &w2_, &b2_});
  }
  return last;
}

ag::Var SurrogateGcn::DenseForwardFixed(ag::Tape& t, ag::Var adj_norm,
                                        ag::Var x) const {
  ag::Var w1 = t.Constant(w1_.value);
  ag::Var b1 = t.Constant(b1_.value);
  ag::Var w2 = t.Constant(w2_.value);
  ag::Var b2 = t.Constant(b2_.value);
  ag::Var h =
      t.Relu(t.AddRowVec(t.MatMul(adj_norm, t.MatMul(x, w1)), b1));
  return t.AddRowVec(t.MatMul(adj_norm, t.MatMul(h, w2)), b2);
}

Matrix SurrogateGcn::Predict(const graph::CsrMatrix& adj,
                             const Matrix& x) const {
  graph::CsrMatrix op = graph::GcnNormalize(adj);
  Matrix h = op.Multiply(MatMul(x, w1_.value));
  h = Relu(AddRowBroadcast(h, b1_.value));
  Matrix logits = op.Multiply(MatMul(h, w2_.value));
  return AddRowBroadcast(logits, b2_.value);
}

}  // namespace bgc::attack
