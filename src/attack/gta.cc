#include "src/attack/gta.h"

#include <algorithm>

#include "src/attack/attach.h"
#include "src/attack/selector.h"
#include "src/attack/surrogate.h"
#include "src/core/check.h"

namespace bgc::attack {
namespace {

/// Trains the surrogate on the original (large) graph — GTA's threat model
/// attacks model training, so its surrogate sees the real data, not a
/// condensed set.
void TrainSurrogateOnSource(SurrogateGcn& surrogate,
                            const condense::SourceGraph& source, int steps,
                            float lr, Rng& rng) {
  surrogate.Init(rng);
  surrogate.TrainOnGraph(source.adj, source.features, source.labels,
                         source.labeled, steps, lr, rng);
}

}  // namespace

AttackResult RunGta(const condense::SourceGraph& clean, int num_classes,
                    condense::Condenser& condenser,
                    const condense::CondenseConfig& condense_config,
                    const AttackConfig& attack_config, Rng& rng) {
  const int budget = ResolvePoisonBudget(
      attack_config, static_cast<int>(clean.labeled.size()));

  AttackResult result;
  // Table 3 gives GTA the same selection module as BGC.
  SelectorConfig sel;
  sel.target_class = attack_config.target_class;
  sel.budget = budget;
  sel.clusters_per_class = attack_config.clusters_per_class;
  sel.lambda = attack_config.selector_lambda;
  sel.selector_epochs = attack_config.selector_epochs;
  result.poisoned_nodes =
      SelectPoisonedNodes(clean, num_classes, sel, rng);
  result.generator = MakeTriggerGenerator(
      attack_config, clean.features.cols(),
      ResolveTriggerFeatureScale(attack_config, clean.features), rng);

  SurrogateGcn surrogate(clean.features.cols(),
                         attack_config.surrogate_hidden, num_classes);
  TrainSurrogateOnSource(surrogate, clean, 4 * attack_config.surrogate_steps,
                         attack_config.surrogate_lr, rng);

  // Train the generator to convergence against the static surrogate.
  // Convergence takes ~100 batched updates; more adds nothing because the
  // surrogate is frozen (unlike BGC, whose moving surrogate keeps the
  // trigger updates informative).
  const int total_steps = std::min(
      100, condense_config.epochs * attack_config.generator_steps);
  for (int step = 0; step < total_steps; ++step) {
    std::vector<int> eligible;
    for (int i = 0; i < static_cast<int>(clean.labels.size()); ++i) {
      if (clean.labels[i] != attack_config.target_class) {
        eligible.push_back(i);
      }
    }
    const int take =
        std::min<int>(attack_config.update_batch, eligible.size());
    std::vector<int> picks = rng.SampleWithoutReplacement(
        static_cast<int>(eligible.size()), take);
    std::vector<int> update_nodes;
    update_nodes.reserve(take);
    for (int i : picks) update_nodes.push_back(eligible[i]);
    result.generator->TrainStep(clean, surrogate, update_nodes,
                                attack_config.target_class,
                                attack_config.ego, rng);
  }

  // Freeze the triggers and condense the static poisoned graph.
  condense::SourceGraph poisoned = BuildPoisonedSource(
      clean, result.poisoned_nodes,
      result.generator->Generate(clean, result.poisoned_nodes),
      attack_config.target_class);
  result.condensed = RunCondensation(condenser, poisoned, num_classes,
                                     condense_config, rng);
  return result;
}

}  // namespace bgc::attack
