#include "src/attack/attach.h"

#include <algorithm>

#include "src/core/check.h"
#include "src/graph/graph_utils.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::attack {

AugmentedGraph AttachToGraph(
    const graph::CsrMatrix& adj, const Matrix& x,
    const std::vector<int>& hosts,
    const std::vector<TriggerInstantiation>& triggers) {
  BGC_CHECK_EQ(hosts.size(), triggers.size());
  AugmentedGraph out;
  out.num_original = adj.rows();
  if (hosts.empty()) {
    out.adj = adj;
    out.features = x;
    return out;
  }
  const int g = triggers[0].features.rows();
  std::vector<graph::Edge> extra;
  Matrix trig_features(static_cast<int>(hosts.size()) * g, x.cols());
  for (size_t i = 0; i < hosts.size(); ++i) {
    BGC_CHECK_GE(hosts[i], 0);
    BGC_CHECK_LT(hosts[i], adj.rows());
    BGC_CHECK_EQ(triggers[i].features.rows(), g);
    BGC_CHECK_EQ(triggers[i].features.cols(), x.cols());
    const int base = adj.rows() + static_cast<int>(i) * g;
    extra.push_back({hosts[i], base, 1.0f});
    for (auto [a, b] : triggers[i].internal_edges) {
      BGC_CHECK_LT(a, g);
      BGC_CHECK_LT(b, g);
      extra.push_back({base + a, base + b, 1.0f});
    }
    for (int k = 0; k < g; ++k) {
      trig_features.SetRow(static_cast<int>(i) * g + k,
                           triggers[i].features.RowPtr(k));
    }
  }
  out.adj = graph::AugmentGraph(adj, static_cast<int>(hosts.size()) * g,
                                extra);
  out.features = ConcatRows(x, trig_features);
  return out;
}

condense::SourceGraph BuildPoisonedSource(
    const condense::SourceGraph& clean, const std::vector<int>& hosts,
    const std::vector<TriggerInstantiation>& triggers, int target_class,
    bool flip_labels) {
  AugmentedGraph aug =
      AttachToGraph(clean.adj, clean.features, hosts, triggers);
  condense::SourceGraph poisoned;
  poisoned.adj = std::move(aug.adj);
  poisoned.features = std::move(aug.features);
  poisoned.labels = clean.labels;
  poisoned.labels.resize(poisoned.adj.rows(), target_class);
  poisoned.labeled = clean.labeled;
  for (int host : hosts) {
    if (flip_labels) poisoned.labels[host] = target_class;
    // Hosts outside the labeled set (possible for V_U-style callers) join it.
    if (std::find(poisoned.labeled.begin(), poisoned.labeled.end(), host) ==
        poisoned.labeled.end()) {
      poisoned.labeled.push_back(host);
    }
  }
  // Trigger nodes carry the target label as filler but are NOT added to the
  // labeled set: labeling them would flood the target class's share of the
  // synthetic label allocation and crater the condensed graph's utility.
  // Their payload reaches the matching through propagation into the
  // relabeled hosts.
  std::sort(poisoned.labeled.begin(), poisoned.labeled.end());
  return poisoned;
}

}  // namespace bgc::attack
