#include "src/attack/ego.h"

#include <algorithm>
#include <unordered_map>

#include "src/core/check.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::attack {

EgoItem BuildEgoItem(const graph::CsrMatrix& adj, const Matrix& x, int host,
                     const EgoParams& params, int trigger_size, Rng& rng) {
  BGC_CHECK_GE(host, 0);
  BGC_CHECK_LT(host, adj.rows());
  BGC_CHECK_GT(trigger_size, 0);

  // Sampled BFS: admit at most cap_per_hop new nodes per hop.
  std::vector<int> nodes = {host};
  std::unordered_map<int, int> local;  // global -> local id
  local[host] = 0;
  std::vector<int> frontier = {host};
  const auto& rp = adj.row_ptr();
  const auto& ci = adj.col_idx();
  for (int hop = 0; hop < params.hops; ++hop) {
    std::vector<int> candidates;
    for (int u : frontier) {
      for (int k = rp[u]; k < rp[u + 1]; ++k) {
        const int v = ci[k];
        if (!local.count(v)) candidates.push_back(v);
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
    if (static_cast<int>(candidates.size()) > params.cap_per_hop) {
      std::vector<int> picks = rng.SampleWithoutReplacement(
          static_cast<int>(candidates.size()), params.cap_per_hop);
      std::vector<int> kept;
      kept.reserve(picks.size());
      for (int i : picks) kept.push_back(candidates[i]);
      candidates = std::move(kept);
    }
    frontier.clear();
    for (int v : candidates) {
      local[v] = static_cast<int>(nodes.size());
      nodes.push_back(v);
      frontier.push_back(v);
    }
    if (frontier.empty()) break;
  }

  const int m = static_cast<int>(nodes.size());
  const int total = m + trigger_size;
  EgoItem item;
  item.nodes = nodes;
  item.host_local = 0;
  item.base_adj = Matrix(total, total);
  for (int i = 0; i < m; ++i) {
    const int u = nodes[i];
    for (int k = rp[u]; k < rp[u + 1]; ++k) {
      auto it = local.find(ci[k]);
      if (it != local.end()) {
        item.base_adj(i, it->second) = adj.values()[k];
      }
    }
  }
  // The attachment edge: host <-> first trigger node.
  item.base_adj(0, m) = 1.0f;
  item.base_adj(m, 0) = 1.0f;

  item.embed = Matrix(total, trigger_size);
  for (int j = 0; j < trigger_size; ++j) item.embed(m + j, j) = 1.0f;

  item.features = GatherRows(x, nodes);
  return item;
}

}  // namespace bgc::attack
