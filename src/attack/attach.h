#ifndef BGC_ATTACK_ATTACH_H_
#define BGC_ATTACK_ATTACH_H_

#include <vector>

#include "src/attack/trigger.h"
#include "src/condense/condenser.h"

namespace bgc::attack {

/// A graph with trigger nodes appended: original nodes keep their ids;
/// trigger k of host i occupies row num_original + i·g + k.
struct AugmentedGraph {
  graph::CsrMatrix adj;
  Matrix features;
  int num_original = 0;
};

/// Appends `triggers[i]` to `hosts[i]`: trigger node 0 links to the host,
/// internal edges follow the instantiation. Features of trigger nodes come
/// from the instantiation. Used at inference time to trigger test nodes.
AugmentedGraph AttachToGraph(const graph::CsrMatrix& adj, const Matrix& x,
                             const std::vector<int>& hosts,
                             const std::vector<TriggerInstantiation>& triggers);

/// Builds the poisoned training graph G_P (Alg. 1 line 12): attaches the
/// triggers, relabels hosts to `target_class`, labels every trigger node
/// `target_class`, and adds both to the labeled set — flipped labels plus
/// trigger payloads are the malicious gradient signal the condensation
/// distills.
condense::SourceGraph BuildPoisonedSource(
    const condense::SourceGraph& clean, const std::vector<int>& hosts,
    const std::vector<TriggerInstantiation>& triggers, int target_class,
    bool flip_labels = true);

}  // namespace bgc::attack

#endif  // BGC_ATTACK_ATTACH_H_
