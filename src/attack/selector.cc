#include "src/attack/selector.h"

#include <algorithm>
#include <cmath>

#include "src/attack/kmeans.h"
#include "src/core/check.h"
#include "src/graph/graph_utils.h"
#include "src/nn/models.h"
#include "src/nn/optimizer.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::attack {
namespace {

/// Trains a 2-layer GCN classifier on the source graph and returns the
/// hidden-layer representations H_sel (Eq. 7/8).
Matrix SelectorEmbeddings(const condense::SourceGraph& source,
                          int num_classes, const SelectorConfig& config,
                          Rng& rng) {
  const int d = source.features.cols();
  graph::CsrMatrix op = graph::GcnNormalize(source.adj);
  nn::Param w1(Matrix::GlorotUniform(d, config.hidden_dim, rng));
  nn::Param b1(Matrix(1, config.hidden_dim));
  nn::Param w2(Matrix::GlorotUniform(config.hidden_dim, num_classes, rng));
  nn::Param b2(Matrix(1, num_classes));
  std::vector<int> y;
  y.reserve(source.labeled.size());
  for (int idx : source.labeled) y.push_back(source.labels[idx]);
  const Matrix targets = OneHot(y, num_classes);
  nn::Adam opt(0.01f, 5e-4f);
  ag::Tape t;  // reused across epochs: Reset() recycles buffers via the arena
  for (int epoch = 0; epoch < config.selector_epochs; ++epoch) {
    t.Reset();
    ag::Var x = t.Constant(source.features);
    ag::Var v1 = t.Input(w1.value);
    ag::Var vb1 = t.Input(b1.value);
    ag::Var v2 = t.Input(w2.value);
    ag::Var vb2 = t.Input(b2.value);
    ag::Var h = t.Relu(t.AddRowVec(t.SpMM(&op, t.MatMul(x, v1)), vb1));
    ag::Var logits = t.AddRowVec(t.SpMM(&op, t.MatMul(h, v2)), vb2);
    ag::Var loss = t.SoftmaxCrossEntropy(t.GatherRows(logits, source.labeled),
                                         targets);
    t.Backward(loss);
    w1.grad = t.grad(v1);
    b1.grad = t.grad(vb1);
    w2.grad = t.grad(v2);
    b2.grad = t.grad(vb2);
    opt.Step({&w1, &b1, &w2, &b2});
  }
  // Final hidden representations.
  Matrix h = op.Multiply(MatMul(source.features, w1.value));
  return Relu(AddRowBroadcast(h, b1.value));
}

}  // namespace

std::vector<int> SelectPoisonedNodes(const condense::SourceGraph& source,
                                     int num_classes,
                                     const SelectorConfig& config, Rng& rng) {
  BGC_CHECK_GT(config.budget, 0);
  BGC_CHECK_GT(num_classes, 1);
  Matrix h = SelectorEmbeddings(source, num_classes, config, rng);
  std::vector<float> degrees = graph::Degrees(source.adj);

  // Eligible pools: labeled nodes per non-target class.
  std::vector<std::vector<int>> by_class(num_classes);
  for (int idx : source.labeled) {
    if (source.labels[idx] == config.target_class) continue;
    by_class[source.labels[idx]].push_back(idx);
  }
  int populated = 0;
  for (const auto& pool : by_class) populated += !pool.empty();
  BGC_CHECK_GT(populated, 0);

  struct Scored {
    int node;
    float score;
  };
  std::vector<Scored> selected;
  std::vector<Scored> leftover;  // scored but outside the per-cluster quota
  for (int c = 0; c < num_classes; ++c) {
    const auto& pool = by_class[c];
    if (pool.empty()) continue;
    Matrix points = GatherRows(h, pool);
    KMeansResult clusters =
        KMeans(points, config.clusters_per_class, rng);
    // Quota per cluster from the *actual* centroid count (K-Means clamps
    // k to the pool size); a floor of 1 keeps small budgets touching every
    // cluster, and the final trim enforces the exact budget.
    const int k = clusters.k;
    const int per_cluster = PerClusterQuota(config.budget, populated, k);
    std::vector<std::vector<Scored>> per_cluster_scores(k);
    for (size_t i = 0; i < pool.size(); ++i) {
      const int cluster = clusters.assignment[i];
      float dist = 0.0f;
      for (int j = 0; j < points.cols(); ++j) {
        const float diff =
            points.At(static_cast<int>(i), j) -
            clusters.centroids.At(cluster, j);
        dist += diff * diff;
      }
      const float score = SelectionScore(
          std::sqrt(dist), degrees[pool[i]], config.lambda);  // Eq. (9)
      per_cluster_scores[cluster].push_back({pool[i], score});
    }
    for (auto& bucket : per_cluster_scores) {
      std::sort(bucket.begin(), bucket.end(),
                [](const Scored& a, const Scored& b) {
                  return a.score < b.score;
                });
      for (size_t i = 0; i < bucket.size(); ++i) {
        (static_cast<int>(i) < per_cluster ? selected : leftover)
            .push_back(bucket[i]);
      }
    }
  }
  // Enforce the exact budget: trim preferring the most representative
  // nodes, or top up from the next-best leftovers when the per-cluster
  // quota rounds below the budget.
  auto by_score = [](const Scored& a, const Scored& b) {
    return a.score < b.score;
  };
  std::sort(selected.begin(), selected.end(), by_score);
  if (static_cast<int>(selected.size()) > config.budget) {
    selected.resize(config.budget);
  } else if (static_cast<int>(selected.size()) < config.budget) {
    std::sort(leftover.begin(), leftover.end(), by_score);
    for (const Scored& s : leftover) {
      if (static_cast<int>(selected.size()) >= config.budget) break;
      selected.push_back(s);
    }
  }
  std::vector<int> nodes;
  nodes.reserve(selected.size());
  for (const Scored& s : selected) nodes.push_back(s.node);
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

std::vector<int> SelectRandomNodes(const condense::SourceGraph& source,
                                   int target_class, int budget, Rng& rng) {
  std::vector<int> eligible;
  for (int idx : source.labeled) {
    if (source.labels[idx] != target_class) eligible.push_back(idx);
  }
  BGC_CHECK(!eligible.empty());
  const int take = std::min<int>(budget, eligible.size());
  std::vector<int> picks =
      rng.SampleWithoutReplacement(static_cast<int>(eligible.size()), take);
  std::vector<int> nodes;
  nodes.reserve(take);
  for (int i : picks) nodes.push_back(eligible[i]);
  std::sort(nodes.begin(), nodes.end());
  return nodes;
}

}  // namespace bgc::attack
