#ifndef BGC_ATTACK_TRIGGER_H_
#define BGC_ATTACK_TRIGGER_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/attack/ego.h"
#include "src/attack/surrogate.h"
#include "src/condense/condenser.h"
#include "src/core/rng.h"
#include "src/nn/optimizer.h"
#include "src/nn/param.h"

namespace bgc::attack {

/// A concrete trigger ready for graph building: `features` are the g
/// trigger-node feature rows; `internal_edges` the (i, j) pairs (i < j)
/// among trigger nodes whose binarized adjacency exceeded 0.5. Trigger node
/// 0 is always linked to the host by the attachment op.
struct TriggerInstantiation {
  Matrix features;
  std::vector<std::pair<int, int>> internal_edges;
};

/// Interface of a trigger generator f_g (§4.3). Two implementations:
/// the adaptive, node-conditioned generator of BGC/GTA and the universal
/// (shared) trigger of DOORPING.
class TriggerGenerator {
 public:
  virtual ~TriggerGenerator() = default;

  /// Concrete (gradient-free) triggers for the given host nodes.
  virtual std::vector<TriggerInstantiation> Generate(
      const condense::SourceGraph& source,
      const std::vector<int>& hosts) const = 0;

  /// One optimization step of Eq. (13)/(17): minimize the surrogate's
  /// cross-entropy to `target_class` on trigger-attached computation graphs
  /// of `update_nodes`. Returns the loss before the step.
  virtual float TrainStep(const condense::SourceGraph& source,
                          const SurrogateGcn& surrogate,
                          const std::vector<int>& update_nodes,
                          int target_class, const EgoParams& ego, Rng& rng) = 0;

  virtual std::string name() const = 0;
  virtual int trigger_size() const = 0;
};

/// BGC's adaptive generator: a 2-layer GCN encodes each node (Eq. 10), and
/// two linear heads emit the trigger's node features and (binarized via a
/// straight-through estimator) its internal adjacency (Eq. 11).
class AdaptiveTriggerGenerator : public TriggerGenerator {
 public:
  /// `feature_scale` bounds generated trigger features to
  /// [-scale, scale] via tanh — the |g_i| < Δ_g budget of Eq. (2)/(3)
  /// realized as a magnitude constraint, keeping triggers in-distribution
  /// (unbounded features degenerate into a generic adversarial attack that
  /// fools clean models too, which the paper's low C-ASR rules out).
  AdaptiveTriggerGenerator(int in_dim, int hidden_dim, int trigger_size,
                           float lr, float feature_scale, Rng& rng);

  std::vector<TriggerInstantiation> Generate(
      const condense::SourceGraph& source,
      const std::vector<int>& hosts) const override;
  float TrainStep(const condense::SourceGraph& source,
                  const SurrogateGcn& surrogate,
                  const std::vector<int>& update_nodes, int target_class,
                  const EgoParams& ego, Rng& rng) override;
  std::string name() const override { return "adaptive"; }
  int trigger_size() const override { return trigger_size_; }

 private:
  /// Plain (gradient-free) node encodings H = GCN_g(A, X).
  Matrix Encode(const condense::SourceGraph& source) const;

  int trigger_size_;
  float feature_scale_;
  nn::Param enc_w1_, enc_b1_, enc_w2_, enc_b2_;  // GCN_g
  nn::Param feat_head_;                          // W_f: hidden -> g·d
  nn::Param adj_head_;                           // W_a: hidden -> g·g
  nn::Adam opt_;
  graph::CsrMatrix op_;  // operator for the tape of the last TrainStep
};

/// DOORPING-style universal trigger: a single learned feature block and
/// internal adjacency shared by every host, re-optimized during
/// condensation.
class UniversalTriggerGenerator : public TriggerGenerator {
 public:
  /// `feature_scale` as in AdaptiveTriggerGenerator.
  UniversalTriggerGenerator(int in_dim, int trigger_size, float lr,
                            float feature_scale, Rng& rng);

  std::vector<TriggerInstantiation> Generate(
      const condense::SourceGraph& source,
      const std::vector<int>& hosts) const override;
  float TrainStep(const condense::SourceGraph& source,
                  const SurrogateGcn& surrogate,
                  const std::vector<int>& update_nodes, int target_class,
                  const EgoParams& ego, Rng& rng) override;
  std::string name() const override { return "universal"; }
  int trigger_size() const override { return trigger_size_; }

 private:
  TriggerInstantiation Instantiate() const;

  int trigger_size_;
  float feature_scale_;
  nn::Param features_;    // g×d (pre-tanh logits)
  nn::Param adj_logits_;  // g×g
  nn::Adam opt_;
};

}  // namespace bgc::attack

#endif  // BGC_ATTACK_TRIGGER_H_
