#ifndef BGC_ATTACK_EGO_H_
#define BGC_ATTACK_EGO_H_

#include <vector>

#include "src/core/rng.h"
#include "src/graph/csr.h"
#include "src/tensor/matrix.h"

namespace bgc::attack {

/// Ego-network sampling parameters: the trigger generator differentiates
/// through a dense forward on each update node's computation graph G_C^i,
/// so high-degree neighborhoods are subsampled to keep the dense block
/// small.
struct EgoParams {
  int hops = 2;
  int cap_per_hop = 16;  // max new neighbors admitted per hop
};

/// A host node's computation graph prepared for trigger-aware dense
/// forward passes. Layout: rows [0, m) are sampled ego nodes (host
/// included), rows [m, m+g) are the trigger slots.
struct EgoItem {
  std::vector<int> nodes;  // global ids of the m ego nodes
  int host_local = 0;      // host position within `nodes`
  Matrix base_adj;         // (m+g)² constant part: ego edges + host—trigger0
  Matrix embed;            // (m+g)×g selector P: P·A_g·Pᵀ places the trigger
  Matrix features;         // m×d ego features
};

/// Builds the EgoItem for `host`. Deterministic given `rng`.
EgoItem BuildEgoItem(const graph::CsrMatrix& adj, const Matrix& x, int host,
                     const EgoParams& params, int trigger_size, Rng& rng);

}  // namespace bgc::attack

#endif  // BGC_ATTACK_EGO_H_
