#include "src/attack/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/core/check.h"

namespace bgc::attack {
namespace {

float SquaredDistance(const float* a, const float* b, int d) {
  float s = 0.0f;
  for (int j = 0; j < d; ++j) {
    const float diff = a[j] - b[j];
    s += diff * diff;
  }
  return s;
}

}  // namespace

KMeansResult KMeans(const Matrix& points, int k, Rng& rng, int max_iters) {
  const int n = points.rows();
  const int d = points.cols();
  BGC_CHECK_GT(n, 0);
  BGC_CHECK_GT(k, 0);
  k = std::min(k, n);

  // k-means++ seeding.
  Matrix centroids(k, d);
  std::vector<float> min_dist(n, std::numeric_limits<float>::max());
  int first = static_cast<int>(rng.UniformInt(n));
  centroids.SetRow(0, points.RowPtr(first));
  for (int c = 1; c < k; ++c) {
    double total = 0.0;
    for (int i = 0; i < n; ++i) {
      const float dist =
          SquaredDistance(points.RowPtr(i), centroids.RowPtr(c - 1), d);
      min_dist[i] = std::min(min_dist[i], dist);
      total += min_dist[i];
    }
    int chosen = n - 1;
    if (total > 0.0) {
      double target = rng.Uniform() * total;
      double acc = 0.0;
      for (int i = 0; i < n; ++i) {
        acc += min_dist[i];
        if (acc >= target) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = static_cast<int>(rng.UniformInt(n));
    }
    centroids.SetRow(c, points.RowPtr(chosen));
  }

  KMeansResult result;
  result.k = k;
  result.assignment.assign(n, 0);
  std::vector<int> counts(k, 0);
  for (int iter = 0; iter < max_iters; ++iter) {
    bool changed = false;
    for (int i = 0; i < n; ++i) {
      int best = 0;
      float best_dist =
          SquaredDistance(points.RowPtr(i), centroids.RowPtr(0), d);
      for (int c = 1; c < k; ++c) {
        const float dist =
            SquaredDistance(points.RowPtr(i), centroids.RowPtr(c), d);
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      if (result.assignment[i] != best || iter == 0) {
        changed = changed || result.assignment[i] != best;
        result.assignment[i] = best;
      }
    }
    if (iter > 0 && !changed) break;
    // Recompute centroids; empty clusters keep their previous position.
    Matrix sums(k, d);
    counts.assign(k, 0);
    for (int i = 0; i < n; ++i) {
      const int c = result.assignment[i];
      ++counts[c];
      float* row = sums.RowPtr(c);
      const float* p = points.RowPtr(i);
      for (int j = 0; j < d; ++j) row[j] += p[j];
    }
    for (int c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      float* row = sums.RowPtr(c);
      const float inv = 1.0f / static_cast<float>(counts[c]);
      for (int j = 0; j < d; ++j) row[j] *= inv;
      centroids.SetRow(c, row);
    }
  }
  result.centroids = std::move(centroids);
  return result;
}

}  // namespace bgc::attack
