#include "src/attack/trigger.h"

#include <cmath>

#include "src/core/check.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::attack {
namespace {

/// Symmetrized, diag-masked, straight-through-binarized trigger adjacency
/// from raw logits (Eq. 11 + the binarization of [4, 25]).
ag::Var BinarizedTriggerAdjacency(ag::Tape& t, ag::Var raw_logits, int g) {
  ag::Var sym = t.Scale(t.Add(raw_logits, t.Transpose(raw_logits)), 0.5f);
  ag::Var prob = t.Sigmoid(sym);
  Matrix mask(g, g, 1.0f);
  for (int i = 0; i < g; ++i) mask(i, i) = 0.0f;
  return t.BinarizeSte(t.Hadamard(prob, t.Constant(mask)), 0.5f);
}

/// Host-node logit row on the trigger-augmented dense computation graph:
/// embeds the binarized g×g trigger block into the ego adjacency, applies
/// GCN normalization differentiably, and runs the fixed surrogate forward.
ag::Var TriggeredHostLogits(ag::Tape& t, const EgoItem& item,
                            const SurrogateGcn& surrogate, ag::Var trig_feat,
                            ag::Var trig_adj_logits, int g) {
  const int total = item.base_adj.rows();
  ag::Var abin = BinarizedTriggerAdjacency(t, trig_adj_logits, g);
  ag::Var p = t.Constant(item.embed);
  ag::Var embedded = t.MatMul(t.MatMul(p, abin), t.Transpose(p));
  ag::Var full = t.Add(t.Constant(item.base_adj), embedded);
  ag::Var hat = t.Add(full, t.Constant(Matrix::Identity(total)));
  ag::Var deg = t.RowSumOp(hat);
  ag::Var inv_sqrt =
      t.ElemDiv(t.Constant(Matrix(total, 1, 1.0f)), t.Sqrt(deg, 1e-8f));
  ag::Var norm = t.MulRowVec(t.MulColVec(hat, inv_sqrt),
                             t.Transpose(inv_sqrt));
  ag::Var x_full = t.ConcatRows(t.Constant(item.features), trig_feat);
  ag::Var logits = surrogate.DenseForwardFixed(t, norm, x_full);
  return t.GatherRows(logits, {item.host_local});
}

/// Concrete internal edges from symmetric sigmoid probabilities.
std::vector<std::pair<int, int>> EdgesFromLogits(const Matrix& raw, int g) {
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < g; ++i) {
    for (int j = i + 1; j < g; ++j) {
      const float sym = 0.5f * (raw.At(i, j) + raw.At(j, i));
      const float prob = 1.0f / (1.0f + std::exp(-sym));
      if (prob > 0.5f) edges.push_back({i, j});
    }
  }
  return edges;
}

}  // namespace

AdaptiveTriggerGenerator::AdaptiveTriggerGenerator(int in_dim, int hidden_dim,
                                                   int trigger_size, float lr,
                                                   float feature_scale,
                                                   Rng& rng)
    : trigger_size_(trigger_size),
      feature_scale_(feature_scale),
      enc_w1_(Matrix::GlorotUniform(in_dim, hidden_dim, rng)),
      enc_b1_(Matrix(1, hidden_dim)),
      enc_w2_(Matrix::GlorotUniform(hidden_dim, hidden_dim, rng)),
      enc_b2_(Matrix(1, hidden_dim)),
      feat_head_(Matrix::GlorotUniform(hidden_dim, trigger_size * in_dim,
                                       rng)),
      adj_head_(Matrix::GlorotUniform(hidden_dim,
                                      trigger_size * trigger_size, rng)),
      opt_(lr) {
  BGC_CHECK_GT(trigger_size, 0);
}

Matrix AdaptiveTriggerGenerator::Encode(
    const condense::SourceGraph& source) const {
  graph::CsrMatrix op = graph::GcnNormalize(source.adj);
  Matrix h = op.Multiply(MatMul(source.features, enc_w1_.value));
  h = Relu(AddRowBroadcast(h, enc_b1_.value));
  h = op.Multiply(MatMul(h, enc_w2_.value));
  return AddRowBroadcast(h, enc_b2_.value);
}

std::vector<TriggerInstantiation> AdaptiveTriggerGenerator::Generate(
    const condense::SourceGraph& source,
    const std::vector<int>& hosts) const {
  const int g = trigger_size_;
  const int d = source.features.cols();
  Matrix h = Encode(source);
  Matrix hb = GatherRows(h, hosts);
  Matrix feats = MatMul(hb, feat_head_.value);   // B×(g·d)
  Matrix adjs = MatMul(hb, adj_head_.value);     // B×(g·g)
  std::vector<TriggerInstantiation> out;
  out.reserve(hosts.size());
  for (int b = 0; b < static_cast<int>(hosts.size()); ++b) {
    TriggerInstantiation inst;
    inst.features = Matrix(
        g, d, std::vector<float>(feats.RowPtr(b), feats.RowPtr(b) + g * d));
    for (int i = 0; i < inst.features.size(); ++i) {
      inst.features.data()[i] =
          feature_scale_ * std::tanh(inst.features.data()[i]);
    }
    Matrix raw(g, g,
               std::vector<float>(adjs.RowPtr(b), adjs.RowPtr(b) + g * g));
    inst.internal_edges = EdgesFromLogits(raw, g);
    out.push_back(std::move(inst));
  }
  return out;
}

float AdaptiveTriggerGenerator::TrainStep(const condense::SourceGraph& source,
                                          const SurrogateGcn& surrogate,
                                          const std::vector<int>& update_nodes,
                                          int target_class,
                                          const EgoParams& ego, Rng& rng) {
  BGC_CHECK(!update_nodes.empty());
  const int g = trigger_size_;
  const int d = source.features.cols();
  op_ = graph::GcnNormalize(source.adj);

  ag::Tape t;
  ag::Var x = t.Constant(source.features);
  ag::Var w1 = t.Input(enc_w1_.value);
  ag::Var b1 = t.Input(enc_b1_.value);
  ag::Var w2 = t.Input(enc_w2_.value);
  ag::Var b2 = t.Input(enc_b2_.value);
  ag::Var wf = t.Input(feat_head_.value);
  ag::Var wa = t.Input(adj_head_.value);

  ag::Var h = t.Relu(t.AddRowVec(t.SpMM(&op_, t.MatMul(x, w1)), b1));
  h = t.AddRowVec(t.SpMM(&op_, t.MatMul(h, w2)), b2);
  ag::Var hb = t.GatherRows(h, update_nodes);
  ag::Var feats = t.MatMul(hb, wf);
  ag::Var adjs = t.MatMul(hb, wa);

  ag::Var host_rows{};
  for (int b = 0; b < static_cast<int>(update_nodes.size()); ++b) {
    EgoItem item = BuildEgoItem(source.adj, source.features, update_nodes[b],
                                ego, g, rng);
    ag::Var tf = t.Scale(t.Tanh(t.Reshape(t.GatherRows(feats, {b}), g, d)),
                         feature_scale_);
    ag::Var ta = t.Reshape(t.GatherRows(adjs, {b}), g, g);
    ag::Var row = TriggeredHostLogits(t, item, surrogate, tf, ta, g);
    host_rows = b == 0 ? row : t.ConcatRows(host_rows, row);
  }
  std::vector<int> targets(update_nodes.size(), target_class);
  ag::Var loss =
      t.SoftmaxCrossEntropy(host_rows, OneHot(targets, surrogate.out_dim()));
  const float value = t.value(loss).At(0, 0);
  t.Backward(loss);
  enc_w1_.grad = t.grad(w1);
  enc_b1_.grad = t.grad(b1);
  enc_w2_.grad = t.grad(w2);
  enc_b2_.grad = t.grad(b2);
  feat_head_.grad = t.grad(wf);
  adj_head_.grad = t.grad(wa);
  opt_.Step({&enc_w1_, &enc_b1_, &enc_w2_, &enc_b2_, &feat_head_,
             &adj_head_});
  return value;
}

UniversalTriggerGenerator::UniversalTriggerGenerator(int in_dim,
                                                     int trigger_size,
                                                     float lr,
                                                     float feature_scale,
                                                     Rng& rng)
    : trigger_size_(trigger_size),
      feature_scale_(feature_scale),
      features_(Matrix::RandomNormal(trigger_size, in_dim, rng, 0.5f)),
      adj_logits_(Matrix::RandomNormal(trigger_size, trigger_size, rng,
                                       0.5f)),
      opt_(lr) {
  BGC_CHECK_GT(trigger_size, 0);
}

TriggerInstantiation UniversalTriggerGenerator::Instantiate() const {
  TriggerInstantiation inst;
  inst.features = features_.value;
  for (int i = 0; i < inst.features.size(); ++i) {
    inst.features.data()[i] =
        feature_scale_ * std::tanh(inst.features.data()[i]);
  }
  inst.internal_edges = EdgesFromLogits(adj_logits_.value, trigger_size_);
  return inst;
}

std::vector<TriggerInstantiation> UniversalTriggerGenerator::Generate(
    const condense::SourceGraph& /*source*/,
    const std::vector<int>& hosts) const {
  return std::vector<TriggerInstantiation>(hosts.size(), Instantiate());
}

float UniversalTriggerGenerator::TrainStep(
    const condense::SourceGraph& source, const SurrogateGcn& surrogate,
    const std::vector<int>& update_nodes, int target_class,
    const EgoParams& ego, Rng& rng) {
  BGC_CHECK(!update_nodes.empty());
  const int g = trigger_size_;
  ag::Tape t;
  ag::Var tf_raw = t.Input(features_.value);
  ag::Var tf = t.Scale(t.Tanh(tf_raw), feature_scale_);
  ag::Var ta = t.Input(adj_logits_.value);
  ag::Var host_rows{};
  for (int b = 0; b < static_cast<int>(update_nodes.size()); ++b) {
    EgoItem item = BuildEgoItem(source.adj, source.features, update_nodes[b],
                                ego, g, rng);
    ag::Var row = TriggeredHostLogits(t, item, surrogate, tf, ta, g);
    host_rows = b == 0 ? row : t.ConcatRows(host_rows, row);
  }
  std::vector<int> targets(update_nodes.size(), target_class);
  ag::Var loss =
      t.SoftmaxCrossEntropy(host_rows, OneHot(targets, surrogate.out_dim()));
  const float value = t.value(loss).At(0, 0);
  t.Backward(loss);
  features_.grad = t.grad(tf_raw);
  adj_logits_.grad = t.grad(ta);
  opt_.Step({&features_, &adj_logits_});
  return value;
}

}  // namespace bgc::attack
