#include "src/attack/bgc.h"

#include <algorithm>
#include <cmath>

#include "src/attack/attach.h"
#include "src/attack/selector.h"
#include "src/attack/surrogate.h"
#include "src/core/check.h"
#include "src/obs/obs.h"

namespace bgc::attack {

int ResolvePoisonBudget(const AttackConfig& config, int labeled_size) {
  if (config.poison_budget > 0) return config.poison_budget;
  return std::max(1, static_cast<int>(config.poison_ratio * labeled_size));
}

float ResolveTriggerFeatureScale(const AttackConfig& config,
                                 const Matrix& features) {
  if (config.trigger_feature_scale > 0.0f) {
    return config.trigger_feature_scale;
  }
  double mean_abs = 0.0;
  for (int i = 0; i < features.size(); ++i) {
    mean_abs += std::fabs(features.data()[i]);
  }
  mean_abs /= std::max(1, features.size());
  // 1x the data's mean |x|: strong enough for the distilled backdoor to key
  // on, weak enough that clean models are not trivially swayed (the paper's
  // C-ASR stays low while ASR saturates).
  return static_cast<float>(mean_abs);
}

std::shared_ptr<TriggerGenerator> MakeTriggerGenerator(
    const AttackConfig& config, int in_dim, float feature_scale, Rng& rng) {
  if (config.trigger_type == "universal") {
    return std::make_shared<UniversalTriggerGenerator>(
        in_dim, config.trigger_size, config.generator_lr, feature_scale,
        rng);
  }
  BGC_CHECK_MSG(config.trigger_type == "adaptive",
                "unknown trigger type: " + config.trigger_type);
  return std::make_shared<AdaptiveTriggerGenerator>(
      in_dim, config.generator_hidden, config.trigger_size,
      config.generator_lr, feature_scale, rng);
}

namespace {

std::vector<int> SelectHosts(const condense::SourceGraph& clean,
                             int num_classes, const AttackConfig& config,
                             int budget, Rng& rng) {
  if (config.clean_label) {
    // Clean-label poisoning: hosts come FROM the target class (their labels
    // stay honest); reuse the random selector with an inverted filter.
    std::vector<int> eligible;
    for (int idx : clean.labeled) {
      if (clean.labels[idx] == config.target_class) eligible.push_back(idx);
    }
    BGC_CHECK(!eligible.empty());
    const int take = std::min<int>(budget, eligible.size());
    std::vector<int> picks = rng.SampleWithoutReplacement(
        static_cast<int>(eligible.size()), take);
    std::vector<int> hosts;
    for (int i : picks) hosts.push_back(eligible[i]);
    std::sort(hosts.begin(), hosts.end());
    return hosts;
  }
  if (config.selection == "random") {
    return SelectRandomNodes(clean, config.target_class, budget, rng);
  }
  BGC_CHECK_MSG(config.selection == "representative",
                "unknown selection mode: " + config.selection);
  SelectorConfig sel;
  sel.target_class = config.target_class;
  sel.budget = budget;
  sel.clusters_per_class = config.clusters_per_class;
  sel.lambda = config.selector_lambda;
  sel.selector_epochs = config.selector_epochs;
  return SelectPoisonedNodes(clean, num_classes, sel, rng);
}

/// V_U: random nodes (any label) whose triggered computation graphs drive
/// the generator update; excludes nodes already labeled target (their CE
/// would be trivially low).
std::vector<int> SampleUpdateNodes(const condense::SourceGraph& clean,
                                   int target_class, int batch, Rng& rng) {
  std::vector<int> eligible;
  eligible.reserve(clean.labels.size());
  for (int i = 0; i < static_cast<int>(clean.labels.size()); ++i) {
    if (clean.labels[i] != target_class) eligible.push_back(i);
  }
  BGC_CHECK(!eligible.empty());
  const int take = std::min<int>(batch, eligible.size());
  std::vector<int> picks =
      rng.SampleWithoutReplacement(static_cast<int>(eligible.size()), take);
  std::vector<int> nodes;
  nodes.reserve(take);
  for (int i : picks) nodes.push_back(eligible[i]);
  return nodes;
}

}  // namespace

AttackResult RunBgc(const condense::SourceGraph& clean, int num_classes,
                    condense::Condenser& condenser,
                    const condense::CondenseConfig& condense_config,
                    const AttackConfig& attack_config, Rng& rng) {
  BGC_CHECK_GE(attack_config.target_class, 0);
  BGC_CHECK_LT(attack_config.target_class, num_classes);
  const int budget = ResolvePoisonBudget(
      attack_config, static_cast<int>(clean.labeled.size()));

  AttackResult result;
  {
    BGC_TRACE_SCOPE("phase.attack.select");
    result.poisoned_nodes =
        SelectHosts(clean, num_classes, attack_config, budget, rng);
  }
  result.generator = MakeTriggerGenerator(
      attack_config, clean.features.cols(),
      ResolveTriggerFeatureScale(attack_config, clean.features), rng);

  SurrogateGcn surrogate(clean.features.cols(),
                         attack_config.surrogate_hidden, num_classes);
  surrogate.Init(rng);

  // Alg. 1 line 1-3: initial poisoned graph with untrained triggers.
  const bool flip = !attack_config.clean_label;
  condense::SourceGraph poisoned;
  {
    BGC_TRACE_SCOPE("phase.attack.attach");
    poisoned = BuildPoisonedSource(
        clean, result.poisoned_nodes,
        result.generator->Generate(clean, result.poisoned_nodes),
        attack_config.target_class, flip);
  }
  {
    BGC_TRACE_SCOPE("phase.condense.init");
    condenser.Initialize(poisoned, num_classes, condense_config, rng);
  }

  for (int epoch = 0; epoch < condense_config.epochs; ++epoch) {
    // Lines 5-8: fresh surrogate trained on the current condensed graph.
    {
      BGC_TRACE_SCOPE("phase.attack.surrogate");
      surrogate.Init(rng);
      surrogate.Train(condenser.Result(), attack_config.surrogate_steps,
                      attack_config.surrogate_lr, rng);
    }
    // Lines 9-11: M generator updates against the surrogate.
    {
      BGC_TRACE_SCOPE("phase.attack.trigger");
      for (int m = 0; m < attack_config.generator_steps; ++m) {
        std::vector<int> update_nodes = SampleUpdateNodes(
            clean, attack_config.target_class, attack_config.update_batch,
            rng);
        result.generator->TrainStep(clean, surrogate, update_nodes,
                                    attack_config.target_class,
                                    attack_config.ego, rng);
      }
    }
    // Line 12: rebuild G_P with the updated triggers.
    {
      BGC_TRACE_SCOPE("phase.attack.attach");
      poisoned = BuildPoisonedSource(
          clean, result.poisoned_nodes,
          result.generator->Generate(clean, result.poisoned_nodes),
          attack_config.target_class, flip);
    }
    // Line 13: one condensation update on G_P.
    {
      BGC_TRACE_SCOPE("phase.condense.epoch");
      condenser.Epoch(poisoned);
    }
  }
  result.condensed = condenser.Result();
  return result;
}

}  // namespace bgc::attack
