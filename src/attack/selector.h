#ifndef BGC_ATTACK_SELECTOR_H_
#define BGC_ATTACK_SELECTOR_H_

#include <vector>

#include "src/condense/condenser.h"
#include "src/core/rng.h"

namespace bgc::attack {

/// Configuration of the poisoned-node selection module (§4.2).
struct SelectorConfig {
  int target_class = 0;
  int budget = 10;             // Δ_P
  int clusters_per_class = 4;  // K
  float lambda = 0.1f;         // degree penalty λ in Eq. (9)
  int selector_epochs = 100;   // f_sel training epochs
  int hidden_dim = 32;
};

/// Representative poisoned-node selection (Eq. 7-9):
/// train a GCN f_sel on the source graph, K-Means its hidden embeddings per
/// non-target class, score m(v) = ||h_v - h_centroid||₂ + λ·deg(v), and take
/// the most representative (lowest-score: nearest the centroid with a
/// degree penalty) n = Δ_P / ((C-1)·K) nodes per cluster.
///
/// Only labeled nodes of classes != target_class are eligible: these are the
/// nodes whose flipped labels poison the per-class gradients.
std::vector<int> SelectPoisonedNodes(const condense::SourceGraph& source,
                                     int num_classes,
                                     const SelectorConfig& config, Rng& rng);

/// BGC_Rand ablation (Fig. 3): uniformly random eligible nodes instead of
/// representative ones.
std::vector<int> SelectRandomNodes(const condense::SourceGraph& source,
                                   int target_class, int budget, Rng& rng);

}  // namespace bgc::attack

#endif  // BGC_ATTACK_SELECTOR_H_
