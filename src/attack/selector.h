#ifndef BGC_ATTACK_SELECTOR_H_
#define BGC_ATTACK_SELECTOR_H_

#include <vector>

#include "src/condense/condenser.h"
#include "src/core/rng.h"

namespace bgc::attack {

/// Configuration of the poisoned-node selection module (§4.2).
struct SelectorConfig {
  int target_class = 0;
  int budget = 10;             // Δ_P
  int clusters_per_class = 4;  // K
  float lambda = 0.1f;         // degree-bonus weight λ in Eq. (9)
  int selector_epochs = 100;   // f_sel training epochs
  int hidden_dim = 32;
};

/// Eq. (9) selection score: m(v) = ||h_v - h_centroid||₂ - λ·deg(v).
/// Candidates are ranked ascending, so among nodes equidistant from their
/// cluster centroid the higher-degree — more influential — node wins. (The
/// degree term is a *bonus*, not a penalty: the paper wants nodes that are
/// both representative of the class and well connected.)
inline float SelectionScore(float dist, float degree, float lambda) {
  return dist - lambda * degree;
}

/// Per-cluster quota n = max(1, Δ_P / (populated · k)), where k is the
/// number of centroids K-Means actually produced for this class — which is
/// smaller than the configured clusters_per_class whenever the class pool
/// is small (K-Means clamps k to the pool size). Dividing by the
/// configured value would under-fill the budget before the leftover
/// top-up, losing per-cluster balance.
inline int PerClusterQuota(int budget, int populated_classes, int actual_k) {
  if (populated_classes < 1 || actual_k < 1) return 1;
  const int quota = budget / (populated_classes * actual_k);
  return quota < 1 ? 1 : quota;
}

/// Representative poisoned-node selection (Eq. 7-9):
/// train a GCN f_sel on the source graph, K-Means its hidden embeddings per
/// non-target class, score each candidate with SelectionScore, and take the
/// best-scoring (nearest the centroid, ties broken toward high degree)
/// PerClusterQuota nodes per cluster.
///
/// Only labeled nodes of classes != target_class are eligible: these are the
/// nodes whose flipped labels poison the per-class gradients.
std::vector<int> SelectPoisonedNodes(const condense::SourceGraph& source,
                                     int num_classes,
                                     const SelectorConfig& config, Rng& rng);

/// BGC_Rand ablation (Fig. 3): uniformly random eligible nodes instead of
/// representative ones.
std::vector<int> SelectRandomNodes(const condense::SourceGraph& source,
                                   int target_class, int budget, Rng& rng);

}  // namespace bgc::attack

#endif  // BGC_ATTACK_SELECTOR_H_
