#ifndef BGC_ATTACK_GTA_H_
#define BGC_ATTACK_GTA_H_

#include "src/attack/bgc.h"

namespace bgc::attack {

/// GTA baseline (Xi et al., USENIX Sec'21) adapted to graph condensation as
/// in the paper's Table 3: the adaptive trigger generator is trained once
/// against a surrogate fitted to the *original* graph; the poisoned graph
/// is then condensed with the triggers frozen. The condensation never sees
/// trigger updates — the paper's explanation for GTA's lower ASR.
AttackResult RunGta(const condense::SourceGraph& clean, int num_classes,
                    condense::Condenser& condenser,
                    const condense::CondenseConfig& condense_config,
                    const AttackConfig& attack_config, Rng& rng);

}  // namespace bgc::attack

#endif  // BGC_ATTACK_GTA_H_
