#ifndef BGC_CORE_ARENA_H_
#define BGC_CORE_ARENA_H_

#include <cstddef>

namespace bgc::core {

/// Size-bucketed caching allocator for tensor buffers.
///
/// Every Matrix allocation in the library routes through this arena (see
/// ArenaAllocator below and Matrix::data_). Requests are rounded up to the
/// next power-of-two bucket; Release() returns the buffer to that bucket's
/// free list instead of freeing, so the condensation loop — which builds
/// and tears down an essentially identical tape every step — stops paying
/// one malloc/free pair per intermediate after the first step.
///
/// Lifetime rules (see DESIGN.md §11):
///   - A buffer is owned by exactly one live allocation at a time; the
///     free lists only ever hold buffers whose owner has released them.
///     Reuse is handed over under the arena mutex, so a buffer released on
///     one thread and reacquired on another is properly synchronized.
///   - The arena never zeroes: callers (std::vector value-initialization
///     in practice) are responsible for initializing reused storage, which
///     keeps results bit-identical to the malloc path.
///   - High-water-mark trimming: TrimToStepPeak() — called at tape step
///     boundaries (Tape::Reset) — evicts cached bytes beyond the largest
///     live footprint observed since the previous boundary, so a one-off
///     spike cannot pin memory for the rest of the run.
///
/// The BGC_ARENA environment variable gates caching at process start:
/// unset/"on"/"1" = enabled, "off"/"0" = every call falls through to
/// operator new/delete (the ASan-friendly escape hatch); anything else
/// aborts with exit(2). Tests can override with SetEnabledForTesting.
class BufferArena {
 public:
  struct Stats {
    long long hits = 0;          // Acquire served from a free list
    long long misses = 0;        // Acquire fell through to operator new
    long long bypass = 0;        // calls while the arena was disabled
    long long trimmed_bytes = 0; // cumulative bytes evicted by trimming
    size_t cached_bytes = 0;     // bytes parked on free lists right now
    size_t live_bytes = 0;       // bytes currently acquired and not released
    size_t step_peak_bytes = 0;  // max live_bytes since last TrimToStepPeak
  };

  /// Process-wide arena (leaked, like obs::Registry, so buffers released
  /// from atexit hooks and static destructors stay safe).
  static BufferArena& Global();

  /// A buffer of at least `bytes` bytes (its bucket capacity). Contents of
  /// a reused buffer are unspecified; never zeroed here.
  void* Acquire(size_t bytes);

  /// Returns the buffer acquired with this exact `bytes` value. Cached
  /// unless caching is off or the cache already holds the step-peak
  /// footprint, in which case it is freed.
  void Release(void* ptr, size_t bytes);

  /// Evicts cached buffers beyond the live-byte peak observed since the
  /// previous call, resets the peak, and refreshes the obs gauges
  /// (arena.bytes_cached, arena.hit_rate). Call at step boundaries.
  void TrimToStepPeak();

  /// Frees every cached buffer (live allocations are untouched).
  void Clear();

  Stats stats() const;
  bool enabled() const;

  /// Overrides the BGC_ARENA setting; returns the previous value. Serial
  /// use only (tests/bench) — not safe concurrently with Acquire/Release.
  bool SetEnabledForTesting(bool on);

  BufferArena(const BufferArena&) = delete;
  BufferArena& operator=(const BufferArena&) = delete;

 private:
  BufferArena();
  ~BufferArena() = delete;  // leaked singleton
  struct Impl;
  Impl* impl_;
};

/// Minimal std::allocator replacement that routes array storage through
/// BufferArena::Global(). Stateless; all instances compare equal, so
/// containers can exchange storage freely.
template <typename T>
struct ArenaAllocator {
  using value_type = T;

  ArenaAllocator() = default;
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>&) {}  // NOLINT(runtime/explicit)

  T* allocate(size_t n) {
    return static_cast<T*>(BufferArena::Global().Acquire(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) {
    BufferArena::Global().Release(p, n * sizeof(T));
  }
};

template <typename T, typename U>
bool operator==(const ArenaAllocator<T>&, const ArenaAllocator<U>&) {
  return true;
}
template <typename T, typename U>
bool operator!=(const ArenaAllocator<T>&, const ArenaAllocator<U>&) {
  return false;
}

}  // namespace bgc::core

#endif  // BGC_CORE_ARENA_H_
