#ifndef BGC_CORE_RNG_H_
#define BGC_CORE_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace bgc {

/// Deterministic xoshiro256** PRNG seeded through splitmix64.
///
/// All stochastic components of the library (weight init, dataset synthesis,
/// trigger updates, subsampling defenses) draw from explicitly passed Rng
/// instances so every experiment is exactly reproducible from its seed. The
/// generator is not cryptographic and must not be used for security-relevant
/// randomness; it exists to make research runs repeatable across platforms
/// (unlike std::mt19937 + std::normal_distribution, whose stream is not
/// pinned down by the standard).
class Rng {
 public:
  /// Seeds the four-lane state from `seed` via splitmix64.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit draw.
  uint64_t NextU64();

  /// Uniform in [0, 1).
  double Uniform();

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal via Box-Muller (cached second deviate).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw with success probability p.
  bool Bernoulli(double p);

  /// Fisher-Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) in random order.
  /// Requires k <= n.
  std::vector<int> SampleWithoutReplacement(int n, int k);

  /// Returns a new generator seeded from this one's stream; used to hand
  /// independent substreams to parallel components.
  Rng Fork();

  /// Number of 64-bit words in the serialized generator state.
  static constexpr int kStateWords = 6;

  /// Serializes the complete state — the four xoshiro lanes plus the
  /// Box-Muller cached deviate — as opaque words. A generator restored via
  /// RestoreState continues the stream bit-identically, which is what makes
  /// resumed condensation runs (src/store) indistinguishable from
  /// uninterrupted ones.
  std::array<uint64_t, kStateWords> SaveState() const;
  void RestoreState(const std::array<uint64_t, kStateWords>& words);

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace bgc

#endif  // BGC_CORE_RNG_H_
