#ifndef BGC_CORE_CHECK_H_
#define BGC_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace bgc {

/// Terminates the process with a diagnostic message. Used by the BGC_CHECK
/// family; kept out-of-line so the macros stay cheap at call sites.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

namespace internal {

/// Builds the "lhs vs rhs" message for binary comparison checks.
template <typename A, typename B>
std::string FormatBinaryCheck(const A& lhs, const B& rhs) {
  std::ostringstream os;
  os << "(lhs=" << lhs << ", rhs=" << rhs << ")";
  return os.str();
}

}  // namespace internal
}  // namespace bgc

/// Fatal assertion, enabled in all build types. Research code fails fast:
/// a violated invariant means the experiment's output cannot be trusted.
#define BGC_CHECK(cond)                                         \
  do {                                                          \
    if (!(cond)) {                                              \
      ::bgc::CheckFailed(__FILE__, __LINE__, #cond, "");        \
    }                                                           \
  } while (0)

#define BGC_CHECK_MSG(cond, msg)                                \
  do {                                                          \
    if (!(cond)) {                                              \
      ::bgc::CheckFailed(__FILE__, __LINE__, #cond, (msg));     \
    }                                                           \
  } while (0)

#define BGC_CHECK_OP(lhs, op, rhs)                                         \
  do {                                                                     \
    auto&& bgc_check_lhs = (lhs);                                          \
    auto&& bgc_check_rhs = (rhs);                                          \
    if (!(bgc_check_lhs op bgc_check_rhs)) {                               \
      ::bgc::CheckFailed(                                                  \
          __FILE__, __LINE__, #lhs " " #op " " #rhs,                       \
          ::bgc::internal::FormatBinaryCheck(bgc_check_lhs,                \
                                             bgc_check_rhs));              \
    }                                                                      \
  } while (0)

#define BGC_CHECK_EQ(a, b) BGC_CHECK_OP(a, ==, b)
#define BGC_CHECK_NE(a, b) BGC_CHECK_OP(a, !=, b)
#define BGC_CHECK_LT(a, b) BGC_CHECK_OP(a, <, b)
#define BGC_CHECK_LE(a, b) BGC_CHECK_OP(a, <=, b)
#define BGC_CHECK_GT(a, b) BGC_CHECK_OP(a, >, b)
#define BGC_CHECK_GE(a, b) BGC_CHECK_OP(a, >=, b)

#endif  // BGC_CORE_CHECK_H_
