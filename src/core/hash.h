#ifndef BGC_CORE_HASH_H_
#define BGC_CORE_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace bgc {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) of `size` bytes.
/// Used by the bgcbin container to detect artifact corruption. `seed`
/// accepts a previous call's result so checksums can be computed
/// incrementally over scattered buffers.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// 64-bit FNV-1a. Stable across platforms; keys the artifact cache (hash of
/// the canonicalized experiment configuration).
uint64_t Fnv1a64(std::string_view bytes);

}  // namespace bgc

#endif  // BGC_CORE_HASH_H_
