#ifndef BGC_CORE_PARSE_H_
#define BGC_CORE_PARSE_H_

// Checked numeric parsing for flag values. Unlike atoi/atof — which return
// 0 on garbage and silently ignore trailing junk — these require the WHOLE
// string to parse and report failures as Status, so a typo'd flag exits
// with the offending value named instead of running the experiment with a
// zeroed parameter.

#include <cstdint>
#include <string>

#include "src/core/status.h"

namespace bgc {

/// Parses a signed decimal integer. The entire string must be consumed;
/// empty input, trailing characters, and out-of-range values are errors.
StatusOr<long long> ParseInt(const std::string& text);

/// Parses an unsigned decimal integer (no leading '-').
StatusOr<uint64_t> ParseU64(const std::string& text);

/// Parses a floating-point number (strtod grammar, full-string match;
/// NaN and infinities are rejected — no flag in this project wants them).
StatusOr<double> ParseDouble(const std::string& text);

/// ParseInt plus an inclusive range check, for flags with a documented
/// domain (epochs > 0, trigger-size >= 1, ...).
StatusOr<long long> ParseIntInRange(const std::string& text, long long min,
                                    long long max);

/// ParseDouble plus an inclusive range check (poison-ratio in [0, 1], ...).
StatusOr<double> ParseDoubleInRange(const std::string& text, double min,
                                    double max);

}  // namespace bgc

#endif  // BGC_CORE_PARSE_H_
