#include "src/core/rng.h"

#include <bit>
#include <cmath>

#include "src/core/check.h"

namespace bgc {
namespace {

uint64_t SplitMix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& lane : state_) lane = SplitMix64(s);
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  BGC_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (~uint64_t{0} - n + 1) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = Uniform();
  } while (u1 <= 1e-300);
  const double u2 = Uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

std::vector<int> Rng::SampleWithoutReplacement(int n, int k) {
  BGC_CHECK_GE(n, k);
  BGC_CHECK_GE(k, 0);
  std::vector<int> pool(n);
  for (int i = 0; i < n; ++i) pool[i] = i;
  // Partial Fisher-Yates: after k swaps the prefix is the sample.
  for (int i = 0; i < k; ++i) {
    int j = i + static_cast<int>(UniformInt(static_cast<uint64_t>(n - i)));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

Rng Rng::Fork() { return Rng(NextU64()); }

std::array<uint64_t, Rng::kStateWords> Rng::SaveState() const {
  return {state_[0], state_[1], state_[2], state_[3],
          has_cached_normal_ ? uint64_t{1} : uint64_t{0},
          std::bit_cast<uint64_t>(cached_normal_)};
}

void Rng::RestoreState(const std::array<uint64_t, kStateWords>& words) {
  for (int i = 0; i < 4; ++i) state_[i] = words[i];
  has_cached_normal_ = words[4] != 0;
  cached_normal_ = std::bit_cast<double>(words[5]);
}

}  // namespace bgc
