#ifndef BGC_CORE_STATS_H_
#define BGC_CORE_STATS_H_

#include <string>
#include <vector>

namespace bgc {

/// Mean and (population) standard deviation of repeated runs, as reported in
/// the paper's "mean (std)" cells.
struct MeanStd {
  double mean = 0.0;
  double std = 0.0;
};

/// Computes mean/std over `values`. An empty input yields {0, 0}.
MeanStd ComputeMeanStd(const std::vector<double>& values);

/// Formats a metric cell the way the paper does, e.g. "81.23 (0.24)".
/// `values` are expected in [0, 1] and are scaled to percent.
std::string FormatPercentCell(const std::vector<double>& values);

/// Formats an already-aggregated pair in percent.
std::string FormatPercentCell(const MeanStd& ms);

}  // namespace bgc

#endif  // BGC_CORE_STATS_H_
