#include "src/core/fs.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

namespace bgc {
namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view content) {
  // The temp file must live in the target directory: rename() is only
  // atomic within one filesystem.
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return BGC_ERR(Errno("cannot create", tmp));

  const char* p = content.data();
  size_t left = content.size();
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = BGC_ERR(Errno("write failed", tmp));
      ::close(fd);
      ::unlink(tmp.c_str());
      return s;
    }
    p += n;
    left -= static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    Status s = BGC_ERR(Errno("fsync failed", tmp));
    ::close(fd);
    ::unlink(tmp.c_str());
    return s;
  }
  if (::close(fd) != 0) {
    Status s = BGC_ERR(Errno("close failed", tmp));
    ::unlink(tmp.c_str());
    return s;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    Status s = BGC_ERR(Errno("rename failed", tmp + " -> " + path));
    ::unlink(tmp.c_str());
    return s;
  }
  return Status::Ok();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return BGC_ERR(Errno("cannot open", path));
  std::string out;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) return BGC_ERR("read failed " + path);
  return out;
}

bool FileExists(const std::string& path) {
  return ::access(path.c_str(), R_OK) == 0;
}

}  // namespace bgc
