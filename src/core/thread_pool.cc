#include "src/core/thread_pool.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "src/core/check.h"
#include "src/core/parse.h"
#include "src/obs/obs.h"

namespace bgc {

namespace {

/// True while the current thread is executing a pool task; nested Run calls
/// then degrade to inline execution instead of deadlocking on the pool.
thread_local bool t_inside_pool_task = false;

std::mutex g_global_pool_mu;
std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

int ThreadPool::DefaultNumThreads() {
  // Same fail-fast contract as BGC_SIMD / BGC_AUTOGRAD / BGC_ARENA: a set
  // but malformed value exits 2 with the value named, instead of the old
  // atoi behavior where BGC_NUM_THREADS=garbage (or =0) silently fell back
  // to hardware concurrency and the run proceeded mis-configured.
  if (const char* env = std::getenv("BGC_NUM_THREADS")) {
    if (env[0] != '\0') {
      StatusOr<long long> n = ParseIntInRange(env, 1, 4096);
      if (!n.ok()) {
        std::fprintf(stderr,
                     "bgc: BGC_NUM_THREADS=%s is unusable (%s); expected an "
                     "integer in [1, 4096], or unset for hardware "
                     "concurrency\n",
                     env, n.status().message().c_str());
        std::exit(2);
      }
      return static_cast<int>(n.value());
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  std::unique_ptr<ThreadPool>& slot = GlobalPoolSlot();
  if (!slot) slot = std::make_unique<ThreadPool>(DefaultNumThreads());
  return *slot;
}

void ThreadPool::SetGlobalNumThreads(int num_threads) {
  if (num_threads <= 0) num_threads = DefaultNumThreads();
  std::lock_guard<std::mutex> lock(g_global_pool_mu);
  std::unique_ptr<ThreadPool>& slot = GlobalPoolSlot();
  if (slot && slot->num_threads() == num_threads) return;
  slot = std::make_unique<ThreadPool>(num_threads);
}

ThreadPool::ThreadPool(int num_threads) {
  BGC_CHECK_GE(num_threads, 1);
  num_threads_ = num_threads;
  workers_.reserve(num_threads - 1);
  for (int i = 0; i < num_threads - 1; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  job_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

int ThreadPool::RunTasks(Job& job) {
  int done = 0;
#ifndef BGC_OBS_DISABLED
  // Per-thread busy accounting: timestamps bracket the whole claim loop
  // (one clock pair per dispatch, not per task) so the pool's scheduling
  // cost stays invisible to the kernels being timed.
  const bool observed = obs::MetricsEnabled();
  const int64_t t0 = observed ? obs::NowNs() : 0;
#endif
  for (;;) {
    const int t = job.next.fetch_add(1, std::memory_order_relaxed);
    if (t >= job.total) break;
    (*job.fn)(t);
    ++done;
  }
#ifndef BGC_OBS_DISABLED
  if (observed && done > 0) {
    obs::Registry::Global().AddThreadBusyNs(obs::NowNs() - t0);
    BGC_COUNTER_ADD("pool.tasks", done);
  }
#endif
  return done;
}

void ThreadPool::WorkerLoop() {
  t_inside_pool_task = true;
  long seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      job_cv_.wait(lock,
                   [&] { return shutdown_ || job_epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = job_epoch_;
      job = job_;
    }
    if (!job) continue;
    const int done = RunTasks(*job);
    if (done > 0 &&
        job->unfinished.fetch_sub(done, std::memory_order_acq_rel) == done) {
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
  }
}

void ThreadPool::Run(int num_tasks, const std::function<void(int)>& fn) {
  if (num_tasks <= 0) return;
  if (workers_.empty() || num_tasks == 1 || t_inside_pool_task) {
    for (int t = 0; t < num_tasks; ++t) fn(t);
    return;
  }

  BGC_COUNTER_ADD("pool.dispatches", 1);
  BGC_GAUGE_SET("pool.threads", num_threads_);
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->total = num_tasks;
  job->unfinished.store(num_tasks, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++job_epoch_;
  }
  job_cv_.notify_all();

  t_inside_pool_task = true;
  const int done = RunTasks(*job);
  t_inside_pool_task = false;

  std::unique_lock<std::mutex> lock(mu_);
  if (done > 0) job->unfinished.fetch_sub(done, std::memory_order_acq_rel);
  done_cv_.wait(lock, [&] {
    return job->unfinished.load(std::memory_order_acquire) == 0;
  });
  // Concurrent Run() calls are allowed (the grid scheduler's workers are
  // plain threads, not pool tasks): only clear the slot if another caller
  // has not already published its own job there.
  if (job_ == job) job_.reset();
}

}  // namespace bgc
