#include "src/core/status.h"

#include <cstring>

namespace bgc::internal {

std::string ErrorLocation(const char* file, int line) {
  // Trim the build-tree prefix so messages stay readable.
  const char* base = std::strrchr(file, '/');
  std::string out(base != nullptr ? base + 1 : file);
  out += ":";
  out += std::to_string(line);
  out += ": ";
  return out;
}

}  // namespace bgc::internal
