#ifndef BGC_CORE_FS_H_
#define BGC_CORE_FS_H_

#include <string>
#include <string_view>

#include "src/core/status.h"

namespace bgc {

/// Atomically replaces `path` with `content`: the bytes are written to a
/// temp file in the same directory, fsync'd, and renamed over `path`
/// (POSIX rename atomicity). A crash mid-write can therefore never leave a
/// half-written deliverable behind — readers see either the old file or the
/// complete new one. Both the text savers (data/condense io) and the bgcbin
/// binary store go through this helper.
Status WriteFileAtomic(const std::string& path, std::string_view content);

/// Reads the whole file into a string.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// True when `path` exists and is readable.
bool FileExists(const std::string& path);

}  // namespace bgc

#endif  // BGC_CORE_FS_H_
