#include "src/core/parse.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace bgc {
namespace {

Status NotANumber(const std::string& text, const char* kind) {
  return Status::Error("'" + text + "' is not a valid " + kind);
}

// The strto* family silently skips leading whitespace; a strict flag
// parser must not.
bool StartsWithSpace(const std::string& text) {
  return !text.empty() &&
         std::isspace(static_cast<unsigned char>(text[0])) != 0;
}

}  // namespace

StatusOr<long long> ParseInt(const std::string& text) {
  if (text.empty() || StartsWithSpace(text)) {
    return NotANumber(text, "integer");
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) return NotANumber(text, "integer");
  if (errno == ERANGE) {
    return Status::Error("'" + text + "' is out of integer range");
  }
  return value;
}

StatusOr<uint64_t> ParseU64(const std::string& text) {
  if (text.empty() || text[0] == '-' || StartsWithSpace(text)) {
    return NotANumber(text, "unsigned integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) {
    return NotANumber(text, "unsigned integer");
  }
  if (errno == ERANGE) {
    return Status::Error("'" + text + "' is out of unsigned integer range");
  }
  return static_cast<uint64_t>(value);
}

StatusOr<double> ParseDouble(const std::string& text) {
  if (text.empty() || StartsWithSpace(text)) {
    return NotANumber(text, "number");
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size()) return NotANumber(text, "number");
  if (errno == ERANGE) {
    return Status::Error("'" + text + "' is out of floating-point range");
  }
  if (!std::isfinite(value)) return NotANumber(text, "finite number");
  return value;
}

StatusOr<long long> ParseIntInRange(const std::string& text, long long min,
                                    long long max) {
  StatusOr<long long> parsed = ParseInt(text);
  if (!parsed.ok()) return parsed;
  if (parsed.value() < min || parsed.value() > max) {
    return Status::Error("'" + text + "' is outside [" +
                         std::to_string(min) + ", " + std::to_string(max) +
                         "]");
  }
  return parsed;
}

StatusOr<double> ParseDoubleInRange(const std::string& text, double min,
                                    double max) {
  StatusOr<double> parsed = ParseDouble(text);
  if (!parsed.ok()) return parsed;
  if (parsed.value() < min || parsed.value() > max) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "' is outside [%g, %g]", min, max);
    return Status::Error("'" + text + buf);
  }
  return parsed;
}

}  // namespace bgc
