#include "src/core/stats.h"

#include <cmath>
#include <cstdio>

namespace bgc {

MeanStd ComputeMeanStd(const std::vector<double>& values) {
  MeanStd out;
  if (values.empty()) return out;
  double sum = 0.0;
  for (double v : values) sum += v;
  out.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - out.mean) * (v - out.mean);
  out.std = std::sqrt(sq / static_cast<double>(values.size()));
  return out;
}

std::string FormatPercentCell(const std::vector<double>& values) {
  MeanStd ms = ComputeMeanStd(values);
  ms.mean *= 100.0;
  ms.std *= 100.0;
  return FormatPercentCell(ms);
}

std::string FormatPercentCell(const MeanStd& ms) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.2f (%.2f)", ms.mean, ms.std);
  return buf;
}

}  // namespace bgc
