#ifndef BGC_CORE_PARALLEL_H_
#define BGC_CORE_PARALLEL_H_

#include <functional>
#include <vector>

#include "src/core/thread_pool.h"

namespace bgc {

/// Parallel front end used by the tensor/graph kernels.
///
/// Everything here is deterministic by construction: ranges are split into
/// fixed chunks whose boundaries depend only on (begin, end, grain) — never
/// on the thread count — and reductions combine per-chunk partials in
/// ascending chunk order on the calling thread. No atomics or
/// first-come-first-merged accumulation ever touches numeric results, so
/// every kernel produces bit-identical output for BGC_NUM_THREADS=1, 2, ...
///
/// `grain` is the minimum chunk size; a range that fits in one chunk runs
/// inline on the caller without touching the pool, so small inputs (the
/// common case in condensed-graph training) pay no dispatch overhead.

/// Grain constants. These are part of each kernel's numeric contract where
/// chunking changes float accumulation order (reductions, sparse scatter),
/// so they are fixed here rather than derived from the machine.
inline constexpr int kElementwiseGrain = 1 << 15;  // flat map ops; order-safe
inline constexpr int kReduceGrain = 1 << 20;       // Sum/Dot/MaxAbs partials

/// Number of fixed chunks for a range of n elements at the given grain.
inline int NumFixedChunks(long long n, long long grain) {
  if (n <= 0) return 0;
  if (grain < 1) grain = 1;
  return static_cast<int>((n + grain - 1) / grain);
}

/// Splits [begin, end) into fixed chunks of `grain` elements (the last one
/// possibly shorter) and invokes fn(chunk_begin, chunk_end) for each,
/// possibly concurrently. Each index is covered by exactly one chunk.
inline void ParallelFor(int begin, int end, int grain,
                        const std::function<void(int, int)>& fn) {
  const long long n = static_cast<long long>(end) - begin;
  if (n <= 0) return;
  const long long g = grain < 1 ? 1 : grain;
  const int chunks = NumFixedChunks(n, g);
  if (chunks <= 1) {
    fn(begin, end);
    return;
  }
  ThreadPool::Global().Run(chunks, [&](int c) {
    const long long b = begin + c * g;
    const long long e = b + g < end ? b + g : end;
    fn(static_cast<int>(b), static_cast<int>(e));
  });
}

/// Chunked reduction: partial(chunk_begin, chunk_end) computes one partial
/// per fixed chunk (concurrently), then the partials are folded as
/// combine(combine(combine(init, p0), p1), ...) in ascending chunk order.
/// With one chunk this degenerates to combine(init, partial(begin, end)),
/// i.e. the flat serial loop.
template <typename T, typename PartialFn, typename CombineFn>
T ParallelReduce(int begin, int end, int grain, T init, PartialFn partial,
                 CombineFn combine) {
  const long long n = static_cast<long long>(end) - begin;
  if (n <= 0) return init;
  const long long g = grain < 1 ? 1 : grain;
  const int chunks = NumFixedChunks(n, g);
  if (chunks <= 1) return combine(init, partial(begin, end));
  std::vector<T> partials(chunks);
  ThreadPool::Global().Run(chunks, [&](int c) {
    const long long b = begin + c * g;
    const long long e = b + g < end ? b + g : end;
    partials[c] = partial(static_cast<int>(b), static_cast<int>(e));
  });
  T acc = init;
  for (int c = 0; c < chunks; ++c) acc = combine(acc, partials[c]);
  return acc;
}

}  // namespace bgc

#endif  // BGC_CORE_PARALLEL_H_
