#include "src/core/check.h"

#include <cstdio>
#include <cstdlib>

namespace bgc {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "BGC_CHECK failed at %s:%d: %s %s\n", file, line, expr,
               message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace bgc
