#include "src/core/arena.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <new>
#include <vector>

#include "src/obs/obs.h"

namespace bgc::core {

namespace {

// Smallest bucket: one cache line of floats. Requests below this share the
// 64-byte bucket so tiny matrices (1x1 losses, bias rows) still reuse.
constexpr size_t kMinBucketBytes = 64;
// log2 of the largest bucket (2^40 = 1 TiB): anything above is a caller
// bug long before it is an arena concern.
constexpr int kNumBuckets = 41;

int BucketIndex(size_t bytes) {
  if (bytes <= kMinBucketBytes) bytes = kMinBucketBytes;
  // Index of the smallest power of two >= bytes.
  int idx = 0;
  size_t cap = 1;
  while (cap < bytes) {
    cap <<= 1;
    ++idx;
  }
  return idx;
}

size_t BucketBytes(int idx) { return size_t{1} << idx; }

[[noreturn]] void DieBadArenaEnv(const char* value) {
  std::fprintf(stderr,
               "bgc: BGC_ARENA=%s is not understood; valid values are "
               "on|1|off|0\n",
               value);
  std::exit(2);
}

bool EnabledFromEnv() {
  const char* env = std::getenv("BGC_ARENA");
  if (env == nullptr || env[0] == '\0') return true;
  if (std::strcmp(env, "on") == 0 || std::strcmp(env, "1") == 0) return true;
  if (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0) {
    return false;
  }
  DieBadArenaEnv(env);
}

}  // namespace

struct BufferArena::Impl {
  std::mutex mu;
  bool enabled = true;
  std::vector<void*> free_lists[kNumBuckets];
  Stats stats;

  // Caller holds mu. Evicts cached buffers (largest buckets first, so one
  // eviction frees the most) until cached_bytes <= target.
  void EvictDownToLocked(size_t target) {
    for (int b = kNumBuckets - 1; b >= 0 && stats.cached_bytes > target;
         --b) {
      std::vector<void*>& list = free_lists[b];
      while (!list.empty() && stats.cached_bytes > target) {
        ::operator delete(list.back());
        list.pop_back();
        stats.cached_bytes -= BucketBytes(b);
        stats.trimmed_bytes += static_cast<long long>(BucketBytes(b));
      }
    }
  }
};

BufferArena::BufferArena() : impl_(new Impl) {
  impl_->enabled = EnabledFromEnv();
}

BufferArena& BufferArena::Global() {
  // Leaked: Matrix destructors in atexit hooks and static storage release
  // buffers after static destructors would have run.
  static BufferArena* g = new BufferArena();
  return *g;
}

void* BufferArena::Acquire(size_t bytes) {
  if (bytes == 0) bytes = 1;
  Impl* impl = impl_;
  const int b = BucketIndex(bytes);
  const size_t cap = BucketBytes(b);
  {
    std::lock_guard<std::mutex> lock(impl->mu);
    if (!impl->enabled) {
      ++impl->stats.bypass;
    } else {
      impl->stats.live_bytes += cap;
      if (impl->stats.live_bytes > impl->stats.step_peak_bytes) {
        impl->stats.step_peak_bytes = impl->stats.live_bytes;
      }
      std::vector<void*>& list = impl->free_lists[b];
      if (!list.empty()) {
        void* p = list.back();
        list.pop_back();
        impl->stats.cached_bytes -= cap;
        ++impl->stats.hits;
        return p;
      }
      ++impl->stats.misses;
    }
  }
  return ::operator new(cap);
}

void BufferArena::Release(void* ptr, size_t bytes) {
  if (ptr == nullptr) return;
  if (bytes == 0) bytes = 1;
  Impl* impl = impl_;
  const int b = BucketIndex(bytes);
  const size_t cap = BucketBytes(b);
  {
    std::lock_guard<std::mutex> lock(impl->mu);
    if (impl->enabled) {
      // Saturating: a buffer acquired while the arena was disabled (tests
      // toggle SetEnabledForTesting) was never counted as live.
      impl->stats.live_bytes -=
          cap <= impl->stats.live_bytes ? cap : impl->stats.live_bytes;
      // Cache only up to the peak footprint this step has demonstrated it
      // needs; beyond that the buffer goes back to the system.
      if (impl->stats.cached_bytes + cap <= impl->stats.step_peak_bytes) {
        impl->free_lists[b].push_back(ptr);
        impl->stats.cached_bytes += cap;
        return;
      }
    } else {
      ++impl->stats.bypass;
    }
  }
  ::operator delete(ptr);
}

void BufferArena::TrimToStepPeak() {
  Impl* impl = impl_;
  long long hits, misses;
  size_t cached;
  {
    std::lock_guard<std::mutex> lock(impl->mu);
    // Keep at most what was simultaneously live since the last boundary:
    // that is exactly the working set one more identical step needs.
    impl->EvictDownToLocked(impl->stats.step_peak_bytes);
    impl->stats.step_peak_bytes = impl->stats.live_bytes;
    hits = impl->stats.hits;
    misses = impl->stats.misses;
    cached = impl->stats.cached_bytes;
  }
  BGC_GAUGE_SET("arena.bytes_cached", static_cast<double>(cached));
  if (hits + misses > 0) {
    BGC_GAUGE_SET("arena.hit_rate",
                  static_cast<double>(hits) /
                      static_cast<double>(hits + misses));
  }
}

void BufferArena::Clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->EvictDownToLocked(0);
}

BufferArena::Stats BufferArena::stats() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->stats;
}

bool BufferArena::enabled() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->enabled;
}

bool BufferArena::SetEnabledForTesting(bool on) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  const bool previous = impl_->enabled;
  impl_->enabled = on;
  return previous;
}

}  // namespace bgc::core
