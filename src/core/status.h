#ifndef BGC_CORE_STATUS_H_
#define BGC_CORE_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "src/core/check.h"

namespace bgc {

/// Recoverable error carrier for operations whose failure is an expected
/// runtime condition (unreadable files, malformed artifacts, checksum
/// mismatches) rather than a violated invariant. Invariant violations keep
/// using BGC_CHECK; Status is for inputs the process does not control.
class Status {
 public:
  /// Success.
  Status() = default;

  static Status Ok() { return Status(); }

  static Status Error(std::string message) {
    Status s;
    s.ok_ = false;
    s.message_ = std::move(message);
    return s;
  }

  bool ok() const { return ok_; }
  const std::string& message() const { return message_; }

 private:
  bool ok_ = true;
  std::string message_;
};

/// Either a value or the error explaining why there is none.
template <typename T>
class StatusOr {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors absl::StatusOr.
  StatusOr(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  StatusOr(Status status) : status_(std::move(status)) {
    BGC_CHECK_MSG(!status_.ok(), "StatusOr constructed from an OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Fatal on error: use only after checking ok(), or where failure is a
  /// programming bug.
  const T& value() const& {
    BGC_CHECK_MSG(ok(), status_.message());
    return *value_;
  }
  T& value() & {
    BGC_CHECK_MSG(ok(), status_.message());
    return *value_;
  }

  /// Moves the value out (fatal on error).
  T take() {
    BGC_CHECK_MSG(ok(), status_.message());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

namespace internal {

/// "file.cc:42: " prefix for error messages; keeps BGC_ERR cheap to expand.
std::string ErrorLocation(const char* file, int line);

}  // namespace internal
}  // namespace bgc

/// Builds a Status::Error carrying file/line context, so a failed artifact
/// load reports where in the loader the input went bad.
#define BGC_ERR(msg) \
  ::bgc::Status::Error(::bgc::internal::ErrorLocation(__FILE__, __LINE__) + \
                       (msg))

#endif  // BGC_CORE_STATUS_H_
