#ifndef BGC_CORE_THREAD_POOL_H_
#define BGC_CORE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace bgc {

/// Fixed-size worker pool behind every parallel kernel in the library
/// (see parallel.h for the ParallelFor/ParallelReduce front end).
///
/// Determinism contract: the pool only decides *which thread* runs a task
/// and *when*; it never decides *how work is split*. Callers must make each
/// task either write disjoint state or fill its own slot of a result array
/// that the caller reduces in fixed task order afterwards. Under that
/// contract every kernel built on the pool is bit-identical for every
/// thread count, including 1.
class ThreadPool {
 public:
  /// Spawns `num_threads - 1` workers (the caller of Run participates as
  /// the remaining thread). `num_threads <= 1` spawns nothing and Run
  /// executes inline.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Runs fn(0), ..., fn(num_tasks - 1), each exactly once, possibly
  /// concurrently, and blocks until all have finished. The calling thread
  /// participates. Task-to-thread assignment is unspecified. Calls from
  /// inside a task (nested parallelism) execute inline on the caller.
  void Run(int num_tasks, const std::function<void(int)>& fn);

  /// The process-wide pool, lazily constructed on first use with
  /// DefaultNumThreads() threads.
  static ThreadPool& Global();

  /// Replaces the global pool with one of `num_threads` threads
  /// (`num_threads <= 0` re-resolves DefaultNumThreads()). For benches and
  /// tests; must not be called concurrently with kernels on other threads.
  static void SetGlobalNumThreads(int num_threads);

  /// Thread count from the BGC_NUM_THREADS environment variable if set to
  /// a positive integer, otherwise std::thread::hardware_concurrency().
  static int DefaultNumThreads();

 private:
  /// Per-dispatch shared state. Workers hold a shared_ptr so a straggler
  /// waking after completion sees an exhausted counter instead of freed
  /// memory.
  struct Job {
    const std::function<void(int)>* fn = nullptr;
    int total = 0;
    std::atomic<int> next{0};
    std::atomic<int> unfinished{0};
  };

  void WorkerLoop();
  /// Claims and runs tasks from `job` until the counter is exhausted;
  /// returns how many tasks this thread executed.
  int RunTasks(Job& job);

  int num_threads_ = 1;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable job_cv_;   // workers: a new job was published
  std::condition_variable done_cv_;  // Run(): the current job drained
  std::shared_ptr<Job> job_;         // guarded by mu_
  long job_epoch_ = 0;               // guarded by mu_
  bool shutdown_ = false;            // guarded by mu_
};

}  // namespace bgc

#endif  // BGC_CORE_THREAD_POOL_H_
