#ifndef BGC_REDUCE_REDUCE_H_
#define BGC_REDUCE_REDUCE_H_

// Graph-reduction backends that are NOT learned condensation, after "On the
// Robustness of Graph Reduction Against GNN Backdoor" (PAPERS.md): a
// heavy-edge-matching coarsener and two edge sparsifiers, each implemented
// as a condense::Condenser so the whole attack / eval / serve / bgcbin
// stack runs unchanged against them. They answer the transfer question the
// bench_transfer_matrix binary sweeps: does a trigger tuned against a
// GCond-family trajectory survive a defender who coarsens or sparsifies
// instead of condensing?
//
// Contract differences from the learned methods:
//  - The reduction is recomputed inside every Epoch() from the (possibly
//    attack-mutated) source, because attack::RunBgc reads Result() each
//    epoch and re-attaches triggers between epochs. Result() just returns
//    the stored reduction, so it stays cheap in that loop.
//  - Everything is plain serial code drawing only on the passed Rng, so
//    results are bit-identical across BGC_NUM_THREADS and across the
//    serve/CLI/bench entry points by construction.
//  - The delivered labels are the source's observed train-view labels
//    (aggregated for the coarsener): unlike synthetic-label condensation,
//    reduction hands the victim real nodes/supernodes.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/condense/condenser.h"
#include "src/core/rng.h"

namespace bgc::reduce {

/// Heavy-edge-matching coarsening (Metis-style) with feature/label
/// aggregation onto supernodes.
///
/// Rounds of greedy maximal matching on the current supergraph — visiting
/// candidate pairs by (aggregated edge weight desc, id asc) — merge the
/// heaviest-connected cluster pairs until exactly
/// min(config.num_condensed, n) supernodes remain; a round that finds no
/// inter-cluster edge falls back to pairing the smallest clusters so the
/// target is always reached. Per supernode:
///  - feature = mean of member features (members visited in ascending id);
///  - label   = majority vote over member observed labels, ties to the
///    smaller class id;
///  - adjacency = sum of original edge weights between the two clusters,
///    with intra-cluster mass kept as a self-loop (total edge mass is
///    conserved up to float summation order).
/// Supernodes are emitted ordered by (label asc, smallest member id asc),
/// matching the class-grouped label layout of the learned methods.
class CoarsenCondenser : public condense::Condenser {
 public:
  CoarsenCondenser() = default;

  void Initialize(const condense::SourceGraph& source, int num_classes,
                  const condense::CondenseConfig& config, Rng& rng) override;
  void Epoch(const condense::SourceGraph& source) override;
  condense::CondensedGraph Result() const override;
  std::string name() const override { return "coarsen"; }

  /// node id -> supernode row of the last computed reduction (test hook
  /// for the mass-conservation invariants).
  const std::vector<int>& assignments() const { return assignments_; }

 private:
  void Reduce(const condense::SourceGraph& source);

  condense::CondenseConfig config_;
  int num_classes_ = 0;
  std::vector<int> assignments_;
  condense::CondensedGraph result_;
};

/// Edge sparsification: keeps the node set (features/labels pass through
/// untouched) and a `config.sparsify_keep` fraction of the undirected
/// non-self-loop edges; `config.num_condensed` is ignored.
///
/// kEffectiveResistance scores each undirected edge with the standard
/// effective-resistance upper bound w_uv * (1/d_u + 1/d_v) (weighted
/// degrees) and keeps the top-k — the spectral-flavored sparsifier that
/// favors bridge-like, hard-to-replace edges. kUniform keeps k edges
/// uniformly at random from the condenser's forked Rng stream, the control
/// arm. Ties and the random ranking break deterministically by (src, dst),
/// and self-loops are always kept outside the budget.
class SparsifyCondenser : public condense::Condenser {
 public:
  enum class Mode { kEffectiveResistance, kUniform };

  explicit SparsifyCondenser(Mode mode) : mode_(mode) {}

  void Initialize(const condense::SourceGraph& source, int num_classes,
                  const condense::CondenseConfig& config, Rng& rng) override;
  void Epoch(const condense::SourceGraph& source) override;
  condense::CondensedGraph Result() const override;
  std::string name() const override {
    return mode_ == Mode::kEffectiveResistance ? "sparsify-er"
                                               : "sparsify-rand";
  }

 private:
  void Reduce(const condense::SourceGraph& source);

  Mode mode_;
  condense::CondenseConfig config_;
  int num_classes_ = 0;
  /// Forked at Initialize and replayed from `rng_state_` on every
  /// Reduce(), so the kUniform ranking does not depend on epoch count.
  Rng rng_;
  std::array<uint64_t, Rng::kStateWords> rng_state_{};
  condense::CondensedGraph result_;
};

}  // namespace bgc::reduce

#endif  // BGC_REDUCE_REDUCE_H_
