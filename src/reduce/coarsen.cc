#include "src/reduce/reduce.h"

#include <algorithm>
#include <map>
#include <utility>

#include "src/core/check.h"

namespace bgc::reduce {
namespace {

/// Path-compressing find over a plain parent vector.
int Find(std::vector<int>& parent, int v) {
  while (parent[v] != v) {
    parent[v] = parent[parent[v]];
    v = parent[v];
  }
  return v;
}

}  // namespace

void CoarsenCondenser::Initialize(const condense::SourceGraph& source,
                                  int num_classes,
                                  const condense::CondenseConfig& config,
                                  Rng& rng) {
  BGC_CHECK_GT(num_classes, 0);
  BGC_CHECK_GT(config.num_condensed, 0);
  config_ = config;
  num_classes_ = num_classes;
  (void)rng;  // heavy-edge matching is fully deterministic
  Reduce(source);
}

void CoarsenCondenser::Epoch(const condense::SourceGraph& source) {
  // The attack mutates the source between epochs (trigger re-attachment),
  // so the coarsening is recomputed from scratch each time.
  Reduce(source);
}

condense::CondensedGraph CoarsenCondenser::Result() const { return result_; }

void CoarsenCondenser::Reduce(const condense::SourceGraph& source) {
  const int n = source.features.rows();
  BGC_CHECK_GT(n, 0);
  const int target = std::min(config_.num_condensed, n);

  std::vector<int> parent(n);
  for (int i = 0; i < n; ++i) parent[i] = i;
  std::vector<int> cluster_size(n, 1);
  int count = n;

  const std::vector<int>& row_ptr = source.adj.row_ptr();
  const std::vector<int>& col_idx = source.adj.col_idx();
  const std::vector<float>& values = source.adj.values();

  while (count > target) {
    // Aggregate the current supergraph: weight between cluster roots,
    // keyed (min_root, max_root) so both edge directions coalesce.
    std::map<std::pair<int, int>, float> super;
    for (int u = 0; u < n; ++u) {
      const int cu = Find(parent, u);
      for (int k = row_ptr[u]; k < row_ptr[u + 1]; ++k) {
        const int cv = Find(parent, col_idx[k]);
        if (cu == cv) continue;
        super[{std::min(cu, cv), std::max(cu, cv)}] += values[k];
      }
    }
    struct Candidate {
      float weight;
      int a, b;
    };
    std::vector<Candidate> candidates;
    candidates.reserve(super.size());
    for (const auto& [pair, w] : super) {
      candidates.push_back({w, pair.first, pair.second});
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const Candidate& x, const Candidate& y) {
                if (x.weight != y.weight) return x.weight > y.weight;
                if (x.a != y.a) return x.a < y.a;
                return x.b < y.b;
              });
    int merges_left = count - target;
    std::vector<char> matched(n, 0);
    int merged = 0;
    for (const Candidate& c : candidates) {
      if (merges_left == 0) break;
      if (matched[c.a] || matched[c.b]) continue;
      matched[c.a] = matched[c.b] = 1;
      parent[c.b] = c.a;
      cluster_size[c.a] += cluster_size[c.b];
      --count;
      --merges_left;
      ++merged;
    }
    if (merged > 0) continue;
    // No inter-cluster edges left (disconnected remainder): pair the
    // smallest clusters until the target is reached.
    std::vector<int> roots;
    for (int i = 0; i < n; ++i) {
      if (Find(parent, i) == i) roots.push_back(i);
    }
    std::sort(roots.begin(), roots.end(), [&](int x, int y) {
      if (cluster_size[x] != cluster_size[y]) {
        return cluster_size[x] < cluster_size[y];
      }
      return x < y;
    });
    for (size_t i = 0; i + 1 < roots.size() && count > target; i += 2) {
      parent[roots[i + 1]] = roots[i];
      cluster_size[roots[i]] += cluster_size[roots[i + 1]];
      --count;
    }
  }

  // Root -> members (ascending id; roots discovered in ascending id too).
  std::vector<int> root_of(n);
  for (int i = 0; i < n; ++i) root_of[i] = Find(parent, i);
  std::map<int, std::vector<int>> members;
  for (int i = 0; i < n; ++i) members[root_of[i]].push_back(i);
  BGC_CHECK_EQ(static_cast<int>(members.size()), target);

  // Majority observed label per cluster, ties to the smaller class id.
  struct Super {
    int root = 0;
    int label = 0;
    int min_member = 0;
  };
  std::vector<Super> supers;
  supers.reserve(members.size());
  for (const auto& [root, mem] : members) {
    std::vector<int> votes(num_classes_, 0);
    for (int v : mem) {
      const int y = source.labels[v];
      if (y >= 0 && y < num_classes_) ++votes[y];
    }
    int best = 0;
    for (int c = 1; c < num_classes_; ++c) {
      if (votes[c] > votes[best]) best = c;
    }
    supers.push_back({root, best, mem.front()});
  }
  // Class-grouped supernode order, like the learned methods' labels.
  std::sort(supers.begin(), supers.end(), [](const Super& x, const Super& y) {
    if (x.label != y.label) return x.label < y.label;
    return x.min_member < y.min_member;
  });

  std::vector<int> row_of_root(n, -1);
  for (size_t s = 0; s < supers.size(); ++s) row_of_root[supers[s].root] = s;
  assignments_.assign(n, 0);
  for (int i = 0; i < n; ++i) assignments_[i] = row_of_root[root_of[i]];

  const int d = source.features.cols();
  condense::CondensedGraph out;
  out.num_classes = num_classes_;
  out.use_structure = true;
  out.features = Matrix(target, d);
  out.labels.resize(target);
  for (size_t s = 0; s < supers.size(); ++s) {
    const std::vector<int>& mem = members[supers[s].root];
    out.labels[s] = supers[s].label;
    float* row = out.features.RowPtr(static_cast<int>(s));
    for (int v : mem) {
      const float* src = source.features.RowPtr(v);
      for (int j = 0; j < d; ++j) row[j] += src[j];
    }
    const float inv = 1.0f / static_cast<float>(mem.size());
    for (int j = 0; j < d; ++j) row[j] *= inv;
  }

  // Edge mass between clusters; intra-cluster mass becomes a self-loop.
  // FromEdges sums duplicate coordinates, so one triplet per original edge
  // suffices and total weight is conserved.
  std::vector<graph::Edge> edges;
  edges.reserve(values.size());
  for (int u = 0; u < n; ++u) {
    for (int k = row_ptr[u]; k < row_ptr[u + 1]; ++k) {
      edges.push_back({assignments_[u], assignments_[col_idx[k]], values[k]});
    }
  }
  out.adj = graph::CsrMatrix::FromEdges(target, target, edges,
                                        /*symmetrize=*/false);
  result_ = std::move(out);
}

}  // namespace bgc::reduce
