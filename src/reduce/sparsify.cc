#include "src/reduce/reduce.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/core/check.h"

namespace bgc::reduce {

void SparsifyCondenser::Initialize(const condense::SourceGraph& source,
                                   int num_classes,
                                   const condense::CondenseConfig& config,
                                   Rng& rng) {
  BGC_CHECK_GT(num_classes, 0);
  BGC_CHECK_GE(config.sparsify_keep, 0.0f);
  BGC_CHECK_LE(config.sparsify_keep, 1.0f);
  config_ = config;
  num_classes_ = num_classes;
  rng_ = rng.Fork();
  rng_state_ = rng_.SaveState();
  Reduce(source);
}

void SparsifyCondenser::Epoch(const condense::SourceGraph& source) {
  Reduce(source);
}

condense::CondensedGraph SparsifyCondenser::Result() const { return result_; }

void SparsifyCondenser::Reduce(const condense::SourceGraph& source) {
  const int n = source.features.rows();
  BGC_CHECK_GT(n, 0);
  // Replay the forked stream from its initial state so the random ranking
  // is a pure function of the seed — NOT of how many Epoch() calls the
  // driver made. RunCondensation(epochs=N) is thus N-invariant for every
  // mode, matching the coarsener and the ER scorer.
  rng_.RestoreState(rng_state_);

  // Weighted degrees for the effective-resistance proxy.
  std::vector<float> degree(n, 0.0f);
  for (int u = 0; u < n; ++u) degree[u] = source.adj.RowWeightSum(u);

  struct Scored {
    double score;  // keep the top-k by (score desc, src asc, dst asc)
    int src, dst;
    float weight;
  };
  std::vector<Scored> undirected;
  std::vector<graph::Edge> kept;
  for (const graph::Edge& e : source.adj.ToEdges()) {
    if (e.src == e.dst) {
      kept.push_back(e);  // self-loops ride outside the budget
      continue;
    }
    if (e.src > e.dst) continue;
    double score;
    if (mode_ == Mode::kEffectiveResistance) {
      // Standard ER upper bound for edge (u, v): w_uv (1/d_u + 1/d_v).
      // High-resistance (bridge-like) edges score highest and survive.
      const double du = std::max(degree[e.src], 1e-12f);
      const double dv = std::max(degree[e.dst], 1e-12f);
      score = static_cast<double>(e.weight) * (1.0 / du + 1.0 / dv);
    } else {
      // Uniform control: one draw per edge from the replayed forked
      // stream (edge order is the deterministic CSR order, so the ranking
      // is a pure function of the seed).
      score = rng_.Uniform();
    }
    undirected.push_back({score, e.src, e.dst, e.weight});
  }

  const long long m = static_cast<long long>(undirected.size());
  long long budget = static_cast<long long>(
      std::llround(static_cast<double>(config_.sparsify_keep) *
                   static_cast<double>(m)));
  if (m > 0) budget = std::max<long long>(budget, 1);
  budget = std::min(budget, m);

  std::sort(undirected.begin(), undirected.end(),
            [](const Scored& x, const Scored& y) {
              if (x.score != y.score) return x.score > y.score;
              if (x.src != y.src) return x.src < y.src;
              return x.dst < y.dst;
            });
  for (long long i = 0; i < budget; ++i) {
    const Scored& e = undirected[i];
    kept.push_back({e.src, e.dst, e.weight});
    kept.push_back({e.dst, e.src, e.weight});
  }

  condense::CondensedGraph out;
  out.adj = graph::CsrMatrix::FromEdges(n, n, kept, /*symmetrize=*/false);
  out.features = source.features;
  out.labels = source.labels;
  out.num_classes = num_classes_;
  out.use_structure = true;
  result_ = std::move(out);
}

}  // namespace bgc::reduce
