#include "src/defense/defenses.h"

#include <algorithm>
#include <cmath>

#include "src/core/check.h"
#include "src/graph/graph_utils.h"
#include "src/nn/trainer.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::defense {

condense::CondensedGraph Prune(const condense::CondensedGraph& condensed,
                               double prune_ratio) {
  BGC_CHECK_GE(prune_ratio, 0.0);
  BGC_CHECK_LE(prune_ratio, 1.0);
  // Structure-free methods (GCond-X / DC-Graph / GC-SNTK) deliver an
  // identity adjacency that only exists so the victim's GCN has a
  // propagation operator. Pruning must be a no-op on it: there are no
  // edges to score, and dropping the self-loops (or renumbering nodes)
  // would silently break victim training.
  if (!condensed.use_structure) return condensed;
  struct ScoredEdge {
    int src;
    int dst;
    float weight;
    float cosine;
  };
  std::vector<ScoredEdge> undirected;
  std::vector<graph::Edge> self_loops;
  for (const auto& e : condensed.adj.ToEdges()) {
    if (e.src == e.dst) {
      self_loops.push_back(e);
      continue;
    }
    if (e.src < e.dst) {
      undirected.push_back(
          {e.src, e.dst, e.weight,
           RowCosine(condensed.features, e.src, condensed.features, e.dst)});
    }
  }
  std::vector<float> cosines;
  cosines.reserve(undirected.size());
  for (const auto& e : undirected) cosines.push_back(e.cosine);
  std::sort(cosines.begin(), cosines.end());
  const size_t cut =
      static_cast<size_t>(prune_ratio * static_cast<double>(cosines.size()));
  const float threshold =
      cut == 0 ? -2.0f
               : cosines[std::min(cut, cosines.size()) - 1];

  condense::CondensedGraph out = condensed;
  std::vector<graph::Edge> kept = self_loops;
  size_t dropped = 0;
  for (const auto& e : undirected) {
    // Drop the lowest `cut` similarities (ties resolved by keeping count).
    if (e.cosine <= threshold && dropped < cut) {
      ++dropped;
      continue;
    }
    kept.push_back({e.src, e.dst, e.weight});
    kept.push_back({e.dst, e.src, e.weight});
  }
  out.adj = graph::CsrMatrix::FromEdges(condensed.adj.rows(),
                                        condensed.adj.cols(), kept,
                                        /*symmetrize=*/false);
  return out;
}

condense::CondensedGraph JaccardPrune(
    const condense::CondensedGraph& condensed, double threshold) {
  // Same structure-free guard as Prune(): an identity adjacency carries
  // no prunable edges and must pass through bit-identically.
  if (!condensed.use_structure) return condensed;
  const auto& adj = condensed.adj;
  const auto& rp = adj.row_ptr();
  const auto& ci = adj.col_idx();
  auto neighbors = [&](int v) {
    return std::vector<int>(ci.begin() + rp[v], ci.begin() + rp[v + 1]);
  };
  auto jaccard = [&](int u, int v) {
    std::vector<int> nu = neighbors(u), nv = neighbors(v);
    // CSR columns are sorted; set intersection in one pass.
    size_t i = 0, j = 0, both = 0;
    while (i < nu.size() && j < nv.size()) {
      if (nu[i] == nv[j]) {
        ++both;
        ++i;
        ++j;
      } else if (nu[i] < nv[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    const size_t either = nu.size() + nv.size() - both;
    return either == 0 ? 0.0 : static_cast<double>(both) / either;
  };
  std::vector<graph::Edge> kept;
  for (const auto& e : adj.ToEdges()) {
    if (e.src == e.dst || e.src > e.dst) {
      if (e.src == e.dst) kept.push_back(e);
      continue;
    }
    if (jaccard(e.src, e.dst) >= threshold) {
      kept.push_back(e);
      kept.push_back({e.dst, e.src, e.weight});
    }
  }
  condense::CondensedGraph out = condensed;
  out.adj = graph::CsrMatrix::FromEdges(adj.rows(), adj.cols(), kept,
                                        /*symmetrize=*/false);
  return out;
}

condense::CondensedGraph FilterFeatureOutliers(
    const condense::CondensedGraph& condensed, double mad_multiplier) {
  BGC_CHECK_GT(mad_multiplier, 0.0);
  Matrix norms = RowNorm(condensed.features);
  std::vector<float> sorted(norms.data(), norms.data() + norms.size());
  std::sort(sorted.begin(), sorted.end());
  const float median = sorted[sorted.size() / 2];
  std::vector<float> deviations;
  deviations.reserve(sorted.size());
  for (float n : sorted) deviations.push_back(std::fabs(n - median));
  std::sort(deviations.begin(), deviations.end());
  // Guard against a degenerate MAD of 0 (identical norms).
  const float mad = std::max(deviations[deviations.size() / 2],
                             1e-6f * std::max(median, 1.0f));

  std::vector<int> keep;
  for (int i = 0; i < norms.rows(); ++i) {
    if (std::fabs(norms(i, 0) - median) <= mad_multiplier * mad) {
      keep.push_back(i);
    }
  }
  condense::CondensedGraph out;
  out.adj = graph::InducedSubgraph(condensed.adj, keep);
  out.features = GatherRows(condensed.features, keep);
  out.labels.reserve(keep.size());
  for (int i : keep) out.labels.push_back(condensed.labels[i]);
  out.num_classes = condensed.num_classes;
  out.use_structure = condensed.use_structure;
  return out;
}

Matrix RandsmoothPredict(nn::GnnModel& model, const graph::CsrMatrix& adj,
                         const Matrix& x, int num_samples, double keep_prob,
                         Rng& rng) {
  BGC_CHECK_GT(num_samples, 0);
  Matrix votes(x.rows(), model.config().out_dim);
  for (int s = 0; s < num_samples; ++s) {
    graph::CsrMatrix sampled = graph::DropEdges(adj, keep_prob, rng);
    Matrix logits = nn::PredictLogits(model, sampled, x);
    std::vector<int> pred = ArgmaxRows(logits);
    for (int i = 0; i < x.rows(); ++i) votes(i, pred[i]) += 1.0f;
  }
  return votes;
}

}  // namespace bgc::defense
