#ifndef BGC_DEFENSE_DEFENSES_H_
#define BGC_DEFENSE_DEFENSES_H_

#include "src/condense/condenser.h"
#include "src/core/rng.h"
#include "src/nn/models.h"

namespace bgc::defense {

/// Prune defense (dataset-level; Dai et al. [4], §6.4): drops the
/// condensed-graph edges whose endpoint feature cosine similarity falls in
/// the lowest `prune_ratio` fraction — the classic countermeasure against
/// trigger edges linking dissimilar nodes. Self-loops are kept. Returns the
/// pruned condensed graph the victim then trains on.
condense::CondensedGraph Prune(const condense::CondensedGraph& condensed,
                               double prune_ratio = 0.2);

/// Randsmooth defense (model-level; Zhang et al. [66], §6.4): smoothed
/// inference by majority vote over `num_samples` predictions, each on an
/// independently edge-subsampled graph (every undirected edge kept with
/// probability `keep_prob`). Returns per-class vote counts (argmax = the
/// smoothed prediction), shape n×C.
Matrix RandsmoothPredict(nn::GnnModel& model, const graph::CsrMatrix& adj,
                         const Matrix& x, int num_samples, double keep_prob,
                         Rng& rng);

/// Extension: Jaccard structural pruning (Wu et al., "Adversarial Examples
/// on Graph Data"): drops edges whose endpoints share too few neighbors —
/// Jaccard(N(u), N(v)) < `threshold` — a purely structural sibling of the
/// cosine Prune. Self-loops are kept.
condense::CondensedGraph JaccardPrune(
    const condense::CondensedGraph& condensed, double threshold = 0.01);

/// Extension: feature-magnitude outlier filter. Removes condensed nodes
/// whose feature norm deviates from the median by more than
/// `mad_multiplier` median-absolute-deviations — the natural screen against
/// naive trigger injection, whose payloads sit far outside the data scale.
/// Returns the filtered condensed graph (node ids remapped).
condense::CondensedGraph FilterFeatureOutliers(
    const condense::CondensedGraph& condensed, double mad_multiplier = 5.0);

}  // namespace bgc::defense

#endif  // BGC_DEFENSE_DEFENSES_H_
