#ifndef BGC_DATA_SYNTHETIC_H_
#define BGC_DATA_SYNTHETIC_H_

#include <string>

#include "src/data/dataset.h"

namespace bgc::data {

/// Parameters of the class-conditional stochastic-block-model generator
/// that substitutes the paper's public datasets (see DESIGN.md §3).
///
/// Labels are drawn uniformly over classes; features are a Gaussian mixture
/// (random unit-norm class centroids scaled by `center_scale` plus i.i.d.
/// `feature_noise` noise); edges follow a planted partition where each edge
/// is intra-class with probability `homophily`. `label_noise` re-rolls a
/// fraction of the *observed* labels after the graph is built, decoupling
/// them from both structure and features — the knob that reproduces the
/// hardness of Flickr (plateauing clean accuracy).
struct SyntheticConfig {
  std::string name = "synthetic";
  int num_nodes = 1000;
  int num_classes = 4;
  int feature_dim = 32;
  double avg_degree = 4.0;
  double homophily = 0.8;
  double center_scale = 1.0;
  double feature_noise = 0.6;
  double label_noise = 0.0;
  bool inductive = false;
  // Transductive split: per-class train count plus fixed val/test sizes.
  int train_per_class = 20;
  int val_size = 500;
  int test_size = 1000;
  // Inductive split fractions (train gets the remainder).
  double val_fraction = 0.25;
  double test_fraction = 0.25;
};

/// Generates a dataset from `config` with the given seed. Deterministic.
GraphDataset GenerateSynthetic(const SyntheticConfig& config, uint64_t seed);

/// Named presets standing in for the paper's benchmarks:
///   "cora-sim"     2708 nodes,  7 classes, transductive, easy/homophilous
///   "citeseer-sim" 3327 nodes,  6 classes, transductive, medium
///   "flickr-sim"   8000 nodes,  7 classes, inductive, hard (label noise)
///   "reddit-sim"  12000 nodes, 16 classes, inductive, easy/homophilous
///   "tiny-sim"      200 nodes,  3 classes, transductive (tests)
/// `scale` in (0, 1] shrinks node counts for fast CI/bench runs.
SyntheticConfig PresetConfig(const std::string& name, double scale = 1.0);

/// True when `name` is one of the presets above (PresetConfig would not
/// abort). For callers that need to reject bad names gracefully.
bool IsKnownDatasetPreset(const std::string& name);

/// Convenience: PresetConfig + GenerateSynthetic.
GraphDataset MakeDataset(const std::string& name, uint64_t seed,
                         double scale = 1.0);

}  // namespace bgc::data

#endif  // BGC_DATA_SYNTHETIC_H_
