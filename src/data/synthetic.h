#ifndef BGC_DATA_SYNTHETIC_H_
#define BGC_DATA_SYNTHETIC_H_

#include <string>

#include "src/core/status.h"
#include "src/data/dataset.h"

namespace bgc::data {

/// Parameters of the class-conditional stochastic-block-model generator
/// that substitutes the paper's public datasets (see DESIGN.md §3).
///
/// Labels are drawn uniformly over classes; features are a Gaussian mixture
/// (random unit-norm class centroids scaled by `center_scale` plus i.i.d.
/// `feature_noise` noise); edges follow a planted partition where each edge
/// is intra-class with probability `homophily`. `label_noise` re-rolls a
/// fraction of the *observed* labels after the graph is built, decoupling
/// them from both structure and features — the knob that reproduces the
/// hardness of Flickr (plateauing clean accuracy).
struct SyntheticConfig {
  std::string name = "synthetic";
  int num_nodes = 1000;
  int num_classes = 4;
  int feature_dim = 32;
  double avg_degree = 4.0;
  double homophily = 0.8;
  double center_scale = 1.0;
  double feature_noise = 0.6;
  double label_noise = 0.0;
  bool inductive = false;
  // Transductive split: per-class train count plus fixed val/test sizes.
  int train_per_class = 20;
  int val_size = 500;
  int test_size = 1000;
  // Inductive split fractions (train gets the remainder).
  double val_fraction = 0.25;
  double test_fraction = 0.25;
};

/// Generates a dataset from `config` with the given seed. Deterministic.
GraphDataset GenerateSynthetic(const SyntheticConfig& config, uint64_t seed);

/// Named presets standing in for the paper's benchmarks:
///   "cora-sim"     2708 nodes,  7 classes, transductive, easy/homophilous
///   "citeseer-sim" 3327 nodes,  6 classes, transductive, medium
///   "flickr-sim"   8000 nodes,  7 classes, inductive, hard (label noise)
///   "reddit-sim"  12000 nodes, 16 classes, inductive, easy/homophilous
///   "tiny-sim"      200 nodes,  3 classes, transductive (tests)
/// `scale` in (0, 1] shrinks node counts for fast CI/bench runs.
SyntheticConfig PresetConfig(const std::string& name, double scale = 1.0);

/// True when `name` is one of the presets above (PresetConfig would not
/// abort). For callers that need to reject bad names gracefully.
bool IsKnownDatasetPreset(const std::string& name);

/// Streaming presets are generated straight to a bgcbin file because the
/// materialized GraphDataset would not fit a small RAM budget:
///   "sbm-1m"  1M nodes, 10 classes, dim 32, avg degree 8, transductive
/// PresetConfig accepts these names too; IsKnownDatasetPreset stays false
/// for them so in-RAM loaders keep rejecting them.
bool IsStreamingDatasetPreset(const std::string& name);

/// Convenience: PresetConfig + GenerateSynthetic.
GraphDataset MakeDataset(const std::string& name, uint64_t seed,
                         double scale = 1.0);

/// Node/edge counts of a WriteSyntheticBgcbin run ("edges" counts stored
/// directed records, i.e. 2x the undirected edge count).
struct StreamingWriteResult {
  long long num_nodes = 0;
  long long num_edges = 0;
};

/// GenerateSynthetic + SaveDatasetBinary without ever materializing the
/// feature matrix or CsrMatrix: draws the identical RNG stream, computes
/// every section's size and checksum in a first pass, then streams payload
/// bytes through a store::BgcbinStreamWriter (features are re-drawn from a
/// saved RNG snapshot). The output file is byte-identical to
/// SaveDatasetBinary(GenerateSynthetic(config, seed)) — pinned by
/// tests/outofcore_test.cc — so every bgcbin reader works on it unchanged.
StatusOr<StreamingWriteResult> WriteSyntheticBgcbin(
    const SyntheticConfig& config, uint64_t seed, const std::string& path);

}  // namespace bgc::data

#endif  // BGC_DATA_SYNTHETIC_H_
