#include "src/data/dataset.h"

#include "src/core/check.h"
#include "src/graph/graph_utils.h"
#include "src/tensor/matrix_ops.h"

namespace bgc::data {

TrainView MakeTrainView(const GraphDataset& dataset) {
  TrainView view;
  view.num_classes = dataset.num_classes;
  if (!dataset.inductive) {
    view.adj = dataset.adj;
    view.features = dataset.features;
    view.labels = dataset.labels;
    view.labeled = dataset.train_idx;
    view.origin.resize(dataset.num_nodes());
    for (int i = 0; i < dataset.num_nodes(); ++i) view.origin[i] = i;
    return view;
  }
  view.adj = graph::InducedSubgraph(dataset.adj, dataset.train_idx);
  view.features = GatherRows(dataset.features, dataset.train_idx);
  view.labels.reserve(dataset.train_idx.size());
  view.labeled.reserve(dataset.train_idx.size());
  for (size_t i = 0; i < dataset.train_idx.size(); ++i) {
    view.labels.push_back(dataset.labels[dataset.train_idx[i]]);
    view.labeled.push_back(static_cast<int>(i));
  }
  view.origin = dataset.train_idx;
  return view;
}

std::vector<int> ClassCounts(const std::vector<int>& labels, int num_classes,
                             const std::vector<int>& subset) {
  std::vector<int> counts(num_classes, 0);
  if (subset.empty()) {
    for (int y : labels) {
      BGC_CHECK_GE(y, 0);
      BGC_CHECK_LT(y, num_classes);
      ++counts[y];
    }
  } else {
    for (int idx : subset) {
      BGC_CHECK_GE(idx, 0);
      BGC_CHECK_LT(idx, static_cast<int>(labels.size()));
      ++counts[labels[idx]];
    }
  }
  return counts;
}

}  // namespace bgc::data
