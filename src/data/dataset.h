#ifndef BGC_DATA_DATASET_H_
#define BGC_DATA_DATASET_H_

#include <string>
#include <vector>

#include "src/graph/csr.h"
#include "src/tensor/matrix.h"

namespace bgc::data {

/// A node-classification graph dataset: G = {A, X, Y} plus public splits.
///
/// `adj` is the raw symmetric adjacency (unweighted, no self-loops);
/// propagation operators (GCN normalization etc.) are derived from it by
/// consumers. Transductive datasets expose one graph for train/val/test;
/// inductive datasets (Flickr/Reddit style) train only on the subgraph
/// induced by `train_idx` — use TrainView() to obtain it.
struct GraphDataset {
  std::string name;
  graph::CsrMatrix adj;
  Matrix features;          // num_nodes × feature_dim
  std::vector<int> labels;  // num_nodes, in [0, num_classes)
  int num_classes = 0;
  std::vector<int> train_idx;
  std::vector<int> val_idx;
  std::vector<int> test_idx;
  bool inductive = false;

  int num_nodes() const { return adj.rows(); }
  int feature_dim() const { return features.cols(); }
};

/// The graph a condensation provider actually sees at train time.
///
/// For transductive datasets this is the full graph with `labeled` holding
/// the training node ids. For inductive datasets it is the subgraph induced
/// by the training split (every node labeled), and `origin[i]` maps local
/// node i back to the dataset node id.
struct TrainView {
  graph::CsrMatrix adj;
  Matrix features;
  std::vector<int> labels;
  int num_classes = 0;
  std::vector<int> labeled;  // local ids with usable labels
  std::vector<int> origin;   // local id -> dataset node id
};

/// Builds the training view described above.
TrainView MakeTrainView(const GraphDataset& dataset);

/// Class histogram over `labels` restricted to `subset` (all nodes when
/// `subset` is empty).
std::vector<int> ClassCounts(const std::vector<int>& labels, int num_classes,
                             const std::vector<int>& subset = {});

}  // namespace bgc::data

#endif  // BGC_DATA_DATASET_H_
