#include "src/data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_set>
#include <utility>

#include "src/core/check.h"
#include "src/core/hash.h"
#include "src/core/rng.h"
#include "src/store/bgcbin.h"

namespace bgc::data {
namespace {

/// Unit-norm rows: random class centroids on the sphere.
Matrix RandomCentroids(int num_classes, int dim, Rng& rng, double scale) {
  Matrix c = Matrix::RandomNormal(num_classes, dim, rng);
  for (int i = 0; i < num_classes; ++i) {
    float* row = c.RowPtr(i);
    float norm = 0.0f;
    for (int j = 0; j < dim; ++j) norm += row[j] * row[j];
    norm = std::sqrt(std::max(norm, 1e-12f));
    const float s = static_cast<float>(scale) / norm;
    for (int j = 0; j < dim; ++j) row[j] *= s;
  }
  return c;
}

// The label-noise and split stages are shared verbatim between the in-RAM
// generator and the streaming writer: both must consume the RNG stream in
// exactly the same order for the two paths to produce identical datasets.

void ApplyLabelNoiseInPlace(const SyntheticConfig& config, Rng& rng,
                            std::vector<int>& labels) {
  if (config.label_noise <= 0.0) return;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (rng.Bernoulli(config.label_noise)) {
      labels[i] = static_cast<int>(rng.UniformInt(config.num_classes));
    }
  }
}

struct SplitIdx {
  std::vector<int> train, val, test;
};

SplitIdx ComputeSplits(const SyntheticConfig& config,
                       const std::vector<int>& labels, Rng& rng) {
  const int n = static_cast<int>(labels.size());
  SplitIdx s;
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);
  if (config.inductive) {
    const int n_val = static_cast<int>(config.val_fraction * n);
    const int n_test = static_cast<int>(config.test_fraction * n);
    const int n_train = n - n_val - n_test;
    BGC_CHECK_GT(n_train, 0);
    s.train.assign(order.begin(), order.begin() + n_train);
    s.val.assign(order.begin() + n_train, order.begin() + n_train + n_val);
    s.test.assign(order.begin() + n_train + n_val, order.end());
  } else {
    std::vector<int> taken_per_class(config.num_classes, 0);
    std::vector<int> rest;
    for (int idx : order) {
      if (taken_per_class[labels[idx]] < config.train_per_class) {
        s.train.push_back(idx);
        ++taken_per_class[labels[idx]];
      } else {
        rest.push_back(idx);
      }
    }
    const int n_val = std::min<int>(config.val_size, rest.size());
    s.val.assign(rest.begin(), rest.begin() + n_val);
    const int n_test = std::min<int>(config.test_size, rest.size() - n_val);
    s.test.assign(rest.begin() + n_val, rest.begin() + n_val + n_test);
  }
  std::sort(s.train.begin(), s.train.end());
  std::sort(s.val.begin(), s.val.end());
  std::sort(s.test.begin(), s.test.end());
  return s;
}

}  // namespace

GraphDataset GenerateSynthetic(const SyntheticConfig& config, uint64_t seed) {
  BGC_CHECK_GT(config.num_nodes, 0);
  BGC_CHECK_GT(config.num_classes, 1);
  BGC_CHECK_GT(config.feature_dim, 0);
  Rng rng(seed ^ 0xb6cdbu);

  GraphDataset ds;
  ds.name = config.name;
  ds.num_classes = config.num_classes;
  ds.inductive = config.inductive;

  const int n = config.num_nodes;
  const int c = config.num_classes;

  // True community assignments drive both structure and features.
  std::vector<int> community(n);
  for (int i = 0; i < n; ++i) {
    community[i] = static_cast<int>(rng.UniformInt(c));
  }
  std::vector<std::vector<int>> by_class(c);
  for (int i = 0; i < n; ++i) by_class[community[i]].push_back(i);
  for (int k = 0; k < c; ++k) {
    // The generator needs every class populated to sample intra-class edges.
    BGC_CHECK_MSG(!by_class[k].empty(), "empty class in synthetic generator");
  }

  // Features: centroid + isotropic noise.
  Matrix centroids =
      RandomCentroids(c, config.feature_dim, rng, config.center_scale);
  ds.features = Matrix(n, config.feature_dim);
  for (int i = 0; i < n; ++i) {
    const float* mu = centroids.RowPtr(community[i]);
    float* row = ds.features.RowPtr(i);
    for (int j = 0; j < config.feature_dim; ++j) {
      row[j] = mu[j] + static_cast<float>(
                           rng.Normal(0.0, config.feature_noise));
    }
  }

  // Planted-partition edges: each undirected edge is intra-class with
  // probability `homophily`, otherwise its second endpoint is uniform.
  const long long target_edges =
      static_cast<long long>(config.avg_degree * n / 2.0);
  std::unordered_set<long long> seen;
  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<size_t>(target_edges));
  long long attempts = 0;
  const long long max_attempts = target_edges * 50 + 1000;
  while (static_cast<long long>(edges.size()) < target_edges &&
         attempts < max_attempts) {
    ++attempts;
    const int u = static_cast<int>(rng.UniformInt(n));
    int v;
    if (rng.Bernoulli(config.homophily)) {
      const auto& peers = by_class[community[u]];
      v = peers[rng.UniformInt(peers.size())];
    } else {
      v = static_cast<int>(rng.UniformInt(n));
    }
    if (u == v) continue;
    const long long key =
        static_cast<long long>(std::min(u, v)) * n + std::max(u, v);
    if (!seen.insert(key).second) continue;
    edges.push_back({u, v, 1.0f});
  }
  ds.adj = graph::CsrMatrix::FromEdges(n, n, edges, /*symmetrize=*/true);

  // Observed labels: community assignments with optional label noise.
  ds.labels = community;
  ApplyLabelNoiseInPlace(config, rng, ds.labels);

  // Splits.
  SplitIdx splits = ComputeSplits(config, ds.labels, rng);
  ds.train_idx = std::move(splits.train);
  ds.val_idx = std::move(splits.val);
  ds.test_idx = std::move(splits.test);
  return ds;
}

SyntheticConfig PresetConfig(const std::string& name, double scale) {
  BGC_CHECK_GT(scale, 0.0);
  BGC_CHECK_LE(scale, 1.0);
  SyntheticConfig cfg;
  cfg.name = name;
  if (name == "cora-sim") {
    cfg.num_nodes = 2708;
    cfg.num_classes = 7;
    cfg.feature_dim = 96;
    cfg.avg_degree = 4.0;
    cfg.homophily = 0.81;
    cfg.feature_noise = 0.75;
    cfg.label_noise = 0.04;
    cfg.train_per_class = 20;
    cfg.val_size = 500;
    cfg.test_size = 1000;
  } else if (name == "citeseer-sim") {
    cfg.num_nodes = 3327;
    cfg.num_classes = 6;
    cfg.feature_dim = 128;
    cfg.avg_degree = 2.8;
    cfg.homophily = 0.74;
    cfg.feature_noise = 0.62;
    cfg.label_noise = 0.05;
    cfg.train_per_class = 20;
    cfg.val_size = 500;
    cfg.test_size = 1000;
  } else if (name == "flickr-sim") {
    cfg.num_nodes = 8000;
    cfg.num_classes = 7;
    cfg.feature_dim = 64;
    cfg.avg_degree = 10.0;
    cfg.homophily = 0.45;
    cfg.feature_noise = 1.05;
    cfg.label_noise = 0.28;
    cfg.inductive = true;
  } else if (name == "reddit-sim") {
    cfg.num_nodes = 12000;
    cfg.num_classes = 16;
    cfg.feature_dim = 64;
    cfg.avg_degree = 25.0;
    cfg.homophily = 0.9;
    cfg.feature_noise = 1.15;
    cfg.label_noise = 0.08;
    cfg.inductive = true;
  } else if (name == "tiny-sim") {
    cfg.num_nodes = 200;
    cfg.num_classes = 3;
    cfg.feature_dim = 16;
    cfg.avg_degree = 4.0;
    cfg.homophily = 0.85;
    cfg.feature_noise = 0.5;
    cfg.train_per_class = 10;
    cfg.val_size = 40;
    cfg.test_size = 80;
  } else if (name == "sbm-1m") {
    // Streaming preset (WriteSyntheticBgcbin): at 1M nodes the features
    // alone are 128 MB, so MakeDataset refuses it (IsKnownDatasetPreset
    // is false) and generation goes straight to disk.
    cfg.num_nodes = 1000000;
    cfg.num_classes = 10;
    cfg.feature_dim = 32;
    cfg.avg_degree = 8.0;
    cfg.homophily = 0.82;
    cfg.feature_noise = 0.9;
    cfg.label_noise = 0.05;
    cfg.train_per_class = 100;
    cfg.val_size = 10000;
    cfg.test_size = 50000;
  } else {
    BGC_CHECK_MSG(false, "unknown dataset preset: " + name);
  }
  if (scale < 1.0) {
    cfg.num_nodes = std::max(cfg.num_classes * 20,
                             static_cast<int>(cfg.num_nodes * scale));
    cfg.val_size = std::max(20, static_cast<int>(cfg.val_size * scale));
    cfg.test_size = std::max(40, static_cast<int>(cfg.test_size * scale));
    // Keep the labeled split a minority of the shrunken graph so val/test
    // splits stay non-empty.
    const int cap = cfg.num_nodes / (3 * cfg.num_classes);
    cfg.train_per_class = std::max(2, std::min(cfg.train_per_class, cap));
  }
  return cfg;
}

bool IsKnownDatasetPreset(const std::string& name) {
  return name == "cora-sim" || name == "citeseer-sim" ||
         name == "flickr-sim" || name == "reddit-sim" || name == "tiny-sim";
}

bool IsStreamingDatasetPreset(const std::string& name) {
  return name == "sbm-1m";
}

GraphDataset MakeDataset(const std::string& name, uint64_t seed,
                         double scale) {
  BGC_CHECK_MSG(!IsStreamingDatasetPreset(name),
                name + " is a streaming preset; use WriteSyntheticBgcbin");
  return GenerateSynthetic(PresetConfig(name, scale), seed);
}

namespace {

// Open-addressing set over positive int64 keys (0 = empty slot), sized for
// a known insert bound. Replaces unordered_set<long long> in the streaming
// path: identical membership semantics at ~16 bytes/edge less overhead.
class FlatKeySet {
 public:
  explicit FlatKeySet(size_t max_inserts) {
    size_t cap = 16;
    while (cap < max_inserts * 2) cap <<= 1;
    slots_.assign(cap, 0);
    mask_ = cap - 1;
  }

  /// Returns true when `key` (> 0) was newly inserted.
  bool Insert(long long key) {
    // splitmix64 finalizer: std::hash of an integer is identity on
    // libstdc++, which would cluster the structured min*n+max keys.
    uint64_t z = static_cast<uint64_t>(key);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    size_t i = static_cast<size_t>(z ^ (z >> 31)) & mask_;
    while (slots_[i] != 0) {
      if (slots_[i] == key) return false;
      i = (i + 1) & mask_;
    }
    slots_[i] = key;
    return true;
  }

 private:
  std::vector<long long> slots_;
  size_t mask_ = 0;
};

// Local copies of the store's section codec framing (serialize.cc):
// PutIntVector is u64 count + raw i32s; meta is string/i32/u8. Byte
// equality with SaveDatasetBinary is pinned by tests/outofcore_test.cc.
void PutIntVectorBytes(store::SectionWriter& w, const std::vector<int>& v) {
  w.PutU64(v.size());
  for (int x : v) w.PutI32(x);
}

}  // namespace

StatusOr<StreamingWriteResult> WriteSyntheticBgcbin(
    const SyntheticConfig& config, uint64_t seed, const std::string& path) {
  BGC_CHECK_GT(config.num_nodes, 0);
  BGC_CHECK_GT(config.num_classes, 1);
  BGC_CHECK_GT(config.feature_dim, 0);
  Rng rng(seed ^ 0xb6cdbu);

  const int n = config.num_nodes;
  const int c = config.num_classes;
  const int dim = config.feature_dim;

  // --- Identical RNG stream to GenerateSynthetic, stage by stage. ---
  std::vector<int> community(n);
  for (int i = 0; i < n; ++i) {
    community[i] = static_cast<int>(rng.UniformInt(c));
  }
  std::vector<std::vector<int>> by_class(c);
  for (int i = 0; i < n; ++i) by_class[community[i]].push_back(i);
  for (int k = 0; k < c; ++k) {
    BGC_CHECK_MSG(!by_class[k].empty(), "empty class in synthetic generator");
  }

  Matrix centroids = RandomCentroids(c, dim, rng, config.center_scale);

  // Features are drawn now (stream position) but written last (section
  // order): snapshot the stream, consume the draws once for the checksum
  // pass, and re-draw from the snapshot when the payload is streamed out.
  const auto feature_state = rng.SaveState();
  // Chunked walk over the exact PutMatrix payload bytes: i32 rows, i32
  // cols, then the raw row-major float block.
  const auto for_each_feature_chunk = [&](Rng& frng, auto&& sink) {
    store::SectionWriter head;
    head.PutI32(n);
    head.PutI32(dim);
    sink(head.bytes().data(), head.bytes().size());
    constexpr int kRowsPerChunk = 4096;
    std::vector<float> buf(static_cast<size_t>(kRowsPerChunk) * dim);
    for (int row = 0; row < n; row += kRowsPerChunk) {
      const int rows_here = std::min(kRowsPerChunk, n - row);
      for (int i = 0; i < rows_here; ++i) {
        const float* mu = centroids.RowPtr(community[row + i]);
        float* out = buf.data() + static_cast<size_t>(i) * dim;
        for (int j = 0; j < dim; ++j) {
          out[j] = mu[j] + static_cast<float>(
                               frng.Normal(0.0, config.feature_noise));
        }
      }
      sink(buf.data(), static_cast<size_t>(rows_here) * dim * sizeof(float));
    }
  };
  uint32_t features_crc = 0;
  for_each_feature_chunk(rng, [&](const void* p, size_t len) {
    features_crc = Crc32(p, len, features_crc);
  });
  const uint64_t features_size =
      8 + static_cast<uint64_t>(n) * dim * sizeof(float);

  // Planted-partition edges, exactly as GenerateSynthetic.
  const long long target_edges =
      static_cast<long long>(config.avg_degree * n / 2.0);
  std::vector<std::pair<int, int>> und_edges;
  und_edges.reserve(static_cast<size_t>(target_edges));
  {
    FlatKeySet seen(static_cast<size_t>(target_edges) + 1);
    long long attempts = 0;
    const long long max_attempts = target_edges * 50 + 1000;
    while (static_cast<long long>(und_edges.size()) < target_edges &&
           attempts < max_attempts) {
      ++attempts;
      const int u = static_cast<int>(rng.UniformInt(n));
      int v;
      if (rng.Bernoulli(config.homophily)) {
        const auto& peers = by_class[community[u]];
        v = peers[rng.UniformInt(peers.size())];
      } else {
        v = static_cast<int>(rng.UniformInt(n));
      }
      if (u == v) continue;
      const long long key =
          static_cast<long long>(std::min(u, v)) * n + std::max(u, v) + 1;
      if (!seen.Insert(key)) continue;
      und_edges.emplace_back(u, v);
    }
  }

  // Copy, not move: for_each_feature_chunk re-reads the pre-noise
  // communities when the features section is finally streamed out.
  std::vector<int> labels = community;
  ApplyLabelNoiseInPlace(config, rng, labels);
  SplitIdx splits = ComputeSplits(config, labels, rng);
  // --- RNG stream fully consumed; everything below is layout. ---

  // The adj payload is PutCsr of FromEdges(symmetrize=true): since the
  // accepted pairs have no duplicates or self-loops, symmetrization sums
  // nothing and ToEdges() is just both directions of every pair in
  // (src, dst) order, weight 1 — so sort packed (src<<32 | dst) words.
  std::vector<uint64_t> directed;
  directed.reserve(und_edges.size() * 2);
  for (const auto& [u, v] : und_edges) {
    directed.push_back(static_cast<uint64_t>(u) << 32 | static_cast<uint32_t>(v));
    directed.push_back(static_cast<uint64_t>(v) << 32 | static_cast<uint32_t>(u));
  }
  und_edges.clear();
  und_edges.shrink_to_fit();
  std::sort(directed.begin(), directed.end());

  const auto for_each_adj_chunk = [&](auto&& sink) {
    store::SectionWriter head;
    head.PutI32(n);
    head.PutI32(n);
    head.PutU64(directed.size());
    sink(head.bytes().data(), head.bytes().size());
    constexpr size_t kRecordsPerChunk = 87380;  // ~1 MiB of 12-byte records
    std::vector<char> buf(kRecordsPerChunk * 12);
    size_t done = 0;
    while (done < directed.size()) {
      const size_t here = std::min(kRecordsPerChunk, directed.size() - done);
      char* out = buf.data();
      for (size_t k = 0; k < here; ++k, out += 12) {
        const int32_t src = static_cast<int32_t>(directed[done + k] >> 32);
        const int32_t dst =
            static_cast<int32_t>(directed[done + k] & 0xffffffffULL);
        const float w = 1.0f;
        std::memcpy(out, &src, 4);
        std::memcpy(out + 4, &dst, 4);
        std::memcpy(out + 8, &w, 4);
      }
      sink(buf.data(), here * 12);
      done += here;
    }
  };
  uint32_t adj_crc = 0;
  for_each_adj_chunk([&](const void* p, size_t len) {
    adj_crc = Crc32(p, len, adj_crc);
  });
  const uint64_t adj_size = 16 + static_cast<uint64_t>(directed.size()) * 12;

  // Small sections, buffered whole (labels dominate at 4 bytes/node).
  store::SectionWriter kind_w, meta_w, labels_w, train_w, val_w, test_w;
  kind_w.PutString("bgc.dataset");
  meta_w.PutString(config.name);
  meta_w.PutI32(config.num_classes);
  meta_w.PutU8(config.inductive ? 1 : 0);
  PutIntVectorBytes(labels_w, labels);
  PutIntVectorBytes(train_w, splits.train);
  PutIntVectorBytes(val_w, splits.val);
  PutIntVectorBytes(test_w, splits.test);

  const auto spec = [](const char* name, const store::SectionWriter& w) {
    return store::BgcbinStreamWriter::SectionSpec{
        name, w.bytes().size(),
        Crc32(w.bytes().data(), w.bytes().size())};
  };
  std::vector<store::BgcbinStreamWriter::SectionSpec> sections = {
      spec("kind", kind_w),
      spec("meta", meta_w),
      spec("labels", labels_w),
      spec("train_idx", train_w),
      spec("val_idx", val_w),
      spec("test_idx", test_w),
      {"adj", adj_size, adj_crc},
      {"features", features_size, features_crc},
  };

  StatusOr<store::BgcbinStreamWriter> created =
      store::BgcbinStreamWriter::Create(path, sections);
  if (!created.ok()) return created.status();
  store::BgcbinStreamWriter writer = created.take();
  Status status = Status::Ok();
  const auto append = [&](const void* p, size_t len) {
    if (status.ok()) status = writer.Append(p, len);
  };
  for (const store::SectionWriter* w :
       {&kind_w, &meta_w, &labels_w, &train_w, &val_w, &test_w}) {
    append(w->bytes().data(), w->bytes().size());
  }
  for_each_adj_chunk(append);
  {
    Rng frng(0);
    frng.RestoreState(feature_state);
    for_each_feature_chunk(frng, append);
  }
  if (!status.ok()) return status;
  if (Status s = writer.Close(); !s.ok()) return s;

  StreamingWriteResult result;
  result.num_nodes = n;
  result.num_edges = static_cast<long long>(directed.size());
  return result;
}

}  // namespace bgc::data
