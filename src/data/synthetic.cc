#include "src/data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "src/core/check.h"
#include "src/core/rng.h"

namespace bgc::data {
namespace {

/// Unit-norm rows: random class centroids on the sphere.
Matrix RandomCentroids(int num_classes, int dim, Rng& rng, double scale) {
  Matrix c = Matrix::RandomNormal(num_classes, dim, rng);
  for (int i = 0; i < num_classes; ++i) {
    float* row = c.RowPtr(i);
    float norm = 0.0f;
    for (int j = 0; j < dim; ++j) norm += row[j] * row[j];
    norm = std::sqrt(std::max(norm, 1e-12f));
    const float s = static_cast<float>(scale) / norm;
    for (int j = 0; j < dim; ++j) row[j] *= s;
  }
  return c;
}

}  // namespace

GraphDataset GenerateSynthetic(const SyntheticConfig& config, uint64_t seed) {
  BGC_CHECK_GT(config.num_nodes, 0);
  BGC_CHECK_GT(config.num_classes, 1);
  BGC_CHECK_GT(config.feature_dim, 0);
  Rng rng(seed ^ 0xb6cdbu);

  GraphDataset ds;
  ds.name = config.name;
  ds.num_classes = config.num_classes;
  ds.inductive = config.inductive;

  const int n = config.num_nodes;
  const int c = config.num_classes;

  // True community assignments drive both structure and features.
  std::vector<int> community(n);
  for (int i = 0; i < n; ++i) {
    community[i] = static_cast<int>(rng.UniformInt(c));
  }
  std::vector<std::vector<int>> by_class(c);
  for (int i = 0; i < n; ++i) by_class[community[i]].push_back(i);
  for (int k = 0; k < c; ++k) {
    // The generator needs every class populated to sample intra-class edges.
    BGC_CHECK_MSG(!by_class[k].empty(), "empty class in synthetic generator");
  }

  // Features: centroid + isotropic noise.
  Matrix centroids =
      RandomCentroids(c, config.feature_dim, rng, config.center_scale);
  ds.features = Matrix(n, config.feature_dim);
  for (int i = 0; i < n; ++i) {
    const float* mu = centroids.RowPtr(community[i]);
    float* row = ds.features.RowPtr(i);
    for (int j = 0; j < config.feature_dim; ++j) {
      row[j] = mu[j] + static_cast<float>(
                           rng.Normal(0.0, config.feature_noise));
    }
  }

  // Planted-partition edges: each undirected edge is intra-class with
  // probability `homophily`, otherwise its second endpoint is uniform.
  const long long target_edges =
      static_cast<long long>(config.avg_degree * n / 2.0);
  std::unordered_set<long long> seen;
  std::vector<graph::Edge> edges;
  edges.reserve(static_cast<size_t>(target_edges));
  long long attempts = 0;
  const long long max_attempts = target_edges * 50 + 1000;
  while (static_cast<long long>(edges.size()) < target_edges &&
         attempts < max_attempts) {
    ++attempts;
    const int u = static_cast<int>(rng.UniformInt(n));
    int v;
    if (rng.Bernoulli(config.homophily)) {
      const auto& peers = by_class[community[u]];
      v = peers[rng.UniformInt(peers.size())];
    } else {
      v = static_cast<int>(rng.UniformInt(n));
    }
    if (u == v) continue;
    const long long key =
        static_cast<long long>(std::min(u, v)) * n + std::max(u, v);
    if (!seen.insert(key).second) continue;
    edges.push_back({u, v, 1.0f});
  }
  ds.adj = graph::CsrMatrix::FromEdges(n, n, edges, /*symmetrize=*/true);

  // Observed labels: community assignments with optional label noise.
  ds.labels = community;
  if (config.label_noise > 0.0) {
    for (int i = 0; i < n; ++i) {
      if (rng.Bernoulli(config.label_noise)) {
        ds.labels[i] = static_cast<int>(rng.UniformInt(c));
      }
    }
  }

  // Splits.
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  rng.Shuffle(order);
  if (config.inductive) {
    const int n_val = static_cast<int>(config.val_fraction * n);
    const int n_test = static_cast<int>(config.test_fraction * n);
    const int n_train = n - n_val - n_test;
    BGC_CHECK_GT(n_train, 0);
    ds.train_idx.assign(order.begin(), order.begin() + n_train);
    ds.val_idx.assign(order.begin() + n_train, order.begin() + n_train + n_val);
    ds.test_idx.assign(order.begin() + n_train + n_val, order.end());
  } else {
    std::vector<int> taken_per_class(c, 0);
    std::vector<int> rest;
    for (int idx : order) {
      if (taken_per_class[ds.labels[idx]] < config.train_per_class) {
        ds.train_idx.push_back(idx);
        ++taken_per_class[ds.labels[idx]];
      } else {
        rest.push_back(idx);
      }
    }
    const int n_val = std::min<int>(config.val_size, rest.size());
    ds.val_idx.assign(rest.begin(), rest.begin() + n_val);
    const int n_test =
        std::min<int>(config.test_size, rest.size() - n_val);
    ds.test_idx.assign(rest.begin() + n_val, rest.begin() + n_val + n_test);
  }
  std::sort(ds.train_idx.begin(), ds.train_idx.end());
  std::sort(ds.val_idx.begin(), ds.val_idx.end());
  std::sort(ds.test_idx.begin(), ds.test_idx.end());
  return ds;
}

SyntheticConfig PresetConfig(const std::string& name, double scale) {
  BGC_CHECK_GT(scale, 0.0);
  BGC_CHECK_LE(scale, 1.0);
  SyntheticConfig cfg;
  cfg.name = name;
  if (name == "cora-sim") {
    cfg.num_nodes = 2708;
    cfg.num_classes = 7;
    cfg.feature_dim = 96;
    cfg.avg_degree = 4.0;
    cfg.homophily = 0.81;
    cfg.feature_noise = 0.75;
    cfg.label_noise = 0.04;
    cfg.train_per_class = 20;
    cfg.val_size = 500;
    cfg.test_size = 1000;
  } else if (name == "citeseer-sim") {
    cfg.num_nodes = 3327;
    cfg.num_classes = 6;
    cfg.feature_dim = 128;
    cfg.avg_degree = 2.8;
    cfg.homophily = 0.74;
    cfg.feature_noise = 0.62;
    cfg.label_noise = 0.05;
    cfg.train_per_class = 20;
    cfg.val_size = 500;
    cfg.test_size = 1000;
  } else if (name == "flickr-sim") {
    cfg.num_nodes = 8000;
    cfg.num_classes = 7;
    cfg.feature_dim = 64;
    cfg.avg_degree = 10.0;
    cfg.homophily = 0.45;
    cfg.feature_noise = 1.05;
    cfg.label_noise = 0.28;
    cfg.inductive = true;
  } else if (name == "reddit-sim") {
    cfg.num_nodes = 12000;
    cfg.num_classes = 16;
    cfg.feature_dim = 64;
    cfg.avg_degree = 25.0;
    cfg.homophily = 0.9;
    cfg.feature_noise = 1.15;
    cfg.label_noise = 0.08;
    cfg.inductive = true;
  } else if (name == "tiny-sim") {
    cfg.num_nodes = 200;
    cfg.num_classes = 3;
    cfg.feature_dim = 16;
    cfg.avg_degree = 4.0;
    cfg.homophily = 0.85;
    cfg.feature_noise = 0.5;
    cfg.train_per_class = 10;
    cfg.val_size = 40;
    cfg.test_size = 80;
  } else {
    BGC_CHECK_MSG(false, "unknown dataset preset: " + name);
  }
  if (scale < 1.0) {
    cfg.num_nodes = std::max(cfg.num_classes * 20,
                             static_cast<int>(cfg.num_nodes * scale));
    cfg.val_size = std::max(20, static_cast<int>(cfg.val_size * scale));
    cfg.test_size = std::max(40, static_cast<int>(cfg.test_size * scale));
    // Keep the labeled split a minority of the shrunken graph so val/test
    // splits stay non-empty.
    const int cap = cfg.num_nodes / (3 * cfg.num_classes);
    cfg.train_per_class = std::max(2, std::min(cfg.train_per_class, cap));
  }
  return cfg;
}

bool IsKnownDatasetPreset(const std::string& name) {
  return name == "cora-sim" || name == "citeseer-sim" ||
         name == "flickr-sim" || name == "reddit-sim" || name == "tiny-sim";
}

GraphDataset MakeDataset(const std::string& name, uint64_t seed,
                         double scale) {
  return GenerateSynthetic(PresetConfig(name, scale), seed);
}

}  // namespace bgc::data
