#ifndef BGC_DATA_IO_H_
#define BGC_DATA_IO_H_

#include <string>

#include "src/core/status.h"
#include "src/data/dataset.h"

namespace bgc::data {

/// Plain-text serialization of datasets and condensed graphs — the artifact
/// a condensation service actually ships. The format is a line-oriented
/// header followed by edge and feature blocks:
///
///   bgc-graph v1
///   nodes <n> features <d> classes <C> edges <m> inductive <0|1>
///   <labels: n ints>
///   <splits: 3 lines "train|val|test k id...">   (datasets only)
///   <edges: m lines "src dst weight">
///   <features: n lines of d floats>
///
/// Writers are lossless for float values (%.9g formatting).

/// Saves a full dataset. The write is atomic (temp file + fsync + rename,
/// see core/fs.h): a crash mid-save never leaves a half-written file.
/// Aborts on I/O failure.
void SaveDataset(const GraphDataset& dataset, const std::string& path);

/// Recoverable loader: returns a descriptive error (with loader file/line
/// context) for unreadable files and malformed content — truncated or
/// corrupt headers, out-of-range edge endpoints or labels, non-numeric
/// floats — instead of aborting.
StatusOr<GraphDataset> TryLoadDataset(const std::string& path);

/// TryLoadDataset that aborts on any error (legacy fail-fast entry point).
GraphDataset LoadDataset(const std::string& path);

}  // namespace bgc::data

#endif  // BGC_DATA_IO_H_
