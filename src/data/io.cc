#include "src/data/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/check.h"
#include "src/core/fs.h"

namespace bgc::data {
namespace {

void WriteMatrix(std::ostream& out, const Matrix& m) {
  char buf[64];
  for (int i = 0; i < m.rows(); ++i) {
    const float* row = m.RowPtr(i);
    for (int j = 0; j < m.cols(); ++j) {
      // 9 significant digits round-trip any float32 exactly.
      std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(row[j]));
      out << buf << (j + 1 == m.cols() ? '\n' : ' ');
    }
  }
}

Status ReadMatrixInto(std::istream& in, int rows, int cols, Matrix* out) {
  *out = Matrix(rows, cols);
  for (int i = 0; i < rows * cols; ++i) {
    double v = 0.0;
    if (!(in >> v)) {
      return BGC_ERR("truncated or non-numeric feature block (entry " +
                     std::to_string(i) + " of " +
                     std::to_string(rows * cols) + ")");
    }
    out->data()[i] = static_cast<float>(v);
  }
  return Status::Ok();
}

void WriteEdges(std::ostream& out, const graph::CsrMatrix& adj) {
  char buf[64];
  for (const auto& e : adj.ToEdges()) {
    std::snprintf(buf, sizeof(buf), "%d %d %.9g\n", e.src, e.dst,
                  static_cast<double>(e.weight));
    out << buf;
  }
}

Status ReadEdgesInto(std::istream& in, int n, int m, graph::CsrMatrix* out) {
  std::vector<graph::Edge> edges;
  edges.reserve(m);
  for (int k = 0; k < m; ++k) {
    int src = 0, dst = 0;
    double w = 0.0;
    if (!(in >> src >> dst >> w)) {
      return BGC_ERR("truncated edge block (edge " + std::to_string(k) +
                     " of " + std::to_string(m) + ")");
    }
    if (src < 0 || src >= n || dst < 0 || dst >= n) {
      return BGC_ERR("edge endpoint out of range: (" + std::to_string(src) +
                     ", " + std::to_string(dst) + ") with " +
                     std::to_string(n) + " nodes");
    }
    edges.push_back({src, dst, static_cast<float>(w)});
  }
  *out = graph::CsrMatrix::FromEdges(n, n, edges, /*symmetrize=*/false);
  return Status::Ok();
}

void WriteIndexLine(std::ostream& out, const char* tag,
                    const std::vector<int>& idx) {
  out << tag << ' ' << idx.size();
  for (int i : idx) out << ' ' << i;
  out << '\n';
}

Status ReadIndexLineInto(std::istream& in, const char* tag, int num_nodes,
                         std::vector<int>* out) {
  std::string seen;
  long long count = 0;
  if (!(in >> seen >> count)) return BGC_ERR("truncated split line");
  if (seen != tag) {
    return BGC_ERR("expected split tag " + std::string(tag) + ", got " +
                   seen);
  }
  if (count < 0 || count > num_nodes) {
    return BGC_ERR("split \"" + seen + "\" has invalid size " +
                   std::to_string(count) + " for " +
                   std::to_string(num_nodes) + " nodes");
  }
  out->resize(static_cast<size_t>(count));
  for (long long i = 0; i < count; ++i) {
    if (!(in >> (*out)[i])) return BGC_ERR("truncated split ids");
    if ((*out)[i] < 0 || (*out)[i] >= num_nodes) {
      return BGC_ERR("split id " + std::to_string((*out)[i]) +
                     " out of range");
    }
  }
  return Status::Ok();
}

Status CheckHeader(std::istream& in) {
  std::string magic, version;
  if (!(in >> magic >> version)) return BGC_ERR("missing bgc-graph header");
  if (magic != "bgc-graph" || version != "v1") {
    return BGC_ERR("unsupported file format: " + magic + " " + version);
  }
  return Status::Ok();
}

struct Header {
  int nodes = 0, features = 0, classes = 0, edges = 0, inductive = 0;
};

Status ReadBodyInto(std::istream& in, Header* h) {
  std::string k1, k2, k3, k4, k5;
  if (!(in >> k1 >> h->nodes >> k2 >> h->features >> k3 >> h->classes >>
        k4 >> h->edges >> k5 >> h->inductive)) {
    return BGC_ERR("malformed header line");
  }
  if (k1 != "nodes" || k2 != "features" || k3 != "classes" || k4 != "edges" ||
      k5 != "inductive") {
    return BGC_ERR("malformed header keys");
  }
  if (h->nodes < 0 || h->features < 0 || h->classes < 0 || h->edges < 0) {
    return BGC_ERR("negative header count");
  }
  return Status::Ok();
}

Status ReadLabelsInto(std::istream& in, int n, int classes,
                      std::vector<int>* labels) {
  labels->resize(n);
  for (int i = 0; i < n; ++i) {
    if (!(in >> (*labels)[i])) return BGC_ERR("truncated labels");
    if ((*labels)[i] < 0 || (*labels)[i] >= classes) {
      return BGC_ERR("label " + std::to_string((*labels)[i]) +
                     " out of range [0, " + std::to_string(classes) + ")");
    }
  }
  return Status::Ok();
}

Status Annotate(const Status& s, const std::string& path) {
  return Status::Error(path + ": " + s.message());
}

}  // namespace

void SaveDataset(const GraphDataset& dataset, const std::string& path) {
  std::ostringstream out;
  out << "bgc-graph v1\n";
  out << "nodes " << dataset.num_nodes() << " features "
      << dataset.feature_dim() << " classes " << dataset.num_classes
      << " edges " << dataset.adj.nnz() << " inductive "
      << (dataset.inductive ? 1 : 0) << '\n';
  for (size_t i = 0; i < dataset.labels.size(); ++i) {
    out << dataset.labels[i]
        << (i + 1 == dataset.labels.size() ? '\n' : ' ');
  }
  WriteIndexLine(out, "train", dataset.train_idx);
  WriteIndexLine(out, "val", dataset.val_idx);
  WriteIndexLine(out, "test", dataset.test_idx);
  WriteEdges(out, dataset.adj);
  WriteMatrix(out, dataset.features);
  Status s = WriteFileAtomic(path, out.str());
  BGC_CHECK_MSG(s.ok(), "cannot write " + path + ": " + s.message());
}

StatusOr<GraphDataset> TryLoadDataset(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) return BGC_ERR("cannot open for reading: " + path);
  if (Status s = CheckHeader(in); !s.ok()) return Annotate(s, path);
  Header h;
  if (Status s = ReadBodyInto(in, &h); !s.ok()) return Annotate(s, path);
  GraphDataset ds;
  ds.name = path;
  ds.num_classes = h.classes;
  ds.inductive = h.inductive != 0;
  if (Status s = ReadLabelsInto(in, h.nodes, h.classes, &ds.labels); !s.ok())
    return Annotate(s, path);
  if (Status s = ReadIndexLineInto(in, "train", h.nodes, &ds.train_idx);
      !s.ok())
    return Annotate(s, path);
  if (Status s = ReadIndexLineInto(in, "val", h.nodes, &ds.val_idx); !s.ok())
    return Annotate(s, path);
  if (Status s = ReadIndexLineInto(in, "test", h.nodes, &ds.test_idx);
      !s.ok())
    return Annotate(s, path);
  if (Status s = ReadEdgesInto(in, h.nodes, h.edges, &ds.adj); !s.ok())
    return Annotate(s, path);
  if (Status s = ReadMatrixInto(in, h.nodes, h.features, &ds.features);
      !s.ok())
    return Annotate(s, path);
  return ds;
}

GraphDataset LoadDataset(const std::string& path) {
  StatusOr<GraphDataset> loaded = TryLoadDataset(path);
  BGC_CHECK_MSG(loaded.ok(), loaded.status().message());
  return loaded.take();
}

}  // namespace bgc::data
