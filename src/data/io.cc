#include "src/data/io.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/core/check.h"

namespace bgc::data {
namespace {

void WriteMatrix(std::ofstream& out, const Matrix& m) {
  char buf[64];
  for (int i = 0; i < m.rows(); ++i) {
    const float* row = m.RowPtr(i);
    for (int j = 0; j < m.cols(); ++j) {
      // 9 significant digits round-trip any float32 exactly.
      std::snprintf(buf, sizeof(buf), "%.9g", static_cast<double>(row[j]));
      out << buf << (j + 1 == m.cols() ? '\n' : ' ');
    }
  }
}

Matrix ReadMatrix(std::ifstream& in, int rows, int cols) {
  Matrix m(rows, cols);
  for (int i = 0; i < rows * cols; ++i) {
    double v = 0.0;
    BGC_CHECK_MSG(static_cast<bool>(in >> v), "truncated feature block");
    m.data()[i] = static_cast<float>(v);
  }
  return m;
}

void WriteEdges(std::ofstream& out, const graph::CsrMatrix& adj) {
  char buf[64];
  for (const auto& e : adj.ToEdges()) {
    std::snprintf(buf, sizeof(buf), "%d %d %.9g\n", e.src, e.dst,
                  static_cast<double>(e.weight));
    out << buf;
  }
}

graph::CsrMatrix ReadEdges(std::ifstream& in, int n, int m) {
  std::vector<graph::Edge> edges;
  edges.reserve(m);
  for (int k = 0; k < m; ++k) {
    int src = 0, dst = 0;
    double w = 0.0;
    BGC_CHECK_MSG(static_cast<bool>(in >> src >> dst >> w),
                  "truncated edge block");
    edges.push_back({src, dst, static_cast<float>(w)});
  }
  return graph::CsrMatrix::FromEdges(n, n, edges, /*symmetrize=*/false);
}

void WriteIndexLine(std::ofstream& out, const char* tag,
                    const std::vector<int>& idx) {
  out << tag << ' ' << idx.size();
  for (int i : idx) out << ' ' << i;
  out << '\n';
}

std::vector<int> ReadIndexLine(std::ifstream& in, const char* tag) {
  std::string seen;
  size_t count = 0;
  BGC_CHECK_MSG(static_cast<bool>(in >> seen >> count), "truncated split");
  BGC_CHECK_MSG(seen == tag, "expected split tag " + std::string(tag) +
                                 ", got " + seen);
  std::vector<int> idx(count);
  for (size_t i = 0; i < count; ++i) {
    BGC_CHECK_MSG(static_cast<bool>(in >> idx[i]), "truncated split ids");
  }
  return idx;
}

void CheckHeader(std::ifstream& in) {
  std::string magic, version;
  BGC_CHECK_MSG(static_cast<bool>(in >> magic >> version),
                "missing bgc-graph header");
  BGC_CHECK_MSG(magic == "bgc-graph" && version == "v1",
                "unsupported file format: " + magic + " " + version);
}

struct Header {
  int nodes = 0, features = 0, classes = 0, edges = 0, inductive = 0;
};

Header ReadBody(std::ifstream& in) {
  Header h;
  std::string k1, k2, k3, k4, k5;
  BGC_CHECK_MSG(static_cast<bool>(in >> k1 >> h.nodes >> k2 >> h.features >>
                                  k3 >> h.classes >> k4 >> h.edges >> k5 >>
                                  h.inductive),
                "malformed header line");
  BGC_CHECK_MSG(k1 == "nodes" && k2 == "features" && k3 == "classes" &&
                    k4 == "edges" && k5 == "inductive",
                "malformed header keys");
  return h;
}

std::vector<int> ReadLabels(std::ifstream& in, int n, int classes) {
  std::vector<int> labels(n);
  for (int i = 0; i < n; ++i) {
    BGC_CHECK_MSG(static_cast<bool>(in >> labels[i]), "truncated labels");
    BGC_CHECK_GE(labels[i], 0);
    BGC_CHECK_LT(labels[i], classes);
  }
  return labels;
}

}  // namespace

void SaveDataset(const GraphDataset& dataset, const std::string& path) {
  std::ofstream out(path);
  BGC_CHECK_MSG(out.good(), "cannot open for writing: " + path);
  out << "bgc-graph v1\n";
  out << "nodes " << dataset.num_nodes() << " features "
      << dataset.feature_dim() << " classes " << dataset.num_classes
      << " edges " << dataset.adj.nnz() << " inductive "
      << (dataset.inductive ? 1 : 0) << '\n';
  for (size_t i = 0; i < dataset.labels.size(); ++i) {
    out << dataset.labels[i]
        << (i + 1 == dataset.labels.size() ? '\n' : ' ');
  }
  WriteIndexLine(out, "train", dataset.train_idx);
  WriteIndexLine(out, "val", dataset.val_idx);
  WriteIndexLine(out, "test", dataset.test_idx);
  WriteEdges(out, dataset.adj);
  WriteMatrix(out, dataset.features);
  BGC_CHECK_MSG(out.good(), "write failed: " + path);
}

GraphDataset LoadDataset(const std::string& path) {
  std::ifstream in(path);
  BGC_CHECK_MSG(in.good(), "cannot open for reading: " + path);
  CheckHeader(in);
  Header h = ReadBody(in);
  GraphDataset ds;
  ds.name = path;
  ds.num_classes = h.classes;
  ds.inductive = h.inductive != 0;
  ds.labels = ReadLabels(in, h.nodes, h.classes);
  ds.train_idx = ReadIndexLine(in, "train");
  ds.val_idx = ReadIndexLine(in, "val");
  ds.test_idx = ReadIndexLine(in, "test");
  ds.adj = ReadEdges(in, h.nodes, h.edges);
  ds.features = ReadMatrix(in, h.nodes, h.features);
  return ds;
}

}  // namespace bgc::data
