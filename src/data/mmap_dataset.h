#ifndef BGC_DATA_MMAP_DATASET_H_
#define BGC_DATA_MMAP_DATASET_H_

// Out-of-core, read-only view of a "bgc.dataset" bgcbin container backed
// by mmap. The format is unchanged — the section table already addresses
// payloads by offset — but unlike store::TryLoadDatasetBinary, nothing is
// copied into heap matrices: adjacency rows and feature rows are served
// straight from the page cache.
//
// Integrity contract (enforced by tests/bgcbin_fuzz_test.cc): every
// corruption — truncation, bit flip, byte overwrite, wrong artifact kind —
// surfaces as a Status error at Open() or on a section's first touch
// (EnsureAdjacency / EnsureFeatures), never as a SIGBUS, crash, or
// silently wrong data. Open() validates the header + section table and
// eagerly checksums/decodes the small sections (kind, meta, labels,
// splits); the two big payloads (adj, features) are checksummed lazily in
// bounded chunks, with consumed pages dropped back to the kernel so the
// verification pass itself stays within a small RSS budget. The only gap
// is a file truncated *while* mapped, which POSIX surfaces as SIGBUS; the
// store's atomic-rename write discipline makes that unreachable through
// library writers.
//
// Laziness contract: degree()/Row()/CopyRow()/feature_dim() require the
// corresponding Ensure*() (or Warm()) to have returned Ok first — checked,
// not silently tolerated. After Ensure*, accessors are const, lock-free,
// and safe to call from multiple threads (the mapping is read-only).

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/status.h"
#include "src/graph/partition.h"

namespace bgc::data {

/// Memory-mapped GraphDataset view implementing the out-of-core access
/// interfaces consumed by the neighbor sampler and sharded kernels.
class MmapDataset final : public graph::NeighborSource,
                          public graph::FeatureSource {
 public:
  /// Maps `path`, validates the container table, and decodes the small
  /// sections. The adjacency / feature payloads are not yet verified.
  static StatusOr<MmapDataset> Open(const std::string& path);

  MmapDataset(MmapDataset&& other) noexcept;
  MmapDataset& operator=(MmapDataset&& other) noexcept;
  MmapDataset(const MmapDataset&) = delete;
  MmapDataset& operator=(const MmapDataset&) = delete;
  ~MmapDataset() override;

  /// First touch of the "adj" section: chunked CRC verification plus a
  /// structural scan (sorted, deduplicated, in-range edge records) that
  /// builds the in-RAM row index. Idempotent; O(nnz) once.
  Status EnsureAdjacency();

  /// First touch of the "features" section: chunked CRC verification and
  /// shape validation. Idempotent.
  Status EnsureFeatures();

  /// EnsureAdjacency() + EnsureFeatures().
  Status Warm();

  // graph::NeighborSource + graph::FeatureSource.
  int num_nodes() const override { return num_nodes_; }
  int degree(int node) const override;
  void Row(int node, std::vector<int>* cols,
           std::vector<float>* vals) const override;
  int dim() const override;
  void CopyRow(int node, float* out) const override;

  const std::string& name() const { return name_; }
  const std::string& origin() const { return origin_; }
  int num_classes() const { return num_classes_; }
  bool inductive() const { return inductive_; }
  const std::vector<int>& labels() const { return labels_; }
  const std::vector<int>& train_idx() const { return train_idx_; }
  const std::vector<int>& val_idx() const { return val_idx_; }
  const std::vector<int>& test_idx() const { return test_idx_; }

  /// Total stored adjacency entries (requires EnsureAdjacency).
  long long nnz() const;

  /// Size of the underlying mapping in bytes.
  size_t mapped_bytes() const { return map_size_; }

  /// Advises the kernel to drop every clean page of the mapping. Resident
  /// memory shrinks to the in-RAM index/labels; subsequent accesses fault
  /// pages back in from the file. No-op where madvise is unavailable.
  void ReleaseMemory() const;

 private:
  MmapDataset() = default;
  void Reset();
  Status ChecksumSection(size_t offset, size_t size, uint32_t expect,
                         const std::string& section) const;

  std::string origin_;
  char* map_ = nullptr;
  size_t map_size_ = 0;

  std::string name_;
  int num_nodes_ = 0;
  int num_classes_ = 0;
  bool inductive_ = false;
  std::vector<int> labels_;
  std::vector<int> train_idx_;
  std::vector<int> val_idx_;
  std::vector<int> test_idx_;

  // "adj" section: absolute payload bounds and the lazily built row index
  // (row_index_[r] = first record of row r; records are 12 bytes).
  size_t adj_offset_ = 0;
  size_t adj_size_ = 0;
  uint32_t adj_crc_ = 0;
  bool adj_ready_ = false;
  std::vector<int64_t> row_index_;

  // "features" section.
  size_t features_offset_ = 0;
  size_t features_size_ = 0;
  uint32_t features_crc_ = 0;
  bool features_ready_ = false;
  int feature_dim_ = 0;
};

}  // namespace bgc::data

#endif  // BGC_DATA_MMAP_DATASET_H_
