#include "src/data/mmap_dataset.h"

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#define BGC_HAVE_MMAP 1
#endif

#include "src/core/check.h"
#include "src/core/hash.h"
#include "src/obs/obs.h"
#include "src/store/bgcbin.h"

namespace bgc::data {
namespace {

// Bytes checksummed per chunk during a first-touch verification pass
// (rounded to a multiple of the 12-byte edge record). Bounds both the
// working set and the page-drop cadence.
constexpr size_t kVerifyChunk = 12 * 87381;  // ~1 MiB

int32_t LoadI32(const char* p) {
  int32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

float LoadF32(const char* p) {
  float v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t LoadU64(const char* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

size_t PageFloor(size_t x) {
#if defined(BGC_HAVE_MMAP)
  static const size_t kPage = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  return x - (x % kPage);
#else
  return x;
#endif
}

// Drops fully consumed clean pages of [from, to) back to the kernel so a
// verification pass over a multi-GB section never grows the RSS by more
// than a chunk. `from` must be page-aligned; returns the new cursor.
size_t DropPages(char* map, size_t from, size_t to) {
#if defined(BGC_HAVE_MMAP) && defined(MADV_DONTNEED)
  const size_t end = PageFloor(to);
  if (end > from) {
    ::madvise(map + from, end - from, MADV_DONTNEED);
    BGC_COUNTER_ADD("data.mmap.bytes_dropped",
                    static_cast<long long>(end - from));
    return end;
  }
  return from;
#else
  (void)map;
  (void)to;
  return from;
#endif
}

Status SectionErr(const std::string& origin, const std::string& section,
                  const std::string& msg) {
  return Status::Error(origin + ": section \"" + section + "\" " + msg);
}

}  // namespace

MmapDataset::MmapDataset(MmapDataset&& other) noexcept { *this = std::move(other); }

MmapDataset& MmapDataset::operator=(MmapDataset&& other) noexcept {
  if (this == &other) return *this;
  Reset();
  origin_ = std::move(other.origin_);
  map_ = other.map_;
  map_size_ = other.map_size_;
  other.map_ = nullptr;
  other.map_size_ = 0;
  name_ = std::move(other.name_);
  num_nodes_ = other.num_nodes_;
  num_classes_ = other.num_classes_;
  inductive_ = other.inductive_;
  labels_ = std::move(other.labels_);
  train_idx_ = std::move(other.train_idx_);
  val_idx_ = std::move(other.val_idx_);
  test_idx_ = std::move(other.test_idx_);
  adj_offset_ = other.adj_offset_;
  adj_size_ = other.adj_size_;
  adj_crc_ = other.adj_crc_;
  adj_ready_ = other.adj_ready_;
  row_index_ = std::move(other.row_index_);
  features_offset_ = other.features_offset_;
  features_size_ = other.features_size_;
  features_crc_ = other.features_crc_;
  features_ready_ = other.features_ready_;
  feature_dim_ = other.feature_dim_;
  return *this;
}

MmapDataset::~MmapDataset() { Reset(); }

void MmapDataset::Reset() {
#if defined(BGC_HAVE_MMAP)
  if (map_ != nullptr) ::munmap(map_, map_size_);
#endif
  map_ = nullptr;
  map_size_ = 0;
}

StatusOr<MmapDataset> MmapDataset::Open(const std::string& path) {
#if !defined(BGC_HAVE_MMAP)
  return BGC_ERR(path + ": mmap datasets are not supported on this platform");
#else
  BGC_TRACE_SCOPE("data.mmap.open");
  MmapDataset ds;
  ds.origin_ = path;

  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return BGC_ERR("cannot open " + path + ": " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    Status s = BGC_ERR("cannot stat " + path + ": " + std::strerror(errno));
    ::close(fd);
    return s;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size < 16) {
    ::close(fd);
    return BGC_ERR(path + ": truncated bgcbin header");
  }
  void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    return BGC_ERR("cannot mmap " + path + ": " + std::strerror(errno));
  }
  ds.map_ = static_cast<char*>(map);
  ds.map_size_ = size;
  BGC_GAUGE_SET("data.mmap.bytes_mapped", static_cast<double>(size));

  // Header + table validation (magic, version, table CRC, sizes) — every
  // mutation of those bytes fails here, before any payload is trusted.
  StatusOr<std::vector<store::SectionEntry>> table =
      store::ParseSectionTable(std::string_view(ds.map_, ds.map_size_), path);
  if (!table.ok()) return table.status();

  const store::SectionEntry* kind = nullptr;
  const store::SectionEntry* meta = nullptr;
  const store::SectionEntry* labels = nullptr;
  const store::SectionEntry* train = nullptr;
  const store::SectionEntry* val = nullptr;
  const store::SectionEntry* test = nullptr;
  const store::SectionEntry* adj = nullptr;
  const store::SectionEntry* features = nullptr;
  const std::vector<store::SectionEntry> entries = table.take();
  for (const store::SectionEntry& e : entries) {
    if (e.name == "kind") kind = &e;
    else if (e.name == "meta") meta = &e;
    else if (e.name == "labels") labels = &e;
    else if (e.name == "train_idx") train = &e;
    else if (e.name == "val_idx") val = &e;
    else if (e.name == "test_idx") test = &e;
    else if (e.name == "adj") adj = &e;
    else if (e.name == "features") features = &e;
  }
  // Small sections: checksum eagerly (this *is* their first touch) and
  // decode into RAM through the bounds-checked SectionReader.
  auto small = [&](const store::SectionEntry& e) -> StatusOr<store::SectionReader> {
    if (Status s = ds.ChecksumSection(e.offset, e.size, e.crc, e.name);
        !s.ok()) {
      return s;
    }
    return store::SectionReader(std::string_view(ds.map_ + e.offset, e.size),
                                e.name);
  };

  // Validate the artifact kind before reporting missing sections: a
  // wrong-kind file (e.g. a condensed artifact) is missing dataset
  // sections by design, and "artifact kind is X" is the actionable error.
  if (kind != nullptr) {
    StatusOr<store::SectionReader> r = small(*kind);
    if (!r.ok()) return r.status();
    store::SectionReader reader = r.take();
    const std::string seen = reader.GetString();
    if (!reader.ok()) {
      return Status::Error(path + ": " + reader.status().message());
    }
    if (seen != "bgc.dataset") {
      return BGC_ERR(path + ": artifact kind is \"" + seen +
                     "\", expected \"bgc.dataset\"");
    }
  }
  const std::pair<const store::SectionEntry*, const char*> required[] = {
      {kind, "kind"},      {meta, "meta"}, {labels, "labels"},
      {train, "train_idx"}, {val, "val_idx"}, {test, "test_idx"},
      {adj, "adj"},        {features, "features"}};
  for (const auto& [entry, sect] : required) {
    if (entry == nullptr) {
      return BGC_ERR(path + ": missing section \"" + std::string(sect) +
                     "\"");
    }
  }
  {
    StatusOr<store::SectionReader> r = small(*meta);
    if (!r.ok()) return r.status();
    store::SectionReader reader = r.take();
    ds.name_ = reader.GetString();
    ds.num_classes_ = reader.GetI32();
    ds.inductive_ = reader.GetU8() != 0;
    if (!reader.ok()) {
      return Status::Error(path + ": " + reader.status().message());
    }
    if (ds.num_classes_ <= 0) {
      return BGC_ERR(path + ": non-positive class count " +
                     std::to_string(ds.num_classes_));
    }
  }
  auto int_vector = [&](const store::SectionEntry& e,
                        std::vector<int>* out) -> Status {
    StatusOr<store::SectionReader> r = small(e);
    if (!r.ok()) return r.status();
    store::SectionReader reader = r.take();
    const uint64_t n = reader.GetU64();
    if (!reader.ok() || n * 4 != reader.remaining()) {
      return SectionErr(path, e.name, "has a malformed int vector");
    }
    out->resize(static_cast<size_t>(n));
    for (auto& x : *out) x = reader.GetI32();
    return reader.ok() ? Status::Ok()
                       : Status::Error(path + ": " +
                                       reader.status().message());
  };
  if (Status s = int_vector(*labels, &ds.labels_); !s.ok()) return s;
  if (Status s = int_vector(*train, &ds.train_idx_); !s.ok()) return s;
  if (Status s = int_vector(*val, &ds.val_idx_); !s.ok()) return s;
  if (Status s = int_vector(*test, &ds.test_idx_); !s.ok()) return s;

  ds.num_nodes_ = static_cast<int>(ds.labels_.size());
  for (int y : ds.labels_) {
    if (y < 0 || y >= ds.num_classes_) {
      return BGC_ERR(path + ": label " + std::to_string(y) +
                     " out of range [0, " + std::to_string(ds.num_classes_) +
                     ")");
    }
  }
  const std::pair<const std::vector<int>*, const char*> splits[] = {
      {&ds.train_idx_, "train"}, {&ds.val_idx_, "val"},
      {&ds.test_idx_, "test"}};
  for (const auto& [idx, tag] : splits) {
    for (int i : *idx) {
      if (i < 0 || i >= ds.num_nodes_) {
        return BGC_ERR(path + ": " + std::string(tag) + " split id " +
                       std::to_string(i) + " out of range for " +
                       std::to_string(ds.num_nodes_) + " nodes");
      }
    }
  }

  ds.adj_offset_ = adj->offset;
  ds.adj_size_ = adj->size;
  ds.adj_crc_ = adj->crc;
  ds.features_offset_ = features->offset;
  ds.features_size_ = features->size;
  ds.features_crc_ = features->crc;
  return StatusOr<MmapDataset>(std::move(ds));
#endif
}

Status MmapDataset::ChecksumSection(size_t offset, size_t size,
                                    uint32_t expect,
                                    const std::string& section) const {
  uint32_t crc = 0;
  size_t drop_from = PageFloor(offset);
  size_t pos = 0;
  while (pos < size) {
    const size_t len = std::min(kVerifyChunk, size - pos);
    crc = Crc32(map_ + offset + pos, len, crc);
    pos += len;
    // Only worth dropping pages for multi-chunk (big) sections.
    if (size > kVerifyChunk) {
      drop_from = DropPages(map_, drop_from, offset + pos);
    }
  }
  if (crc != expect) {
    return SectionErr(origin_, section, "checksum mismatch (file corrupt)");
  }
  BGC_COUNTER_ADD("data.mmap.sections_verified", 1);
  return Status::Ok();
}

Status MmapDataset::EnsureAdjacency() {
  if (adj_ready_) return Status::Ok();
  BGC_TRACE_SCOPE("data.mmap.verify_adj");
  const char* base = map_ + adj_offset_;
  if (adj_size_ < 16) {
    return SectionErr(origin_, "adj", "is too small for a CSR header");
  }
  const int rows = LoadI32(base);
  const int cols = LoadI32(base + 4);
  const uint64_t nnz = LoadU64(base + 8);
  if (rows != num_nodes_ || cols != num_nodes_) {
    return SectionErr(origin_, "adj",
                      "has shape " + std::to_string(rows) + "x" +
                          std::to_string(cols) + ", expected " +
                          std::to_string(num_nodes_) + "x" +
                          std::to_string(num_nodes_));
  }
  if (nnz > (adj_size_ - 16) / 12 || 16 + nnz * 12 != adj_size_) {
    return SectionErr(origin_, "adj",
                      "declares " + std::to_string(nnz) +
                          " edge records but holds " +
                          std::to_string(adj_size_) + " bytes");
  }

  // One pass: CRC accumulation, structural validation (sorted, in-range,
  // duplicate-free records), and per-row counts — dropping consumed pages
  // as it goes. The index is only trusted once the CRC matched.
  std::vector<int64_t> counts(static_cast<size_t>(num_nodes_) + 1, 0);
  uint32_t crc = Crc32(base, 16, 0);
  int prev_src = -1;
  int prev_dst = -1;
  size_t drop_from = PageFloor(adj_offset_);
  size_t pos = 16;
  while (pos < adj_size_) {
    const size_t len = std::min(kVerifyChunk, adj_size_ - pos);
    crc = Crc32(base + pos, len, crc);
    for (size_t off = 0; off + 12 <= len; off += 12) {
      const int src = LoadI32(base + pos + off);
      const int dst = LoadI32(base + pos + off + 4);
      if (src < 0 || src >= num_nodes_ || dst < 0 || dst >= num_nodes_) {
        return SectionErr(origin_, "adj",
                          "has an edge endpoint out of range: (" +
                              std::to_string(src) + ", " +
                              std::to_string(dst) + ")");
      }
      if (src < prev_src || (src == prev_src && dst <= prev_dst)) {
        return SectionErr(origin_, "adj",
                          "has unsorted or duplicate edge records near (" +
                              std::to_string(src) + ", " +
                              std::to_string(dst) + ")");
      }
      prev_src = src;
      prev_dst = dst;
      ++counts[static_cast<size_t>(src) + 1];
    }
    pos += len;
    drop_from = DropPages(map_, drop_from, adj_offset_ + pos);
  }
  if (crc != adj_crc_) {
    return SectionErr(origin_, "adj", "checksum mismatch (file corrupt)");
  }
  for (size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];
  row_index_ = std::move(counts);
  adj_ready_ = true;
  BGC_COUNTER_ADD("data.mmap.sections_verified", 1);
  return Status::Ok();
}

Status MmapDataset::EnsureFeatures() {
  if (features_ready_) return Status::Ok();
  BGC_TRACE_SCOPE("data.mmap.verify_features");
  const char* base = map_ + features_offset_;
  if (features_size_ < 8) {
    return SectionErr(origin_, "features",
                      "is too small for a matrix header");
  }
  const int rows = LoadI32(base);
  const int cols = LoadI32(base + 4);
  if (rows != num_nodes_ || cols <= 0) {
    return SectionErr(origin_, "features",
                      "has shape " + std::to_string(rows) + "x" +
                          std::to_string(cols) + ", expected " +
                          std::to_string(num_nodes_) + " rows");
  }
  const uint64_t want =
      8 + static_cast<uint64_t>(rows) * static_cast<uint64_t>(cols) * 4;
  if (want != features_size_) {
    return SectionErr(origin_, "features",
                      "payload size does not match its declared shape");
  }
  if (Status s = ChecksumSection(features_offset_, features_size_,
                                 features_crc_, "features");
      !s.ok()) {
    return s;
  }
  feature_dim_ = cols;
  features_ready_ = true;
  return Status::Ok();
}

Status MmapDataset::Warm() {
  if (Status s = EnsureAdjacency(); !s.ok()) return s;
  return EnsureFeatures();
}

int MmapDataset::degree(int node) const {
  BGC_CHECK_MSG(adj_ready_, "MmapDataset: EnsureAdjacency() not called");
  BGC_CHECK_GE(node, 0);
  BGC_CHECK_LT(node, num_nodes_);
  return static_cast<int>(row_index_[node + 1] - row_index_[node]);
}

void MmapDataset::Row(int node, std::vector<int>* cols,
                      std::vector<float>* vals) const {
  BGC_CHECK_MSG(adj_ready_, "MmapDataset: EnsureAdjacency() not called");
  BGC_CHECK_GE(node, 0);
  BGC_CHECK_LT(node, num_nodes_);
  const int64_t begin = row_index_[node];
  const int64_t end = row_index_[node + 1];
  cols->resize(static_cast<size_t>(end - begin));
  vals->resize(static_cast<size_t>(end - begin));
  const char* rec = map_ + adj_offset_ + 16 + begin * 12;
  for (int64_t k = 0; k < end - begin; ++k, rec += 12) {
    (*cols)[static_cast<size_t>(k)] = LoadI32(rec + 4);
    (*vals)[static_cast<size_t>(k)] = LoadF32(rec + 8);
  }
}

int MmapDataset::dim() const {
  BGC_CHECK_MSG(features_ready_, "MmapDataset: EnsureFeatures() not called");
  return feature_dim_;
}

void MmapDataset::CopyRow(int node, float* out) const {
  BGC_CHECK_MSG(features_ready_, "MmapDataset: EnsureFeatures() not called");
  BGC_CHECK_GE(node, 0);
  BGC_CHECK_LT(node, num_nodes_);
  std::memcpy(out,
              map_ + features_offset_ + 8 +
                  static_cast<size_t>(node) *
                      static_cast<size_t>(feature_dim_) * sizeof(float),
              static_cast<size_t>(feature_dim_) * sizeof(float));
}

long long MmapDataset::nnz() const {
  BGC_CHECK_MSG(adj_ready_, "MmapDataset: EnsureAdjacency() not called");
  return row_index_[num_nodes_];
}

void MmapDataset::ReleaseMemory() const {
#if defined(BGC_HAVE_MMAP) && defined(MADV_DONTNEED)
  if (map_ != nullptr && map_size_ > 0) {
    ::madvise(map_, map_size_, MADV_DONTNEED);
    BGC_COUNTER_ADD("data.mmap.bytes_dropped",
                    static_cast<long long>(map_size_));
  }
#endif
}

}  // namespace bgc::data
