#include "src/serve/net.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0  // non-Linux fallback; daemons also ignore SIGPIPE
#endif

namespace bgc::serve {
namespace {

Status Errno(const std::string& what) {
  return Status::Error(what + ": " + std::strerror(errno));
}

}  // namespace

StatusOr<int> ListenOn(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Errno("bind port " + std::to_string(port));
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) != 0) {
    Status s = Errno("listen");
    ::close(fd);
    return s;
  }
  return fd;
}

StatusOr<int> BoundPort(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<int>(ntohs(addr.sin_port));
}

StatusOr<int> ConnectTo(const std::string& host, int port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  const std::string numeric = host == "localhost" ? "127.0.0.1" : host;
  if (::inet_pton(AF_INET, numeric.c_str(), &addr.sin_addr) != 1) {
    return Status::Error("not an IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status s = Errno("connect " + host + ":" + std::to_string(port));
    ::close(fd);
    return s;
  }
  return fd;
}

void ShutdownFd(int fd) {
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

LineChannel::~LineChannel() { CloseFd(fd_); }

bool LineChannel::ReadLine(std::string& line) {
  if (broken_) return false;
  for (;;) {
    const size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (buffer_.size() >= kMaxLineBytes) {
      broken_ = true;  // peer is streaming garbage; cut it off
      return false;
    }
    char chunk[4096];
    ssize_t n;
    do {
      n = ::recv(fd_, chunk, sizeof(chunk), 0);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      broken_ = true;
      return false;
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

bool LineChannel::WriteLine(const std::string& line) {
  if (broken_) return false;
  std::string framed = line;
  framed += '\n';
  size_t off = 0;
  while (off < framed.size()) {
    ssize_t n;
    do {
      n = ::send(fd_, framed.data() + off, framed.size() - off, MSG_NOSIGNAL);
    } while (n < 0 && errno == EINTR);
    if (n <= 0) {
      broken_ = true;
      return false;
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace bgc::serve
