#ifndef BGC_SERVE_SERVER_H_
#define BGC_SERVE_SERVER_H_

// The bgc-serve-v1 job server: a long-running daemon accepting
// condense / attack / eval submissions over TCP (protocol.h) and
// multiplexing them onto an eval::WorkerSlots pool.
//
// Lifecycle of a job:
//   submit -> admission validation (ParseJobSpec; a bad spec is a 400
//   reply, never an aborted worker) -> bounded queue (429 when
//   queue_depth QUEUED jobs already wait) -> QUEUED, sidecar persisted to
//   state_dir -> RUNNING on a worker slot under phase tag "serve.<id>"
//   (progress streams from the obs registry) -> DONE with a result
//   object, or ERR with a message.
//
// Durability: every admitted job writes a `<keyhex>.job` sidecar; a
// condense job whose method supports checkpointing additionally writes
// `<keyhex>.ckpt` every checkpoint_every epochs. A server restarted over
// the same state_dir re-admits sidecar jobs and resumes their
// condensations from the checkpoint, finishing bit-identically with an
// uninterrupted run.
//
// Dedup: jobs are content-addressed by CanonicalJobKey. Identical
// condense submissions share one computation through the ArtifactCache's
// single-flight GetOrComputeCondensed — concurrent duplicates coalesce
// behind one leader, later ones hit the cache outright.
//
// Drain (SIGTERM path): RequestDrain stops admissions (503) and makes
// still-queued closures no-op — their jobs stay QUEUED with sidecars on
// disk for the next server generation — while RUNNING jobs finish.
// WaitDrained blocks until the pool is idle.

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/core/status.h"
#include "src/eval/scheduler.h"
#include "src/serve/protocol.h"

namespace bgc::store {
class ArtifactCache;
}

namespace bgc::serve {

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see Server::port).
  int port = 0;
  /// Concurrent worker slots (jobs running at once).
  int jobs = 2;
  /// Max jobs waiting in QUEUED beyond the running ones; submissions past
  /// this are rejected with code 429.
  int queue_depth = 16;
  /// Thread budget split across slots (0 = hardware concurrency).
  int total_threads = 0;
  /// Directory for job sidecars and condensation checkpoints. Empty
  /// disables durability (no recovery, no resume).
  std::string state_dir;
  /// Checkpoint cadence for resumable condense jobs (0 disables).
  int checkpoint_every = 10;
  /// Optional content-addressed artifact cache; not owned. Wired into
  /// condense jobs (dedup + coalescing) and eval jobs.
  store::ArtifactCache* cache = nullptr;
  /// Cadence of "stream" progress events.
  int stream_poll_ms = 50;
};

/// Server-side counters (mirrored into the obs registry as
/// serve.jobs_accepted / serve.jobs_rejected / serve.jobs_completed /
/// serve.jobs_failed and the serve.queue_depth gauge).
struct ServerStats {
  long long accepted = 0;
  long long rejected = 0;   // 400/429/503 submissions
  long long completed = 0;
  long long failed = 0;
  long long recovered = 0;  // sidecar jobs re-admitted at Start
  int queued = 0;
  int running = 0;
  /// Eval-result single-flight memo (per server generation, keyed by
  /// CanonicalJobKey): identical eval specs compute once. A miss is a
  /// leader that ran RunExperiment; a hit is a duplicate served from the
  /// memo, whether it arrived after completion or coalesced behind the
  /// in-flight leader.
  long long eval_hits = 0;
  long long eval_misses = 0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, recovers sidecar jobs from state_dir, and starts the accept
  /// loop. Enables obs metrics collection (the serve counters and the
  /// phase timers that power progress streaming need it).
  Status Start();

  /// Port actually bound (after Start; resolves port 0).
  int port() const { return port_; }

  /// Stops admitting (submissions get 503) and turns still-queued job
  /// closures into no-ops; their sidecars stay on disk.
  void RequestDrain();

  /// Blocks until no job is RUNNING and the slot queue is empty.
  void WaitDrained();

  /// Full shutdown: drain flag, close listener and connections, join
  /// threads, release worker slots. Idempotent.
  void Stop();

  ServerStats stats() const;

 private:
  struct Job;
  struct Connection;
  class Impl;
  std::unique_ptr<Impl> impl_;
  int port_ = 0;
};

}  // namespace bgc::serve

#endif  // BGC_SERVE_SERVER_H_
