#ifndef BGC_SERVE_CLIENT_H_
#define BGC_SERVE_CLIENT_H_

// Client side of bgc-serve-v1: a thin synchronous wrapper that frames
// requests, parses replies with the strict obs grammar, and converts
// failure replies ({"ok":false,...}) into Status values that keep the
// server's error code and message. Used by tools/bgc_loadgen, the serve
// tests, and anything else that talks to the daemon.

#include <functional>
#include <memory>
#include <string>

#include "src/core/status.h"
#include "src/obs/json.h"

namespace bgc::serve {

class LineChannel;

class Client {
 public:
  /// Connects to a running server (e.g. Connect("127.0.0.1", port)) and
  /// introduces itself as `name` — the server scopes job ownership to it.
  static StatusOr<Client> Connect(const std::string& host, int port,
                                  const std::string& name = "anon");

  Client(Client&&) noexcept;
  Client& operator=(Client&&) noexcept;
  ~Client();

  /// Round-trip {"op":"ping"}; checks the schema matches bgc-serve-v1.
  Status Ping();

  /// Submits a job. `kind` is condense|attack|eval; `spec_json` is the
  /// spec object as raw JSON text (see protocol.h for the field grammar).
  /// Returns the job id. A rejection (400/429/503) comes back as a Status
  /// whose message starts with "<code>: " — see ReplyCode.
  StatusOr<std::string> Submit(const std::string& kind,
                               const std::string& spec_json);

  /// One status poll / blocking wait. The returned object is the server's
  /// reply ({"job","kind","state"} plus "result" or "error").
  StatusOr<obs::JsonValue> Poll(const std::string& job);
  StatusOr<obs::JsonValue> Wait(const std::string& job);

  /// Streams a job's event lines, invoking `on_event` per event, until
  /// the terminal "done" event (included).
  Status Stream(const std::string& job,
                const std::function<void(const obs::JsonValue&)>& on_event);

  /// {"op":"list"} / {"op":"stats"} replies, verbatim.
  StatusOr<obs::JsonValue> List();
  StatusOr<obs::JsonValue> Stats();

  /// Sends one raw request line and parses one reply line — the escape
  /// hatch the tests use to exercise malformed traffic.
  StatusOr<obs::JsonValue> RoundTrip(const std::string& request_line);

  /// Error code a Status produced by this client carries ("429: ..." →
  /// 429), or 0 when the message has no code prefix.
  static int StatusCode(const Status& status);

 private:
  explicit Client(std::unique_ptr<LineChannel> channel);

  std::unique_ptr<LineChannel> channel_;
  std::string name_;
};

}  // namespace bgc::serve

#endif  // BGC_SERVE_CLIENT_H_
