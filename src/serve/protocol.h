#ifndef BGC_SERVE_PROTOCOL_H_
#define BGC_SERVE_PROTOCOL_H_

// The "bgc-serve-v1" wire protocol: line-delimited JSON over TCP, parsed
// with the strict src/obs grammar. One request line yields one reply line,
// except "stream", which yields a sequence of event lines ending in an
// "event":"done" line. Replies always carry "ok"; failures add "code"
// (HTTP-flavored: 400 bad request, 403 not owner, 404 unknown job, 429
// queue full, 503 draining) and "error" naming the offending field.
//
// Requests (fields beyond "op" as listed; any request may carry "client"
// to set the connection's identity, default "anon"):
//   {"op":"ping"}                      -> {"ok":true,"schema":"bgc-serve-v1"}
//   {"op":"hello","client":C}          -> {"ok":true,"client":C}
//   {"op":"submit","kind":K,"spec":S}  -> {"ok":true,"job":J,"state":"QUEUED"}
//   {"op":"status","job":J}            -> state (+ "result" when DONE)
//   {"op":"wait","job":J}              -> blocks, then as "status"
//   {"op":"stream","job":J}            -> event lines, ends with "done"
//   {"op":"list"}                      -> jobs owned by this client
//   {"op":"stats"}                     -> server + cache counters
//
// Job specs (the S object above) name the same knobs as the bgc_cli
// flags; see ParseJobSpec for the exact field grammar. Specs are strict:
// an unknown or mistyped field rejects the submission naming the field,
// never silently ignores it.

#include <cstdint>
#include <string>
#include <string_view>

#include "src/core/status.h"
#include "src/eval/experiment.h"
#include "src/obs/json.h"

namespace bgc::serve {

inline constexpr char kProtocolSchema[] = "bgc-serve-v1";
inline constexpr char kSidecarSchema[] = "bgc-serve-job-v1";

// Reply error codes (HTTP-flavored, carried in the "code" field).
inline constexpr int kCodeBadRequest = 400;
inline constexpr int kCodeNotOwner = 403;
inline constexpr int kCodeUnknownJob = 404;
inline constexpr int kCodeQueueFull = 429;
inline constexpr int kCodeDraining = 503;

/// What a job computes. kCondense is a clean condensation (cacheable,
/// checkpointable); kAttack mirrors `bgc_cli attack` bit-for-bit; kEval is
/// a full experiment cell (eval::RunExperiment).
enum class JobKind { kCondense, kAttack, kEval };

const char* JobKindName(JobKind kind);
StatusOr<JobKind> ParseJobKind(const std::string& name);

/// A validated job submission. `run` reuses eval::RunSpec so admission
/// validation is exactly eval::ValidateRunSpec plus the serve-side extras
/// (victim arch, target class within the dataset's class count).
struct JobSpec {
  JobKind kind = JobKind::kCondense;
  eval::RunSpec run;
  /// condense/attack only: server-side path the condensed artifact is
  /// saved to (".bgcbin" suffix = binary container, else text). Excluded
  /// from CanonicalJobKey — delivery location, not content.
  std::string out;
};

/// Parses the "spec" object of a submit request. Strict: every field must
/// be known and well-typed, and the assembled RunSpec must pass
/// eval::ValidateRunSpec. Field grammar (all optional):
///   dataset(str) scale(num in [0.01,1]) seed(uint) method(str)
///   n(int>=1) epochs(int>=1)
///   sparsify-keep(num in [0,1])                   — condensation
///   attack(str) target(int>=0) trigger-size(int>=1)
///   poison-ratio(num in [0,1])                    — attack/eval kinds
///   repeats(int>=1) clean-baseline(bool)          — eval kind
///   arch(str) victim-epochs(int>=1)               — attack/eval kinds
///   out(str)                                      — condense/attack kinds
StatusOr<JobSpec> ParseJobSpec(JobKind kind, const obs::JsonValue& spec);

/// Appends the spec as a JSON object (round-trips through ParseJobSpec
/// with an identical CanonicalJobKey).
void AppendJobSpecJson(std::string& out, const JobSpec& spec);

/// Canonical name=value serialization of everything that affects the
/// job's result (kind, dataset, seeds, every config field — `out` and
/// ownership excluded). Content-addresses the job: checkpoint and sidecar
/// files are named by FNV-1a of this string, and duplicate submissions
/// share it.
std::string CanonicalJobKey(const JobSpec& spec);

/// FNV-1a of CanonicalJobKey as fixed-width hex (file-name safe).
std::string JobKeyHex(const JobSpec& spec);

// JSON writer helpers shared by server, client, and load generator.
// AppendJsonNumber prints %.17g so doubles survive a round trip through
// the strict parser bit-exactly.
void AppendJsonString(std::string& out, std::string_view s);
void AppendJsonNumber(std::string& out, double v);

/// {"ok":false,"code":N,"error":msg} — the uniform failure reply.
std::string ErrorReply(int code, const std::string& message);

}  // namespace bgc::serve

#endif  // BGC_SERVE_PROTOCOL_H_
