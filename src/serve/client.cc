#include "src/serve/client.h"

#include "src/core/parse.h"
#include "src/serve/net.h"
#include "src/serve/protocol.h"

namespace bgc::serve {
namespace {

/// Converts a {"ok":false,...} reply into an error Status carrying the
/// server's code as a "<code>: " message prefix (see Client::StatusCode).
Status CheckOk(const obs::JsonValue& reply) {
  const obs::JsonValue* ok = reply.Find("ok");
  if (ok != nullptr && ok->kind == obs::JsonValue::Kind::kBool &&
      ok->bool_value) {
    return Status::Ok();
  }
  const obs::JsonValue* code = reply.Find("code");
  const obs::JsonValue* error = reply.Find("error");
  std::string message;
  if (code != nullptr && code->is_number()) {
    message = std::to_string(static_cast<int>(code->number)) + ": ";
  }
  message += error != nullptr && error->is_string() ? error->str
                                                    : "request failed";
  return Status::Error(message);
}

}  // namespace

Client::Client(std::unique_ptr<LineChannel> channel)
    : channel_(std::move(channel)) {}

Client::Client(Client&&) noexcept = default;
Client& Client::operator=(Client&&) noexcept = default;
Client::~Client() = default;

StatusOr<Client> Client::Connect(const std::string& host, int port,
                                 const std::string& name) {
  StatusOr<int> fd = ConnectTo(host, port);
  if (!fd.ok()) return fd.status();
  Client client(std::make_unique<LineChannel>(fd.value()));
  client.name_ = name;
  std::string hello = "{\"op\":\"hello\",\"client\":";
  AppendJsonString(hello, name);
  hello += '}';
  StatusOr<obs::JsonValue> reply = client.RoundTrip(hello);
  if (!reply.ok()) return reply.status();
  if (Status s = CheckOk(reply.value()); !s.ok()) return s;
  return client;
}

StatusOr<obs::JsonValue> Client::RoundTrip(const std::string& request_line) {
  if (channel_ == nullptr || !channel_->WriteLine(request_line)) {
    return Status::Error("connection lost (write)");
  }
  std::string line;
  if (!channel_->ReadLine(line)) {
    return Status::Error("connection lost (read)");
  }
  obs::JsonParseResult parsed = obs::ParseJson(line);
  if (!parsed.ok) {
    return Status::Error("unparseable reply: " + parsed.error);
  }
  return std::move(parsed.value);
}

Status Client::Ping() {
  StatusOr<obs::JsonValue> reply = RoundTrip("{\"op\":\"ping\"}");
  if (!reply.ok()) return reply.status();
  if (Status s = CheckOk(reply.value()); !s.ok()) return s;
  const obs::JsonValue* schema = reply.value().Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->str != kProtocolSchema) {
    return Status::Error("peer is not a " + std::string(kProtocolSchema) +
                         " server");
  }
  return Status::Ok();
}

StatusOr<std::string> Client::Submit(const std::string& kind,
                                     const std::string& spec_json) {
  std::string request = "{\"op\":\"submit\",\"kind\":";
  AppendJsonString(request, kind);
  request += ",\"spec\":";
  request += spec_json;
  request += '}';
  StatusOr<obs::JsonValue> reply = RoundTrip(request);
  if (!reply.ok()) return reply.status();
  if (Status s = CheckOk(reply.value()); !s.ok()) return s;
  const obs::JsonValue* job = reply.value().Find("job");
  if (job == nullptr || !job->is_string()) {
    return Status::Error("submit reply lacks a job id");
  }
  return job->str;
}

StatusOr<obs::JsonValue> Client::Poll(const std::string& job) {
  std::string request = "{\"op\":\"status\",\"job\":";
  AppendJsonString(request, job);
  request += '}';
  StatusOr<obs::JsonValue> reply = RoundTrip(request);
  if (!reply.ok()) return reply.status();
  if (Status s = CheckOk(reply.value()); !s.ok()) return s;
  return reply;
}

StatusOr<obs::JsonValue> Client::Wait(const std::string& job) {
  std::string request = "{\"op\":\"wait\",\"job\":";
  AppendJsonString(request, job);
  request += '}';
  StatusOr<obs::JsonValue> reply = RoundTrip(request);
  if (!reply.ok()) return reply.status();
  if (Status s = CheckOk(reply.value()); !s.ok()) return s;
  return reply;
}

Status Client::Stream(
    const std::string& job,
    const std::function<void(const obs::JsonValue&)>& on_event) {
  std::string request = "{\"op\":\"stream\",\"job\":";
  AppendJsonString(request, job);
  request += '}';
  if (channel_ == nullptr || !channel_->WriteLine(request)) {
    return Status::Error("connection lost (write)");
  }
  for (;;) {
    std::string line;
    if (!channel_->ReadLine(line)) {
      return Status::Error("connection lost mid-stream");
    }
    obs::JsonParseResult parsed = obs::ParseJson(line);
    if (!parsed.ok) {
      return Status::Error("unparseable event: " + parsed.error);
    }
    if (Status s = CheckOk(parsed.value); !s.ok()) return s;
    on_event(parsed.value);
    const obs::JsonValue* event = parsed.value.Find("event");
    if (event != nullptr && event->is_string() && event->str == "done") {
      return Status::Ok();
    }
  }
}

StatusOr<obs::JsonValue> Client::List() {
  StatusOr<obs::JsonValue> reply = RoundTrip("{\"op\":\"list\"}");
  if (!reply.ok()) return reply.status();
  if (Status s = CheckOk(reply.value()); !s.ok()) return s;
  return reply;
}

StatusOr<obs::JsonValue> Client::Stats() {
  StatusOr<obs::JsonValue> reply = RoundTrip("{\"op\":\"stats\"}");
  if (!reply.ok()) return reply.status();
  if (Status s = CheckOk(reply.value()); !s.ok()) return s;
  return reply;
}

int Client::StatusCode(const Status& status) {
  // CheckOk formats server errors as "<code>: <message>" where <code> is a
  // three-digit HTTP-style code. Require exactly that shape: the old
  // `colon > 3` + atoi version accepted "42: x" (two digits), "4x: y"
  // (atoi stops at the junk and returns 4), and "-1: z". Anything that is
  // not a full 3-digit prefix is a transport-level error, not a server
  // code, and maps to 0.
  if (status.ok()) return 0;
  const std::string& message = status.message();
  if (message.size() < 5 || message[3] != ':' || message[4] != ' ') return 0;
  StatusOr<long long> code = ParseIntInRange(message.substr(0, 3), 100, 999);
  return code.ok() ? static_cast<int>(code.value()) : 0;
}

}  // namespace bgc::serve
