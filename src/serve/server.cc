#include "src/serve/server.h"

#include <dirent.h>
#include <sys/socket.h>
#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

#include "src/condense/condenser.h"
#include "src/condense/io.h"
#include "src/core/fs.h"
#include "src/core/rng.h"
#include "src/data/synthetic.h"
#include "src/eval/experiment.h"
#include "src/eval/pipeline.h"
#include "src/obs/json.h"
#include "src/obs/obs.h"
#include "src/serve/net.h"
#include "src/store/artifact_cache.h"
#include "src/store/resumable.h"
#include "src/store/serialize.h"

namespace bgc::serve {
namespace {

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// Mirrors bgc_cli's SaveCondensedAuto: ".bgcbin" picks the checksummed
/// binary container, anything else the text format.
void SaveArtifact(const condense::CondensedGraph& g, const std::string& path) {
  if (!EndsWith(path, ".bgcbin")) {
    condense::SaveCondensed(g, path);
    return;
  }
  if (Status s = store::SaveCondensedBinary(g, path); !s.ok()) {
    throw std::runtime_error("saving \"" + path + "\": " + s.message());
  }
}

std::string StringField(const obs::JsonValue& req, const char* key,
                        const std::string& fallback) {
  const obs::JsonValue* v = req.Find(key);
  if (v == nullptr) return fallback;
  return v->is_string() ? v->str : fallback;
}

}  // namespace

struct Server::Job {
  enum State { kQueued, kRunning, kDone, kErr };

  std::string id;
  std::string owner;
  JobSpec spec;
  std::string key;  // CanonicalJobKey
  std::string hex;  // JobKeyHex — names the sidecar and checkpoint
  int state = kQueued;
  std::string result;  // JSON object text once kDone
  std::string error;   // message once kErr
  long long epochs_total = 0;
};

struct Server::Connection {
  std::unique_ptr<LineChannel> channel;
  std::thread thread;
  bool done = false;
};

class Server::Impl {
 public:
  explicit Impl(ServerOptions options) : opts(std::move(options)) {}

  static const char* StateName(int state) {
    switch (state) {
      case Job::kQueued: return "QUEUED";
      case Job::kRunning: return "RUNNING";
      case Job::kDone: return "DONE";
      case Job::kErr: return "ERR";
    }
    return "?";
  }

  ServerOptions opts;
  int port = 0;

  mutable std::mutex mu;         // jobs, stats, draining/stopped flags
  std::condition_variable cv;    // signaled on every job state change
  std::map<std::string, std::shared_ptr<Job>> jobs;  // by id, insertion order
  std::map<std::string, int> active_by_hex;  // QUEUED+RUNNING jobs per key
  std::set<std::string> ckpt_inflight;  // keys whose checkpoint file is owned
  /// Single-flight memo for eval-job results, keyed by CanonicalJobKey
  /// (the full string, not the hex digest, so a hash collision can never
  /// alias two specs). Only successful flights stay memoized; a failed
  /// leader erases its entry so a later duplicate recomputes. In-memory
  /// only — a new server generation recomputes (condense artifacts inside
  /// the run still hit the on-disk ArtifactCache).
  struct EvalFlight {
    bool done = false;
    bool ok = false;
    std::string result;
  };
  std::map<std::string, std::shared_ptr<EvalFlight>> eval_memo;
  ServerStats st;
  bool draining = false;
  bool stopped = false;
  int next_id = 1;

  int listen_fd = -1;
  std::thread accept_thread;
  std::unique_ptr<eval::WorkerSlots> slots;
  std::mutex conn_mu;
  std::list<Connection> conns;

  // ---- lifecycle ----------------------------------------------------

  Status Start() {
    if (!opts.state_dir.empty()) {
      ::mkdir(opts.state_dir.c_str(), 0755);  // EEXIST is fine
    }
    // Progress streaming and the serve.* counters live in the obs
    // registry; a server is pointless without collection on.
    obs::SetMetricsEnabled(true);
    slots = std::make_unique<eval::WorkerSlots>(opts.jobs, opts.total_threads);
    RecoverSidecars();
    StatusOr<int> fd = ListenOn(opts.port);
    if (!fd.ok()) return fd.status();
    listen_fd = fd.value();
    StatusOr<int> bound = BoundPort(listen_fd);
    if (!bound.ok()) {
      CloseFd(listen_fd);
      listen_fd = -1;
      return bound.status();
    }
    port = bound.value();
    accept_thread = std::thread([this] { AcceptLoop(); });
    return Status::Ok();
  }

  void RequestDrain() {
    {
      std::lock_guard<std::mutex> lock(mu);
      draining = true;
    }
    cv.notify_all();
  }

  void WaitDrained() {
    if (slots != nullptr) slots->Drain();
  }

  void Stop() {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (stopped) return;
      draining = true;  // queued closures must no-op, not run
      stopped = true;
    }
    cv.notify_all();
    if (listen_fd >= 0) ShutdownFd(listen_fd);
    if (accept_thread.joinable()) accept_thread.join();
    CloseFd(listen_fd);
    listen_fd = -1;
    {
      std::lock_guard<std::mutex> lock(conn_mu);
      for (Connection& c : conns) ShutdownFd(c.channel->fd());
    }
    for (;;) {
      Connection* next = nullptr;
      {
        std::lock_guard<std::mutex> lock(conn_mu);
        if (conns.empty()) break;
        next = &conns.front();
      }
      if (next->thread.joinable()) next->thread.join();
      std::lock_guard<std::mutex> lock(conn_mu);
      conns.pop_front();
    }
    if (slots != nullptr) slots->Stop();
  }

  ServerStats Stats() const {
    std::lock_guard<std::mutex> lock(mu);
    return st;
  }

  // ---- connections ---------------------------------------------------

  void AcceptLoop() {
    for (;;) {
      const int fd = ::accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        return;  // listener shut down (Stop) or broken
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        if (stopped) {
          CloseFd(fd);
          return;
        }
      }
      ReapFinishedConnections();
      std::lock_guard<std::mutex> lock(conn_mu);
      conns.emplace_back();
      Connection& conn = conns.back();
      conn.channel = std::make_unique<LineChannel>(fd);
      conn.thread = std::thread([this, &conn] {
        ServeConnection(*conn.channel);
        std::lock_guard<std::mutex> inner(conn_mu);
        conn.done = true;
      });
    }
  }

  void ReapFinishedConnections() {
    std::lock_guard<std::mutex> lock(conn_mu);
    for (auto it = conns.begin(); it != conns.end();) {
      if (it->done) {
        if (it->thread.joinable()) it->thread.join();
        it = conns.erase(it);
      } else {
        ++it;
      }
    }
  }

  void ServeConnection(LineChannel& ch) {
    std::string client = "anon";
    std::string line;
    while (ch.ReadLine(line)) {
      obs::JsonParseResult parsed = obs::ParseJson(line);
      if (!parsed.ok) {
        // A malformed line is the client's bug, not a reason to drop the
        // connection: reply 400 and keep reading.
        if (!ch.WriteLine(ErrorReply(kCodeBadRequest,
                                     "request parse error: " + parsed.error)))
          return;
        continue;
      }
      const obs::JsonValue& req = parsed.value;
      if (!req.is_object()) {
        if (!ch.WriteLine(
                ErrorReply(kCodeBadRequest, "request must be an object")))
          return;
        continue;
      }
      client = StringField(req, "client", client);
      const std::string op = StringField(req, "op", "");
      std::string reply;
      if (op == "ping") {
        reply = "{\"ok\":true,\"schema\":\"";
        reply += kProtocolSchema;
        reply += "\"}";
      } else if (op == "hello") {
        reply = "{\"ok\":true,\"client\":";
        AppendJsonString(reply, client);
        reply += '}';
      } else if (op == "submit") {
        reply = HandleSubmit(req, client);
      } else if (op == "status") {
        reply = HandleStatus(req, client, /*wait=*/false);
      } else if (op == "wait") {
        reply = HandleStatus(req, client, /*wait=*/true);
      } else if (op == "stream") {
        if (!HandleStream(req, client, ch)) return;
        continue;
      } else if (op == "list") {
        reply = HandleList(client);
      } else if (op == "stats") {
        reply = HandleStats();
      } else {
        reply = ErrorReply(kCodeBadRequest,
                           op.empty() ? "missing \"op\" field"
                                      : "unknown op: \"" + op + "\"");
      }
      if (!ch.WriteLine(reply)) return;
    }
  }

  // ---- ops -----------------------------------------------------------

  std::string HandleSubmit(const obs::JsonValue& req,
                           const std::string& client) {
    const auto reject = [this](int code, const std::string& message) {
      {
        std::lock_guard<std::mutex> lock(mu);
        ++st.rejected;
      }
      BGC_COUNTER_ADD("serve.jobs_rejected", 1);
      return ErrorReply(code, message);
    };
    const obs::JsonValue* kind_v = req.Find("kind");
    if (kind_v == nullptr || !kind_v->is_string()) {
      return reject(kCodeBadRequest, "missing \"kind\" field");
    }
    StatusOr<JobKind> kind = ParseJobKind(kind_v->str);
    if (!kind.ok()) return reject(kCodeBadRequest, kind.status().message());
    const obs::JsonValue* spec_v = req.Find("spec");
    if (spec_v == nullptr) {
      return reject(kCodeBadRequest, "missing \"spec\" field");
    }
    StatusOr<JobSpec> spec = ParseJobSpec(kind.value(), *spec_v);
    if (!spec.ok()) return reject(kCodeBadRequest, spec.status().message());

    std::shared_ptr<Job> job;
    bool first_for_key = false;
    {
      std::lock_guard<std::mutex> lock(mu);
      if (draining || stopped) {
        ++st.rejected;
        BGC_COUNTER_ADD("serve.jobs_rejected", 1);
        return ErrorReply(kCodeDraining, "server is draining");
      }
      if (st.queued >= opts.queue_depth) {
        ++st.rejected;
        BGC_COUNTER_ADD("serve.jobs_rejected", 1);
        return ErrorReply(kCodeQueueFull,
                          "queue full (" + std::to_string(st.queued) +
                              " jobs queued, depth " +
                              std::to_string(opts.queue_depth) + ")");
      }
      job = AdmitLocked(spec.take(), client);
      first_for_key = active_by_hex[job->hex] == 1;
    }
    BGC_COUNTER_ADD("serve.jobs_accepted", 1);
    // Duplicate submissions share one sidecar (same key, same spec);
    // letting every duplicate write it would just race on the same path.
    if (first_for_key) PersistSidecar(*job);
    std::string reply = "{\"ok\":true,\"job\":";
    AppendJsonString(reply, job->id);
    reply += ",\"state\":\"QUEUED\",\"key\":";
    AppendJsonString(reply, job->hex);
    reply += '}';
    return reply;
  }

  /// Registers a validated spec as a QUEUED job and hands its closure to
  /// the worker pool. Caller holds `mu`.
  std::shared_ptr<Job> AdmitLocked(JobSpec spec, const std::string& owner) {
    auto job = std::make_shared<Job>();
    char id[16];
    std::snprintf(id, sizeof(id), "j%04d", next_id++);
    job->id = id;
    job->owner = owner;
    job->key = CanonicalJobKey(spec);
    job->hex = JobKeyHex(spec);
    job->epochs_total = EstimateEpochs(spec);
    job->spec = std::move(spec);
    jobs.emplace(job->id, job);
    ++st.accepted;
    ++st.queued;
    ++active_by_hex[job->hex];
    BGC_GAUGE_SET("serve.queue_depth", st.queued);
    slots->Submit([this, job] { RunJob(job); });
    return job;
  }

  static long long EstimateEpochs(const JobSpec& spec) {
    const eval::RunSpec& run = spec.run;
    long long per_repeat = run.condense.epochs;
    if (spec.kind == JobKind::kEval && run.eval_clean_baseline) {
      per_repeat *= 2;  // attacked + clean condensation per repeat
    }
    return per_repeat * (spec.kind == JobKind::kEval ? run.repeats : 1);
  }

  std::string HandleStatus(const obs::JsonValue& req,
                           const std::string& client, bool wait) {
    const std::string id = StringField(req, "job", "");
    std::unique_lock<std::mutex> lock(mu);
    auto it = jobs.find(id);
    if (it == jobs.end()) {
      return ErrorReply(kCodeUnknownJob, "unknown job: \"" + id + "\"");
    }
    const std::shared_ptr<Job> job = it->second;
    if (job->owner != client) {
      return ErrorReply(kCodeNotOwner, "job " + id + " belongs to \"" +
                                           job->owner + "\", not \"" +
                                           client + "\"");
    }
    if (wait) {
      // Wake on completion, shutdown, or drain (a drained QUEUED job will
      // not run in this server generation — report it as it stands).
      cv.wait(lock, [&] {
        return job->state == Job::kDone || job->state == Job::kErr ||
               stopped || (draining && job->state == Job::kQueued);
      });
    }
    return StatusReplyLocked(*job);
  }

  std::string StatusReplyLocked(const Job& job) const {
    std::string reply = "{\"ok\":true,\"job\":";
    AppendJsonString(reply, job.id);
    reply += ",\"kind\":";
    AppendJsonString(reply, JobKindName(job.spec.kind));
    reply += ",\"state\":\"";
    reply += StateName(job.state);
    reply += '"';
    if (job.state == Job::kDone) {
      reply += ",\"result\":";
      reply += job.result;
    } else if (job.state == Job::kErr) {
      reply += ",\"error\":";
      AppendJsonString(reply, job.error);
    }
    reply += '}';
    return reply;
  }

  /// Streams start / progress / done event lines. Returns false when the
  /// client vanished (connection is then dead).
  bool HandleStream(const obs::JsonValue& req, const std::string& client,
                    LineChannel& ch) {
    const std::string id = StringField(req, "job", "");
    std::shared_ptr<Job> job;
    {
      std::lock_guard<std::mutex> lock(mu);
      auto it = jobs.find(id);
      if (it == jobs.end()) {
        return ch.WriteLine(
            ErrorReply(kCodeUnknownJob, "unknown job: \"" + id + "\""));
      }
      job = it->second;
      if (job->owner != client) {
        return ch.WriteLine(ErrorReply(
            kCodeNotOwner, "job " + id + " belongs to \"" + job->owner +
                               "\", not \"" + client + "\""));
      }
    }
    if (!ch.WriteLine(EventLine("start", *job))) return false;
    const std::string prefix = "serve." + job->id + ".";
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu);
        if (job->state == Job::kDone || job->state == Job::kErr || stopped ||
            (draining && job->state == Job::kQueued)) {
          break;
        }
      }
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts.stream_poll_ms));
      if (!ch.WriteLine(ProgressLine(*job, prefix))) return false;
    }
    std::lock_guard<std::mutex> lock(mu);
    return ch.WriteLine(EventLine("done", *job));
  }

  std::string EventLine(const char* event, const Job& job) const {
    std::string line = "{\"ok\":true,\"event\":\"";
    line += event;
    line += "\",\"job\":";
    AppendJsonString(line, job.id);
    line += ",\"state\":\"";
    line += StateName(job.state);
    line += '"';
    if (job.state == Job::kDone) {
      line += ",\"result\":";
      line += job.result;
    } else if (job.state == Job::kErr) {
      line += ",\"error\":";
      AppendJsonString(line, job.error);
    }
    line += '}';
    return line;
  }

  /// Progress is sourced from the obs registry: the job runs under phase
  /// tag "serve.<id>", so every "phase.*" scope in the pipeline lands at
  /// "serve.<id>.*" — epoch scopes double as an epoch counter.
  std::string ProgressLine(const Job& job, const std::string& prefix) {
    const auto timers =
        obs::Registry::Global().SnapshotTimersWithPrefix(prefix);
    long long epochs_done = 0;
    std::string phases = "{";
    for (const auto& [name, stats] : timers) {
      const std::string suffix = name.substr(prefix.size());
      if (EndsWith(suffix, "condense.epoch")) epochs_done += stats.count;
      if (phases.size() > 1) phases += ',';
      AppendJsonString(phases, suffix);
      phases += ':';
      phases += std::to_string(stats.count);
    }
    phases += '}';
    std::string line = "{\"ok\":true,\"event\":\"progress\",\"job\":";
    AppendJsonString(line, job.id);
    std::lock_guard<std::mutex> lock(mu);
    line += ",\"state\":\"";
    line += StateName(job.state);
    line += "\",\"epochs_done\":";
    line += std::to_string(epochs_done);
    line += ",\"epochs_total\":";
    line += std::to_string(job.epochs_total);
    line += ",\"phases\":";
    line += phases;
    line += '}';
    return line;
  }

  std::string HandleList(const std::string& client) {
    std::string reply = "{\"ok\":true,\"jobs\":[";
    std::lock_guard<std::mutex> lock(mu);
    bool first = true;
    for (const auto& [id, job] : jobs) {
      if (job->owner != client) continue;
      if (!first) reply += ',';
      first = false;
      reply += "{\"job\":";
      AppendJsonString(reply, id);
      reply += ",\"kind\":";
      AppendJsonString(reply, JobKindName(job->spec.kind));
      reply += ",\"state\":\"";
      reply += StateName(job->state);
      reply += "\",\"key\":";
      AppendJsonString(reply, job->hex);
      reply += '}';
    }
    reply += "]}";
    return reply;
  }

  std::string HandleStats() {
    std::string reply = "{\"ok\":true,\"schema\":\"";
    reply += kProtocolSchema;
    reply += "\"";
    {
      std::lock_guard<std::mutex> lock(mu);
      reply += ",\"draining\":";
      reply += draining ? "true" : "false";
      reply += ",\"jobs_accepted\":" + std::to_string(st.accepted);
      reply += ",\"jobs_rejected\":" + std::to_string(st.rejected);
      reply += ",\"jobs_completed\":" + std::to_string(st.completed);
      reply += ",\"jobs_failed\":" + std::to_string(st.failed);
      reply += ",\"jobs_recovered\":" + std::to_string(st.recovered);
      reply += ",\"queued\":" + std::to_string(st.queued);
      reply += ",\"running\":" + std::to_string(st.running);
      reply += ",\"eval_cache\":{\"hits\":" + std::to_string(st.eval_hits);
      reply += ",\"misses\":" + std::to_string(st.eval_misses);
      reply += '}';
    }
    if (opts.cache != nullptr) {
      const store::ArtifactCacheStats cs = opts.cache->stats();
      reply += ",\"cache\":{\"hits\":" + std::to_string(cs.hits);
      reply += ",\"misses\":" + std::to_string(cs.misses);
      reply += ",\"rejected\":" + std::to_string(cs.rejected);
      reply += ",\"coalesced\":" + std::to_string(cs.coalesced);
      reply += '}';
    }
    reply += '}';
    return reply;
  }

  // ---- execution -----------------------------------------------------

  void RunJob(const std::shared_ptr<Job>& job) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (draining || stopped) return;  // stays QUEUED; sidecar persists
      job->state = Job::kRunning;
      --st.queued;
      ++st.running;
      BGC_GAUGE_SET("serve.queue_depth", st.queued);
    }
    cv.notify_all();
    std::string result;
    std::string error;
    bool ok = true;
    try {
      obs::ScopedPhaseTag tag("serve." + job->id);
      switch (job->spec.kind) {
        case JobKind::kCondense: result = ExecuteCondense(*job); break;
        case JobKind::kAttack: result = ExecuteAttack(*job); break;
        case JobKind::kEval: result = ExecuteEval(*job); break;
      }
    } catch (const std::exception& e) {
      ok = false;
      error = e.what();
    } catch (...) {
      ok = false;
      error = "job execution failed";
    }
    bool drop_sidecar = false;
    {
      std::lock_guard<std::mutex> lock(mu);
      job->state = ok ? Job::kDone : Job::kErr;
      job->result = std::move(result);
      job->error = std::move(error);
      --st.running;
      ++(ok ? st.completed : st.failed);
      auto it = active_by_hex.find(job->hex);
      if (it != active_by_hex.end() && --it->second == 0) {
        active_by_hex.erase(it);
        drop_sidecar = true;  // no other live job shares this sidecar
      }
    }
    if (ok) {
      BGC_COUNTER_ADD("serve.jobs_completed", 1);
    } else {
      BGC_COUNTER_ADD("serve.jobs_failed", 1);
    }
    if (drop_sidecar) ::remove(SidecarPath(*job).c_str());
    cv.notify_all();
  }

  /// RAII claim on a job key's checkpoint file. Only one in-flight job
  /// may write `<keyhex>.ckpt`; a concurrent duplicate that loses the
  /// claim just computes without checkpointing (with the artifact cache
  /// on it coalesces behind the leader anyway).
  struct CkptClaim {
    Impl* impl = nullptr;
    std::string hex;
    bool held = false;

    /// Claims and returns the checkpoint path, or "" when checkpointing
    /// is off, the method cannot checkpoint, or another job holds the
    /// claim. A corrupt leftover checkpoint is deleted up front —
    /// RunResumableCondensation treats one as fatal, and a daemon must
    /// degrade to recomputing instead.
    std::string Acquire(const Job& job) {
      const eval::RunSpec& run = job.spec.run;
      if (impl->opts.state_dir.empty() || impl->opts.checkpoint_every <= 0 ||
          !condense::MakeCondenser(run.method)->SupportsCheckpoint()) {
        return "";
      }
      {
        std::lock_guard<std::mutex> lock(impl->mu);
        if (!impl->ckpt_inflight.insert(job.hex).second) return "";
        hex = job.hex;
        held = true;
      }
      const std::string path =
          impl->opts.state_dir + "/" + job.hex + ".ckpt";
      if (FileExists(path) && !store::TryLoadCondenserCheckpoint(path).ok()) {
        std::fprintf(stderr,
                     "bgc-serve: discarding corrupt checkpoint %s\n",
                     path.c_str());
        ::remove(path.c_str());
      }
      return path;
    }

    ~CkptClaim() {
      if (!held) return;
      std::lock_guard<std::mutex> lock(impl->mu);
      impl->ckpt_inflight.erase(hex);
    }
  };

  /// Clean condensation, bit-identical to `bgc_cli generate` +
  /// `bgc_cli condense` with the same dataset/seed/config: the dataset is
  /// built from the job seed and the condenser consumes a fresh
  /// Rng(seed) — none of the eval seed-stride streams.
  std::string ExecuteCondense(Job& job) {
    const eval::RunSpec& run = job.spec.run;
    data::GraphDataset ds;
    condense::SourceGraph source;
    {
      BGC_TRACE_SCOPE("phase.data");
      ds = data::MakeDataset(run.dataset, run.seed, run.dataset_scale);
      source = condense::FromTrainView(data::MakeTrainView(ds));
    }
    bool computed = false;
    bool resumed = false;
    long long epochs_done = run.condense.epochs;
    CkptClaim claim;
    claim.impl = this;
    auto compute = [&] {
      computed = true;
      auto condenser = condense::MakeCondenser(run.method);
      Rng rng(run.seed);
      const std::string ckpt = claim.Acquire(job);
      if (ckpt.empty()) {
        return condense::RunCondensation(*condenser, source, ds.num_classes,
                                         run.condense, rng);
      }
      store::ResumableOptions ro;
      ro.checkpoint_path = ckpt;
      ro.checkpoint_every = opts.checkpoint_every;
      store::ResumableResult rr = store::RunResumableCondensation(
          *condenser, source, ds.num_classes, run.condense, rng, ro);
      resumed = rr.resumed;
      epochs_done = rr.epochs_done;
      return std::move(rr.condensed);
    };
    condense::CondensedGraph g;
    std::string artifact;
    if (opts.cache != nullptr) {
      const std::string cache_key =
          store::CondensedCacheKey(run.dataset, run.dataset_scale, run.method,
                                   run.condense, run.seed);
      g = opts.cache->GetOrComputeCondensed(cache_key, compute);
      artifact = opts.cache->EntryPath(cache_key);
    } else {
      g = compute();
    }
    if (!job.spec.out.empty()) SaveArtifact(g, job.spec.out);
    std::string result = "{\"rows\":" + std::to_string(g.features.rows());
    result += ",\"nnz\":" + std::to_string(g.adj.nnz());
    result += ",\"classes\":" + std::to_string(g.num_classes);
    result += ",\"computed\":";
    result += computed ? "true" : "false";
    result += ",\"resumed\":";
    result += resumed ? "true" : "false";
    result += ",\"epochs\":" + std::to_string(epochs_done);
    if (!artifact.empty()) {
      result += ",\"artifact\":";
      AppendJsonString(result, artifact);
    }
    if (!job.spec.out.empty()) {
      result += ",\"out\":";
      AppendJsonString(result, job.spec.out);
    }
    result += '}';
    return result;
  }

  /// Backdoor run, bit-identical to `bgc_cli attack` with the same flags:
  /// ONE Rng(seed) shared in sequence by the attack and the victim —
  /// deliberately not RunOnce's decoupled per-phase streams.
  std::string ExecuteAttack(Job& job) {
    const eval::RunSpec& run = job.spec.run;
    data::GraphDataset ds;
    condense::SourceGraph clean;
    {
      BGC_TRACE_SCOPE("phase.data");
      ds = data::MakeDataset(run.dataset, run.seed, run.dataset_scale);
      clean = condense::FromTrainView(data::MakeTrainView(ds));
    }
    Rng rng(run.seed);
    attack::AttackResult attacked =
        eval::DispatchAttack(run, clean, ds.num_classes, rng);
    if (!job.spec.out.empty()) SaveArtifact(attacked.condensed, job.spec.out);
    std::unique_ptr<nn::GnnModel> victim;
    {
      BGC_TRACE_SCOPE("phase.victim");
      victim = eval::TrainVictim(attacked.condensed, run.victim, rng);
    }
    eval::AttackMetrics m;
    {
      BGC_TRACE_SCOPE("phase.eval");
      m = eval::EvaluateVictim(*victim, ds, attacked.generator.get(),
                               run.attack_cfg.target_class);
    }
    std::string result = "{\"cta\":";
    AppendJsonNumber(result, m.cta);
    result += ",\"asr\":";
    AppendJsonNumber(result, m.asr);
    result += ",\"poisoned\":" + std::to_string(attacked.poisoned_nodes.size());
    result += ",\"rows\":" + std::to_string(attacked.condensed.features.rows());
    if (!job.spec.out.empty()) {
      result += ",\"out\":";
      AppendJsonString(result, job.spec.out);
    }
    result += '}';
    return result;
  }

  /// Eval jobs single-flight on CanonicalJobKey like condense jobs do on
  /// the artifact cache: the first job with a key runs RunExperiment (a
  /// miss), concurrent duplicates wait for it, and later duplicates are
  /// served from the memo outright (hits either way). The memoized value
  /// is the full result JSON, which is a pure function of the key — every
  /// seed stream inside RunExperiment derives from spec fields.
  std::string ExecuteEval(Job& job) {
    for (;;) {
      std::shared_ptr<EvalFlight> flight;
      bool leader = false;
      {
        std::lock_guard<std::mutex> lock(mu);
        auto it = eval_memo.find(job.key);
        if (it == eval_memo.end()) {
          flight = std::make_shared<EvalFlight>();
          eval_memo.emplace(job.key, flight);
          leader = true;
          ++st.eval_misses;
        } else {
          flight = it->second;
          if (flight->done) {  // done entries in the map are always ok
            ++st.eval_hits;
            return flight->result;
          }
        }
      }
      if (leader) {
        std::string body;
        try {
          body = ComputeEvalResult(job);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mu);
            eval_memo.erase(job.key);
            flight->done = true;  // wakes followers; they re-elect
          }
          cv.notify_all();
          throw;
        }
        {
          std::lock_guard<std::mutex> lock(mu);
          flight->done = true;
          flight->ok = true;
          flight->result = body;
        }
        cv.notify_all();
        return body;
      }
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return flight->done || stopped; });
        if (flight->done && flight->ok) {
          ++st.eval_hits;
          return flight->result;
        }
        if (!flight->done) {
          throw std::runtime_error("server stopping");
        }
      }
      // The leader failed; loop to take over the computation.
    }
  }

  std::string ComputeEvalResult(Job& job) {
    eval::RunSpec run = job.spec.run;
    run.artifact_cache = opts.cache;
    const eval::CellStats cell = eval::RunExperiment(run);
    const auto mean_std = [](const MeanStd& ms) {
      std::string s = "{\"mean\":";
      AppendJsonNumber(s, ms.mean);
      s += ",\"std\":";
      AppendJsonNumber(s, ms.std);
      s += '}';
      return s;
    };
    std::string result = "{\"cta\":" + mean_std(cell.cta);
    result += ",\"asr\":" + mean_std(cell.asr);
    if (cell.has_clean) {
      result += ",\"c_cta\":" + mean_std(cell.c_cta);
      result += ",\"c_asr\":" + mean_std(cell.c_asr);
    }
    result += ",\"has_clean\":";
    result += cell.has_clean ? "true" : "false";
    result += ",\"repeats\":" + std::to_string(run.repeats);
    result += '}';
    return result;
  }

  // ---- durability ----------------------------------------------------

  std::string SidecarPath(const Job& job) const {
    return opts.state_dir + "/" + job.hex + ".job";
  }

  void PersistSidecar(const Job& job) {
    if (opts.state_dir.empty()) return;
    std::string body = "{\"schema\":\"";
    body += kSidecarSchema;
    body += "\",\"kind\":";
    AppendJsonString(body, JobKindName(job.spec.kind));
    body += ",\"owner\":";
    AppendJsonString(body, job.owner);
    body += ",\"spec\":";
    AppendJobSpecJson(body, job.spec);
    body += '}';
    if (Status s = WriteFileAtomic(SidecarPath(job), body); !s.ok()) {
      std::fprintf(stderr, "bgc-serve: sidecar write failed: %s\n",
                   s.message().c_str());
    }
  }

  /// Re-admits every `<keyhex>.job` sidecar left by a previous server
  /// generation (bypassing queue_depth — they were admitted once
  /// already). A sidecar that no longer parses is deleted with a
  /// warning, never trusted.
  void RecoverSidecars() {
    if (opts.state_dir.empty()) return;
    DIR* dir = ::opendir(opts.state_dir.c_str());
    if (dir == nullptr) return;
    std::vector<std::string> names;
    while (dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (EndsWith(name, ".job")) names.push_back(name);
    }
    ::closedir(dir);
    std::sort(names.begin(), names.end());
    for (const std::string& name : names) {
      const std::string path = opts.state_dir + "/" + name;
      const auto drop = [&](const std::string& why) {
        std::fprintf(stderr, "bgc-serve: dropping sidecar %s: %s\n",
                     path.c_str(), why.c_str());
        ::remove(path.c_str());
      };
      StatusOr<std::string> body = ReadFileToString(path);
      if (!body.ok()) {
        drop(body.status().message());
        continue;
      }
      obs::JsonParseResult parsed = obs::ParseJson(body.value());
      if (!parsed.ok || !parsed.value.is_object()) {
        drop(parsed.ok ? "not an object" : parsed.error);
        continue;
      }
      if (StringField(parsed.value, "schema", "") != kSidecarSchema) {
        drop("wrong schema");
        continue;
      }
      StatusOr<JobKind> kind =
          ParseJobKind(StringField(parsed.value, "kind", ""));
      const obs::JsonValue* spec_v = parsed.value.Find("spec");
      if (!kind.ok() || spec_v == nullptr) {
        drop(kind.ok() ? "missing spec" : kind.status().message());
        continue;
      }
      StatusOr<JobSpec> spec = ParseJobSpec(kind.value(), *spec_v);
      if (!spec.ok()) {
        drop(spec.status().message());
        continue;
      }
      std::lock_guard<std::mutex> lock(mu);
      AdmitLocked(spec.take(), StringField(parsed.value, "owner", "anon"));
      ++st.recovered;
    }
  }
};

Server::Server(ServerOptions options)
    : impl_(std::make_unique<Impl>(std::move(options))) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  Status s = impl_->Start();
  port_ = impl_->port;
  return s;
}

void Server::RequestDrain() { impl_->RequestDrain(); }

void Server::WaitDrained() { impl_->WaitDrained(); }

void Server::Stop() { impl_->Stop(); }

ServerStats Server::stats() const { return impl_->Stats(); }

}  // namespace bgc::serve
