#include "src/serve/protocol.h"

#include <cmath>
#include <cstdio>

#include "src/core/hash.h"
#include "src/data/synthetic.h"
#include "src/eval/scheduler.h"
#include "src/nn/models.h"
#include "src/store/artifact_cache.h"

namespace bgc::serve {
namespace {

bool IsIntegral(double v) { return std::floor(v) == v; }

/// Reads an integer-valued JSON number into `out` with an inclusive range
/// check; errors name the field.
Status TakeInt(const obs::JsonValue& v, const char* field, long long min,
               long long max, long long& out) {
  if (!v.is_number() || !IsIntegral(v.number)) {
    return Status::Error(std::string("spec field \"") + field +
                         "\" must be an integer");
  }
  if (v.number < static_cast<double>(min) ||
      v.number > static_cast<double>(max)) {
    return Status::Error(std::string("spec field \"") + field +
                         "\" out of range [" + std::to_string(min) + ", " +
                         std::to_string(max) + "]");
  }
  out = static_cast<long long>(v.number);
  return Status::Ok();
}

Status TakeDouble(const obs::JsonValue& v, const char* field, double min,
                  double max, double& out) {
  if (!v.is_number()) {
    return Status::Error(std::string("spec field \"") + field +
                         "\" must be a number");
  }
  if (v.number < min || v.number > max) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "\"%s\" out of range [%g, %g]", field,
                  min, max);
    return Status::Error(std::string("spec field ") + buf);
  }
  out = v.number;
  return Status::Ok();
}

Status TakeString(const obs::JsonValue& v, const char* field,
                  std::string& out) {
  if (!v.is_string()) {
    return Status::Error(std::string("spec field \"") + field +
                         "\" must be a string");
  }
  out = v.str;
  return Status::Ok();
}

void AppendKV(std::string& out, const char* key, const std::string& value) {
  if (!out.empty() && out.back() != '{') out += ',';
  AppendJsonString(out, key);
  out += ':';
  AppendJsonString(out, value);
}

void AppendKV(std::string& out, const char* key, double value) {
  if (!out.empty() && out.back() != '{') out += ',';
  AppendJsonString(out, key);
  out += ':';
  AppendJsonNumber(out, value);
}

}  // namespace

const char* JobKindName(JobKind kind) {
  switch (kind) {
    case JobKind::kCondense: return "condense";
    case JobKind::kAttack: return "attack";
    case JobKind::kEval: return "eval";
  }
  return "?";
}

StatusOr<JobKind> ParseJobKind(const std::string& name) {
  if (name == "condense") return JobKind::kCondense;
  if (name == "attack") return JobKind::kAttack;
  if (name == "eval") return JobKind::kEval;
  return Status::Error("unknown job kind: \"" + name +
                       "\" (condense|attack|eval)");
}

StatusOr<JobSpec> ParseJobSpec(JobKind kind, const obs::JsonValue& spec) {
  if (!spec.is_object()) {
    return Status::Error("\"spec\" must be an object");
  }
  JobSpec out;
  out.kind = kind;
  eval::RunSpec& run = out.run;
  // Serve defaults diverge from the bench-grid RunSpec defaults: one
  // repeat, no clean baseline unless an eval job asks for it.
  run.repeats = 1;
  run.eval_clean_baseline = false;
  if (kind == JobKind::kCondense) run.attack = "none";
  const bool attacky = kind != JobKind::kCondense;

  for (const auto& [key, value] : spec.object) {
    Status s = Status::Ok();
    long long i = 0;
    double d = 0.0;
    if (key == "dataset") {
      s = TakeString(value, "dataset", run.dataset);
    } else if (key == "scale") {
      s = TakeDouble(value, "scale", 0.01, 1.0, run.dataset_scale);
    } else if (key == "seed") {
      // Seeds ride a JSON number; cap at 2^53 so the value (and the
      // sidecar round trip) stays exact.
      s = TakeInt(value, "seed", 0, 1LL << 53, i);
      run.seed = static_cast<uint64_t>(i);
    } else if (key == "method") {
      s = TakeString(value, "method", run.method);
    } else if (key == "n") {
      s = TakeInt(value, "n", 1, 1000000, i);
      run.condense.num_condensed = static_cast<int>(i);
    } else if (key == "epochs") {
      s = TakeInt(value, "epochs", 1, 1000000, i);
      run.condense.epochs = static_cast<int>(i);
    } else if (key == "sparsify-keep") {
      s = TakeDouble(value, "sparsify-keep", 0.0, 1.0, d);
      run.condense.sparsify_keep = static_cast<float>(d);
    } else if (key == "attack" && attacky) {
      s = TakeString(value, "attack", run.attack);
    } else if (key == "target" && attacky) {
      s = TakeInt(value, "target", 0, 1000000, i);
      run.attack_cfg.target_class = static_cast<int>(i);
    } else if (key == "trigger-size" && attacky) {
      s = TakeInt(value, "trigger-size", 1, 1000000, i);
      run.attack_cfg.trigger_size = static_cast<int>(i);
    } else if (key == "poison-ratio" && attacky) {
      s = TakeDouble(value, "poison-ratio", 0.0, 1.0, d);
      run.attack_cfg.poison_ratio = d;
    } else if (key == "arch" && attacky) {
      s = TakeString(value, "arch", run.victim.arch);
    } else if (key == "victim-epochs" && attacky) {
      s = TakeInt(value, "victim-epochs", 1, 1000000, i);
      run.victim.epochs = static_cast<int>(i);
    } else if (key == "repeats" && kind == JobKind::kEval) {
      s = TakeInt(value, "repeats", 1, 10000, i);
      run.repeats = static_cast<int>(i);
    } else if (key == "clean-baseline" && kind == JobKind::kEval) {
      if (value.kind != obs::JsonValue::Kind::kBool) {
        s = Status::Error("spec field \"clean-baseline\" must be a bool");
      } else {
        run.eval_clean_baseline = value.bool_value;
      }
    } else if (key == "out" && kind != JobKind::kEval) {
      s = TakeString(value, "out", out.out);
      if (s.ok() && out.out.empty()) {
        s = Status::Error("spec field \"out\" must be a non-empty path");
      }
    } else {
      s = Status::Error("unknown spec field for kind " +
                        std::string(JobKindName(kind)) + ": \"" + key +
                        "\"");
    }
    if (!s.ok()) return s;
  }

  if (kind == JobKind::kAttack && run.attack == "none") {
    return Status::Error("attack jobs need attack != \"none\"");
  }
  if (Status s = eval::ValidateRunSpec(run); !s.ok()) return s;
  if (attacky) {
    bool known_arch = false;
    for (const std::string& a : nn::SupportedArchitectures()) {
      if (a == run.victim.arch) known_arch = true;
    }
    if (!known_arch) {
      return Status::Error("unknown victim arch: \"" + run.victim.arch +
                           "\"");
    }
    // The attack pipeline BGC_CHECKs target < num_classes; reject at
    // admission instead of aborting a daemon worker. Preset class counts
    // are static, so this is a config lookup, not a dataset build.
    const int classes =
        data::PresetConfig(run.dataset, run.dataset_scale).num_classes;
    if (run.attack != "none" && run.attack_cfg.target_class >= classes) {
      return Status::Error(
          "spec field \"target\" (" +
          std::to_string(run.attack_cfg.target_class) + ") must be < " +
          std::to_string(classes) + " classes of " + run.dataset);
    }
  }
  return out;
}

void AppendJobSpecJson(std::string& out, const JobSpec& spec) {
  const eval::RunSpec& run = spec.run;
  out += '{';
  AppendKV(out, "dataset", run.dataset);
  AppendKV(out, "scale", run.dataset_scale);
  AppendKV(out, "seed", static_cast<double>(run.seed));
  AppendKV(out, "method", run.method);
  AppendKV(out, "n", run.condense.num_condensed);
  AppendKV(out, "epochs", run.condense.epochs);
  AppendKV(out, "sparsify-keep",
           static_cast<double>(run.condense.sparsify_keep));
  if (spec.kind != JobKind::kCondense) {
    AppendKV(out, "attack", run.attack);
    AppendKV(out, "target", run.attack_cfg.target_class);
    AppendKV(out, "trigger-size", run.attack_cfg.trigger_size);
    AppendKV(out, "poison-ratio", run.attack_cfg.poison_ratio);
    AppendKV(out, "arch", run.victim.arch);
    AppendKV(out, "victim-epochs", run.victim.epochs);
  }
  if (spec.kind == JobKind::kEval) {
    AppendKV(out, "repeats", run.repeats);
    if (!out.empty() && out.back() != '{') out += ',';
    out += "\"clean-baseline\":";
    out += run.eval_clean_baseline ? "true" : "false";
  }
  if (spec.kind != JobKind::kEval && !spec.out.empty()) {
    AppendKV(out, "out", spec.out);
  }
  out += '}';
}

std::string CanonicalJobKey(const JobSpec& spec) {
  const eval::RunSpec& run = spec.run;
  char buf[256];
  std::string key = "kind=";
  key += JobKindName(spec.kind);
  std::snprintf(buf, sizeof(buf),
                "|dataset=%s|scale=%.9g|seed=%llu|method=%s|attack=%s"
                "|repeats=%d|clean=%d|",
                run.dataset.c_str(), run.dataset_scale,
                static_cast<unsigned long long>(run.seed),
                run.method.c_str(), run.attack.c_str(), run.repeats,
                run.eval_clean_baseline ? 1 : 0);
  key += buf;
  key += store::CanonicalCondenseKey(run.condense);
  key += '|';
  key += store::CanonicalAttackKey(run.attack_cfg);
  std::snprintf(buf, sizeof(buf),
                "|victim:arch=%s,hidden=%d,layers=%d,dropout=%.9g,epochs=%d,"
                "lr=%.9g,wd=%.9g",
                run.victim.arch.c_str(), run.victim.hidden,
                run.victim.layers, static_cast<double>(run.victim.dropout),
                run.victim.epochs, static_cast<double>(run.victim.lr),
                static_cast<double>(run.victim.weight_decay));
  key += buf;
  return key;
}

std::string JobKeyHex(const JobSpec& spec) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(
                    Fnv1a64(CanonicalJobKey(spec))));
  return buf;
}

void AppendJsonString(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendJsonNumber(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

std::string ErrorReply(int code, const std::string& message) {
  std::string out = "{\"ok\":false,\"code\":";
  out += std::to_string(code);
  out += ",\"error\":";
  AppendJsonString(out, message);
  out += '}';
  return out;
}

}  // namespace bgc::serve
