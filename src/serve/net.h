#ifndef BGC_SERVE_NET_H_
#define BGC_SERVE_NET_H_

// Minimal portable BSD-socket helpers for the serve layer: IPv4 listen /
// connect plus newline framing. Deliberately tiny — the protocol is
// line-delimited JSON (one request or reply per '\n'-terminated line, see
// protocol.h), so a buffered line reader and a retrying writer are the
// whole transport.

#include <string>

#include "src/core/status.h"

namespace bgc::serve {

/// Bytes a single protocol line may occupy, terminator included. A peer
/// that exceeds this is cut off (ReadLine fails) instead of growing the
/// buffer without bound.
inline constexpr size_t kMaxLineBytes = 4u << 20;

/// Opens a TCP listening socket on 127.0.0.1:`port` (SO_REUSEADDR).
/// `port` 0 binds an ephemeral port; recover the choice with BoundPort.
StatusOr<int> ListenOn(int port);

/// Port a bound socket actually listens on (getsockname).
StatusOr<int> BoundPort(int fd);

/// Connects to `host`:`port` (numeric IPv4 dotted quad or "localhost").
StatusOr<int> ConnectTo(const std::string& host, int port);

/// shutdown(2) both directions; unblocks a thread sitting in recv on `fd`.
void ShutdownFd(int fd);
void CloseFd(int fd);

/// Owns a connected fd and frames it into lines. Reader and writer keep
/// independent state, but the channel itself is not thread-safe — the
/// serve layer uses one channel per connection thread.
class LineChannel {
 public:
  /// Takes ownership of `fd` (closed on destruction).
  explicit LineChannel(int fd) : fd_(fd) {}
  ~LineChannel();

  LineChannel(const LineChannel&) = delete;
  LineChannel& operator=(const LineChannel&) = delete;

  /// Reads the next '\n'-terminated line into `line` (terminator
  /// stripped). Returns false on EOF, error, or an over-long line; the
  /// channel is then dead.
  bool ReadLine(std::string& line);

  /// Writes `line` plus '\n', retrying partial sends. SIGPIPE is
  /// suppressed (MSG_NOSIGNAL); a dead peer returns false.
  bool WriteLine(const std::string& line);

  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes received but not yet returned
  bool broken_ = false;
};

}  // namespace bgc::serve

#endif  // BGC_SERVE_NET_H_
