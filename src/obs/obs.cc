#include "src/obs/obs.h"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace bgc::obs {

namespace internal {
std::atomic<uint32_t> g_mode{0};
}  // namespace internal

namespace {

// Trace buffer cap: beyond this events are counted as dropped instead of
// growing without bound (a traced full bench run is millions of scopes).
constexpr size_t kMaxTraceEvents = 1u << 20;

// obs-assigned sequential thread ids: stable for a thread's lifetime and
// dense, so per-thread busy counters can live in a simple array.
std::atomic<int> g_next_tid{0};
thread_local int t_tid = -1;

int ThisThreadId() {
  if (t_tid < 0) t_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return t_tid;
}

void AtomicMin(std::atomic<long long>& slot, long long v) {
  long long cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<long long>& slot, long long v) {
  long long cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void AppendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendLL(std::string& out, long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  out += buf;
}

}  // namespace

int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

namespace {
// Phase-redirect tag of the calling thread; empty = no redirect.
thread_local std::string t_phase_tag;
}  // namespace

std::string SetThreadPhaseTag(std::string tag) {
  std::string previous = std::move(t_phase_tag);
  t_phase_tag = std::move(tag);
  return previous;
}

Timer* internal::MaybeRedirectPhase(Timer* timer) {
  if (timer == nullptr) return timer;
  const std::string& tag = t_phase_tag;
  if (tag.empty()) return timer;
  const std::string& name = timer->name();
  constexpr char kPhase[] = "phase.";
  constexpr size_t kPhaseLen = sizeof(kPhase) - 1;
  if (name.compare(0, kPhaseLen, kPhase) != 0) return timer;
  return Registry::Global().GetTimer(tag + "." + name.substr(kPhaseLen));
}

void SetMetricsEnabled(bool on) {
  if (on) {
    internal::g_mode.fetch_or(internal::kMetricsBit,
                              std::memory_order_relaxed);
  } else {
    internal::g_mode.fetch_and(~internal::kMetricsBit,
                               std::memory_order_relaxed);
  }
}

void SetTraceEnabled(bool on) {
  if (on) {
    internal::g_mode.fetch_or(internal::kTraceBit | internal::kMetricsBit,
                              std::memory_order_relaxed);
  } else {
    internal::g_mode.fetch_and(~internal::kTraceBit,
                               std::memory_order_relaxed);
  }
}

void Timer::Record(int64_t start_ns, int64_t end_ns) {
  const long long dur = end_ns - start_ns;
  if (count_.fetch_add(1, std::memory_order_relaxed) == 0) {
    // First record seeds min; concurrent first records race benignly (the
    // CAS below still converges on the true minimum).
    long long expected = 0;
    min_ns_.compare_exchange_strong(expected, dur,
                                    std::memory_order_relaxed);
  }
  total_ns_.fetch_add(dur, std::memory_order_relaxed);
  AtomicMin(min_ns_, dur);
  AtomicMax(max_ns_, dur);
  if (TraceEnabled()) {
    Registry::Global().AppendTraceEvent(this, start_ns, dur);
  }
}

TimerStats Timer::Snapshot() const {
  TimerStats s;
  s.count = count_.load(std::memory_order_relaxed);
  s.total_ns = total_ns_.load(std::memory_order_relaxed);
  s.min_ns = min_ns_.load(std::memory_order_relaxed);
  s.max_ns = max_ns_.load(std::memory_order_relaxed);
  return s;
}

struct Registry::Impl {
  mutable std::mutex mu;
  // Node-based maps: handle pointers stay valid across inserts.
  std::map<std::string, std::unique_ptr<Timer>> timers;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, double> gauges;
  std::vector<TraceEvent> trace;
  long long trace_dropped = 0;
  int64_t trace_start_ns = 0;  // registry start; event ts are relative
  // Busy nanoseconds per obs thread id; deque so slot addresses are stable.
  std::deque<std::atomic<long long>> thread_busy;
};

Registry::Registry() : impl_(new Impl), start_ns_(NowNs()) {
  impl_->trace_start_ns = start_ns_;
}

Registry& Registry::Global() {
  // Leaked: worker threads and atexit hooks may record/report during
  // shutdown, after static destructors would have run.
  static Registry* g = new Registry();
  return *g;
}

Timer* Registry::GetTimer(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->timers[name];
  if (!slot) slot.reset(new Timer(name));
  return slot.get();
}

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  auto& slot = impl_->counters[name];
  if (!slot) slot.reset(new Counter(name));
  return slot.get();
}

void Registry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->gauges[name] = value;
}

void Registry::AddThreadBusyNs(int64_t ns) {
  const int tid = ThisThreadId();
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    while (static_cast<int>(impl_->thread_busy.size()) <= tid) {
      impl_->thread_busy.emplace_back(0);
    }
  }
  // Slot address is stable (deque) and the slot is only ever touched
  // through relaxed atomics, so no lock is needed for the add itself.
  impl_->thread_busy[tid].fetch_add(ns, std::memory_order_relaxed);
}

void Registry::AppendTraceEvent(const Timer* timer, int64_t start_ns,
                                int64_t dur_ns) {
  const int tid = ThisThreadId();
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (impl_->trace.size() >= kMaxTraceEvents) {
    ++impl_->trace_dropped;
    return;
  }
  TraceEvent e;
  e.timer = timer;
  e.tid = tid;
  e.ts_ns = start_ns - impl_->trace_start_ns;
  e.dur_ns = dur_ns;
  impl_->trace.push_back(e);
}

std::vector<std::pair<std::string, TimerStats>>
Registry::SnapshotTimersWithPrefix(const std::string& prefix) const {
  std::vector<std::pair<std::string, TimerStats>> out;
  std::lock_guard<std::mutex> lock(impl_->mu);
  // The timer map is name-ordered, so the prefix range is contiguous.
  for (auto it = impl_->timers.lower_bound(prefix);
       it != impl_->timers.end() &&
       it->first.compare(0, prefix.size(), prefix) == 0;
       ++it) {
    const TimerStats s = it->second->Snapshot();
    if (s.count == 0) continue;
    out.emplace_back(it->first, s);
  }
  return out;
}

void Registry::AppendMetricsBodyLocked(std::string& out,
                                       int64_t wall_ns) const {
  Impl* impl = impl_;
  out += "\"schema\":\"bgc-obs-v1\",\"wall_ns\":";
  AppendLL(out, wall_ns);
  out += ",\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : impl->counters) {
    if (!first) out += ',';
    first = false;
    AppendEscaped(out, name);
    out += ':';
    AppendLL(out, c->value());
  }
  // Per-thread pool busy time, surfaced as counters.
  for (size_t i = 0; i < impl->thread_busy.size(); ++i) {
    const long long busy =
        impl->thread_busy[i].load(std::memory_order_relaxed);
    if (busy == 0) continue;
    if (!first) out += ',';
    first = false;
    AppendEscaped(out, "pool.thread." + std::to_string(i) + ".busy_ns");
    out += ':';
    AppendLL(out, busy);
  }
  if (impl->trace_dropped > 0) {
    if (!first) out += ',';
    first = false;
    out += "\"obs.trace.dropped_events\":";
    AppendLL(out, impl->trace_dropped);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : impl->gauges) {
    if (!first) out += ',';
    first = false;
    AppendEscaped(out, name);
    char buf[40];
    std::snprintf(buf, sizeof(buf), ":%.17g", v);
    out += buf;
  }
  out += "},\"timers\":{";
  first = true;
  for (const auto& [name, t] : impl->timers) {
    const TimerStats s = t->Snapshot();
    if (s.count == 0) continue;
    if (!first) out += ',';
    first = false;
    AppendEscaped(out, name);
    out += ":{\"count\":";
    AppendLL(out, s.count);
    out += ",\"total_ns\":";
    AppendLL(out, s.total_ns);
    out += ",\"min_ns\":";
    AppendLL(out, s.min_ns);
    out += ",\"max_ns\":";
    AppendLL(out, s.max_ns);
    out += '}';
  }
  out += '}';
}

std::string Registry::MetricsJson() const {
  const int64_t wall = WallNs();
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out = "{";
  AppendMetricsBodyLocked(out, wall);
  out += "}\n";
  return out;
}

std::string Registry::TraceJson() const {
  const int64_t wall = WallNs();
  std::lock_guard<std::mutex> lock(impl_->mu);
  std::string out = "{";
  AppendMetricsBodyLocked(out, wall);
  out += ",\"trace\":[";
  out.reserve(out.size() + impl_->trace.size() * 64);
  for (size_t i = 0; i < impl_->trace.size(); ++i) {
    const TraceEvent& e = impl_->trace[i];
    if (i > 0) out += ',';
    out += "{\"name\":";
    AppendEscaped(out, e.timer->name());
    out += ",\"tid\":";
    AppendLL(out, e.tid);
    out += ",\"ts_ns\":";
    AppendLL(out, e.ts_ns);
    out += ",\"dur_ns\":";
    AppendLL(out, e.dur_ns);
    out += '}';
  }
  out += "]}\n";
  return out;
}

void Registry::PrintPhaseTable(std::FILE* out) const {
  const double wall_s = static_cast<double>(WallNs()) * 1e-9;
  struct Row {
    std::string name;
    TimerStats stats;
  };
  std::vector<Row> rows;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    for (const auto& [name, t] : impl_->timers) {
      if (name.rfind("phase.", 0) != 0) continue;
      const TimerStats s = t->Snapshot();
      if (s.count == 0) continue;
      rows.push_back({name.substr(6), s});
    }
  }
  if (rows.empty()) {
    const long long peak_rss = ReadPeakRssBytes();
    if (peak_rss > 0) {
      std::fprintf(out, "[obs] peak RSS %.1f MiB\n",
                   static_cast<double>(peak_rss) / (1024.0 * 1024.0));
    }
    return;
  }
  double covered_s = 0.0;
  for (const Row& r : rows) covered_s += r.stats.total_ns * 1e-9;
  std::fprintf(out, "[obs] per-phase wall clock (process total %.3fs, "
                    "phases cover %.1f%%)\n",
               wall_s, wall_s > 0 ? 100.0 * covered_s / wall_s : 0.0);
  std::fprintf(out, "  %-28s %10s %7s %9s %12s\n", "phase", "total s",
               "%wall", "calls", "mean ms");
  for (const Row& r : rows) {
    const double total_s = r.stats.total_ns * 1e-9;
    std::fprintf(out, "  %-28s %10.3f %6.1f%% %9lld %12.3f\n",
                 r.name.c_str(), total_s,
                 wall_s > 0 ? 100.0 * total_s / wall_s : 0.0, r.stats.count,
                 r.stats.count > 0
                     ? r.stats.total_ns * 1e-6 / r.stats.count
                     : 0.0);
  }
  const long long peak_rss = ReadPeakRssBytes();
  if (peak_rss > 0) {
    std::fprintf(out, "  peak RSS %.1f MiB\n",
                 static_cast<double>(peak_rss) / (1024.0 * 1024.0));
  }
}

void Registry::Reset() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  for (auto& [name, t] : impl_->timers) {
    t->count_.store(0, std::memory_order_relaxed);
    t->total_ns_.store(0, std::memory_order_relaxed);
    t->min_ns_.store(0, std::memory_order_relaxed);
    t->max_ns_.store(0, std::memory_order_relaxed);
  }
  for (auto& [name, c] : impl_->counters) {
    c->value_.store(0, std::memory_order_relaxed);
  }
  impl_->gauges.clear();
  impl_->trace.clear();
  impl_->trace_dropped = 0;
  for (auto& slot : impl_->thread_busy) {
    slot.store(0, std::memory_order_relaxed);
  }
  impl_->trace_start_ns = NowNs();
}

// ---------------------------------------------------------------------------
// Report emission.

namespace {

std::mutex g_emit_mu;
std::string g_metrics_dest;  // "" = off, "stderr", or a path
std::string g_trace_dest;
bool g_phase_table = false;
bool g_hook_registered = false;

/// Maps an env value to a destination: disabled / stderr / path.
std::string DestFromValue(const char* value) {
  if (value == nullptr) return "";
  if (std::strcmp(value, "") == 0 || std::strcmp(value, "0") == 0) return "";
  if (std::strcmp(value, "1") == 0) return "stderr";
  return value;
}

void WriteReport(const std::string& dest, const std::string& contents) {
  if (dest == "stderr") {
    std::fwrite(contents.data(), 1, contents.size(), stderr);
    return;
  }
  std::FILE* f = std::fopen(dest.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "[obs] cannot write report to %s\n", dest.c_str());
    return;
  }
  std::fwrite(contents.data(), 1, contents.size(), f);
  std::fclose(f);
}

void EmitReports() {
  std::string metrics_dest, trace_dest;
  bool phase_table;
  {
    std::lock_guard<std::mutex> lock(g_emit_mu);
    metrics_dest = g_metrics_dest;
    trace_dest = g_trace_dest;
    phase_table = g_phase_table;
  }
  Registry& reg = Registry::Global();
  // Snapshot the high-water RSS right before reporting so the gauge covers
  // the whole run, not the point where metrics were enabled.
  const long long peak_rss = ReadPeakRssBytes();
  if (peak_rss > 0) {
    reg.SetGauge("proc.peak_rss_bytes", static_cast<double>(peak_rss));
  }
  if (phase_table) reg.PrintPhaseTable(stderr);
  if (!trace_dest.empty()) WriteReport(trace_dest, reg.TraceJson());
  if (!metrics_dest.empty() && metrics_dest != trace_dest) {
    WriteReport(metrics_dest, reg.MetricsJson());
  }
}

void RegisterHookLocked() {
  if (g_hook_registered) return;
  g_hook_registered = true;
  std::atexit(EmitReports);
}

}  // namespace

void InitFromEnvAtExit() {
  const std::string metrics = DestFromValue(std::getenv("BGC_METRICS"));
  const std::string trace = DestFromValue(std::getenv("BGC_TRACE"));
  if (!metrics.empty()) EmitMetricsAtExit(metrics);
  if (!trace.empty()) EmitTraceAtExit(trace);
}

void EmitMetricsAtExit(const std::string& dest) {
  SetMetricsEnabled(true);
  std::lock_guard<std::mutex> lock(g_emit_mu);
  // "1" means stderr for direct callers too (bare --profile, bench flags),
  // not just the env-var path.
  g_metrics_dest = dest == "1" ? "stderr" : dest;
  RegisterHookLocked();
}

void EmitTraceAtExit(const std::string& dest) {
  SetTraceEnabled(true);
  std::lock_guard<std::mutex> lock(g_emit_mu);
  g_trace_dest = dest == "1" ? "stderr" : dest;
  RegisterHookLocked();
}

void PrintPhaseTableAtExit() {
  SetMetricsEnabled(true);
  std::lock_guard<std::mutex> lock(g_emit_mu);
  g_phase_table = true;
  RegisterHookLocked();
}

long long ReadPeakRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "rb");
  if (f == nullptr) return 0;
  long long kib = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = std::atoll(line + 6);  // "VmHWM:   12345 kB"
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
#else
  return 0;
#endif
}

bool ResetPeakRss() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/clear_refs", "we");
  if (f == nullptr) return false;
  const bool ok = std::fputs("5", f) >= 0;
  return (std::fclose(f) == 0) && ok;
#else
  return false;
#endif
}

namespace {
// Every binary that links bgc_obs honors BGC_METRICS/BGC_TRACE without
// explicit wiring; with both unset this is a no-op (collection stays off).
const bool g_env_init = [] {
  InitFromEnvAtExit();
  return true;
}();
}  // namespace

}  // namespace bgc::obs
