#include "src/obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace bgc::obs {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult Run() {
    JsonParseResult result;
    JsonValue v;
    if (!ParseValue(v)) {
      result.error = Error();
      return result;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      Fail("trailing characters after JSON value");
      result.error = Error();
      return result;
    }
    result.ok = true;
    result.value = std::move(v);
    return result;
  }

 private:
  void Fail(const std::string& message) {
    if (error_.empty()) {
      error_ = "offset " + std::to_string(pos_) + ": " + message;
    }
  }
  std::string Error() const {
    return error_.empty() ? "unknown parse error" : error_;
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    Fail(std::string("expected '") + expected + "'");
    return false;
  }

  bool ParseValue(JsonValue& out) {
    SkipWs();
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
      return false;
    }
    switch (text_[pos_]) {
      case '{': return ParseObject(out);
      case '[': return ParseArray(out);
      case '"': return ParseString(out);
      case 't': return ParseLiteral("true", out);
      case 'f': return ParseLiteral("false", out);
      case 'n': return ParseLiteral("null", out);
      default: return ParseNumber(out);
    }
  }

  bool ParseLiteral(std::string_view lit, JsonValue& out) {
    if (text_.substr(pos_, lit.size()) != lit) {
      Fail("invalid literal");
      return false;
    }
    pos_ += lit.size();
    if (lit == "true") {
      out.kind = JsonValue::Kind::kBool;
      out.bool_value = true;
    } else if (lit == "false") {
      out.kind = JsonValue::Kind::kBool;
      out.bool_value = false;
    } else {
      out.kind = JsonValue::Kind::kNull;
    }
    return true;
  }

  bool Digit() const {
    return pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]));
  }

  // Strict JSON grammar: -?(0|[1-9][0-9]*)(\.[0-9]+)?([eE][+-]?[0-9]+)?
  // (strtod alone would also take "+5", "01", ".5", "0x1", "inf").
  bool ParseNumber(JsonValue& out) {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    if (!Digit()) {
      Fail("invalid number");
      return false;
    }
    if (text_[pos_] == '0') {
      ++pos_;
      if (Digit()) {
        Fail("leading zero in number");
        return false;
      }
    } else {
      while (Digit()) ++pos_;
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (!Digit()) {
        Fail("expected digit after decimal point");
        return false;
      }
      while (Digit()) ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!Digit()) {
        Fail("expected digit in exponent");
        return false;
      }
      while (Digit()) ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    const double v = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(v)) {
      Fail("number \"" + token + "\" out of double range");
      return false;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = v;
    return true;
  }

  bool ParseHex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) {
      Fail("truncated \\u escape");
      return false;
    }
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= c - '0';
      else if (c >= 'a' && c <= 'f') out |= c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') out |= c - 'A' + 10;
      else {
        Fail("invalid \\u escape");
        return false;
      }
    }
    return true;
  }

  bool ParseString(JsonValue& out) {
    if (!Consume('"')) return false;
    std::string s;
    for (;;) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
        return false;
      }
      char c = text_[pos_++];
      if (c == '"') break;
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("unescaped control character in string");
        return false;
      }
      if (c != '\\') {
        s += c;
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("truncated escape");
        return false;
      }
      c = text_[pos_++];
      switch (c) {
        case '"': s += '"'; break;
        case '\\': s += '\\'; break;
        case '/': s += '/'; break;
        case 'b': s += '\b'; break;
        case 'f': s += '\f'; break;
        case 'n': s += '\n'; break;
        case 'r': s += '\r'; break;
        case 't': s += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!ParseHex4(cp)) return false;
          // BMP only (obs never writes surrogate pairs): UTF-8 encode.
          if (cp < 0x80) {
            s += static_cast<char>(cp);
          } else if (cp < 0x800) {
            s += static_cast<char>(0xC0 | (cp >> 6));
            s += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            s += static_cast<char>(0xE0 | (cp >> 12));
            s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            s += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          Fail("invalid escape");
          return false;
      }
    }
    out.kind = JsonValue::Kind::kString;
    out.str = std::move(s);
    return true;
  }

  bool ParseArray(JsonValue& out) {
    if (!Consume('[')) return false;
    out.kind = JsonValue::Kind::kArray;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      JsonValue element;
      if (!ParseValue(element)) return false;
      out.array.push_back(std::move(element));
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume(']');
    }
  }

  bool ParseObject(JsonValue& out) {
    if (!Consume('{')) return false;
    out.kind = JsonValue::Kind::kObject;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      SkipWs();
      JsonValue key;
      if (!ParseString(key)) return false;
      if (out.Find(key.str) != nullptr) {
        Fail("duplicate key \"" + key.str + "\"");
        return false;
      }
      SkipWs();
      if (!Consume(':')) return false;
      JsonValue value;
      if (!ParseValue(value)) return false;
      out.object.emplace_back(std::move(key.str), std::move(value));
      SkipWs();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      return Consume('}');
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonParseResult ParseJson(std::string_view text) {
  return Parser(text).Run();
}

}  // namespace bgc::obs
