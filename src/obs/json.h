#ifndef BGC_OBS_JSON_H_
#define BGC_OBS_JSON_H_

// Minimal strict JSON parser, just enough to validate and inspect the
// reports obs emits (and any other small machine-readable output). Not a
// general-purpose library: numbers parse as double, strings support the
// escapes obs writes plus \uXXXX for the BMP, and input must be a single
// JSON value with nothing but whitespace around it.
//
// Standalone like the rest of src/obs (no src/core dependency), so errors
// are reported through ParseResult rather than Status.

#include <string>
#include <string_view>
#include <vector>

namespace bgc::obs {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  /// Insertion-ordered key/value pairs (duplicate keys are rejected).
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Member lookup on an object; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

struct JsonParseResult {
  bool ok = false;
  std::string error;  // "offset N: message" when !ok
  JsonValue value;
};

JsonParseResult ParseJson(std::string_view text);

}  // namespace bgc::obs

#endif  // BGC_OBS_JSON_H_
